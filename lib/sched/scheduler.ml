(* The policy engine.  Everything runs inside engine events: a periodic
   tick advances the per-job operation queues, detects completed or dead
   jobs, and places queued work.  No function here re-enters
   [Sim.Engine.run].

   Checkpoint/stop/restart operations used to serialize through a single
   in-flight slot; they now run through {!Opq}: ops on disjoint jobs and
   node sets proceed concurrently (each against its own per-job
   coordinator on [base_port + job id]), while conflicting ops — two ops
   on the same job, ops whose allocations share a node, a restart racing
   a drain of the same job — serialize in deterministic FIFO order. *)

let tick_period = 0.05

type stop_reason = Preempt of int (* preemptor job id *) | Drain of int (* node *)

type op =
  | Op_ckpt of Job.t  (* periodic checkpoint; the job keeps running *)
  | Op_stop of Job.t * stop_reason  (* checkpoint, then stop and requeue *)
  | Op_restart of Job.t * float  (* restart from saved image; requeued-at time *)

let op_job = function Op_ckpt j | Op_stop (j, _) | Op_restart (j, _) -> j

let allocs_overlap a1 a2 = Array.exists (fun n -> Array.exists (fun m -> m = n) a2) a1

(* Two ops conflict when they cannot be in flight together: same job, or
   node-set overlap of the jobs' current allocations (evaluated at
   admission time, so a reallocation between enqueue and admit is seen). *)
let op_conflict o1 o2 =
  let j1 = op_job o1 and j2 = op_job o2 in
  j1.Job.id = j2.Job.id
  ||
  match (j1.Job.alloc, j2.Job.alloc) with
  | Some a1, Some a2 -> allocs_overlap a1 a2
  | _ -> false

type t = {
  cl : Simos.Cluster.t;
  rt : Dmtcp.Runtime.t;
  base_port : int;
  ckpt_interval : float option;
  op_timeout : float;
  max_recoveries : int;
  start_grace : float;
  compact_depth : int;  (* squash delta chains deeper than this; 0 = off *)
  mutable jobs : Job.t list;  (* ascending id *)
  by_id : (int, Job.t) Hashtbl.t;
  mutable next_id : int;
  mutable draining : int list;
  ops : op Opq.t;
  occ : int array;  (* node -> occupying job id, -1 when free *)
  procs_by_node : int array;  (* refreshed each tick from the runtime *)
  timers : (int, Sim.Engine.handle) Hashtbl.t;
  mutable ticking : bool;
  mutable traced_inflight : int;
  mutable violations : string list;
  mutable n_preemptions : int;
  mutable n_node_failures : int;
  mutable n_drains : int;
  mutable n_restarts : int;
  mutable n_relaunches : int;
  mutable n_compactions : int;
  mutable first_submit : float;
}

(* ------------------------------------------------------------------ *)
(* Metrics and tracing *)

let m_preempt = Trace.Metrics.counter "sched.preemptions"
let m_node_fail = Trace.Metrics.counter "sched.node_failures"
let m_drain = Trace.Metrics.counter "sched.drains"
let m_restart = Trace.Metrics.counter "sched.restarts"
let m_relaunch = Trace.Metrics.counter "sched.relaunches"
let m_completed = Trace.Metrics.counter "sched.completed"
let m_failed = Trace.Metrics.counter "sched.failed"
let m_lost_work = Trace.Metrics.counter "sched.lost_work_s"
let m_queue_wait = Trace.Metrics.histogram "sched.queue_wait_s"
let m_recovery = Trace.Metrics.histogram "sched.recovery_s"
let m_makespan = Trace.Metrics.gauge "sched.makespan_s"

let now t = Simos.Cluster.now t.cl
let eng t = Simos.Cluster.engine t.cl

let trace_i t name args =
  if Trace.on () then Trace.instant ~cat:"sched" ~name ~args ~time:(now t) ()

let trace_span t name ~dur args =
  if Trace.on () then Trace.span ~cat:"sched" ~name ~args ~time:(now t -. dur) ~dur ()

let trace_counter t name v =
  if Trace.on () then Trace.counter ~cat:"sched" ~name ~time:(now t) v

let trace_ops_inflight t =
  let n = Opq.inflight_count t.ops in
  if n <> t.traced_inflight then begin
    t.traced_inflight <- n;
    trace_counter t "sched/ops-inflight" (float_of_int n)
  end

(* ------------------------------------------------------------------ *)
(* Views *)

let job t id = Hashtbl.find t.by_id id
let jobs t = t.jobs
let alloc_exn (j : Job.t) = match j.Job.alloc with Some a -> a | None -> failwith "job has no allocation"

let busy_count t = Array.fold_left (fun acc o -> if o >= 0 then acc + 1 else acc) 0 t.occ

let free_nodes t =
  Simos.Cluster.up_nodes t.cl
  |> List.filter (fun n -> t.occ.(n) < 0 && not (List.mem n t.draining))

let refresh_procs t =
  Array.fill t.procs_by_node 0 (Array.length t.procs_by_node) 0;
  List.iter
    (fun (node, _, _) ->
      if node >= 0 && node < Array.length t.procs_by_node then
        t.procs_by_node.(node) <- t.procs_by_node.(node) + 1)
    (Dmtcp.Runtime.hijacked_processes t.rt)

(* process count over the job's nodes, from the per-tick refresh (no two
   jobs share a node, so per-node counts are per-job counts) *)
let procs_on t (j : Job.t) =
  match j.Job.alloc with
  | None -> 0
  | Some a -> Array.fold_left (fun acc n -> acc + t.procs_by_node.(n)) 0 a

let job_port t (j : Job.t) = t.base_port + j.Job.id

let job_options t (j : Job.t) =
  let a = alloc_exn j in
  {
    (Dmtcp.Runtime.options t.rt) with
    Dmtcp.Options.coord_host = a.(0);
    coord_port = job_port t j;
    interval = None;  (* the scheduler, not the coordinator, drives periodic ckpts *)
    (* incremental + forked fast path: interval checkpoints ship only the
       frames dirtied since the previous round, and the blackout shrinks
       to the snapshot cost — so driving checkpoints often enough to keep
       sched/lost-work low no longer costs full-image writes *)
    incremental = true;
    forked = true;
  }

let vfs_of t node = Simos.Kernel.vfs (Simos.Cluster.kernel t.cl node)

let output_read t node path =
  match Simos.Vfs.lookup (vfs_of t node) path with
  | Some f ->
    let s = Simos.Vfs.read_all f in
    if s = "" then None else Some s
  | None -> None

let output_write t node path = function
  | Some bytes ->
    let f = Simos.Vfs.open_or_create (vfs_of t node) path in
    Simos.Vfs.truncate f;
    Simos.Vfs.append f bytes
  | None -> ignore (Simos.Vfs.unlink (vfs_of t node) path)

let outputs_ready t (j : Job.t) =
  match j.Job.alloc with
  | None -> false
  | Some a ->
    let outs = j.Job.spec.Job.sp_outputs a in
    outs = [] || List.for_all (fun (node, path) -> output_read t node path <> None) outs

let set_phase t (j : Job.t) phase =
  j.Job.phase <- phase;
  j.Job.phase_since <- now t

let violation t fmt =
  Printf.ksprintf
    (fun m ->
      if not (List.mem m t.violations) then t.violations <- t.violations @ [ m ])
    fmt

(* ------------------------------------------------------------------ *)
(* Per-job periodic checkpoint timers *)

let cancel_timer t id =
  match Hashtbl.find_opt t.timers id with
  | Some h ->
    Sim.Engine.cancel h;
    Hashtbl.remove t.timers id
  | None -> ()

let rec arm_timer t (j : Job.t) =
  match t.ckpt_interval with
  | None -> ()
  | Some iv ->
    cancel_timer t j.Job.id;
    let h =
      Sim.Engine.schedule (eng t) ~delay:iv (fun () ->
          Hashtbl.remove t.timers j.Job.id;
          if j.Job.phase = Job.Running && not (Opq.engaged t.ops j.Job.id) then
            Opq.enqueue t.ops (Op_ckpt j);
          if not (Job.finished j.Job.phase) then arm_timer t j)
    in
    Hashtbl.replace t.timers j.Job.id h

(* ------------------------------------------------------------------ *)
(* Launch / stop / finish *)

let alloc_string a = String.concat "," (List.map string_of_int (Array.to_list a))

let assign_alloc t (j : Job.t) (a : int array) =
  Array.iter
    (fun n ->
      if t.occ.(n) >= 0 then violation t "job %d placed on busy node %d" j.Job.id n;
      if not (Simos.Cluster.node_up t.cl n) then
        violation t "job %d placed on down node %d" j.Job.id n;
      t.occ.(n) <- j.Job.id)
    a;
  j.Job.alloc <- Some a;
  if j.Job.placed_at < 0. then begin
    j.Job.placed_at <- now t;
    let wait = now t -. j.Job.submitted in
    Trace.Metrics.observe m_queue_wait wait;
    trace_span t "sched/queue-wait" ~dur:wait [ ("job", string_of_int j.Job.id) ]
  end;
  trace_i t "sched/place"
    [ ("job", string_of_int j.Job.id); ("alloc", alloc_string a) ];
  trace_counter t "sched/busy-nodes" (float_of_int (busy_count t))

let launch_job t (j : Job.t) (a : int array) =
  assign_alloc t j a;
  (* stale verdicts from a previous life must not satisfy the completion
     check: a relaunch recomputes everything *)
  List.iter (fun (node, path) -> output_write t node path None) (j.Job.spec.Job.sp_outputs a);
  let opts = job_options t j in
  List.iter
    (fun (node, prog, argv) -> ignore (Dmtcp.Api.launch ~options:opts t.rt ~node ~prog ~argv))
    (j.Job.spec.Job.sp_launch a);
  j.Job.run_started <- now t;
  set_phase t j Job.Starting

let release_nodes t (j : Job.t) =
  (match j.Job.alloc with
  | Some a -> Array.iter (fun n -> if t.occ.(n) = j.Job.id then t.occ.(n) <- -1) a
  | None -> ());
  j.Job.alloc <- None;
  trace_counter t "sched/busy-nodes" (float_of_int (busy_count t))

(* Stop a job's processes (and its coordinator) on its own nodes. *)
let kill_job_procs t (j : Job.t) =
  match j.Job.alloc with
  | None -> ()
  | Some a -> Dmtcp.Api.kill_nodes t.rt ~nodes:(Array.to_list a)

let unpin_job t (j : Job.t) =
  List.iter (fun (lineage, _) -> Dmtcp.Runtime.unpin_lineage t.rt ~lineage) j.Job.pins;
  j.Job.pins <- []

let account_lost_work t (j : Job.t) =
  let since =
    match j.Job.saved with
    | Some s -> s.Job.sv_time
    | None -> j.Job.run_started
  in
  let lost = Float.max 0. (now t -. since) in
  j.Job.lost_work <- j.Job.lost_work +. lost;
  Trace.Metrics.add m_lost_work lost;
  let total = List.fold_left (fun acc (j : Job.t) -> acc +. j.Job.lost_work) 0. t.jobs in
  trace_counter t "sched/lost-work" total

let finish_job t (j : Job.t) =
  let a = alloc_exn j in
  j.Job.outputs <-
    List.filter_map
      (fun (node, path) ->
        Option.map (fun v -> (path, v)) (output_read t node path))
      (j.Job.spec.Job.sp_outputs a)
    |> List.sort compare;
  cancel_timer t j.Job.id;
  unpin_job t j;
  kill_job_procs t j;  (* reap the job's idle coordinator *)
  release_nodes t j;
  j.Job.done_at <- now t;
  set_phase t j Job.Done;
  Trace.Metrics.incr m_completed;
  let makespan = now t -. j.Job.submitted in
  trace_span t "sched/makespan" ~dur:makespan [ ("job", string_of_int j.Job.id) ];
  trace_i t "sched/job-done"
    [
      ("job", string_of_int j.Job.id);
      ("preemptions", string_of_int j.Job.preemptions);
      ("restarts", string_of_int j.Job.restarts);
    ]

let fail_job t (j : Job.t) msg =
  cancel_timer t j.Job.id;
  unpin_job t j;
  kill_job_procs t j;
  release_nodes t j;
  set_phase t j (Job.Failed msg);
  Trace.Metrics.incr m_failed;
  trace_i t "sched/job-failed" [ ("job", string_of_int j.Job.id); ("reason", msg) ]

let recoveries (j : Job.t) = j.Job.restarts + j.Job.relaunches

(* Stop now and go back to the queue; the next placement decides between
   restart-from-image and relaunch. *)
let requeue t (j : Job.t) =
  cancel_timer t j.Job.id;
  account_lost_work t j;
  kill_job_procs t j;
  release_nodes t j;
  if recoveries j >= t.max_recoveries then fail_job t j "too many recoveries"
  else set_phase t j Job.Requeued

(* ------------------------------------------------------------------ *)
(* Checkpoint capture: script + verdict-file snapshot + retention pins *)

let capture_ckpt t (j : Job.t) =
  let a = alloc_exn j in
  let opts = job_options t j in
  let script = Dmtcp.Api.restart_script ~options:opts t.rt in
  (* every image must come from the job's own nodes; anything else means
     the operation was garbled by cross-job interference *)
  let foreign =
    match Dmtcp.Runtime.last_completed_ckpt ~port:(job_port t j) t.rt with
    | Some info ->
      List.exists
        (fun (node, _) -> not (Array.exists (fun n -> n = node) a))
        info.Dmtcp.Runtime.images
    | None -> true
  in
  if foreign then violation t "job %d checkpoint recorded images off its allocation" j.Job.id;
  let slot_of node =
    let s = ref (-1) in
    Array.iteri (fun i n -> if n = node && !s < 0 then s := i) a;
    !s
  in
  let outputs =
    List.filter_map
      (fun (node, path) ->
        let slot = slot_of node in
        if slot < 0 then None else Some (slot, path, output_read t node path))
      (j.Job.spec.Job.sp_outputs a)
  in
  (* pin the new images: while this job is preempted/requeued, no GC may
     collect them, even if pid reuse hands its lineage to another job *)
  let pins =
    List.filter_map
      (fun (node, _, (ps : Dmtcp.Runtime.pstate)) ->
        if Array.exists (fun n -> n = node) a then
          Some (Dmtcp.Upid.lineage ps.Dmtcp.Runtime.upid, ps.Dmtcp.Runtime.upid.Dmtcp.Upid.generation)
        else None)
      (Dmtcp.Runtime.hijacked_processes t.rt)
    |> List.sort_uniq compare
  in
  List.iter (fun (lineage, generation) -> Dmtcp.Runtime.pin_lineage t.rt ~lineage ~generation) pins;
  j.Job.pins <- pins;
  j.Job.saved <- Some { Job.sv_script = script; sv_alloc = Array.copy a; sv_outputs = outputs; sv_time = now t };
  trace_i t "sched/ckpt-saved"
    [ ("job", string_of_int j.Job.id); ("images", string_of_int (List.length script.Dmtcp.Restart_script.entries)) ]

(* ------------------------------------------------------------------ *)
(* The per-job operation queues *)

(* the job's own coordinator domain finished a round at/after [since] *)
let ckpt_completed t (j : Job.t) since =
  match Dmtcp.Runtime.last_completed_ckpt ~port:(job_port t j) t.rt with
  | Some info ->
    Deadline.since_satisfied ~started:info.Dmtcp.Runtime.started ~since
    && info.Dmtcp.Runtime.finished > info.Dmtcp.Runtime.started
    && info.Dmtcp.Runtime.nprocs > 0
  | None -> false

let exec_restart t (j : Job.t) =
  let saved = match j.Job.saved with Some s -> s | None -> failwith "restart without image" in
  let a = alloc_exn j in
  (* positional remap: a host occupying several slots of the saved
     allocation spreads over the hosts at the same slots of the new one,
     instead of collapsing onto the new allocation's first match *)
  let script =
    Dmtcp.Restart_script.remap_positional saved.Job.sv_script ~old_alloc:saved.Job.sv_alloc
      ~new_alloc:a
  in
  (* verdict files roll back to their checkpoint-time bytes on the new
     nodes, so re-executed writes reproduce the reference run exactly *)
  List.iter
    (fun (slot, path, content) ->
      if slot >= 0 && slot < Array.length a then output_write t a.(slot) path content)
    saved.Job.sv_outputs;
  j.Job.restarts <- j.Job.restarts + 1;
  Trace.Metrics.incr m_restart;
  t.n_restarts <- t.n_restarts + 1;
  Dmtcp.Api.restart t.rt script

let trace_stop t (j : Job.t) = function
  | Preempt by ->
    trace_i t "sched/preempt" [ ("victim", string_of_int j.Job.id); ("by", string_of_int by) ]
  | Drain node ->
    trace_i t "sched/drain-job" [ ("job", string_of_int j.Job.id); ("node", string_of_int node) ]

(* Admission action: perform the op's side effects; false consumes the op
   as a no-op (the job's phase no longer wants it). *)
let start_op t op =
  match op with
  | Op_ckpt j ->
    if j.Job.phase = Job.Running then begin
      Dmtcp.Api.checkpoint ~options:(job_options t j) t.rt;
      set_phase t j Job.Checkpointing;
      trace_i t "sched/ckpt-start" [ ("job", string_of_int j.Job.id) ];
      true
    end
    else false
  | Op_stop (j, reason) ->
    if j.Job.phase = Job.Running || j.Job.phase = Job.Checkpointing then begin
      Dmtcp.Api.checkpoint ~options:(job_options t j) t.rt;
      set_phase t j Job.Stopping;
      trace_stop t j reason;
      true
    end
    else if j.Job.phase = Job.Starting then begin
      (* nothing checkpointable yet: stop and relaunch later *)
      requeue t j;
      false
    end
    else false

  | Op_restart (j, _) ->
    if j.Job.phase = Job.Restarting then begin
      exec_restart t j;
      true
    end
    else false

(* A stop arriving while the job's interval checkpoint is still in flight
   coalesces with it: the round already running IS the stop's checkpoint,
   so retarget the in-flight entry instead of issuing a second
   [Api.checkpoint] (which used to double-checkpoint the victim). *)
let coalesce_stop t op =
  match op with
  | Op_stop (j, reason) ->
    let merged = ref false in
    List.iter
      (fun (e : op Opq.entry) ->
        if (not !merged) && not e.Opq.e_aborted then
          match e.Opq.e_op with
          | Op_ckpt j2 when j2.Job.id = j.Job.id ->
            e.Opq.e_op <- op;  (* keep e_since: the round started then *)
            set_phase t j Job.Stopping;
            trace_stop t j reason;
            merged := true
          | _ -> ())
      (Opq.inflight t.ops);
    !merged
  | _ -> false

let finish_stop t (j : Job.t) reason since =
  (match reason with
  | Preempt _ ->
    j.Job.preemptions <- j.Job.preemptions + 1;
    t.n_preemptions <- t.n_preemptions + 1;
    Trace.Metrics.incr m_preempt;
    trace_span t "sched/preempt-latency" ~dur:(now t -. since)
      [ ("victim", string_of_int j.Job.id) ]
  | Drain _ -> ());
  requeue t j

let advance_entry t (e : op Opq.entry) =
  let since = e.Opq.e_since in
  let timeout = Deadline.op_timed_out ~now:(now t) ~since ~timeout:t.op_timeout in
  let finish () = Opq.remove t.ops e in
  match e.Opq.e_op with
  | Op_ckpt j ->
    if e.Opq.e_aborted || Job.finished j.Job.phase then finish ()
    else if j.Job.phase = Job.Checkpointing && procs_on t j = 0 then begin
      (* the job finished (or died) underneath the checkpoint *)
      finish ();
      if outputs_ready t j then finish_job t j else requeue t j
    end
    else if ckpt_completed t j since then begin
      capture_ckpt t j;
      set_phase t j Job.Running;
      finish ()
    end
    else if timeout then begin
      trace_i t "sched/op-timeout" [ ("op", "ckpt"); ("job", string_of_int j.Job.id) ];
      if j.Job.phase = Job.Checkpointing then set_phase t j Job.Running;
      finish ()
    end
  | Op_stop (j, reason) ->
    if e.Opq.e_aborted || Job.finished j.Job.phase then finish ()
    else if j.Job.phase = Job.Stopping && procs_on t j = 0 then begin
      finish ();
      if outputs_ready t j then finish_job t j else requeue t j
    end
    else if ckpt_completed t j since then begin
      capture_ckpt t j;
      finish ();
      finish_stop t j reason since
    end
    else if timeout then begin
      (* stop anyway: an older image (or a relaunch) has to do *)
      trace_i t "sched/op-timeout" [ ("op", "stop"); ("job", string_of_int j.Job.id) ];
      finish ();
      finish_stop t j reason since
    end
  | Op_restart (j, requeued_at) ->
    if e.Opq.e_aborted || Job.finished j.Job.phase then finish ()
    else begin
      let port = job_port t j in
      let info = Dmtcp.Runtime.restart_info ~port t.rt in
      let expected = Dmtcp.Runtime.restart_expected ~port t.rt in
      if
        Deadline.since_satisfied ~started:info.Dmtcp.Runtime.started ~since
        && expected > 0
        && info.Dmtcp.Runtime.nprocs >= expected
      then begin
        finish ();
        set_phase t j Job.Running;
        j.Job.run_started <- now t;
        arm_timer t j;
        let dur = now t -. requeued_at in
        Trace.Metrics.observe m_recovery dur;
        trace_span t "sched/restart-recovery" ~dur [ ("job", string_of_int j.Job.id) ]
      end
      else if timeout then begin
        trace_i t "sched/op-timeout" [ ("op", "restart"); ("job", string_of_int j.Job.id) ];
        finish ();
        requeue t j
      end
    end

(* ------------------------------------------------------------------ *)
(* Placement *)

let stop_requested t (j : Job.t) =
  Opq.exists t.ops (function Op_stop (j2, _) -> j2.Job.id = j.Job.id | _ -> false)

let place_pass t =
  let queued =
    List.filter_map
      (fun (j : Job.t) ->
        match j.Job.phase with
        | Job.Queued | Job.Requeued -> Some (j.Job.id, j.Job.spec.Job.sp_priority, j.Job.submitted)
        | _ -> None)
      t.jobs
  in
  if queued <> [] then begin
    let order = Policy.queue_order queued in
    let free = ref (free_nodes t) in
    let nfree = ref (List.length !free) in
    (* victim candidates, once per pass: placements during the pass only
       add Starting jobs, which are never candidates, so the list stays
       valid for the whole scan.  A job whose interval checkpoint is in
       flight is preemptible too — its stop coalesces with the running
       round instead of waiting for it and checkpointing again *)
    let candidates =
      List.filter_map
        (fun (j2 : Job.t) ->
          if
            (j2.Job.phase = Job.Running || j2.Job.phase = Job.Checkpointing)
            && not (stop_requested t j2)
          then
            Some
              {
                Policy.cd_id = j2.Job.id;
                cd_priority = j2.Job.spec.Job.sp_priority;
                cd_nodes = Array.length (alloc_exn j2);
              }
          else None)
        t.jobs
    in
    let stop_scan = ref false in
    List.iter
      (fun id ->
        if (not !stop_scan) && (!nfree > 0 || candidates <> []) then begin
          let j = job t id in
          let want = j.Job.spec.Job.sp_nodes in
          match (if want <= !nfree then Policy.place ~free:!free ~want else None) with
          | Some a ->
            free := List.filter (fun n -> not (Array.exists (fun m -> m = n) a)) !free;
            nfree := !nfree - Array.length a;
            (match j.Job.phase with
            | Job.Queued -> launch_job t j a
            | Job.Requeued -> (
              match j.Job.saved with
              | Some saved when Dmtcp.Api.script_images_available t.rt saved.Job.sv_script ->
                (* reserve the nodes now; the op queue does the actual
                   restart once nothing conflicting is in flight *)
                assign_alloc t j a;
                let requeued_at = j.Job.phase_since in
                set_phase t j Job.Restarting;
                Opq.enqueue t.ops (Op_restart (j, requeued_at))
              | _ ->
                (* no usable image: start over from scratch *)
                j.Job.saved <- None;
                j.Job.relaunches <- j.Job.relaunches + 1;
                t.n_relaunches <- t.n_relaunches + 1;
                Trace.Metrics.incr m_relaunch;
                launch_job t j a)
            | _ -> ())
          | None ->
            (* not enough free nodes: preempt strictly-lower-priority work *)
            let need = want - !nfree in
            (match Policy.victims ~running:candidates ~need ~priority:j.Job.spec.Job.sp_priority with
            | Some ids when ids <> [] ->
              List.iter
                (fun vid -> Opq.enqueue t.ops (Op_stop (job t vid, Preempt j.Job.id)))
                ids;
              (* hold the remaining free nodes for this arrival: do not
                 backfill lower-priority work onto them this pass *)
              stop_scan := true
            | _ -> ())
        end)
      order
  end

(* ------------------------------------------------------------------ *)
(* Job health scan *)

let scan_jobs t =
  List.iter
    (fun (j : Job.t) ->
      if not (Opq.engaged t.ops j.Job.id) then
        match j.Job.phase with
        | Job.Starting ->
          if procs_on t j >= j.Job.spec.Job.sp_procs then begin
            set_phase t j Job.Running;
            arm_timer t j
          end
          else if
            Deadline.op_timed_out ~now:(now t) ~since:j.Job.phase_since ~timeout:t.start_grace
          then requeue t j
        | Job.Running ->
          if procs_on t j = 0 then
            if outputs_ready t j then finish_job t j else requeue t j
        | _ -> ())
    t.jobs

(* ------------------------------------------------------------------ *)
(* Background delta-chain compaction *)

(* A lineage is off-limits while any job with a live checkpoint/stop/
   restart operation could be reading or rewriting it: compaction must
   never interleave with an in-flight op on the same images.  A job
   claims a lineage through its pins (preempted/requeued work) or
   through a live hijacked process of that lineage on its allocation. *)
let lineage_busy t lineage =
  let procs = Dmtcp.Runtime.hijacked_processes t.rt in
  List.exists
    (fun (j : Job.t) ->
      Opq.engaged t.ops j.Job.id
      && (List.exists (fun (l, _) -> l = lineage) j.Job.pins
         ||
         match j.Job.alloc with
         | None -> false
         | Some a ->
           List.exists
             (fun (node, _, (ps : Dmtcp.Runtime.pstate)) ->
               Array.exists (fun n -> n = node) a
               && Dmtcp.Upid.lineage ps.Dmtcp.Runtime.upid = lineage)
             procs))
    t.jobs

(* At most one compaction per tick: background work must trickle, not
   monopolize disk bandwidth that restarts are waiting on. *)
let maybe_compact t =
  if t.compact_depth > 0 then
    match Dmtcp.Runtime.store t.rt with
    | None -> ()
    | Some store -> (
      match Simos.Cluster.up_nodes t.cl with
      | [] -> ()
      | node :: _ -> (
        match
          List.find_opt
            (fun (m : Store.manifest) -> not (lineage_busy t m.Store.m_lineage))
            (Dmtcp.Compactor.candidates store ~depth:t.compact_depth)
        with
        | None -> ()
        | Some m -> (
          match Dmtcp.Compactor.compact_one store ~node m with
          | None -> ()
          | Some delay ->
            ignore (Store.gc_lineage store ~lineage:m.Store.m_lineage);
            t.n_compactions <- t.n_compactions + 1;
            trace_span t "sched/compact" ~dur:delay
              [ ("name", m.Store.m_name); ("lineage", m.Store.m_lineage) ])))

(* ------------------------------------------------------------------ *)
(* The tick *)

let all_done t = t.jobs <> [] && List.for_all (fun (j : Job.t) -> Job.finished j.Job.phase) t.jobs

let rec tick t =
  refresh_procs t;
  (* advance over a snapshot: an entry may remove itself (and its side
     effects may abort others), so re-check membership before advancing *)
  List.iter
    (fun e -> if List.memq e (Opq.inflight t.ops) then advance_entry t e)
    (Opq.inflight t.ops);
  Opq.admit t.ops ~now:(now t) ~coalesce:(coalesce_stop t) ~start:(start_op t) ();
  trace_ops_inflight t;
  scan_jobs t;
  place_pass t;
  maybe_compact t;
  if all_done t && Opq.is_idle t.ops then t.ticking <- false
  else ignore (Sim.Engine.schedule (eng t) ~delay:tick_period (fun () -> tick t))

let ensure_ticking t =
  if not t.ticking then begin
    t.ticking <- true;
    ignore (Sim.Engine.schedule (eng t) ~delay:0. (fun () -> tick t))
  end

(* ------------------------------------------------------------------ *)
(* Public API *)

let create ?(base_port = 7800) ?ckpt_interval ?(op_timeout = 60.) ?(max_recoveries = 10)
    ?(start_grace = 15.) ?(max_inflight = 0) ?(compact_depth = 0) cl rt =
  {
    cl;
    rt;
    base_port;
    ckpt_interval;
    op_timeout;
    max_recoveries;
    start_grace;
    compact_depth;
    jobs = [];
    by_id = Hashtbl.create 64;
    next_id = 0;
    draining = [];
    ops = Opq.create ~max_inflight ~conflict:op_conflict ~key:(fun op -> (op_job op).Job.id) ();
    occ = Array.make (Simos.Cluster.nodes cl) (-1);
    procs_by_node = Array.make (Simos.Cluster.nodes cl) 0;
    timers = Hashtbl.create 64;
    ticking = false;
    traced_inflight = 0;
    violations = [];
    n_preemptions = 0;
    n_node_failures = 0;
    n_drains = 0;
    n_restarts = 0;
    n_relaunches = 0;
    n_compactions = 0;
    first_submit = -1.;
  }

let submit t spec =
  let j = Job.make ~id:t.next_id ~spec ~now:(now t) in
  t.next_id <- t.next_id + 1;
  t.jobs <- t.jobs @ [ j ];
  Hashtbl.replace t.by_id j.Job.id j;
  if t.first_submit < 0. then t.first_submit <- now t;
  trace_i t "sched/submit"
    [
      ("job", string_of_int j.Job.id);
      ("name", spec.Job.sp_name);
      ("nodes", string_of_int spec.Job.sp_nodes);
      ("priority", string_of_int spec.Job.sp_priority);
    ];
  ensure_ticking t;
  j

let abort_ops_for t (j : Job.t) =
  Opq.abort_inflight t.ops (fun op -> (op_job op).Job.id = j.Job.id);
  Opq.drop_pending t.ops (fun op -> (op_job op).Job.id = j.Job.id)

let jobs_touching t node =
  List.filter
    (fun (j : Job.t) ->
      Job.occupies_nodes j.Job.phase
      && match j.Job.alloc with Some a -> Array.exists (fun n -> n = node) a | None -> false)
    t.jobs

let drain t node =
  if not (List.mem node t.draining) then begin
    t.draining <- node :: t.draining;
    t.n_drains <- t.n_drains + 1;
    Trace.Metrics.incr m_drain;
    trace_i t "sched/drain" [ ("node", string_of_int node) ];
    List.iter
      (fun (j : Job.t) ->
        if not (stop_requested t j) then
          match j.Job.phase with
          | Job.Starting -> requeue t j
          | _ -> Opq.enqueue t.ops (Op_stop (j, Drain node)))
      (jobs_touching t node);
    ensure_ticking t
  end

let undrain t node =
  t.draining <- List.filter (fun n -> n <> node) t.draining;
  trace_i t "sched/undrain" [ ("node", string_of_int node) ];
  ensure_ticking t

let fail_node t node =
  t.n_node_failures <- t.n_node_failures + 1;
  Trace.Metrics.incr m_node_fail;
  trace_i t "sched/node-fail" [ ("node", string_of_int node) ];
  let victims = jobs_touching t node in
  Simos.Cluster.fail_node t.cl node;
  (match Dmtcp.Runtime.store t.rt with
  | Some s -> Store.drop_node s node
  | None -> ());
  List.iter
    (fun (j : Job.t) ->
      abort_ops_for t j;
      (* survivors on the job's other nodes are incoherent without their
         peers: stop the whole job and resurrect it from the newest
         surviving checkpoint *)
      requeue t j)
    victims;
  ensure_ticking t

let run ?(until = 3600.) t =
  ensure_ticking t;
  Sim.Engine.run ~until (Simos.Cluster.engine t.cl);
  List.length (List.filter (fun (j : Job.t) -> not (Job.finished j.Job.phase)) t.jobs)

let violations t = t.violations
let preemptions t = t.n_preemptions
let node_failures t = t.n_node_failures
let drains t = t.n_drains
let restarts t = t.n_restarts
let relaunches t = t.n_relaunches
let compactions t = t.n_compactions
let peak_ops_inflight t = Opq.peak t.ops

let makespan t =
  let last =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.Job.done_at) (-1.) t.jobs
  in
  if last < 0. || t.first_submit < 0. then 0.
  else begin
    let m = last -. t.first_submit in
    Trace.Metrics.set m_makespan m;
    m
  end

let total_lost_work t =
  List.fold_left (fun acc (j : Job.t) -> acc +. j.Job.lost_work) 0. t.jobs

let status_lines t =
  List.map
    (fun (j : Job.t) ->
      Printf.sprintf "job %d %-12s prio %d nodes %d  %-12s alloc [%s]  pre %d rst %d rel %d lost %.2fs"
        j.Job.id j.Job.spec.Job.sp_name j.Job.spec.Job.sp_priority j.Job.spec.Job.sp_nodes
        (Job.phase_name j.Job.phase)
        (match j.Job.alloc with Some a -> alloc_string a | None -> "-")
        j.Job.preemptions j.Job.restarts j.Job.relaunches j.Job.lost_work)
    t.jobs
