(* Deadline semantics for the op queue, pinned in one place.

   PR 2 fixed an off-by-one in the restart reconnect deadline: a check
   written [now > deadline] never fires when the poll lands exactly on
   the deadline tick, which with a coarse fixed-period poller is the
   common case, not the rare one.  The scheduler's op machinery polls on
   the same fixed tick, so its comparisons get the same inclusive
   semantics:

   - an operation whose age *reaches* the timeout has timed out
     ([>=], not [>]): the tick that lands exactly on [since + timeout]
     must give up rather than wait a whole extra period;
   - a record that *started exactly at* the guard time satisfies the
     since-guard ([>=]): the guard exists to reject records from before
     the request, and a record stamped at the request instant is the
     requested one. *)

let op_timed_out ~now ~since ~timeout = now -. since >= timeout
let since_satisfied ~started ~since = started >= since
