type spec = {
  sp_name : string;
  sp_nodes : int;
  sp_priority : int;
  sp_est_runtime : float;
  sp_procs : int;
  sp_launch : int array -> (int * string * string list) list;
  sp_outputs : int array -> (int * string) list;
}

type phase =
  | Queued
  | Starting
  | Running
  | Checkpointing
  | Stopping
  | Requeued
  | Restarting
  | Done
  | Failed of string

type saved = {
  sv_script : Dmtcp.Restart_script.t;
  sv_alloc : int array;
  sv_outputs : (int * string * string option) list;
  sv_time : float;
}

type t = {
  id : int;
  spec : spec;
  mutable phase : phase;
  mutable alloc : int array option;
  mutable submitted : float;
  mutable placed_at : float;
  mutable phase_since : float;
  mutable run_started : float;
  mutable saved : saved option;
  mutable pins : (string * int) list;
  mutable preemptions : int;
  mutable restarts : int;
  mutable relaunches : int;
  mutable lost_work : float;
  mutable done_at : float;
  mutable outputs : (string * string) list;
}

let make ~id ~spec ~now =
  {
    id;
    spec;
    phase = Queued;
    alloc = None;
    submitted = now;
    placed_at = -1.;
    phase_since = now;
    run_started = -1.;
    saved = None;
    pins = [];
    preemptions = 0;
    restarts = 0;
    relaunches = 0;
    lost_work = 0.;
    done_at = -1.;
    outputs = [];
  }

let phase_name = function
  | Queued -> "queued"
  | Starting -> "starting"
  | Running -> "running"
  | Checkpointing -> "checkpointing"
  | Stopping -> "stopping"
  | Requeued -> "requeued"
  | Restarting -> "restarting"
  | Done -> "done"
  | Failed m -> "failed:" ^ m

let occupies_nodes = function
  | Starting | Running | Checkpointing | Stopping | Restarting -> true
  | Queued | Requeued | Done | Failed _ -> false

let finished = function Done | Failed _ -> true | _ -> false
