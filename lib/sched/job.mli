(** Batch jobs: the unit the scheduler places, checkpoints, preempts and
    resurrects.

    A job is a node-count, a priority, and two functions of its node
    allocation: one producing the (node, program, argv) launch set and one
    naming the verdict files the job writes when it finishes.  Both are
    functions — not lists — because an allocation is not stable: a
    preempted or self-healed job restarts on whatever nodes are free, and
    a relaunch-from-scratch must recompute host-bearing argv for them. *)

type spec = {
  sp_name : string;
  sp_nodes : int;  (** nodes required, owned exclusively while running *)
  sp_priority : int;  (** higher preempts lower *)
  sp_est_runtime : float;  (** advisory estimate, virtual seconds *)
  sp_procs : int;  (** checkpointed processes once fully started *)
  sp_launch : int array -> (int * string * string list) list;
      (** allocation -> (node, prog, argv) launch set *)
  sp_outputs : int array -> (int * string) list;
      (** allocation -> (node, path) verdict files, stable order *)
}

type phase =
  | Queued  (** never run yet, waiting for nodes *)
  | Starting  (** launched, waiting for the full process set *)
  | Running
  | Checkpointing  (** periodic checkpoint in flight; still running *)
  | Stopping  (** checkpoint-then-stop in flight (preemption or drain) *)
  | Requeued  (** stopped; waiting for nodes to restart or relaunch on *)
  | Restarting  (** restart wave in flight *)
  | Done
  | Failed of string

(** Everything needed to resurrect a stopped job: the restart script, the
    allocation its hosts refer to, the verdict files' contents at
    checkpoint time (restored before restart so re-executed writes land on
    the same bytes a reference run would), and the checkpoint's virtual
    time (the lost-work bound). *)
type saved = {
  sv_script : Dmtcp.Restart_script.t;
  sv_alloc : int array;
  sv_outputs : (int * string * string option) list;  (** (slot, path, content) *)
  sv_time : float;
}

type t = {
  id : int;
  spec : spec;
  mutable phase : phase;
  mutable alloc : int array option;
  mutable submitted : float;
  mutable placed_at : float;  (** first placement (queue-wait endpoint) *)
  mutable phase_since : float;  (** when [phase] was entered *)
  mutable run_started : float;  (** current launch/restart resume time *)
  mutable saved : saved option;
  mutable pins : (string * int) list;  (** pinned (lineage, generation) *)
  mutable preemptions : int;
  mutable restarts : int;
  mutable relaunches : int;
  mutable lost_work : float;  (** re-executed virtual seconds *)
  mutable done_at : float;
  mutable outputs : (string * string) list;  (** collected (path, verdict) *)
}

val make : id:int -> spec:spec -> now:float -> t
val phase_name : phase -> string

(** Is the job in a phase where it occupies nodes? *)
val occupies_nodes : phase -> bool

(** Terminal? *)
val finished : phase -> bool
