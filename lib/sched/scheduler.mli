(** Checkpoint-driven batch scheduler.

    One scheduler owns a cluster's nodes and a DMTCP runtime.  Jobs are
    submitted with a node count and a priority; the scheduler places them
    on free nodes (exclusive, whole-node allocation) and attaches a
    private DMTCP domain per job — its own coordinator on the job's first
    node, on a per-job port — so independent jobs checkpoint and restart
    without touching each other.

    Three policies bottom out in checkpoint/restart:

    - {b preemption}: a higher-priority arrival that cannot be placed
      checkpoints enough lower-priority running jobs to the store,
      stops them, and takes their nodes; the victims requeue and later
      restart from their images, possibly on different nodes
      ({!Dmtcp.Restart_script.remap}).
    - {b self-healing}: {!fail_node} kills a node and drops its store
      replicas; every job touching it is restarted from its newest
      surviving checkpoint, with the periodic-checkpoint policy
      ([~ckpt_interval]) bounding the lost work.
    - {b drain}: {!drain} migrates every job off a node by
      checkpoint + remap + restart, and the node takes no new work.

    Each job's DMTCP protocol state (operation records, refill barrier,
    discovery keys) lives in its own per-port coordinator domain, so
    checkpoint/restart operations on disjoint jobs and node sets run
    {e concurrently} through per-job op queues ({!Opq}); ops that
    conflict — same job, overlapping node sets, a restart racing a drain
    of the same job — serialize in deterministic FIFO order.  All
    progress is driven by engine events (a periodic scheduler tick);
    nothing here re-enters the engine. *)

type t

(** [create cl rt ()] — [ckpt_interval] arms a periodic checkpoint per
    running job (default none); [base_port] is the first per-job
    coordinator port (job [i] listens on [base_port + i], default 7800);
    [op_timeout] bounds one checkpoint/restart operation (default 60
    virtual s); [max_recoveries] bounds restarts+relaunches per job
    (default 10); [start_grace] bounds how long a launch may take to
    produce its full process set (default 15 virtual s); [max_inflight]
    caps concurrently in-flight ops (0 = unbounded, the default; 1
    reproduces the old fully-serialized queue, which is the bench
    baseline); [compact_depth] enables background delta-chain
    compaction when the runtime has a store — each tick squashes at
    most one chain deeper than the threshold into a consolidated full
    image, skipping lineages touched by in-flight operations (default 0
    = off). *)
val create :
  ?base_port:int ->
  ?ckpt_interval:float ->
  ?op_timeout:float ->
  ?max_recoveries:int ->
  ?start_grace:float ->
  ?max_inflight:int ->
  ?compact_depth:int ->
  Simos.Cluster.t ->
  Dmtcp.Runtime.t ->
  t

(** Submit a job; placement happens on the next scheduler tick. *)
val submit : t -> Job.spec -> Job.t

(** Operator drain: migrate every job off [node] (checkpoint + restart
    elsewhere) and stop placing work on it. *)
val drain : t -> int -> unit

(** Return a drained (but not failed) node to service. *)
val undrain : t -> int -> unit

(** Fail-stop node loss: processes die, the node goes down, and its
    store replicas are dropped; jobs touching it self-heal from their
    newest surviving checkpoint. *)
val fail_node : t -> int -> unit

(** Drive the simulation until every job is terminal or [until] (default
    3600 virtual s).  Returns the number of unfinished jobs. *)
val run : ?until:float -> t -> int

val jobs : t -> Job.t list
val job : t -> int -> Job.t
val all_done : t -> bool

(** Scheduler-level invariant breaches observed while running (two jobs
    sharing a node slot, placement on a down node).  Empty when healthy. *)
val violations : t -> string list

(** Completion time of the last job, relative to the first submission. *)
val makespan : t -> float

(** Total re-executed virtual seconds across all jobs. *)
val total_lost_work : t -> float

val preemptions : t -> int
val node_failures : t -> int
val drains : t -> int
val restarts : t -> int
val relaunches : t -> int

(** Delta chains squashed by the background compactor (see
    [?compact_depth]; one squash at most per scheduler tick, skipping
    lineages with in-flight operations). *)
val compactions : t -> int

(** High-water mark of concurrently in-flight checkpoint/stop/restart
    operations over the scheduler's lifetime. *)
val peak_ops_inflight : t -> int

(** Human status table, one line per job. *)
val status_lines : t -> string list
