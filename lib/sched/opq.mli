(** Per-job operation queues with a conflict detector.

    Replaces the scheduler's single in-flight op slot: any set of
    mutually non-conflicting ops (disjoint jobs and node sets) runs
    concurrently; conflicting ops serialize in deterministic FIFO
    order.  Generic over the op type so property tests can drive it
    with synthetic ops. *)

type 'op entry = {
  mutable e_op : 'op;
      (** mutable so a stop can coalesce into an in-flight checkpoint of
          the same job without restarting its since-guard *)
  e_id : int;  (** admission order *)
  e_since : float;  (** admission time: the entry's since-guard/timeout base *)
  mutable e_aborted : bool;
}

type 'op t

(** [create ~conflict ~key ()] — [conflict a b] says the two ops may not
    be in flight together; [key] maps an op to its job id for
    engaged-op accounting; [max_inflight] caps concurrency (0 =
    unbounded, the default; 1 reproduces the old serialized queue). *)
val create : ?max_inflight:int -> conflict:('op -> 'op -> bool) -> key:('op -> int) -> unit -> 'op t

(** Append to the pending FIFO. *)
val enqueue : 'op t -> 'op -> unit

(** Admission pass over the pending queue, in order.  An op starts iff
    it conflicts with no live in-flight entry and with no earlier op
    still pending (so conflicting ops start in enqueue order).
    [coalesce op] may consume the op by merging it into an in-flight
    entry (return true); [start op] performs the op's side effects and
    returns false to consume it as a no-op. *)
val admit :
  'op t -> now:float -> ?coalesce:('op -> bool) -> start:('op -> bool) -> unit -> unit

(** Finish an in-flight entry (no-op if already removed). *)
val remove : 'op t -> 'op entry -> unit

(** Drop pending ops matching the predicate. *)
val drop_pending : 'op t -> ('op -> bool) -> unit

(** Mark in-flight entries matching the predicate aborted; they stop
    blocking admission and their owner reaps them. *)
val abort_inflight : 'op t -> ('op -> bool) -> unit

val pending : 'op t -> 'op list
val inflight : 'op t -> 'op entry list
val inflight_count : 'op t -> int

(** High-water mark of concurrently in-flight ops. *)
val peak : 'op t -> int

val is_idle : 'op t -> bool

(** Any op (pending or in flight) engaged for job [key]? *)
val engaged : 'op t -> int -> bool

(** Any engaged op satisfying the predicate? *)
val exists : 'op t -> ('op -> bool) -> bool
