(** Deadline comparisons for the scheduler's op queue, pinned to the
    inclusive semantics PR 2 established for the restart reconnect
    deadline: both checks fire on the tick that lands {e exactly} on
    the boundary. *)

(** [op_timed_out ~now ~since ~timeout] — true once [now - since]
    reaches [timeout] (inclusive). *)
val op_timed_out : now:float -> since:float -> timeout:float -> bool

(** [since_satisfied ~started ~since] — true when a record that started
    exactly at the guard time counts as satisfying it (inclusive). *)
val since_satisfied : started:float -> since:float -> bool
