(** Pure placement and preemption decisions, kept free of simulation
    state so they can be unit-tested exhaustively. *)

(** [place ~free ~want] picks [want] nodes from [free] (ascending — the
    lowest-numbered free nodes), or [None] if too few. *)
val place : free:int list -> want:int -> int array option

(** One running job as preemption-victim material. *)
type candidate = { cd_id : int; cd_priority : int; cd_nodes : int }

(** [victims ~running ~need ~priority] chooses which running jobs to
    preempt so that at least [need] more nodes come free for an arrival
    of [priority].  Only strictly lower-priority jobs qualify; among
    those, the lowest priority goes first and, on ties, the
    youngest (highest id) — the job that has had the least time to make
    progress.  Returns the victim ids in preemption order, or [None]
    when even preempting every eligible job frees too few nodes. *)
val victims : running:candidate list -> need:int -> priority:int -> int list option

(** [queue_order jobs] sorts (id, priority, submit_time) into scheduling
    order: priority descending, then submit time ascending, then id. *)
val queue_order : (int * int * float) list -> int list
