let place ~free ~want =
  if want <= 0 then Some [||]
  else
    let free = List.sort compare free in
    if List.length free < want then None
    else Some (Array.of_list (List.filteri (fun i _ -> i < want) free))

type candidate = { cd_id : int; cd_priority : int; cd_nodes : int }

let victims ~running ~need ~priority =
  if need <= 0 then Some []
  else
    let eligible = List.filter (fun c -> c.cd_priority < priority) running in
    (* cheapest progress lost first: lowest priority, then youngest *)
    let ordered =
      List.sort
        (fun a b ->
          match compare a.cd_priority b.cd_priority with
          | 0 -> compare b.cd_id a.cd_id
          | c -> c)
        eligible
    in
    let rec take acc freed = function
      | _ when freed >= need -> Some (List.rev acc)
      | [] -> None
      | c :: rest -> take (c.cd_id :: acc) (freed + c.cd_nodes) rest
    in
    take [] 0 ordered

let queue_order jobs =
  List.sort
    (fun (ida, pa, ta) (idb, pb, tb) ->
      match compare pb pa with
      | 0 -> ( match compare ta tb with 0 -> compare ida idb | c -> c)
      | c -> c)
    jobs
  |> List.map (fun (id, _, _) -> id)
