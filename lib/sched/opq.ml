(* Per-job operation queues with a conflict detector.

   The scheduler used to serialize every checkpoint/stop/restart through
   a single in-flight slot.  This queue admits any set of mutually
   non-conflicting operations concurrently, and serializes conflicting
   ones in deterministic FIFO order:

   - an op is admitted iff it conflicts with no live in-flight entry
     AND with no earlier op still waiting in the pending queue (so two
     conflicting ops always start in enqueue order, and a conflicting
     head never gets overtaken by a later compatible-looking op that
     conflicts with it);
   - [max_inflight] caps concurrency (0 = unbounded; 1 reproduces the
     old serialized scheduler, which is the bench baseline).

   The structure is generic over the op type so the conflict-detection
   property tests can drive it with synthetic ops. *)

type 'op entry = {
  mutable e_op : 'op;
      (* mutable so a stop can coalesce into an in-flight checkpoint of
         the same job: the entry's identity (and since-guard) survive,
         only the completion action changes *)
  e_id : int;  (* admission order, for deterministic iteration *)
  e_since : float;  (* admission time: per-entry since-guard/timeout base *)
  mutable e_aborted : bool;
}

type 'op t = {
  conflict : 'op -> 'op -> bool;
  key : 'op -> int;  (* job id; engaged-op counts are per key *)
  max_inflight : int;  (* 0 = unbounded *)
  mutable pending : 'op list;  (* FIFO *)
  mutable inflight : 'op entry list;  (* admission order *)
  mutable next_id : int;
  mutable peak : int;
  counts : (int, int) Hashtbl.t;  (* key -> engaged ops (pending + inflight) *)
}

let create ?(max_inflight = 0) ~conflict ~key () =
  {
    conflict;
    key;
    max_inflight;
    pending = [];
    inflight = [];
    next_id = 0;
    peak = 0;
    counts = Hashtbl.create 64;
  }

let incr_count t k =
  Hashtbl.replace t.counts k (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts k))

let decr_count t k =
  match Hashtbl.find_opt t.counts k with
  | Some n when n > 1 -> Hashtbl.replace t.counts k (n - 1)
  | Some _ -> Hashtbl.remove t.counts k
  | None -> ()

let pending t = t.pending
let inflight t = t.inflight
let inflight_count t = List.length t.inflight
let peak t = t.peak
let is_idle t = t.pending = [] && t.inflight = []

(* any op (pending or in flight) engaged for [key]? *)
let engaged t k = Hashtbl.mem t.counts k

let exists t p =
  List.exists p t.pending || List.exists (fun e -> p e.e_op) t.inflight

let enqueue t op =
  t.pending <- t.pending @ [ op ];
  incr_count t (t.key op)

let remove t entry =
  if List.memq entry t.inflight then begin
    t.inflight <- List.filter (fun e -> e != entry) t.inflight;
    decr_count t (t.key entry.e_op)
  end

let drop_pending t p =
  let dropped, kept = List.partition p t.pending in
  t.pending <- kept;
  List.iter (fun op -> decr_count t (t.key op)) dropped

let abort_inflight t p =
  List.iter (fun e -> if p e.e_op then e.e_aborted <- true) t.inflight

(* Admission pass: walk the pending queue in order, starting every op
   that conflicts with nothing live in flight and nothing still ahead
   of it in the queue.  [coalesce op] may consume the op by merging it
   into an in-flight entry (returns true); [start op] performs the op's
   side effects and returns false to consume it as a no-op (e.g. the
   job's phase no longer wants it). *)
let admit t ~now ?(coalesce = fun _ -> false) ~start () =
  let kept = ref [] in  (* reversed ops that stay pending *)
  let blocked op =
    (t.max_inflight > 0 && List.length t.inflight >= t.max_inflight)
    || List.exists (fun e -> (not e.e_aborted) && t.conflict op e.e_op) t.inflight
    || List.exists (fun earlier -> t.conflict op earlier) !kept
  in
  List.iter
    (fun op ->
      if coalesce op then decr_count t (t.key op)
      else if blocked op then kept := op :: !kept
      else if start op then begin
        let entry = { e_op = op; e_id = t.next_id; e_since = now; e_aborted = false } in
        t.next_id <- t.next_id + 1;
        t.inflight <- t.inflight @ [ entry ];
        if List.length t.inflight > t.peak then t.peak <- List.length t.inflight
      end
      else decr_count t (t.key op))
    t.pending;
  t.pending <- List.rev !kept
