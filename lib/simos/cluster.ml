type storage_config = Local_disks | San_and_nfs of { direct_nodes : int }

type t = {
  eng : Sim.Engine.t;
  fab : Simnet.Fabric.t;
  disc : Simnet.Discovery.t;
  kernels : Kernel.t array;
  targets : Storage.Target.t array;
  up : bool array;  (* administrative node view: false after fail_node *)
}

let create ?(seed = 0xC1A5_7E2L) ?latency ?bandwidth ?(cores_per_node = 4)
    ?(storage = Local_disks) ~nodes () =
  (* Global id pools restart with the cluster: desc/pipe/pty ids are
     only meaningful within one cluster, but they leak into checkpoint
     image encodings, so without a reset a second cluster in the same
     process produces byte-different (if behaviourally identical) images.
     Clusters are used sequentially throughout the repo. *)
  Fdesc.reset ();
  Pipe.reset ();
  Pty.reset ();
  let eng = Sim.Engine.create ~seed () in
  let fab = Simnet.Fabric.create eng ?latency ?bandwidth ~nhosts:nodes () in
  let disc = Simnet.Discovery.create () in
  let targets =
    match storage with
    | Local_disks ->
      Array.init nodes (fun i ->
          let t = Storage.Target.local_disk eng () in
          Storage.Target.set_node t i;
          t)
    | San_and_nfs { direct_nodes } ->
      (* the SAN is shared — its trace events stay node-less *)
      let san = Storage.Target.san eng () in
      (* one NFS server fronts it: the clients share its NIC, so
         concurrent writers queue on the aggregate server rate rather
         than each seeing a private server_rate *)
      let nfs = Storage.Target.nfs eng ~backend:san () in
      Array.init nodes (fun i -> if i < direct_nodes then san else nfs)
  in
  let kernels =
    Array.init nodes (fun i ->
        Kernel.create ~node_id:i ~engine:eng ~fabric:fab ~storage:targets.(i)
          ~cores:cores_per_node
          ~seed:(Int64.add seed (Int64.of_int (31 * (i + 1))))
          ())
  in
  Array.iter (fun k -> Kernel.set_peers k kernels) kernels;
  { eng; fab; disc; kernels; targets; up = Array.make nodes true }

let engine t = t.eng
let fabric t = t.fab
let discovery t = t.disc
let nodes t = Array.length t.kernels
let kernel t i = t.kernels.(i)
let kernels t = t.kernels
let set_hooks t hooks = Array.iter (fun k -> Kernel.set_hooks k hooks) t.kernels
let run ?until t = Sim.Engine.run ?until t.eng
let now t = Sim.Engine.now t.eng

let target t i = t.targets.(i)

(* Fail-stop node crash: every process on the node dies as if the machine
   lost power.  Exit hooks still run (the DMTCP runtime unregisters the
   victims); peers observe connection resets/EOF. *)
let crash_node t i = List.iter (fun p -> Kernel.kill_process t.kernels.(i) p) (Kernel.processes t.kernels.(i))

(* Administrative node view.  [crash_node] models a reboot (processes die,
   node returns); [fail_node] additionally marks the node down so
   schedulers stop placing work there until [set_node_up]. *)
let node_up t i = t.up.(i)
let set_node_up t i v = t.up.(i) <- v

let up_nodes t =
  Array.to_list (Array.mapi (fun i u -> (i, u)) t.up)
  |> List.filter_map (fun (i, u) -> if u then Some i else None)

let fail_node t i =
  t.up.(i) <- false;
  crash_node t i

let all_processes t =
  Array.to_list t.kernels
  |> List.concat_map (fun k -> List.map (fun p -> (k, p)) (Kernel.processes k))

let reset_storage t = Array.iter Storage.Target.reset t.targets
