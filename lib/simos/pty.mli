(** Pseudo-terminals: a master/slave pair of byte channels plus terminal
    modes.  DMTCP records [ptsname], terminal modes, and ownership of the
    controlling terminal, and recreates all of it at restart (paper §1,
    §4.4 step 1). *)

type t

(** Terminal modes — the subset DMTCP must save and restore for programs
    like the readline-based shells of Figure 3 to resume correctly. *)
type termios = {
  mutable icanon : bool;  (** canonical (line-buffered) input *)
  mutable echo : bool;
  mutable isig : bool;    (** signal-generating control characters *)
  mutable baud : int;
}

val default_termios : unit -> termios

val create : unit -> t
val id : t -> int

(** Restart the id sequence (see {!Fdesc.reset}). *)
val reset : unit -> unit

(** ["/dev/pts/N"]. *)
val ptsname : t -> string

val termios : t -> termios
val set_termios : t -> termios -> unit

(** Write on the master side (keyboard -> application). *)
val master_write : t -> string -> int

(** Read on the master side (application output -> screen). *)
val master_read : t -> max:int -> [ `Data of string | `Would_block ]

val slave_write : t -> string -> int
val slave_read : t -> max:int -> [ `Data of string | `Would_block ]

(** Bytes queued in each direction: [(to_slave, to_master)]. *)
val buffered : t -> int * int

(** Checkpoint support: drain both directions, refill at restart. *)
val drain : t -> string * string

val refill : t -> to_slave:string -> to_master:string -> unit

val on_activity : t -> (unit -> unit) -> unit

(** Controlling-terminal ownership (foreground process group). *)
val owner_pgrp : t -> int

val set_owner_pgrp : t -> int -> unit
