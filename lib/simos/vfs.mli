(** A per-node filesystem: a flat namespace of regular files.

    Files carry both real content and a *simulated size*: checkpoint
    images store synthetic bulk pages as small descriptors, so their real
    byte length understates the size the paper's experiments would see.
    Writers declare the simulated size; timing and reported checkpoint
    sizes use it, while restore reads the real content. *)

type t
type file

val create : unit -> t

(** [open_or_create t path] returns the file, creating it empty if
    needed. *)
val open_or_create : t -> string -> file

val lookup : t -> string -> file option
val exists : t -> string -> bool
val unlink : t -> string -> (unit, Errno.t) result
val paths : t -> string list

(** [with_rewrite t f body] runs [body] with the path-rewrite hook [f]
    installed: every path-taking entry point ({!open_or_create},
    {!lookup}, {!exists}, {!unlink}) maps its argument through [f]
    first.  Restores the previous hook on exit.  Restart-rearrangement
    plugins use this to re-point pid-derived paths ([/proc/<pid>/*]) at
    the restarted process without the checkpoint core knowing the
    convention. *)
val with_rewrite : t -> (string -> string) -> (unit -> 'a) -> 'a

val path_of : file -> string

(** Real content length in bytes. *)
val length : file -> int

(** Simulated on-disk size (>= declared via {!set_sim_size}, else the real
    length). *)
val sim_size : file -> int

val set_sim_size : file -> int -> unit

(** [read_at f ~pos ~len] returns up to [len] bytes from [pos] ([""] at or
    past EOF). *)
val read_at : file -> pos:int -> len:int -> string

val read_all : file -> string

(** [write_at f ~pos data] extends the file with zeros if [pos] is past
    the end. *)
val write_at : file -> pos:int -> string -> unit

val append : file -> string -> unit
val truncate : file -> unit
