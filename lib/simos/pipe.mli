(** Unidirectional kernel pipes with POSIX-like semantics: bounded buffer,
    EOF when all writers close, EPIPE when all readers close.

    Note: under DMTCP the [pipe] wrapper *promotes* pipes to socketpairs
    (paper §4.5) so the drain/refill machinery applies uniformly; this
    module is the un-hijacked baseline, still used by processes running
    outside DMTCP. *)

type t

val capacity : int
val create : unit -> t
val id : t -> int

(** Restart the id sequence (see {!Fdesc.reset}). *)
val reset : unit -> unit

(** Reader/writer reference counts, adjusted by the kernel as fds are
    duplicated and closed. *)
val add_reader : t -> unit

val add_writer : t -> unit
val remove_reader : t -> unit
val remove_writer : t -> unit
val readers : t -> int
val writers : t -> int

val read : t -> max:int -> [ `Data of string | `Eof | `Would_block ]

(** [write t data] returns bytes accepted (0 = full) or [Error EPIPE] when
    no readers remain. *)
val write : t -> string -> (int, Errno.t) result

val buffered : t -> int

(** Drain everything (checkpoint support). *)
val drain : t -> string

(** Refill previously drained data at the front-equivalent position
    (buffer is empty at restart, so a plain push restores order). *)
val refill : t -> string -> unit

val on_activity : t -> (unit -> unit) -> unit
