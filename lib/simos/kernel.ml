type sigaction = Sig_default | Sig_ignore | Sig_handler of string

type thread_state = Ready | Blocked of Program.wait | Dead

type thread = {
  tid : int;
  tproc : process;
  mutable inst : Program.instance;
  mutable tstate : thread_state;
  mutable suspended : bool;
  mutable step_pending : bool;
  mutable generation : int;
  mutable manager : bool;
  mutable wake_handle : Sim.Engine.handle option;
}

and pstate = Running | Zombie of int | Reaped

and process = {
  pid : int;
  mutable ppid : int;
  pnode : int;
  mutable threads : thread list;
  fdtable : (int, Fdesc.t) Hashtbl.t;
  mutable next_fd : int;
  mutable space : Mem.Address_space.t;
  mutable env : (string * string) list;
  mutable pstate : pstate;
  mutable hijacked : bool;
  mutable next_tid : int;
  mutable cmdline : string list;
  sigtable : (int, sigaction) Hashtbl.t;
  mutable pending_signals : int list;
  mutable pager : (Mem.Region.t -> int -> float) option;
  mutable fault_debt : float;
}

type t = {
  knode_id : int;
  eng : Sim.Engine.t;
  fab : Simnet.Fabric.t;
  kvfs : Vfs.t;
  store : Storage.Target.t;
  kcores : int;
  procs : (int, process) Hashtbl.t;
  mutable next_pid : int;
  krng : Util.Rng.t;
  mutable khooks : hooks;
  mutable peers : t array;
  mutable poke_scheduled : bool;
}

and hooks = {
  on_spawn : t -> process -> unit;
  on_fork : t -> parent:process -> child:process -> unit;
  on_exec : t -> process -> prog:string -> argv:string list -> string * string list;
  on_ssh : t -> process -> host:int -> prog:string -> argv:string list -> string * string list;
  on_socket : t -> process -> fd:int -> Fdesc.t -> unit;
  on_connect : t -> process -> fd:int -> Fdesc.t -> unit;
  on_accept : t -> process -> fd:int -> Fdesc.t -> unit;
  on_pipe : t -> process -> (int * int) option;
  on_close : t -> process -> fd:int -> Fdesc.t -> unit;
  on_exit : t -> process -> unit;
}

let default_hooks =
  {
    on_spawn = (fun _ _ -> ());
    on_fork = (fun _ ~parent:_ ~child:_ -> ());
    on_exec = (fun _ _ ~prog ~argv -> (prog, argv));
    on_ssh = (fun _ _ ~host:_ ~prog ~argv -> (prog, argv));
    on_socket = (fun _ _ ~fd:_ _ -> ());
    on_connect = (fun _ _ ~fd:_ _ -> ());
    on_accept = (fun _ _ ~fd:_ _ -> ());
    on_pipe = (fun _ _ -> None);
    on_close = (fun _ _ ~fd:_ _ -> ());
    on_exit = (fun _ _ -> ());
  }

let create ~node_id ~engine ~fabric ~storage ?(cores = 4) ?seed () =
  let seed = Option.value seed ~default:(Int64.of_int (0x9E37 + node_id)) in
  {
    knode_id = node_id;
    eng = engine;
    fab = fabric;
    kvfs = Vfs.create ();
    store = storage;
    kcores = cores;
    procs = Hashtbl.create 32;
    next_pid = 100 * (node_id + 1);
    krng = Util.Rng.create seed;
    khooks = default_hooks;
    peers = [||];
    poke_scheduled = false;
  }

let set_peers t peers = t.peers <- peers
let set_hooks t hooks = t.khooks <- hooks
let hooks t = t.khooks
let node_id t = t.knode_id
let engine t = t.eng
let fabric t = t.fab
let vfs t = t.kvfs

(* Every process gets a pid-derived procfs entry, the canonical example
   of a resource whose *name* breaks across restart: a checkpointed fd
   on /proc/<pid>/status names the dead pid until a restart-rearrange
   plugin re-points it.  Entries for dead pids linger, as real procfs
   readers of a cached fd would observe. *)
let write_proc_status t ~pid =
  let f = Vfs.open_or_create t.kvfs (Printf.sprintf "/proc/%d/status" pid) in
  Vfs.truncate f;
  Vfs.append f (Printf.sprintf "pid:%d\n" pid)
let storage t = t.store
let cores t = t.kcores
let peer t i = t.peers.(i)

(* Lifecycle and fd-op accounting; the instants carry the simulated time
   so a collected trace interleaves exactly with protocol spans. *)
let m_spawns = Trace.Metrics.counter "kernel.spawns"
let m_forks = Trace.Metrics.counter "kernel.forks"
let m_execs = Trace.Metrics.counter "kernel.execs"
let m_exits = Trace.Metrics.counter "kernel.exits"
let m_fd_opens = Trace.Metrics.counter "kernel.fd_opens"
let m_fd_closes = Trace.Metrics.counter "kernel.fd_closes"
let m_read_bytes = Trace.Metrics.counter "kernel.read_bytes"
let m_write_bytes = Trace.Metrics.counter "kernel.write_bytes"
let m_page_faults = Trace.Metrics.counter "kernel.page_faults"

let trace_proc t ~pid name args =
  if Trace.on () then
    Trace.instant ~node:t.knode_id ~pid ~cat:"kernel" ~name ~args ~time:(Sim.Engine.now t.eng) ()

(* yield cost between consecutive steps of a runnable thread *)
let quantum = 2e-6

let runnable_threads t =
  Hashtbl.fold
    (fun _ p acc ->
      if p.pstate = Running then
        acc
        + List.length (List.filter (fun th -> th.tstate = Ready && not th.suspended) p.threads)
      else acc)
    t.procs 0

let load_factor t = Float.max 1.0 (float_of_int (runnable_threads t) /. float_of_int t.kcores)

(* ------------------------------------------------------------------ *)
(* Wait conditions *)

let fd_desc proc fd = Hashtbl.find_opt proc.fdtable fd

let wait_satisfied t proc = function
  | Program.Readable fd -> (
    match fd_desc proc fd with
    | None -> true (* read will return EBADF; wake it *)
    | Some d -> Fdesc.readable d)
  | Program.Readable_any fds ->
    List.exists
      (fun fd ->
        match fd_desc proc fd with
        | None -> true
        | Some d -> Fdesc.readable d)
      fds
  | Program.Writable fd -> (
    match fd_desc proc fd with
    | None -> true
    | Some d -> Fdesc.writable d)
  | Program.Child ->
    (* wake if there is a zombie child to reap, or no children at all
       (the wait will return ECHILD) *)
    let has_child = ref false in
    let has_zombie = ref false in
    Hashtbl.iter
      (fun _ p ->
        if p.ppid = proc.pid && p.pstate <> Reaped then begin
          has_child := true;
          match p.pstate with
          | Zombie _ -> has_zombie := true
          | Running | Reaped -> ()
        end)
      t.procs;
    (not !has_child) || !has_zombie
  | Program.Sleep_until deadline -> Sim.Engine.now t.eng >= deadline
  | Program.Stopped -> false

let get_sigaction proc signal =
  Option.value ~default:Sig_default (Hashtbl.find_opt proc.sigtable signal)

let set_sigaction proc signal action = Hashtbl.replace proc.sigtable signal action

(* ------------------------------------------------------------------ *)
(* Scheduling *)

(* Demand paging for lazy restore: while a pager is installed, any
   memory access that lands on a non-resident page marks it resident and
   charges the pager's per-page cost to the process's fault debt, which
   the scheduler drains into the thread's next delay.  Page contents are
   always materially present — the pager models time, not data. *)
let page_touch proc ~addr ~len =
  match proc.pager with
  | None -> ()
  | Some pager ->
    if len > 0 then begin
      match Mem.Address_space.find_region proc.space ~addr with
      | None -> ()
      | Some r ->
        let first = (addr - r.Mem.Region.start_addr) / Mem.Page.size in
        let last =
          min
            ((addr + len - 1 - r.Mem.Region.start_addr) / Mem.Page.size)
            (Mem.Region.npages r - 1)
        in
        for i = first to last do
          if not (Mem.Region.is_resident r i) then begin
            Mem.Region.set_resident r i;
            proc.fault_debt <- proc.fault_debt +. pager r i;
            Trace.Metrics.incr m_page_faults
          end
        done
    end

(* Accumulated page-fault time, drained into the next scheduling delay
   of whichever thread of the process runs next. *)
let take_fault_debt proc =
  let d = proc.fault_debt in
  proc.fault_debt <- 0.;
  d

let rec schedule_step t th ~delay =
  if not th.step_pending then begin
    th.step_pending <- true;
    let gen = th.generation in
    ignore
      (Sim.Engine.schedule t.eng ~delay (fun () ->
           if th.generation = gen then begin
             th.step_pending <- false;
             run_step t th
           end))
  end

and run_step t th =
  if th.tstate = Ready && (not th.suspended) && th.tproc.pstate = Running then begin
    let ctx = make_ctx t th in
    match Program.step_instance ctx th.inst with
    | Program.B_continue -> schedule_step t th ~delay:(quantum +. take_fault_debt th.tproc)
    | Program.B_compute dt ->
      schedule_step t th
        ~delay:(Float.max quantum (dt *. load_factor t) +. take_fault_debt th.tproc)
    | Program.B_block w ->
      if wait_satisfied t th.tproc w then
        schedule_step t th ~delay:(quantum +. take_fault_debt th.tproc)
      else begin
        th.tstate <- Blocked w;
        match w with
        | Program.Sleep_until deadline ->
          let gen = th.generation in
          let delay =
            Float.max 0. (deadline -. Sim.Engine.now t.eng) +. take_fault_debt th.tproc
          in
          th.wake_handle <-
            Some
              (Sim.Engine.schedule t.eng ~delay (fun () ->
                   th.wake_handle <- None;
                   if th.generation = gen && th.tstate = Blocked w then begin
                     th.tstate <- Ready;
                     if not th.suspended then schedule_step t th ~delay:0.
                   end))
        | Program.Readable _ | Program.Readable_any _ | Program.Writable _ | Program.Child
        | Program.Stopped ->
          ()
      end
    | Program.B_fork child_inst ->
      let child = do_fork t th.tproc child_inst in
      ignore child;
      schedule_step t th ~delay:quantum
    | Program.B_exec { prog; argv } ->
      do_exec t th ~prog ~argv;
      schedule_step t th ~delay:quantum
    | Program.B_exit code -> do_exit t th.tproc code
  end

and make_ctx t th : Program.ctx =
  let proc = th.tproc in
  let check_fd fd k =
    match fd_desc proc fd with
    | None -> `Err Errno.EBADF
    | Some d -> k d
  in
  let check_fd_res fd k =
    match fd_desc proc fd with
    | None -> Error Errno.EBADF
    | Some d -> k d
  in
  let with_sock fd k =
    match fd_desc proc fd with
    | Some { Fdesc.kind = Fdesc.Sock s; _ } -> Some (k s)
    | _ -> None
  in
  let install desc =
    let fd = proc.next_fd in
    proc.next_fd <- fd + 1;
    Hashtbl.replace proc.fdtable fd desc;
    Trace.Metrics.incr m_fd_opens;
    trace_proc t ~pid:proc.pid "fd/open" [ ("fd", string_of_int fd) ];
    fd
  in
  let bind_wake_sock s = Simnet.Fabric.on_activity s (fun () -> poke_later t) in
  (* DMTCP's wrappers interpose on the application, not on the injected
     library itself: manager threads bypass the hook table. *)
  let wrapped = proc.hijacked && not th.manager in
  let new_socket unix =
    let s = if unix then Simnet.Fabric.socket_unix t.fab ~host:t.knode_id else Simnet.Fabric.socket t.fab ~host:t.knode_id in
    bind_wake_sock s;
    let desc = Fdesc.make (Fdesc.Sock s) in
    let fd = install desc in
    if wrapped then t.khooks.on_socket t proc ~fd desc;
    fd
  in
  {
    now = (fun () -> Sim.Engine.now t.eng);
    rng = t.krng;
    node_id = t.knode_id;
    pid = proc.pid;
    tid = th.tid;
    ppid = (fun () -> proc.ppid);
    argv = proc.cmdline;
    getenv = (fun k -> List.assoc_opt k proc.env);
    setenv =
      (fun k v ->
        proc.env <- (k, v) :: List.remove_assoc k proc.env);
    log =
      (fun msg ->
        Logs.debug (fun m -> m "[%.6f n%d p%d t%d] %s" (Sim.Engine.now t.eng) t.knode_id proc.pid th.tid msg));
    open_file =
      (fun ?(create = true) path ->
        match Vfs.lookup t.kvfs path with
        | Some f -> Ok (install (Fdesc.make (Fdesc.File { file = f; offset = 0 })))
        | None ->
          if create then Ok (install (Fdesc.make (Fdesc.File { file = Vfs.open_or_create t.kvfs path; offset = 0 })))
          else Error Errno.ENOENT);
    unlink = (fun path -> Vfs.unlink t.kvfs path);
    file_exists = (fun path -> Vfs.exists t.kvfs path);
    read_fd =
      (fun fd ~max ->
        let res =
          check_fd fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.File f ->
              let data = Vfs.read_at f.file ~pos:f.offset ~len:max in
              if data = "" then `Eof
              else begin
                f.offset <- f.offset + String.length data;
                `Data data
              end
            | Fdesc.Sock s -> (
              match Simnet.Fabric.recv s ~max with
              | `Data d -> `Data d
              | `Eof -> `Eof
              | `Would_block -> `Would_block
              | `Error _ -> `Err Errno.ENOTCONN)
            | Fdesc.Pipe_r p -> (Pipe.read p ~max :> [ `Data of string | `Eof | `Would_block | `Err of Errno.t ])
            | Fdesc.Pipe_w _ -> `Err Errno.EINVAL
            | Fdesc.Pty_m p -> (
              match Pty.master_read p ~max with
              | `Data d -> `Data d
              | `Would_block -> `Would_block)
            | Fdesc.Pty_s p -> (
              match Pty.slave_read p ~max with
              | `Data d -> `Data d
              | `Would_block -> `Would_block))
        in
        (match res with
        | `Data d -> Trace.Metrics.add m_read_bytes (float_of_int (String.length d))
        | _ -> ());
        res);
    write_fd =
      (fun fd data ->
        let res =
          check_fd_res fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.File f ->
              Vfs.write_at f.file ~pos:f.offset data;
              f.offset <- f.offset + String.length data;
              poke_later t;
              Ok (String.length data)
            | Fdesc.Sock s -> (
              match Simnet.Fabric.send s data with
              | Ok n -> Ok n
              | Error Simnet.Fabric.Refused -> Error Errno.ECONNREFUSED
              | Error _ -> Error Errno.ENOTCONN)
            | Fdesc.Pipe_r _ -> Error Errno.EINVAL
            | Fdesc.Pipe_w p -> Pipe.write p data
            | Fdesc.Pty_m p -> Ok (Pty.master_write p data)
            | Fdesc.Pty_s p -> Ok (Pty.slave_write p data))
        in
        (match res with
        | Ok n -> Trace.Metrics.add m_write_bytes (float_of_int n)
        | Error _ -> ());
        res);
    close_fd = (fun fd -> remove_fd t proc ~fd);
    dup =
      (fun fd ->
        check_fd_res fd (fun d ->
            Fdesc.incr_ref d;
            (match d.Fdesc.kind with
            | Fdesc.Pipe_r p -> Pipe.add_reader p
            | Fdesc.Pipe_w p -> Pipe.add_writer p
            | _ -> ());
            Ok (install d)));
    dup2 =
      (fun ~src ~dst ->
        check_fd_res src (fun d ->
            if src <> dst then begin
              (match fd_desc proc dst with
              | Some old -> begin
                Hashtbl.remove proc.fdtable dst;
                decr_desc old
              end
              | None -> ());
              Fdesc.incr_ref d;
              (match d.Fdesc.kind with
              | Fdesc.Pipe_r p -> Pipe.add_reader p
              | Fdesc.Pipe_w p -> Pipe.add_writer p
              | _ -> ());
              Hashtbl.replace proc.fdtable dst d;
              proc.next_fd <- max proc.next_fd (dst + 1)
            end;
            Ok ()));
    fds = (fun () -> Hashtbl.fold (fun fd _ acc -> fd :: acc) proc.fdtable [] |> List.sort compare);
    fd_readable = (fun fd -> match fd_desc proc fd with Some d -> Fdesc.readable d | None -> false);
    fd_writable = (fun fd -> match fd_desc proc fd with Some d -> Fdesc.writable d | None -> false);
    set_fd_owner =
      (fun fd owner -> match fd_desc proc fd with Some d -> d.Fdesc.owner <- owner | None -> ());
    get_fd_owner = (fun fd -> match fd_desc proc fd with Some d -> d.Fdesc.owner | None -> 0);
    pipe =
      (fun () ->
        match (if wrapped then t.khooks.on_pipe t proc else None) with
        | Some fds -> fds
        | None ->
          let p = Pipe.create () in
          Pipe.on_activity p (fun () -> poke_later t);
          Pipe.add_reader p;
          Pipe.add_writer p;
          let rfd = install (Fdesc.make (Fdesc.Pipe_r p)) in
          let wfd = install (Fdesc.make (Fdesc.Pipe_w p)) in
          (rfd, wfd));
    open_pty =
      (fun () ->
        let p = Pty.create () in
        Pty.on_activity p (fun () -> poke_later t);
        let m = install (Fdesc.make (Fdesc.Pty_m p)) in
        let s = install (Fdesc.make (Fdesc.Pty_s p)) in
        (m, s));
    socket = (fun () -> new_socket false);
    socket_unix = (fun () -> new_socket true);
    socketpair =
      (fun () ->
        let a, b = Simnet.Fabric.socketpair t.fab ~host:t.knode_id in
        bind_wake_sock a;
        bind_wake_sock b;
        let fa = install (Fdesc.make (Fdesc.Sock a)) in
        let fb = install (Fdesc.make (Fdesc.Sock b)) in
        (fa, fb));
    bind =
      (fun fd ~port ->
        check_fd_res fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.Sock s -> (
              match Simnet.Fabric.bind s ~port with
              | Ok p -> Ok p
              | Error Simnet.Fabric.Addr_in_use -> Error Errno.EADDRINUSE
              | Error _ -> Error Errno.EINVAL)
            | _ -> Error Errno.EINVAL));
    bind_unix =
      (fun fd ~path ->
        check_fd_res fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.Sock s -> (
              match Simnet.Fabric.bind_unix s ~path with
              | Ok () -> Ok ()
              | Error Simnet.Fabric.Addr_in_use -> Error Errno.EADDRINUSE
              | Error _ -> Error Errno.EINVAL)
            | _ -> Error Errno.EINVAL));
    listen =
      (fun fd ~backlog ->
        check_fd_res fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.Sock s -> (
              match Simnet.Fabric.listen s ~backlog with
              | Ok () -> Ok ()
              | Error Simnet.Fabric.Addr_in_use -> Error Errno.EADDRINUSE
              | Error _ -> Error Errno.EINVAL)
            | _ -> Error Errno.EINVAL));
    accept =
      (fun fd ->
        match fd_desc proc fd with
        | Some { Fdesc.kind = Fdesc.Sock s; _ } -> (
          match Simnet.Fabric.accept s with
          | None -> None
          | Some conn ->
            bind_wake_sock conn;
            let desc = Fdesc.make (Fdesc.Sock conn) in
            let nfd = install desc in
            if wrapped then t.khooks.on_accept t proc ~fd:nfd desc;
            Some nfd)
        | _ -> None);
    connect =
      (fun fd addr ->
        check_fd_res fd (fun d ->
            match d.Fdesc.kind with
            | Fdesc.Sock s -> (
              match Simnet.Fabric.connect s addr with
              | Ok () ->
                if wrapped then t.khooks.on_connect t proc ~fd d;
                Ok ()
              | Error _ -> Error Errno.EINVAL)
            | _ -> Error Errno.EINVAL));
    sock_state = (fun fd -> with_sock fd Simnet.Fabric.state);
    sock_refused =
      (fun fd -> match with_sock fd Simnet.Fabric.connect_refused with Some b -> b | None -> false);
    sock_local_addr =
      (fun fd -> match with_sock fd Simnet.Fabric.local_addr with Some a -> a | None -> None);
    mmap = (fun ~bytes ~kind -> Mem.Address_space.map proc.space ~kind ~perms:Mem.Region.rw ~bytes ());
    mem_write =
      (fun ~addr data ->
        page_touch proc ~addr ~len:(String.length data);
        Mem.Address_space.write proc.space ~addr data);
    mem_read =
      (fun ~addr ~len ->
        page_touch proc ~addr ~len;
        Mem.Address_space.read proc.space ~addr ~len);
    sigaction_set =
      (fun signal action ->
        set_sigaction proc signal
          (match action with
          | `Default -> Sig_default
          | `Ignore -> Sig_ignore
          | `Handler name -> Sig_handler name));
    sigaction_get =
      (fun signal ->
        match get_sigaction proc signal with
        | Sig_default -> `Default
        | Sig_ignore -> `Ignore
        | Sig_handler name -> `Handler name);
    send_signal =
      (fun ~pid ~signal ->
        match Hashtbl.find_opt t.procs pid with
        | Some target when target.pstate = Running ->
          deliver_signal t target ~signal;
          Ok ()
        | Some _ | None -> Error Errno.ESRCH);
    take_signal =
      (fun () ->
        match proc.pending_signals with
        | [] -> None
        | s :: rest ->
          proc.pending_signals <- rest;
          Some s);
    spawn_thread =
      (fun ~prog ~argv ->
        let inst = Program.instantiate ~name:prog ~argv in
        let nth = add_thread_internal t proc ~inst ~manager:false ~blocked:None in
        nth.tid);
    wait_child =
      (fun () ->
        let zombie = ref None in
        let has_child = ref false in
        Hashtbl.iter
          (fun _ p ->
            if p.ppid = proc.pid && p.pstate <> Reaped then begin
              has_child := true;
              match p.pstate with
              | Zombie code when !zombie = None -> zombie := Some (p, code)
              | _ -> ()
            end)
          t.procs;
        match !zombie with
        | Some (p, code) ->
          p.pstate <- Reaped;
          Hashtbl.remove t.procs p.pid;
          `Child (p.pid, code)
        | None -> if !has_child then `None else `No_children);
    kill =
      (fun ~pid ->
        match Hashtbl.find_opt t.procs pid with
        | Some p when p.pstate = Running ->
          do_exit_process t p 143;
          Ok ()
        | Some _ | None -> Error Errno.ESRCH);
    process_alive =
      (fun ~pid ->
        match Hashtbl.find_opt t.procs pid with
        | Some p -> p.pstate = Running
        | None -> false);
    ssh =
      (fun ~host ~prog ~argv ->
        if host < 0 || host >= Array.length t.peers then Error Errno.EINVAL
        else begin
          let prog, argv =
            if proc.hijacked then t.khooks.on_ssh t proc ~host ~prog ~argv else (prog, argv)
          in
          let remote = t.peers.(host) in
          let env = proc.env in
          match spawn_internal remote ~prog ~argv ~env ~ppid:0 ~hijacked:false with
          | p -> Ok p.pid
          | exception Not_found -> Error Errno.ENOENT
        end);
  }

(* ------------------------------------------------------------------ *)
(* fd helpers *)

and decr_desc desc =
  (match desc.Fdesc.kind with
  | Fdesc.Pipe_r p -> Pipe.remove_reader p
  | Fdesc.Pipe_w p -> Pipe.remove_writer p
  | _ -> ());
  Fdesc.decr_ref desc

and remove_fd t proc ~fd =
  match Hashtbl.find_opt proc.fdtable fd with
  | None -> ()
  | Some desc ->
    if proc.hijacked then t.khooks.on_close t proc ~fd desc;
    Hashtbl.remove proc.fdtable fd;
    Trace.Metrics.incr m_fd_closes;
    trace_proc t ~pid:proc.pid "fd/close" [ ("fd", string_of_int fd) ];
    decr_desc desc;
    poke_later t

(* ------------------------------------------------------------------ *)
(* poke: recheck blocked threads *)

and poke_later t =
  if not t.poke_scheduled then begin
    t.poke_scheduled <- true;
    ignore
      (Sim.Engine.schedule t.eng ~delay:0. (fun () ->
           t.poke_scheduled <- false;
           poke t))
  end

and poke t =
  Hashtbl.iter
    (fun _ proc ->
      if proc.pstate = Running then
        List.iter
          (fun th ->
            match th.tstate with
            | Blocked w when (not th.suspended) && wait_satisfied t proc w ->
              th.tstate <- Ready;
              schedule_step t th ~delay:0.
            | _ -> ())
          proc.threads)
    t.procs

and kill_thread th =
  th.tstate <- Dead;
  th.generation <- th.generation + 1;
  (match th.wake_handle with
  | Some h ->
    Sim.Engine.cancel h;
    th.wake_handle <- None
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Process lifecycle *)

and spawn_internal t ~prog ~argv ~env ~ppid ~hijacked =
  let inst = Program.instantiate ~name:prog ~argv in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let proc =
    {
      pid;
      ppid;
      pnode = t.knode_id;
      threads = [];
      fdtable = Hashtbl.create 8;
      next_fd = 3;
      space = Mem.Address_space.create ();
      env;
      pstate = Running;
      hijacked;
      next_tid = 1;
      cmdline = prog :: argv;
      sigtable = Hashtbl.create 4;
      pending_signals = [];
      pager = None;
      fault_debt = 0.;
    }
  in
  Hashtbl.replace t.procs pid proc;
  write_proc_status t ~pid;
  Trace.Metrics.incr m_spawns;
  trace_proc t ~pid "proc/spawn" [ ("prog", prog) ];
  let th = add_thread_internal t proc ~inst ~manager:false ~blocked:None in
  ignore th;
  (* DMTCP hijack: the injected library starts the checkpoint manager
     thread at process startup (paper §4.2). *)
  let hijack_env = List.mem_assoc "DMTCP_HIJACK" env in
  if hijacked || hijack_env then begin
    proc.hijacked <- true;
    t.khooks.on_spawn t proc
  end;
  proc

and add_thread_internal t proc ~inst ~manager ~blocked =
  let tid = proc.next_tid in
  proc.next_tid <- tid + 1;
  let th =
    {
      tid;
      tproc = proc;
      inst;
      tstate = (match blocked with None -> Ready | Some w -> Blocked w);
      suspended = false;
      step_pending = false;
      generation = 0;
      manager;
      wake_handle = None;
    }
  in
  proc.threads <- proc.threads @ [ th ];
  (match blocked with
  | None -> schedule_step t th ~delay:0.
  | Some _ -> ());
  th

and do_fork t parent child_inst =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let child =
    {
      pid;
      ppid = parent.pid;
      pnode = t.knode_id;
      threads = [];
      fdtable = Hashtbl.copy parent.fdtable;
      next_fd = parent.next_fd;
      space = Mem.Address_space.fork parent.space;
      env = parent.env;
      pstate = Running;
      hijacked = parent.hijacked;
      next_tid = 1;
      cmdline = parent.cmdline;
      sigtable = Hashtbl.copy parent.sigtable;
      pending_signals = [];
      pager = parent.pager;
      fault_debt = 0.;
    }
  in
  (* shared open file descriptions: bump refcounts *)
  Hashtbl.iter
    (fun _ desc ->
      Fdesc.incr_ref desc;
      match desc.Fdesc.kind with
      | Fdesc.Pipe_r p -> Pipe.add_reader p
      | Fdesc.Pipe_w p -> Pipe.add_writer p
      | _ -> ())
    child.fdtable;
  Hashtbl.replace t.procs pid child;
  write_proc_status t ~pid;
  Trace.Metrics.incr m_forks;
  trace_proc t ~pid:parent.pid "proc/fork" [ ("child", string_of_int pid) ];
  ignore (add_thread_internal t child ~inst:child_inst ~manager:false ~blocked:None);
  if child.hijacked then t.khooks.on_fork t ~parent ~child;
  child

and do_exec t th ~prog ~argv =
  let proc = th.tproc in
  let prog, argv = if proc.hijacked then t.khooks.on_exec t proc ~prog ~argv else (prog, argv) in
  match Program.instantiate ~name:prog ~argv with
  | exception Not_found -> () (* exec failed; thread continues with old image *)
  | inst ->
    Trace.Metrics.incr m_execs;
    trace_proc t ~pid:proc.pid "proc/exec" [ ("prog", prog) ];
    (* exec kills all other threads and replaces the address space *)
    List.iter (fun other -> if other.tid <> th.tid then kill_thread other) proc.threads;
    proc.threads <- [ th ];
    th.manager <- false;
    proc.space <- Mem.Address_space.create ();
    proc.cmdline <- prog :: argv;
    th.inst <- inst;
    (* the injected DMTCP library survives exec via the environment *)
    if proc.hijacked || List.mem_assoc "DMTCP_HIJACK" proc.env then begin
      proc.hijacked <- true;
      t.khooks.on_spawn t proc
    end

and do_exit_process t proc code =
  if proc.pstate = Running then begin
    Trace.Metrics.incr m_exits;
    trace_proc t ~pid:proc.pid "proc/exit" [ ("code", string_of_int code) ];
    if proc.hijacked then t.khooks.on_exit t proc;
    List.iter kill_thread proc.threads;
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) proc.fdtable [] in
    List.iter (fun fd -> remove_fd t proc ~fd) fds;
    (* reparent children to "no one": they self-reap on exit *)
    Hashtbl.iter (fun _ p -> if p.ppid = proc.pid then p.ppid <- 0) t.procs;
    if proc.ppid = 0 then begin
      proc.pstate <- Reaped;
      Hashtbl.remove t.procs proc.pid
    end
    else proc.pstate <- Zombie code;
    poke_later t
  end

and do_exit t proc code = do_exit_process t proc code

and deliver_signal t proc ~signal =
  if signal = 9 then do_exit_process t proc (128 + signal)
  else
    match get_sigaction proc signal with
    | Sig_ignore -> ()
    | Sig_handler _ ->
      proc.pending_signals <- proc.pending_signals @ [ signal ];
      poke_later t
    | Sig_default ->
      (* fatal defaults only; others (e.g. SIGCHLD) are dropped *)
      if signal = 1 || signal = 2 || signal = 15 then do_exit_process t proc (128 + signal)

(* ------------------------------------------------------------------ *)
(* Public wrappers *)

let refork t ~child =
  let inst =
    match child.threads with
    | [ th ] -> th.inst
    | _ -> invalid_arg "Kernel.refork: child must be single-threaded"
  in
  List.iter kill_thread child.threads;
  Hashtbl.remove t.procs child.pid;
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  (* move semantics: the new process takes over the child's fd table and
     address space, so no refcount adjustment is needed *)
  let proc = { child with pid; threads = []; next_tid = 1 } in
  Hashtbl.replace t.procs pid proc;
  write_proc_status t ~pid;
  ignore (add_thread_internal t proc ~inst ~manager:false ~blocked:None);
  proc

let spawn t ~prog ~argv ?(env = []) ?(ppid = 0) ?(hijacked = false) () =
  spawn_internal t ~prog ~argv ~env ~ppid ~hijacked

let create_raw_process t ~pid ~ppid ~env ~hijacked =
  let proc =
    {
      pid;
      ppid;
      pnode = t.knode_id;
      threads = [];
      fdtable = Hashtbl.create 8;
      next_fd = 3;
      space = Mem.Address_space.create ();
      env;
      pstate = Running;
      hijacked;
      next_tid = 1;
      cmdline = [];
      sigtable = Hashtbl.create 4;
      pending_signals = [];
      pager = None;
      fault_debt = 0.;
    }
  in
  Hashtbl.replace t.procs pid proc;
  write_proc_status t ~pid;
  proc

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let add_thread t proc ~inst ?(manager = false) ?blocked () =
  add_thread_internal t proc ~inst ~manager ~blocked

let find_process t ~pid = Hashtbl.find_opt t.procs pid

let processes t =
  Hashtbl.fold (fun _ p acc -> if p.pstate = Running then p :: acc else acc) t.procs []
  |> List.sort (fun a b -> compare a.pid b.pid)

let kill_process t proc = do_exit_process t proc 137

let vanish_process t proc =
  List.iter kill_thread proc.threads;
  let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) proc.fdtable [] in
  List.iter (fun fd -> remove_fd t proc ~fd) fds;
  proc.pstate <- Reaped;
  Hashtbl.remove t.procs proc.pid

let suspend_user_threads t proc =
  ignore t;
  List.iter (fun th -> if not th.manager then th.suspended <- true) proc.threads

let resume_user_threads t proc =
  List.iter
    (fun th ->
      if th.suspended then begin
        th.suspended <- false;
        match th.tstate with
        | Ready -> schedule_step t th ~delay:0.
        | Blocked w -> if wait_satisfied t proc w then begin
            th.tstate <- Ready;
            schedule_step t th ~delay:0.
          end
        | Dead -> ()
      end)
    proc.threads

let wake_thread t th =
  match th.tstate with
  | Blocked Program.Stopped ->
    th.tstate <- Ready;
    if not th.suspended then schedule_step t th ~delay:0.
  | _ -> ()

let proc_maps proc =
  let buf = Buffer.create 256 in
  List.iter
    (fun (r : Mem.Region.t) ->
      let perms = r.Mem.Region.perms in
      Buffer.add_string buf
        (Printf.sprintf "%08x-%08x %c%c%c%c %s\n" r.Mem.Region.start_addr (Mem.Region.end_addr r)
           (if perms.Mem.Region.read then 'r' else '-')
           (if perms.Mem.Region.write then 'w' else '-')
           (if perms.Mem.Region.exec then 'x' else '-')
           'p' (Mem.Region.kind_name r.Mem.Region.kind)))
    (Mem.Address_space.regions proc.space);
  Buffer.contents buf

let fd_desc proc fd = fd_desc proc fd
let install_fd t proc ~fd desc =
  Hashtbl.replace proc.fdtable fd desc;
  proc.next_fd <- max proc.next_fd (fd + 1);
  (* (re)bind wake-ups of the underlying object to this kernel *)
  (match desc.Fdesc.kind with
  | Fdesc.Sock s -> Simnet.Fabric.on_activity s (fun () -> poke_later t)
  | Fdesc.Pipe_r p | Fdesc.Pipe_w p -> Pipe.on_activity p (fun () -> poke_later t)
  | Fdesc.Pty_m p | Fdesc.Pty_s p -> Pty.on_activity p (fun () -> poke_later t)
  | Fdesc.File _ -> ())

let alloc_fd t proc desc =
  let fd = proc.next_fd in
  proc.next_fd <- fd + 1;
  install_fd t proc ~fd desc;
  fd

let remove_fd t proc ~fd = remove_fd t proc ~fd
