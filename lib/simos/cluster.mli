(** A whole simulated cluster: one engine, one fabric, one discovery
    service, and a kernel plus storage target per node.

    Mirrors the paper's testbed (§5.2): 32 nodes, 4 cores each, Gigabit
    Ethernet, local disk per node; optionally a SAN reachable directly
    from the first 8 nodes and via NFS from the rest (Figure 5b). *)

type storage_config =
  | Local_disks             (** one independent disk per node (default) *)
  | San_and_nfs of { direct_nodes : int }
      (** shared SAN for the first [direct_nodes] nodes, NFS re-export of
          it for the others *)

type t

val create :
  ?seed:int64 ->
  ?latency:float ->
  ?bandwidth:float ->
  ?cores_per_node:int ->
  ?storage:storage_config ->
  nodes:int ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val fabric : t -> Simnet.Fabric.t
val discovery : t -> Simnet.Discovery.t
val nodes : t -> int
val kernel : t -> int -> Kernel.t
val kernels : t -> Kernel.t array

(** Install the same hook table in every kernel. *)
val set_hooks : t -> Kernel.hooks -> unit

(** Run the simulation until quiescent or [until]. *)
val run : ?until:float -> t -> unit

(** Current virtual time. *)
val now : t -> float

(** Every running process, cluster-wide, as (kernel, process), sorted by
    (node, pid). *)
val all_processes : t -> (Kernel.t * Kernel.process) list

(** Reset each node's storage-target cache/queue state (between
    experiment repetitions). *)
val reset_storage : t -> unit

(** Node [i]'s storage target — exposed for fault injection
    ({!Storage.Target.set_slowdown}). *)
val target : t -> int -> Storage.Target.t

(** Fail-stop crash of node [i]: kill every process on it at the current
    virtual time.  Exit hooks run; remote peers observe EOF. *)
val crash_node : t -> int -> unit

(** Administrative up/down view of node [i] (all nodes start up).
    {!crash_node} does not change it — a crash models a reboot;
    {!fail_node} does. *)
val node_up : t -> int -> bool

val set_node_up : t -> int -> bool -> unit

(** Nodes currently marked up, ascending. *)
val up_nodes : t -> int list

(** {!crash_node} plus marking the node down: the machine is lost, not
    rebooting, so schedulers must migrate its work elsewhere. *)
val fail_node : t -> int -> unit
