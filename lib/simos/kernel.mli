(** The per-node kernel: process table, thread scheduler, file
    descriptors, and the syscall implementations behind {!Program.ctx}.

    DMTCP attaches to processes through the {!hooks} table, the simulation
    analogue of [LD_PRELOAD] symbol interposition: hooks fire only for
    processes launched with [~hijacked:true] (i.e. under
    [dmtcp_checkpoint]) and let the DMTCP layer wrap fork, exec, ssh,
    socket creation, connect, accept and pipe — the same libc calls the
    paper lists in §4.2. *)

(** Disposition of a signal for a process — saved and restored by the
    checkpointer (the paper lists signal handlers among the artifacts
    DMTCP accounts for). [Handler] records the handler's identity; custom
    handlers are data to the checkpointer, not executed by the kernel. *)
type sigaction = Sig_default | Sig_ignore | Sig_handler of string

type thread_state = Ready | Blocked of Program.wait | Dead

type thread = {
  tid : int;
  tproc : process;
  mutable inst : Program.instance;
  mutable tstate : thread_state;
  mutable suspended : bool;   (** checkpoint suspension (MTCP) *)
  mutable step_pending : bool;
  mutable generation : int;   (** invalidates stale scheduler events *)
  mutable manager : bool;     (** DMTCP checkpoint-manager thread *)
  mutable wake_handle : Sim.Engine.handle option;
      (** pending sleep wake-up, cancelled when the thread dies *)
}

and pstate = Running | Zombie of int | Reaped

and process = {
  pid : int;
  mutable ppid : int;
  pnode : int;
  mutable threads : thread list;
  fdtable : (int, Fdesc.t) Hashtbl.t;
  mutable next_fd : int;
  mutable space : Mem.Address_space.t;
  mutable env : (string * string) list;
  mutable pstate : pstate;
  mutable hijacked : bool;
  mutable next_tid : int;
  mutable cmdline : string list;
  sigtable : (int, sigaction) Hashtbl.t;  (** signal number -> disposition *)
  mutable pending_signals : int list;     (** delivered, not yet consumed *)
  mutable pager : (Mem.Region.t -> int -> float) option;
      (** demand-pager for lazy restore: when set, any memory access to a
          non-resident page marks it resident and charges [pager region
          page] seconds of fault time to [fault_debt].  [None] = eager
          semantics (no residency checks).  Installed by the lazy restart
          path, cleared once the background prefetcher drains. *)
  mutable fault_debt : float;
      (** accumulated page-fault seconds, drained into the next scheduling
          delay of whichever thread of this process runs next *)
}

type t

type hooks = {
  on_spawn : t -> process -> unit;
  on_fork : t -> parent:process -> child:process -> unit;
  on_exec : t -> process -> prog:string -> argv:string list -> string * string list;
  on_ssh : t -> process -> host:int -> prog:string -> argv:string list -> string * string list;
  on_socket : t -> process -> fd:int -> Fdesc.t -> unit;
  on_connect : t -> process -> fd:int -> Fdesc.t -> unit;
  on_accept : t -> process -> fd:int -> Fdesc.t -> unit;
  on_pipe : t -> process -> (int * int) option;
  on_close : t -> process -> fd:int -> Fdesc.t -> unit;
      (** an fd-table slot is released (close, dup2 over, exit teardown);
          fires before the description's refcount drops *)
  on_exit : t -> process -> unit;
}

val default_hooks : hooks

(** [create ~node_id ~engine ~fabric ~storage ~cores ()] builds a kernel.
    Call {!set_peers} before any cross-node operation. *)
val create :
  node_id:int ->
  engine:Sim.Engine.t ->
  fabric:Simnet.Fabric.t ->
  storage:Storage.Target.t ->
  ?cores:int ->
  ?seed:int64 ->
  unit ->
  t

val set_peers : t -> t array -> unit
val set_hooks : t -> hooks -> unit
val hooks : t -> hooks

val node_id : t -> int
val engine : t -> Sim.Engine.t
val fabric : t -> Simnet.Fabric.t
val vfs : t -> Vfs.t
val storage : t -> Storage.Target.t
val cores : t -> int
val peer : t -> int -> t

(** {2 Processes} *)

(** [spawn t ~prog ~argv ()] creates a process whose main thread runs the
    registered program [prog].  Raises [Not_found] for unknown programs. *)
val spawn :
  t ->
  prog:string ->
  argv:string list ->
  ?env:(string * string) list ->
  ?ppid:int ->
  ?hijacked:bool ->
  unit ->
  process

(** Assemble a process shell for restart: no threads yet, given pid is NOT
    allocated from the normal counter (restart pids come from
    {!fresh_pid}). *)
val create_raw_process :
  t -> pid:int -> ppid:int -> env:(string * string) list -> hijacked:bool -> process

val fresh_pid : t -> int

(** Add a thread running [inst] to the process; it is scheduled
    immediately unless [blocked] is given. *)
val add_thread :
  t -> process -> inst:Program.instance -> ?manager:bool -> ?blocked:Program.wait -> unit -> thread

val find_process : t -> pid:int -> process option

(** All [Running] processes on this node, ascending pid. *)
val processes : t -> process list

(** Terminate a process (as by SIGKILL): threads die, fds close, parent
    can reap. *)
val kill_process : t -> process -> unit

(** Re-create a just-forked, not-yet-run child under a fresh pid, taking
    over its fd table and address space; the original child is discarded.
    Used by the DMTCP fork wrapper when the child's would-be virtual pid
    collides with a restored process (paper §4.5). Does not re-fire the
    fork hook. *)
val refork : t -> child:process -> process

(** Forcibly delete a process without zombie bookkeeping — used when the
    original processes are discarded after a checkpoint, simulating
    migration or node loss. *)
val vanish_process : t -> process -> unit

(** {2 Checkpoint support (used by the MTCP layer)} *)

(** Suspend every non-manager thread of the process. *)
val suspend_user_threads : t -> process -> unit

(** Resume them; blocked threads re-evaluate their wait conditions. *)
val resume_user_threads : t -> process -> unit

(** Wake a specific [Stopped] thread. *)
val wake_thread : t -> thread -> unit

(** Re-evaluate wait conditions for every blocked thread on the node
    (scheduled internally on every I/O event; exposed for the restart
    path). *)
val poke : t -> unit

(** Look up an fd's description. *)
val fd_desc : process -> int -> Fdesc.t option

(** Install [desc] under a specific fd number (restart path); replaces any
    existing entry without closing it. *)
val install_fd : t -> process -> fd:int -> Fdesc.t -> unit

(** Allocate the next free fd number and install [desc] there. *)
val alloc_fd : t -> process -> Fdesc.t -> int

(** Remove an fd slot, releasing its description reference. *)
val remove_fd : t -> process -> fd:int -> unit

(** Signal dispositions: unset signals are [Sig_default]. *)
val get_sigaction : process -> int -> sigaction

val set_sigaction : process -> int -> sigaction -> unit

(** [deliver_signal t proc ~signal] applies the disposition: [Sig_default]
    terminates for the fatal signals (SIGINT=2, SIGTERM=15, SIGKILL=9 —
    SIGKILL regardless of table), [Sig_ignore] drops it, [Sig_handler]
    queues it on [pending_signals]. *)
val deliver_signal : t -> process -> signal:int -> unit

(** [/proc/<pid>/maps]-style rendering of the process address space. *)
val proc_maps : process -> string

(** Number of threads whose state is [Ready] and not suspended, across
    the node (the scheduler's load estimate). *)
val runnable_threads : t -> int
