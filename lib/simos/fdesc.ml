type kind =
  | File of { file : Vfs.file; mutable offset : int }
  | Sock of Simnet.Fabric.socket
  | Pipe_r of Pipe.t
  | Pipe_w of Pipe.t
  | Pty_m of Pty.t
  | Pty_s of Pty.t

type t = { desc_id : int; kind : kind; mutable refcount : int; mutable owner : int }

let next_id = ref 0
let reset () = next_id := 0

let make kind =
  incr next_id;
  { desc_id = !next_id; kind; refcount = 1; owner = 0 }

let incr_ref t = t.refcount <- t.refcount + 1

(* Pipe endpoint counts are per-fd-slot and maintained by the kernel's
   close/dup paths; here we only release the underlying object. *)
let release t =
  match t.kind with
  | File _ -> ()
  | Sock s -> Simnet.Fabric.close s
  | Pipe_r _ | Pipe_w _ -> ()
  | Pty_m _ | Pty_s _ -> ()

let decr_ref t =
  t.refcount <- t.refcount - 1;
  if t.refcount = 0 then release t

let kind_name t =
  match t.kind with
  | File _ -> "file"
  | Sock s -> if Simnet.Fabric.state s = Simnet.Fabric.Listening then "listener" else "socket"
  | Pipe_r _ -> "pipe(r)"
  | Pipe_w _ -> "pipe(w)"
  | Pty_m _ -> "pty(m)"
  | Pty_s _ -> "pty(s)"

let readable t =
  match t.kind with
  | File { file; offset } -> offset < Vfs.length file
  | Sock s -> Simnet.Fabric.readable s
  | Pipe_r p -> Pipe.buffered p > 0 || Pipe.writers p = 0
  | Pipe_w _ -> false
  | Pty_m p -> snd (Pty.buffered p) > 0
  | Pty_s p -> fst (Pty.buffered p) > 0

let writable t =
  match t.kind with
  | File _ -> true
  | Sock s -> Simnet.Fabric.writable s
  | Pipe_r _ -> false
  | Pipe_w p -> Pipe.writers p > 0 && Pipe.buffered p < Pipe.capacity
  | Pty_m _ | Pty_s _ -> true
