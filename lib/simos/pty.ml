type termios = {
  mutable icanon : bool;
  mutable echo : bool;
  mutable isig : bool;
  mutable baud : int;
}

let default_termios () = { icanon = true; echo = true; isig = true; baud = 38400 }

type t = {
  pty_id : int;
  to_slave : Util.Bytequeue.t;   (* master writes, slave reads *)
  to_master : Util.Bytequeue.t;  (* slave writes, master reads *)
  mutable tio : termios;
  mutable pgrp : int;
  mutable wake : unit -> unit;
}

let next_id = ref 0
let reset () = next_id := 0

let create () =
  incr next_id;
  {
    pty_id = !next_id;
    to_slave = Util.Bytequeue.create ();
    to_master = Util.Bytequeue.create ();
    tio = default_termios ();
    pgrp = 0;
    wake = ignore;
  }

let id t = t.pty_id
let ptsname t = Printf.sprintf "/dev/pts/%d" t.pty_id
let termios t = t.tio
let set_termios t tio = t.tio <- tio

let capacity = 65536

let write_queue t q data =
  let free = capacity - Util.Bytequeue.length q in
  let n = min free (String.length data) in
  if n > 0 then begin
    Util.Bytequeue.push q (String.sub data 0 n);
    t.wake ()
  end;
  n

let read_queue t q ~max =
  if Util.Bytequeue.is_empty q then `Would_block
  else begin
    let d = Util.Bytequeue.pop q max in
    t.wake ();
    `Data d
  end

let master_write t data = write_queue t t.to_slave data
let master_read t ~max = read_queue t t.to_master ~max
let slave_write t data = write_queue t t.to_master data
let slave_read t ~max = read_queue t t.to_slave ~max

let buffered t = (Util.Bytequeue.length t.to_slave, Util.Bytequeue.length t.to_master)

let drain t = (Util.Bytequeue.pop_all t.to_slave, Util.Bytequeue.pop_all t.to_master)

let refill t ~to_slave ~to_master =
  Util.Bytequeue.push t.to_slave to_slave;
  Util.Bytequeue.push t.to_master to_master;
  t.wake ()

let on_activity t f = t.wake <- f
let owner_pgrp t = t.pgrp
let set_owner_pgrp t pgrp = t.pgrp <- pgrp
