type t = {
  pipe_id : int;
  buf : Util.Bytequeue.t;
  mutable reader_count : int;
  mutable writer_count : int;
  mutable wake : unit -> unit;
}

let capacity = 65536
let next_id = ref 0
let reset () = next_id := 0

let create () =
  incr next_id;
  { pipe_id = !next_id; buf = Util.Bytequeue.create (); reader_count = 0; writer_count = 0; wake = ignore }

let id t = t.pipe_id
let add_reader t = t.reader_count <- t.reader_count + 1
let add_writer t = t.writer_count <- t.writer_count + 1

let remove_reader t =
  t.reader_count <- t.reader_count - 1;
  if t.reader_count = 0 then t.wake ()

let remove_writer t =
  t.writer_count <- t.writer_count - 1;
  if t.writer_count = 0 then t.wake ()

let readers t = t.reader_count
let writers t = t.writer_count

let read t ~max =
  if not (Util.Bytequeue.is_empty t.buf) then begin
    let d = Util.Bytequeue.pop t.buf max in
    t.wake ();
    `Data d
  end
  else if t.writer_count = 0 then `Eof
  else `Would_block

let write t data =
  if t.reader_count = 0 then Error Errno.EPIPE
  else begin
    let free = capacity - Util.Bytequeue.length t.buf in
    let n = min free (String.length data) in
    if n > 0 then begin
      Util.Bytequeue.push t.buf (String.sub data 0 n);
      t.wake ()
    end;
    Ok n
  end

let buffered t = Util.Bytequeue.length t.buf
let drain t = Util.Bytequeue.pop_all t.buf

let refill t data =
  Util.Bytequeue.push t.buf data;
  t.wake ()

let on_activity t f = t.wake <- f
