type file = {
  path : string;
  mutable data : Bytes.t;
  mutable len : int;
  mutable declared_sim_size : int option;
}

type t = {
  files : (string, file) Hashtbl.t;
  mutable rewrite : (string -> string) option;
      (* path-rewrite hook (plugin API): applied to every path-taking
         entry point while installed *)
}

let create () = { files = Hashtbl.create 64; rewrite = None }

let resolve t path = match t.rewrite with Some f -> f path | None -> path

let with_rewrite t f body =
  let saved = t.rewrite in
  t.rewrite <- Some f;
  Fun.protect ~finally:(fun () -> t.rewrite <- saved) body

let open_or_create t path =
  let path = resolve t path in
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None ->
    let f = { path; data = Bytes.create 256; len = 0; declared_sim_size = None } in
    Hashtbl.replace t.files path f;
    f

let lookup t path = Hashtbl.find_opt t.files (resolve t path)
let exists t path = Hashtbl.mem t.files (resolve t path)

let unlink t path =
  let path = resolve t path in
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    Ok ()
  end
  else Error Errno.ENOENT

let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort compare

let path_of f = f.path
let length f = f.len

let sim_size f =
  match f.declared_sim_size with
  | Some n -> max n f.len
  | None -> f.len

let set_sim_size f n = f.declared_sim_size <- Some n

let ensure f n =
  if n > Bytes.length f.data then begin
    let cap = ref (max 256 (Bytes.length f.data)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let nb = Bytes.make !cap '\000' in
    Bytes.blit f.data 0 nb 0 f.len;
    f.data <- nb
  end

let read_at f ~pos ~len =
  if pos >= f.len || len <= 0 then ""
  else begin
    let n = min len (f.len - pos) in
    Bytes.sub_string f.data pos n
  end

let read_all f = Bytes.sub_string f.data 0 f.len

let write_at f ~pos data =
  let n = String.length data in
  ensure f (pos + n);
  if pos > f.len then Bytes.fill f.data f.len (pos - f.len) '\000';
  Bytes.blit_string data 0 f.data pos n;
  f.len <- max f.len (pos + n)

let append f data = write_at f ~pos:f.len data

let truncate f =
  f.len <- 0;
  f.declared_sim_size <- None
