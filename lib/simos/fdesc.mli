(** Open file descriptions.

    One description may be referenced from several fd-table slots — after
    [dup2], and after [fork] from several *processes* — which is exactly
    what forces DMTCP's shared-FD leader election: the description carries
    the [F_SETOWN] owner pid that the election trick (paper §4.3 step 3)
    misuses as a ballot box. *)

type kind =
  | File of { file : Vfs.file; mutable offset : int }
  | Sock of Simnet.Fabric.socket
  | Pipe_r of Pipe.t
  | Pipe_w of Pipe.t
  | Pty_m of Pty.t
  | Pty_s of Pty.t

type t = {
  desc_id : int;  (** unique across the cluster *)
  kind : kind;
  mutable refcount : int;
  mutable owner : int;  (** F_SETOWN value; 0 = unset *)
}

(** Fresh description with refcount 1 (pipe/pty endpoint counts are
    adjusted by the caller). *)
val make : kind -> t

(** Restart the [desc_id] sequence.  Called by [Cluster.create]: ids are
    only compared within one cluster's lifetime, and resetting keeps the
    ids — which are encoded into checkpoint images — identical across
    sequential clusters in one process. *)
val reset : unit -> unit

val incr_ref : t -> unit

(** Decrement; when the count reaches zero the underlying object is
    released (socket closed, pipe endpoint count decremented). *)
val decr_ref : t -> unit

val kind_name : t -> string

(** Can a read make progress right now? *)
val readable : t -> bool

val writable : t -> bool
