type thread_image = {
  ti_inst : Simos.Program.instance;
  ti_wait : Simos.Program.wait option;
}

type t = {
  cmdline : string list;
  env : (string * string) list;
  threads : thread_image list;
  space : Mem.Address_space.t;
  sigtable : (int * Simos.Kernel.sigaction) list;
  pending_signals : int list;
}

let capture (proc : Simos.Kernel.process) =
  let threads =
    proc.Simos.Kernel.threads
    |> List.filter (fun (th : Simos.Kernel.thread) ->
           (not th.Simos.Kernel.manager) && th.Simos.Kernel.tstate <> Simos.Kernel.Dead)
    |> List.map (fun (th : Simos.Kernel.thread) ->
           let ti_wait =
             match th.Simos.Kernel.tstate with
             | Simos.Kernel.Blocked w -> Some w
             | Simos.Kernel.Ready | Simos.Kernel.Dead -> None
           in
           (* Round-trip the instance through its codec so the snapshot is
              decoupled from the live (mutable) instance. *)
           let w = Util.Codec.Writer.create () in
           Simos.Program.encode_instance w th.Simos.Kernel.inst;
           let r = Util.Codec.Reader.of_string (Util.Codec.Writer.contents w) in
           { ti_inst = Simos.Program.decode_instance r; ti_wait })
  in
  {
    cmdline = proc.Simos.Kernel.cmdline;
    env = proc.Simos.Kernel.env;
    threads;
    space = Mem.Address_space.snapshot proc.Simos.Kernel.space;
    sigtable =
      Hashtbl.fold (fun s a acc -> (s, a) :: acc) proc.Simos.Kernel.sigtable []
      |> List.sort compare;
    pending_signals = proc.Simos.Kernel.pending_signals;
  }

type sizes = { uncompressed : int; compressed : int; zero_bytes : int }

(* Per-image metadata overhead charged on top of page payloads. *)
let metadata_bytes t =
  4096 + (1024 * List.length t.threads)

let sizes algo t =
  let uncompressed = ref (metadata_bytes t) in
  let compressed = ref (metadata_bytes t / 4) in
  let zero = ref 0 in
  List.iter
    (fun (r : Mem.Region.t) ->
      Array.iter
        (fun page ->
          uncompressed := !uncompressed + Mem.Page.size;
          if Mem.Page.is_zero page then zero := !zero + Mem.Page.size;
          compressed :=
            !compressed
            +
            match page with
            | Mem.Page.Zero -> ( match algo with Compress.Algo.Null -> Mem.Page.size | _ -> 8)
            | Mem.Page.Materialized _ -> Mem.Page.compressed_size algo page
            | Mem.Page.Synthetic { cls; _ } ->
              int_of_float (ceil (float_of_int Mem.Page.size *. Mem.Entropy.ratio algo cls)))
        r.Mem.Region.pages)
    (Mem.Address_space.regions t.space);
  { uncompressed = !uncompressed; compressed = !compressed; zero_bytes = !zero }

(* pages charged to an incremental image: those differing from the
   previous snapshot (physical equality is the fast path: unchanged slots
   alias the same immutable content) *)
let page_changed prev_pages idx page =
  match prev_pages with
  | Some pages when idx < Array.length pages ->
    let old = pages.(idx) in
    not (old == page || old = page)
  | _ -> true

let delta_sizes algo ~prev t =
  match prev with
  | None -> sizes algo t
  | Some prev_space ->
    let prev_regions =
      List.fold_left
        (fun acc (r : Mem.Region.t) -> (r.Mem.Region.id, r.Mem.Region.pages) :: acc)
        []
        (Mem.Address_space.regions prev_space)
    in
    let uncompressed = ref (metadata_bytes t) in
    let compressed = ref (metadata_bytes t / 4) in
    let zero = ref 0 in
    List.iter
      (fun (r : Mem.Region.t) ->
        let prev_pages = List.assoc_opt r.Mem.Region.id prev_regions in
        Array.iteri
          (fun idx page ->
            (* one bit per page for the dirty bitmap *)
            compressed := !compressed + 1;
            if page_changed prev_pages idx page then begin
              uncompressed := !uncompressed + Mem.Page.size;
              if Mem.Page.is_zero page then zero := !zero + Mem.Page.size;
              compressed :=
                !compressed
                +
                match page with
                | Mem.Page.Zero -> (
                  match algo with Compress.Algo.Null -> Mem.Page.size | _ -> 8)
                | Mem.Page.Materialized _ -> Mem.Page.compressed_size algo page
                | Mem.Page.Synthetic { cls; _ } ->
                  int_of_float (ceil (float_of_int Mem.Page.size *. Mem.Entropy.ratio algo cls))
            end)
          r.Mem.Region.pages)
      (Mem.Address_space.regions t.space);
    { uncompressed = !uncompressed; compressed = !compressed; zero_bytes = !zero }

let encode_sigaction w = function
  | Simos.Kernel.Sig_default -> Util.Codec.Writer.u8 w 0
  | Simos.Kernel.Sig_ignore -> Util.Codec.Writer.u8 w 1
  | Simos.Kernel.Sig_handler name ->
    Util.Codec.Writer.u8 w 2;
    Util.Codec.Writer.string w name

let decode_sigaction r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Simos.Kernel.Sig_default
  | 1 -> Simos.Kernel.Sig_ignore
  | 2 -> Simos.Kernel.Sig_handler (Util.Codec.Reader.string r)
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad sigaction %d" n))

let encode_body t =
  let w = Util.Codec.Writer.create ~capacity:4096 () in
  Util.Codec.Writer.list Util.Codec.Writer.string w t.cmdline;
  Util.Codec.Writer.list
    (Util.Codec.Writer.pair Util.Codec.Writer.string Util.Codec.Writer.string)
    w t.env;
  Util.Codec.Writer.list
    (fun w ti ->
      Simos.Program.encode_instance w ti.ti_inst;
      Util.Codec.Writer.option Simos.Program.encode_wait w ti.ti_wait)
    w t.threads;
  Mem.Address_space.encode w t.space;
  Util.Codec.Writer.list (Util.Codec.Writer.pair Util.Codec.Writer.uvarint encode_sigaction) w
    t.sigtable;
  Util.Codec.Writer.list Util.Codec.Writer.uvarint w t.pending_signals;
  Util.Codec.Writer.contents w

let decode_body s =
  let r = Util.Codec.Reader.of_string s in
  let cmdline = Util.Codec.Reader.list Util.Codec.Reader.string r in
  let env =
    Util.Codec.Reader.list
      (Util.Codec.Reader.pair Util.Codec.Reader.string Util.Codec.Reader.string)
      r
  in
  let threads =
    Util.Codec.Reader.list
      (fun r ->
        let ti_inst = Simos.Program.decode_instance r in
        let ti_wait = Util.Codec.Reader.option Simos.Program.decode_wait r in
        { ti_inst; ti_wait })
      r
  in
  let space = Mem.Address_space.decode r in
  let sigtable =
    Util.Codec.Reader.list
      (Util.Codec.Reader.pair Util.Codec.Reader.uvarint decode_sigaction)
      r
  in
  let pending_signals = Util.Codec.Reader.list Util.Codec.Reader.uvarint r in
  Util.Codec.Reader.expect_end r;
  { cmdline; env; threads; space; sigtable; pending_signals }

let encode ~algo t = Compress.Container.pack ~algo (encode_body t)
let decode s = decode_body (Compress.Container.unpack s)

(* ---------------- incremental delta images ---------------- *)

let delta_magic = "MTCPD1"

(* Pages a delta must carry inline: every dirty page, plus every page of
   a shared mapping (other processes write through their own view of a
   shared region record, so this view's bitmap is not authoritative). *)
let page_inline (r : Mem.Region.t) idx =
  match r.Mem.Region.kind with
  | Mem.Region.Mmap_shared _ -> true
  | Mem.Region.Text | Mem.Region.Data | Mem.Region.Heap | Mem.Region.Stack
  | Mem.Region.Mmap_anon ->
    Mem.Region.is_dirty r idx

let delta_pages t =
  List.fold_left
    (fun acc r -> acc + Mem.Address_space.region_dirty_pages r)
    0
    (Mem.Address_space.regions t.space)

(* A delta body mirrors [encode_body] except for the address space: the
   skeleton (allocation cursor plus each region's identity and shape) is
   stored in full, and each page is either inline (tag 1, dirty since the
   base snapshot) or a reference to the base image's page at the same
   region id and index (tag 0).  Regions created after the base snapshot
   are born all-dirty, so tag 0 never points outside the base. *)
let encode_delta_body t =
  let w = Util.Codec.Writer.create ~capacity:4096 () in
  Util.Codec.Writer.raw w delta_magic;
  Util.Codec.Writer.list Util.Codec.Writer.string w t.cmdline;
  Util.Codec.Writer.list
    (Util.Codec.Writer.pair Util.Codec.Writer.string Util.Codec.Writer.string)
    w t.env;
  Util.Codec.Writer.list
    (fun w ti ->
      Simos.Program.encode_instance w ti.ti_inst;
      Util.Codec.Writer.option Simos.Program.encode_wait w ti.ti_wait)
    w t.threads;
  Util.Codec.Writer.uvarint w (Mem.Address_space.next_addr t.space);
  Util.Codec.Writer.uvarint w (Mem.Address_space.next_region_id t.space);
  Util.Codec.Writer.list
    (fun w (r : Mem.Region.t) ->
      Util.Codec.Writer.uvarint w r.Mem.Region.id;
      Util.Codec.Writer.uvarint w r.Mem.Region.start_addr;
      Mem.Region.encode_kind w r.Mem.Region.kind;
      Util.Codec.Writer.bool w r.Mem.Region.perms.Mem.Region.read;
      Util.Codec.Writer.bool w r.Mem.Region.perms.Mem.Region.write;
      Util.Codec.Writer.bool w r.Mem.Region.perms.Mem.Region.exec;
      Util.Codec.Writer.uvarint w (Mem.Region.npages r);
      Array.iteri
        (fun idx page ->
          if page_inline r idx then begin
            Util.Codec.Writer.u8 w 1;
            Mem.Page.encode w page
          end
          else Util.Codec.Writer.u8 w 0)
        r.Mem.Region.pages)
    w
    (Mem.Address_space.regions t.space);
  Util.Codec.Writer.list (Util.Codec.Writer.pair Util.Codec.Writer.uvarint encode_sigaction) w
    t.sigtable;
  Util.Codec.Writer.list Util.Codec.Writer.uvarint w t.pending_signals;
  Util.Codec.Writer.contents w

let encode_delta ~algo t = Compress.Container.pack ~algo (encode_delta_body t)

let is_delta s =
  match Compress.Container.unpack s with
  | body ->
    String.length body >= String.length delta_magic
    && String.sub body 0 (String.length delta_magic) = delta_magic
  | exception _ -> false

let apply_delta ~base s =
  let body = Compress.Container.unpack s in
  let r = Util.Codec.Reader.of_string body in
  let magic = Util.Codec.Reader.raw r (String.length delta_magic) in
  if magic <> delta_magic then
    raise (Util.Codec.Reader.Corrupt "not an MTCPD1 delta image");
  let base_regions =
    List.fold_left
      (fun acc (br : Mem.Region.t) -> (br.Mem.Region.id, br) :: acc)
      []
      (Mem.Address_space.regions base.space)
  in
  let cmdline = Util.Codec.Reader.list Util.Codec.Reader.string r in
  let env =
    Util.Codec.Reader.list
      (Util.Codec.Reader.pair Util.Codec.Reader.string Util.Codec.Reader.string)
      r
  in
  let threads =
    Util.Codec.Reader.list
      (fun r ->
        let ti_inst = Simos.Program.decode_instance r in
        let ti_wait = Util.Codec.Reader.option Simos.Program.decode_wait r in
        { ti_inst; ti_wait })
      r
  in
  let next_addr = Util.Codec.Reader.uvarint r in
  let next_region_id = Util.Codec.Reader.uvarint r in
  let regions =
    Util.Codec.Reader.list
      (fun r ->
        let id = Util.Codec.Reader.uvarint r in
        let start_addr = Util.Codec.Reader.uvarint r in
        let kind = Mem.Region.decode_kind r in
        let read = Util.Codec.Reader.bool r in
        let write = Util.Codec.Reader.bool r in
        let exec = Util.Codec.Reader.bool r in
        let npages = Util.Codec.Reader.uvarint r in
        let base_pages =
          match List.assoc_opt id base_regions with
          | Some br -> br.Mem.Region.pages
          | None -> [||]
        in
        let pages =
          Array.init npages (fun idx ->
              match Util.Codec.Reader.u8 r with
              | 1 -> Mem.Page.decode r
              | 0 ->
                if idx < Array.length base_pages then base_pages.(idx)
                else
                  raise
                    (Util.Codec.Reader.Corrupt
                       (Printf.sprintf "delta references missing base page %d/%d" id idx))
              | n ->
                raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad delta page tag %d" n)))
        in
        {
          Mem.Region.id;
          start_addr;
          kind;
          perms = { Mem.Region.read; write; exec };
          pages;
          dirty = Bytes.make npages '\001';
          resident = Bytes.make npages '\001';
        })
      r
  in
  let sigtable =
    Util.Codec.Reader.list
      (Util.Codec.Reader.pair Util.Codec.Reader.uvarint decode_sigaction)
      r
  in
  let pending_signals = Util.Codec.Reader.list Util.Codec.Reader.uvarint r in
  Util.Codec.Reader.expect_end r;
  {
    cmdline;
    env;
    threads;
    space = Mem.Address_space.of_regions ~next_addr ~next_region_id regions;
    sigtable;
    pending_signals;
  }

let restore_threads kernel (proc : Simos.Kernel.process) t =
  proc.Simos.Kernel.space <- t.space;
  proc.Simos.Kernel.cmdline <- t.cmdline;
  proc.Simos.Kernel.env <- t.env;
  List.iter (fun (s, a) -> Simos.Kernel.set_sigaction proc s a) t.sigtable;
  proc.Simos.Kernel.pending_signals <- t.pending_signals;
  List.iter
    (fun ti -> ignore (Simos.Kernel.add_thread kernel proc ~inst:ti.ti_inst ?blocked:ti.ti_wait ()))
    t.threads

let instance_bytes inst =
  let w = Util.Codec.Writer.create () in
  Simos.Program.encode_instance w inst;
  Util.Codec.Writer.contents w

let equal a b =
  a.cmdline = b.cmdline && a.env = b.env && a.sigtable = b.sigtable
  && a.pending_signals = b.pending_signals
  && List.length a.threads = List.length b.threads
  && List.for_all2
       (fun x y -> x.ti_wait = y.ti_wait && instance_bytes x.ti_inst = instance_bytes y.ti_inst)
       a.threads b.threads
  && Mem.Address_space.equal a.space b.space
