(** MTCP: single-process checkpointing of memory and threads.

    This is the lower of DMTCP's two layers (paper §4.1): it owns the
    process image — address space and user threads — while the distributed
    layer above owns sockets, files and other kernel artifacts.  The two
    communicate through a deliberately small API, mirroring the paper's
    claim that the split eases porting.

    An image is a real byte string: thread program states are serialized
    through the program registry and the address space through the page
    codec, then the whole payload is framed by {!Compress.Container} with
    the chosen scheme and a CRC.  Synthetic bulk pages are stored as
    descriptors, so the *simulated* on-disk size (what the paper's
    experiments measure) is computed separately by {!sizes}. *)

type thread_image = {
  ti_inst : Simos.Program.instance;
  ti_wait : Simos.Program.wait option;  (** re-blocked on restore *)
}

type t = {
  cmdline : string list;
  env : (string * string) list;
  threads : thread_image list;           (** user threads only, not managers *)
  space : Mem.Address_space.t;
  sigtable : (int * Simos.Kernel.sigaction) list;  (** saved signal handlers *)
  pending_signals : int list;
}

(** [capture proc] snapshots a (suspended) process: a COW copy of the
    address space and the current program state of every non-manager
    thread.  The caller is responsible for having suspended user threads
    first — capturing a running process is a checkpointing bug. *)
val capture : Simos.Kernel.process -> t

(** Size accounting for an image under a compression scheme. *)
type sizes = {
  uncompressed : int;   (** bytes a raw dump would occupy *)
  compressed : int;     (** simulated on-disk bytes under the scheme *)
  zero_bytes : int;     (** untouched pages (compress ~for free) *)
}

val sizes : Compress.Algo.t -> t -> sizes

(** [delta_sizes algo ~prev t] — size accounting for an *incremental*
    checkpoint: only pages that changed since the [prev] snapshot are
    charged (plus a small per-page bitmap).  Page contents are immutable
    values, so "changed" is physical-or-structural inequality of the page
    slot.  With [prev = None] this equals {!sizes}.  Incremental
    checkpointing is this repository's implementation of the
    compressed-differences line of work the paper cites ([2], [25]). *)
val delta_sizes : Compress.Algo.t -> prev:Mem.Address_space.t option -> t -> sizes

(** Encode to real bytes (framed, CRC-protected). *)
val encode : algo:Compress.Algo.t -> t -> string

(** Decode; raises {!Compress.Container.Bad_container} or
    [Util.Codec.Reader.Corrupt] on damage, [Not_found] if a program is
    missing from the registry. *)
val decode : string -> t

(** {2 Incremental delta images}

    A delta image re-encodes everything except clean private pages: the
    address-space skeleton and all small metadata are stored in full, and
    each page is either inline (dirty since the base snapshot, or part of
    a shared mapping) or a tagged reference to the base image's page at
    the same region id and index.  The payload is framed by
    {!Compress.Container} exactly like a full image, so
    {!Compress.Container.frame_bounds} applies and delta frames dedup in
    the checkpoint store like any other frames. *)

(** Pages {!encode_delta} will carry inline, given the space's current
    dirty bits (shared mappings always count in full). *)
val delta_pages : t -> int

(** [encode_delta ~algo t] encodes [t] against the base snapshot implied
    by [t.space]'s dirty bits: pages clean since the last
    {!Mem.Address_space.clear_dirty} are stored as references.  The caller
    must pair the result with the identity of the image those bits are
    relative to — {!apply_delta} needs that exact image. *)
val encode_delta : algo:Compress.Algo.t -> t -> string

(** [apply_delta ~base s] reconstructs the full image: referenced pages
    are taken from [base] (the image whose checkpoint cleared the dirty
    bits [s] was encoded under).  Raises [Util.Codec.Reader.Corrupt] on a
    non-delta payload or a dangling base reference, and the usual
    container exceptions on damage.  The reconstruction is structurally
    equal to the original capture, so [encode ~algo (apply_delta ~base s)]
    is byte-identical to encoding the original full image. *)
val apply_delta : base:t -> string -> t

(** [true] iff [s] unpacks to a delta-image body (its container is intact
    and the body leads with the delta magic). *)
val is_delta : string -> bool

(** [restore_threads kernel proc image] re-creates the image's user
    threads inside [proc] (an empty shell from
    {!Simos.Kernel.create_raw_process}) and installs the restored address
    space.  Threads resume exactly where [capture] saw them: runnable
    threads are rescheduled, blocked threads re-block on their saved wait
    condition. *)
val restore_threads : Simos.Kernel.t -> Simos.Kernel.process -> t -> unit

(** Structural equality (used by tests). *)
val equal : t -> t -> bool
