type state = Created | Bound | Listening | Connecting | Established | Closed

type error = Refused | Not_connected | Already_bound | Addr_in_use | Invalid

let pp_error = function
  | Refused -> "connection refused"
  | Not_connected -> "not connected"
  | Already_bound -> "already bound"
  | Addr_in_use -> "address in use"
  | Invalid -> "invalid operation"

let buffer_capacity = 64 * 1024
let chunk_size = 16 * 1024

type socket = {
  id : int;
  fab : t;
  sock_host : Addr.host;
  unix : bool;
  mutable st : state;
  mutable local : Addr.t option;
  mutable peer : socket option;
  recv_buf : Util.Bytequeue.t;
  send_buf : Util.Bytequeue.t;
  mutable in_flight : int;
  mutable pumping : bool;
  mutable fin_sent : bool;          (* our side called close *)
  mutable peer_closed : bool;       (* FIN received: EOF after recv_buf drains *)
  mutable refused : bool;
  accept_q : socket Queue.t;
  mutable backlog : int;
  mutable wake : unit -> unit;
}

(* Per-link fault state, installed by the chaos layer.  Links are
   addressed by unordered host pair; absent entries mean healthy. *)
and link = { mutable up : bool; mutable lat_factor : float }

and t = {
  eng : Sim.Engine.t;
  latency : float;
  bandwidth : float;
  loopback_latency : float;
  n : int;
  listeners : (Addr.t, socket) Hashtbl.t;
  bound : (Addr.t, unit) Hashtbl.t;
  links : (int * int, link) Hashtbl.t;
  mutable drop_prob : float;
  mutable drop_rng : Util.Rng.t option;
  nic_free_at : float array;
  next_port : int array;
  mutable next_id : int;
}

let create eng ?(latency = 100e-6) ?(bandwidth = 117e6) ?(loopback_latency = 10e-6) ~nhosts () =
  {
    eng;
    latency;
    bandwidth;
    loopback_latency;
    n = nhosts;
    listeners = Hashtbl.create 64;
    bound = Hashtbl.create 64;
    links = Hashtbl.create 8;
    drop_prob = 0.;
    drop_rng = None;
    nic_free_at = Array.make nhosts 0.;
    next_port = Array.make nhosts 32768;
    next_id = 0;
  }

let engine t = t.eng
let nhosts t = t.n

(* ------------------------------------------------------------------ *)
(* Fault injection.  Partitioned links hold traffic (senders retry
   until the link heals); latency factors stretch propagation delay;
   [drop_prob] models segment loss as a retransmission-timeout penalty
   charged per chunk, drawn from a dedicated rng so fault timing stays
   deterministic per seed.  Heal every partition before draining the
   engine to completion: blocked senders re-arm themselves forever. *)

let partition_retry = 20e-3
let retransmit_timeout = 0.2

let link_key a b = if a <= b then (a, b) else (b, a)

let link_of t a b =
  match Hashtbl.find_opt t.links (link_key a b) with
  | Some l -> l
  | None ->
    let l = { up = true; lat_factor = 1.0 } in
    Hashtbl.replace t.links (link_key a b) l;
    l

let link_up t ~a ~b = a = b || (link_of t a b).up
let set_link_up t ~a ~b up = if a <> b then (link_of t a b).up <- up
let set_latency_factor t ~a ~b f = if a <> b then (link_of t a b).lat_factor <- Float.max 1e-9 f
let set_drop t ~prob rng =
  t.drop_prob <- prob;
  t.drop_rng <- (if prob > 0. then Some rng else None)

let clear_faults t =
  Hashtbl.reset t.links;
  t.drop_prob <- 0.;
  t.drop_rng <- None

let lat_factor t ~src ~dst = if src = dst then 1.0 else (link_of t src dst).lat_factor

let m_segments = Trace.Metrics.counter "net.segments_sent"
let m_bytes = Trace.Metrics.counter "net.bytes_sent"
let m_drops = Trace.Metrics.counter "net.segments_dropped"
let m_refill = Trace.Metrics.counter "net.refill_bytes"

let drop_penalty t ~src ~dst =
  if src = dst || t.drop_prob <= 0. then 0.
  else
    match t.drop_rng with
    | Some rng when Util.Rng.float rng 1.0 < t.drop_prob ->
      Trace.Metrics.incr m_drops;
      Trace.instant ~node:src ~cat:"net" ~name:"seg/drop"
        ~args:[ ("dst", string_of_int dst) ]
        ~time:(Sim.Engine.now t.eng) ();
      retransmit_timeout
    | _ -> 0.

let make_socket fab ~host ~unix =
  let id = fab.next_id in
  fab.next_id <- id + 1;
  {
    id;
    fab;
    sock_host = host;
    unix;
    st = Created;
    local = None;
    peer = None;
    recv_buf = Util.Bytequeue.create ();
    send_buf = Util.Bytequeue.create ();
    in_flight = 0;
    pumping = false;
    fin_sent = false;
    peer_closed = false;
    refused = false;
    accept_q = Queue.create ();
    backlog = 0;
    wake = ignore;
  }

let socket fab ~host = make_socket fab ~host ~unix:false
let socket_unix fab ~host = make_socket fab ~host ~unix:true

let id s = s.id
let host s = s.sock_host
let state s = s.st
let local_addr s = s.local
let is_unix s = s.unix
let connect_refused s = s.refused
let recv_buffered s = Util.Bytequeue.length s.recv_buf
let send_buffered s = Util.Bytequeue.length s.send_buf
let in_flight s = s.in_flight
let on_activity s f = s.wake <- f

let peer_addr s =
  match s.peer with
  | None -> None
  | Some p -> p.local

let readable s =
  match s.st with
  | Listening -> not (Queue.is_empty s.accept_q)
  | _ -> (not (Util.Bytequeue.is_empty s.recv_buf)) || s.peer_closed

let writable s =
  s.st = Established && (not s.fin_sent) && Util.Bytequeue.length s.send_buf < buffer_capacity

(* Time for [len] bytes from [src] to [dst], charging the sender NIC. *)
let transfer_delay fab ~src ~dst len =
  let now = Sim.Engine.now fab.eng in
  if src = dst then fab.loopback_latency
  else begin
    let depart = Float.max now fab.nic_free_at.(src) in
    let dur = float_of_int len /. fab.bandwidth in
    fab.nic_free_at.(src) <- depart +. dur;
    depart -. now +. dur
    +. (fab.latency *. lat_factor fab ~src ~dst)
    +. drop_penalty fab ~src ~dst
  end

(* Move FIN to the peer once every queued byte has been delivered.  A
   partitioned link holds the FIN and retries until it heals. *)
let rec maybe_deliver_fin s =
  if s.fin_sent && Util.Bytequeue.is_empty s.send_buf && s.in_flight = 0 then
    match s.peer with
    | Some p when not p.peer_closed ->
      if not (link_up s.fab ~a:s.sock_host ~b:p.sock_host) then
        ignore
          (Sim.Engine.schedule s.fab.eng ~delay:partition_retry (fun () -> maybe_deliver_fin s))
      else
        let delay =
          if s.sock_host = p.sock_host then s.fab.loopback_latency
          else s.fab.latency *. lat_factor s.fab ~src:s.sock_host ~dst:p.sock_host
        in
        ignore
          (Sim.Engine.schedule s.fab.eng ~delay (fun () ->
               p.peer_closed <- true;
               p.wake ()))
    | _ -> ()

and pump s =
  if (not s.pumping) && s.st = Established then
    match s.peer with
    | None -> ()
    | Some p ->
      if not (link_up s.fab ~a:s.sock_host ~b:p.sock_host) then begin
        (* partitioned: park the sender and retry until the link heals *)
        if Util.Bytequeue.length s.send_buf > 0 then begin
          s.pumping <- true;
          ignore
            (Sim.Engine.schedule s.fab.eng ~delay:partition_retry (fun () ->
                 s.pumping <- false;
                 pump s))
        end
      end
      else
        let free = buffer_capacity - Util.Bytequeue.length p.recv_buf in
        let len = min (min (Util.Bytequeue.length s.send_buf) free) chunk_size in
        if len > 0 then begin
          let data = Util.Bytequeue.pop s.send_buf len in
          s.in_flight <- s.in_flight + len;
          s.pumping <- true;
          let delay = transfer_delay s.fab ~src:s.sock_host ~dst:p.sock_host len in
          Trace.Metrics.incr m_segments;
          Trace.Metrics.add m_bytes (float_of_int len);
          if Trace.on () then
            Trace.instant ~node:s.sock_host ~cat:"net" ~name:"seg/send"
              ~args:[ ("dst", string_of_int p.sock_host); ("len", string_of_int len) ]
              ~time:(Sim.Engine.now s.fab.eng) ();
          ignore
            (Sim.Engine.schedule s.fab.eng ~delay (fun () ->
                 Util.Bytequeue.push p.recv_buf data;
                 s.in_flight <- s.in_flight - len;
                 s.pumping <- false;
                 if Trace.on () then
                   Trace.instant ~node:p.sock_host ~cat:"net" ~name:"seg/deliver"
                     ~args:[ ("src", string_of_int s.sock_host); ("len", string_of_int len) ]
                     ~time:(Sim.Engine.now s.fab.eng) ();
                 p.wake ();
                 s.wake ();
                 pump s;
                 maybe_deliver_fin s))
        end
        else maybe_deliver_fin s

let addr_taken fab addr = Hashtbl.mem fab.bound addr || Hashtbl.mem fab.listeners addr

let bind s ~port =
  match s.st with
  | Created when not s.unix ->
    let port =
      if port = 0 then begin
        (* skip ephemeral ports squatted by explicit binds *)
        let rec fresh () =
          let p = s.fab.next_port.(s.sock_host) in
          s.fab.next_port.(s.sock_host) <- p + 1;
          if addr_taken s.fab (Addr.Inet { host = s.sock_host; port = p }) then fresh () else p
        in
        fresh ()
      end
      else port
    in
    let addr = Addr.Inet { host = s.sock_host; port } in
    if addr_taken s.fab addr then Error Addr_in_use
    else begin
      Hashtbl.replace s.fab.bound addr ();
      s.local <- Some addr;
      s.st <- Bound;
      Ok port
    end
  | Created -> Error Invalid
  | _ -> Error Already_bound

let bind_unix s ~path =
  match s.st with
  | Created when s.unix ->
    let addr = Addr.Unix { host = s.sock_host; path } in
    if addr_taken s.fab addr then Error Addr_in_use
    else begin
      Hashtbl.replace s.fab.bound addr ();
      s.local <- Some addr;
      s.st <- Bound;
      Ok ()
    end
  | Created -> Error Invalid
  | _ -> Error Already_bound

let listen s ~backlog =
  match s.st, s.local with
  | Bound, Some addr ->
    if Hashtbl.mem s.fab.listeners addr then Error Addr_in_use
    else begin
      Hashtbl.replace s.fab.listeners addr s;
      s.backlog <- max 1 backlog;
      s.st <- Listening;
      Ok ()
    end
  | _ -> Error Invalid

let one_way_latency fab ~src ~dst =
  if src = dst then fab.loopback_latency else fab.latency *. lat_factor fab ~src ~dst

let connect s addr =
  match s.st with
  | Created ->
    (match addr, s.unix with
    | Addr.Inet _, true | Addr.Unix _, false -> Error Invalid
    | _ ->
      s.st <- Connecting;
      let fab = s.fab in
      let fwd = one_way_latency fab ~src:s.sock_host ~dst:(Addr.host_of addr) in
      ignore
        (Sim.Engine.schedule fab.eng ~delay:fwd (fun () ->
             let refuse () =
               let back = one_way_latency fab ~src:(Addr.host_of addr) ~dst:s.sock_host in
               ignore
                 (Sim.Engine.schedule fab.eng ~delay:back (fun () ->
                      s.st <- Closed;
                      s.refused <- true;
                      s.wake ()))
             in
             match Hashtbl.find_opt fab.listeners addr with
             | _ when not (link_up fab ~a:s.sock_host ~b:(Addr.host_of addr)) ->
               (* SYN lost to the partition: surface as a refusal after
                  the would-be round trip *)
               refuse ()
             | None -> refuse ()
             | Some listener when listener.st <> Listening -> refuse ()
             | Some listener when Queue.length listener.accept_q >= listener.backlog -> refuse ()
             | Some listener ->
               (* Server-side endpoint, established immediately. *)
               let server = make_socket fab ~host:(Addr.host_of addr) ~unix:s.unix in
               server.st <- Established;
               server.local <- Some addr;
               server.peer <- Some s;
               Queue.push server listener.accept_q;
               listener.wake ();
               let back = one_way_latency fab ~src:(Addr.host_of addr) ~dst:s.sock_host in
               ignore
                 (Sim.Engine.schedule fab.eng ~delay:back (fun () ->
                      if s.st = Connecting then begin
                        s.st <- Established;
                        s.peer <- Some server;
                        (* our ephemeral local address *)
                        if s.local = None && not s.unix then begin
                          let p = fab.next_port.(s.sock_host) in
                          fab.next_port.(s.sock_host) <- p + 1;
                          s.local <- Some (Addr.Inet { host = s.sock_host; port = p })
                        end;
                        s.wake ();
                        pump s;
                        pump server
                      end))));
      Ok ())
  | _ -> Error Invalid

let accept s =
  match s.st with
  | Listening when not (Queue.is_empty s.accept_q) -> Some (Queue.pop s.accept_q)
  | _ -> None

let send s data =
  match s.st with
  | Established when not s.fin_sent ->
    let free = buffer_capacity - Util.Bytequeue.length s.send_buf in
    let n = min free (String.length data) in
    if n > 0 then begin
      Util.Bytequeue.push s.send_buf (String.sub data 0 n);
      pump s
    end;
    Ok n
  | Established -> Error Invalid
  | Closed -> Error (if s.refused then Refused else Not_connected)
  | _ -> Error Not_connected

let recv s ~max =
  match s.st with
  | Established | Closed ->
    if not (Util.Bytequeue.is_empty s.recv_buf) then begin
      let data = Util.Bytequeue.pop s.recv_buf max in
      (match s.peer with
      | Some p -> pump p  (* room freed: let the peer push more *)
      | None -> ());
      `Data data
    end
    else if s.peer_closed then `Eof
    else if s.st = Closed then `Error (if s.refused then Refused else Not_connected)
    else `Would_block
  | Listening | Created | Bound | Connecting -> `Error Not_connected

let close s =
  match s.st with
  | Closed -> ()
  | Listening ->
    (match s.local with
    | Some addr ->
      Hashtbl.remove s.fab.listeners addr;
      Hashtbl.remove s.fab.bound addr
    | None -> ());
    (* pending, never-accepted connections are refused *)
    Queue.iter
      (fun server ->
        match server.peer with
        | Some client ->
          client.st <- Closed;
          client.refused <- true;
          client.wake ()
        | None -> ())
      s.accept_q;
    Queue.clear s.accept_q;
    s.st <- Closed
  | Created | Bound ->
    (match s.local with
    | Some addr ->
      Hashtbl.remove s.fab.listeners addr;
      Hashtbl.remove s.fab.bound addr
    | None -> ());
    s.st <- Closed
  | Connecting | Established ->
    s.fin_sent <- true;
    maybe_deliver_fin s;
    s.st <- Closed

let socketpair fab ~host =
  let a = make_socket fab ~host ~unix:true in
  let b = make_socket fab ~host ~unix:true in
  a.st <- Established;
  b.st <- Established;
  a.peer <- Some b;
  b.peer <- Some a;
  a.local <- Some (Addr.Unix { host; path = Printf.sprintf "<pair:%d>" a.id });
  b.local <- Some (Addr.Unix { host; path = Printf.sprintf "<pair:%d>" b.id });
  (a, b)

let inject_recv s data =
  Util.Bytequeue.push s.recv_buf data;
  Trace.Metrics.add m_refill (float_of_int (String.length data));
  if Trace.on () then
    Trace.instant ~node:s.sock_host ~cat:"net" ~name:"refill"
      ~args:[ ("bytes", string_of_int (String.length data)) ]
      ~time:(Sim.Engine.now s.fab.eng) ();
  s.wake ()

let peer_id s = Option.map (fun p -> p.id) s.peer

(* Restart support: turn a freshly created socket into the local end of
   a connection whose peer closed before the checkpoint.  Reads yield
   whatever is injected into [recv_buf] (the drained stash) followed by
   EOF; writes fail as on any closed-by-peer stream. *)
let inject_eof s =
  s.st <- Established;
  s.peer_closed <- true;
  s.fin_sent <- true;
  if Trace.on () then
    Trace.instant ~node:s.sock_host ~cat:"net" ~name:"eof-inject"
      ~time:(Sim.Engine.now s.fab.eng) ();
  s.wake ()

let peer_gone s =
  s.peer_closed || (match s.peer with Some p -> p.fin_sent | None -> true)

let backlog s = s.backlog
