type t = {
  entries : (string, Addr.t) Hashtbl.t;
  waiting : (string, (Addr.t -> unit) list) Hashtbl.t;
}

let create () = { entries = Hashtbl.create 64; waiting = Hashtbl.create 64 }

let advertise t ~key addr =
  Hashtbl.replace t.entries key addr;
  match Hashtbl.find_opt t.waiting key with
  | None -> ()
  | Some fs ->
    Hashtbl.remove t.waiting key;
    List.iter (fun f -> f addr) (List.rev fs)

let lookup t ~key = Hashtbl.find_opt t.entries key

let subscribe t ~key f =
  match Hashtbl.find_opt t.entries key with
  | Some addr -> f addr
  | None ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.waiting key) in
    Hashtbl.replace t.waiting key (f :: existing)

let size t = Hashtbl.length t.entries

let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.waiting

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let remove_prefix t ~prefix =
  Hashtbl.filter_map_inplace
    (fun key v -> if has_prefix ~prefix key then None else Some v)
    t.entries;
  Hashtbl.filter_map_inplace
    (fun key v -> if has_prefix ~prefix key then None else Some v)
    t.waiting
