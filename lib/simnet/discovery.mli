(** The restart-time discovery service (paper §4.4 step 2).

    After restart, processes may have migrated, so socket acceptors
    advertise the address of their restart listener under the connection's
    globally unique ID, and connectors subscribe until the advertisement
    appears.  The service is cluster-wide; the paper notes it is
    centralized for simplicity, as here. *)

type t

val create : unit -> t

(** Advertise [addr] under [key], notifying pending subscribers. *)
val advertise : t -> key:string -> Addr.t -> unit

val lookup : t -> key:string -> Addr.t option

(** [subscribe t ~key f] calls [f addr] immediately if [key] is already
    advertised, otherwise as soon as it is. *)
val subscribe : t -> key:string -> (Addr.t -> unit) -> unit

(** Number of advertisements (for tests). *)
val size : t -> int

(** Drop all advertisements and subscriptions (between restart rounds). *)
val clear : t -> unit

(** Drop advertisements and subscriptions whose key starts with
    [prefix].  Restart waves namespace their keys by coordinator port
    ("<port>/<conn id>"), so one job's new wave clears its own stale
    adverts without disturbing another job's concurrent restart. *)
val remove_prefix : t -> prefix:string -> unit
