(** The cluster interconnect and its TCP-like sockets.

    Each connection endpoint owns kernel-style send and receive buffers;
    the fabric moves bytes between peers with configurable latency and
    per-host NIC bandwidth.  At any instant data may therefore live in the
    sender's buffer, "on the wire" (in flight), or in the receiver's
    buffer — exactly the states DMTCP's drain protocol must empty before a
    checkpoint (paper §4.3 step 4).

    UNIX-domain sockets use the same machinery with loopback latency and
    host-local addressing; [socketpair] returns a pre-connected pair. *)

type t
type socket

type state = Created | Bound | Listening | Connecting | Established | Closed

type error =
  | Refused
  | Not_connected
  | Already_bound
  | Addr_in_use
  | Invalid

val pp_error : error -> string

(** [create engine ~nhosts ()] builds a fabric.
    Defaults: 100 us latency, 117 MB/s NIC bandwidth (GbE), 10 us
    loopback. *)
val create :
  Sim.Engine.t ->
  ?latency:float ->
  ?bandwidth:float ->
  ?loopback_latency:float ->
  nhosts:int ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val nhosts : t -> int

(** Buffer capacity per direction (64 KiB, "tens of kilobytes" §5.4). *)
val buffer_capacity : int

(** Fresh TCP endpoint on [host]. *)
val socket : t -> host:Addr.host -> socket

(** Fresh UNIX-domain endpoint on [host]. *)
val socket_unix : t -> host:Addr.host -> socket

(** Connected UNIX-domain pair (both ends on [host]). *)
val socketpair : t -> host:Addr.host -> socket * socket

(** [bind sock ~port] with [port = 0] picks an ephemeral port. *)
val bind : socket -> port:int -> (int, error) result

val bind_unix : socket -> path:string -> (unit, error) result
val listen : socket -> backlog:int -> (unit, error) result

(** The backlog passed to {!listen} (clamped to ≥ 1); [0] before listen.
    Checkpointing reads this so restart can re-listen faithfully. *)
val backlog : socket -> int

(** Begin an asynchronous connect; the socket becomes [Established] (or
    [Closed] with {!connect_refused}) after network round trips. *)
val connect : socket -> Addr.t -> (unit, error) result

(** Pop one pending connection, if any. *)
val accept : socket -> socket option

(** [send sock data] queues as much of [data] as fits in the send buffer
    and returns the count ([Ok 0] = flow-controlled). *)
val send : socket -> string -> (int, error) result

val recv : socket -> max:int -> [ `Data of string | `Eof | `Would_block | `Error of error ]

(** Half-close of our side; the peer sees EOF once all data drains. *)
val close : socket -> unit

val id : socket -> int
val host : socket -> Addr.host
val state : socket -> state
val local_addr : socket -> Addr.t option

(** Address of the physical peer endpoint, if connected. *)
val peer_addr : socket -> Addr.t option

val is_unix : socket -> bool
val connect_refused : socket -> bool

(** Data available to read, EOF pending, or (for listeners) a pending
    connection. *)
val readable : socket -> bool

val writable : socket -> bool

(** Bytes currently buffered on the receive side. *)
val recv_buffered : socket -> int

(** Bytes in our send buffer, not yet on the wire. *)
val send_buffered : socket -> int

(** Bytes this endpoint has put on the wire that have not yet reached the
    peer. *)
val in_flight : socket -> int

(** Register the kernel wake-up hook, invoked on any state change
    (data arrival, connect completion, EOF, accept-queue push). One slot;
    later registrations replace earlier ones. *)
val on_activity : socket -> (unit -> unit) -> unit

(** {2 Checkpoint support}

    [inject_recv sock data] places [data] at the tail of [sock]'s receive
    buffer without traversing the wire.  This is the simulation shortcut
    for DMTCP's refill step (paper §4.3 step 6): in the real system the
    receiver sends drained data back to the sender, who re-transmits it so
    it ends up in kernel buffers again; here the end state is produced
    directly and the caller charges the retransmission time.  Capacity is
    deliberately not enforced — drained data by construction fit the
    buffers it came from. *)
val inject_recv : socket -> string -> unit

(** Unique id of the physical peer endpoint, if connected — used by the
    DMTCP layer's connect/accept handshake to match the two ends of a
    connection. *)
val peer_id : socket -> int option

(** The peer endpoint has called [close]: EOF has been received, or the
    FIN is still in flight (an established socket with no peer is also
    gone). *)
val peer_gone : socket -> bool

(** Turn a fresh socket into the local end of a peer-closed stream:
    reads return injected data then EOF; writes fail (restart of a
    half-closed connection). *)
val inject_eof : socket -> unit

(** {2 Fault injection}

    Knobs for the chaos layer.  A downed link holds all traffic — senders
    park and retry every {!partition_retry} seconds until the link heals,
    and a SYN that would cross the partition is refused.  Latency factors
    stretch propagation delay on a link; [set_drop] models segment loss as
    a per-chunk retransmission-timeout penalty drawn from the supplied rng
    so runs stay deterministic per seed.  Loopback traffic is never
    faulted.  Always heal partitions (e.g. via [clear_faults]) before
    draining the engine with no [until] bound: parked senders reschedule
    themselves indefinitely. *)

val partition_retry : float
val retransmit_timeout : float

val link_up : t -> a:Addr.host -> b:Addr.host -> bool
val set_link_up : t -> a:Addr.host -> b:Addr.host -> bool -> unit
val set_latency_factor : t -> a:Addr.host -> b:Addr.host -> float -> unit

(** [set_drop t ~prob rng] makes each inter-host chunk transfer pay
    {!retransmit_timeout} with probability [prob].  [prob = 0.] disables. *)
val set_drop : t -> prob:float -> Util.Rng.t -> unit

(** Restore every link and clear the drop model. *)
val clear_faults : t -> unit
