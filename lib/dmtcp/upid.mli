(** Universally unique process IDs: (hostid, pid, generation).

    Real pids are only unique per node and per boot; DMTCP identifies a
    checkpointed process across hosts and across restart generations by
    this triple. *)

type t = { hostid : int; pid : int; generation : int }

val make : hostid:int -> pid:int -> generation:int -> t
val to_string : t -> string
val next_generation : t -> t

(** [(hostid, pid)] without the generation — stable across restarts; the
    retention unit of generational checkpoint GC. *)
val lineage : t -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
