type t = {
  coord_host : int;
  coord_port : int;
  ckpt_dir : string;
  algo : Compress.Algo.t;
  forked : bool;
  incremental : bool;
  interval : float option;
  sync_after : bool;
  store : bool;
  store_replicas : int;
  store_quorum : int;  (* 0 = majority of store_replicas *)
  keep_generations : int;  (* retention for store GC and legacy files; 0 = unbounded *)
  delta_chain : int;
      (* incremental mode: max delta-chain depth before the next
         checkpoint is written full again; 0 = always full images *)
  lazy_restart : bool;
  restart_parallel : int;  (* decompress parallelism cap; 0 = all cores *)
  compact_depth : int;
      (* background compaction: squash delta chains deeper than this
         into consolidated full images; 0 = compactor off *)
  plugins : string list;
      (* enabled plugin set (DMTCP_PLUGINS, comma-separated; "none"
         disables every plugin).  Parsed strictly: malformed names
         raise, unlike the forgiving numeric knobs, because a typo'd
         plugin silently not running is an open-world data-loss bug. *)
  blacklist_ports : int list;
      (* blacklist-ports plugin knob (DMTCP_PLUGIN_BLACKLIST_PORTS):
         service ports whose connections are skipped at drain and
         recreated as dead sockets on restart *)
  ext_shm_prefix : string;
      (* ext-shm plugin knob (DMTCP_PLUGIN_EXT_SHM_PREFIX): shared
         mappings backed by paths under this prefix belong to an
         external service and are zeroed in the written image *)
  mpi_proxy_prefix : string;
      (* mpi-proxy plugin knob (DMTCP_PLUGIN_MPI_PROXY_PREFIX): unix
         sockets whose path starts with this prefix connect a rank to
         its node's MPI proxy daemon; they are not drained and restore
         as dead sockets so the rank reconnects to the relaunched
         proxy *)
}

let default =
  {
    coord_host = 0;
    coord_port = 7779;
    ckpt_dir = "/ckpt";
    algo = Compress.Algo.Deflate;
    forked = false;
    incremental = false;
    interval = None;
    sync_after = false;
    store = false;
    store_replicas = 2;
    store_quorum = 0;
    keep_generations = 2;
    delta_chain = 8;
    lazy_restart = false;
    restart_parallel = 0;
    compact_depth = 0;
    plugins = [ "ext-sock" ];
    blacklist_ports = [ 53; 389; 636 ];
    ext_shm_prefix = "/var/db/nscd";
    mpi_proxy_prefix = Proxy.Wire.path_prefix;
  }

let hijack_key = "DMTCP_HIJACK"

let plugin_name_ok n =
  n <> ""
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') n

(* Strict: raises [Invalid_argument] on malformed values. *)
let parse_plugins s =
  match String.trim s with
  | "" | "none" -> []
  | s ->
    let names = String.split_on_char ',' s |> List.map String.trim in
    List.iter
      (fun n ->
        if not (plugin_name_ok n) then
          invalid_arg (Printf.sprintf "DMTCP_PLUGINS: malformed plugin name %S" n))
      names;
    names

let parse_ports s =
  match String.trim s with
  | "" -> []
  | s ->
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some p when p > 0 && p < 65536 -> p
           | _ ->
             invalid_arg (Printf.sprintf "DMTCP_PLUGIN_BLACKLIST_PORTS: bad port %S" tok))

let plugins_to_string = function [] -> "none" | names -> String.concat "," names

(* Note: deliberately does NOT set the hijack marker — only
   dmtcp_checkpoint's exec wrapper injects the library, so DMTCP's own
   helper processes (coordinator, command, restart) stay un-hijacked. *)
let to_env t =
  [
    ("DMTCP_COORD_HOST", string_of_int t.coord_host);
    ("DMTCP_COORD_PORT", string_of_int t.coord_port);
    ("DMTCP_CHECKPOINT_DIR", t.ckpt_dir);
    ("DMTCP_GZIP", Compress.Algo.name t.algo);
    ("DMTCP_FORKED", if t.forked then "1" else "0");
    ("DMTCP_INCREMENTAL", if t.incremental then "1" else "0");
    ("DMTCP_INTERVAL", (match t.interval with Some i -> string_of_float i | None -> "0"));
    ("DMTCP_SYNC", if t.sync_after then "1" else "0");
    ("DMTCP_STORE", if t.store then "1" else "0");
    ("DMTCP_STORE_REPLICAS", string_of_int t.store_replicas);
    ("DMTCP_STORE_QUORUM", string_of_int t.store_quorum);
    ("DMTCP_KEEP_GENERATIONS", string_of_int t.keep_generations);
    ("DMTCP_DELTA_CHAIN", string_of_int t.delta_chain);
    ("DMTCP_LAZY_RESTART", if t.lazy_restart then "1" else "0");
    ("DMTCP_RESTART_PARALLEL", string_of_int t.restart_parallel);
    ("DMTCP_COMPACT_DEPTH", string_of_int t.compact_depth);
    ("DMTCP_PLUGINS", plugins_to_string t.plugins);
    ( "DMTCP_PLUGIN_BLACKLIST_PORTS",
      String.concat "," (List.map string_of_int t.blacklist_ports) );
    ("DMTCP_PLUGIN_EXT_SHM_PREFIX", t.ext_shm_prefix);
    ("DMTCP_PLUGIN_MPI_PROXY_PREFIX", t.mpi_proxy_prefix);
  ]

let of_env env =
  let get key default = Option.value ~default (List.assoc_opt key env) in
  let get_int key default = try int_of_string (get key (string_of_int default)) with _ -> default in
  let coord_host = get_int "DMTCP_COORD_HOST" default.coord_host in
  let coord_port = get_int "DMTCP_COORD_PORT" default.coord_port in
  let ckpt_dir = get "DMTCP_CHECKPOINT_DIR" default.ckpt_dir in
  let algo =
    Option.value ~default:default.algo (Compress.Algo.of_name (get "DMTCP_GZIP" "deflate"))
  in
  let forked = get "DMTCP_FORKED" "0" = "1" in
  let incremental = get "DMTCP_INCREMENTAL" "0" = "1" in
  let interval = match float_of_string (get "DMTCP_INTERVAL" "0") with 0. -> None | i -> Some i in
  let sync_after = get "DMTCP_SYNC" "0" = "1" in
  let store = get "DMTCP_STORE" "0" = "1" in
  let store_replicas = get_int "DMTCP_STORE_REPLICAS" default.store_replicas in
  let store_quorum = get_int "DMTCP_STORE_QUORUM" default.store_quorum in
  let keep_generations = get_int "DMTCP_KEEP_GENERATIONS" default.keep_generations in
  let delta_chain = get_int "DMTCP_DELTA_CHAIN" default.delta_chain in
  let lazy_restart = get "DMTCP_LAZY_RESTART" "0" = "1" in
  let restart_parallel = get_int "DMTCP_RESTART_PARALLEL" default.restart_parallel in
  let compact_depth = get_int "DMTCP_COMPACT_DEPTH" default.compact_depth in
  let plugins =
    match List.assoc_opt "DMTCP_PLUGINS" env with
    | None -> default.plugins
    | Some s -> parse_plugins s
  in
  let blacklist_ports =
    match List.assoc_opt "DMTCP_PLUGIN_BLACKLIST_PORTS" env with
    | None -> default.blacklist_ports
    | Some s -> parse_ports s
  in
  let ext_shm_prefix = get "DMTCP_PLUGIN_EXT_SHM_PREFIX" default.ext_shm_prefix in
  let mpi_proxy_prefix = get "DMTCP_PLUGIN_MPI_PROXY_PREFIX" default.mpi_proxy_prefix in
  {
    coord_host;
    coord_port;
    ckpt_dir;
    algo;
    forked;
    incremental;
    interval;
    sync_after;
    store;
    store_replicas;
    store_quorum;
    keep_generations;
    delta_chain;
    lazy_restart;
    restart_parallel;
    compact_depth;
    plugins;
    blacklist_ports;
    ext_shm_prefix;
    mpi_proxy_prefix;
  }

let of_getenv getenv =
  let env =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (getenv k))
      [
        hijack_key; "DMTCP_COORD_HOST"; "DMTCP_COORD_PORT"; "DMTCP_CHECKPOINT_DIR"; "DMTCP_GZIP";
        "DMTCP_FORKED"; "DMTCP_INCREMENTAL"; "DMTCP_INTERVAL"; "DMTCP_SYNC"; "DMTCP_STORE";
        "DMTCP_STORE_REPLICAS"; "DMTCP_STORE_QUORUM"; "DMTCP_KEEP_GENERATIONS";
        "DMTCP_DELTA_CHAIN"; "DMTCP_LAZY_RESTART"; "DMTCP_RESTART_PARALLEL";
        "DMTCP_COMPACT_DEPTH"; "DMTCP_PLUGINS"; "DMTCP_PLUGIN_BLACKLIST_PORTS";
        "DMTCP_PLUGIN_EXT_SHM_PREFIX"; "DMTCP_PLUGIN_MPI_PROXY_PREFIX";
      ]
  in
  of_env env
