(** The generated restart script (paper §3): one [dmtcp_restart] call per
    node, plus the coordinator address.  Stored both as a structured
    record (used by the harness and tests) and as shell-script text
    written next to the images, as the real package does. *)

type t = {
  coord_host : int;
  coord_port : int;
  entries : (int * string list) list;  (** (host, image paths) *)
}

(** The [dmtcp_restart_script.sh] text. *)
val to_text : t -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t

(** Remap original hosts to new hosts (process migration), e.g. restart a
    whole cluster run on one laptop with [fun _ -> 0]. *)
val remap : t -> (int -> int) -> t

(** Slot-accurate remap for scheduler restarts.  [old_alloc] is the
    allocation the script was captured under and [new_alloc] the target
    allocation; images of a host occupying several slots of [old_alloc]
    are spread (in sorted order) over the hosts at the {e same
    positions} of [new_alloc], instead of all collapsing onto one host
    as a host-level {!remap} would.  The coordinator host follows its
    first slot; positions beyond [new_alloc] keep their old host. *)
val remap_positional : t -> old_alloc:int array -> new_alloc:int array -> t
