let name = "dmtcp:mgr"

type drain_item = {
  d_fd : int;
  d_entry : Conn_table.entry;
  mutable d_stash : string;     (* received bytes, token included at end *)
  mutable d_token_sent : int;   (* bytes of the flush token already sent *)
  mutable d_done : bool;
}

type phase =
  | P_boot
  | P_connecting of int  (* connect retries left *)
  | P_idle
  | P_critical_wait
  | P_send_barrier of int * phase  (* notify arrival, then await release *)
  | P_barrier of int * phase       (* awaiting RELEASE k, then continue *)
  | P_elect
  | P_drain
  | P_write
  | P_write_disk of { path : string; bytes : string; sim : int }
  | P_write_file of { path : string; bytes : string; sim : int }
  | P_write_store of {
      path : string;
      bytes : string;
      sim : int;
      upid : Upid.t;
      program : string;
      base : string option;
    }
  | P_store_commit of { lineage : string }
  | P_refill
  | P_refill_done
  | P_resume

type state = {
  mutable coord_fd : int;
  mutable buf : string;
  mutable phase : phase;
  mutable drains : drain_item list;
  mutable coord_eof : bool;  (* coordinator hung up on us *)
}

module P = struct
  type nonrec state = state

  let name = name
  let encode _ _ = failwith "dmtcp:mgr is not checkpointable (recreated at restart)"
  let decode _ = failwith "dmtcp:mgr is not checkpointable (recreated at restart)"
  let init ~argv:_ = { coord_fd = -1; buf = ""; phase = P_boot; drains = []; coord_eof = false }

  (* -------------------------------------------------------------- *)
  (* helpers *)

  let rt () = Runtime.active ()

  let m_drained = Trace.Metrics.counter "dmtcp.drained_bytes"

  (* one instant per protocol phase entry, next to the fault hook *)
  let trace_phase (ctx : Simos.Program.ctx) name args =
    if Trace.on () then
      Trace.instant ~node:ctx.Simos.Program.node_id ~pid:ctx.Simos.Program.pid ~cat:"dmtcp"
        ~name:("mgr/" ^ name) ~args ~time:(ctx.now ()) ()

  (* plugin hook dispatch, co-located with the fault/trace
     instrumentation: same protocol points, typed payloads *)
  let hook (ctx : Simos.Program.ctx) site payload =
    Plugin.dispatch ~node:ctx.Simos.Program.node_id ~pid:ctx.Simos.Program.pid
      ~now:(ctx.now ()) site payload

  let stage_hook ctx phase stg =
    hook ctx (Events.site_stage phase stg) (Events.Stage { stage = stg })

  let my_kernel (ctx : Simos.Program.ctx) = Runtime.kernel_of (rt ()) ~node:ctx.node_id

  let my_proc (ctx : Simos.Program.ctx) =
    match Runtime.proc_of (rt ()) ~node:ctx.node_id ~pid:ctx.pid with
    | Some p -> p
    | None -> failwith "dmtcp:mgr: own process not found"

  let my_pstate (ctx : Simos.Program.ctx) =
    match Runtime.pstate_of (rt ()) ~node:ctx.node_id ~pid:ctx.pid with
    | Some ps -> ps
    | None -> failwith "dmtcp:mgr: own pstate not found"

  let desc_socket (ctx : Simos.Program.ctx) fd =
    match Simos.Kernel.fd_desc (my_proc ctx) fd with
    | Some { Simos.Fdesc.kind = Simos.Fdesc.Sock s; _ } -> Some s
    | _ -> None

  (* read whatever the coordinator sent and return complete lines *)
  let pump_coord (ctx : Simos.Program.ctx) st =
    let continue = ref true in
    while !continue do
      match ctx.read_fd st.coord_fd ~max:4096 with
      | `Data d -> st.buf <- st.buf ^ d
      | `Eof ->
        st.coord_eof <- true;
        continue := false
      | `Err _ | `Would_block -> continue := false
    done;
    let lines, rest = Proto.split_lines st.buf in
    st.buf <- rest;
    lines

  let send_coord (ctx : Simos.Program.ctx) st line = ignore (ctx.write_fd st.coord_fd line)

  (* transition: after the current outcome completes, announce arrival at
     barrier [k] and wait for its release before entering [next] *)
  let to_barrier st k next =
    st.phase <- P_send_barrier (k, next);
    st

  (* Established sockets with a connection-table entry whose leader we
     are.  Peers under checkpoint control drain with the flush-token
     handshake; a socket whose peer already closed (process exited or fd
     closed — the FIN is delivered or still in flight) is an "orphan":
     it is drained to EOF without a token, and the EOF itself is
     recorded so the restarted stream ends where the real one did. *)
  let leader_fds (ctx : Simos.Program.ctx) =
    let ps = my_pstate ctx in
    Conn_table.unique_descs ps.Runtime.conns
    |> List.filter_map (fun (fd, entry) ->
           match desc_socket ctx fd with
           | Some s
             when Simnet.Fabric.state s = Simnet.Fabric.Established
                  && ctx.get_fd_owner fd = ctx.pid ->
             if Runtime.peer_entry (rt ()) s <> None then Some (fd, entry, `Peer)
             else if Simnet.Fabric.peer_gone s then Some (fd, entry, `Orphan)
             else None
           | _ -> None)

  let token = Proto.drain_token
  let token_len = String.length token

  let ends_with_token s =
    String.length s >= token_len && String.sub s (String.length s - token_len) token_len = token

  (* -------------------------------------------------------------- *)
  (* checkpoint image construction *)

  let build_image (ctx : Simos.Program.ctx) =
    let proc = my_proc ctx in
    let ps = my_pstate ctx in
    let opts = Options.of_getenv ctx.getenv in
    let mtcp_image = Mtcp.Image.capture proc in
    (* image-write hook: runs on the captured snapshot before sizing and
       encoding, so whatever plugins mutate is exactly what lands on
       disk (ext-shm zeroes external-service shared segments here) *)
    hook ctx Events.site_image_write (Events.Image_write { image = mtcp_image });
    (* chain this checkpoint onto the previous image when incremental
       deltas are enabled and the chain is still short enough; a reset
       (None) writes a self-contained full image *)
    let delta_base =
      if opts.Options.incremental then
        match ps.Runtime.delta_prev with
        | Some (base, depth) when depth < opts.Options.delta_chain -> Some base
        | _ -> None
      else None
    in
    let sizes =
      if opts.Options.incremental then begin
        let s =
          if delta_base = None then Mtcp.Image.sizes opts.Options.algo mtcp_image
          else Mtcp.Image.delta_sizes opts.Options.algo ~prev:ps.Runtime.prev_space mtcp_image
        in
        ps.Runtime.prev_space <- Some mtcp_image.Mtcp.Image.space;
        s
      end
      else Mtcp.Image.sizes opts.Options.algo mtcp_image
    in
    let mtcp_blob =
      match delta_base with
      | Some _ -> Mtcp.Image.encode_delta ~algo:opts.Options.algo mtcp_image
      | None -> Mtcp.Image.encode ~algo:opts.Options.algo mtcp_image
    in
    if opts.Options.incremental then
      (* the capture snapshot above kept the pre-clear bits (that is what
         the delta encoder read); from here on the live space accumulates
         dirt relative to THIS checkpoint *)
      Mem.Address_space.clear_dirty proc.Simos.Kernel.space;
    let pty_records = Hashtbl.create 4 in
    let classify fd (desc : Simos.Fdesc.t) entry =
      match desc.Simos.Fdesc.kind with
      | Simos.Fdesc.File { file; offset } ->
        Some (Ckpt_image.FFile { path = Simos.Vfs.path_of file; offset })
      | Simos.Fdesc.Sock s -> (
        match entry with
        | None -> None (* DMTCP-internal socket (coordinator link) *)
        | Some entry ->
          let state =
            match Simnet.Fabric.state s with
            | Simnet.Fabric.Established -> Ckpt_image.S_established
            | Simnet.Fabric.Listening ->
              let port, unix_path =
                match Simnet.Fabric.local_addr s with
                | Some (Simnet.Addr.Inet { port; _ }) -> (Some port, None)
                | Some (Simnet.Addr.Unix { path; _ }) -> (None, Some path)
                | None -> (None, None)
              in
              (* capture the real backlog so restart's re-listen
                 restores it faithfully *)
              Ckpt_image.S_listening { port; unix_path; backlog = Simnet.Fabric.backlog s }
            | _ -> Ckpt_image.S_other
          in
          Some
            (Ckpt_image.FSock
               {
                 state;
                 kind = entry.Conn_table.kind;
                 role = entry.Conn_table.role;
                 conn_id = entry.Conn_table.conn_id;
                 drained = entry.Conn_table.drained;
                 eof = entry.Conn_table.eof;
               }))
      | Simos.Fdesc.Pty_m p | Simos.Fdesc.Pty_s p ->
        let master =
          match desc.Simos.Fdesc.kind with Simos.Fdesc.Pty_m _ -> true | _ -> false
        in
        let pty_key = Simos.Pty.id p in
        if not (Hashtbl.mem pty_records pty_key) then begin
          let tio = Simos.Pty.termios p in
          let to_slave, to_master =
            Option.value ~default:("", "") (Hashtbl.find_opt ps.Runtime.pty_drains pty_key)
          in
          Hashtbl.replace pty_records pty_key
            {
              Ckpt_image.pty_key;
              pr_name = Simos.Pty.ptsname p;
              icanon = tio.Simos.Pty.icanon;
              echo = tio.Simos.Pty.echo;
              isig = tio.Simos.Pty.isig;
              baud = tio.Simos.Pty.baud;
              drained_to_slave = to_slave;
              drained_to_master = to_master;
            }
        end;
        ignore fd;
        Some (Ckpt_image.FPty { master; pty_key })
      | Simos.Fdesc.Pipe_r _ | Simos.Fdesc.Pipe_w _ ->
        (* pipes are promoted to socketpairs under DMTCP; a raw
           pipe here predates hijacking and is dropped *)
        None
    in
    let fds =
      ctx.fds ()
      |> List.filter_map (fun fd ->
             match Simos.Kernel.fd_desc proc fd with
             | None -> None
             | Some desc ->
               let key = desc.Simos.Fdesc.desc_id in
               let entry =
                 match desc.Simos.Fdesc.kind with
                 | Simos.Fdesc.Sock _ -> Conn_table.find ps.Runtime.conns ~fd
                 | _ -> None
               in
               (* fd-capture hook: plugins may rewrite the classification
                  about to enter the image (blacklist-ports demotes
                  established service connections to S_other) or drop
                  the fd entirely *)
               let payload =
                 Events.Fd_capture { fd; desc; entry; info = classify fd desc entry }
               in
               hook ctx Events.site_fd_capture payload;
               let info =
                 match payload with Events.Fd_capture p -> p.info | _ -> None
               in
               Option.map (fun info -> (fd, key, info)) info)
    in
    let parent_vpid =
      match Runtime.pstate_of (rt ()) ~node:ctx.node_id ~pid:(ctx.ppid ()) with
      | Some parent_ps -> parent_ps.Runtime.vpid
      | None -> 0
    in
    let image =
      {
        Ckpt_image.upid = ps.Runtime.upid;
        vpid = ps.Runtime.vpid;
        parent_vpid;
        program = (match proc.Simos.Kernel.cmdline with p :: _ -> p | [] -> "a.out");
        fds;
        ptys = Hashtbl.fold (fun _ p acc -> p :: acc) pty_records [];
        algo = opts.Options.algo;
        sizes;
        delta_base;
        mtcp_blob;
      }
    in
    (* Incremental checkpoints get a unique per-checkpoint filename: an
       interval checkpoint overwriting its predecessor in place would
       destroy the base a live delta chain still resolves through. *)
    let fname =
      if opts.Options.incremental then begin
        let seq = ps.Runtime.ckpt_seq in
        ps.Runtime.ckpt_seq <- seq + 1;
        Ckpt_image.filename ~seq image
      end
      else Ckpt_image.filename image
    in
    if opts.Options.incremental then begin
      let depth =
        match (delta_base, ps.Runtime.delta_prev) with
        | Some _, Some (_, d) -> d + 1
        | _ -> 0
      in
      ps.Runtime.delta_prev <- Some (fname, depth)
    end;
    (image, fname)

  (* run-to-run variation of compression and I/O (the paper's error
     bars): +/- a few percent, deterministic in the simulation seed *)
  let jitter (ctx : Simos.Program.ctx) dt =
    Float.max (0.75 *. dt) (dt *. (1.0 +. (0.05 *. Util.Rng.gaussian ctx.rng ~mean:0. ~stddev:1.)))

  let write_image_file (ctx : Simos.Program.ctx) path bytes sim_size =
    let k = my_kernel ctx in
    let f = Simos.Vfs.open_or_create (Simos.Kernel.vfs k) path in
    Simos.Vfs.truncate f;
    Simos.Vfs.append f bytes;
    Simos.Vfs.set_sim_size f sim_size

  (* Store write path: chunk at DMZ2 frame boundaries, dedup against
     every prior generation, replicate new blocks; the returned delay is
     the write quorum's completion (no flat file, no sync — replication
     is the durability mechanism). *)
  let store_put store ~node ~path ~bytes ~upid ~program ~sim ~base =
    Store.put store ?base ~node ~lineage:(Upid.lineage upid) ~generation:upid.Upid.generation
      ~name:(Filename.basename path) ~program ~sim_bytes:sim ~chunks:(Ckpt_image.chunk bytes)

  (* After a checkpoint write lands: age out generations beyond the
     retention window — catalog manifests under the store, flat
     image/conninfo files either way. *)
  let finish_write lineage =
    (match Runtime.store (rt ()) with
    | Some store -> ignore (Store.gc_lineage store ~lineage)
    | None -> ());
    Runtime.prune_images (rt ()) ~lineage

  (* -------------------------------------------------------------- *)
  (* the state machine *)

  let rec step (ctx : Simos.Program.ctx) st =
    match st.phase with
    | P_boot ->
      st.coord_fd <- ctx.socket ();
      let opts = Options.of_getenv ctx.getenv in
      (match
         ctx.connect st.coord_fd
           (Simnet.Addr.Inet { host = opts.Options.coord_host; port = opts.Options.coord_port })
       with
      | Ok () ->
        st.phase <- P_connecting 100;
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | Error _ -> Simos.Program.Exit 1)
    | P_connecting retries -> (
      match ctx.sock_state st.coord_fd with
      | Some Simnet.Fabric.Established ->
        let ps = my_pstate ctx in
        send_coord ctx st (Proto.hello ps.Runtime.upid);
        st.phase <- P_idle;
        Simos.Program.Continue st
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ when retries > 0 ->
        (* coordinator not up yet: retry *)
        ctx.close_fd st.coord_fd;
        st.coord_fd <- ctx.socket ();
        let opts = Options.of_getenv ctx.getenv in
        ignore
          (ctx.connect st.coord_fd
             (Simnet.Addr.Inet { host = opts.Options.coord_host; port = opts.Options.coord_port }));
        st.phase <- P_connecting (retries - 1);
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 10e-3))
      | _ -> Simos.Program.Exit 1)
    | P_idle -> (
      let lines = pump_coord ctx st in
      let ckpt_requested = List.exists (fun l -> Proto.parse l = Proto.Do_checkpoint) lines in
      if ckpt_requested then begin
        st.phase <- P_critical_wait;
        Simos.Program.Continue st
      end
      else if st.coord_eof then
        (* The coordinator hung up.  Without it the computation can be
           neither checkpointed nor coherently restarted: fail stop (the
           harness restarts from the last completed images).  Exiting
           also avoids a same-instant wake loop — a peer-closed socket
           stays readable forever. *)
        Simos.Program.Exit 0
      else
        match ctx.sock_state st.coord_fd with
        | Some Simnet.Fabric.Established ->
          Simos.Program.Block (st, Simos.Program.Readable st.coord_fd)
        | _ -> Simos.Program.Exit 0)
    | P_critical_wait ->
      let ps = my_pstate ctx in
      if ps.Runtime.critical > 0 then
        (* dmtcpaware: the application asked to delay checkpoints *)
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      else begin
        (* stage 2: suspend user threads *)
        Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Suspend;
        trace_phase ctx "suspend" [];
        stage_hook ctx `Pre Faults.Suspend;
        let proc = my_proc ctx in
        (match proc.Simos.Kernel.cmdline with
        | prog :: _ -> Dmtcpaware.run_pre_ckpt ~prog
        | [] -> ());
        Simos.Kernel.suspend_user_threads (my_kernel ctx) proc;
        stage_hook ctx `Post Faults.Suspend;
        let nthreads = List.length proc.Simos.Kernel.threads in
        Simos.Program.Compute (to_barrier st 1 P_elect, Mtcp.Cost.suspend_seconds ~nthreads)
      end
    | P_send_barrier (k, next) ->
      Faults.notify ~node:ctx.node_id ~pid:ctx.pid (Faults.Barrier k);
      trace_phase ctx "barrier" [ ("k", string_of_int k) ];
      stage_hook ctx `Pre (Faults.Barrier k);
      send_coord ctx st (Proto.barrier k);
      st.phase <- P_barrier (k, next);
      Simos.Program.Continue st
    | P_barrier (k, next) -> (
      let lines = pump_coord ctx st in
      let released = List.exists (fun l -> Proto.parse l = Proto.Release k) lines in
      if released then begin
        stage_hook ctx `Post (Faults.Barrier k);
        st.phase <- next;
        Simos.Program.Continue st
      end
      else if st.coord_eof then
        (* coordinator died mid-checkpoint: the barrier will never be
           released; fail stop with user threads still suspended *)
        Simos.Program.Exit 70
      else
        match ctx.sock_state st.coord_fd with
        | Some Simnet.Fabric.Established ->
          Simos.Program.Block (st, Simos.Program.Readable st.coord_fd)
        | _ -> Simos.Program.Exit 0)
    | P_elect ->
      (* stage 3: elect shared-FD leaders by misusing F_SETOWN — every
         process sharing the description sets the owner; the last one
         wins *)
      Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Elect;
      trace_phase ctx "elect" [];
      stage_hook ctx `Pre Faults.Elect;
      let ps = my_pstate ctx in
      let entries = Conn_table.entries ps.Runtime.conns in
      List.iter
        (fun (fd, (entry : Conn_table.entry)) ->
          entry.Conn_table.saved_owner <- ctx.get_fd_owner fd;
          ctx.set_fd_owner fd ctx.pid)
        entries;
      stage_hook ctx `Post Faults.Elect;
      Simos.Program.Compute
        (to_barrier st 2 P_drain, Mtcp.Cost.elect_seconds ~nfds:(List.length entries))
    | P_drain ->
      if st.drains = [] then begin
        Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Drain;
        trace_phase ctx "drain" [];
        stage_hook ctx `Pre Faults.Drain;
        if !Faults.bug_skip_drain then begin
          (* injected bug: skip stage 4 — no flush tokens, nothing
             stashed; whatever the kernel buffers held is left out of
             the image and still sitting in the buffers at write time *)
          drain_finished ctx st;
          Simos.Program.Continue (to_barrier st 3 P_write)
        end
        else begin
        (* first entry into the drain stage: pick the sockets we lead.
           The drain-select hook lets plugins exclude connections whose
           peer is outside checkpoint control (blacklisted service
           ports): a skipped connection sends no flush token and stashes
           nothing. *)
        let leaders =
          leader_fds ctx
          |> List.filter (fun (fd, entry, _) ->
                 match desc_socket ctx fd with
                 | Some sock ->
                   let payload =
                     Events.Drain_select { fd; entry; sock; skip = false }
                   in
                   hook ctx Events.site_drain_select payload;
                   (match payload with
                   | Events.Drain_select p -> not p.skip
                   | _ -> true)
                 | None -> true)
        in
        if leaders = [] then begin
          drain_finished ctx st;
          Simos.Program.Continue (to_barrier st 3 P_write)
        end
        else begin
          st.drains <-
            List.map
              (fun (fd, entry, mode) ->
                {
                  d_fd = fd;
                  d_entry = entry;
                  d_stash = "";
                  (* no flush token for an orphan: nobody will read it *)
                  d_token_sent = (match mode with `Orphan -> token_len | `Peer -> 0);
                  d_done = false;
                })
              leaders;
          drain_work ctx st
        end
        end
      end
      else drain_work ctx st
    | P_write when (my_pstate ctx).Runtime.forked_pending ->
      (* at most one outstanding forked child: the previous background
         write must land before this checkpoint captures (a delta's base
         must be durable before anything references it) *)
      Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
    | P_write -> (
      (* stage 5: write the checkpoint image *)
      Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Write;
      trace_phase ctx "write" [];
      stage_hook ctx `Pre Faults.Write;
      let opts = Options.of_getenv ctx.getenv in
      let image, fname = build_image ctx in
      let bytes = Ckpt_image.encode image in
      let sizes = image.Ckpt_image.sizes in
      let path = Printf.sprintf "%s/%s" opts.Options.ckpt_dir fname in
      let compress_cost =
        jitter ctx
          (Compress.Model.compress_seconds ~algo:opts.Options.algo
             ~bytes:sizes.Mtcp.Image.uncompressed ~zero_bytes:sizes.Mtcp.Image.zero_bytes)
      in
      Runtime.record_image ~port:opts.Options.coord_port (rt ()) ~node:ctx.node_id ~path
        ~upid:image.Ckpt_image.upid ~sizes;
      (match image.Ckpt_image.delta_base with
      | Some base ->
        (* delta checkpoint: a stage span for the breakdown tables plus
           frame/byte counters so traces show what the fast path shipped *)
        Runtime.record_stage (rt ()) "ckpt/delta" compress_cost;
        let frames =
          match Compress.Container.frame_bounds image.Ckpt_image.mtcp_blob with
          | Some bounds -> List.length bounds
          | None -> 1
        in
        if Trace.on () then begin
          Trace.instant ~node:ctx.node_id ~pid:ctx.pid ~cat:"dmtcp" ~name:"ckpt/delta-base"
            ~args:[ ("base", base) ] ~time:(ctx.now ()) ();
          Trace.counter ~node:ctx.node_id ~pid:ctx.pid ~cat:"dmtcp" ~name:"ckpt/delta-frames"
            ~time:(ctx.now ())
            (float_of_int frames);
          Trace.counter ~node:ctx.node_id ~pid:ctx.pid ~cat:"dmtcp" ~name:"ckpt/delta-bytes"
            ~time:(ctx.now ())
            (float_of_int (String.length bytes))
        end;
        Trace.Metrics.incr (Trace.Metrics.counter "dmtcp.delta_ckpts");
        Trace.Metrics.add
          (Trace.Metrics.counter "dmtcp.delta_bytes")
          (float_of_int (String.length bytes))
      | None -> ());
      if opts.Options.forked then begin
        (* forked checkpointing: snapshot copy-on-write; compression and
           writing happen in the "child" while the parent resumes after
           only the fork cost (paper §5.3) *)
        let pages =
          Mem.Address_space.total_bytes (my_proc ctx).Simos.Kernel.space / Mem.Page.size
        in
        let k = my_kernel ctx in
        let storage = Simos.Kernel.storage k in
        let eng = Simos.Kernel.engine k in
        let upid = image.Ckpt_image.upid in
        let program = image.Ckpt_image.program in
        let base = image.Ckpt_image.delta_base in
        let lineage = Upid.lineage upid in
        let ps = my_pstate ctx in
        ps.Runtime.forked_pending <- true;
        let landed () =
          ps.Runtime.forked_pending <- false;
          finish_write lineage
        in
        ignore
          (Sim.Engine.schedule eng ~delay:compress_cost (fun () ->
               match Runtime.store (rt ()) with
               | Some store ->
                 let delay =
                   store_put store ~node:ctx.node_id ~path ~bytes ~upid ~program
                     ~sim:sizes.Mtcp.Image.compressed ~base
                 in
                 ignore (Sim.Engine.schedule eng ~delay (fun () -> landed ()))
               | None ->
                 let write_delay = Storage.Target.write storage ~bytes:sizes.Mtcp.Image.compressed in
                 ignore
                   (Sim.Engine.schedule eng ~delay:write_delay (fun () ->
                        write_image_file ctx path bytes sizes.Mtcp.Image.compressed;
                        landed ()))));
        (* forked mode: the parent's write stage ends at the snapshot;
           the image lands from the background child *)
        stage_hook ctx `Post Faults.Write;
        Simos.Program.Compute (to_barrier st 4 P_refill, Mtcp.Cost.snapshot_seconds ~pages)
      end
      else begin
        (match Runtime.store (rt ()) with
        | Some _ ->
          st.phase <-
            P_write_store
              {
                path;
                bytes;
                sim = sizes.Mtcp.Image.compressed;
                upid = image.Ckpt_image.upid;
                program = image.Ckpt_image.program;
                base = image.Ckpt_image.delta_base;
              }
        | None -> st.phase <- P_write_disk { path; bytes; sim = sizes.Mtcp.Image.compressed });
        Simos.Program.Compute (st, compress_cost)
      end)
    | P_write_disk { path; bytes; sim } ->
      let opts = Options.of_getenv ctx.getenv in
      let storage = Simos.Kernel.storage (my_kernel ctx) in
      let write_delay = jitter ctx (Storage.Target.write storage ~bytes:sim) in
      let sync_delay = if opts.Options.sync_after then Storage.Target.sync storage else 0. in
      st.phase <- P_write_file { path; bytes; sim };
      Simos.Program.Block
        (st, Simos.Program.Sleep_until (ctx.now () +. write_delay +. sync_delay))
    | P_write_file { path; bytes; sim } ->
      write_image_file ctx path bytes sim;
      finish_write (Upid.lineage (my_pstate ctx).Runtime.upid);
      stage_hook ctx `Post Faults.Write;
      Simos.Program.Continue (to_barrier st 4 P_refill)
    | P_write_store { path; bytes; sim; upid; program; base } -> (
      match Runtime.store (rt ()) with
      | None ->
        (* store torn down mid-protocol: fall back to the flat file *)
        st.phase <- P_write_disk { path; bytes; sim };
        Simos.Program.Continue st
      | Some store ->
        let delay =
          jitter ctx (store_put store ~node:ctx.node_id ~path ~bytes ~upid ~program ~sim ~base)
        in
        st.phase <- P_store_commit { lineage = Upid.lineage upid };
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. delay)))
    | P_store_commit { lineage } ->
      finish_write lineage;
      stage_hook ctx `Post Faults.Write;
      Simos.Program.Continue (to_barrier st 4 P_refill)
    | P_refill ->
      (* stage 6: re-inject drained socket data and pty buffers, restore
         the original F_SETOWN owners *)
      Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Refill;
      trace_phase ctx "refill" [];
      stage_hook ctx `Pre Faults.Refill;
      let ps = my_pstate ctx in
      List.iter
        (fun d ->
          (match desc_socket ctx d.d_fd with
          | Some s ->
            if d.d_entry.Conn_table.drained <> "" && not !Faults.bug_drop_refill then
              Simnet.Fabric.inject_recv s d.d_entry.Conn_table.drained
          | None -> ());
          ctx.set_fd_owner d.d_fd d.d_entry.Conn_table.saved_owner)
        st.drains;
      let proc = my_proc ctx in
      Hashtbl.iter
        (fun pty_key (to_slave, to_master) ->
          Hashtbl.iter
            (fun _ (desc : Simos.Fdesc.t) ->
              match desc.Simos.Fdesc.kind with
              | Simos.Fdesc.Pty_m p when Simos.Pty.id p = pty_key ->
                Simos.Pty.refill p ~to_slave ~to_master
              | _ -> ())
            proc.Simos.Kernel.fdtable)
        ps.Runtime.pty_drains;
      st.phase <- P_refill_done;
      (* retransmission cost of sending drained data back (about one RTT) *)
      Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 3e-4))
    | P_refill_done ->
      stage_hook ctx `Post Faults.Refill;
      Simos.Program.Continue (to_barrier st 5 P_resume)
    | P_resume ->
      (* stage 7: resume user threads and return to normal execution *)
      Faults.notify ~node:ctx.node_id ~pid:ctx.pid Faults.Resume;
      trace_phase ctx "resume" [];
      stage_hook ctx `Pre Faults.Resume;
      let ps = my_pstate ctx in
      Hashtbl.reset ps.Runtime.pty_drains;
      st.drains <- [];
      let proc = my_proc ctx in
      Simos.Kernel.resume_user_threads (my_kernel ctx) proc;
      (match proc.Simos.Kernel.cmdline with
      | prog :: _ -> Dmtcpaware.run_post_ckpt ~prog
      | [] -> ());
      stage_hook ctx `Post Faults.Resume;
      st.phase <- P_idle;
      Simos.Program.Continue st

  (* stage 4 inner loop: push flush tokens out, then receive until each
     socket's stash ends with the peer's token *)
  and drain_work (ctx : Simos.Program.ctx) st =
    List.iter
      (fun d ->
        if not d.d_done then begin
          (* finish sending our flush token *)
          if d.d_token_sent < token_len then begin
            let rest = String.sub token d.d_token_sent (token_len - d.d_token_sent) in
            match ctx.write_fd d.d_fd rest with
            | Ok n -> d.d_token_sent <- d.d_token_sent + n
            | Error _ -> d.d_token_sent <- token_len
          end;
          (* drain incoming data until the peer's token appears *)
          let reading = ref true in
          while !reading do
            match ctx.read_fd d.d_fd ~max:65536 with
            | `Data data ->
              d.d_stash <- d.d_stash ^ data;
              if ends_with_token d.d_stash then begin
                d.d_entry.Conn_table.drained <-
                  String.sub d.d_stash 0 (String.length d.d_stash - token_len);
                d.d_done <- true;
                reading := false
              end
            | `Eof ->
              (* peer closed: whatever we got is the drained data, and
                 the restored stream must end in EOF right after it *)
              d.d_entry.Conn_table.drained <- d.d_stash;
              d.d_entry.Conn_table.eof <- true;
              d.d_done <- true;
              reading := false
            | `Would_block | `Err _ -> reading := false
          done
        end)
      st.drains;
    if List.for_all (fun d -> d.d_done) st.drains then begin
      drain_finished ctx st;
      Simos.Program.Continue (to_barrier st 3 P_write)
    end
    else begin
      let pending = List.filter (fun d -> not d.d_done) st.drains in
      Simos.Program.Block (st, Simos.Program.Readable_any (List.map (fun d -> d.d_fd) pending))
    end

  (* pty draining, peer handshakes, and the connection-table flush at the
     end of stage 4 *)
  and drain_finished (ctx : Simos.Program.ctx) st =
    let drained_bytes =
      List.fold_left
        (fun acc d -> acc + String.length d.d_entry.Conn_table.drained)
        0 st.drains
    in
    if drained_bytes > 0 then Trace.Metrics.add m_drained (float_of_int drained_bytes);
    if Trace.on () then
      Trace.counter ~node:ctx.Simos.Program.node_id ~pid:ctx.Simos.Program.pid ~cat:"dmtcp"
        ~name:"mgr/drained-bytes" ~time:(ctx.now ())
        (float_of_int drained_bytes);
    let ps = my_pstate ctx in
    let proc = my_proc ctx in
    (* drain ptys we hold the master side of *)
    Hashtbl.iter
      (fun _ (desc : Simos.Fdesc.t) ->
        match desc.Simos.Fdesc.kind with
        | Simos.Fdesc.Pty_m p ->
          let key = Simos.Pty.id p in
          if not (Hashtbl.mem ps.Runtime.pty_drains key) then begin
            let to_slave, to_master = Simos.Pty.drain p in
            Hashtbl.replace ps.Runtime.pty_drains key (to_slave, to_master)
          end
        | _ -> ())
      proc.Simos.Kernel.fdtable;
    (* peer handshake: both ends agree on the connector's globally unique
       ID (paper §4.3 step 4 / §4.4 step 2) *)
    List.iter
      (fun (fd, (entry : Conn_table.entry)) ->
        match desc_socket ctx fd with
        | Some s when entry.Conn_table.role = Conn_table.Acceptor -> (
          match Runtime.peer_entry (Runtime.active ()) s with
          | Some (_, peer) -> entry.Conn_table.conn_id <- peer.Conn_table.conn_id
          | None -> ())
        | _ -> ())
      (Conn_table.entries ps.Runtime.conns);
    Runtime.write_conn_table (Runtime.active ()) (my_kernel ctx) proc;
    stage_hook ctx `Post Faults.Drain

  let step ctx st =
    try step ctx st
    with e ->
      ctx.log (Printf.sprintf "dmtcp:mgr crashed: %s" (Printexc.to_string e));
      Simos.Program.Exit 70
end

let program = (module P : Simos.Program.S)
