(** Human-readable rendering of checkpoint images — the paper's use case
    5, "checkpointed image as the ultimate bug report": everything a
    developer needs to understand a frozen process without the machine it
    ran on. *)

(** Describe one per-process image: identity (upid/vpid/program), every
    file descriptor with its restore plan (path+offset, connection id and
    drained bytes, pty and its modes), the memory layout with per-class
    page counts and projected compressed size, thread program states and
    their wait conditions, and the signal table.

    An incremental delta image's body only decodes against its base
    chain; [lookup] supplies base images by catalog name so the
    description can peek through the delta.  Without it (or when a base
    is gone) the thread/memory sections are replaced by a note. *)
val describe : ?lookup:(string -> Ckpt_image.t option) -> Ckpt_image.t -> string

(** Describe a whole checkpoint (a restart script's worth of images),
    reading image files from the cluster's filesystems and falling back
    to the block store; delta chains are resolved the same way. *)
val describe_checkpoint : Runtime.t -> Restart_script.t -> string
