let bf = Printf.bprintf

let describe_fd buf (fd, desc_key, info) =
  match info with
  | Ckpt_image.FFile { path; offset } ->
    bf buf "  fd %-3d file    %s @%d (desc %d)\n" fd path offset desc_key
  | Ckpt_image.FSock { state; kind; role; conn_id; drained; _ } ->
    let state_s =
      match state with
      | Ckpt_image.S_established -> "established"
      | Ckpt_image.S_listening { port; unix_path; _ } -> (
        match port, unix_path with
        | Some p, _ -> Printf.sprintf "listening :%d" p
        | _, Some path -> Printf.sprintf "listening %s" path
        | None, None -> "listening")
      | Ckpt_image.S_other -> "unconnected"
    in
    let kind_s =
      match kind with
      | Conn_table.Tcp -> "tcp"
      | Conn_table.Unixsock -> "unix"
      | Conn_table.Pair -> "pair"
    in
    let role_s =
      match role with
      | Conn_table.Connector -> "connector"
      | Conn_table.Acceptor -> "acceptor"
      | Conn_table.Pair_a -> "pair-a"
      | Conn_table.Pair_b -> "pair-b"
    in
    bf buf "  fd %-3d socket  %s %s %s id=%s drained=%dB (desc %d)\n" fd kind_s state_s role_s
      (Conn_id.to_key conn_id) (String.length drained) desc_key
  | Ckpt_image.FPty { master; pty_key } ->
    bf buf "  fd %-3d pty-%s   key=%d (desc %d)\n" fd (if master then "m" else "s") pty_key desc_key

let page_census space =
  let zero = ref 0 and mat = ref 0 in
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (r : Mem.Region.t) ->
      Array.iter
        (fun page ->
          match page with
          | Mem.Page.Zero -> incr zero
          | Mem.Page.Materialized _ -> incr mat
          | Mem.Page.Synthetic { cls; _ } ->
            Hashtbl.replace by_class cls
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_class cls)))
        r.Mem.Region.pages)
    (Mem.Address_space.regions space);
  (!zero, !mat, Hashtbl.fold (fun c n acc -> (c, n) :: acc) by_class [] |> List.sort compare)

let describe ?lookup (img : Ckpt_image.t) =
  let buf = Buffer.create 1024 in
  bf buf "=== checkpoint image: %s ===\n" (Ckpt_image.filename img);
  bf buf "program: %s   upid: %s   vpid: %d%s\n" img.Ckpt_image.program
    (Upid.to_string img.Ckpt_image.upid)
    img.Ckpt_image.vpid
    (if img.Ckpt_image.parent_vpid <> 0 then Printf.sprintf "   parent vpid: %d" img.Ckpt_image.parent_vpid
     else "");
  let sizes = img.Ckpt_image.sizes in
  bf buf "image: %s on disk (%s resident, %s untouched), scheme %s\n"
    (Util.Units.pp_mb sizes.Mtcp.Image.compressed)
    (Util.Units.pp_mb sizes.Mtcp.Image.uncompressed)
    (Util.Units.pp_mb sizes.Mtcp.Image.zero_bytes)
    (Compress.Algo.name img.Ckpt_image.algo);
  (match img.Ckpt_image.delta_base with
  | Some base ->
    (* chain depth = hops to the nearest full image, resolved through
       [lookup]; a broken chain reports how far it got *)
    let rec depth n (i : Ckpt_image.t) =
      match i.Ckpt_image.delta_base with
      | None -> n
      | Some b -> (
        match Option.join (Option.map (fun find -> find b) lookup) with
        | Some bimg when n < 64 -> depth (n + 1) bimg
        | _ -> n + 1)
    in
    bf buf "incremental delta against: %s (chain depth %d)\n" base (depth 0 img)
  | None -> ());
  bf buf "file descriptors (%d):\n" (List.length img.Ckpt_image.fds);
  List.iter (describe_fd buf) img.Ckpt_image.fds;
  List.iter
    (fun (p : Ckpt_image.pty_record) ->
      bf buf "  pty %d (%s): icanon=%b echo=%b isig=%b %dbaud, queued %dB/%dB\n"
        p.Ckpt_image.pty_key p.Ckpt_image.pr_name p.Ckpt_image.icanon p.Ckpt_image.echo
        p.Ckpt_image.isig p.Ckpt_image.baud
        (String.length p.Ckpt_image.drained_to_slave)
        (String.length p.Ckpt_image.drained_to_master))
    img.Ckpt_image.ptys;
  (* a delta image's body only decodes against its base chain; peek
     through [lookup] when the caller can supply bases by name *)
  let mtcp =
    let rec resolve (i : Ckpt_image.t) =
      match i.Ckpt_image.delta_base with
      | None -> Ckpt_image.mtcp i
      | Some base -> (
        match lookup with
        | None -> raise Not_found
        | Some find -> (
          match find base with
          | None -> raise Not_found
          | Some b -> Ckpt_image.delta_mtcp i ~base:(resolve b)))
    in
    match resolve img with m -> Some m | exception Not_found -> None
  in
  match mtcp with
  | None ->
    bf buf "(delta body: base image unavailable; threads/memory omitted)\n";
    Buffer.contents buf
  | Some mtcp ->
  bf buf "threads (%d):\n" (List.length mtcp.Mtcp.Image.threads);
  List.iter
    (fun (ti : Mtcp.Image.thread_image) ->
      let wait_s =
        match ti.Mtcp.Image.ti_wait with
        | None -> "runnable"
        | Some (Simos.Program.Readable fd) -> Printf.sprintf "blocked read(fd %d)" fd
        | Some (Simos.Program.Readable_any fds) ->
          Printf.sprintf "blocked read(any of %d fds)" (List.length fds)
        | Some (Simos.Program.Writable fd) -> Printf.sprintf "blocked write(fd %d)" fd
        | Some (Simos.Program.Sleep_until t) -> Printf.sprintf "sleeping until t=%.3f" t
        | Some Simos.Program.Child -> "waiting for a child"
        | Some Simos.Program.Stopped -> "stopped"
      in
      bf buf "  %s: %s\n" (Simos.Program.name_of ti.Mtcp.Image.ti_inst) wait_s)
    mtcp.Mtcp.Image.threads;
  if mtcp.Mtcp.Image.sigtable <> [] then begin
    bf buf "signal table:\n";
    List.iter
      (fun (s, a) ->
        bf buf "  signal %-2d %s\n" s
          (match a with
          | Simos.Kernel.Sig_default -> "default"
          | Simos.Kernel.Sig_ignore -> "ignore"
          | Simos.Kernel.Sig_handler h -> "handler " ^ h))
      mtcp.Mtcp.Image.sigtable
  end;
  let regions = Mem.Address_space.regions mtcp.Mtcp.Image.space in
  let zero, mat, by_class = page_census mtcp.Mtcp.Image.space in
  bf buf "memory: %d regions, %s; pages: %d zero, %d materialized%s\n" (List.length regions)
    (Util.Units.pp_mb (Mem.Address_space.total_bytes mtcp.Mtcp.Image.space))
    zero mat
    (String.concat ""
       (List.map (fun (c, n) -> Printf.sprintf ", %d %s" n (Mem.Entropy.name c)) by_class));
  Buffer.contents buf

let describe_checkpoint rt (script : Restart_script.t) =
  let buf = Buffer.create 4096 in
  bf buf "checkpoint set: %d host(s), coordinator on node %d\n"
    (List.length script.Restart_script.entries)
    script.Restart_script.coord_host;
  (* image bytes by path: any node's flat file, then the block store
     (no storage time booked — inspection only) *)
  let load path =
    let cl = Runtime.cluster rt in
    let found = ref None in
    for node = 0 to Simos.Cluster.nodes cl - 1 do
      if !found = None then
        match Simos.Vfs.lookup (Simos.Kernel.vfs (Runtime.kernel_of rt ~node)) path with
        | Some f -> found := Some (Simos.Vfs.read_all f)
        | None -> ()
    done;
    match !found with
    | Some _ as r -> r
    | None ->
      Option.join
        (Option.map (fun s -> Store.peek s ~name:(Filename.basename path)) (Runtime.store rt))
  in
  List.iter
    (fun (host, images) ->
      List.iter
        (fun path ->
          (* delta bases live next to the image under their own names *)
          let lookup name =
            match load (Filename.concat (Filename.dirname path) name) with
            | Some bytes -> (
              match Ckpt_image.decode bytes with
              | img -> Some img
              | exception Ckpt_image.Corrupt_image _ -> None)
            | None -> None
          in
          match load path with
          | Some bytes -> Buffer.add_string buf (describe ~lookup (Ckpt_image.decode bytes))
          | None -> bf buf "(missing image %s on node %d)\n" path host)
        images)
    script.Restart_script.entries;
  (* per-lineage delta-chain health, when checkpoints live in the store:
     the newest manifest's chain depth is what the next restart pays *)
  (match Runtime.store rt with
  | None -> ()
  | Some store ->
    let newest = Hashtbl.create 8 in
    List.iter
      (fun (m : Store.manifest) ->
        if not (Hashtbl.mem newest m.Store.m_lineage) then
          Hashtbl.add newest m.Store.m_lineage m)
      (Store.manifests store);
    let lineages = Hashtbl.fold (fun l m acc -> (l, m) :: acc) newest [] |> List.sort compare in
    if lineages <> [] then begin
      bf buf "store lineages (%d):\n" (List.length lineages);
      List.iter
        (fun (lineage, (m : Store.manifest)) ->
          bf buf "  %s: newest %s gen %d, chain depth %d%s\n" lineage m.Store.m_name
            m.Store.m_generation
            (Store.chain_depth store ~name:m.Store.m_name)
            (if m.Store.m_compacted then " (compacted)" else ""))
        lineages
    end);
  Buffer.contents buf
