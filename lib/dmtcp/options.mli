(** DMTCP configuration, carried in process environments the way the real
    package uses [DMTCP_*] environment variables. *)

type t = {
  coord_host : int;            (** node running the coordinator *)
  coord_port : int;            (** default 7779, as in DMTCP *)
  ckpt_dir : string;           (** directory for checkpoint images *)
  algo : Compress.Algo.t;      (** [Deflate] = gzip enabled (the default) *)
  forked : bool;               (** forked checkpointing *)
  incremental : bool;
      (** write only pages dirtied since the previous checkpoint *)
  interval : float option;     (** automatic checkpoint interval, seconds *)
  sync_after : bool;           (** issue sync(2) after writing images *)
  store : bool;
      (** write checkpoints to the replicated content-addressed store
          instead of flat per-node files *)
  store_replicas : int;        (** copies of each new block, distinct nodes *)
  store_quorum : int;
      (** replicas a write waits for; [0] = majority of [store_replicas] *)
  keep_generations : int;
      (** checkpoint generations retained per process lineage, by the
          store GC and by the legacy flat-file reaper alike; [0] keeps
          everything forever *)
  delta_chain : int;
      (** incremental mode: maximum delta-chain depth before the next
          checkpoint is written as a full image again (bounds restart's
          chain-resolution work); [0] disables deltas — incremental
          size accounting with full image payloads *)
  lazy_restart : bool;
      (** demand-paged lazy restore ([DMTCP_LAZY_RESTART]): restart
          restores only the hot set (stacks, text, shared segments)
          before resuming threads; cold pages fault in on first touch
          and a background prefetcher drains the remainder, so restart
          blackout is O(hot set) instead of O(image) *)
  restart_parallel : int;
      (** cap on restart's decompress parallelism
          ([DMTCP_RESTART_PARALLEL]); [0] uses all of the node's cores *)
  compact_depth : int;
      (** background delta-chain compaction ([DMTCP_COMPACT_DEPTH]):
          chains deeper than this are squashed into consolidated full
          images at the same catalog name, bounding restart chain depth
          independently of [delta_chain]; [0] disables the compactor *)
  plugins : string list;
      (** enabled plugin set ([DMTCP_PLUGINS], comma-separated plugin
          names; ["none"] or empty disables all plugins).  Cached once
          per runtime install, like coordinator options are cached at
          coordinator boot.  Parsed strictly: a malformed name raises
          [Invalid_argument] rather than silently dropping the plugin. *)
  blacklist_ports : int list;
      (** blacklist-ports plugin knob ([DMTCP_PLUGIN_BLACKLIST_PORTS]):
          service ports (DNS 53, LDAP 389/636 by default) whose
          connections are skipped at drain and recreated as dead
          sockets on restart.  Bad ports raise [Invalid_argument]. *)
  ext_shm_prefix : string;
      (** ext-shm plugin knob ([DMTCP_PLUGIN_EXT_SHM_PREFIX]): shared
          mappings backed by paths under this prefix belong to an
          external service (NSCD-style) and are zeroed in the written
          image *)
  mpi_proxy_prefix : string;
      (** mpi-proxy plugin knob ([DMTCP_PLUGIN_MPI_PROXY_PREFIX]): unix
          sockets whose path starts with this prefix connect a rank to
          its node's MPI proxy daemon ({!Proxy.Daemon}).  The plugin
          skips them at drain, captures them as immediately-dead
          sockets, and at restart relaunches the node's proxy (from the
          rank's [MPI_PROXY] environment marker) before the rank
          resumes and reconnects. *)
}

val default : t

(** Render as [DMTCP_*] environment entries. *)
val to_env : t -> (string * string) list

(** Parse from a process environment (missing keys = defaults). *)
val of_env : (string * string) list -> t

(** Build from a [getenv]-style lookup (a program's view of its own
    environment). *)
val of_getenv : (string -> string option) -> t

(** Environment marker that makes {!Simos.Kernel} treat a process as
    hijacked ([LD_PRELOAD=dmtcphijack.so] in the real system). *)
val hijack_key : string

(** Strict [DMTCP_PLUGINS] parser: comma-separated plugin names, [""]
    or ["none"] for the empty set.  Raises [Invalid_argument] on a
    malformed name (anything outside [a-z0-9-]). *)
val parse_plugins : string -> string list

(** Strict [DMTCP_PLUGIN_BLACKLIST_PORTS] parser: comma-separated
    ports; raises [Invalid_argument] on a non-port token. *)
val parse_ports : string -> int list
