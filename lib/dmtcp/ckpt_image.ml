type fd_info =
  | FFile of { path : string; offset : int }
  | FSock of {
      state : sock_state;
      kind : Conn_table.sock_kind;
      role : Conn_table.role;
      conn_id : Conn_id.t;
      drained : string;
      eof : bool;  (** peer closed pre-checkpoint: EOF follows [drained] *)
    }
  | FPty of { master : bool; pty_key : int }

and sock_state =
  | S_established
  | S_listening of { port : int option; unix_path : string option; backlog : int }
  | S_other

type pty_record = {
  pty_key : int;
  pr_name : string;
  icanon : bool;
  echo : bool;
  isig : bool;
  baud : int;
  drained_to_slave : string;
  drained_to_master : string;
}

type t = {
  upid : Upid.t;
  vpid : int;
  parent_vpid : int;
  program : string;
  fds : (int * int * fd_info) list;
  ptys : pty_record list;
  algo : Compress.Algo.t;
  sizes : Mtcp.Image.sizes;
  delta_base : string option;
  mtcp_blob : string;
}

let filename ?seq t =
  let base = Filename.basename t.program in
  match seq with
  | None -> Printf.sprintf "ckpt_%s_%s.dmtcp" base (Upid.to_string t.upid)
  | Some k -> Printf.sprintf "ckpt_%s_%s.d%d.dmtcp" base (Upid.to_string t.upid) k

module W = Util.Codec.Writer
module R = Util.Codec.Reader

let encode_sock_state w = function
  | S_established -> W.u8 w 0
  | S_listening { port; unix_path; backlog } ->
    W.u8 w 1;
    W.option W.uvarint w port;
    W.option W.string w unix_path;
    W.uvarint w backlog
  | S_other -> W.u8 w 2

let decode_sock_state r =
  match R.u8 r with
  | 0 -> S_established
  | 1 ->
    let port = R.option R.uvarint r in
    let unix_path = R.option R.string r in
    let backlog = R.uvarint r in
    S_listening { port; unix_path; backlog }
  | 2 -> S_other
  | n -> raise (R.Corrupt (Printf.sprintf "bad sock state %d" n))

let role_tag = function
  | Conn_table.Connector -> 0
  | Conn_table.Acceptor -> 1
  | Conn_table.Pair_a -> 2
  | Conn_table.Pair_b -> 3

let role_of_tag = function
  | 0 -> Conn_table.Connector
  | 1 -> Conn_table.Acceptor
  | 2 -> Conn_table.Pair_a
  | 3 -> Conn_table.Pair_b
  | n -> raise (R.Corrupt (Printf.sprintf "bad role %d" n))

let kind_tag = function Conn_table.Tcp -> 0 | Conn_table.Unixsock -> 1 | Conn_table.Pair -> 2

let kind_of_tag = function
  | 0 -> Conn_table.Tcp
  | 1 -> Conn_table.Unixsock
  | 2 -> Conn_table.Pair
  | n -> raise (R.Corrupt (Printf.sprintf "bad kind %d" n))

let encode_fd_info w = function
  | FFile { path; offset } ->
    W.u8 w 0;
    W.string w path;
    W.uvarint w offset
  | FSock { state; kind; role; conn_id; drained; eof } ->
    W.u8 w 1;
    encode_sock_state w state;
    W.u8 w (kind_tag kind);
    W.u8 w (role_tag role);
    Conn_id.encode w conn_id;
    W.string w drained;
    W.bool w eof
  | FPty { master; pty_key } ->
    W.u8 w 2;
    W.bool w master;
    W.uvarint w pty_key

let decode_fd_info r =
  match R.u8 r with
  | 0 ->
    let path = R.string r in
    let offset = R.uvarint r in
    FFile { path; offset }
  | 1 ->
    let state = decode_sock_state r in
    let kind = kind_of_tag (R.u8 r) in
    let role = role_of_tag (R.u8 r) in
    let conn_id = Conn_id.decode r in
    let drained = R.string r in
    let eof = R.bool r in
    FSock { state; kind; role; conn_id; drained; eof }
  | 2 ->
    let master = R.bool r in
    let pty_key = R.uvarint r in
    FPty { master; pty_key }
  | n -> raise (R.Corrupt (Printf.sprintf "bad fd info %d" n))

let encode_pty w p =
  W.uvarint w p.pty_key;
  W.string w p.pr_name;
  W.bool w p.icanon;
  W.bool w p.echo;
  W.bool w p.isig;
  W.uvarint w p.baud;
  W.string w p.drained_to_slave;
  W.string w p.drained_to_master

let decode_pty r =
  let pty_key = R.uvarint r in
  let pr_name = R.string r in
  let icanon = R.bool r in
  let echo = R.bool r in
  let isig = R.bool r in
  let baud = R.uvarint r in
  let drained_to_slave = R.string r in
  let drained_to_master = R.string r in
  { pty_key; pr_name; icanon; echo; isig; baud; drained_to_slave; drained_to_master }

let magic = "DMTCP_CKPT_V2"

exception Corrupt_image of string

(* V2 layout: magic, then two length-prefixed sections (metadata, mtcp
   blob), each followed by a CRC-32 trailer over the section bytes.  A
   truncated or bit-flipped image fails the CRC (or the bounds checks of
   the codec) and surfaces as [Corrupt_image] rather than garbage
   decode results at restart. *)

let crc_of s = Int32.to_int (Util.Crc32.digest s) land 0xffffffff

let write_section w payload =
  W.string w payload;
  W.u32 w (crc_of payload)

let read_section r what =
  let payload = R.string r in
  let crc = R.u32 r in
  if crc <> crc_of payload then
    raise (Corrupt_image (Printf.sprintf "%s section CRC mismatch" what));
  payload

let encode t =
  let meta = W.create ~capacity:1024 () in
  Upid.encode meta t.upid;
  W.uvarint meta t.vpid;
  W.uvarint meta t.parent_vpid;
  W.string meta t.program;
  W.list
    (fun w (fd, key, info) ->
      W.uvarint w fd;
      W.uvarint w key;
      encode_fd_info w info)
    meta t.fds;
  W.list encode_pty meta t.ptys;
  Compress.Algo.encode meta t.algo;
  W.uvarint meta t.sizes.Mtcp.Image.uncompressed;
  W.uvarint meta t.sizes.Mtcp.Image.compressed;
  W.uvarint meta t.sizes.Mtcp.Image.zero_bytes;
  W.option W.string meta t.delta_base;
  let w = W.create ~capacity:(String.length t.mtcp_blob + 1024) () in
  W.raw w magic;
  write_section w (W.contents meta);
  write_section w t.mtcp_blob;
  W.contents w

let decode s =
  try
    let r = R.of_string s in
    let m = R.raw r (String.length magic) in
    if m <> magic then raise (Corrupt_image "bad DMTCP image magic");
    let meta = read_section r "metadata" in
    let mtcp_blob = read_section r "mtcp" in
    R.expect_end r;
    let r = R.of_string meta in
    let upid = Upid.decode r in
    let vpid = R.uvarint r in
    let parent_vpid = R.uvarint r in
    let program = R.string r in
    let fds =
      R.list
        (fun r ->
          let fd = R.uvarint r in
          let key = R.uvarint r in
          let info = decode_fd_info r in
          (fd, key, info))
        r
    in
    let ptys = R.list decode_pty r in
    let algo = Compress.Algo.decode r in
    let uncompressed = R.uvarint r in
    let compressed = R.uvarint r in
    let zero_bytes = R.uvarint r in
    let delta_base = R.option R.string r in
    R.expect_end r;
    {
      upid;
      vpid;
      parent_vpid;
      program;
      fds;
      ptys;
      algo;
      sizes = { Mtcp.Image.uncompressed; compressed; zero_bytes };
      delta_base;
      mtcp_blob;
    }
  with
  | Corrupt_image _ as e -> raise e
  | R.Corrupt msg -> raise (Corrupt_image msg)
  | Invalid_argument msg | Failure msg -> raise (Corrupt_image msg)

(* Chunk an encoded image at its DMZ2 frame boundaries for the
   content-addressed store: [magic + metadata section + blob length
   prefix] as one chunk, each frame of the mtcp blob as its own chunk,
   and the blob CRC trailer last.  Concatenating the chunks reproduces
   [bytes] exactly.  The metadata prefix carries the upid and so never
   dedups across generations, but it is tiny; the blob frames cover
   fixed 256 KiB windows of process memory, so generations that dirty
   few pages share almost every frame with their predecessor.  Anything
   unparseable (or a non-DMZ2 blob) chunks as a single unit. *)
let chunk bytes =
  let total = String.length bytes in
  let whole = [ bytes ] in
  try
    let r = R.of_string bytes in
    let pos () = total - R.remaining r in
    let m = R.raw r (String.length magic) in
    if m <> magic then whole
    else begin
      let (_ : string) = R.string r in (* metadata payload *)
      let (_ : int) = R.u32 r in (* metadata CRC *)
      let blob = R.string r in
      let blob_end = pos () in
      let blob_start = blob_end - String.length blob in
      match Compress.Container.frame_bounds blob with
      | None -> whole
      | Some bounds ->
        let prefix = String.sub bytes 0 blob_start in
        let frames =
          List.map (fun (off, len) -> String.sub bytes (blob_start + off) len) bounds
        in
        let suffix = String.sub bytes blob_end (total - blob_end) in
        (prefix :: frames) @ [ suffix ]
    end
  with R.Corrupt _ -> whole

(* The mtcp blob is itself a compressed container; bit-flips inside it
   surface as [Bad_container] (with the damaged block's index for DMZ2
   frames) — convert so restart's corrupt-image path handles both. *)
let mtcp t =
  try Mtcp.Image.decode t.mtcp_blob with
  | Compress.Container.Bad_container msg -> raise (Corrupt_image ("mtcp body: " ^ msg))
  | Util.Codec.Reader.Corrupt msg -> raise (Corrupt_image ("mtcp body: " ^ msg))

(* Resolve a delta image against its (already reconstructed) base MTCP
   image; same damage conversion as [mtcp]. *)
let delta_mtcp t ~base =
  try Mtcp.Image.apply_delta ~base t.mtcp_blob with
  | Compress.Container.Bad_container msg -> raise (Corrupt_image ("mtcp delta: " ^ msg))
  | Util.Codec.Reader.Corrupt msg -> raise (Corrupt_image ("mtcp delta: " ^ msg))

let sim_file_size t = t.sizes.Mtcp.Image.compressed
