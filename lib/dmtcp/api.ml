let registered = ref false

let register_programs () =
  if not !registered then begin
    registered := true;
    Simos.Program.register Coordinator.program;
    Simos.Program.register Manager.program;
    Simos.Program.register Launcher.checkpoint_program;
    Simos.Program.register Launcher.command_program;
    Simos.Program.register Restart.program
  end

let install cl ?options () =
  register_programs ();
  Runtime.install cl ?options ()

(* [?options] lets a caller run several independent DMTCP computations on
   one cluster (the batch scheduler gives every job its own coordinator
   host/port): the launcher, command and restart helpers all find their
   coordinator through the process environment. *)
let launch ?options rt ~node ~prog ~argv =
  let opts = Option.value ~default:(Runtime.options rt) options in
  let k = Runtime.kernel_of rt ~node in
  Simos.Kernel.spawn k ~prog:Launcher.checkpoint_name ~argv:(prog :: argv)
    ~env:(Options.to_env opts) ()

let checkpoint ?options rt =
  let opts = Option.value ~default:(Runtime.options rt) options in
  let k = Runtime.kernel_of rt ~node:opts.Options.coord_host in
  ignore
    (Simos.Kernel.spawn k ~prog:Launcher.command_name ~argv:[ "--checkpoint" ]
       ~env:(Options.to_env opts) ())

let run_slices rt ~timeout ~done_ =
  let cl = Runtime.cluster rt in
  let eng = Simos.Cluster.engine cl in
  let deadline = Simos.Cluster.now cl +. timeout in
  let rec go () =
    if done_ () then ()
    else if Simos.Cluster.now cl >= deadline then failwith "Dmtcp.Api: timed out"
    else begin
      Sim.Engine.run ~until:(Simos.Cluster.now cl +. 0.05) eng;
      go ()
    end
  in
  go ()

(* the coordinator domain a given options record addresses *)
let port_of ?options rt =
  (Option.value ~default:(Runtime.options rt) options).Options.coord_port

let await_checkpoint ?(timeout = 600.) ?(since = 0.) ?options rt =
  let port = port_of ?options rt in
  run_slices rt ~timeout ~done_:(fun () ->
      match Runtime.last_completed_ckpt ~port rt with
      | Some info ->
        info.Runtime.started >= since
        && info.Runtime.finished > info.Runtime.started
        && info.Runtime.nprocs > 0
      | None -> false)

let checkpoint_now ?timeout ?options rt =
  let since = Simos.Cluster.now (Runtime.cluster rt) in
  checkpoint ?options rt;
  await_checkpoint ?timeout ~since ?options rt

let completed ?options rt =
  match Runtime.last_completed_ckpt ~port:(port_of ?options rt) rt with
  | Some info -> info
  | None -> failwith "Dmtcp.Api: no completed checkpoint yet"

let last_checkpoint_seconds rt =
  let info = completed rt in
  info.Runtime.finished -. info.Runtime.started

let last_checkpoint_bytes rt =
  let info = completed rt in
  (info.Runtime.total_compressed, info.Runtime.total_uncompressed)

let restart_script ?options rt =
  let opts = Option.value ~default:(Runtime.options rt) options in
  let info = completed ?options rt in
  let by_host = Hashtbl.create 8 in
  List.iter
    (fun (node, path) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_host node) in
      Hashtbl.replace by_host node (path :: existing))
    info.Runtime.images;
  let script =
    {
      Restart_script.coord_host = opts.Options.coord_host;
      coord_port = opts.Options.coord_port;
      entries =
        Hashtbl.fold (fun h imgs acc -> (h, List.sort compare imgs) :: acc) by_host []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
    }
  in
  (* write the shell script next to the images, as the real tool does *)
  let k = Runtime.kernel_of rt ~node:opts.Options.coord_host in
  let f =
    Simos.Vfs.open_or_create (Simos.Kernel.vfs k)
      (opts.Options.ckpt_dir ^ "/dmtcp_restart_script.sh")
  in
  Simos.Vfs.truncate f;
  Simos.Vfs.append f (Restart_script.to_text script);
  script

let is_coordinator (proc : Simos.Kernel.process) =
  match proc.Simos.Kernel.cmdline with
  | p :: _ -> p = Coordinator.name
  | [] -> false

let kill_computation rt =
  let cl = Runtime.cluster rt in
  List.iter
    (fun (k, (proc : Simos.Kernel.process)) ->
      if proc.Simos.Kernel.hijacked || is_coordinator proc then begin
        Runtime.forget_process rt ~node:(Simos.Kernel.node_id k) ~pid:proc.Simos.Kernel.pid;
        Simos.Kernel.vanish_process k proc
      end)
    (Simos.Cluster.all_processes cl)

(* Node-scoped variant for multi-computation clusters: vanish every
   process on [nodes].  A batch scheduler owns nodes exclusively per
   job, so a job's node set bounds exactly its processes, its private
   coordinator, and any DMTCP helpers (dmtcp_command, in-flight
   dmtcp_restart) still attached to it — all of which must die with the
   job, or an aborted restart's zombies would repopulate the nodes after
   the scheduler has handed them to someone else. *)
let kill_nodes rt ~nodes =
  let cl = Runtime.cluster rt in
  List.iter
    (fun (k, (proc : Simos.Kernel.process)) ->
      if List.mem (Simos.Kernel.node_id k) nodes then begin
        Runtime.forget_process rt ~node:(Simos.Kernel.node_id k) ~pid:proc.Simos.Kernel.pid;
        Simos.Kernel.vanish_process k proc
      end)
    (Simos.Cluster.all_processes cl)

(* Images may live on hosts other than where they will be restored (the
   script may have been remapped for migration); stand in for scp/shared
   storage by copying the file bytes across vfs instances.  Under the
   replicated store there is nothing to copy: restart resolves the image
   through the catalog and pulls a replica itself. *)
let ensure_image_on rt ~host path =
  let cl = Runtime.cluster rt in
  let target_vfs = Simos.Kernel.vfs (Runtime.kernel_of rt ~node:host) in
  if Runtime.store rt = None && not (Simos.Vfs.exists target_vfs path) then begin
    let found = ref None in
    for node = 0 to Simos.Cluster.nodes cl - 1 do
      if !found = None then
        match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
        | Some f -> found := Some f
        | None -> ()
    done;
    match !found with
    | Some src ->
      let dst = Simos.Vfs.open_or_create target_vfs path in
      Simos.Vfs.truncate dst;
      Simos.Vfs.append dst (Simos.Vfs.read_all src);
      Simos.Vfs.set_sim_size dst (Simos.Vfs.sim_size src)
    | None -> ()
  end

(* Can every image of [script] still be produced somewhere — as a file on
   some node, or from the store with all blocks on surviving replicas?
   A delta image is only available when its whole base chain is too.
   Chaos recovery uses this to decide between restart and relaunch. *)
let script_images_available rt (script : Restart_script.t) =
  let cl = Runtime.cluster rt in
  let file_on_some_node path =
    let found = ref None in
    for node = 0 to Simos.Cluster.nodes cl - 1 do
      if !found = None then
        match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
        | Some f -> found := Some f
        | None -> ()
    done;
    !found
  in
  let rec available ~depth path =
    depth <= 64
    &&
    let name = Filename.basename path in
    let base_available = function
      | None -> true
      | Some base -> available ~depth:(depth + 1) (Filename.concat (Filename.dirname path) base)
    in
    match file_on_some_node path with
    | Some f -> (
      match Ckpt_image.decode (Simos.Vfs.read_all f) with
      | img -> base_available img.Ckpt_image.delta_base
      | exception Ckpt_image.Corrupt_image _ -> false)
    | None -> (
      match Runtime.store rt with
      | None -> false
      | Some store -> (
        Store.contains store ~name
        &&
        match Store.find store ~name with
        | Some m -> base_available m.Store.m_base
        | None -> false))
  in
  List.for_all
    (fun (_, images) -> List.for_all (fun path -> available ~depth:0 path) images)
    script.Restart_script.entries

let restart rt (script : Restart_script.t) =
  if script.Restart_script.entries = [] then
    failwith "Dmtcp.Api.restart: script has no images";
  let port = script.Restart_script.coord_port in
  Runtime.note_restart_start ~port rt;
  Runtime.bump_generation rt;
  Runtime.shm_reset ~port rt;
  let cl = Runtime.cluster rt in
  (* clear only this domain's stale advertisements: restart waves
     namespace their discovery keys by coordinator port, so another
     job's concurrent restart keeps its adverts *)
  Simnet.Discovery.remove_prefix (Simos.Cluster.discovery cl)
    ~prefix:(Printf.sprintf "%d/" port);
  (* both the host AND the port come from the script: per-job coordinators
     listen on distinct ports, and a restarted job must rejoin its own *)
  let opts =
    {
      (Runtime.options rt) with
      Options.coord_host = script.Restart_script.coord_host;
      coord_port = script.Restart_script.coord_port;
    }
  in
  let env = Options.to_env opts in
  (* a coordinator for the restarted computation (EADDRINUSE exits quietly
     if one is already running) *)
  let ck = Runtime.kernel_of rt ~node:script.Restart_script.coord_host in
  ignore (Simos.Kernel.spawn ck ~prog:Coordinator.name ~argv:[] ~env ());
  Runtime.set_restart_expected ~port rt (List.length script.Restart_script.entries);
  List.iter
    (fun (host, images) ->
      List.iter (fun path -> ensure_image_on rt ~host path) images;
      let k = Runtime.kernel_of rt ~node:host in
      ignore (Simos.Kernel.spawn k ~prog:Restart.name ~argv:images ~env ()))
    script.Restart_script.entries

let await_restart ?(timeout = 600.) ?options rt =
  let port = port_of ?options rt in
  run_slices rt ~timeout ~done_:(fun () ->
      let info = Runtime.restart_info ~port rt in
      info.Runtime.nprocs >= Runtime.restart_expected ~port rt
      && Runtime.restart_expected ~port rt > 0)

let last_restart_seconds ?options rt =
  let info = Runtime.restart_info ~port:(port_of ?options rt) rt in
  info.Runtime.finished -. info.Runtime.started
