(* Background delta-chain compaction.

   Incremental checkpointing bounds chain depth at *write* time through
   DMTCP_DELTA_CHAIN, but preempted or idle lineages can still sit
   behind long chains: every restart replays the whole chain and the GC
   keep-set must close over it.  The compactor squashes a deep chain
   from the store side: it resolves the delta to its full MTCP image
   (the same chain walk restart performs), re-encodes it as a
   self-contained full image, and re-puts it at the SAME catalog name —
   so every reference to the image (restart scripts, child deltas using
   it as a base, pins) keeps working, now at chain depth 0.  PR 6's
   delta codec guarantees the reconstruction encodes byte-identically
   to the full image a non-incremental checkpoint would have written,
   so the re-put dedups against any full frames already stored.

   Write time for the consolidated image is booked on the storage
   targets like any other put — background work still consumes disk
   bandwidth honestly. *)

let m_compactions = Trace.Metrics.counter "store.compactions"

(* Manifests whose chain is deeper than [depth], newest first.  Only
   deltas qualify; compacting one shortens every chain that resolves
   through it. *)
let candidates store ~depth =
  List.filter
    (fun (m : Store.manifest) ->
      m.Store.m_base <> None && Store.chain_depth store ~name:m.Store.m_name > depth)
    (Store.manifests store)

exception Unresolvable of string

(* The restart chain walk, against the store catalog only (no storage
   time booked: the compactor reads through [peek]; its cost model is
   the consolidated write, which dominates). *)
let resolve_mtcp store (img : Ckpt_image.t) =
  let rec go depth (img : Ckpt_image.t) =
    if depth > 64 then raise (Unresolvable "chain too deep");
    match img.Ckpt_image.delta_base with
    | None -> Ckpt_image.mtcp img
    | Some base -> (
      match Store.peek store ~name:base with
      | None -> raise (Unresolvable base)
      | Some bytes ->
        let bimg = Ckpt_image.decode bytes in
        Ckpt_image.delta_mtcp img ~base:(go (depth + 1) bimg))
  in
  go 0 img

(* Squash one manifest into a consolidated full image at the same
   catalog name.  Returns the booked write delay, or [None] when the
   chain cannot be resolved (missing blocks, damage) — compaction is an
   optimization and must never turn a degraded-but-restartable chain
   into a failure, so every error path leaves the catalog untouched. *)
let compact_one store ~node (m : Store.manifest) =
  match Store.peek store ~name:m.Store.m_name with
  | None -> None
  | Some bytes -> (
    match
      let img = Ckpt_image.decode bytes in
      let mtcp = resolve_mtcp store img in
      let full =
        {
          img with
          Ckpt_image.delta_base = None;
          mtcp_blob = Mtcp.Image.encode ~algo:img.Ckpt_image.algo mtcp;
          sizes = Mtcp.Image.sizes img.Ckpt_image.algo mtcp;
        }
      in
      (full, Ckpt_image.encode full)
    with
    | exception _ -> None
    | full, enc ->
      let delay =
        Store.put store ~compacted:true ~node ~lineage:m.Store.m_lineage
          ~generation:m.Store.m_generation ~name:m.Store.m_name ~program:m.Store.m_program
          ~sim_bytes:full.Ckpt_image.sizes.Mtcp.Image.compressed
          ~chunks:(Ckpt_image.chunk enc)
      in
      Trace.Metrics.incr m_compactions;
      Some delay)

(* One compaction pass: squash up to [max] over-deep chains, then GC
   each touched lineage — with the chain cut, generations that were
   only alive as somebody's base become reclaimable (pins are respected
   by the GC as always). *)
let run ?(max = 1) store ~node ~depth =
  let rec go n acc = function
    | [] -> acc
    | _ when n = 0 -> acc
    | (m : Store.manifest) :: rest -> (
      match compact_one store ~node m with
      | None -> go n acc rest
      | Some _ ->
        ignore (Store.gc_lineage store ~lineage:m.Store.m_lineage);
        go (n - 1) (m.Store.m_name :: acc) rest)
  in
  List.rev (go max [] (candidates store ~depth))
