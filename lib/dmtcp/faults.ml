(* Stage-targeted fault-injection hooks for the checkpoint protocol.

   The manager announces entry into each checkpoint stage and arrival at
   each coordinator barrier through [notify].  The chaos layer installs
   an observer to kill victims at exact protocol points or to check
   stage invariants (e.g. "kernel buffers are empty when the image is
   written").  Observers must not tear the caller down synchronously —
   schedule destructive work at the current virtual time instead, so the
   in-progress manager step completes and the kernel's generation
   counters retire it cleanly. *)

type stage =
  | Suspend
  | Elect
  | Drain
  | Write
  | Refill
  | Resume
  | Barrier of int

let stage_name = function
  | Suspend -> "suspend"
  | Elect -> "elect"
  | Drain -> "drain"
  | Write -> "write"
  | Refill -> "refill"
  | Resume -> "resume"
  | Barrier k -> Printf.sprintf "barrier%d" k

(* Every kill point a victim can die at: the protocol stages plus each
   coordinator barrier. *)
let all_stages ~nbarriers =
  [ Suspend; Elect; Drain; Write; Refill; Resume ]
  @ List.init nbarriers (fun i -> Barrier (i + 1))

let default_observer ~node:_ ~pid:_ (_ : stage) = ()
let on_stage : (node:int -> pid:int -> stage -> unit) ref = ref default_observer
let notify ~node ~pid stage = !on_stage ~node ~pid stage

(* Intentionally injected protocol bugs, used to prove the chaos
   harness's invariants catch real regressions.  Never set outside
   chaos-harness self-tests. *)

(* Skip stage 4 entirely: no flush tokens, no drained stash. *)
let bug_skip_drain = ref false

(* Perform the drain but drop the stash at refill instead of
   re-injecting it. *)
let bug_drop_refill = ref false

let reset () =
  on_stage := default_observer;
  bug_skip_drain := false;
  bug_drop_refill := false
