(** Typed payloads for the hook sites the checkpoint/restart core
    publishes (the DMTCP-specific half of the {!Plugin} event API).
    Mutable fields are the contract: handlers rewrite them in place and
    the core reads the result back. *)

type Plugin.payload +=
  | Stage of { stage : Faults.stage }
      (** [pre-<stage>] / [post-<stage>] and [pre/post-barrier<k>] *)
  | Coord_round of { round : int; procs : int }
      (** [coord-ckpt-begin] / [coord-ckpt-end] at the coordinator *)
  | Fd_capture of {
      fd : int;
      desc : Simos.Fdesc.t;
      entry : Conn_table.entry option;
      mutable info : Ckpt_image.fd_info option;
          (** classification about to be written into the image;
              [None] drops the fd from the image *)
    }
  | Drain_select of {
      fd : int;
      entry : Conn_table.entry;
      sock : Simnet.Fabric.socket;
      mutable skip : bool;  (** [true] = leave this connection un-drained *)
    }
  | Image_write of { image : Mtcp.Image.t }
      (** captured address space before sizing/encoding: mutations here
          are what the image on disk contains *)
  | Restart_discovery of {
      kernel : Simos.Kernel.t;
      key : string;
      eof : bool;
      mutable desc : Simos.Fdesc.t option;
          (** a plugin resolves the unreachable connection's fd by
              filling this in *)
    }
  | Restart_rearrange of {
      kernel : Simos.Kernel.t;
      image : Ckpt_image.t;
      proc : Simos.Kernel.process;
          (** freshly materialized, fds installed, not yet resumed *)
    }

(** Hook-site names — the [<site>] of [plugin/<name>/<site>] spans. *)

val site_stage : [ `Pre | `Post ] -> Faults.stage -> string
val site_fd_capture : string
val site_drain_select : string
val site_image_write : string
val site_restart_discovery : string
val site_restart_rearrange : string
val site_coord_begin : string
val site_coord_end : string
