type t = { hostid : int; pid : int; generation : int }

let make ~hostid ~pid ~generation = { hostid; pid; generation }
let to_string t = Printf.sprintf "%d-%d-g%d" t.hostid t.pid t.generation
let next_generation t = { t with generation = t.generation + 1 }

(* (hostid, pid) without the generation: stable across restarts, so it
   names the chain of checkpoint generations belonging to one logical
   process — the retention unit of the store's GC. *)
let lineage t = Printf.sprintf "%d-%d" t.hostid t.pid

let encode w t =
  Util.Codec.Writer.uvarint w t.hostid;
  Util.Codec.Writer.uvarint w t.pid;
  Util.Codec.Writer.uvarint w t.generation

let decode r =
  let hostid = Util.Codec.Reader.uvarint r in
  let pid = Util.Codec.Reader.uvarint r in
  let generation = Util.Codec.Reader.uvarint r in
  { hostid; pid; generation }
