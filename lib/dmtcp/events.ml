(* Typed payloads for the plugin hook sites the checkpoint/restart core
   publishes.  [Plugin.payload] is an extensible variant so the generic
   dispatcher in [lib/plugin] needs no knowledge of DMTCP types; the
   mutable fields are the plugin API — handlers rewrite them in place
   and the core reads the result back. *)

type Plugin.payload +=
  | Stage of { stage : Faults.stage }
      (* pre-<stage> / post-<stage> and pre/post-barrier-<k> sites *)
  | Coord_round of { round : int; procs : int }
      (* coord-ckpt-begin / coord-ckpt-end at the coordinator *)
  | Fd_capture of {
      fd : int;
      desc : Simos.Fdesc.t;
      entry : Conn_table.entry option;
      mutable info : Ckpt_image.fd_info option;
          (* the classification about to be written into the image;
             [None] drops the fd from the image *)
    }
  | Drain_select of {
      fd : int;
      entry : Conn_table.entry;
      sock : Simnet.Fabric.socket;
      mutable skip : bool;  (* true = leave this connection un-drained *)
    }
  | Image_write of { image : Mtcp.Image.t }
      (* the captured address space, before sizing/encoding: mutations
         here are what the image on disk contains *)
  | Restart_discovery of {
      kernel : Simos.Kernel.t;
      key : string;  (* conn-id key of the unresolved connection *)
      eof : bool;    (* the stream had already ended at checkpoint time *)
      mutable desc : Simos.Fdesc.t option;
          (* a plugin resolves the fd by filling this in *)
    }
  | Restart_rearrange of {
      kernel : Simos.Kernel.t;
      image : Ckpt_image.t;
      proc : Simos.Kernel.process;
          (* freshly materialized process, fds installed, not yet resumed *)
    }

(* Hook-site names (the <site> of [plugin/<name>/<site>] spans). *)

let site_stage phase stage =
  (match phase with `Pre -> "pre-" | `Post -> "post-") ^ Faults.stage_name stage

let site_fd_capture = "fd-capture"
let site_drain_select = "drain-select"
let site_image_write = "image-write"
let site_restart_discovery = "restart-discovery"
let site_restart_rearrange = "restart-rearrange"
let site_coord_begin = "coord-ckpt-begin"
let site_coord_end = "coord-ckpt-end"
