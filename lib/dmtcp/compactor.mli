(** Background delta-chain compaction.

    Squashes over-deep delta chains in the checkpoint store into
    consolidated full images, re-put at the SAME catalog name — restart
    scripts, child deltas and pins keep resolving, now at chain depth 0.
    Bounds restart chain depth independently of [DMTCP_DELTA_CHAIN] and
    shrinks the GC keep-set closure.  Driven off the scheduler tick
    (conflict-checked against in-flight checkpoint/restart operations
    there); safe to call directly for tests and tools. *)

(** Manifests whose delta chain is deeper than [depth], newest first. *)
val candidates : Store.t -> depth:int -> Store.manifest list

(** Resolve a delta to its full MTCP image through the store catalog
    (no storage time booked).  Raises [Unresolvable] on a broken chain. *)
exception Unresolvable of string

val resolve_mtcp : Store.t -> Ckpt_image.t -> Mtcp.Image.t

(** [compact_one store ~node m] squashes [m] into a full image written
    from [node] (must be alive), returning the booked write delay.
    [None] when the chain cannot be resolved — every error path leaves
    the catalog untouched. *)
val compact_one : Store.t -> node:int -> Store.manifest -> float option

(** [run store ~node ~depth] compacts up to [max] (default 1) chains
    deeper than [depth] and GCs each touched lineage; returns the names
    compacted. *)
val run : ?max:int -> Store.t -> node:int -> depth:int -> string list
