(** High-level facade over the DMTCP stack, used by the harness, examples
    and tests.

    Typical session:
    {[
      let cl = Simos.Cluster.create ~nodes:32 () in
      let rt = Dmtcp.Api.install cl () in
      let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"apps:mpirun" ~argv:[...] in
      Simos.Cluster.run ~until:30.0 cl;          (* reach steady state *)
      Dmtcp.Api.checkpoint rt;                   (* dmtcp_command -c *)
      Dmtcp.Api.await_checkpoint rt;
      let script = Dmtcp.Api.restart_script rt in
      Dmtcp.Api.kill_computation rt;             (* simulate node loss *)
      Dmtcp.Api.restart rt script;
      Simos.Cluster.run cl                       (* computation finishes *)
    ]} *)

(** Register the DMTCP programs (coordinator, manager, launcher, command,
    restart) in the global program registry. Idempotent. *)
val register_programs : unit -> unit

(** Install hooks + runtime on a cluster (also registers programs). *)
val install : Simos.Cluster.t -> ?options:Options.t -> unit -> Runtime.t

(** [launch rt ~node ~prog ~argv] spawns
    [dmtcp_checkpoint <prog> <argv...>] on [node] and returns the launcher
    process (the target program execs in place, keeping its pid).

    [?options] overrides the runtime-wide options in the spawned process's
    environment — several independent computations (each with its own
    coordinator host/port) can then share one cluster, which is how the
    batch scheduler attaches a DMTCP domain per job. *)
val launch :
  ?options:Options.t ->
  Runtime.t ->
  node:int ->
  prog:string ->
  argv:string list ->
  Simos.Kernel.process

(** Spawn [dmtcp_command --checkpoint] against [?options]'s coordinator
    (default: the runtime-wide one). The caller advances the engine. *)
val checkpoint : ?options:Options.t -> Runtime.t -> unit

(** Run the engine until a checkpoint that *started at or after [since]*
    completes (all barriers released) — guarding against being satisfied
    by a previously completed checkpoint. Raises [Failure] on timeout
    (default 600 simulated s). [?options] selects which coordinator
    domain's records to watch (by its [coord_port]). *)
val await_checkpoint : ?timeout:float -> ?since:float -> ?options:Options.t -> Runtime.t -> unit

(** Convenience: request a checkpoint and wait for it. *)
val checkpoint_now : ?timeout:float -> ?options:Options.t -> Runtime.t -> unit

(** Duration of the last completed checkpoint, seconds. *)
val last_checkpoint_seconds : Runtime.t -> float

(** Aggregate image bytes of the last checkpoint:
    (compressed-on-disk, raw). *)
val last_checkpoint_bytes : Runtime.t -> int * int

(** Build the restart script record for the last checkpoint (also writes
    [dmtcp_restart_script.sh] to the coordinator node's filesystem).
    [?options] selects the coordinator address baked into the script. *)
val restart_script : ?options:Options.t -> Runtime.t -> Restart_script.t

(** Kill every checkpointed process (and the coordinator), as when a
    cluster is lost or the user stops the computation before migrating.
    Checkpoint images survive on the nodes' filesystems. *)
val kill_computation : Runtime.t -> unit

(** Same, restricted to processes on [nodes] — stops one job of a
    multi-job cluster when the scheduler owns nodes exclusively per job. *)
val kill_nodes : Runtime.t -> nodes:int list -> unit

(** Can every image of [script] still be produced somewhere — as a file
    on some node, or from the store with every block on a surviving
    replica?  Chaos recovery uses this to decide restart vs relaunch. *)
val script_images_available : Runtime.t -> Restart_script.t -> bool

(** [restart rt script] bumps the generation, clears the discovery
    service, copies images to their (possibly remapped) target hosts,
    starts a fresh coordinator if needed, and spawns one [dmtcp_restart]
    per host. The caller advances the engine; use {!await_restart}. *)
val restart : Runtime.t -> Restart_script.t -> unit

(** Run the engine until every restart process of [?options]'s domain
    has resumed its processes. *)
val await_restart : ?timeout:float -> ?options:Options.t -> Runtime.t -> unit

(** Seconds from restart initiation to the last process resuming. *)
val last_restart_seconds : ?options:Options.t -> Runtime.t -> float
