(** The per-process DMTCP checkpoint image: the distributed layer's
    metadata (fd table, connection table, ptys, pid virtualization)
    wrapped around the MTCP memory/threads image.

    One such image is written per process per checkpoint, to
    [<ckpt_dir>/ckpt_<program>_<upid>.dmtcp] on the process's node. *)

(** How to re-create one fd at restart.  [desc_key] groups fds (possibly
    across processes on the same host) that shared an open file
    description — they must be restored to a single shared object. *)
type fd_info =
  | FFile of { path : string; offset : int }
  | FSock of {
      state : sock_state;
      kind : Conn_table.sock_kind;
      role : Conn_table.role;
      conn_id : Conn_id.t;
      drained : string;
      eof : bool;  (** peer closed pre-checkpoint: EOF follows [drained] *)
    }
  | FPty of { master : bool; pty_key : int }

and sock_state =
  | S_established
  | S_listening of { port : int option; unix_path : string option; backlog : int }
  | S_other  (** unconnected/closed endpoints: recreated fresh *)

type pty_record = {
  pty_key : int;
  pr_name : string;
  icanon : bool;
  echo : bool;
  isig : bool;
  baud : int;
  drained_to_slave : string;
  drained_to_master : string;
}

type t = {
  upid : Upid.t;
  vpid : int;
  parent_vpid : int;            (** 0 = no checkpointed parent *)
  program : string;             (** argv[0], for the image filename *)
  fds : (int * int * fd_info) list;  (** (fd, desc_key, info) *)
  ptys : pty_record list;
  algo : Compress.Algo.t;
  sizes : Mtcp.Image.sizes;
  delta_base : string option;
      (** [Some name]: [mtcp_blob] is an MTCPD1 delta against the image
          file [name] (same lineage); resolve with {!delta_mtcp}.
          [None]: a self-contained full image. *)
  mtcp_blob : string;           (** framed MTCP image (full or delta) *)
}

(** Image filename for this upid; [?seq] appends a per-checkpoint [.dN]
    discriminator — incremental mode gives every checkpoint a distinct
    name so a delta's base is never overwritten in place. *)
val filename : ?seq:int -> t -> string

(** A truncated or bit-flipped image: decoding failed the per-section
    CRC-32 trailer or the codec's bounds checks. *)
exception Corrupt_image of string

(** Image bytes: magic, then metadata and MTCP-blob sections, each
    length-prefixed and followed by a CRC-32 trailer. *)
val encode : t -> string

(** Raises {!Corrupt_image} on damage. *)
val decode : string -> t

(** Decode the wrapped MTCP image (memory + threads).  Only valid when
    [delta_base = None]; a delta blob fails with {!Corrupt_image}. *)
val mtcp : t -> Mtcp.Image.t

(** [delta_mtcp t ~base] reconstructs a delta image's full MTCP image
    from the resolved base.  Raises {!Corrupt_image} on damage or a
    dangling base reference. *)
val delta_mtcp : t -> base:Mtcp.Image.t -> Mtcp.Image.t

(** Split encoded image bytes at the mtcp blob's DMZ2 frame boundaries
    — the dedup units of the content-addressed store.  Concatenating
    the chunks reproduces the input exactly; unparseable input yields a
    single chunk. *)
val chunk : string -> string list

(** Real bytes of the encoded image plus the simulated page payload — the
    number the paper's figures report as "checkpoint size". *)
val sim_file_size : t -> int
