type role = Connector | Acceptor | Pair_a | Pair_b

type sock_kind = Tcp | Unixsock | Pair

type entry = {
  mutable conn_id : Conn_id.t;
  mutable role : role;
  kind : sock_kind;
  desc_id : int;
  mutable drained : string;
  mutable eof : bool;
  mutable saved_owner : int;
}

type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 8
let add t ~fd entry = Hashtbl.replace t fd entry
let find t ~fd = Hashtbl.find_opt t fd
let remove t ~fd = Hashtbl.remove t fd

let entries t =
  Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) t [] |> List.sort (fun (a, _) (b, _) -> compare a b)

let unique_descs t =
  let seen = Hashtbl.create 8 in
  entries t
  |> List.filter (fun (_, e) ->
         if Hashtbl.mem seen e.desc_id then false
         else begin
           Hashtbl.add seen e.desc_id ();
           true
         end)

let clone t =
  let c = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun fd e -> Hashtbl.replace c fd { e with drained = e.drained }) t;
  c

let role_tag = function Connector -> 0 | Acceptor -> 1 | Pair_a -> 2 | Pair_b -> 3

let role_of_tag = function
  | 0 -> Connector
  | 1 -> Acceptor
  | 2 -> Pair_a
  | 3 -> Pair_b
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad role %d" n))

let kind_tag = function Tcp -> 0 | Unixsock -> 1 | Pair -> 2

let kind_of_tag = function
  | 0 -> Tcp
  | 1 -> Unixsock
  | 2 -> Pair
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad sock kind %d" n))

let encode_entry w e =
  Conn_id.encode w e.conn_id;
  Util.Codec.Writer.u8 w (role_tag e.role);
  Util.Codec.Writer.u8 w (kind_tag e.kind);
  Util.Codec.Writer.uvarint w e.desc_id;
  Util.Codec.Writer.string w e.drained;
  Util.Codec.Writer.bool w e.eof;
  Util.Codec.Writer.varint w e.saved_owner

let decode_entry r =
  let conn_id = Conn_id.decode r in
  let role = role_of_tag (Util.Codec.Reader.u8 r) in
  let kind = kind_of_tag (Util.Codec.Reader.u8 r) in
  let desc_id = Util.Codec.Reader.uvarint r in
  let drained = Util.Codec.Reader.string r in
  let eof = Util.Codec.Reader.bool r in
  let saved_owner = Util.Codec.Reader.varint r in
  { conn_id; role; kind; desc_id; drained; eof; saved_owner }

let encode w t =
  Util.Codec.Writer.list
    (fun w (fd, e) ->
      Util.Codec.Writer.uvarint w fd;
      encode_entry w e)
    w (entries t)

let decode r =
  let pairs =
    Util.Codec.Reader.list
      (fun r ->
        let fd = Util.Codec.Reader.uvarint r in
        let e = decode_entry r in
        (fd, e))
      r
  in
  let t = create () in
  List.iter (fun (fd, e) -> add t ~fd e) pairs;
  t
