let name = "dmtcp:coordinator"

(* per-message handling cost of the centralized coordinator *)
let msg_cost = 20e-6

type client = {
  c_fd : int;
  mutable c_buf : string;
  mutable c_manager : bool;
  mutable c_upid : string;  (* from HELLO; labels per-client barrier traces *)
}

type state = {
  mutable phase : [ `Boot | `Run ];
  mutable listen_fd : int;
  mutable clients : client list;
  mutable counts : int array;          (* barrier arrival counts, 1-based *)
  mutable released : bool array;       (* barriers already released, 1-based *)
  mutable expected : int;              (* managers participating in this ckpt *)
  mutable in_ckpt : bool;
  mutable next_interval : float;
  mutable work : int;                  (* messages handled since last block *)
  mutable last_barrier_time : float;
  mutable port : int;                  (* bound port = this coordinator's domain *)
  mutable barrier_dirty : bool;
      (* barrier arrivals buffered since the last release scan: one
         engine wakeup drains every ready barrier instead of re-running
         the release scan per message *)
  mutable opts : Options.t;
      (* parsed from the environment once at boot: the env cannot change
         underneath a running process, and of_getenv on every tick was
         measurable overhead for interval-polling coordinators *)
  mutable rounds : int;  (* completed-or-started checkpoint rounds *)
}

module P = struct
  type nonrec state = state

  let name = name
  let encode _ _ = failwith "dmtcp:coordinator is not checkpointable"
  let decode _ = failwith "dmtcp:coordinator is not checkpointable"

  let init ~argv:_ =
    {
      phase = `Boot;
      listen_fd = -1;
      clients = [];
      counts = Array.make (Runtime.nbarriers + 1) 0;
      released = Array.make (Runtime.nbarriers + 1) false;
      expected = 0;
      in_ckpt = false;
      next_interval = infinity;
      work = 0;
      last_barrier_time = 0.;
      port = Options.default.Options.coord_port;
      barrier_dirty = false;
      opts = Options.default;
      rounds = 0;
    }

  let send_line (ctx : Simos.Program.ctx) fd line =
    (* coordinator messages are short; buffer exhaustion is not expected *)
    match ctx.write_fd fd line with
    | Ok _ -> ()
    | Error _ -> ()

  let managers st = List.filter (fun c -> c.c_manager) st.clients

  let broadcast ctx st line = List.iter (fun c -> send_line ctx c.c_fd line) (managers st)

  let trace_coord (ctx : Simos.Program.ctx) name args =
    if Trace.on () then
      Trace.instant ~node:ctx.Simos.Program.node_id ~pid:ctx.Simos.Program.pid ~cat:"dmtcp"
        ~name ~args ~time:(ctx.now ()) ()

  let start_checkpoint (ctx : Simos.Program.ctx) st =
    if not st.in_ckpt then begin
      let rt = Runtime.active () in
      Runtime.note_ckpt_start ~port:st.port rt;
      st.in_ckpt <- true;
      Array.fill st.counts 0 (Array.length st.counts) 0;
      Array.fill st.released 0 (Array.length st.released) false;
      st.expected <- List.length (managers st);
      if st.expected = 0 then begin
        (* nothing to checkpoint *)
        st.in_ckpt <- false;
        Runtime.note_ckpt_end ~port:st.port rt
      end
      else begin
        trace_coord ctx "coord/ckpt-start" [ ("participants", string_of_int st.expected) ];
        st.rounds <- st.rounds + 1;
        Plugin.dispatch ~node:ctx.node_id ~pid:ctx.pid ~now:(ctx.now ())
          Events.site_coord_begin
          (Events.Coord_round { round = st.rounds; procs = st.expected });
        st.work <- st.work + st.expected;
        st.last_barrier_time <- ctx.now ();
        broadcast ctx st Proto.do_checkpoint
      end
    end

  (* Release every barrier whose arrivals cover the surviving
     participants, in protocol order.  Re-run whenever an arrival lands
     or a participant dies: a death can retroactively satisfy the
     barrier the victim never reached. *)
  let try_release_barriers (ctx : Simos.Program.ctx) st =
    let continue = ref st.in_ckpt in
    let k = ref 1 in
    while !continue && !k <= Runtime.nbarriers do
      let b = !k in
      if st.released.(b) then incr k
      else if st.counts.(b) >= st.expected then begin
        let rt = Runtime.active () in
        (* Table 1: stage durations are the times between the global
           barriers, measured here at the coordinator. *)
        let stage_name =
          match b with
          | 1 -> "ckpt/suspend"
          | 2 -> "ckpt/elect"
          | 3 -> "ckpt/drain"
          | 4 -> "ckpt/write"
          | _ -> "ckpt/refill"
        in
        Runtime.record_stage rt stage_name (ctx.now () -. st.last_barrier_time);
        st.last_barrier_time <- ctx.now ();
        trace_coord ctx "coord/barrier-release"
          [ ("k", string_of_int b); ("stage", stage_name) ];
        broadcast ctx st (Proto.release b);
        st.released.(b) <- true;
        st.work <- st.work + st.expected;
        if b = Runtime.nbarriers then begin
          st.in_ckpt <- false;
          trace_coord ctx "coord/ckpt-end" [];
          Plugin.dispatch ~node:ctx.node_id ~pid:ctx.pid ~now:(ctx.now ())
            Events.site_coord_end
            (Events.Coord_round { round = st.rounds; procs = st.expected });
          Runtime.note_ckpt_end ~port:st.port rt;
          continue := false
        end
        else incr k
      end
      else continue := false
    done;
    st.barrier_dirty <- false

  (* Flush buffered barrier arrivals before acting on anything that
     reads checkpoint-round state: a DO_CKPT command arriving in the
     same wakeup as the round's final barrier-5 must see that round
     released (in_ckpt = false), or the new round is silently lost. *)
  let flush_barriers ctx st = if st.barrier_dirty then try_release_barriers ctx st

  (* A manager died mid-checkpoint: shrink the participant set so the
     survivors are not wedged on barriers the victim will never reach.
     With nobody left, abort the round without declaring it complete —
     whatever images were recorded are a partial set. *)
  let drop_participant (ctx : Simos.Program.ctx) st =
    if st.in_ckpt then begin
      st.expected <- List.length (managers st);
      trace_coord ctx "coord/participant-lost" [ ("remaining", string_of_int st.expected) ];
      if st.expected = 0 then st.in_ckpt <- false else try_release_barriers ctx st
    end

  (* Returns true if any input was consumed. *)
  let pump_client (ctx : Simos.Program.ctx) st client =
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      match ctx.read_fd client.c_fd ~max:4096 with
      | `Data d ->
        client.c_buf <- client.c_buf ^ d;
        progressed := true
      | `Eof ->
        (* manager's process died or command client closed *)
        ctx.close_fd client.c_fd;
        st.clients <- List.filter (fun c -> c.c_fd <> client.c_fd) st.clients;
        if client.c_manager then drop_participant ctx st;
        continue := false
      | `Would_block | `Err _ -> continue := false
    done;
    let lines, rest = Proto.split_lines client.c_buf in
    client.c_buf <- rest;
    List.iter
      (fun line ->
        st.work <- st.work + 1;
        match Proto.parse line with
        | Proto.Hello upid ->
          client.c_manager <- true;
          client.c_upid <- upid
        | Proto.Cmd_checkpoint ->
          flush_barriers ctx st;
          start_checkpoint ctx st
        | Proto.Cmd_status -> send_line ctx client.c_fd (Proto.status_reply (List.length (managers st)))
        | Proto.Cmd_quit -> raise Exit
        | Proto.Barrier k when k >= 1 && k <= Runtime.nbarriers ->
          (* batched: only count the arrival here; the release scan runs
             once per wakeup (flush_barriers), not once per message *)
          st.counts.(k) <- st.counts.(k) + 1;
          st.barrier_dirty <- true;
          trace_coord ctx "coord/barrier-arrive"
            [
              ("k", string_of_int k);
              ("upid", client.c_upid);
              ("count", Printf.sprintf "%d/%d" st.counts.(k) st.expected);
            ]
        | Proto.Barrier _ | Proto.Do_checkpoint | Proto.Release _ | Proto.Status_reply _
        | Proto.Unknown _ ->
          ())
      lines;
    !progressed || lines <> []

  let step (ctx : Simos.Program.ctx) st =
    match st.phase with
    | `Boot ->
      st.opts <- Options.of_getenv ctx.getenv;
      let port =
        match ctx.argv with
        | [ _; p ] -> ( try int_of_string p with _ -> Options.default.Options.coord_port)
        | _ -> st.opts.Options.coord_port
      in
      let fd = ctx.socket () in
      (match ctx.bind fd ~port with
      | Ok _ -> (
        match ctx.listen fd ~backlog:512 with
        | Ok () ->
          st.listen_fd <- fd;
          st.port <- port;
          st.phase <- `Run;
          (match st.opts.Options.interval with
          | Some i -> st.next_interval <- ctx.now () +. i
          | None -> ());
          Simos.Program.Continue st
        | Error _ -> Simos.Program.Exit 1)
      | Error Simos.Errno.EADDRINUSE ->
        (* another coordinator won the race; quietly defer to it *)
        Simos.Program.Exit 0
      | Error _ -> Simos.Program.Exit 1)
    | `Run -> (
      st.work <- 0;
      (* accept new clients *)
      let rec accept_all () =
        match ctx.accept st.listen_fd with
        | Some fd ->
          st.clients <- { c_fd = fd; c_buf = ""; c_manager = false; c_upid = "" } :: st.clients;
          st.work <- st.work + 1;
          accept_all ()
        | None -> ()
      in
      accept_all ();
      let progressed = List.exists Fun.id (List.map (pump_client ctx st) st.clients) in
      (* one release scan drains every barrier made ready this wakeup *)
      flush_barriers ctx st;
      (* interval checkpointing *)
      (match st.opts.Options.interval with
      | Some i when ctx.now () >= st.next_interval ->
        st.next_interval <- ctx.now () +. i;
        start_checkpoint ctx st
      | _ -> ());
      ignore progressed;
      let cost = float_of_int st.work *. msg_cost in
      if st.work > 0 then Simos.Program.Compute (st, cost)
      else begin
        let fds = st.listen_fd :: List.map (fun c -> c.c_fd) st.clients in
        match st.opts.Options.interval with
        | Some _ ->
          (* poll so interval checkpoints fire even when sockets are idle *)
          Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 0.05))
        | None -> Simos.Program.Block (st, Simos.Program.Readable_any fds)
      end)

  let step ctx st = try step ctx st with Exit -> Simos.Program.Exit 0
end

let program = (module P : Simos.Program.S)
