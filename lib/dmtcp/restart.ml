let name = "dmtcp:restart"

let m_parallel = Trace.Metrics.gauge "rst.parallel"
let m_lazy_absent = Trace.Metrics.counter "rst.lazy_absent_pages"
let m_prefetched = Trace.Metrics.counter "rst.prefetch_pages"

(* A connection endpoint to restore, deduplicated by (image, desc_key). *)
type conn_spec = {
  cs_key : string;            (* discovery key: the connection's unique id *)
  cs_desc_key : int;          (* original description id, scoped per image *)
  cs_acceptor : bool;         (* Acceptor / Pair_a side advertises *)
  mutable cs_desc : Simos.Fdesc.t option;  (* restored socket description *)
  cs_drained : string;
  cs_eof : bool;  (* peer closed pre-checkpoint; no peer will reconnect *)
}

type pending_accept = { pa_fd : int; mutable pa_buf : string }

type connecting = {
  co_fd : int;
  co_key : string;
  co_spec : conn_spec;
  mutable co_sent : bool;
}

type phase =
  | R_boot
  | R_files
  | R_sockets
  | R_sockets_wait of float  (* deadline for external peers *)
  | R_fork
  | R_mem
  | R_refill
  | R_refill_barrier
  | R_resume

type state = {
  mutable phase : phase;
  (* images to restore; a delta image carries its chain-resolved mtcp
     body (reconstructed against its bases at boot), a full image is
     decoded lazily at materialize so per-block CRC damage is still
     caught by the fork stage *)
  mutable images : (Ckpt_image.t * Mtcp.Image.t option) list;
  mutable chain_bases : Ckpt_image.t list;
      (* base images read while resolving delta chains, for restore-cost
         accounting *)
  mutable specs : conn_spec list;
  (* desc_key -> restored description (description ids are cluster-unique) *)
  desc_map : (int, Simos.Fdesc.t) Hashtbl.t;
  pty_map : (int, Simos.Pty.t) Hashtbl.t;
  mutable listen_fd : int;
  mutable pending_accepts : pending_accept list;
  mutable connectors : connecting list;
  mutable restored : (Ckpt_image.t * Simos.Kernel.process) list;
  mutable phase_t0 : float;
  mutable local_read_bytes : int;  (* modeled bytes of images read from local files *)
  mutable store_read_delay : float;  (* booked catalog/replica read time (store mode) *)
  mutable lazy_page_cost : float;
      (* lazy restore: modeled seconds to fault in one absent page;
         0. = eager restore (no pager, no prefetcher) *)
}

module P = struct
  type nonrec state = state

  let name = name
  let encode _ _ = failwith "dmtcp:restart is not checkpointable"
  let decode _ = failwith "dmtcp:restart is not checkpointable"

  let init ~argv:_ =
    {
      phase = R_boot;
      images = [];
      chain_bases = [];
      specs = [];
      desc_map = Hashtbl.create 16;
      pty_map = Hashtbl.create 4;
      listen_fd = -1;
      pending_accepts = [];
      connectors = [];
      restored = [];
      phase_t0 = 0.;
      local_read_bytes = 0;
      store_read_delay = 0.;
      lazy_page_cost = 0.;
    }

  let rt () = Runtime.active ()
  let my_kernel (ctx : Simos.Program.ctx) = Runtime.kernel_of (rt ()) ~node:ctx.node_id

  (* The restart wave's coordinator domain: every per-wave record (op
     info, refill barrier, shm registry, discovery keys) is scoped to
     this port so concurrent waves of different jobs never interfere. *)
  let my_port (ctx : Simos.Program.ctx) = (Options.of_getenv ctx.getenv).Options.coord_port


  let stage (ctx : Simos.Program.ctx) st label =
    Runtime.record_stage (rt ()) label (ctx.now () -. st.phase_t0);
    st.phase_t0 <- ctx.now ()

  let trace_rst (ctx : Simos.Program.ctx) name args =
    if Trace.on () then
      Trace.instant ~node:ctx.Simos.Program.node_id ~pid:ctx.Simos.Program.pid ~cat:"dmtcp"
        ~name:("rst/" ^ name) ~args ~time:(ctx.now ()) ()

  let fd_sock (ctx : Simos.Program.ctx) fd =
    match Simos.Kernel.fd_desc (Option.get (Runtime.proc_of (rt ()) ~node:ctx.node_id ~pid:ctx.pid)) fd with
    | Some ({ Simos.Fdesc.kind = Simos.Fdesc.Sock s; _ } as desc) -> Some (s, desc)
    | _ -> None

  (* ---------------------------------------------------------------- *)
  (* step 1: files and ptys *)

  let restore_files_and_ptys (ctx : Simos.Program.ctx) st =
    let k = my_kernel ctx in
    List.iter
      (fun ((img : Ckpt_image.t), _) ->
        (* ptys first so slave/master fds can reference them *)
        List.iter
          (fun (p : Ckpt_image.pty_record) ->
            if not (Hashtbl.mem st.pty_map p.Ckpt_image.pty_key) then begin
              let pty = Simos.Pty.create () in
              Simos.Pty.set_termios pty
                {
                  Simos.Pty.icanon = p.Ckpt_image.icanon;
                  echo = p.Ckpt_image.echo;
                  isig = p.Ckpt_image.isig;
                  baud = p.Ckpt_image.baud;
                };
              Simos.Pty.refill pty ~to_slave:p.Ckpt_image.drained_to_slave
                ~to_master:p.Ckpt_image.drained_to_master;
              Hashtbl.replace st.pty_map p.Ckpt_image.pty_key pty
            end)
          img.Ckpt_image.ptys;
        List.iter
          (fun (_, desc_key, info) ->
            if not (Hashtbl.mem st.desc_map desc_key) then
              match info with
              | Ckpt_image.FFile { path; offset } ->
                (* regular files are reopened by path; on a migration
                   target the file may be absent and is created empty, as
                   with a fresh NFS mount *)
                let file = Simos.Vfs.open_or_create (Simos.Kernel.vfs k) path in
                let offset = min offset (Simos.Vfs.length file) in
                Hashtbl.replace st.desc_map desc_key
                  (Simos.Fdesc.make (Simos.Fdesc.File { file; offset }))
              | Ckpt_image.FPty { master; pty_key } ->
                let pty = Hashtbl.find st.pty_map pty_key in
                let kind = if master then Simos.Fdesc.Pty_m pty else Simos.Fdesc.Pty_s pty in
                Hashtbl.replace st.desc_map desc_key (Simos.Fdesc.make kind)
              | Ckpt_image.FSock { state = Ckpt_image.S_listening { port; unix_path; backlog }; _ }
                ->
                (* listen sockets are rebound directly; if the original
                   port is taken on the new host, fall back to ephemeral *)
                let fab = Simos.Kernel.fabric k in
                let s =
                  match unix_path with
                  | Some path ->
                    let s = Simnet.Fabric.socket_unix fab ~host:ctx.node_id in
                    (match Simnet.Fabric.bind_unix s ~path with
                    | Ok () -> ()
                    | Error _ -> ());
                    s
                  | None ->
                    let s = Simnet.Fabric.socket fab ~host:ctx.node_id in
                    (match Simnet.Fabric.bind s ~port:(Option.value ~default:0 port) with
                    | Ok _ -> ()
                    | Error _ -> ignore (Simnet.Fabric.bind s ~port:0));
                    s
                in
                ignore (Simnet.Fabric.listen s ~backlog);
                Hashtbl.replace st.desc_map desc_key (Simos.Fdesc.make (Simos.Fdesc.Sock s))
              | Ckpt_image.FSock { state = Ckpt_image.S_other; eof; _ } ->
                let fab = Simos.Kernel.fabric k in
                let s = Simnet.Fabric.socket fab ~host:ctx.node_id in
                (* a recorded EOF survives onto the fresh dead socket so
                   a reader blocked on it wakes instead of hanging *)
                if eof then Simnet.Fabric.inject_eof s;
                Hashtbl.replace st.desc_map desc_key (Simos.Fdesc.make (Simos.Fdesc.Sock s))
              | Ckpt_image.FSock { state = Ckpt_image.S_established; _ } ->
                (* handled by the reconnect stage *)
                ())
          img.Ckpt_image.fds)
      st.images

  (* ---------------------------------------------------------------- *)
  (* step 2: sockets via the discovery service *)

  (* One spec per shared description: processes that shared a socket
     (fork/dup) are reassembled around a single restored endpoint, so the
     dedup key is the cluster-unique desc_key.  The drained stash lives in
     the drain leader's image; keep the longest. *)
  let build_conn_specs ~prefix st =
    let by_desc : (int, conn_spec) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun ((img : Ckpt_image.t), _) ->
        List.iter
          (fun (_, desc_key, info) ->
            match info with
            | Ckpt_image.FSock { state = Ckpt_image.S_established; role; conn_id; drained; eof; _ }
              -> (
              let acceptor =
                match role with
                | Conn_table.Acceptor | Conn_table.Pair_a -> true
                | Conn_table.Connector | Conn_table.Pair_b -> false
              in
              match Hashtbl.find_opt by_desc desc_key with
              | Some existing ->
                let longest =
                  if String.length drained > String.length existing.cs_drained then drained
                  else existing.cs_drained
                in
                Hashtbl.replace by_desc desc_key
                  { existing with cs_drained = longest; cs_eof = existing.cs_eof || eof }
              | None ->
                Hashtbl.replace by_desc desc_key
                  {
                    cs_key = prefix ^ Conn_id.to_key conn_id;
                    cs_desc_key = desc_key;
                    cs_acceptor = acceptor;
                    cs_desc = None;
                    cs_drained = drained;
                    cs_eof = eof;
                  })
            | _ -> ())
          img.Ckpt_image.fds)
      st.images;
    Hashtbl.fold (fun _ spec acc -> spec :: acc) by_desc []
    |> List.sort (fun a b -> compare a.cs_desc_key b.cs_desc_key)

  (* restart-discovery hook: a connection whose peer cannot be
     rediscovered (outside the checkpointed set, or already drained to
     EOF) is offered to plugins; a plugin resolves the spec by filling
     in a descriptor (ext-sock answers with a fresh dead socket, with
     the recorded EOF injected).  With no plugin claiming it, the spec
     stays unresolved and the fd is simply absent after restart. *)
  let discover_external (ctx : Simos.Program.ctx) spec =
    if spec.cs_desc = None then begin
      let payload =
        Events.Restart_discovery
          { kernel = my_kernel ctx; key = spec.cs_key; eof = spec.cs_eof; desc = None }
      in
      Plugin.dispatch ~node:ctx.node_id ~pid:ctx.pid ~now:(ctx.now ())
        Events.site_restart_discovery payload;
      match payload with
      | Events.Restart_discovery p -> spec.cs_desc <- p.desc
      | _ -> ()
    end

  let start_socket_restore (ctx : Simos.Program.ctx) st =
    (* namespace discovery keys by coordinator port: each job's restart
       wave advertises and looks up only within its own domain *)
    st.specs <- build_conn_specs ~prefix:(Printf.sprintf "%d/" (my_port ctx)) st;
    (* a drained-to-EOF connection has no peer to rediscover: offer it
       to the restart-discovery hook now instead of waiting out the
       discovery deadline (the ext-sock plugin answers with a dead
       socket carrying the recorded EOF) *)
    List.iter
      (fun spec -> if spec.cs_eof then discover_external ctx spec)
      st.specs;
    if List.for_all (fun spec -> spec.cs_desc <> None) st.specs then ()
    else begin
      st.listen_fd <- ctx.socket ();
      (match ctx.bind st.listen_fd ~port:0 with
      | Ok _ -> ()
      | Error _ -> failwith "dmtcp:restart: cannot bind restart listener");
      ignore (ctx.listen st.listen_fd ~backlog:256);
      let addr =
        match ctx.sock_local_addr st.listen_fd with
        | Some a -> a
        | None -> failwith "dmtcp:restart: listener has no address"
      in
      let disc = Simos.Cluster.discovery (Runtime.cluster (rt ())) in
      List.iter
        (fun spec ->
          if spec.cs_acceptor then begin
            Simnet.Discovery.advertise disc ~key:spec.cs_key addr;
            trace_rst ctx "advertise" [ ("key", spec.cs_key) ]
          end)
        st.specs
    end

  (* Drive accepts/connects until every spec has a socket or the deadline
     passes (external peers never reconnect). *)
  let socket_restore_tick (ctx : Simos.Program.ctx) st =
    let disc = Simos.Cluster.discovery (Runtime.cluster (rt ())) in
    (* accept side *)
    (if st.listen_fd >= 0 then
       let rec accept_all () =
         match ctx.accept st.listen_fd with
         | Some fd ->
           st.pending_accepts <- { pa_fd = fd; pa_buf = "" } :: st.pending_accepts;
           accept_all ()
         | None -> ()
       in
       accept_all ());
    st.pending_accepts <-
      List.filter
        (fun pa ->
          let keep = ref true in
          (match ctx.read_fd pa.pa_fd ~max:(Proto.handshake_len - String.length pa.pa_buf) with
          | `Data d -> pa.pa_buf <- pa.pa_buf ^ d
          | `Eof -> keep := false
          | `Would_block | `Err _ -> ());
          if !keep && String.length pa.pa_buf >= Proto.handshake_len then begin
            let key = Proto.parse_handshake pa.pa_buf in
            (match
               List.find_opt (fun s -> s.cs_acceptor && s.cs_desc = None && s.cs_key = key) st.specs
             with
            | Some spec -> (
              match fd_sock ctx pa.pa_fd with
              | Some (_, desc) ->
                spec.cs_desc <- Some desc;
                trace_rst ctx "reconnect" [ ("key", spec.cs_key); ("side", "acceptor") ]
              | None -> ())
            | None -> ctx.close_fd pa.pa_fd);
            keep := false
          end;
          !keep)
        st.pending_accepts;
    (* connector side: initiate connects as advertisements appear *)
    List.iter
      (fun spec ->
        if (not spec.cs_acceptor) && spec.cs_desc = None
           && not (List.exists (fun c -> c.co_spec == spec) st.connectors)
        then
          match Simnet.Discovery.lookup disc ~key:spec.cs_key with
          | Some addr ->
            let fd = ctx.socket () in
            ignore (ctx.connect fd addr);
            st.connectors <- { co_fd = fd; co_key = spec.cs_key; co_spec = spec; co_sent = false } :: st.connectors
          | None -> ())
      st.specs;
    st.connectors <-
      List.filter
        (fun co ->
          match ctx.sock_state co.co_fd with
          | Some Simnet.Fabric.Established ->
            if not co.co_sent then begin
              ignore (ctx.write_fd co.co_fd (Proto.handshake_frame co.co_key));
              co.co_sent <- true
            end;
            (match fd_sock ctx co.co_fd with
            | Some (_, desc) ->
              co.co_spec.cs_desc <- Some desc;
              trace_rst ctx "reconnect" [ ("key", co.co_key); ("side", "connector") ]
            | None -> ());
            false
          | Some Simnet.Fabric.Connecting -> true
          | _ -> false)
        st.connectors;
    List.for_all (fun s -> s.cs_desc <> None) st.specs

  (* ---------------------------------------------------------------- *)
  (* steps 3–4: fork into user processes, rearrange fds *)

  let materialize (ctx : Simos.Program.ctx) st =
    let k = my_kernel ctx in
    let run = rt () in
    let port = my_port ctx in
    Runtime.shm_reset ~port run;
    st.restored <-
      List.map
        (fun ((img : Ckpt_image.t), resolved) ->
          let pid = Simos.Kernel.fresh_pid k in
          let mtcp_img =
            match resolved with Some m -> m | None -> Ckpt_image.mtcp img
          in
          let proc =
            Simos.Kernel.create_raw_process k ~pid ~ppid:0 ~env:mtcp_img.Mtcp.Image.env
              ~hijacked:true
          in
          (* fd table: original numbers, shared descriptions preserved *)
          List.iter
            (fun (fd, desc_key, info) ->
              let desc =
                match info with
                | Ckpt_image.FSock { state = Ckpt_image.S_established; _ } ->
                  List.find_opt (fun s -> s.cs_desc_key = desc_key && s.cs_desc <> None) st.specs
                  |> Option.map (fun s -> Option.get s.cs_desc)
                | _ -> Hashtbl.find_opt st.desc_map desc_key
              in
              match desc with
              | Some desc ->
                Simos.Fdesc.incr_ref desc;
                Simos.Kernel.install_fd k proc ~fd desc
              | None -> ())
            img.Ckpt_image.fds;
          (* memory and threads (suspended until refill completes) *)
          Mtcp.Image.restore_threads k proc mtcp_img;
          (* the coordinator may have moved: point the restored process's
             environment at the current one *)
          List.iter
            (fun key ->
              match ctx.getenv key with
              | Some v -> proc.Simos.Kernel.env <- (key, v) :: List.remove_assoc key proc.Simos.Kernel.env
              | None -> ())
            [ "DMTCP_COORD_HOST"; "DMTCP_COORD_PORT" ];
          Simos.Kernel.suspend_user_threads k proc;
          (* re-share mmap-shared segments across restored processes *)
          List.iter
            (fun (r : Mem.Region.t) ->
              match r.Mem.Region.kind with
              | Mem.Region.Mmap_shared { backing_path } -> (
                match Runtime.shm_lookup ~port run backing_path with
                | Some pages ->
                  Mem.Address_space.substitute_pages proc.Simos.Kernel.space
                    ~region_id:r.Mem.Region.id pages
                | None ->
                  (* the paper's strategy: recreate the backing file if it
                     is missing and the directory is writable *)
                  let file = Simos.Vfs.open_or_create (Simos.Kernel.vfs k) backing_path in
                  ignore file;
                  Runtime.shm_register ~port run backing_path r.Mem.Region.pages)
              | _ -> ())
            (Mem.Address_space.regions proc.Simos.Kernel.space);
          (* DMTCP per-process state: virtual pid preserved, generation
             bumped *)
          let ps : Runtime.pstate =
            {
              Runtime.upid = Upid.next_generation img.Ckpt_image.upid;
              vpid = img.Ckpt_image.vpid;
              conns = Conn_table.create ();
              conn_seq = 1000;
              critical = 0;
              pty_drains = Hashtbl.create 4;
              prev_space = None;
              delta_prev = None;
              ckpt_seq = 0;
              forked_pending = false;
            }
          in
          List.iter
            (fun (fd, desc_key, info) ->
              match info with
              | Ckpt_image.FSock { kind; role; conn_id; _ } -> (
                let desc = Simos.Kernel.fd_desc proc fd in
                match desc with
                | Some desc ->
                  Conn_table.add ps.Runtime.conns ~fd
                    {
                      Conn_table.conn_id;
                      role;
                      kind;
                      desc_id = desc.Simos.Fdesc.desc_id;
                      drained = "";
                      eof = false;
                      saved_owner = 0;
                    };
                  (match desc.Simos.Fdesc.kind with
                  | Simos.Fdesc.Sock s ->
                    Runtime.register_sock_owner run ~sock_id:(Simnet.Fabric.id s)
                      ~node:ctx.node_id ~pid ~fd
                  | _ -> ());
                  ignore desc_key
                | None -> ())
              | Ckpt_image.FFile _ | Ckpt_image.FPty _ -> ())
            img.Ckpt_image.fds;
          Runtime.register_pstate run ~node:ctx.node_id ~pid ps;
          Runtime.claim_vpid run ~vpid:ps.Runtime.vpid ~node:ctx.node_id ~pid;
          (* restart-rearrange hook: the process exists with its fds
             installed but threads still suspended — the point where
             plugins fix up resources whose names broke across the
             restart (proc-fd re-points /proc/<old pid>/* here) *)
          Plugin.dispatch ~node:ctx.node_id ~pid:ctx.pid ~now:(ctx.now ())
            Events.site_restart_rearrange
            (Events.Restart_rearrange { kernel = k; image = img; proc });
          (img, proc))
        st.images;
    (* second pass: parent/child relationships via virtual pids *)
    List.iter
      (fun ((img : Ckpt_image.t), (proc : Simos.Kernel.process)) ->
        if img.Ckpt_image.parent_vpid <> 0 then
          match Runtime.resolve_vpid run img.Ckpt_image.parent_vpid with
          | Some (pnode, ppid) when pnode = ctx.node_id -> proc.Simos.Kernel.ppid <- ppid
          | _ -> ())
      st.restored;
    (* release the restart process's own references to the reconnected
       sockets: the user processes now hold them *)
    List.iter (fun fd -> ctx.close_fd fd) (ctx.fds ())

  (* memory restore cost: storage read plus decompression, restored in
     parallel by the forked children across the node's cores *)
  let memory_restore_delay (ctx : Simos.Program.ctx) st =
    let k = my_kernel ctx in
    let storage = Simos.Kernel.storage k in
    let cores = Simos.Kernel.cores k in
    let decompress_total = ref 0. in
    List.iter
      (fun (img : Ckpt_image.t) ->
        let sizes = img.Ckpt_image.sizes in
        decompress_total :=
          !decompress_total
          +. Compress.Model.decompress_seconds ~algo:img.Ckpt_image.algo
               ~bytes:sizes.Mtcp.Image.uncompressed ~zero_bytes:sizes.Mtcp.Image.zero_bytes)
      (List.map fst st.images @ st.chain_bases);
    (* one booking for this host's whole image set: the restart process
       reads the local files serially from its disk.  Images pulled from
       the store were already booked on their replicas' targets at fetch
       time; their (overlapped) read time is [store_read_delay]. *)
    let read_total =
      ref
        ((if st.local_read_bytes > 0 then
            Storage.Target.read storage ~bytes:st.local_read_bytes
          else 0.)
        +. st.store_read_delay)
    in
    (* decompress parallelism: the node's cores, optionally capped by
       DMTCP_RESTART_PARALLEL (0 = no cap) *)
    let cap =
      let p = (Options.of_getenv ctx.getenv).Options.restart_parallel in
      if p > 0 then min p cores else cores
    in
    let parallel = float_of_int (max 1 (min cap (List.length st.images))) in
    Trace.Metrics.set m_parallel parallel;
    let dt = !read_total +. (!decompress_total /. parallel) in
    (* run-to-run I/O variation, as for checkpoint writes *)
    Float.max (0.75 *. dt) (dt *. (1.0 +. (0.05 *. Util.Rng.gaussian ctx.rng ~mean:0. ~stddev:1.)))

  (* Demand-paged lazy restore (option [lazy_restart]).  Only the hot
     set — text, stacks and shared segments, the pages a thread needs to
     take its first steps — is charged to the restart blackout; private
     data/heap/anon pages are marked absent and their share of the
     restore cost is deferred: the kernel pager charges it per page on
     first touch, and a background prefetcher drains the remainder.
     Page *contents* are fully materialized either way (restores stay
     bit-identical); residency only moves modeled time off the critical
     path, so blackout is O(hot set) instead of O(image). *)
  let lazy_restore_setup (ctx : Simos.Program.ctx) st ~dt =
    let total = ref 0 and absent = ref 0 in
    let cold (r : Mem.Region.t) =
      match r.Mem.Region.kind with
      | Mem.Region.Heap | Mem.Region.Data | Mem.Region.Mmap_anon -> true
      | Mem.Region.Text | Mem.Region.Stack | Mem.Region.Mmap_shared _ -> false
    in
    List.iter
      (fun ((_ : Ckpt_image.t), (proc : Simos.Kernel.process)) ->
        List.iter
          (fun (r : Mem.Region.t) ->
            total := !total + Mem.Region.npages r;
            if cold r then begin
              Mem.Region.mark_all_absent r;
              absent := !absent + Mem.Region.npages r
            end)
          (Mem.Address_space.regions proc.Simos.Kernel.space))
      st.restored;
    if !absent = 0 then dt
    else begin
      let hot_frac = float_of_int (!total - !absent) /. float_of_int (max 1 !total) in
      let blackout = dt *. hot_frac in
      st.lazy_page_cost <- dt *. (1. -. hot_frac) /. float_of_int !absent;
      Trace.Metrics.add m_lazy_absent (float_of_int !absent);
      List.iter
        (fun ((_ : Ckpt_image.t), (proc : Simos.Kernel.process)) ->
          let cost = st.lazy_page_cost in
          proc.Simos.Kernel.pager <- Some (fun _ _ -> cost))
        st.restored;
      trace_rst ctx "lazy"
        [
          ("pages", string_of_int !total);
          ("absent", string_of_int !absent);
          ("blackout", Printf.sprintf "%.6f" blackout);
        ];
      blackout
    end

  (* Background prefetcher: from resume onward, page in a batch of
     still-absent pages per step, booking each batch's share of the
     deferred restore time; stops when every page is resident (pagers
     uninstalled) or the restored processes died under it. *)
  let prefetch_batch = 64

  let start_prefetcher (ctx : Simos.Program.ctx) st =
    let eng = Simos.Kernel.engine (my_kernel ctx) in
    let page_cost = st.lazy_page_cost in
    let procs = List.map snd st.restored in
    let rec tick () =
      let live =
        List.filter
          (fun (p : Simos.Kernel.process) -> p.Simos.Kernel.pstate = Simos.Kernel.Running)
          procs
      in
      if live <> [] then begin
        let marked = ref 0 in
        List.iter
          (fun (p : Simos.Kernel.process) ->
            List.iter
              (fun (r : Mem.Region.t) ->
                let n = Mem.Region.npages r in
                for i = 0 to n - 1 do
                  if !marked < prefetch_batch && not (Mem.Region.is_resident r i) then begin
                    Mem.Region.set_resident r i;
                    incr marked;
                    Trace.Metrics.incr m_prefetched
                  end
                done)
              (Mem.Address_space.regions p.Simos.Kernel.space))
          live;
        if !marked = 0 then begin
          List.iter (fun (p : Simos.Kernel.process) -> p.Simos.Kernel.pager <- None) procs;
          trace_rst ctx "prefetch-done" []
        end
        else
          ignore
            (Sim.Engine.schedule eng ~delay:(float_of_int !marked *. page_cost) (fun () ->
                 tick ()))
      end
    in
    ignore (Sim.Engine.schedule eng ~delay:(Float.max page_cost 1e-4) (fun () -> tick ()))

  let refill (ctx : Simos.Program.ctx) st =
    ignore ctx;
    List.iter
      (fun spec ->
        if spec.cs_drained <> "" then
          match spec.cs_desc with
          | Some { Simos.Fdesc.kind = Simos.Fdesc.Sock s; _ } ->
            Simnet.Fabric.inject_recv s spec.cs_drained
          | _ -> ())
      st.specs

  let resume (ctx : Simos.Program.ctx) st =
    let k = my_kernel ctx in
    List.iter
      (fun ((_ : Ckpt_image.t), (proc : Simos.Kernel.process)) ->
        let inst = Simos.Program.instantiate ~name:Manager.name ~argv:[] in
        ignore (Simos.Kernel.add_thread k proc ~inst ~manager:true ());
        Simos.Kernel.resume_user_threads k proc;
        match proc.Simos.Kernel.cmdline with
        | prog :: _ -> Dmtcpaware.run_post_ckpt ~prog
        | [] -> ())
      st.restored;
    if st.lazy_page_cost > 0. then start_prefetcher ctx st;
    Runtime.note_restart_end ~port:(my_port ctx) (rt ())

  (* ---------------------------------------------------------------- *)

  let step (ctx : Simos.Program.ctx) st =
    match st.phase with
    | R_boot -> (
      st.phase_t0 <- ctx.now ();
      let k = my_kernel ctx in
      let run = rt () in
      let corrupt = ref None in
      let missing = ref [] in
      let decode_image ~source path bytes =
        match Ckpt_image.decode bytes with
        | img -> Some img
        | exception Ckpt_image.Corrupt_image msg ->
          (* a damaged image must not yield a half-restored
             computation: report it and fail the whole restart *)
          ctx.log (Printf.sprintf "corrupt checkpoint image %s (%s): %s" path source msg);
          trace_rst ctx "corrupt-image" [ ("path", path); ("source", source); ("error", msg) ];
          if !corrupt = None then corrupt := Some path;
          None
      in
      (* Delta-base lookup: the local file, a file on any other node
         (migration copies the named image, not its whole chain), then
         the store catalog.  Read costs are booked as bytes arrive. *)
      let load_base path =
        match Simos.Vfs.lookup (Simos.Kernel.vfs k) path with
        | Some f -> Some (Simos.Vfs.read_all f, "file")
        | None -> (
          let cl = Runtime.cluster run in
          let found = ref None in
          for node = 0 to Simos.Cluster.nodes cl - 1 do
            if !found = None then
              match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
              | Some f -> found := Some (Simos.Vfs.read_all f, "remote-file")
              | None -> ()
          done;
          match !found with
          | Some _ as r -> r
          | None -> (
            match Runtime.store run with
            | None -> None
            | Some store -> (
              let name = Filename.basename path in
              match Store.fetch store ~node:ctx.node_id ~name with
              | Some (bytes, delay) ->
                st.store_read_delay <- Float.max st.store_read_delay delay;
                trace_rst ctx "store-fetch"
                  [ ("name", name); ("delay", Printf.sprintf "%.6f" delay) ];
                Some (bytes, "store")
              | None -> None
              | exception Store.Missing_blocks _ -> None)))
      in
      let exception Chain_missing of string in
      (* Reconstruct a delta image's full mtcp body by walking the
         [delta_base] links back to a full image and replaying each
         delta on the way up. *)
      let rec resolve_mtcp ~depth path (img : Ckpt_image.t) =
        match img.Ckpt_image.delta_base with
        | None -> Ckpt_image.mtcp img
        | Some base ->
          if depth > 64 then raise (Ckpt_image.Corrupt_image "delta chain too deep");
          let base_path = Filename.concat (Filename.dirname path) base in
          (match load_base base_path with
          | None -> raise (Chain_missing base)
          | Some (bytes, source) ->
            let base_img = Ckpt_image.decode bytes in
            if source <> "store" then
              st.local_read_bytes <-
                st.local_read_bytes + base_img.Ckpt_image.sizes.Mtcp.Image.compressed;
            st.chain_bases <- base_img :: st.chain_bases;
            let base_mtcp = resolve_mtcp ~depth:(depth + 1) base_path base_img in
            trace_rst ctx "delta-resolve"
              [ ("image", Filename.basename path); ("base", base); ("source", source) ];
            Ckpt_image.delta_mtcp img ~base:base_mtcp)
      in
      (* The lineage encoded in an image filename
         (ckpt_<prog>_<hostid>-<pid>-g<gen>[.d<k>].dmtcp) — needed when
         the image itself is gone and there is no decoded upid to ask. *)
      let lineage_of_name name =
        match String.rindex_opt name '_' with
        | None -> None
        | Some i -> (
          let upid_part = String.sub name (i + 1) (String.length name - i - 1) in
          match String.split_on_char '-' upid_part with
          | hostid :: pid :: _ -> Some (hostid ^ "-" ^ pid)
          | _ -> None)
      in
      (* An image that cannot be produced — its delta base is gone
         everywhere, or the image itself never landed (a node killed
         mid-forked-checkpoint dies with the background write still in
         flight): fall back to the newest catalogued generation of the
         same lineage that still resolves, so the failure degrades to
         an older checkpoint instead of losing the computation. *)
      let fallback ~lineage path =
        match Runtime.store run with
        | None -> None
        | Some store ->
          let failed = Filename.basename path in
          let dir = Filename.dirname path in
          let rec try_candidates = function
            | [] -> None
            | (m : Store.manifest) :: rest -> (
              match Store.fetch store ~node:ctx.node_id ~name:m.Store.m_name with
              | None -> try_candidates rest
              | exception Store.Missing_blocks _ -> try_candidates rest
              | Some (bytes, delay) -> (
                st.store_read_delay <- Float.max st.store_read_delay delay;
                let cpath = Filename.concat dir m.Store.m_name in
                match Ckpt_image.decode bytes with
                | exception Ckpt_image.Corrupt_image _ -> try_candidates rest
                | cimg -> (
                  match resolve_mtcp ~depth:0 cpath cimg with
                  | exception Chain_missing _ -> try_candidates rest
                  | exception Ckpt_image.Corrupt_image _ -> try_candidates rest
                  | mtcp ->
                    ctx.log
                      (Printf.sprintf "image %s unresolvable: falling back to %s (generation %d)"
                         failed m.Store.m_name m.Store.m_generation);
                    trace_rst ctx "delta-fallback"
                      [
                        ("failed", failed);
                        ("image", m.Store.m_name);
                        ("generation", string_of_int m.Store.m_generation);
                      ];
                    Some (cimg, Some mtcp))))
          in
          try_candidates
            (List.filter
               (fun (m : Store.manifest) ->
                 m.Store.m_lineage = lineage && m.Store.m_name <> failed)
               (Store.manifests store))
      in
      let resolve path (img : Ckpt_image.t) =
        match img.Ckpt_image.delta_base with
        | None -> Some (img, None)
        | Some _ -> (
          match resolve_mtcp ~depth:0 path img with
          | mtcp -> Some (img, Some mtcp)
          | exception Ckpt_image.Corrupt_image msg ->
            ctx.log (Printf.sprintf "corrupt checkpoint image %s (delta chain): %s" path msg);
            trace_rst ctx "corrupt-image" [ ("path", path); ("error", msg) ];
            if !corrupt = None then corrupt := Some path;
            None
          | exception Chain_missing base -> (
            match fallback ~lineage:(Upid.lineage img.Ckpt_image.upid) path with
            | Some pair -> Some pair
            | None ->
              missing := (path, [ base ]) :: !missing;
              None))
      in
      (* Top-level image unproducible from the store: try the fallback
         before declaring the blocks unrecoverable. *)
      let fallback_top path ~blocks =
        let attempt =
          match lineage_of_name (Filename.basename path) with
          | Some lineage -> fallback ~lineage path
          | None -> None
        in
        match attempt with
        | Some pair -> Some pair
        | None ->
          missing := (path, blocks) :: !missing;
          None
      in
      (match ctx.argv with
      | _ :: paths ->
        st.images <-
          List.filter_map
            (fun path ->
              match Simos.Vfs.lookup (Simos.Kernel.vfs k) path with
              | Some f -> (
                match decode_image ~source:"file" path (Simos.Vfs.read_all f) with
                | Some img ->
                  st.local_read_bytes <-
                    st.local_read_bytes + img.Ckpt_image.sizes.Mtcp.Image.compressed;
                  resolve path img
                | None -> None)
              | None -> (
                (* no local file: resolve through the store catalog and pull
                   a surviving replica (the restart-from-replica path) *)
                match Runtime.store run with
                | None -> None
                | Some store -> (
                  let name = Filename.basename path in
                  match Store.fetch store ~node:ctx.node_id ~name with
                  | Some (bytes, delay) -> (
                    (* replica reads already booked on their source targets;
                       concurrent pulls overlap, so charge the slowest *)
                    st.store_read_delay <- Float.max st.store_read_delay delay;
                    trace_rst ctx "store-fetch"
                      [ ("name", name); ("delay", Printf.sprintf "%.6f" delay) ];
                    match decode_image ~source:"store" path bytes with
                    | Some img -> resolve path img
                    | None -> None)
                  | None ->
                    (* recorded in the restart script but never catalogued:
                       the write was lost in flight (killed mid-forked
                       checkpoint) — degrade to an older checkpoint *)
                    fallback_top path ~blocks:[ name ]
                  | exception Store.Missing_blocks blocks -> fallback_top path ~blocks)))
            paths
      | [] -> ());
      match (!corrupt, List.rev !missing) with
      | Some _, _ -> Simos.Program.Exit 72
      | None, (_ :: _ as missing) ->
        (* every replica of at least one block is gone: fail the restart
           cleanly and name the unrecoverable blocks *)
        List.iter
          (fun (path, blocks) ->
            ctx.log
              (Printf.sprintf "unrecoverable image %s: store blocks lost on all replicas: %s"
                 path (String.concat ", " blocks));
            trace_rst ctx "missing-blocks"
              [ ("path", path); ("blocks", String.concat "," blocks) ])
          missing;
        Simos.Program.Exit 73
      | None, [] ->
        if st.images = [] then Simos.Program.Exit 1
        else begin
          trace_rst ctx "boot" [ ("images", string_of_int (List.length st.images)) ];
          st.phase <- R_files;
          Simos.Program.Continue st
        end)
    | R_files ->
      trace_rst ctx "files" [];
      restore_files_and_ptys ctx st;
      let nfds =
        List.fold_left
          (fun acc ((img : Ckpt_image.t), _) -> acc + List.length img.Ckpt_image.fds)
          0 st.images
      in
      st.phase <- R_sockets;
      Simos.Program.Compute (st, Mtcp.Cost.reopen_seconds ~nfds)
    | R_sockets ->
      stage ctx st "restart/files";
      start_socket_restore ctx st;
      trace_rst ctx "sockets" [ ("specs", string_of_int (List.length st.specs)) ];
      st.phase <- R_sockets_wait (ctx.now () +. 5.0);
      Simos.Program.Continue st
    | R_sockets_wait deadline ->
      let all_done = socket_restore_tick ctx st in
      (* [>=], not [>]: a wakeup scheduled exactly at the deadline must
         give up on external peers then, not at some later event *)
      if all_done || ctx.now () >= deadline then begin
        (* specs still unresolved belong to connections whose peer is
           outside the checkpointed set; offer each to the
           restart-discovery hook (ext-sock gives them dead sockets) *)
        let dead = ref 0 in
        List.iter
          (fun spec ->
            if spec.cs_desc = None then begin
              discover_external ctx spec;
              if spec.cs_desc <> None then incr dead
            end)
          st.specs;
        trace_rst ctx "sockets-done"
          [ ("external", string_of_int !dead); ("timed_out", string_of_bool (not all_done)) ];
        stage ctx st "restart/reconnect";
        st.phase <- R_fork;
        Simos.Program.Continue st
      end
      else
        (* poll the discovery service; also woken by socket activity.
           Clamp the poll to the deadline so the final wakeup lands
           exactly on it. *)
        Simos.Program.Block
          (st, Simos.Program.Sleep_until (Float.min (ctx.now () +. 1e-3) deadline))
    | R_fork -> (
      trace_rst ctx "fork" [ ("procs", string_of_int (List.length st.images)) ];
      (* decoding the mtcp body happens here, after reconnect: damage that
         only per-block CRCs catch must still abort the whole restart
         cleanly rather than yield a half-restored computation *)
      match materialize ctx st with
      | () ->
        st.phase <- R_mem;
        Simos.Program.Continue st
      | exception Ckpt_image.Corrupt_image msg ->
        ctx.log (Printf.sprintf "corrupt checkpoint image at materialize: %s" msg);
        trace_rst ctx "corrupt-image" [ ("error", msg) ];
        Simos.Program.Exit 72)
    | R_mem ->
      let delay = memory_restore_delay ctx st in
      let delay =
        if (Options.of_getenv ctx.getenv).Options.lazy_restart then
          lazy_restore_setup ctx st ~dt:delay
        else delay
      in
      st.phase <- R_refill;
      Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. delay))
    | R_refill ->
      stage ctx st "restart/mem";
      trace_rst ctx "refill" [];
      refill ctx st;
      Runtime.arrive_refill_barrier ~port:(my_port ctx) (rt ());
      st.phase <- R_refill_barrier;
      (* drained data re-traverses the network once *)
      Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 3e-4))
    | R_refill_barrier ->
      if Runtime.refill_barrier_passed ~port:(my_port ctx) (rt ()) then begin
        st.phase <- R_resume;
        Simos.Program.Continue st
      end
      else Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
    | R_resume ->
      stage ctx st "restart/refill";
      trace_rst ctx "resume" [ ("procs", string_of_int (List.length st.restored)) ];
      resume ctx st;
      Simos.Program.Exit 0

  let step ctx st =
    try step ctx st
    with e ->
      ctx.log (Printf.sprintf "dmtcp:restart crashed: %s" (Printexc.to_string e));
      Simos.Program.Exit 71
end

let program = (module P : Simos.Program.S)
