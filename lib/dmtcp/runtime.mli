(** The DMTCP runtime: everything the injected library
    ([dmtcphijack.so]) keeps per process, plus the wrapper (hook)
    implementations and cluster-wide bookkeeping.

    Installed once per simulated cluster; a process-wide singleton mirrors
    the fact that the real library lives inside every checkpointed
    process.  Manager/coordinator/restart programs reach their state
    through {!active}. *)

(** Per-process DMTCP state (the real package keeps this in the injected
    library's data segment). *)
type pstate = {
  mutable upid : Upid.t;
  mutable vpid : int;  (** virtual pid: stable across restarts *)
  mutable conns : Conn_table.t;
  mutable conn_seq : int;
  mutable critical : int;  (** dmtcpaware delay-checkpoint depth *)
  pty_drains : (int, string * string) Hashtbl.t;  (** pty key -> drained *)
  mutable prev_space : Mem.Address_space.t option;
      (** address-space snapshot at the previous checkpoint, for
          incremental checkpointing *)
  mutable delta_prev : (string * int) option;
      (** previous checkpoint's image name and chain depth (0 = full):
          the base the next incremental checkpoint deltas against *)
  mutable ckpt_seq : int;
      (** per-process checkpoint counter; incremental mode suffixes the
          image filename with it so a delta's base is never overwritten *)
  mutable forked_pending : bool;
      (** a forked checkpoint's background write is still in flight: the
          next checkpoint's fork waits for it (at most one outstanding
          child, as in real forked checkpointing), so a delta chain's
          base is always durable before anything references it *)
}

(** Cluster-wide record of one checkpoint or restart operation. *)
type op_info = {
  mutable started : float;
  mutable finished : float;
  mutable images : (int * string) list;  (** (node, image path) *)
  mutable total_compressed : int;
  mutable total_uncompressed : int;
  mutable nprocs : int;
}

type t

(** [install cluster ~options ()] registers the wrapper hooks in every
    kernel and makes this runtime {!active}.  Use {!Api.install}, which
    also registers the DMTCP programs in the program registry. *)
val install : Simos.Cluster.t -> ?options:Options.t -> unit -> t

(** The runtime of the most recently installed cluster. Raises [Failure]
    if none. *)
val active : unit -> t

(** Same, as an option ({!Dmtcpaware} must degrade gracefully outside
    DMTCP). *)
val active_rt_for_aware : t option ref

val cluster : t -> Simos.Cluster.t
val options : t -> Options.t
val kernel_of : t -> node:int -> Simos.Kernel.t
val proc_of : t -> node:int -> pid:int -> Simos.Kernel.process option
val pstate_of : t -> node:int -> pid:int -> pstate option

(** All live checkpointed processes, as (node, pid, pstate). *)
val hijacked_processes : t -> (int * int * pstate) list

(** {2 Connection bookkeeping (used by the manager during drain)} *)

(** Resolve the DMTCP state of the peer endpoint of a connected socket:
    [Some (pstate, entry)] if the peer is itself under checkpoint
    control. *)
val peer_entry : t -> Simnet.Fabric.socket -> (pstate * Conn_table.entry) option

(** Register/lookup of endpoint ownership, (socket id) -> ((node,pid), fd). *)
val register_sock_owner : t -> sock_id:int -> node:int -> pid:int -> fd:int -> unit

(** {2 Virtual pids} *)

val vpid_taken : t -> int -> bool
val claim_vpid : t -> vpid:int -> node:int -> pid:int -> unit
val release_vpid : t -> vpid:int -> unit

(** Current (node, real pid) for a virtual pid. *)
val resolve_vpid : t -> int -> (int * int) option

(** {2 Stage statistics and operation records} *)

val record_stage : t -> string -> float -> unit
val stage_stats : t -> (string * Util.Stats.t) list
val reset_stage_stats : t -> unit

(** Every operation record below is scoped to a coordinator {e domain},
    keyed by coordinator port ([?port]; defaults to the installed
    options' [coord_port]).  The scheduler runs one coordinator per job
    at its own port, so concurrent checkpoint/restart ops on disjoint
    jobs keep independent since-guards, refill barriers and round
    counters.  Domains are keyed by port alone because a restart may
    migrate a job's coordinator to a new host while the port stays
    fixed. *)

val ckpt_info : ?port:int -> t -> op_info

(** The most recent checkpoint that finished with at least one image —
    what a restart script should be built from (an interval checkpoint
    may be mid-flight at any given moment). *)
val last_completed_ckpt : ?port:int -> t -> op_info option

val restart_info : ?port:int -> t -> op_info

(** Called by the coordinator when it broadcasts a checkpoint request /
    releases the final barrier. *)
val note_ckpt_start : ?port:int -> t -> unit

val note_ckpt_end : ?port:int -> t -> unit

(** Checkpoint rounds ever started in this domain (monotone; a round
    counts from [note_ckpt_start]).  Regression hook: coalescing a stop
    into an in-flight checkpoint must not start a second round. *)
val ckpt_rounds : ?port:int -> t -> int

val note_restart_start : ?port:int -> t -> unit

(** Called once per restart process as it resumes its host's processes. *)
val note_restart_end : ?port:int -> t -> unit

(** Number of restart processes expected / completed in the current wave. *)
val set_restart_expected : ?port:int -> t -> int -> unit

val restart_expected : ?port:int -> t -> int

(** Refill barrier between a domain's restart processes (restart
    re-enters the checkpoint algorithm at Barrier 5, paper §4.4). *)
val arrive_refill_barrier : ?port:int -> t -> unit

val refill_barrier_passed : ?port:int -> t -> bool

(** Drop DMTCP state for a process removed outside the exit path
    (vanished/migrated). *)
val forget_process : t -> node:int -> pid:int -> unit

(** Record a written image (also feeds the flat-file lifecycle ledger
    that {!prune_images} reaps). *)
val record_image :
  ?port:int -> t -> node:int -> path:string -> upid:Upid.t -> sizes:Mtcp.Image.sizes -> unit

(** Unlink image/conninfo files of [lineage]'s generations older than
    the newest [keep_generations] (no-op when that option is [0]).
    Called by the manager once a checkpoint write completes.  Pinned
    generations ({!pin_lineage}) are exempt. *)
val prune_images : t -> lineage:string -> unit

(** [pin_lineage t ~lineage ~generation] protects [lineage]'s images at
    [generation] or newer from {!prune_images} and (when a store is
    installed) from store GC.  The scheduler pins the newest checkpoint
    of every preempted/requeued job: pid reuse can hand the same lineage
    to a new job whose checkpoints would otherwise age the preempted
    job's only restart image out of retention.  Re-pinning replaces the
    previous pin. *)
val pin_lineage : t -> lineage:string -> generation:int -> unit

val unpin_lineage : t -> lineage:string -> unit

(** Current pins as (lineage, generation), sorted. *)
val pinned_lineages : t -> (string * int) list

(** The replicated content-addressed checkpoint store, when
    [options.store] enabled it at install time. *)
val store : t -> Store.t option

(** Number of barriers in the checkpoint protocol (paper: six global
    barriers; the release of the last one resumes user threads). *)
val nbarriers : int

(** {2 Restart support} *)

val generation : t -> int
val bump_generation : t -> unit

(** Shared-memory segment registry for the current restart wave, scoped
    per coordinator domain: backing path -> restored page array. *)
val shm_lookup : ?port:int -> t -> string -> Mem.Page.content array option

val shm_register : ?port:int -> t -> string -> Mem.Page.content array -> unit

(** Drop the domain's segment registrations (other domains' concurrent
    restart waves are untouched). *)
val shm_reset : ?port:int -> t -> unit

(** Register a restored process's DMTCP state (restart path). *)
val register_pstate : t -> node:int -> pid:int -> pstate -> unit

(** {2 dmtcpaware support} *)

val enter_critical : t -> node:int -> pid:int -> unit
val leave_critical : t -> node:int -> pid:int -> unit

(** {2 Manager helpers} *)

(** Create a conn-table entry for a socketpair end (pipe promotion and
    socketpair wrapper). *)
val promote_pipe : t -> Simos.Kernel.t -> Simos.Kernel.process -> (int * int) option

(** Write the per-process connection table to disk (drain stage; small
    file next to the images). *)
val write_conn_table : t -> Simos.Kernel.t -> Simos.Kernel.process -> unit
