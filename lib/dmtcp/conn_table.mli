(** The per-process connection information table (paper §4.3 step 4,
    §4.4).

    Wrappers populate it as sockets are created; the drain stage completes
    it with the peer handshake and the drained byte stash; it is written
    into the checkpoint image and drives socket re-creation at restart. *)

type role =
  | Connector
  | Acceptor
  | Pair_a  (** socketpair / promoted-pipe end created first *)
  | Pair_b

type sock_kind = Tcp | Unixsock | Pair

type entry = {
  mutable conn_id : Conn_id.t;
      (** both ends converge on the connector's ID at handshake time *)
  mutable role : role;
  kind : sock_kind;
  desc_id : int;  (** physical open-file-description id (sharing key) *)
  mutable drained : string;     (** bytes drained from our receive side *)
  mutable eof : bool;
      (** the peer closed before the checkpoint: the stream ends (EOF)
          right after [drained] *)
  mutable saved_owner : int;    (** F_SETOWN value to restore after refill *)
}

type t

val create : unit -> t

(** Keyed by fd. One desc may appear under several fds (dup). *)
val add : t -> fd:int -> entry -> unit

val find : t -> fd:int -> entry option
val remove : t -> fd:int -> unit

(** All (fd, entry) pairs, ascending fd. *)
val entries : t -> (int * entry) list

(** Entries deduplicated by [desc_id] (election/drain iterate these). *)
val unique_descs : t -> (int * entry) list

(** Copy for a forked child (entries share conn ids but stashes are
    per-process). *)
val clone : t -> t

val encode_entry : Util.Codec.Writer.t -> entry -> unit
val decode_entry : Util.Codec.Reader.t -> entry
val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
