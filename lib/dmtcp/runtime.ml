type pstate = {
  mutable upid : Upid.t;
  mutable vpid : int;
  mutable conns : Conn_table.t;
  mutable conn_seq : int;
  mutable critical : int;
  pty_drains : (int, string * string) Hashtbl.t;
  mutable prev_space : Mem.Address_space.t option;
      (** snapshot at the previous checkpoint (incremental mode) *)
  mutable delta_prev : (string * int) option;
      (** previous checkpoint's image name and chain depth (0 = full):
          the base the next incremental checkpoint deltas against *)
  mutable ckpt_seq : int;
      (** per-process checkpoint counter; incremental mode suffixes the
          image filename with it so a delta's base is never overwritten *)
  mutable forked_pending : bool;
      (** a forked background write is still in flight; the next
          checkpoint's fork waits for it (one outstanding child) *)
}

type op_info = {
  mutable started : float;
  mutable finished : float;
  mutable images : (int * string) list;
  mutable total_compressed : int;
  mutable total_uncompressed : int;
  mutable nprocs : int;
}

let fresh_op () =
  { started = 0.; finished = 0.; images = []; total_compressed = 0; total_uncompressed = 0; nprocs = 0 }

(* One written image file per (lineage, generation): what the legacy
   flat-file reaper unlinks once the generation ages out of retention. *)
type image_record = {
  ir_generation : int;
  ir_node : int;
  ir_path : string;
  ir_upid : string;
}

(* Per-coordinator-domain operation records.  Each job-scoped
   coordinator (one per scheduler job, at its own port) tracks its own
   checkpoint/restart rounds so concurrent ops on disjoint jobs never
   clobber each other's since-guards.  Keyed by coordinator *port*
   alone: a restart may migrate the coordinator to a new host, but the
   port is stable per computation. *)
type domain = {
  mutable d_ckpt : op_info;
  mutable d_last : op_info option;
  mutable d_restart : op_info;
  mutable d_expected : int;
  mutable d_refill : int;
  mutable d_rounds : int;  (* checkpoint rounds started, ever *)
}

type t = {
  cl : Simos.Cluster.t;
  opts : Options.t;
  procs : (int * int, pstate) Hashtbl.t;
  sock_owner : (int, (int * int) * int) Hashtbl.t;
  vpids : (int, int * int) Hashtbl.t;
  stages : (string, Util.Stats.t) Hashtbl.t;
  domains : (int, domain) Hashtbl.t;  (* coordinator port -> records *)
  mutable gen : int;
  shm : (int * string, Mem.Page.content array) Hashtbl.t;
      (* (coordinator port, backing path) -> restored pages *)
  store : Store.t option;
  lineage_images : (string, image_record list) Hashtbl.t;
  pinned : (string, int) Hashtbl.t;  (* lineage -> generation retention must keep *)
}

let nbarriers = 5

let active_rt : t option ref = ref None

(* alias for Dmtcpaware, which must not fail when no runtime exists *)
let active_rt_for_aware = active_rt

let active () =
  match !active_rt with
  | Some rt -> rt
  | None -> failwith "Dmtcp.Runtime.active: no runtime installed"

let cluster t = t.cl
let options t = t.opts
let kernel_of t ~node = Simos.Cluster.kernel t.cl node
let proc_of t ~node ~pid = Simos.Kernel.find_process (kernel_of t ~node) ~pid
let pstate_of t ~node ~pid = Hashtbl.find_opt t.procs (node, pid)

let hijacked_processes t =
  Hashtbl.fold
    (fun (node, pid) ps acc ->
      match proc_of t ~node ~pid with
      | Some p when p.Simos.Kernel.pstate = Simos.Kernel.Running -> (node, pid, ps) :: acc
      | _ -> acc)
    t.procs []
  |> List.sort compare

let register_sock_owner t ~sock_id ~node ~pid ~fd = Hashtbl.replace t.sock_owner sock_id ((node, pid), fd)

let peer_entry t sock =
  match Simnet.Fabric.peer_id sock with
  | None -> None
  | Some peer_sock_id -> (
    match Hashtbl.find_opt t.sock_owner peer_sock_id with
    | None -> None
    | Some ((node, pid), fd) -> (
      match pstate_of t ~node ~pid with
      | None -> None
      | Some ps -> (
        match Conn_table.find ps.conns ~fd with
        | Some e -> Some (ps, e)
        | None -> None)))

let vpid_taken t vpid = Hashtbl.mem t.vpids vpid
let claim_vpid t ~vpid ~node ~pid = Hashtbl.replace t.vpids vpid (node, pid)
let release_vpid t ~vpid = Hashtbl.remove t.vpids vpid
let resolve_vpid t vpid = Hashtbl.find_opt t.vpids vpid

let record_stage t name v =
  let s =
    match Hashtbl.find_opt t.stages name with
    | Some s -> s
    | None ->
      let s = Util.Stats.create () in
      Hashtbl.add t.stages name s;
      s
  in
  Util.Stats.add s v;
  (* single emission point for protocol stage spans: Table 1 and the trace
     CLI both read these, so they agree by construction *)
  if Trace.on () then
    let now = Simos.Cluster.now t.cl in
    Trace.span ~cat:"dmtcp" ~name ~time:(now -. v) ~dur:v ()

let stage_stats t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stages [] |> List.sort compare
let reset_stage_stats t = Hashtbl.reset t.stages

let fresh_domain () =
  {
    d_ckpt = fresh_op ();
    d_last = None;
    d_restart = fresh_op ();
    d_expected = 0;
    d_refill = 0;
    d_rounds = 0;
  }

let port_of ?port t =
  match port with
  | Some p -> p
  | None -> t.opts.Options.coord_port

let dom ?port t =
  let p = port_of ?port t in
  match Hashtbl.find_opt t.domains p with
  | Some d -> d
  | None ->
    let d = fresh_domain () in
    Hashtbl.add t.domains p d;
    d

let ckpt_info ?port t = (dom ?port t).d_ckpt
let restart_info ?port t = (dom ?port t).d_restart

let note_ckpt_start ?port t =
  let d = dom ?port t in
  d.d_ckpt <- fresh_op ();
  d.d_ckpt.started <- Simos.Cluster.now t.cl;
  d.d_rounds <- d.d_rounds + 1

let note_ckpt_end ?port t =
  let d = dom ?port t in
  d.d_ckpt.finished <- Simos.Cluster.now t.cl;
  if d.d_ckpt.nprocs > 0 then d.d_last <- Some d.d_ckpt

let last_completed_ckpt ?port t = (dom ?port t).d_last
let ckpt_rounds ?port t = (dom ?port t).d_rounds

let note_restart_start ?port t =
  let d = dom ?port t in
  d.d_restart <- fresh_op ();
  d.d_refill <- 0;
  d.d_restart.started <- Simos.Cluster.now t.cl

let note_restart_end ?port t =
  let d = dom ?port t in
  d.d_restart.finished <- max d.d_restart.finished (Simos.Cluster.now t.cl);
  d.d_restart.nprocs <- d.d_restart.nprocs + 1

let set_restart_expected ?port t n = (dom ?port t).d_expected <- n
let restart_expected ?port t = (dom ?port t).d_expected

(* Restart reuses the checkpoint algorithm's global barrier between
   refill and resume (paper §4.4 step 5 resumes "at Barrier 5"): no
   restart process may resume user threads until every restart process
   has refilled its kernel buffers, or fresh traffic could overtake the
   refilled bytes.  Scoped per coordinator domain so concurrent restart
   waves of different jobs never count each other's arrivals. *)
let arrive_refill_barrier ?port t =
  let d = dom ?port t in
  d.d_refill <- d.d_refill + 1

let refill_barrier_passed ?port t =
  let d = dom ?port t in
  d.d_expected > 0 && d.d_refill >= d.d_expected

let forget_process t ~node ~pid =
  match Hashtbl.find_opt t.procs (node, pid) with
  | None -> ()
  | Some ps ->
    release_vpid t ~vpid:ps.vpid;
    Hashtbl.remove t.procs (node, pid)

let store t = t.store

let record_image ?port t ~node ~path ~upid ~sizes =
  let d = dom ?port t in
  d.d_ckpt.images <- (node, path) :: d.d_ckpt.images;
  d.d_ckpt.total_compressed <- d.d_ckpt.total_compressed + sizes.Mtcp.Image.compressed;
  d.d_ckpt.total_uncompressed <- d.d_ckpt.total_uncompressed + sizes.Mtcp.Image.uncompressed;
  d.d_ckpt.nprocs <- d.d_ckpt.nprocs + 1;
  (* lifecycle ledger: same-generation interval checkpoints overwrite
     their file in place, so one record per (lineage, generation) *)
  let lineage = Upid.lineage upid in
  let gen = upid.Upid.generation in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.lineage_images lineage) in
  if not (List.exists (fun r -> r.ir_generation = gen && r.ir_path = path && r.ir_node = node) existing)
  then
    Hashtbl.replace t.lineage_images lineage
      ({ ir_generation = gen; ir_node = node; ir_path = path; ir_upid = Upid.to_string upid }
      :: existing)

(* Legacy flat-file retention: unlink image and conninfo files of
   generations older than the newest [keep_generations] of a lineage.
   Without this, every restart leaves the previous generation's files on
   its target forever and long interval-checkpointed runs grow target
   usage without bound.  Under the store, images live in the catalog
   (its GC applies) but the per-upid conninfo files still age out here. *)
let prune_images t ~lineage =
  let keep = t.opts.Options.keep_generations in
  if keep > 0 then
    match Hashtbl.find_opt t.lineage_images lineage with
    | None -> ()
    | Some records ->
      let gens =
        List.map (fun r -> r.ir_generation) records |> List.sort_uniq compare |> List.rev
      in
      (match List.nth_opt gens (keep - 1) with
      | None -> ()
      | Some oldest_kept ->
        (* a pinned generation (scheduler holds it as a preempted job's
           only restart image) is exempt even when pid reuse has piled a
           newer job's generations onto this lineage *)
        let protected_ r =
          match Hashtbl.find_opt t.pinned lineage with
          | Some g -> r.ir_generation >= g
          | None -> false
        in
        let doomed, kept =
          List.partition (fun r -> r.ir_generation < oldest_kept && not (protected_ r)) records
        in
        List.iter
          (fun r ->
            let vfs = Simos.Kernel.vfs (kernel_of t ~node:r.ir_node) in
            ignore (Simos.Vfs.unlink vfs r.ir_path);
            let conninfo =
              Printf.sprintf "%s/conninfo_%s.tbl" t.opts.Options.ckpt_dir r.ir_upid
            in
            ignore (Simos.Vfs.unlink vfs conninfo))
          doomed;
        if doomed <> [] then Hashtbl.replace t.lineage_images lineage kept)

(* Retention pins, forwarded to the store when one is installed: the
   scheduler pins a preempted/requeued job's newest checkpoint so neither
   the per-checkpoint reaper above nor a store GC can collect the only
   image the job can restart from. *)
let pin_lineage t ~lineage ~generation =
  Hashtbl.replace t.pinned lineage generation;
  match t.store with
  | Some s -> Store.pin s ~lineage ~generation
  | None -> ()

let unpin_lineage t ~lineage =
  Hashtbl.remove t.pinned lineage;
  match t.store with
  | Some s -> Store.unpin s ~lineage
  | None -> ()

let pinned_lineages t =
  Hashtbl.fold (fun l g acc -> (l, g) :: acc) t.pinned [] |> List.sort compare

let generation t = t.gen
let bump_generation t = t.gen <- t.gen + 1
let shm_lookup ?port t path = Hashtbl.find_opt t.shm (port_of ?port t, path)
let shm_register ?port t path pages = Hashtbl.replace t.shm (port_of ?port t, path) pages

let shm_reset ?port t =
  let p = port_of ?port t in
  Hashtbl.filter_map_inplace (fun (q, _) v -> if q = p then None else Some v) t.shm

let with_pstate t ~node ~pid f =
  match pstate_of t ~node ~pid with
  | Some ps -> f ps
  | None -> ()

let register_pstate t ~node ~pid ps = Hashtbl.replace t.procs (node, pid) ps

let enter_critical t ~node ~pid = with_pstate t ~node ~pid (fun ps -> ps.critical <- ps.critical + 1)
let leave_critical t ~node ~pid =
  with_pstate t ~node ~pid (fun ps -> ps.critical <- max 0 (ps.critical - 1))

(* ------------------------------------------------------------------ *)
(* Wrapper (hook) implementations *)

let fresh_conn_id t ~node ~pid ps =
  let seq = ps.conn_seq in
  ps.conn_seq <- seq + 1;
  Conn_id.make ~hostid:node ~pid ~timestamp:(Simos.Cluster.now t.cl) ~seq

let make_pstate t ~node ~pid =
  {
    upid = Upid.make ~hostid:node ~pid ~generation:t.gen;
    vpid = pid;
    conns = Conn_table.create ();
    conn_seq = 0;
    critical = 0;
    pty_drains = Hashtbl.create 4;
    prev_space = None;
    delta_prev = None;
    ckpt_seq = 0;
    forked_pending = false;
  }

let manager_prog = "dmtcp:mgr"

let spawn_manager k proc =
  let inst = Simos.Program.instantiate ~name:manager_prog ~argv:[] in
  ignore (Simos.Kernel.add_thread k proc ~inst ~manager:true ())

let has_live_manager (proc : Simos.Kernel.process) =
  List.exists
    (fun (th : Simos.Kernel.thread) ->
      th.Simos.Kernel.manager && th.Simos.Kernel.tstate <> Simos.Kernel.Dead)
    proc.Simos.Kernel.threads

let on_spawn t k (proc : Simos.Kernel.process) =
  let node = Simos.Kernel.node_id k in
  let pid = proc.Simos.Kernel.pid in
  (match pstate_of t ~node ~pid with
  | Some _ -> ()  (* exec of an already-tracked process *)
  | None ->
    let ps = make_pstate t ~node ~pid in
    Hashtbl.replace t.procs (node, pid) ps;
    claim_vpid t ~vpid:ps.vpid ~node ~pid);
  if not (has_live_manager proc) then spawn_manager k proc

let rec on_fork t k ~(parent : Simos.Kernel.process) ~(child : Simos.Kernel.process) =
  let node = Simos.Kernel.node_id k in
  (* Virtual-pid conflict (paper §4.5): the fresh child's virtual pid is
     its real pid; if a restored process already holds that vpid,
     terminate the child and fork again. *)
  if vpid_taken t child.Simos.Kernel.pid then begin
    let child' = Simos.Kernel.refork k ~child in
    on_fork t k ~parent ~child:child'
  end
  else begin
    let pid = child.Simos.Kernel.pid in
    let parent_ps = pstate_of t ~node ~pid:parent.Simos.Kernel.pid in
    let ps = make_pstate t ~node ~pid in
    (match parent_ps with
    | Some pps -> ps.conns <- Conn_table.clone pps.conns
    | None -> ());
    Hashtbl.replace t.procs (node, pid) ps;
    claim_vpid t ~vpid:pid ~node ~pid;
    if not (has_live_manager child) then spawn_manager k child
  end

let sock_of_desc (desc : Simos.Fdesc.t) =
  match desc.Simos.Fdesc.kind with
  | Simos.Fdesc.Sock s -> Some s
  | _ -> None

let on_socket t k (proc : Simos.Kernel.process) ~fd (desc : Simos.Fdesc.t) =
  match sock_of_desc desc with
  | None -> ()
  | Some s ->
    let node = Simos.Kernel.node_id k in
    let pid = proc.Simos.Kernel.pid in
    with_pstate t ~node ~pid (fun ps ->
        let kind = if Simnet.Fabric.is_unix s then Conn_table.Unixsock else Conn_table.Tcp in
        let entry =
          {
            Conn_table.conn_id = fresh_conn_id t ~node ~pid ps;
            role = Conn_table.Connector;
            kind;
            desc_id = desc.Simos.Fdesc.desc_id;
            drained = "";
            eof = false;
            saved_owner = 0;
          }
        in
        Conn_table.add ps.conns ~fd entry;
        register_sock_owner t ~sock_id:(Simnet.Fabric.id s) ~node ~pid ~fd)

let on_connect t k (proc : Simos.Kernel.process) ~fd (desc : Simos.Fdesc.t) =
  ignore k;
  ignore fd;
  ignore t;
  ignore proc;
  ignore desc
(* role already defaults to Connector; the acceptor adopts our conn id in
   its accept wrapper *)

let on_accept t k (proc : Simos.Kernel.process) ~fd (desc : Simos.Fdesc.t) =
  match sock_of_desc desc with
  | None -> ()
  | Some s ->
    let node = Simos.Kernel.node_id k in
    let pid = proc.Simos.Kernel.pid in
    with_pstate t ~node ~pid (fun ps ->
        let kind = if Simnet.Fabric.is_unix s then Conn_table.Unixsock else Conn_table.Tcp in
        let entry =
          {
            Conn_table.conn_id = fresh_conn_id t ~node ~pid ps;
            role = Conn_table.Acceptor;
            kind;
            desc_id = desc.Simos.Fdesc.desc_id;
            drained = "";
            eof = false;
            saved_owner = 0;
          }
        in
        register_sock_owner t ~sock_id:(Simnet.Fabric.id s) ~node ~pid ~fd;
        (* the connect/accept wrappers transfer the connector's globally
           unique ID to the acceptor (paper §4.4 step 2) *)
        (match peer_entry t s with
        | Some (_, peer) -> entry.Conn_table.conn_id <- peer.Conn_table.conn_id
        | None -> ());
        Conn_table.add ps.conns ~fd entry)

let promote_pipe t k (proc : Simos.Kernel.process) =
  let node = Simos.Kernel.node_id k in
  let pid = proc.Simos.Kernel.pid in
  match pstate_of t ~node ~pid with
  | None -> None
  | Some ps ->
    (* The pipe wrapper promotes pipes into socketpairs (paper §4.5) so
       the drain/refill machinery and cross-host restart apply. *)
    let a, b = Simnet.Fabric.socketpair (Simos.Kernel.fabric k) ~host:node in
    let desc_a = Simos.Fdesc.make (Simos.Fdesc.Sock a) in
    let desc_b = Simos.Fdesc.make (Simos.Fdesc.Sock b) in
    let rfd = Simos.Kernel.alloc_fd k proc desc_a in
    let wfd = Simos.Kernel.alloc_fd k proc desc_b in
    let conn_id = fresh_conn_id t ~node ~pid ps in
    let entry role desc_id =
      {
        Conn_table.conn_id;
        role;
        kind = Conn_table.Pair;
        desc_id;
        drained = "";
        eof = false;
        saved_owner = 0;
      }
    in
    Conn_table.add ps.conns ~fd:rfd (entry Conn_table.Pair_a desc_a.Simos.Fdesc.desc_id);
    Conn_table.add ps.conns ~fd:wfd (entry Conn_table.Pair_b desc_b.Simos.Fdesc.desc_id);
    register_sock_owner t ~sock_id:(Simnet.Fabric.id a) ~node ~pid ~fd:rfd;
    register_sock_owner t ~sock_id:(Simnet.Fabric.id b) ~node ~pid ~fd:wfd;
    Some (rfd, wfd)

let on_exit t k (proc : Simos.Kernel.process) =
  let node = Simos.Kernel.node_id k in
  let pid = proc.Simos.Kernel.pid in
  match pstate_of t ~node ~pid with
  | None -> ()
  | Some ps ->
    release_vpid t ~vpid:ps.vpid;
    Hashtbl.remove t.procs (node, pid)

let write_conn_table t k (proc : Simos.Kernel.process) =
  let node = Simos.Kernel.node_id k in
  let pid = proc.Simos.Kernel.pid in
  with_pstate t ~node ~pid (fun ps ->
      let w = Util.Codec.Writer.create () in
      Conn_table.encode w ps.conns;
      let path = Printf.sprintf "%s/conninfo_%s.tbl" t.opts.Options.ckpt_dir (Upid.to_string ps.upid) in
      let f = Simos.Vfs.open_or_create (Simos.Kernel.vfs k) path in
      Simos.Vfs.truncate f;
      Simos.Vfs.append f (Util.Codec.Writer.contents w))

(* Close wrapper: an fd-table slot with a connection entry is going
   away, so the entry must not linger (a stale entry is a dangling
   socket id in the conninfo table).  If the closing fd is the
   registered endpoint owner, hand ownership to another checkpointed
   process still holding the same open-file description (fork shares
   socketpair ends); drop the registration when nobody is left. *)
let on_close t k (proc : Simos.Kernel.process) ~fd (desc : Simos.Fdesc.t) =
  let node = Simos.Kernel.node_id k in
  let pid = proc.Simos.Kernel.pid in
  match pstate_of t ~node ~pid with
  | None -> ()
  | Some ps ->
    Conn_table.remove ps.conns ~fd;
    (match sock_of_desc desc with
    | None -> ()
    | Some s -> (
      let sock_id = Simnet.Fabric.id s in
      match Hashtbl.find_opt t.sock_owner sock_id with
      | Some ((onode, opid), ofd) when onode = node && opid = pid && ofd = fd -> (
        let heir =
          List.find_map
            (fun (n2, p2, ps2) ->
              if n2 = node && p2 = pid then None
              else
                match proc_of t ~node:n2 ~pid:p2 with
                | None -> None
                | Some proc2 ->
                  Hashtbl.fold
                    (fun fd2 (desc2 : Simos.Fdesc.t) acc ->
                      match acc with
                      | Some _ -> acc
                      | None ->
                        if
                          desc2.Simos.Fdesc.desc_id = desc.Simos.Fdesc.desc_id
                          && Conn_table.find ps2.conns ~fd:fd2 <> None
                        then Some (n2, p2, fd2)
                        else None)
                    proc2.Simos.Kernel.fdtable None)
            (hijacked_processes t)
        in
        match heir with
        | Some (n2, p2, f2) -> register_sock_owner t ~sock_id ~node:n2 ~pid:p2 ~fd:f2
        | None -> Hashtbl.remove t.sock_owner sock_id)
      | _ -> ()))

let make_hooks t : Simos.Kernel.hooks =
  {
    Simos.Kernel.on_spawn = (fun k proc -> on_spawn t k proc);
    on_fork = (fun k ~parent ~child -> on_fork t k ~parent ~child);
    on_exec = (fun _ _ ~prog ~argv -> (prog, argv));
    on_ssh = (fun _ _ ~host:_ ~prog ~argv -> (prog, argv));
    on_socket = (fun k proc ~fd desc -> on_socket t k proc ~fd desc);
    on_connect = (fun k proc ~fd desc -> on_connect t k proc ~fd desc);
    on_accept = (fun k proc ~fd desc -> on_accept t k proc ~fd desc);
    on_pipe = (fun k proc -> promote_pipe t k proc);
    on_close = (fun k proc ~fd desc -> on_close t k proc ~fd desc);
    on_exit = (fun k proc -> on_exit t k proc);
  }

let install cl ?(options = Options.default) () =
  let store =
    if options.Options.store then
      Some
        (Store.create ~replicas:options.Options.store_replicas
           ?quorum:
             (if options.Options.store_quorum > 0 then Some options.Options.store_quorum else None)
           ~keep:options.Options.keep_generations ~engine:(Simos.Cluster.engine cl)
           ~targets:(Array.init (Simos.Cluster.nodes cl) (Simos.Cluster.target cl))
           ())
    else None
  in
  let t =
    {
      cl;
      opts = options;
      procs = Hashtbl.create 64;
      sock_owner = Hashtbl.create 128;
      vpids = Hashtbl.create 64;
      stages = Hashtbl.create 16;
      domains = Hashtbl.create 8;
      gen = 0;
      shm = Hashtbl.create 8;
      store;
      lineage_images = Hashtbl.create 16;
      pinned = Hashtbl.create 8;
    }
  in
  Simos.Cluster.set_hooks cl (make_hooks t);
  (* plugin subsystem: register the built-ins, cache the per-plugin
     knobs and apply the enabled set — once per install, the same way
     the coordinator caches its options at boot.  Unknown names in
     DMTCP_PLUGINS raise here, before any computation starts. *)
  Plugins.ensure_registered ();
  Plugins.configure options;
  Plugin.set_enabled options.Options.plugins;
  Plugin.reset_counts ();
  active_rt := Some t;
  t
