(* Built-in plugins: the paper's "open world" heuristics as first-class
   plugins on the {!Plugin} event API (SNIPPETS.md §2; real DMTCP grew
   the same heuristics into its plugin event model).

   - [ext-sock]        dead sockets for connections whose peer is gone
                       (migrated from the old inline special case in
                       restart.ml's discovery deadline path)
   - [blacklist-ports] connections to well-known service ports (DNS 53,
                       LDAP 389/636) are never drained and come back as
                       dead sockets, so the app's resolver library
                       reconnects instead of the checkpointer hanging on
                       an uncontrolled peer
   - [proc-fd]         open fds on /proc/<pid>/* re-pointed at the
                       restarted pid via the VFS path-rewrite hook
   - [ext-shm]         shared memory backed by an external service's
                       file (NSCD-style) is zeroed in the written image;
                       the app detects the zeroed region and degrades

   Registration order here is the dispatch order everywhere. *)

(* Per-plugin knobs, cached once per runtime install from the same
   Options record the coordinator caches at boot. *)
let cfg = ref Options.default
let configure opts = cfg := opts

let dead_socket kernel =
  let fab = Simos.Kernel.fabric kernel in
  let s = Simnet.Fabric.socket fab ~host:(Simos.Kernel.node_id kernel) in
  s

(* ------------------------------------------------------------------ *)
(* ext-sock: unresolved connections get a fresh dead socket so reads
   return EOF/ECONNRESET instead of blocking forever (paper §4.4's
   answer to peers outside the checkpointed world). *)

let ext_sock =
  {
    Plugin.p_name = "ext-sock";
    p_doc = "dead sockets for connections whose peer was not checkpointed";
    p_hooks =
      [
        ( Events.site_restart_discovery,
          fun payload ->
            match payload with
            | Events.Restart_discovery p when p.desc = None ->
              let s = dead_socket p.kernel in
              (* a stream that had already ended keeps its EOF *)
              if p.eof then Simnet.Fabric.inject_eof s;
              p.desc <- Some (Simos.Fdesc.make (Simos.Fdesc.Sock s))
            | _ -> () );
      ];
  }

(* ------------------------------------------------------------------ *)
(* blacklist-ports *)

(* a connection is blacklisted if *either* endpoint sits on a listed
   port: the client names the service port as its peer, the accepted
   server socket as its local address *)
let blacklisted s =
  let listed = function
    | Some (Simnet.Addr.Inet { port; _ }) -> List.mem port !cfg.Options.blacklist_ports
    | _ -> false
  in
  listed (Simnet.Fabric.peer_addr s) || listed (Simnet.Fabric.local_addr s)

let blacklist_ports =
  {
    Plugin.p_name = "blacklist-ports";
    p_doc = "skip draining service ports (DNS/LDAP); dead sockets on restart";
    p_hooks =
      [
        ( Events.site_drain_select,
          fun payload ->
            match payload with
            | Events.Drain_select p when blacklisted p.sock -> p.skip <- true
            | _ -> () );
        ( Events.site_fd_capture,
          fun payload ->
            match payload with
            | Events.Fd_capture p -> (
              (* demote the established connection to S_other in the
                 image: restart recreates it as a fresh dead socket and
                 skips peer discovery for it entirely.  [eof = true] so
                 the recreated socket carries an injected EOF — a reader
                 blocked on the old connection wakes with EOF and the
                 resolver library reconnects, instead of hanging on a
                 socket that will never become readable *)
              match (p.desc.Simos.Fdesc.kind, p.info) with
              | ( Simos.Fdesc.Sock s,
                  Some
                    (Ckpt_image.FSock
                      ({ state = Ckpt_image.S_established; _ } as fs)) )
                when blacklisted s ->
                p.info <-
                  Some
                    (Ckpt_image.FSock
                       {
                         fs with
                         state = Ckpt_image.S_other;
                         drained = "";
                         eof = true;
                       })
              | _ -> () )
            | _ -> () );
      ];
  }

(* ------------------------------------------------------------------ *)
(* proc-fd: /proc/<old pid>/... re-pointed at the restarted pid.  The
   VFS path-rewrite hook keeps the pid-naming convention out of the
   checkpoint core: the plugin rewrites the prefix, the core never
   learns what /proc paths mean. *)

let proc_fd =
  {
    Plugin.p_name = "proc-fd";
    p_doc = "re-point /proc/<pid>/* fds at the restarted pid";
    p_hooks =
      [
        ( Events.site_restart_rearrange,
          fun payload ->
            match payload with
            | Events.Restart_rearrange p ->
              let old_prefix =
                Printf.sprintf "/proc/%d/" p.image.Ckpt_image.upid.Upid.pid
              in
              let new_prefix =
                Printf.sprintf "/proc/%d/" p.proc.Simos.Kernel.pid
              in
              let vfs = Simos.Kernel.vfs p.kernel in
              List.iter
                (fun (fd, _, info) ->
                  match info with
                  | Ckpt_image.FFile { path; _ }
                    when String.starts_with ~prefix:old_prefix path ->
                    Simos.Vfs.with_rewrite vfs
                      (fun pth ->
                        if String.starts_with ~prefix:old_prefix pth then
                          new_prefix
                          ^ String.sub pth (String.length old_prefix)
                              (String.length pth - String.length old_prefix)
                        else pth)
                      (fun () ->
                        let file = Simos.Vfs.open_or_create vfs path in
                        let desc =
                          Simos.Fdesc.make (Simos.Fdesc.File { file; offset = 0 })
                        in
                        Simos.Kernel.remove_fd p.kernel p.proc ~fd;
                        Simos.Fdesc.incr_ref desc;
                        Simos.Kernel.install_fd p.kernel p.proc ~fd desc)
                  | _ -> ())
                p.image.Ckpt_image.fds
            | _ -> () );
      ];
  }

(* ------------------------------------------------------------------ *)
(* ext-shm: zero external-service shared segments in the written image.
   The captured space aliases the live pages for shared mappings, so the
   zeroing must substitute a fresh page array into the snapshot — never
   write through the alias into the running service's memory. *)

let ext_shm =
  {
    Plugin.p_name = "ext-shm";
    p_doc = "zero external-service shared memory in the image (NSCD-style)";
    p_hooks =
      [
        ( Events.site_image_write,
          fun payload ->
            match payload with
            | Events.Image_write p ->
              let space = p.image.Mtcp.Image.space in
              List.iter
                (fun (r : Mem.Region.t) ->
                  match r.Mem.Region.kind with
                  | Mem.Region.Mmap_shared { backing_path }
                    when String.starts_with ~prefix:!cfg.Options.ext_shm_prefix
                           backing_path ->
                    Mem.Address_space.substitute_pages space
                      ~region_id:r.Mem.Region.id
                      (Array.make (Mem.Region.npages r) Mem.Page.Zero)
                  | _ -> ())
                (Mem.Address_space.regions space)
            | _ -> () );
      ];
  }

(* ------------------------------------------------------------------ *)
(* mpi-proxy: the checkpoint side of the rank/proxy split.  A rank's
   only transport fd is its unix connection to the node's proxy daemon
   (path under [mpi_proxy_prefix]); the daemon is un-hijacked, so the
   connection must not be drained (the peer would never cooperate) and
   cannot be restored as live.  Instead it is captured as an
   immediately-dead socket — the rank's protocol treats EOF as "proxy
   gone, reconnect and resend unacked" — and restart relaunches the
   node's proxy, keyed off the MPI_PROXY environment marker the rank
   left behind, before the rank resumes. *)

let proxy_socket s =
  let under = function
    | Some (Simnet.Addr.Unix { path; _ }) ->
      String.starts_with ~prefix:!cfg.Options.mpi_proxy_prefix path
    | _ -> false
  in
  under (Simnet.Fabric.peer_addr s) || under (Simnet.Fabric.local_addr s)

let mpi_proxy =
  {
    Plugin.p_name = "mpi-proxy";
    p_doc = "rank/proxy split: skip proxy sockets, relaunch proxies on restart";
    p_hooks =
      [
        ( Events.site_drain_select,
          fun payload ->
            match payload with
            | Events.Drain_select p when proxy_socket p.sock -> p.skip <- true
            | _ -> () );
        ( Events.site_fd_capture,
          fun payload ->
            match payload with
            | Events.Fd_capture p -> (
              (* same demotion as blacklist-ports: restart recreates the
                 connection as a fresh dead socket with an injected EOF,
                 waking a rank blocked on the proxy so it reconnects *)
              match (p.desc.Simos.Fdesc.kind, p.info) with
              | ( Simos.Fdesc.Sock s,
                  Some
                    (Ckpt_image.FSock
                      ({ state = Ckpt_image.S_established; _ } as fs)) )
                when proxy_socket s ->
                p.info <-
                  Some
                    (Ckpt_image.FSock
                       {
                         fs with
                         state = Ckpt_image.S_other;
                         drained = "";
                         eof = true;
                       })
              | _ -> () )
            | _ -> () );
        ( Events.site_restart_rearrange,
          fun payload ->
            match payload with
            | Events.Restart_rearrange p -> (
              match List.assoc_opt "MPI_PROXY" p.proc.Simos.Kernel.env with
              | Some marker -> (
                match String.split_on_char ':' marker with
                | [ bp; rpn ] -> (
                  match (int_of_string_opt bp, int_of_string_opt rpn) with
                  | Some base_port, Some rpn ->
                    Proxy.Daemon.ensure p.kernel ~base_port ~rpn
                  | _ -> ())
                | _ -> ())
              | None -> ())
            | _ -> () );
      ];
  }

(* ------------------------------------------------------------------ *)

let ensure_registered () =
  (* fixed program-text order = dispatch order; re-registration is
     positionally stable, so calling this per install is safe *)
  Plugin.register ext_sock;
  Plugin.register blacklist_ports;
  Plugin.register proc_fd;
  Plugin.register ext_shm;
  Plugin.register mpi_proxy

(* every built-in on — what the heuristic scenarios and the trace
   --plugins harness enable *)
let all_names = [ "ext-sock"; "blacklist-ports"; "proc-fd"; "ext-shm"; "mpi-proxy" ]
