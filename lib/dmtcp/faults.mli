(** Stage-targeted fault-injection hooks for the checkpoint protocol.

    The manager reports entry into each of the paper's checkpoint stages
    (§4.3) and arrival at each coordinator barrier via {!notify}.  The
    chaos layer installs {!on_stage} to kill a victim at an exact
    protocol point or to assert stage invariants.  Observers must not
    destroy the notifying process synchronously; schedule destructive
    work at the current virtual time so the in-progress step retires
    cleanly. *)

type stage =
  | Suspend  (** user threads stopped (stage 2) *)
  | Elect  (** FD-leader election (stage 3) *)
  | Drain  (** socket drain begins (stage 4) *)
  | Write  (** image write begins; kernel buffers must be empty (stage 5) *)
  | Refill  (** drained data re-injected (stage 6) *)
  | Resume  (** user threads resuming (stage 7) *)
  | Barrier of int  (** arrival at coordinator barrier [k] *)

val stage_name : stage -> string

(** The protocol stages plus barriers [1..nbarriers]: every kill point. *)
val all_stages : nbarriers:int -> stage list

(** The no-op observer installed by default (and by {!reset}). *)
val default_observer : node:int -> pid:int -> stage -> unit

val on_stage : (node:int -> pid:int -> stage -> unit) ref
val notify : node:int -> pid:int -> stage -> unit

(** {2 Intentionally injected bugs}

    Used by chaos-harness self-tests to demonstrate that the invariant
    checkers catch protocol regressions.  Never set in production
    paths. *)

(** Skip the drain stage entirely: no flush tokens exchanged, nothing
    stashed — in-flight socket data is silently left out of the image. *)
val bug_skip_drain : bool ref

(** Drain normally but drop the stash at refill time instead of
    re-injecting it into kernel buffers. *)
val bug_drop_refill : bool ref

(** Restore the default observer and clear all bug flags. *)
val reset : unit -> unit
