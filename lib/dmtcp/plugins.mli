(** Built-in plugins: the paper's "open world" heuristics, implemented
    on the {!Plugin} event API (see DESIGN.md §8 for the hook catalog
    and the heuristics table). *)

(** Cache the per-plugin knobs (blacklisted ports, external-shm prefix)
    from an options record — called once per runtime install, mirroring
    how the coordinator caches its options at boot. *)
val configure : Options.t -> unit

(** Register the built-ins ([ext-sock], [blacklist-ports], [proc-fd],
    [ext-shm], [mpi-proxy]) in their fixed dispatch order.
    Idempotent. *)
val ensure_registered : unit -> unit

(** All built-in names, registration order — the set the heuristic
    chaos scenarios and [trace --plugins] enable. *)
val all_names : string list
