(** Bit-granular I/O for the Huffman coder. Bits are packed LSB-first
    within each byte, as in DEFLATE. *)

module Writer : sig
  type t

  val create : unit -> t

  (** [put t ~bits ~count] appends the low [count] bits of [bits]
      (0 <= count <= 24). *)
  val put : t -> bits:int -> count:int -> unit

  (** Pad to a byte boundary with zero bits and return the buffer. *)
  val contents : t -> string

  (** Bits written so far (before padding). *)
  val bit_length : t -> int
end

module Reader : sig
  type t

  exception Truncated

  val of_string : string -> t

  (** [get t count] reads [count] bits (LSB-first, 0 <= count <= 24).
      Raises {!Truncated} past end of input. *)
  val get : t -> int -> int

  (** [peek t count] returns the next [count] bits (count <= 24) without
      consuming them; positions past the end of the input read as zero.
      The table-driven Huffman decoder keys its root lookup on this. *)
  val peek : t -> int -> int

  (** [consume t count] discards [count] previously peeked bits. Raises
      {!Truncated} if fewer than [count] bits remain. *)
  val consume : t -> int -> unit

  (** Read a single bit. *)
  val bit : t -> int
end
