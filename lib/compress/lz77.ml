let window_size = 32768
let min_match = 3
let max_match = 258
let hash_bits = 15
let hash_size = 1 lsl hash_bits
let max_chain = 16

(* zlib level-6 style cut-offs: stop extending the hash chain once a match
   of [nice_length] is found, skip lazy evaluation entirely behind a match
   of [max_lazy] or longer, and shrink the chain budget when the held match
   is already [good_length] or better.  A length-3 match further back than
   [too_far] costs more bits than three literals, so it is not taken. *)
let nice_length = 66
let max_lazy = 16
let good_length = 8
let too_far = 4096

(* Tokens are unboxed ints in a flat growable buffer:
   [dist * 1024 + v] where [dist = 0] means a literal with byte value [v]
   and [dist >= 1] a match of length [v] (3..258 < 1024) at distance
   [dist] (1..32768). *)
type t = { toks : int array; count : int; total_len : int }

let tok_literal c = c
let tok_match ~dist ~len = (dist lsl 10) lor len
let tok_is_literal tok = tok < 1024
let tok_char tok = tok
let tok_dist tok = tok lsr 10
let tok_len tok = tok land 1023

let fold t ~init ~lit ~mtch =
  let acc = ref init in
  for i = 0 to t.count - 1 do
    let tok = t.toks.(i) in
    if tok_is_literal tok then acc := lit !acc (Char.unsafe_chr (tok_char tok))
    else acc := mtch !acc ~dist:(tok_dist tok) ~len:(tok_len tok)
  done;
  !acc

let hash3 s i =
  let a = Char.code (String.unsafe_get s i)
  and b = Char.code (String.unsafe_get s (i + 1))
  and c = Char.code (String.unsafe_get s (i + 2)) in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

(* Unchecked unaligned load: every call site guards [i + 8 <= length s],
   which the checked [String.get_int64_le] would re-verify on the hottest
   loop in the compressor.  The primitive is native-endian; swap on
   big-endian hosts so the first-differing-byte scan stays LSB-first. *)
external unsafe_get64_ne : string -> int -> int64 = "%caml_string_get64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

let unsafe_get64 s i =
  let v = unsafe_get64_ne s i in
  if Sys.big_endian then bswap64 v else v

(* Length of the common prefix of s[i..] and s[j..], capped at [limit]:
   compare eight bytes per unaligned 64-bit load, then locate the first
   differing byte in the xor.  [i + limit <= length s] must hold (and
   [j < i]), so the 8-byte loads below stay in bounds.  Tail-recursive on
   int accumulators: without flambda a [ref] here would heap-allocate on
   the compressor's hottest path. *)
let rec first_nonzero_byte v idx =
  if v land 0xff <> 0 then idx else first_nonzero_byte (v lsr 8) (idx + 1)

(* index of the first nonzero byte of a nonzero xor word; the int
   conversion drops bit 63, so a word whose low 63 bits are zero differs
   only in its top byte *)
let first_byte x =
  let v = Int64.to_int x in
  if v = 0 then 7 else first_nonzero_byte v 0

let rec ml_tail s i j limit k =
  if k < limit && String.unsafe_get s (i + k) = String.unsafe_get s (j + k) then
    ml_tail s i j limit (k + 1)
  else k

let rec ml_words s i j limit n8 k =
  if k >= n8 then ml_tail s i j limit k
  else begin
    let x = Int64.logxor (unsafe_get64 s (i + k)) (unsafe_get64 s (j + k)) in
    if Int64.equal x 0L then ml_words s i j limit n8 (k + 8) else k + first_byte x
  end

let match_len s i j limit = ml_words s i j limit (limit - 7) 0

let tokenize s =
  let n = String.length s in
  (* flat growable token buffer *)
  let toks = ref (Array.make (max 64 (n / 8)) 0) in
  let count = ref 0 in
  let emit tok =
    if !count = Array.length !toks then begin
      let nb = Array.make (2 * Array.length !toks) 0 in
      Array.blit !toks 0 nb 0 !count;
      toks := nb
    end;
    Array.unsafe_set !toks !count tok;
    incr count
  in
  (* hash head/chain tables; [prev] is a power of two >= min n window so
     positions can be masked, with overwrite detected by monotonicity *)
  let head = Array.make hash_size (-1) in
  let prev_size =
    let target = min (max n 1) window_size in
    let p = ref 16 in
    while !p < target do
      p := !p * 2
    done;
    !p
  in
  let prev = Array.make prev_size (-1) in
  let prev_mask = prev_size - 1 in
  (* record position [i], whose hash is [h], as the newest chain head *)
  let insert_hashed h i =
    Array.unsafe_set prev (i land prev_mask) (Array.unsafe_get head h);
    Array.unsafe_set head h i
  in
  let insert i =
    if i + min_match <= n then insert_hashed (hash3 s i) i
  in
  (* Longest match at [i] (hash [h]) strictly longer than [best_in],
     searched with [budget] chain steps; returns packed
     (len lsl 16) lor dist, or 0 when nothing beats [best_in].  The
     one-byte probe at offset [best_len] rejects most chain candidates
     without a full [match_len] scan — a candidate can only improve on the
     best so far if it also matches there. *)
  (* chain-walk scratch state, hoisted so [find_match] allocates nothing
     per call (without flambda, refs or an inner [let rec] closure in its
     body would hit the minor heap once per input position) *)
  let best_len = ref 0 and best_dist = ref 0 in
  let scan_end = ref '\000' and j = ref 0 and chain = ref 0 in
  let find_match h i best_in budget =
    let limit = if max_match < n - i then max_match else n - i in
    if limit < min_match || best_in >= limit then 0
    else begin
      let nice = if nice_length < limit then nice_length else limit in
      best_len := if best_in < min_match - 1 then min_match - 1 else best_in;
      best_dist := 0;
      (* [scan_end] is the byte a candidate must match at offset
         [best_len] to beat the best so far, which rejects most
         candidates with a single load *)
      scan_end := String.unsafe_get s (i + !best_len);
      j := Array.unsafe_get head h;
      chain := budget;
      while !j >= 0 && !chain > 0 && i - !j <= window_size do
        let cand = !j in
        let nxt = Array.unsafe_get prev (cand land prev_mask) in
        (* stop if the chain entry was overwritten (too far back) *)
        j := if nxt >= cand || i - nxt > window_size then -1 else nxt;
        decr chain;
        if String.unsafe_get s (cand + !best_len) = !scan_end then begin
          let len = match_len s i cand limit in
          if len > !best_len then begin
            best_len := len;
            best_dist := i - cand;
            if len >= nice then chain := 0
            else scan_end := String.unsafe_get s (i + len)
          end
        end
      done;
      (* a minimal match far back costs more bits than three literals *)
      if !best_dist = 0 then 0
      else if !best_len = min_match && !best_dist > too_far then 0
      else (!best_len lsl 16) lor !best_dist
    end
  in
  let i = ref 0 in
  (* lazy matching: hold the match found at the previous position and only
     emit it if the current position does not find a longer one *)
  let prev_len = ref 0 and prev_dist = ref 0 in
  let pending_lit = ref false in
  (* Incompressible-run accelerator: count consecutive positions with no
     match; past [miss_threshold], stride over several literals per search
     (capped), so pseudo-random input costs a fraction of a hash-chain
     probe per byte.  Any match resets the streak, so compressible input
     never strides and its token stream is unchanged. *)
  let miss_run = ref 0 in
  let miss_threshold = 64 in
  let max_stride = 16 in
  while !i < n do
    if !i + min_match > n then begin
      (* tail too short to hash or match: flush as literals *)
      if !prev_len >= min_match then begin
        emit (tok_match ~dist:!prev_dist ~len:!prev_len);
        i := !i - 1 + !prev_len;
        prev_len := 0;
        pending_lit := false
      end
      else begin
        if !pending_lit then emit (tok_literal (Char.code (String.unsafe_get s (!i - 1))));
        emit (tok_literal (Char.code (String.unsafe_get s !i)));
        pending_lit := false;
        incr i
      end
    end
    else begin
      let h = hash3 s !i in
      let m =
        (* behind a long-enough held match, skip the search entirely;
           behind a merely good one, search with a quartered budget *)
        if !prev_len >= max_lazy then 0
        else if !prev_len >= good_length then find_match h !i !prev_len (max_chain / 4)
        else find_match h !i !prev_len max_chain
      in
      if !prev_len >= min_match && m = 0 then begin
        (* nothing longer at i: the match starting at i-1 wins *)
        emit (tok_match ~dist:!prev_dist ~len:!prev_len);
        let stop = !i - 1 + !prev_len in
        (* i-1 was inserted when visited; cover the rest of the match so
           later matches can reference inside it *)
        insert_hashed h !i;
        for k = !i + 1 to stop - 1 do
          insert k
        done;
        i := stop;
        prev_len := 0;
        pending_lit := false;
        miss_run := 0
      end
      else if m = 0 && !miss_run >= miss_threshold then begin
        (* deep in an incompressible streak: flush this literal (plus any
           pending one) and stride over the next few bytes unsearched *)
        if !pending_lit then emit (tok_literal (Char.code (String.unsafe_get s (!i - 1))));
        pending_lit := false;
        insert_hashed h !i;
        let stride =
          let x = 2 + ((!miss_run - miss_threshold) lsr 6) in
          let x = if x > max_stride then max_stride else x in
          if x > n - !i then n - !i else x
        in
        for k = !i to !i + stride - 1 do
          emit (tok_literal (Char.code (String.unsafe_get s k)))
        done;
        i := !i + stride;
        miss_run := !miss_run + stride
      end
      else begin
        if !pending_lit then emit (tok_literal (Char.code (String.unsafe_get s (!i - 1))));
        prev_len := m lsr 16;
        prev_dist := m land 0xffff;
        pending_lit := true;
        insert_hashed h !i;
        incr i;
        if m = 0 then incr miss_run else miss_run := 0
      end
    end
  done;
  if !pending_lit then emit (tok_literal (Char.code (String.unsafe_get s (n - 1))));
  { toks = !toks; count = !count; total_len = n }

let reconstruct t =
  let out = Bytes.create t.total_len in
  let pos = ref 0 in
  for idx = 0 to t.count - 1 do
    let tok = Array.unsafe_get t.toks idx in
    if tok_is_literal tok then begin
      if !pos >= t.total_len then invalid_arg "Lz77.reconstruct: output overrun";
      Bytes.unsafe_set out !pos (Char.unsafe_chr (tok_char tok));
      incr pos
    end
    else begin
      let dist = tok_dist tok and len = tok_len tok in
      let start = !pos - dist in
      if start < 0 then invalid_arg "Lz77.reconstruct: bad distance";
      if !pos + len > t.total_len then invalid_arg "Lz77.reconstruct: output overrun";
      if dist >= len then begin
        Bytes.blit out start out !pos len;
        pos := !pos + len
      end
      else begin
        (* overlapping copy: blit the available run, which doubles each
           round, so long runs need O(log (len/dist)) blits *)
        let remaining = ref len in
        while !remaining > 0 do
          let avail = !pos - start in
          let chunk = min avail !remaining in
          Bytes.blit out start out !pos chunk;
          pos := !pos + chunk;
          remaining := !remaining - chunk
        done
      end
    end
  done;
  if !pos <> t.total_len then invalid_arg "Lz77.reconstruct: length mismatch";
  Bytes.unsafe_to_string out
