(** Framed compressed payloads, playing the role of the [.gz] files DMTCP
    writes.

    The current format ("DMZ2") is block-based: the input is split into
    fixed-size blocks (default 256 KiB) and each block is independently
    encoded with the cheapest of stored / RLE / deflate that the requested
    {!Algo.t} allows.  The stored fallback bounds expansion on
    incompressible data to the per-block framing overhead, a per-block
    CRC-32 names the damaged block on corruption, and block independence
    is what a streaming or parallel encoder needs.

    The legacy whole-image format ("DMZ1") is still decoded, so checkpoint
    images written before the block pipeline restore unchanged. *)

exception Bad_container of string

(** Block size used by {!pack} when none is given: 256 KiB. *)
val default_block_size : int

(** [pack ~algo s] frames and compresses [s] into a DMZ2 container.
    [block_size] is exposed for tests (block-boundary coverage); the
    default is {!default_block_size}. *)
val pack : ?block_size:int -> algo:Algo.t -> string -> string

(** [pack_v1 ~algo s] writes the legacy DMZ1 frame (single compressed
    body, whole-image CRC).  Kept for format-compatibility tests. *)
val pack_v1 : algo:Algo.t -> string -> string

(** [unpack s] decompresses and verifies lengths and CRCs (both DMZ2 and
    legacy DMZ1 frames).  Raises {!Bad_container} on any mismatch; for
    DMZ2 frames the message names the damaged block index.  Corrupt or
    implausible header fields are rejected before any allocation sized
    from them. *)
val unpack : string -> string

(** Scheme recorded in a frame, without unpacking the body. *)
val algo_of : string -> Algo.t

(** [frame_bounds s] returns the DMZ2 frame boundaries of [s]: the
    header and each per-block record as [(offset, length)] pairs, in
    order, whose concatenation reproduces [s] exactly.  Block records
    cover fixed windows of the input, so a localized change to the
    uncompressed data re-encodes exactly one frame — the dedup unit of
    the content-addressed checkpoint store.  [None] if [s] is not a
    well-formed DMZ2 container (legacy DMZ1 frames and raw strings
    dedup as a single unit). *)
val frame_bounds : string -> (int * int) list option
