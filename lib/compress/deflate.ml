(* Standard DEFLATE length codes: symbol 257 + index. *)
let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59; 67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4; 5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11; 12; 12; 13; 13 |]

let eob = 256
let num_litlen = 286
let num_dist = 30

(* Symbol lookup is on the per-token hot path; replace the linear base-
   table scans with O(1) tables (zlib's _length_code/_dist_code layout):
   lengths are direct-indexed, distances use 256 entries for 1..256 plus
   256 entries indexed by (dist-1) lsr 7 for 257..32768. *)
let length_code =
  let t = Array.make (Lz77.max_match + 1) 0 in
  let sym = ref 0 in
  for len = Lz77.min_match to Lz77.max_match do
    while
      !sym + 1 < Array.length length_base && length_base.(!sym + 1) <= len
    do
      incr sym
    done;
    t.(len) <- !sym
  done;
  t

let dist_code =
  let t = Array.make 512 0 in
  let sym = ref 0 in
  for dist = 1 to 256 do
    while !sym + 1 < Array.length dist_base && dist_base.(!sym + 1) <= dist do
      incr sym
    done;
    t.(dist - 1) <- !sym
  done;
  for i = 0 to 255 do
    (* representative distance for bucket i of the high half *)
    let dist = (i lsl 7) + 1 in
    let sym = ref 0 in
    while !sym + 1 < Array.length dist_base && dist_base.(!sym + 1) <= dist do
      incr sym
    done;
    t.(256 + i) <- !sym
  done;
  t

let length_symbol len = Array.unsafe_get length_code len

let dist_symbol dist =
  if dist <= 256 then Array.unsafe_get dist_code (dist - 1)
  else Array.unsafe_get dist_code (256 + ((dist - 1) lsr 7))

let compress s =
  let tokens = Lz77.tokenize s in
  let toks = tokens.Lz77.toks and ntoks = tokens.Lz77.count in
  let lit_freq = Array.make num_litlen 0 in
  let dist_freq = Array.make num_dist 0 in
  for i = 0 to ntoks - 1 do
    let tok = Array.unsafe_get toks i in
    if Lz77.tok_is_literal tok then begin
      let c = Lz77.tok_char tok in
      Array.unsafe_set lit_freq c (Array.unsafe_get lit_freq c + 1)
    end
    else begin
      let ls = 257 + length_symbol (Lz77.tok_len tok) in
      Array.unsafe_set lit_freq ls (Array.unsafe_get lit_freq ls + 1);
      let ds = dist_symbol (Lz77.tok_dist tok) in
      Array.unsafe_set dist_freq ds (Array.unsafe_get dist_freq ds + 1)
    end
  done;
  lit_freq.(eob) <- lit_freq.(eob) + 1;
  let lit_lens = Huffman.lengths_of_freqs lit_freq in
  let has_dist = Array.exists (fun f -> f > 0) dist_freq in
  let dist_lens = if has_dist then Huffman.lengths_of_freqs dist_freq else Array.make num_dist 0 in
  let lit_enc = Huffman.encoder_of_lengths lit_lens in
  let dist_enc = if has_dist then Some (Huffman.encoder_of_lengths dist_lens) else None in
  let bw = Bitio.Writer.create () in
  (* emit with the code tables inlined: one [put] per literal, and the
     length/distance extra bits fused into their symbol's code so a match
     costs two [put]s (huffman codes are <= 15 bits and extras <= 13, so a
     fused field fits [put]'s 24-bit limit only for lengths; distances get
     a separate put when extras overflow it) *)
  let lit_codes, lit_lens = Huffman.tables lit_enc in
  let dist_codes, dist_lens =
    match dist_enc with Some de -> Huffman.tables de | None -> ([||], [||])
  in
  for i = 0 to ntoks - 1 do
    let tok = Array.unsafe_get toks i in
    if Lz77.tok_is_literal tok then
      Bitio.Writer.put bw ~bits:(Array.unsafe_get lit_codes tok)
        ~count:(Array.unsafe_get lit_lens tok)
    else begin
      let len = Lz77.tok_len tok and dist = Lz77.tok_dist tok in
      let ls = length_symbol len in
      let sym = 257 + ls in
      let c = Array.unsafe_get lit_codes sym and cl = Array.unsafe_get lit_lens sym in
      if cl = 0 then invalid_arg "Deflate.compress: unused length symbol";
      let ex = Array.unsafe_get length_extra ls in
      Bitio.Writer.put bw
        ~bits:(c lor ((len - Array.unsafe_get length_base ls) lsl cl))
        ~count:(cl + ex);
      let ds = dist_symbol dist in
      let dc = Array.unsafe_get dist_codes ds and dl = Array.unsafe_get dist_lens ds in
      if dl = 0 then invalid_arg "Deflate.compress: unused distance symbol";
      let dex = Array.unsafe_get dist_extra ds in
      if dl + dex <= 24 then
        Bitio.Writer.put bw
          ~bits:(dc lor ((dist - Array.unsafe_get dist_base ds) lsl dl))
          ~count:(dl + dex)
      else begin
        Bitio.Writer.put bw ~bits:dc ~count:dl;
        Bitio.Writer.put bw ~bits:(dist - Array.unsafe_get dist_base ds) ~count:dex
      end
    end
  done;
  Huffman.encode lit_enc bw eob;
  let bits = Bitio.Writer.contents bw in
  let w = Util.Codec.Writer.create ~capacity:(String.length bits + 512) () in
  let put_lens lens =
    (* code lengths are 0..15: pack two per byte *)
    let n = Array.length lens in
    Util.Codec.Writer.uvarint w n;
    let i = ref 0 in
    while !i < n do
      let lo = lens.(!i) in
      let hi = if !i + 1 < n then lens.(!i + 1) else 0 in
      Util.Codec.Writer.u8 w (lo lor (hi lsl 4));
      i := !i + 2
    done
  in
  Util.Codec.Writer.uvarint w (String.length s);
  put_lens lit_lens;
  put_lens dist_lens;
  Util.Codec.Writer.string w bits;
  Util.Codec.Writer.contents w

(* The cheapest encoding of a match costs two bits (1-bit length code + 1-
   bit distance code) and yields at most 258 bytes, so a payload byte can
   never expand to more than 4*258 output bytes.  A declared length above
   that bound is corrupt; checking it *before* [Bytes.create] keeps a
   flipped varint from demanding a multi-GB allocation. *)
let max_expansion_per_byte = 4 * 258

let plausible_len ~payload_bytes orig_len =
  orig_len <= (payload_bytes * max_expansion_per_byte) + 8

let decompress packed =
  let r = Util.Codec.Reader.of_string packed in
  let orig_len = Util.Codec.Reader.uvarint r in
  if not (plausible_len ~payload_bytes:(String.length packed) orig_len) then
    invalid_arg "Deflate.decompress: implausible declared length";
  let get_lens () =
    let n = Util.Codec.Reader.uvarint r in
    if n > 4096 then invalid_arg "Deflate.decompress: implausible code-length count";
    let lens = Array.make n 0 in
    let i = ref 0 in
    while !i < n do
      let b = Util.Codec.Reader.u8 r in
      lens.(!i) <- b land 0xf;
      if !i + 1 < n then lens.(!i + 1) <- b lsr 4;
      i := !i + 2
    done;
    lens
  in
  let lit_lens = get_lens () in
  let dist_lens = get_lens () in
  let bits = Util.Codec.Reader.string r in
  Util.Codec.Reader.expect_end r;
  let lit_dec = Huffman.decoder_of_lengths lit_lens in
  let dist_dec =
    if Array.exists (fun l -> l > 0) dist_lens then Some (Huffman.decoder_of_lengths dist_lens)
    else None
  in
  let br = Bitio.Reader.of_string bits in
  (* output length is declared up front: decode into a preallocated
     buffer, copying matches with [Bytes.blit] instead of per-byte
     Buffer appends *)
  let out = Bytes.create orig_len in
  let pos = ref 0 in
  let finished = ref false in
  while not !finished do
    let sym = Huffman.decode lit_dec br in
    if sym < 256 then begin
      if !pos >= orig_len then invalid_arg "Deflate.decompress: length mismatch";
      Bytes.unsafe_set out !pos (Char.unsafe_chr sym);
      incr pos
    end
    else if sym = eob then finished := true
    else begin
      let ls = sym - 257 in
      if ls < 0 || ls >= Array.length length_base then invalid_arg "Deflate.decompress: bad length symbol";
      let len = length_base.(ls) + Bitio.Reader.get br length_extra.(ls) in
      let de =
        match dist_dec with
        | Some d -> d
        | None -> invalid_arg "Deflate.decompress: match without distance table"
      in
      let ds = Huffman.decode de br in
      if ds >= Array.length dist_base then invalid_arg "Deflate.decompress: bad distance symbol";
      let dist = dist_base.(ds) + Bitio.Reader.get br dist_extra.(ds) in
      let start = !pos - dist in
      if start < 0 then invalid_arg "Deflate.decompress: distance before start";
      if !pos + len > orig_len then invalid_arg "Deflate.decompress: length mismatch";
      if dist >= len then begin
        Bytes.blit out start out !pos len;
        pos := !pos + len
      end
      else begin
        (* overlapping run: the copyable span doubles every blit *)
        let remaining = ref len in
        while !remaining > 0 do
          let chunk = min (!pos - start) !remaining in
          Bytes.blit out start out !pos chunk;
          pos := !pos + chunk;
          remaining := !remaining - chunk
        done
      end
    end
  done;
  if !pos <> orig_len then invalid_arg "Deflate.decompress: length mismatch";
  Bytes.unsafe_to_string out
