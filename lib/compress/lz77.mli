(** LZ77 tokenization with a hash-chain matcher (DEFLATE-style window) and
    zlib-style lazy matching.

    Tokens live in a flat int buffer — one unboxed int per token — rather
    than a [token list]/[token array] of boxed variants: tokenization is
    the hot path of every checkpoint image encode. *)

type t = private { toks : int array; count : int; total_len : int }

val window_size : int
val min_match : int
val max_match : int

(** Accessors for the packed-int token encoding ([toks.(0 .. count-1)]).
    A token is a literal iff {!tok_is_literal}; then {!tok_char} is its
    byte. Otherwise {!tok_dist}/{!tok_len} give the match. *)

val tok_is_literal : int -> bool
val tok_char : int -> int
val tok_dist : int -> int
val tok_len : int -> int

(** Tokenize the whole input. *)
val tokenize : string -> t

(** Fold over tokens in order. *)
val fold :
  t -> init:'a -> lit:('a -> char -> 'a) -> mtch:('a -> dist:int -> len:int -> 'a) -> 'a

(** Inverse of {!tokenize}; reconstructs the original string into a
    preallocated buffer ([total_len] is known). Raises [Invalid_argument]
    on tokens referencing before the start or overrunning the length. *)
val reconstruct : t -> string
