module Writer = struct
  (* Growable flat byte buffer instead of [Buffer.t]: the Huffman encoder
     calls [put] once or twice per token, so the per-call overhead of
     Buffer's bounds/validity checks is measurable on checkpoint-sized
     inputs. *)
  type t = { mutable buf : Bytes.t; mutable len : int; mutable acc : int; mutable nbits : int }

  let create () = { buf = Bytes.create 4096; len = 0; acc = 0; nbits = 0 }

  let ensure t n =
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  external unsafe_set64_ne : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
  external bswap64 : int64 -> int64 = "%bswap_int64"

  (* little-endian store regardless of host endianness *)
  let unsafe_set64 b i v = unsafe_set64_ne b i (if Sys.big_endian then bswap64 v else v)

  (* Dump every whole byte of the accumulator with one unaligned 64-bit
     store; the store's tail bytes landing past [len] is fine (capacity is
     ensured and they are overwritten by the next flush).  The accumulator
     holds up to 62 bits, so [put]'s <= 24-bit payloads only force a flush
     every couple of tokens rather than on every call. *)
  let flush_words t =
    ensure t 8;
    let bytes = t.nbits lsr 3 in
    unsafe_set64 t.buf t.len (Int64.of_int t.acc);
    t.len <- t.len + bytes;
    t.acc <- t.acc lsr (bytes * 8);
    t.nbits <- t.nbits - (bytes * 8)

  let put t ~bits ~count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Writer.put: count out of range";
    if t.nbits > 62 - count then flush_words t;
    t.acc <- t.acc lor ((bits land ((1 lsl count) - 1)) lsl t.nbits);
    t.nbits <- t.nbits + count

  let bit_length t = (t.len * 8) + t.nbits

  let contents t =
    flush_words t;
    if t.nbits > 0 then begin
      ensure t 1;
      Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (t.acc land 0xff));
      t.len <- t.len + 1;
      t.acc <- 0;
      t.nbits <- 0
    end;
    Bytes.sub_string t.buf 0 t.len
end

module Reader = struct
  type t = { src : string; mutable pos : int; mutable acc : int; mutable nbits : int }

  exception Truncated

  let of_string src = { src; pos = 0; acc = 0; nbits = 0 }

  external unsafe_get64_ne : string -> int -> int64 = "%caml_string_get64u"
  external bswap64 : int64 -> int64 = "%bswap_int64"

  (* little-endian load regardless of host endianness *)
  let unsafe_get64 s i =
    let v = unsafe_get64_ne s i in
    if Sys.big_endian then bswap64 v else v

  (* Word-at-a-time refill: pull up to 7 bytes from the source with a
     single unaligned 64-bit load.  The accumulator holds at most 62 bits
     (an OCaml int), which is plenty for the 24-bit [get] limit and the
     Huffman decoder's 10-bit peeks. *)
  let refill t =
    if t.nbits <= 32 then begin
      let len = String.length t.src in
      if t.pos + 8 <= len then begin
        let w = Int64.to_int (unsafe_get64 t.src t.pos) land 0xff_ffff_ffff_ffff in
        let take = (62 - t.nbits) lsr 3 in
        let bits = take * 8 in
        t.acc <- t.acc lor ((w land ((1 lsl bits) - 1)) lsl t.nbits);
        t.pos <- t.pos + take;
        t.nbits <- t.nbits + bits
      end
      else
        while t.nbits <= 54 && t.pos < len do
          t.acc <- t.acc lor (Char.code (String.unsafe_get t.src t.pos) lsl t.nbits);
          t.pos <- t.pos + 1;
          t.nbits <- t.nbits + 8
        done
    end

  (* Look at the next [count] bits without consuming them; bits past the
     end of the input read as zero (the writer pads the final byte with
     zeros, so a table lookup keyed on a peek stays in range). *)
  let peek t count =
    refill t;
    t.acc land ((1 lsl count) - 1)

  let consume t count =
    if t.nbits < count then begin
      refill t;
      if t.nbits < count then raise Truncated
    end;
    t.acc <- t.acc lsr count;
    t.nbits <- t.nbits - count

  let get t count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Reader.get: count out of range";
    refill t;
    if t.nbits < count then raise Truncated;
    let v = t.acc land ((1 lsl count) - 1) in
    t.acc <- t.acc lsr count;
    t.nbits <- t.nbits - count;
    v

  let bit t = get t 1
end
