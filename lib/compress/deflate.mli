(** DEFLATE-style entropy coder: LZ77 tokens encoded with two canonical
    Huffman codes (literal/length and distance), using the standard
    DEFLATE length and distance bucket tables.

    The container format is our own (a single dynamic block with code
    lengths stored explicitly); it is not RFC 1951 bit-compatible, but the
    compression pipeline — hash-chain matching, canonical Huffman, extra
    bits — is the real algorithm, so measured ratios are representative of
    gzip's. *)

(** Worst-case decoded bytes per payload byte (a 2-bit match emitting 258
    bytes); declared lengths above [payload * this] are rejected before
    any allocation is sized from them. *)
val max_expansion_per_byte : int

(** [compress s] returns the compressed representation. *)
val compress : string -> string

(** [decompress s] inverts {!compress}. Raises [Invalid_argument] or
    {!Util.Codec.Reader.Corrupt} on malformed input. *)
val decompress : string -> string
