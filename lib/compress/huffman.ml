let max_bits = 15

type encoder = { codes : int array; lens : int array }

(* Decoding is table-driven: a root lookup table keyed on the next
   [root_bits] bits of the stream resolves codes of length <= root_bits in
   one peek/consume pair.  Longer codes (rare: root_bits covers every code
   of a near-balanced tree and all frequent symbols of a skewed one) fall
   back to the canonical first-code walk. *)
let root_bits = 10

type decoder = {
  (* root table: index = next [root_bits] bits (LSB-first as read from the
     stream); entry = (symbol lsl 4) lor code_length for short codes,
     [long_code] for prefixes of codes longer than root_bits, 0 for bit
     patterns no code covers *)
  table : int array;
  (* canonical walk state for the fallback path: for each bit length l,
     first canonical code of that length, and the index into [sorted]
     where symbols of length l begin *)
  first_code : int array;
  first_index : int array;
  count : int array;
  sorted : int array;
}

let long_code = -1

(* Build Huffman code lengths with a simple heap; if the tree exceeds
   [max_bits], damp the frequencies and retry (standard trick; converges
   because all-equal frequencies give a balanced tree). *)
let lengths_of_freqs freqs =
  let n = Array.length freqs in
  let lengths = Array.make n 0 in
  let used = ref 0 in
  Array.iter (fun f -> if f > 0 then incr used) freqs;
  if !used = 0 then invalid_arg "Huffman.lengths_of_freqs: no symbols";
  if !used = 1 then begin
    (* A single symbol still needs one bit on the wire. *)
    Array.iteri (fun i f -> if f > 0 then lengths.(i) <- 1) freqs;
    lengths
  end
  else begin
    let rec attempt freqs =
      (* node = (freq, depth-estimate, children) encoded via arrays *)
      let heap = Heap_nodes.create () in
      Array.iteri (fun i f -> if f > 0 then Heap_nodes.push heap f (Heap_nodes.Leaf i)) freqs;
      while Heap_nodes.size heap > 1 do
        let f1, n1 = Heap_nodes.pop heap in
        let f2, n2 = Heap_nodes.pop heap in
        Heap_nodes.push heap (f1 + f2) (Heap_nodes.Node (n1, n2))
      done;
      let _, root = Heap_nodes.pop heap in
      Array.fill lengths 0 n 0;
      let too_deep = ref false in
      let rec assign depth = function
        | Heap_nodes.Leaf i ->
          lengths.(i) <- max depth 1;
          if depth > max_bits then too_deep := true
        | Heap_nodes.Node (a, b) ->
          assign (depth + 1) a;
          assign (depth + 1) b
      in
      assign 0 root;
      if !too_deep then begin
        let damped = Array.map (fun f -> if f > 0 then (f / 2) + 1 else 0) freqs in
        attempt damped
      end
    in
    attempt freqs;
    lengths
  end

(* Canonical code assignment from lengths (RFC 1951 §3.2.2). *)
let canonical_codes lens =
  let count = Array.make (max_bits + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lens;
  let next = Array.make (max_bits + 2) 0 in
  let code = ref 0 in
  for bits = 1 to max_bits do
    code := (!code + count.(bits - 1)) lsl 1;
    next.(bits) <- !code
  done;
  let codes = Array.make (Array.length lens) 0 in
  Array.iteri
    (fun i l ->
      if l > 0 then begin
        codes.(i) <- next.(l);
        next.(l) <- next.(l) + 1
      end)
    lens;
  (codes, count)

(* Reverse the low [len] bits of [code]: we emit codes MSB-first logically
   but the bit writer packs LSB-first, as DEFLATE does. *)
let reverse_bits code len =
  let r = ref 0 in
  let c = ref code in
  for _ = 1 to len do
    r := (!r lsl 1) lor (!c land 1);
    c := !c lsr 1
  done;
  !r

let encoder_of_lengths lens =
  let codes, _ = canonical_codes lens in
  let codes = Array.mapi (fun i c -> reverse_bits c lens.(i)) codes in
  { codes; lens = Array.copy lens }

let validate_prefix_code count =
  (* Kraft sum must not exceed 1 for a usable code. *)
  let sum = ref 0.0 in
  for l = 1 to max_bits do
    sum := !sum +. (float_of_int count.(l) /. float_of_int (1 lsl l))
  done;
  if !sum > 1.0 +. 1e-9 then invalid_arg "Huffman: over-subscribed code lengths"

let decoder_of_lengths lens =
  let codes, count = canonical_codes lens in
  validate_prefix_code count;
  let n = Array.length lens in
  let total = Array.fold_left (fun acc l -> if l > 0 then acc + 1 else acc) 0 lens in
  let sorted = Array.make (max total 1) 0 in
  let first_code = Array.make (max_bits + 1) 0 in
  let first_index = Array.make (max_bits + 1) 0 in
  let code = ref 0 in
  let index = ref 0 in
  for l = 1 to max_bits do
    code := (!code + if l > 1 then count.(l - 1) else 0) lsl 1;
    first_code.(l) <- !code;
    first_index.(l) <- !index;
    (* canonical order: by length then symbol value *)
    for sym = 0 to n - 1 do
      if lens.(sym) = l then begin
        sorted.(!index) <- sym;
        incr index
      end
    done
  done;
  let table = Array.make (1 lsl root_bits) 0 in
  for sym = 0 to n - 1 do
    let l = lens.(sym) in
    if l > 0 then begin
      let rc = reverse_bits codes.(sym) l in
      if l <= root_bits then begin
        (* every completion of the code's reversed bits up to root_bits *)
        let step = 1 lsl l in
        let entry = (sym lsl 4) lor l in
        let i = ref rc in
        while !i < 1 lsl root_bits do
          table.(!i) <- entry;
          i := !i + step
        done
      end
      else
        (* mark the root-sized prefix so decode takes the slow path *)
        table.(rc land ((1 lsl root_bits) - 1)) <- long_code
    end
  done;
  { table; first_code; first_index; count; sorted }

let tables enc = (enc.codes, enc.lens)

let encode enc w sym =
  let len = enc.lens.(sym) in
  if len = 0 then invalid_arg "Huffman.encode: unused symbol";
  Bitio.Writer.put w ~bits:enc.codes.(sym) ~count:len

(* Fallback for codes longer than [root_bits]: the original canonical
   first-code walk, one bit at a time. *)
let decode_slow dec r =
  let code = ref 0 in
  let len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    code := (!code lsl 1) lor Bitio.Reader.bit r;
    incr len;
    if !len > max_bits then invalid_arg "Huffman.decode: bad stream";
    let l = !len in
    if dec.count.(l) > 0 && !code - dec.first_code.(l) < dec.count.(l) && !code >= dec.first_code.(l)
    then result := dec.sorted.(dec.first_index.(l) + (!code - dec.first_code.(l)))
  done;
  !result

let decode dec r =
  let e = Array.unsafe_get dec.table (Bitio.Reader.peek r root_bits) in
  if e > 0 then begin
    Bitio.Reader.consume r (e land 0xf);
    e lsr 4
  end
  else if e = 0 then invalid_arg "Huffman.decode: bad stream"
  else decode_slow dec r

let length enc sym = enc.lens.(sym)
