(** Canonical Huffman coding over a fixed symbol alphabet. *)

(** An encoder assigns each symbol a (code, bit-length) pair. *)
type encoder

(** A decoder reconstructed from the same code lengths. *)
type decoder

(** Maximum code length produced (DEFLATE-compatible). *)
val max_bits : int

(** [lengths_of_freqs freqs] computes canonical code lengths (0 for unused
    symbols) from symbol frequencies, bounded by {!max_bits}.  At least one
    symbol must have nonzero frequency. *)
val lengths_of_freqs : int array -> int array

(** Build an encoder from code lengths. *)
val encoder_of_lengths : int array -> encoder

(** Build a decoder from the same lengths. Raises [Invalid_argument] if the
    lengths do not describe a prefix code. *)
val decoder_of_lengths : int array -> decoder

(** [encode enc w sym] appends [sym]'s code. Raises if [sym] is unused. *)
val encode : encoder -> Bitio.Writer.t -> int -> unit

(** [tables enc] is the ((bit-reversed) code, bit-length) arrays indexed
    by symbol, for hot encode loops that inline the {!Bitio.Writer} calls;
    lengths are 0 for unused symbols.  The arrays are live — do not
    mutate them. *)
val tables : encoder -> int array * int array

(** [decode dec r] reads one symbol. *)
val decode : decoder -> Bitio.Reader.t -> int

(** Bit length assigned to a symbol (0 if unused); used for size
    accounting. *)
val length : encoder -> int -> int
