exception Bad_container of string

let magic_v1 = "DMZ1"
let magic = "DMZ2"
let default_block_size = 256 * 1024

(* Hard decode-side bounds: a header field past these is corrupt by
   definition, and rejecting it *before* any [Bytes.create] keeps a
   flipped varint from demanding a multi-GB allocation. *)
let max_block_size = 1 lsl 26

(* Cheapest possible encodings: RLE emits at most 128 bytes per 2-byte
   control pair (64x), deflate at most 258 bytes per 2-bit match (1032x).
   Anything above deflate's bound cannot be a real payload. *)
let max_expansion_per_byte = Deflate.max_expansion_per_byte

let plausible_len ~payload_bytes orig_len =
  orig_len <= (payload_bytes * max_expansion_per_byte) + 64

(* ------------------------------------------------------------------ *)
(* compression metrics: cheap unconditional accumulators surfaced by
   `dmtcp_sim trace --metrics` *)

let m_bytes_in algo = Trace.Metrics.counter ("compress." ^ Algo.name algo ^ ".bytes_in")
let m_bytes_out algo = Trace.Metrics.counter ("compress." ^ Algo.name algo ^ ".bytes_out")
let m_in_null = m_bytes_in Algo.Null
let m_out_null = m_bytes_out Algo.Null
let m_in_rle = m_bytes_in Algo.Rle
let m_out_rle = m_bytes_out Algo.Rle
let m_in_deflate = m_bytes_in Algo.Deflate
let m_out_deflate = m_bytes_out Algo.Deflate
let m_blocks_stored = Trace.Metrics.counter "compress.blocks.stored"
let m_blocks_rle = Trace.Metrics.counter "compress.blocks.rle"
let m_blocks_deflate = Trace.Metrics.counter "compress.blocks.deflate"

let note_pack algo ~bytes_in ~bytes_out =
  let m_in, m_out =
    match algo with
    | Algo.Null -> (m_in_null, m_out_null)
    | Algo.Rle -> (m_in_rle, m_out_rle)
    | Algo.Deflate -> (m_in_deflate, m_out_deflate)
  in
  Trace.Metrics.add m_in (float_of_int bytes_in);
  Trace.Metrics.add m_out (float_of_int bytes_out)

(* ------------------------------------------------------------------ *)
(* per-block encodings *)

(* Block encoding tags. Distinct from {!Algo}: the algo records what the
   caller asked for; each block then independently gets the cheapest
   encoding its algo allows (stored is always allowed, which bounds
   expansion on incompressible data to the framing overhead). *)
let enc_stored = 0
let enc_rle = 1
let enc_deflate = 2

let encode_block ~algo block =
  (* candidates by requested algo: Null never pays compression cost,
     Rle tries RLE, Deflate tries both RLE and deflate; stored is the
     universal fallback *)
  let best_tag = ref enc_stored and best = ref block in
  let consider tag payload =
    if String.length payload < String.length !best then begin
      best_tag := tag;
      best := payload
    end
  in
  (match algo with
  | Algo.Null -> ()
  | Algo.Rle -> consider enc_rle (Rle.compress block)
  | Algo.Deflate ->
    consider enc_rle (Rle.compress block);
    consider enc_deflate (Deflate.compress block));
  (match !best_tag with
  | t when t = enc_stored -> Trace.Metrics.incr m_blocks_stored
  | t when t = enc_rle -> Trace.Metrics.incr m_blocks_rle
  | _ -> Trace.Metrics.incr m_blocks_deflate);
  (!best_tag, !best)

let decode_block ~tag ~expect_len payload =
  let original =
    if tag = enc_stored then payload
    else if tag = enc_rle then Rle.decompress payload
    else if tag = enc_deflate then Deflate.decompress payload
    else raise (Bad_container (Printf.sprintf "bad block encoding tag %d" tag))
  in
  if String.length original <> expect_len then raise (Bad_container "block length mismatch");
  original

(* ------------------------------------------------------------------ *)
(* DMZ2: block-based container.

   Layout: magic "DMZ2", algo tag, uvarint block_size, uvarint orig_len,
   uvarint nblocks, then per block: u8 encoding tag, uvarint original
   block length, u32 CRC-32 of the original block bytes, length-prefixed
   payload.  Blocks are independent — corruption is reported with the
   damaged block's index, and a future encoder can compress them in
   parallel or stream them. *)

let pack ?(block_size = default_block_size) ~algo s =
  if block_size <= 0 then invalid_arg "Container.pack: block_size must be positive";
  let n = String.length s in
  let nblocks = (n + block_size - 1) / block_size in
  let w = Util.Codec.Writer.create ~capacity:(n / 2 + 64) () in
  Util.Codec.Writer.raw w magic;
  Algo.encode w algo;
  Util.Codec.Writer.uvarint w block_size;
  Util.Codec.Writer.uvarint w n;
  Util.Codec.Writer.uvarint w nblocks;
  for b = 0 to nblocks - 1 do
    let off = b * block_size in
    let len = min block_size (n - off) in
    let block = String.sub s off len in
    let tag, payload = encode_block ~algo block in
    Util.Codec.Writer.u8 w tag;
    Util.Codec.Writer.uvarint w len;
    Util.Codec.Writer.u32 w (Int32.to_int (Util.Crc32.digest block) land 0xffffffff);
    Util.Codec.Writer.string w payload
  done;
  let packed = Util.Codec.Writer.contents w in
  note_pack algo ~bytes_in:n ~bytes_out:(String.length packed);
  packed

(* ------------------------------------------------------------------ *)
(* DMZ1: the legacy whole-image format — one compressed body, one CRC.
   Kept encodable for the golden-image test and decodable so images
   written before the block pipeline still restore. *)

let pack_v1 ~algo s =
  let body = Algo.compress algo s in
  let w = Util.Codec.Writer.create ~capacity:(String.length body + 32) () in
  Util.Codec.Writer.raw w magic_v1;
  Algo.encode w algo;
  Util.Codec.Writer.uvarint w (String.length s);
  Util.Codec.Writer.i64 w (Int64.of_int32 (Util.Crc32.digest s));
  Util.Codec.Writer.string w body;
  Util.Codec.Writer.contents w

let read_header s =
  let r = Util.Codec.Reader.of_string s in
  let m = try Util.Codec.Reader.raw r 4 with Util.Codec.Reader.Corrupt _ -> "" in
  if m <> magic && m <> magic_v1 then raise (Bad_container "bad magic");
  let algo = Algo.decode r in
  (r, m, algo)

let algo_of s =
  try
    let _, _, algo = read_header s in
    algo
  with Util.Codec.Reader.Corrupt msg -> raise (Bad_container ("corrupt frame: " ^ msg))

let unpack_v1 r ~payload_bytes algo =
  let orig_len = Util.Codec.Reader.uvarint r in
  if not (plausible_len ~payload_bytes orig_len) then
    raise (Bad_container "implausible declared length");
  let crc = Util.Codec.Reader.i64 r in
  let body = Util.Codec.Reader.string r in
  Util.Codec.Reader.expect_end r;
  let original =
    try Algo.decompress algo body with
    | Invalid_argument m -> raise (Bad_container ("corrupt body: " ^ m))
    | Bitio.Reader.Truncated -> raise (Bad_container "corrupt body: truncated bitstream")
  in
  if String.length original <> orig_len then raise (Bad_container "length mismatch");
  if Int64.of_int32 (Util.Crc32.digest original) <> crc then raise (Bad_container "CRC mismatch");
  original

let unpack_v2 r ~payload_bytes =
  let block_size = Util.Codec.Reader.uvarint r in
  if block_size <= 0 || block_size > max_block_size then
    raise (Bad_container "implausible block size");
  let orig_len = Util.Codec.Reader.uvarint r in
  if not (plausible_len ~payload_bytes orig_len) then
    raise (Bad_container "implausible declared length");
  let nblocks = Util.Codec.Reader.uvarint r in
  if nblocks <> (orig_len + block_size - 1) / block_size then
    raise (Bad_container "block count disagrees with declared length");
  let out = Bytes.create orig_len in
  for b = 0 to nblocks - 1 do
    let off = b * block_size in
    let expect_len = min block_size (orig_len - off) in
    let fail msg = raise (Bad_container (Printf.sprintf "block %d/%d: %s" b nblocks msg)) in
    let tag = Util.Codec.Reader.u8 r in
    let blen = Util.Codec.Reader.uvarint r in
    if blen <> expect_len then fail "bad block length";
    let crc = Util.Codec.Reader.u32 r in
    let payload = Util.Codec.Reader.string r in
    let block =
      try decode_block ~tag ~expect_len payload with
      | Bad_container msg -> fail msg
      | Invalid_argument msg -> fail ("corrupt body: " ^ msg)
      | Bitio.Reader.Truncated -> fail "corrupt body: truncated bitstream"
    in
    if Int32.to_int (Util.Crc32.digest block) land 0xffffffff <> crc then fail "CRC mismatch";
    Bytes.blit_string block 0 out off expect_len
  done;
  Util.Codec.Reader.expect_end r;
  Bytes.unsafe_to_string out

let unpack s =
  try
    let r, m, algo = read_header s in
    let payload_bytes = String.length s in
    if m = magic then unpack_v2 r ~payload_bytes else unpack_v1 r ~payload_bytes algo
  with Util.Codec.Reader.Corrupt msg -> raise (Bad_container ("corrupt frame: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Frame boundaries, for content-addressed chunking.

   Each DMZ2 per-block record is self-delimiting and covers a fixed
   256 KiB window of the *input*, so its boundaries do not shift when a
   neighbouring block's compressed payload changes size.  That makes
   the records the natural dedup unit of a content-addressed store: a
   page dirtied in one input block re-encodes exactly one frame. *)

let frame_bounds s =
  let module R = Util.Codec.Reader in
  let total = String.length s in
  if total < 4 || String.sub s 0 4 <> magic then None
  else
    try
      let r = R.of_string s in
      let pos () = total - R.remaining r in
      ignore (R.raw r 4);
      let _algo = Algo.decode r in
      let block_size = R.uvarint r in
      let orig_len = R.uvarint r in
      let nblocks = R.uvarint r in
      if
        block_size <= 0 || block_size > max_block_size
        || nblocks <> (orig_len + block_size - 1) / block_size
      then None
      else begin
        let bounds = ref [] in
        let start = ref 0 in
        let cut () =
          let p = pos () in
          bounds := (!start, p - !start) :: !bounds;
          start := p
        in
        cut ();
        for _ = 1 to nblocks do
          let (_ : int) = R.u8 r in
          let (_ : int) = R.uvarint r in
          let (_ : int) = R.u32 r in
          let (_ : string) = R.string r in
          cut ()
        done;
        R.expect_end r;
        Some (List.rev !bounds)
      end
    with R.Corrupt _ | Bad_container _ -> None
