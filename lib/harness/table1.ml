type stages = (string * float) list

type result = {
  ckpt_uncompressed : stages;
  ckpt_compressed : stages;
  ckpt_forked : stages;
  restart_uncompressed : stages;
  restart_compressed : stages;
}

(* Stage durations come from the trace: [Dmtcp.Runtime.record_stage] is
   the single emission point for both the runtime's stats and the
   "dmtcp" spans, so querying the trace here yields the same numbers the
   [dmtcp_sim trace] CLI reports. *)
let stage_means events =
  Trace.Query.stage_stats ~cat:"dmtcp" events
  |> List.map (fun (name, s) -> (name, Util.Stats.mean s))

let with_env ~algo ~forked ~nprocs f =
  let options = { Dmtcp.Options.default with Dmtcp.Options.algo; forked } in
  let env = Common.setup ~nodes:8 ~options () in
  let w =
    {
      Common.w_name = "mg-table1";
      w_kind = Common.Openmpi;
      w_prog = "nas:mg";
      w_nprocs = nprocs;
      w_rpn = (nprocs + 7) / 8;
      w_extra = [ "1000000" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  Dmtcp.Runtime.reset_stage_stats env.Common.rt;
  let coll = Trace.collector () in
  let r = Trace.with_sink (Trace.collector_sink coll) (fun () -> f env) in
  Common.teardown env;
  (r, Trace.events coll)

let measure_ckpt_stages ~algo ~forked ~reps ~nprocs =
  let (), events =
    with_env ~algo ~forked ~nprocs (fun env ->
        for _ = 1 to reps do
          Simos.Cluster.reset_storage env.Common.cl;
          Common.run_for env 0.3;
          Dmtcp.Api.checkpoint_now env.Common.rt
        done)
  in
  stage_means events

let measure_restart_stages ~algo ~reps ~nprocs =
  let (), events =
    with_env ~algo ~forked:false ~nprocs (fun env ->
        for _ = 1 to reps do
          Simos.Cluster.reset_storage env.Common.cl;
          Common.run_for env 0.3;
          Dmtcp.Api.checkpoint_now env.Common.rt;
          let script = Dmtcp.Api.restart_script env.Common.rt in
          Dmtcp.Api.kill_computation env.Common.rt;
          Simos.Cluster.reset_storage env.Common.cl;
          Dmtcp.Api.restart env.Common.rt script;
          Dmtcp.Api.await_restart env.Common.rt;
          Common.run_for env 0.5
        done)
  in
  stage_means events

let run ?(reps = 3) ?(nprocs = 32) () =
  {
    ckpt_uncompressed = measure_ckpt_stages ~algo:Compress.Algo.Null ~forked:false ~reps ~nprocs;
    ckpt_compressed = measure_ckpt_stages ~algo:Compress.Algo.Deflate ~forked:false ~reps ~nprocs;
    ckpt_forked = measure_ckpt_stages ~algo:Compress.Algo.Deflate ~forked:true ~reps ~nprocs;
    restart_uncompressed = measure_restart_stages ~algo:Compress.Algo.Null ~reps ~nprocs;
    restart_compressed = measure_restart_stages ~algo:Compress.Algo.Deflate ~reps ~nprocs;
  }

let get stages name = match List.assoc_opt name stages with Some v -> v | None -> 0.

let fmt v = Printf.sprintf "%.4f" v

let to_text r =
  let ckpt_stage_names =
    [
      ("Suspend user threads", "ckpt/suspend");
      ("Elect FD leaders", "ckpt/elect");
      ("Drain kernel buffers", "ckpt/drain");
      ("Write checkpoint", "ckpt/write");
      ("Refill kernel buffers", "ckpt/refill");
    ]
  in
  let ckpt_rows =
    List.map
      (fun (label, key) ->
        [ label; fmt (get r.ckpt_uncompressed key); fmt (get r.ckpt_compressed key); fmt (get r.ckpt_forked key) ])
      ckpt_stage_names
    @ [
        (let total s = List.fold_left (fun acc (_, key) -> acc +. get s key) 0. ckpt_stage_names in
         [ "Total"; fmt (total r.ckpt_uncompressed); fmt (total r.ckpt_compressed); fmt (total r.ckpt_forked) ]);
      ]
  in
  let restart_stage_names =
    [
      ("Restore files and ptys", "restart/files");
      ("Reconnect sockets", "restart/reconnect");
      ("Restore memory/threads", "restart/mem");
      ("Refill kernel buffers", "restart/refill");
    ]
  in
  let restart_rows =
    List.map
      (fun (label, key) ->
        [ label; fmt (get r.restart_uncompressed key); fmt (get r.restart_compressed key) ])
      restart_stage_names
    @ [
        (let total s =
           List.fold_left (fun acc (_, key) -> acc +. get s key) 0. restart_stage_names
         in
         [ "Total"; fmt (total r.restart_uncompressed); fmt (total r.restart_compressed) ]);
      ]
  in
  "== Table 1a: Checkpoint stage breakdown, NAS/MG under OpenMPI (s) ==\n"
  ^ Util.Table.render ~header:[ "Stage"; "Uncompressed"; "Compressed"; "Fork Compr." ] ckpt_rows
  ^ "\n== Table 1b: Restart stage breakdown (s) ==\n"
  ^ Util.Table.render ~header:[ "Stage"; "Uncompressed"; "Compressed" ] restart_rows
