(** The fixed scenario behind [dmtcp_sim trace]: a 4-rank OpenMPI
    workload on 4 nodes, checkpointed once and restarted, traced end to
    end. *)

(** Reset the metrics registry, run the scenario with a collector
    attached, and return the full event stream plus the final metrics
    snapshot.  Deterministic: repeated calls return identical data.
    [incremental] switches on incremental + forked checkpointing and
    chains two delta checkpoints onto the full base before the kill, so
    the traced restart resolves a depth-2 delta chain.  [lazy_restore]
    switches on demand-paged lazy restore, so the traced restart resumes
    after the hot set and drains cold pages through the prefetcher.
    [plugins] enables every built-in heuristic plugin, so the trace also
    carries the deterministic [plugin/<name>/<site>] spans. *)
val run : ?incremental:bool -> ?lazy_restore:bool -> ?plugins:bool -> unit -> Trace.event list * string
