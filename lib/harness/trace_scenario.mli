(** The fixed scenario behind [dmtcp_sim trace]: a 4-rank OpenMPI
    workload on 4 nodes, checkpointed once and restarted, traced end to
    end. *)

(** Reset the metrics registry, run the scenario with a collector
    attached, and return the full event stream plus the final metrics
    snapshot.  Deterministic: repeated calls return identical data. *)
val run : unit -> Trace.event list * string
