(** Experiment plumbing shared by the figure/table reproductions: build a
    cluster, start a workload under [dmtcp_checkpoint] (including its MPI
    resource managers), and measure repeated checkpoint and restart
    cycles the way the paper does (mean ± stddev over repetitions,
    storage caches reset between trials). *)

type runtime_kind =
  | Mpich2   (** mpd ring + mpirun + ranks *)
  | Openmpi  (** orted star + mpirun + ranks *)
  | Direct   (** rank processes launched directly (iPython-style) *)
  | Proxy
      (** rank processes launched directly, plus one un-hijacked
          {!Proxy.Daemon} per node; ["proxy"] is prepended to [w_extra]
          so transport-aware programs ({!Apps.Stencil}) pick the proxy
          backend *)
  | Plain    (** a single non-rank program; [w_extra] is its raw argv *)

type workload = {
  w_name : string;
  w_kind : runtime_kind;
  w_prog : string;
  w_nprocs : int;
  w_rpn : int;  (** ranks per node *)
  w_extra : string list;
  w_warmup : float;  (** simulated seconds of steady state before measuring *)
}

type env = { cl : Simos.Cluster.t; rt : Dmtcp.Runtime.t }

val setup :
  ?nodes:int ->
  ?cores_per_node:int ->
  ?storage:Simos.Cluster.storage_config ->
  ?options:Dmtcp.Options.t ->
  unit ->
  env

(** Launch the workload (booting mpd/orted resource managers as the kind
    requires) and run until every expected process is registered plus the
    warmup. Raises [Failure] if processes fail to appear. *)
val start_workload : env -> workload -> unit

(** Expected number of checkpointed processes (ranks + resource
    managers). *)
val expected_processes : workload -> int

(** MPI job port every workload launch uses (rank result files land at
    [/result/<short>-<base_port>]). *)
val base_port : int

type ckpt_measure = {
  ckpt_times : Util.Stats.t;
  restart_times : Util.Stats.t;
  compressed_bytes : int;   (** aggregate, from the last checkpoint *)
  uncompressed_bytes : int;
  nprocs : int;
}

(** [measure env ~ckpt_reps ~restart_reps] runs [ckpt_reps] checkpoints
    (storage reset and a short steady-state gap between them) and then
    [restart_reps] checkpoint+kill+restart cycles. *)
val measure : env -> ckpt_reps:int -> restart_reps:int -> ckpt_measure

(** Stop everything that is still checkpointed (end of a workload's
    measurements). *)
val teardown : env -> unit

(** Simulated-seconds helper. *)
val run_for : env -> float -> unit

(** Render a measurement row: name, ckpt s, restart s, sizes MB. *)
val row : string -> ckpt_measure -> string list
