type runtime_kind = Mpich2 | Openmpi | Direct | Proxy | Plain

type workload = {
  w_name : string;
  w_kind : runtime_kind;
  w_prog : string;
  w_nprocs : int;
  w_rpn : int;
  w_extra : string list;
  w_warmup : float;
}

type env = { cl : Simos.Cluster.t; rt : Dmtcp.Runtime.t }

let setup ?(nodes = 32) ?(cores_per_node = 4) ?storage ?options () =
  Apps.Registry.register_all ();
  let cl = Simos.Cluster.create ?storage ~cores_per_node ~nodes () in
  let rt = Dmtcp.Api.install cl ?options () in
  { cl; rt }

let run_for env seconds =
  Sim.Engine.run ~until:(Simos.Cluster.now env.cl +. seconds) (Simos.Cluster.engine env.cl)

let nodes_used w = (w.w_nprocs + w.w_rpn - 1) / w.w_rpn

let expected_processes w =
  match w.w_kind with
  (* proxies are un-hijacked, so a Proxy workload checkpoints exactly
     its ranks *)
  | Direct | Proxy | Plain -> w.w_nprocs
  | Mpich2 ->
    (* ranks + one mpd per node + mpirun *)
    w.w_nprocs + nodes_used w + 1
  | Openmpi -> w.w_nprocs + nodes_used w + 1

let base_port = 6100

let launch_direct env w =
    for rank = 0 to w.w_nprocs - 1 do
      let node = rank / w.w_rpn in
      ignore
        (Dmtcp.Api.launch env.rt ~node ~prog:w.w_prog
           ~argv:
             ([
                string_of_int rank;
                string_of_int w.w_nprocs;
                string_of_int base_port;
                string_of_int w.w_rpn;
                "0";
                "0";
              ]
             @ w.w_extra))
    done

let start_workload env w =
  (match w.w_kind with
  | Plain -> ignore (Dmtcp.Api.launch env.rt ~node:0 ~prog:w.w_prog ~argv:w.w_extra)
  | Direct -> launch_direct env w
  | Proxy ->
    (* un-hijacked proxy daemon per node first, then the ranks with the
       proxy transport selected (first extra argv word) *)
    List.iter
      (fun node -> Proxy.Daemon.spawn_on env.cl ~node ~base_port ~rpn:w.w_rpn)
      (Proxy.Daemon.nodes_of_job ~size:w.w_nprocs ~rpn:w.w_rpn);
    launch_direct env { w with w_extra = "proxy" :: w.w_extra }
  | Mpich2 ->
    ignore
      (Dmtcp.Api.launch env.rt ~node:0 ~prog:"mpi:mpdboot" ~argv:[ string_of_int (nodes_used w) ]);
    run_for env 0.5;
    ignore
      (Dmtcp.Api.launch env.rt ~node:0 ~prog:"mpi:mpirun"
         ~argv:
           ([
              "mpich2";
              string_of_int w.w_nprocs;
              string_of_int w.w_rpn;
              string_of_int base_port;
              w.w_prog;
            ]
           @ w.w_extra))
  | Openmpi ->
    ignore
      (Dmtcp.Api.launch env.rt ~node:0 ~prog:"mpi:mpirun"
         ~argv:
           ([
              "openmpi";
              string_of_int w.w_nprocs;
              string_of_int w.w_rpn;
              string_of_int base_port;
              w.w_prog;
            ]
           @ w.w_extra)));
  (* wait for the whole process set to register *)
  let want = expected_processes w in
  let deadline = Simos.Cluster.now env.cl +. 60. in
  let rec wait () =
    let have = List.length (Dmtcp.Runtime.hijacked_processes env.rt) in
    if have >= want then ()
    else if Simos.Cluster.now env.cl > deadline then
      failwith
        (Printf.sprintf "workload %s: only %d of %d processes appeared" w.w_name have want)
    else begin
      run_for env 0.25;
      wait ()
    end
  in
  wait ();
  run_for env w.w_warmup

type ckpt_measure = {
  ckpt_times : Util.Stats.t;
  restart_times : Util.Stats.t;
  compressed_bytes : int;
  uncompressed_bytes : int;
  nprocs : int;
}

let measure env ~ckpt_reps ~restart_reps =
  let ckpt_times = Util.Stats.create () in
  let restart_times = Util.Stats.create () in
  let compressed = ref 0 and uncompressed = ref 0 and nprocs = ref 0 in
  for _ = 1 to ckpt_reps do
    Simos.Cluster.reset_storage env.cl;
    run_for env 0.3;
    Dmtcp.Api.checkpoint_now env.rt;
    Util.Stats.add ckpt_times (Dmtcp.Api.last_checkpoint_seconds env.rt);
    let c, u = Dmtcp.Api.last_checkpoint_bytes env.rt in
    compressed := c;
    uncompressed := u;
    nprocs := (Dmtcp.Runtime.ckpt_info env.rt).Dmtcp.Runtime.nprocs
  done;
  for _ = 1 to restart_reps do
    Simos.Cluster.reset_storage env.cl;
    run_for env 0.3;
    Dmtcp.Api.checkpoint_now env.rt;
    let script = Dmtcp.Api.restart_script env.rt in
    Dmtcp.Api.kill_computation env.rt;
    Simos.Cluster.reset_storage env.cl;
    Dmtcp.Api.restart env.rt script;
    Dmtcp.Api.await_restart env.rt;
    Util.Stats.add restart_times (Dmtcp.Api.last_restart_seconds env.rt)
  done;
  {
    ckpt_times;
    restart_times;
    compressed_bytes = !compressed;
    uncompressed_bytes = !uncompressed;
    nprocs = !nprocs;
  }

let teardown env = Dmtcp.Api.kill_computation env.rt

let row name m =
  [
    name;
    Util.Stats.to_string ~decimals:2 m.ckpt_times;
    Util.Stats.to_string ~decimals:2 m.restart_times;
    Printf.sprintf "%.1f" (float_of_int m.compressed_bytes /. 1e6);
    Printf.sprintf "%.1f" (float_of_int m.uncompressed_bytes /. 1e6);
    string_of_int m.nprocs;
  ]
