(* A small, fixed checkpoint/restart scenario whose trace the [trace]
   subcommand renders.  Everything is virtual-time deterministic, so two
   runs produce byte-identical JSONL and metrics snapshots — which is
   exactly what `dmtcp_sim trace --check-determinism` asserts. *)

let workload =
  {
    Common.w_name = "trace-demo";
    w_kind = Common.Openmpi;
    w_prog = "nas:mg";
    w_nprocs = 4;
    w_rpn = 1;
    w_extra = [ "1000000" ];
    w_warmup = 0.5;
  }

let run ?(incremental = false) ?(lazy_restore = false) ?(plugins = false) () =
  Trace.Metrics.reset ();
  let coll = Trace.collector () in
  Trace.with_sink (Trace.collector_sink coll) (fun () ->
      let options =
        if incremental || lazy_restore || plugins then
          Some
            {
              Dmtcp.Options.default with
              Dmtcp.Options.incremental;
              forked = incremental;
              lazy_restart = lazy_restore;
              plugins =
                (if plugins then Dmtcp.Plugins.all_names
                 else Dmtcp.Options.default.Dmtcp.Options.plugins);
            }
        else None
      in
      let env = Common.setup ~nodes:4 ?options () in
      Common.start_workload env workload;
      Common.run_for env 0.3;
      Dmtcp.Api.checkpoint_now env.Common.rt;
      if incremental then begin
        (* chain two deltas onto the full base, so the traced restart
           resolves a depth-2 chain *)
        Common.run_for env 0.2;
        Dmtcp.Api.checkpoint_now env.Common.rt;
        Common.run_for env 0.2;
        Dmtcp.Api.checkpoint_now env.Common.rt
      end;
      let script = Dmtcp.Api.restart_script env.Common.rt in
      Dmtcp.Api.kill_computation env.Common.rt;
      Simos.Cluster.reset_storage env.Common.cl;
      Dmtcp.Api.restart env.Common.rt script;
      Dmtcp.Api.await_restart env.Common.rt;
      Common.run_for env 0.3;
      Common.teardown env);
  (Trace.events coll, Trace.Metrics.snapshot_text ())
