module W = Util.Codec.Writer
module R = Util.Codec.Reader

let path_prefix = "/run/mpiproxy"
let sock_path ~base_port = Printf.sprintf "%s.%d" path_prefix base_port
let tcp_port ~base_port = base_port

type frame =
  | Hello of { rank : int; size : int; rpn : int }
  | Welcome
  | Data of { src : int; dst : int; epoch : int; seq : int; tag : char; payload : string }
  | Ack of { src : int; dst : int; epoch : int; seq : int }
  | Deliver of { src : int; epoch : int; seq : int; tag : char; payload : string }
  | Ack_ind of { src : int; epoch : int; seq : int }

let to_bytes f =
  let w = W.create () in
  (match f with
  | Hello { rank; size; rpn } ->
    W.u8 w 0;
    W.uvarint w rank;
    W.uvarint w size;
    W.uvarint w rpn
  | Welcome -> W.u8 w 1
  | Data { src; dst; epoch; seq; tag; payload } ->
    W.u8 w 2;
    W.uvarint w src;
    W.uvarint w dst;
    W.uvarint w epoch;
    W.uvarint w seq;
    W.u8 w (Char.code tag);
    W.string w payload
  | Ack { src; dst; epoch; seq } ->
    W.u8 w 3;
    W.uvarint w src;
    W.uvarint w dst;
    W.uvarint w epoch;
    W.uvarint w seq
  | Deliver { src; epoch; seq; tag; payload } ->
    W.u8 w 4;
    W.uvarint w src;
    W.uvarint w epoch;
    W.uvarint w seq;
    W.u8 w (Char.code tag);
    W.string w payload
  | Ack_ind { src; epoch; seq } ->
    W.u8 w 5;
    W.uvarint w src;
    W.uvarint w epoch;
    W.uvarint w seq);
  let body = W.contents w in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (String.length body));
  Bytes.unsafe_to_string hdr ^ body

let pop buf =
  if String.length buf < 4 then None
  else begin
    let len = Int32.to_int (String.get_int32_le buf 0) in
    if String.length buf < 4 + len then None
    else begin
      let r = R.of_string (String.sub buf 4 len) in
      let f =
        match R.u8 r with
        | 0 ->
          let rank = R.uvarint r in
          let size = R.uvarint r in
          let rpn = R.uvarint r in
          Hello { rank; size; rpn }
        | 1 -> Welcome
        | 2 ->
          let src = R.uvarint r in
          let dst = R.uvarint r in
          let epoch = R.uvarint r in
          let seq = R.uvarint r in
          let tag = Char.chr (R.u8 r) in
          let payload = R.string r in
          Data { src; dst; epoch; seq; tag; payload }
        | 3 ->
          let src = R.uvarint r in
          let dst = R.uvarint r in
          let epoch = R.uvarint r in
          let seq = R.uvarint r in
          Ack { src; dst; epoch; seq }
        | 4 ->
          let src = R.uvarint r in
          let epoch = R.uvarint r in
          let seq = R.uvarint r in
          let tag = Char.chr (R.u8 r) in
          let payload = R.string r in
          Deliver { src; epoch; seq; tag; payload }
        | 5 ->
          let src = R.uvarint r in
          let epoch = R.uvarint r in
          let seq = R.uvarint r in
          Ack_ind { src; epoch; seq }
        | t -> failwith (Printf.sprintf "Proxy.Wire: unknown frame type %d" t)
      in
      Some (f, String.sub buf (4 + len) (String.length buf - 4 - len))
    end
  end

let payload_bytes = function
  | Data { payload; _ } | Deliver { payload; _ } -> String.length payload
  | Hello _ | Welcome | Ack _ | Ack_ind _ -> 0
