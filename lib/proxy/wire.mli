(** The rank↔proxy protocol: a small ordered request/reply framing
    spoken over a host-local unix-domain socket, plus the raw routed
    frames proxies forward to each other over inter-node TCP.

    The split follows "DMTCP Checkpoint/Restart of MPI Programs via
    Proxies" (PAPERS.md): the per-node proxy owns every inter-node
    socket; ranks only ever hold one unix connection to their local
    proxy, so a checkpoint of a rank sees nothing but its in-flight
    protocol state.

    Reliability is end-to-end: each [Data] frame carries a per-(src,dst)
    sequence number, senders retain payloads until the *destination
    rank* acknowledges them, and receivers deliver strictly in order
    (dropping gap frames, re-acknowledging duplicates).  Proxy custody
    and wire state are therefore disposable — a restart relaunches
    proxies empty and the ranks' resend protocol recovers every
    undelivered byte.

    [Data]/[Ack] frames additionally carry the sender's restart [epoch]
    (connection generation).  Proxies outlive rank restarts, so their
    buffers and inter-proxy pipes can still hold frames a killed
    computation produced {e after} the checkpoint snapshot; restored
    ranks run one epoch later and discard those — in particular a stale
    [Ack] must not cancel the resend of a delivery the rewind undid. *)

(** Where the proxy for MPI job [base_port] listens on its node. *)
val sock_path : base_port:int -> string

(** Common prefix of every proxy unix path (the checkpoint layer's
    mpi-proxy plugin recognises rank↔proxy connections by it). *)
val path_prefix : string

(** Inter-node TCP port of a job's proxies (the job's rank ports are
    free: proxy-backed ranks bind no inet ports at all). *)
val tcp_port : base_port:int -> int

type frame =
  | Hello of { rank : int; size : int; rpn : int }
      (** rank → proxy: register; the proxy learns the job geometry *)
  | Welcome  (** proxy → rank: registered; parked frames follow *)
  | Data of { src : int; dst : int; epoch : int; seq : int; tag : char; payload : string }
      (** routed rank payload; [seq] is per-(src,dst), starting at 1;
          [epoch] is the sender's restart generation *)
  | Ack of { src : int; dst : int; epoch : int; seq : int }
      (** routed: [src] has received everything [dst] sent it up to [seq] *)
  | Deliver of { src : int; epoch : int; seq : int; tag : char; payload : string }
      (** proxy → rank: a [Data] frame addressed to this rank *)
  | Ack_ind of { src : int; epoch : int; seq : int }
      (** proxy → rank: [src] acknowledged your frames through [seq] *)

(** Length-prefixed encoding ready to write to a socket. *)
val to_bytes : frame -> string

(** Pop one complete frame off the head of a stream buffer. *)
val pop : string -> (frame * string) option

(** Payload bytes a frame carries (0 for control frames). *)
val payload_bytes : frame -> int
