module W = Util.Codec.Writer

let prog_name = "mpi:proxy"

(* A connection the proxy is party to.  Three roles:
   - [`Rank r]: the unix connection rank [r] registered with Hello;
   - [`Dial n]: the TCP connection we dialed to node [n]'s proxy
     (outbound frames to that node queue here);
   - [`Anon]: freshly accepted (unix pre-Hello, or an inbound TCP
     connection from a peer proxy — those stay read-only forever). *)
type conn = {
  mutable fd : int;
  mutable role : [ `Anon | `Rank of int | `Dial of int ];
  mutable inb : string;
  mutable outb : string;
  mutable dead : bool;
}

type run = {
  base_port : int;
  mutable rpn : int;
  ufd : int;  (* unix listener for local ranks *)
  tfd : int;  (* TCP listener for peer proxies *)
  mutable conns : conn list;  (* registration order; determinism relies on it *)
  mutable parked : (int * string) list;  (* (rank, encoded frame), FIFO *)
}

type state = D_boot | D_run of run

module P = struct
  type nonrec state = state

  let name = prog_name

  (* Proxies are never checkpointed; the codec exists only to satisfy
     the program interface and restores to a cold boot. *)
  let encode w _ = W.u8 w 0
  let decode _ = D_boot
  let init ~argv:_ = D_boot

  let job_args (ctx : Simos.Program.ctx) =
    match List.tl ctx.argv with
    | bp :: rpn :: _ -> (int_of_string bp, max 1 (int_of_string rpn))
    | _ -> failwith "mpi:proxy: argv must be <base_port> <ranks_per_node>"

  let node_of r dst = dst / r.rpn

  let deliver_frame = function
    | Wire.Data { src; dst = _; epoch; seq; tag; payload } ->
      Wire.Deliver { src; epoch; seq; tag; payload }
    | Wire.Ack { src; dst = _; epoch; seq } -> Wire.Ack_ind { src; epoch; seq }
    | f -> f

  let rank_conn r rank =
    List.find_opt (fun c -> (not c.dead) && c.role = `Rank rank) r.conns

  let dial_conn r node =
    List.find_opt (fun c -> (not c.dead) && c.role = `Dial node) r.conns

  let route (ctx : Simos.Program.ctx) r f =
    let dst = match f with Wire.Data { dst; _ } | Wire.Ack { dst; _ } -> dst | _ -> -1 in
    if dst < 0 then ()
    else if node_of r dst = ctx.node_id then begin
      let bytes = Wire.to_bytes (deliver_frame f) in
      match rank_conn r dst with
      | Some c -> c.outb <- c.outb ^ bytes
      | None -> r.parked <- r.parked @ [ (dst, bytes) ]
    end
    else begin
      let node = node_of r dst in
      let c =
        match dial_conn r node with
        | Some c -> c
        | None ->
          let fd = ctx.socket () in
          (match
             ctx.connect fd (Simnet.Addr.Inet { host = node; port = Wire.tcp_port ~base_port:r.base_port })
           with
          | Ok () -> ()
          | Error _ -> ());
          let c = { fd; role = `Dial node; inb = ""; outb = ""; dead = false } in
          r.conns <- r.conns @ [ c ];
          c
      in
      c.outb <- c.outb ^ Wire.to_bytes f
    end

  let on_hello r conn ~rank ~rpn =
    r.rpn <- max 1 rpn;
    (* a reconnect (post-restart) supersedes any stale registration *)
    List.iter (fun c -> if c != conn && c.role = `Rank rank then c.role <- `Anon) r.conns;
    conn.role <- `Rank rank;
    conn.outb <- conn.outb ^ Wire.to_bytes Wire.Welcome;
    let mine, rest = List.partition (fun (dst, _) -> dst = rank) r.parked in
    r.parked <- rest;
    List.iter (fun (_, bytes) -> conn.outb <- conn.outb ^ bytes) mine

  let parse_conn ctx r conn =
    let again = ref true in
    while !again do
      match Wire.pop conn.inb with
      | None -> again := false
      | Some (f, rest) ->
        conn.inb <- rest;
        (match f with
        | Wire.Hello { rank; size = _; rpn } -> on_hello r conn ~rank ~rpn
        | Wire.Data _ | Wire.Ack _ -> route ctx r f
        | Wire.Welcome | Wire.Deliver _ | Wire.Ack_ind _ -> ())
    done

  let pump (ctx : Simos.Program.ctx) r =
    (* accept local ranks and peer proxies *)
    let rec accept_all lfd =
      match ctx.accept lfd with
      | Some fd ->
        r.conns <- r.conns @ [ { fd; role = `Anon; inb = ""; outb = ""; dead = false } ];
        accept_all lfd
      | None -> ()
    in
    accept_all r.ufd;
    accept_all r.tfd;
    (* read everything that arrived, then parse *)
    List.iter
      (fun c ->
        if not c.dead then begin
          let continue = ref true in
          while !continue do
            match ctx.read_fd c.fd ~max:65536 with
            | `Data d -> c.inb <- c.inb ^ d
            | `Would_block -> continue := false
            | `Eof | `Err _ ->
              c.dead <- true;
              continue := false
          done;
          if not c.dead then parse_conn ctx r c
        end)
      r.conns;
    (* flush queued output *)
    List.iter
      (fun c ->
        if (not c.dead) && c.outb <> "" then
          match (c.role, ctx.sock_state c.fd) with
          | `Dial _, Some Simnet.Fabric.Connecting -> ()
          | `Dial _, Some Simnet.Fabric.Closed when ctx.sock_refused c.fd ->
            (* peer proxy not up yet (staggered restart): redial with the
               queued custody intact *)
            ctx.close_fd c.fd;
            let fd = ctx.socket () in
            (match c.role with
            | `Dial node ->
              ignore
                (ctx.connect fd
                   (Simnet.Addr.Inet { host = node; port = Wire.tcp_port ~base_port:r.base_port }))
            | _ -> ());
            c.fd <- fd
          | _, Some Simnet.Fabric.Established -> (
            match ctx.write_fd c.fd c.outb with
            | Ok n -> c.outb <- String.sub c.outb n (String.length c.outb - n)
            | Error _ -> c.dead <- true)
          | _, Some _ | _, None -> c.dead <- true)
      r.conns;
    (* reap dead connections; their buffered custody dies with them and
       the ranks' resend protocol recovers it *)
    List.iter (fun c -> if c.dead then ctx.close_fd c.fd) r.conns;
    r.conns <- List.filter (fun c -> not c.dead) r.conns;
    Accounting.set_custody ~base_port:r.base_port ~node:ctx.node_id
      (List.fold_left (fun acc c -> acc + String.length c.inb + String.length c.outb) 0 r.conns
      + List.fold_left (fun acc (_, b) -> acc + String.length b) 0 r.parked)

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | D_boot ->
      let base_port, rpn = job_args ctx in
      let ufd = ctx.socket_unix () in
      (match ctx.bind_unix ufd ~path:(Wire.sock_path ~base_port) with
      | Ok () -> ()
      | Error _ ->
        (* a proxy for this job already owns the node *)
        raise Exit);
      (match ctx.listen ufd ~backlog:64 with Ok () -> () | Error _ -> raise Exit);
      let tfd = ctx.socket () in
      (match ctx.bind tfd ~port:(Wire.tcp_port ~base_port) with
      | Ok _ -> ()
      | Error _ -> raise Exit);
      (match ctx.listen tfd ~backlog:64 with Ok () -> () | Error _ -> raise Exit);
      Simos.Program.Continue (D_run { base_port; rpn; ufd; tfd; conns = []; parked = [] })
    | D_run r ->
      pump ctx r;
      (* anything queued for output (even behind an in-progress connect or
         a redial) drains by polling: connect completion alone never makes
         an fd readable, so Readable_any would sleep through it *)
      let busy = List.exists (fun c -> c.outb <> "") r.conns in
      if busy then Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      else
        Simos.Program.Block
          (st, Simos.Program.Readable_any (r.ufd :: r.tfd :: List.map (fun c -> c.fd) r.conns))

  let step ctx st = try step ctx st with Exit -> Simos.Program.Exit 0
end

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module P : Simos.Program.S)
  end

let running kernel ~base_port =
  List.exists
    (fun (p : Simos.Kernel.process) ->
      match p.Simos.Kernel.cmdline with
      | n :: bp :: _ when n = prog_name -> int_of_string_opt bp = Some base_port
      | _ -> false)
    (Simos.Kernel.processes kernel)

let ensure kernel ~base_port ~rpn =
  if Simos.Program.is_registered prog_name && not (running kernel ~base_port) then
    ignore
      (Simos.Kernel.spawn kernel ~prog:prog_name
         ~argv:[ string_of_int base_port; string_of_int rpn ]
         ())

let spawn_on cl ~node ~base_port ~rpn = ensure (Simos.Cluster.kernel cl node) ~base_port ~rpn

let nodes_of_job ~size ~rpn =
  let rpn = max 1 rpn in
  List.init ((size + rpn - 1) / rpn) Fun.id
