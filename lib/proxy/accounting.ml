type row = { sent_to : int array; delivered_from : int array; retained_to : int array }

type job = {
  ranks : (int, row) Hashtbl.t;
  custody : (int, int) Hashtbl.t;  (* node -> bytes *)
}

let jobs : (int, job) Hashtbl.t = Hashtbl.create 7

let job base_port =
  match Hashtbl.find_opt jobs base_port with
  | Some j -> j
  | None ->
    let j = { ranks = Hashtbl.create 17; custody = Hashtbl.create 7 } in
    Hashtbl.replace jobs base_port j;
    j

let set_rank ~base_port ~rank ~sent_to ~delivered_from ~retained_to =
  Hashtbl.replace (job base_port).ranks rank
    {
      sent_to = Array.copy sent_to;
      delivered_from = Array.copy delivered_from;
      retained_to = Array.copy retained_to;
    }

let set_custody ~base_port ~node bytes = Hashtbl.replace (job base_port).custody node bytes

let sum = Array.fold_left ( + ) 0

let totals ~base_port =
  Hashtbl.fold
    (fun _ row (s, d, r) -> (s + sum row.sent_to, d + sum row.delivered_from, r + sum row.retained_to))
    (job base_port).ranks (0, 0, 0)

let pair ~base_port ~src ~dst =
  let j = job base_port in
  let at a i = if i < Array.length a then a.(i) else 0 in
  let sent, retained =
    match Hashtbl.find_opt j.ranks src with
    | Some row -> (at row.sent_to dst, at row.retained_to dst)
    | None -> (0, 0)
  in
  let delivered =
    match Hashtbl.find_opt j.ranks dst with
    | Some row -> at row.delivered_from src
    | None -> 0
  in
  (sent, delivered, retained)

let custody_total ~base_port =
  Hashtbl.fold (fun _ b acc -> acc + b) (job base_port).custody 0

let reset ~base_port = Hashtbl.remove jobs base_port
