(** Byte-conservation ledger for the rank/proxy split — instrumentation
    gauges keyed by MPI job (its [base_port]), written by the ranks and
    the proxy daemons, read by tests, chaos verdicts and the bench.

    The invariant the ledger exposes (and the QCheck property pins):
    every payload byte a rank has sent but that its destination has not
    yet accepted is *retained* by the sender's resend buffer — whatever
    additionally sits in proxy buffers or on the wire is a disposable
    copy.  At quiesce, sent = delivered per directed pair and both
    retained and proxy custody drop to zero.

    Gauges are plain host-global state (never checkpointed): a restore
    rewinds the writers, and the next mirror write rewinds the gauge. *)

(** Rank [rank]'s view: payload bytes sent per destination, accepted per
    source, and still retained (unacknowledged) per destination.  Arrays
    are copied. *)
val set_rank :
  base_port:int ->
  rank:int ->
  sent_to:int array ->
  delivered_from:int array ->
  retained_to:int array ->
  unit

(** Proxy daemon on [node]: bytes currently in its custody (connection
    buffers plus frames parked for not-yet-registered ranks). *)
val set_custody : base_port:int -> node:int -> int -> unit

(** (sent, delivered, retained) summed over every rank of the job. *)
val totals : base_port:int -> int * int * int

(** Per directed pair: payload bytes [src] sent toward [dst] / [dst]
    accepted from [src] / [src] still retains for [dst]. *)
val pair : base_port:int -> src:int -> dst:int -> int * int * int

(** Bytes in proxy custody summed over every node. *)
val custody_total : base_port:int -> int

(** Drop every gauge of a job (test isolation). *)
val reset : base_port:int -> unit
