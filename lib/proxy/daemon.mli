(** The per-node proxy process (["mpi:proxy"]): owns every inter-node
    TCP socket of an MPI job and multiplexes frames for its local ranks,
    which reach it over the job's unix socket ({!Wire.sock_path}).

    Proxies run *outside* checkpoint control (never hijacked, never
    checkpointed): a checkpoint leaves them running to absorb in-flight
    traffic while the ranks are suspended, and a restart simply
    relaunches them empty — the ranks' end-to-end resend protocol
    ({!Wire}) recovers any custody that died with a proxy.

    The daemon's program state is deliberately not serializable (it
    encodes as a reboot marker): there is nothing in it worth saving. *)

val prog_name : string

(** Register ["mpi:proxy"] in the program registry (idempotent). *)
val register : unit -> unit

(** Spawn a proxy for job [base_port] on [kernel]'s node unless one is
    already running there.  The process is plain (not hijacked).
    No-op when ["mpi:proxy"] is not registered. *)
val ensure : Simos.Kernel.t -> base_port:int -> rpn:int -> unit

(** [spawn_on cl ~node ~base_port ~rpn]: {!ensure} on a cluster node. *)
val spawn_on : Simos.Cluster.t -> node:int -> base_port:int -> rpn:int -> unit

(** Nodes hosting ranks of a [size]/[rpn] job (proxies go on each). *)
val nodes_of_job : size:int -> rpn:int -> int list
