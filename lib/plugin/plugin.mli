(** Typed event-hook subsystem, after DMTCP's plugin event model.

    The checkpoint/restart core publishes events at every protocol
    transition the tracer instruments (pre/post each coordinator stage
    and barrier, FD capture, image write, restart discovery, restart
    rearrangement); plugins subscribe to named hook sites and receive a
    typed payload they may mutate in place.  All "open world" handling
    — the paper's heuristics for resources that cannot be checkpointed
    transparently — lives in plugins layered on this API, not in the
    manager/restart core.

    Determinism contract: plugins run in registration order (a fixed
    program-text order, independent of [DMTCP_PLUGINS] env ordering),
    handlers execute in zero simulated time, and every handler run
    emits a [plugin/<name>/<site>] trace span, so two runs of the same
    scenario produce byte-identical traces. *)

(** Open payload type; the checkpoint library extends it with one
    constructor per hook site (see [Dmtcp.Events]). *)
type payload = ..

type t = {
  p_name : string;  (** unique name, the [DMTCP_PLUGINS] token *)
  p_doc : string;   (** one-line description for [plugins ls] *)
  p_hooks : (string * (payload -> unit)) list;
      (** (site, handler) pairs; a plugin may hook several sites *)
}

(** Register a plugin.  Registration order is the dispatch order and
    must be deterministic — call from module initialisation, never from
    event handlers.  Re-registering a name replaces the previous
    definition in place (idempotent [ensure_registered] patterns). *)
val register : t -> unit

(** All registered plugins, in registration order. *)
val registered : unit -> t list

val find : string -> t option

(** Set the enabled plugin set.  Unknown names raise [Invalid_argument]
    listing the registered names.  Dispatch order remains registration
    order regardless of the order given here. *)
val set_enabled : string list -> unit

val enabled_names : unit -> string list
val is_enabled : string -> bool

(** [dispatch ?node ?pid ~now site payload] runs, in registration
    order, every enabled plugin's handlers for [site].  Each handler
    run emits a zero-duration [plugin/<name>/<site>] trace span at
    virtual time [now] and bumps the site's dispatch counter. *)
val dispatch : ?node:int -> ?pid:int -> now:float -> string -> payload -> unit

(** Per-site handler-run counters since the last [reset_counts] —
    [(site, runs)] sorted by site name.  Feeds [plugins ls]. *)
val site_counts : unit -> (string * int) list

val reset_counts : unit -> unit
