type payload = ..

type t = {
  p_name : string;
  p_doc : string;
  p_hooks : (string * (payload -> unit)) list;
}

(* Registration order is the dispatch order, so it must come from
   module-initialisation order (deterministic program text), never from
   env parsing.  Kept as a list in registration order; replacement on
   re-register keeps the original position so [ensure_registered]-style
   idempotent init cannot reorder dispatch. *)
let plugins : t list ref = ref []
let enabled : string list ref = ref []
let counts : (string, int) Hashtbl.t = Hashtbl.create 16

let register p =
  if List.exists (fun q -> q.p_name = p.p_name) !plugins then
    plugins := List.map (fun q -> if q.p_name = p.p_name then p else q) !plugins
  else plugins := !plugins @ [ p ]

let registered () = !plugins
let find name = List.find_opt (fun p -> p.p_name = name) !plugins

let set_enabled names =
  let known = List.map (fun p -> p.p_name) !plugins in
  List.iter
    (fun n ->
      if not (List.mem n known) then
        invalid_arg
          (Printf.sprintf "Plugin.set_enabled: unknown plugin %S (registered: %s)" n
             (String.concat ", " known)))
    names;
  enabled := names

let enabled_names () = !enabled
let is_enabled name = List.mem name !enabled

let bump site =
  let n = Option.value ~default:0 (Hashtbl.find_opt counts site) in
  Hashtbl.replace counts site (n + 1)

let dispatch ?node ?pid ~now site payload =
  List.iter
    (fun p ->
      if List.mem p.p_name !enabled then
        List.iter
          (fun (s, handler) ->
            if s = site then begin
              handler payload;
              bump site;
              Trace.span ?node ?pid ~cat:"plugin"
                ~name:(Printf.sprintf "plugin/%s/%s" p.p_name site)
                ~time:now ~dur:0. ()
            end)
          p.p_hooks)
    !plugins

let site_counts () =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_counts () = Hashtbl.reset counts
