(** Deterministic structured tracing for the simulated stack.

    Every layer of the stack (sim engine, simos kernel, simnet fabric,
    storage targets, the dmtcp protocol) emits events tagged with the
    *simulated* time, so a run yields a machine-readable trace that is
    byte-identical across runs of the same seed.  Table 1's per-stage
    breakdown is a {!Query} over the trace rather than bespoke arithmetic,
    and a chaos failure can print the last N protocol spans per node next
    to the shrunk reproducer ({!ring}).

    Tracing is zero-cost when off: with no sink attached, {!on} is [false]
    and the emitters return before allocating the event. *)

type kind =
  | Span of float  (** a stage with a duration; [time] is the start *)
  | Instant  (** a point event *)
  | Counter of float  (** a monotonic contribution, e.g. bytes drained *)

type event = {
  time : float;  (** simulated seconds (span: start time) *)
  node : int;  (** emitting node, [-1] if global *)
  pid : int;  (** emitting pid, [-1] if not process-scoped *)
  cat : string;
      (** layer: ["sim" | "kernel" | "net" | "storage" | "dmtcp" | "store" | "sched"] *)
  name : string;  (** e.g. ["ckpt/drain"], ["seg/send"] *)
  kind : kind;
  args : (string * string) list;  (** small, printable key/values *)
}

type sink = { emit : event -> unit }

(** [true] iff at least one sink is attached.  Call sites with non-trivial
    argument construction should guard on this. *)
val on : unit -> bool

val attach : sink -> unit
val detach : sink -> unit

(** Attach [sink] for the duration of [f] (detached even on exceptions).
    Sinks nest: all attached sinks receive every event. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** The emitters are no-ops when no sink is attached. *)

val span :
  ?node:int ->
  ?pid:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  time:float ->
  dur:float ->
  unit ->
  unit

val instant :
  ?node:int ->
  ?pid:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  time:float ->
  unit ->
  unit

val counter :
  ?node:int ->
  ?pid:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  time:float ->
  float ->
  unit

(* ---------------- collection ---------------- *)

(** Unbounded in-order event accumulator. *)
type collector

val collector : unit -> collector
val collector_sink : collector -> sink
val events : collector -> event list
val clear : collector -> unit

(** Bounded per-node tail of recent events, optionally restricted to one
    category — the chaos harness keeps the last N ["dmtcp"] events per node
    to print next to an invariant violation. *)
type ring

val ring : ?per_node:int -> ?cat:string -> unit -> ring
val ring_sink : ring -> sink

(** Tails sorted by node id; each tail is oldest-first. *)
val ring_tails : ring -> (int * event list) list

(* ---------------- filtering ---------------- *)

type filter = {
  f_node : int option;
  f_pid : int option;
  f_cat : string option;
  f_prefix : string option;  (** event name prefix, e.g. ["ckpt/"] *)
}

val no_filter : filter
val matches : filter -> event -> bool

(* ---------------- rendering (deterministic) ---------------- *)

(** One event as a fixed-width human line (no trailing newline). *)
val describe : event -> string

(** Compact one-liner for failure tails: ["[12.345678900] p204 ckpt/drain ..."]. *)
val describe_short : event -> string

val text : event list -> string

(** One JSON object per line; fixed float formatting, keys in a fixed
    order, so equal event lists render to byte-identical strings. *)
val jsonl : event list -> string

(* ---------------- queries ---------------- *)

module Query : sig
  (** Aggregate [Span] durations by event name within [cat] (default
      ["dmtcp"]); result sorted by name. *)
  val stage_stats : ?cat:string -> event list -> (string * Util.Stats.t) list

  (** Sum of [Counter] contributions with the given category and name. *)
  val counter_total : cat:string -> name:string -> event list -> float
end

(* ---------------- metrics registry ---------------- *)

module Metrics : sig
  (** A process-global registry of named counters, gauges and histograms.
      Unlike trace events these are cheap unconditional accumulators;
      {!snapshot_text} renders them name-sorted so snapshots of identical
      runs compare equal. *)

  type counter
  type gauge
  type histogram

  val counter : string -> counter
  val gauge : string -> gauge
  val histogram : string -> histogram
  val add : counter -> float -> unit
  val incr : counter -> unit
  val set : gauge -> float -> unit
  val observe : histogram -> float -> unit

  (** Reset every registered instrument to its initial state (instruments
      stay registered — callers keep their handles). *)
  val reset : unit -> unit

  (** Name-sorted ["name value"] lines; histograms render count/mean/min/max. *)
  val snapshot_text : unit -> string
end
