(* Deterministic structured tracing + metrics.  See trace.mli. *)

type kind = Span of float | Instant | Counter of float

type event = {
  time : float;
  node : int;
  pid : int;
  cat : string;
  name : string;
  kind : kind;
  args : (string * string) list;
}

type sink = { emit : event -> unit }

(* Attached sinks, outermost first.  The empty list is the null sink: the
   emitters test [on ()] before building the event record, so tracing-off
   costs one load and one comparison per call site. *)
let sinks : sink list ref = ref []
let on () = !sinks <> []
let attach s = sinks := !sinks @ [ s ]
let detach s = sinks := List.filter (fun x -> x != s) !sinks

let with_sink s f =
  attach s;
  Fun.protect ~finally:(fun () -> detach s) f

let emit ev = List.iter (fun s -> s.emit ev) !sinks

let span ?(node = -1) ?(pid = -1) ~cat ~name ?(args = []) ~time ~dur () =
  if on () then emit { time; node; pid; cat; name; kind = Span dur; args }

let instant ?(node = -1) ?(pid = -1) ~cat ~name ?(args = []) ~time () =
  if on () then emit { time; node; pid; cat; name; kind = Instant; args }

let counter ?(node = -1) ?(pid = -1) ~cat ~name ?(args = []) ~time v =
  if on () then emit { time; node; pid; cat; name; kind = Counter v; args }

(* ---------------- collection ---------------- *)

type collector = { mutable rev : event list }

let collector () = { rev = [] }
let collector_sink c = { emit = (fun ev -> c.rev <- ev :: c.rev) }
let events c = List.rev c.rev
let clear c = c.rev <- []

type ring = {
  r_cap : int;
  r_cat : string option;
  r_tbl : (int, event Queue.t) Hashtbl.t;
}

let ring ?(per_node = 10) ?cat () =
  { r_cap = max 1 per_node; r_cat = cat; r_tbl = Hashtbl.create 7 }

let ring_sink r =
  {
    emit =
      (fun ev ->
        let wanted = match r.r_cat with None -> true | Some c -> String.equal c ev.cat in
        if wanted then begin
          let q =
            match Hashtbl.find_opt r.r_tbl ev.node with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add r.r_tbl ev.node q;
              q
          in
          Queue.push ev q;
          if Queue.length q > r.r_cap then ignore (Queue.pop q)
        end);
  }

let ring_tails r =
  Hashtbl.fold (fun node q acc -> (node, List.of_seq (Queue.to_seq q)) :: acc) r.r_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------------- filtering ---------------- *)

type filter = {
  f_node : int option;
  f_pid : int option;
  f_cat : string option;
  f_prefix : string option;
}

let no_filter = { f_node = None; f_pid = None; f_cat = None; f_prefix = None }

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let matches f ev =
  (match f.f_node with None -> true | Some n -> ev.node = n)
  && (match f.f_pid with None -> true | Some p -> ev.pid = p)
  && (match f.f_cat with None -> true | Some c -> String.equal c ev.cat)
  && match f.f_prefix with None -> true | Some p -> starts_with ~prefix:p ev.name

(* ---------------- rendering ---------------- *)

(* Fixed-format floats: nanosecond precision is plenty for the simulated
   clock and, unlike %g, renders identically everywhere. *)
let ftime t = Printf.sprintf "%.9f" t

let fval v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9f" v

let scope ev =
  let n = if ev.node >= 0 then Printf.sprintf "n%d" ev.node else "-" in
  let p = if ev.pid >= 0 then Printf.sprintf "p%d" ev.pid else "-" in
  Printf.sprintf "%-4s %-5s" n p

let kind_str ev =
  match ev.kind with
  | Span d -> Printf.sprintf "span %s" (ftime d)
  | Instant -> "inst"
  | Counter v -> Printf.sprintf "ctr  %s" (fval v)

let args_str = function
  | [] -> ""
  | args -> " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)

let describe ev =
  Printf.sprintf "[%14s] %s %-8s %-22s %s%s" (ftime ev.time) (scope ev) ev.cat ev.name
    (kind_str ev) (args_str ev.args)

let describe_short ev =
  let p = if ev.pid >= 0 then Printf.sprintf " p%d" ev.pid else "" in
  Printf.sprintf "[%s]%s %s %s%s" (ftime ev.time) p ev.name (kind_str ev) (args_str ev.args)

let text evs = String.concat "" (List.map (fun ev -> describe ev ^ "\n") evs)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ev =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%s" (ftime ev.time));
  if ev.node >= 0 then Buffer.add_string b (Printf.sprintf ",\"node\":%d" ev.node);
  if ev.pid >= 0 then Buffer.add_string b (Printf.sprintf ",\"pid\":%d" ev.pid);
  Buffer.add_string b
    (Printf.sprintf ",\"cat\":\"%s\",\"name\":\"%s\"" (json_escape ev.cat) (json_escape ev.name));
  (match ev.kind with
  | Span d -> Buffer.add_string b (Printf.sprintf ",\"k\":\"span\",\"dur\":%s" (ftime d))
  | Instant -> Buffer.add_string b ",\"k\":\"inst\""
  | Counter v -> Buffer.add_string b (Printf.sprintf ",\"k\":\"ctr\",\"v\":%s" (fval v)));
  if ev.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      ev.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let jsonl evs = String.concat "" (List.map (fun ev -> to_json ev ^ "\n") evs)

(* ---------------- queries ---------------- *)

module Query = struct
  let stage_stats ?(cat = "dmtcp") evs =
    let tbl : (string, Util.Stats.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        match ev.kind with
        | Span d when String.equal ev.cat cat ->
          let s =
            match Hashtbl.find_opt tbl ev.name with
            | Some s -> s
            | None ->
              let s = Util.Stats.create () in
              Hashtbl.add tbl ev.name s;
              s
          in
          Util.Stats.add s d
        | _ -> ())
      evs;
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let counter_total ~cat ~name evs =
    List.fold_left
      (fun acc ev ->
        match ev.kind with
        | Counter v when String.equal ev.cat cat && String.equal ev.name name -> acc +. v
        | _ -> acc)
      0. evs
end

(* ---------------- metrics registry ---------------- *)

module Metrics = struct
  type counter = float ref
  type gauge = float ref
  type histogram = { mutable h : Util.Stats.t }

  type instrument = C of counter | G of gauge | H of histogram

  let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32

  let find_or name mk check =
    match Hashtbl.find_opt registry name with
    | Some i -> check i
    | None ->
      let i = mk () in
      Hashtbl.add registry name i;
      i

  let counter name =
    match find_or name (fun () -> C (ref 0.)) Fun.id with
    | C r -> r
    | _ -> invalid_arg ("Trace.Metrics.counter: " ^ name ^ " registered with another type")

  let gauge name =
    match find_or name (fun () -> G (ref 0.)) Fun.id with
    | G r -> r
    | _ -> invalid_arg ("Trace.Metrics.gauge: " ^ name ^ " registered with another type")

  let histogram name =
    match find_or name (fun () -> H { h = Util.Stats.create () }) Fun.id with
    | H h -> h
    | _ -> invalid_arg ("Trace.Metrics.histogram: " ^ name ^ " registered with another type")

  let add c v = c := !c +. v
  let incr c = c := !c +. 1.
  let set g v = g := v
  let observe h v = Util.Stats.add h.h v

  let reset () =
    Hashtbl.iter
      (fun _ i ->
        match i with
        | C r | G r -> r := 0.
        | H h -> h.h <- Util.Stats.create ())
      registry

  let snapshot_text () =
    let lines =
      Hashtbl.fold
        (fun name i acc ->
          let v =
            match i with
            | C r | G r -> fval !r
            | H h ->
              let s = h.h in
              if Util.Stats.count s = 0 then "count=0"
              else
                Printf.sprintf "count=%d mean=%s min=%s max=%s" (Util.Stats.count s)
                  (fval (Util.Stats.mean s)) (fval (Util.Stats.min s)) (fval (Util.Stats.max s))
          in
          Printf.sprintf "%-28s %s" name v :: acc)
        registry []
      |> List.sort compare
    in
    String.concat "" (List.map (fun l -> l ^ "\n") lines)
end
