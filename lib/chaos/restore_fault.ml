(* Restart fast-path chaos: faults aimed at demand-paged lazy restore
   and the striped parallel replica fetch.

   Same convention as [Store_fault]: these live outside
   [Scenario.sample] so the pinned chaos corpus's RNG draw order is
   untouched, and both are fully deterministic.

   - [lazy_kill]: restart with DMTCP_LAZY_RESTART, then crash the node
     while the background prefetcher is mid-drain (pages half-resident).
     Residency is a time-accounting device only — page contents are
     always materially restored — so a second restart from the same
     images must finish with the exact output of an unfaulted run, and
     the orphaned prefetcher must stop cleanly instead of touching the
     dead processes.

   - [stripe_drop]: issue a lazy restart whose image blocks stripe
     across three replicas, then drop two replica nodes mid-restart.
     Three distinct replica nodes out of four guarantee every block
     keeps a copy on node 0 or the home node, so the restart must
     complete and the computation must produce the unfaulted output. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

(* same deterministic workload as [Store_fault]: one process, 8 MB
   resident, output written only at completion *)
let prog = "p:memhog"
let out_path = "/data/rf_out"
let iters = 400
let expected = sprintf "hog:%d" iters
let home = 1

let options () =
  {
    Dmtcp.Options.default with
    Dmtcp.Options.store = true;
    store_replicas = 3;
    keep_generations = 2;
    lazy_restart = true;
  }

let checkpointed () =
  Progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:(options ()) () in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog
       ~argv:[ "8"; string_of_int iters; out_path ]);
  Common.run_for env 0.5;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  let store =
    match Dmtcp.Runtime.store env.Common.rt with
    | Some s -> s
    | None -> failwith "restore_fault: runtime installed without the store"
  in
  (env, store, script)

let output env =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl home)) out_path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.1
  done

let lazy_kill () =
  let env, _store, script = checkpointed () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  (* threads are running but the prefetcher has only drained a few
     batches: most cold pages are still marked absent *)
  Common.run_for env 0.02;
  Simos.Cluster.crash_node env.Common.cl home;
  if Dmtcp.Runtime.hijacked_processes env.Common.rt <> [] then
    fail "hijacked processes survived a node crash";
  (* let time pass with the orphaned prefetcher still scheduled: it must
     notice the dead processes and stop without faulting *)
  Common.run_for env 1.0;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> output env <> None);
  (match output env with
  | Some got when got = expected -> ()
  | Some got -> fail "restart after mid-prefetch crash diverged: expected %S, got %S" expected got
  | None -> fail "restart after mid-prefetch crash never finished (no output)");
  !violations @ Invariant.store_replication env.Common.rt

let stripe_drop () =
  let env, store, script = checkpointed () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  Dmtcp.Api.restart env.Common.rt script;
  (* the restarter is between its boot and memory-restore phases: drop
     two of the four nodes out from under the striped fetch.  Replicas
     land on three distinct nodes, so every block keeps a copy on node
     0 or on [home]. *)
  Common.run_for env 0.01;
  Store.drop_node store 2;
  Store.drop_node store 3;
  List.iter (fun e -> fail "store verify after striped-replica loss: %s" e) (Store.verify store);
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> output env <> None);
  (match output env with
  | Some got when got = expected -> ()
  | Some got -> fail "restart across replica drop diverged: expected %S, got %S" expected got
  | None -> fail "restart across replica drop never finished (no output)");
  !violations
