(* Heuristic-plugin chaos: each of the paper's open-world heuristics
   (SNIPPETS.md §2) run as a plugin through a full
   checkpoint → kill → restart cycle, with the kill landing *between*
   the heuristic's hook stages.  Like [Store_fault]/[Delta_fault], these
   live outside [Scenario.sample] so the pinned corpus's RNG draw order
   is untouched; all are deterministic.

   - [blacklist_skip]: a client/server pair on port 53.  Plugin on: the
     connection is skipped at drain (hook [drain-select]), demoted to a
     dead socket in the image (hook [fd-capture]), and the kill fires at
     the drain stage of a *second* round — after the round's capture
     hooks ran, before its write hooks.  Restarted from round one, the
     client must detect the dead socket and finish every lookup in
     fallback mode, with zero discovery specs (no 5 s external-peer
     stall).  Plugin off: the same connection is drained and restored,
     and the run finishes live, byte-identical to an unfaulted run.

   - [proc_repoint]: a program holding an fd on /proc/<pid>/status
     across the restart.  Plugin on: hook [restart-rearrange] re-points
     the fd at the restarted pid and the final self-inspection is
     byte-identical to the unfaulted run.  Plugin off: the fd still
     names the dead pid's file and the program reports a stale
     identity.

   - [shm_zero]: an app doing lookups through an NSCD-style shared
     segment under /var/db/nscd.  Plugin on: hook [image-write] zeroes
     the segment in the image only — the same round's *live* run must
     still finish warm (the capture aliases live pages; zeroing through
     the alias would corrupt the running service) — and the restarted
     run detects the zeroed header and degrades cleanly.  Plugin off:
     the cache survives the restart verbatim. *)

module Common = Harness.Common

let sprintf = Printf.sprintf
let home = 1 (* workload node; coordinator runs on node 0 *)

let output env ~node ~out_path =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl node)) out_path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.1
  done

let saw events name = List.exists (fun (e : Trace.event) -> e.Trace.name = name) events

let find_args events name =
  List.filter_map
    (fun (e : Trace.event) -> if e.Trace.name = name then Some e.Trace.args else None)
    events

(* enable exactly [plugins] (built-ins are always registered) *)
let options_with plugins = { Dmtcp.Options.default with Dmtcp.Options.plugins }

(* Kill the whole computation the moment any manager reaches [stage] —
   i.e. between that stage's pre hooks and the next stage's.  The kill
   is scheduled at the current virtual time so the notifying step
   retires cleanly (same pattern as the torture runner). *)
let arm_stage_kill env stage =
  let fired = ref false in
  Dmtcp.Faults.on_stage :=
    (fun ~node:_ ~pid:_ s ->
      if s = stage && not !fired then begin
        fired := true;
        ignore
          (Sim.Engine.schedule
             (Simos.Cluster.engine env.Common.cl)
             ~delay:0.
             (fun () -> Dmtcp.Api.kill_computation env.Common.rt))
      end);
  fired

let disarm_stage_kill () = Dmtcp.Faults.on_stage := Dmtcp.Faults.default_observer

(* ------------------------------------------------------------------ *)
(* blacklist_skip *)

let dns_count = 1200
let dns_out = "/data/pf_dns"

(* one full cycle; returns (verdict, ckpt+restart trace events,
   restart seconds).  [stage_kill]: instead of an orderly kill after the
   checkpoint, start a second round and kill everything when the first
   manager reaches its drain stage. *)
let dns_variant ~plugins ~stage_kill () =
  Progs.ensure_registered ();
  Heuristic_progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:(options_with plugins) () in
  ignore (Dmtcp.Api.launch env.Common.rt ~node:2 ~prog:"p:dnssrv" ~argv:[ "53" ]);
  Common.run_for env 0.3;
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog:"p:dnscli"
       ~argv:[ "2"; "53"; string_of_int dns_count; dns_out ]);
  Common.run_for env 0.6;
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  if stage_kill then begin
    (* second round, killed between its capture and write hooks *)
    let fired = arm_stage_kill env Dmtcp.Faults.Drain in
    Dmtcp.Api.checkpoint env.Common.rt;
    let deadline = Simos.Cluster.now env.Common.cl +. 30. in
    run_until env ~deadline (fun () ->
        !fired && Dmtcp.Runtime.hijacked_processes env.Common.rt = []);
    disarm_stage_kill ()
  end
  else Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let restart_secs = Dmtcp.Api.last_restart_seconds env.Common.rt in
  let deadline = Simos.Cluster.now env.Common.cl +. 60. in
  run_until env ~deadline (fun () -> output env ~node:home ~out_path:dns_out <> None);
  Trace.detach sink;
  (output env ~node:home ~out_path:dns_out, Trace.events col, restart_secs)

let blacklist_skip () =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let on_plugins = [ "ext-sock"; "blacklist-ports" ] in
  let verdict_on, events, restart_secs = dns_variant ~plugins:on_plugins ~stage_kill:true () in
  (match verdict_on with
  | Some v when v = sprintf "dns:%d degraded" dns_count -> ()
  | Some v -> fail "blacklisted restart: expected clean degradation, got %S" v
  | None -> fail "blacklisted restart never produced a verdict");
  if not (saw events "plugin/blacklist-ports/drain-select") then
    fail "no blacklist-ports span at drain-select";
  if not (saw events "plugin/blacklist-ports/fd-capture") then
    fail "no blacklist-ports span at fd-capture";
  (* the demoted connection must leave no discovery spec behind: restart
     proceeds without the 5 s external-peer deadline *)
  (match find_args events "rst/sockets-done" with
  | args :: _ ->
    if List.assoc_opt "external" args <> Some "0" then
      fail "blacklisted connection still went through external discovery";
    if List.assoc_opt "timed_out" args <> Some "false" then
      fail "restart waited out the discovery deadline for a blacklisted connection"
  | [] -> fail "no sockets-done record in the restart trace");
  if restart_secs >= 4.0 then
    fail "restart stalled %.1f s — the blacklist skip should avoid the discovery wait"
      restart_secs;
  (* plugin off: the same connection is drained/refilled like any
     internal one and the run finishes live, identical to a run that was
     never checkpointed *)
  let verdict_off, _, _ = dns_variant ~plugins:[ "ext-sock" ] ~stage_kill:false () in
  (match verdict_off with
  | Some v when v = sprintf "dns:%d live" dns_count -> ()
  | Some v -> fail "with the plugin off the restart should be bit-identical (live): got %S" v
  | None -> fail "plugin-off restart never produced a verdict");
  !violations

(* ------------------------------------------------------------------ *)
(* proc_repoint *)

let proc_iters = 2500
let proc_out = "/data/pf_proc"

let proc_variant ~plugins ~stage_kill () =
  Progs.ensure_registered ();
  Heuristic_progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:(options_with plugins) () in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog:"p:procfd"
       ~argv:[ string_of_int proc_iters; proc_out ]);
  Common.run_for env 0.8;
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  if stage_kill then begin
    (* die between the write hooks and the resume hooks of a second
       round: the fds were already re-captured when the kill lands *)
    let fired = arm_stage_kill env Dmtcp.Faults.Refill in
    Dmtcp.Api.checkpoint env.Common.rt;
    let deadline = Simos.Cluster.now env.Common.cl +. 30. in
    run_until env ~deadline (fun () ->
        !fired && Dmtcp.Runtime.hijacked_processes env.Common.rt = []);
    disarm_stage_kill ()
  end
  else Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 60. in
  run_until env ~deadline (fun () -> output env ~node:home ~out_path:proc_out <> None);
  Trace.detach sink;
  (output env ~node:home ~out_path:proc_out, Trace.events col)

let proc_repoint () =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let expected = sprintf "PROC OK %d" proc_iters in
  let verdict_on, events = proc_variant ~plugins:[ "ext-sock"; "proc-fd" ] ~stage_kill:true () in
  (match verdict_on with
  | Some v when v = expected -> ()
  | Some v ->
    fail "restart with proc-fd should be bit-identical to the unfaulted run (%S): got %S"
      expected v
  | None -> fail "proc-fd restart never produced a verdict");
  if not (saw events "plugin/proc-fd/restart-rearrange") then
    fail "no proc-fd span at restart-rearrange";
  (* plugin off: the held fd keeps naming the dead pid's file *)
  let verdict_off, _ = proc_variant ~plugins:[ "ext-sock" ] ~stage_kill:false () in
  (match verdict_off with
  | Some v when v = sprintf "PROC STALE %d" proc_iters -> ()
  | Some v -> fail "with proc-fd off the held fd should read stale: got %S" v
  | None -> fail "plugin-off proc restart never produced a verdict");
  !violations

(* ------------------------------------------------------------------ *)
(* shm_zero *)

let shm_lookups = 2500
let shm_out = "/data/pf_shm"

(* [kill]: restart path.  Without it the run continues past the
   checkpoint — proving the image-side zeroing never touched the live
   segment through the page alias. *)
let shm_variant ~plugins ~kill ~stage_kill () =
  Progs.ensure_registered ();
  Heuristic_progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:(options_with plugins) () in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog:"p:nscdapp"
       ~argv:[ string_of_int shm_lookups; shm_out ]);
  Common.run_for env 0.8;
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  if kill then begin
    if stage_kill then begin
      (* second round, killed right after its image-write hook ran *)
      let fired = arm_stage_kill env Dmtcp.Faults.Refill in
      Dmtcp.Api.checkpoint env.Common.rt;
      let deadline = Simos.Cluster.now env.Common.cl +. 30. in
      run_until env ~deadline (fun () ->
          !fired && Dmtcp.Runtime.hijacked_processes env.Common.rt = []);
      disarm_stage_kill ()
    end
    else Dmtcp.Api.kill_computation env.Common.rt;
    Dmtcp.Api.restart env.Common.rt script;
    Dmtcp.Api.await_restart env.Common.rt
  end;
  let deadline = Simos.Cluster.now env.Common.cl +. 60. in
  run_until env ~deadline (fun () -> output env ~node:home ~out_path:shm_out <> None);
  Trace.detach sink;
  (output env ~node:home ~out_path:shm_out, Trace.events col)

let shm_zero () =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let on = [ "ext-sock"; "ext-shm" ] in
  (* restarted run: zeroed segment, clean degradation *)
  let verdict_on, events = shm_variant ~plugins:on ~kill:true ~stage_kill:true () in
  (match verdict_on with
  | Some v when v = sprintf "nscd:%d degraded" shm_lookups -> ()
  | Some v -> fail "restart with a zeroed segment should degrade cleanly: got %S" v
  | None -> fail "ext-shm restart never produced a verdict");
  if not (saw events "plugin/ext-shm/image-write") then fail "no ext-shm span at image-write";
  (* same plugin, no kill: the checkpointed-but-running app must stay
     warm — zeroing leaked through the page alias otherwise *)
  let verdict_live, _ = shm_variant ~plugins:on ~kill:false ~stage_kill:false () in
  (match verdict_live with
  | Some v when v = sprintf "nscd:%d cached" shm_lookups -> ()
  | Some v -> fail "live run after an ext-shm checkpoint lost its cache (alias leak?): %S" v
  | None -> fail "live ext-shm run never produced a verdict");
  (* plugin off: the segment is captured verbatim and the cache survives *)
  let verdict_off, _ = shm_variant ~plugins:[ "ext-sock" ] ~kill:true ~stage_kill:false () in
  (match verdict_off with
  | Some v when v = sprintf "nscd:%d cached" shm_lookups -> ()
  | Some v -> fail "with ext-shm off the cache should survive the restart: got %S" v
  | None -> fail "plugin-off shm restart never produced a verdict");
  !violations

(* ------------------------------------------------------------------ *)
(* CLI surface: `dmtcp_sim plugins run` prints one verdict line per
   heuristic per plugin setting, which ci.sh diffs across on/off. *)

let heuristic_names = [ "blacklist"; "procfd"; "extshm" ]

let run_heuristic ~name ~plugins_on =
  let verdict = function Some v -> v | None -> "<no verdict>" in
  match name with
  | "blacklist" ->
    let plugins = if plugins_on then [ "ext-sock"; "blacklist-ports" ] else [ "ext-sock" ] in
    let v, _, _ = dns_variant ~plugins ~stage_kill:false () in
    verdict v
  | "procfd" ->
    let plugins = if plugins_on then [ "ext-sock"; "proc-fd" ] else [ "ext-sock" ] in
    let v, _ = proc_variant ~plugins ~stage_kill:false () in
    verdict v
  | "extshm" ->
    let plugins = if plugins_on then [ "ext-sock"; "ext-shm" ] else [ "ext-sock" ] in
    let v, _ = shm_variant ~plugins ~kill:true ~stage_kill:false () in
    verdict v
  | _ -> invalid_arg (sprintf "unknown heuristic %S" name)
