(* Rank/proxy-split chaos: the mpi-proxy plugin plus the proxy transport
   through a checkpoint → node-crash → restart cycle, with the crash
   landing *inside* a collective.  Like [Plugin_fault], these scenarios
   live outside [Scenario.sample] (no corpus RNG draws) and are
   deterministic.

   - [kill_mid_allreduce]: the bsp phase program with a designated
     straggler, proxy transport.  The checkpoint and the node crash both
     land while the non-straggler ranks sit inside the closing allreduce
     (bytes demonstrably in flight: the ledger shows sent > delivered).
     The crash takes out a worker node wholesale — its two ranks *and*
     its proxy daemon — so the surviving proxies are left holding stale
     custody that races the post-restart resend (the receive-side dedup
     and gap-drop paths).  The restarted run must produce a result file
     byte-identical to an unfaulted reference run.

   - [kill_mid_halo]: the Jacobi stencil mid-halo-exchange, same crash
     shape, same byte-identical verdict.  This one also pins the image
     shape: with the mpi-proxy plugin on, rank images carry no
     S_established socket and no drained bytes — the rank's only
     transport fd (the unix connection to its proxy) is demoted to an
     immediately-dead socket at capture. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

let base_port = 6100
let nodes = 4
let rpn = 2
let nprocs = nodes * rpn
let crash_node = 1 (* worker node: ranks 2 and 3 plus its proxy daemon *)

let output env ~node ~out_path =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl node)) out_path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.1
  done

let saw events name = List.exists (fun (e : Trace.event) -> e.Trace.name = name) events

let options_with plugins = { Dmtcp.Options.default with Dmtcp.Options.plugins }
let proxy_plugins = [ "ext-sock"; "mpi-proxy" ]

let workload ~prog ~extra =
  {
    Common.w_name = prog;
    w_kind = Common.Proxy;
    w_prog = prog;
    w_nprocs = nprocs;
    w_rpn = rpn;
    w_extra = extra;
    w_warmup = 0.05;
  }

(* bsp: 4 phases, every other one straggling for 0.8 s.  The phase-0
   straggler is rank 0 — the allreduce root — so for the whole straggle
   the other ranks' gather frames sit undelivered (the root is not
   pumping), which is where the mid-allreduce kill aims.  The straggle
   is long enough to cover the checkpoint protocol itself. *)
let bsp_extra = [ "4"; "4096"; "2"; "0.8" ]

(* stencil: deep halos and enough supersteps that a checkpoint a few
   tens of milliseconds in lands mid-exchange *)
let stencil_extra = [ "256"; "8"; "40"; "0.02" ]

let result_path ~short = sprintf "/result/%s-%d" short base_port

(* run the workload with no fault at all and return the result bytes:
   the reference every faulted run must reproduce exactly *)
let reference_run ~prog ~extra ~short =
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes ~cores_per_node:2 ~options:(options_with proxy_plugins) () in
  Common.start_workload env (workload ~prog ~extra);
  let deadline = Simos.Cluster.now env.Common.cl +. 120. in
  run_until env ~deadline (fun () -> output env ~node:0 ~out_path:(result_path ~short) <> None);
  let out = output env ~node:0 ~out_path:(result_path ~short) in
  Common.teardown env;
  out

(* decode every image the restart script names: (established socket
   specs, drained bytes) summed over the job's rank images *)
let image_stats env (script : Dmtcp.Restart_script.t) =
  List.fold_left
    (fun (estab, drained) (host, paths) ->
      let vfs = Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl host) in
      List.fold_left
        (fun (estab, drained) path ->
          match Simos.Vfs.lookup vfs path with
          | None -> (estab, drained)
          | Some f ->
            let image = Dmtcp.Ckpt_image.decode (Simos.Vfs.read_all f) in
            List.fold_left
              (fun (estab, drained) (_, _, info) ->
                match info with
                | Dmtcp.Ckpt_image.FSock { state = Dmtcp.Ckpt_image.S_established; drained = d; _ }
                  ->
                  (estab + 1, drained + String.length d)
                | Dmtcp.Ckpt_image.FSock { drained = d; _ } -> (estab, drained + String.length d)
                | _ -> (estab, drained))
              (estab, drained) image.Dmtcp.Ckpt_image.fds)
        (estab, drained) paths)
    (0, 0) script.Dmtcp.Restart_script.entries

(* checkpoint → run into the collective window → crash a worker node
   wholesale → kill the rest → restart.  Returns (result bytes,
   in-flight evidence at the crash instant, trace events, rank image
   stats at the checkpoint). *)
let faulted_run ~prog ~extra ~short ~window =
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes ~cores_per_node:2 ~options:(options_with proxy_plugins) () in
  Common.start_workload env (workload ~prog ~extra);
  (* into the collective window, then checkpoint mid-flight *)
  Common.run_for env window;
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  (* let traffic move again, then sample the ledger and crash *)
  Common.run_for env 0.02;
  let sent, delivered, retained = Proxy.Accounting.totals ~base_port in
  let in_flight = (sent, delivered, retained) in
  Simos.Cluster.crash_node env.Common.cl crash_node;
  Common.run_for env 0.1;
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 120. in
  run_until env ~deadline (fun () -> output env ~node:0 ~out_path:(result_path ~short) <> None);
  Trace.detach sink;
  let out = output env ~node:0 ~out_path:(result_path ~short) in
  let images = image_stats env script in
  Common.teardown env;
  (out, in_flight, Trace.events col, images)

(* [fail] below takes a plain string: a ksprintf-style format function
   cannot be passed around polymorphically *)
let check_verdict fail ~what ~reference ~faulted =
  match (reference, faulted) with
  | None, _ -> fail (sprintf "%s: the unfaulted reference run never produced a result" what)
  | _, None -> fail (sprintf "%s: the faulted run never produced a result" what)
  | Some r, Some f ->
    if r <> f then
      fail (sprintf "%s: restarted result %S differs from the no-fault reference %S" what f r)

let check_common fail ~what (events, (estab, drained)) =
  if not (saw events "plugin/mpi-proxy/fd-capture") then
    fail (sprintf "%s: no mpi-proxy span at fd-capture" what);
  if not (saw events "plugin/mpi-proxy/restart-rearrange") then
    fail (sprintf "%s: no mpi-proxy span at restart-rearrange" what);
  (* the whole point of the split: rank images carry no live socket
     state and nothing drained *)
  if estab > 0 then
    fail (sprintf "%s: %d established socket specs in proxy-backend rank images" what estab);
  if drained > 0 then
    fail (sprintf "%s: %d drained bytes in proxy-backend rank images" what drained)

let kill_mid_allreduce () =
  let violations = ref [] in
  let fail m = violations := m :: !violations in
  let failf fmt = Printf.ksprintf fail fmt in
  let reference = reference_run ~prog:Apps.Stencil.bsp_prog ~extra:bsp_extra ~short:"bsp" in
  let faulted, (sent, delivered, _), events, images =
    (* just past warmup: inside phase 0's straggle window, the
       non-root ranks parked in the allreduce with their gather frames
       undeliverable until the root resumes pumping *)
    faulted_run ~prog:Apps.Stencil.bsp_prog ~extra:bsp_extra ~short:"bsp" ~window:0.02
  in
  if sent <= delivered then
    failf
      "mid-allreduce crash found nothing in flight (sent %d, delivered %d) — the kill missed \
       the collective"
      sent delivered;
  check_common fail ~what:"mid-allreduce" (events, images);
  check_verdict fail ~what:"mid-allreduce" ~reference ~faulted;
  !violations

let kill_mid_halo () =
  let violations = ref [] in
  let fail m = violations := m :: !violations in
  let failf fmt = Printf.ksprintf fail fmt in
  let reference =
    reference_run ~prog:Apps.Stencil.stencil_prog ~extra:stencil_extra ~short:"stencil"
  in
  let faulted, (sent, delivered, _), events, images =
    faulted_run ~prog:Apps.Stencil.stencil_prog ~extra:stencil_extra ~short:"stencil"
      ~window:0.02
  in
  if sent = 0 then fail "mid-halo crash saw no traffic at all (sent 0)";
  if delivered > sent then
    failf "ledger inversion at the crash instant: delivered %d > sent %d" delivered sent;
  check_common fail ~what:"mid-halo" (events, images);
  check_verdict fail ~what:"mid-halo" ~reference ~faulted;
  !violations

(* ------------------------------------------------------------------ *)
(* CLI surface: `dmtcp_sim mpi chaos` prints one verdict line per
   scenario, which ci.sh can diff across runs. *)

let scenario_names = [ "mid-allreduce"; "mid-halo" ]

let run_scenario ~name =
  let violations =
    match name with
    | "mid-allreduce" -> kill_mid_allreduce ()
    | "mid-halo" -> kill_mid_halo ()
    | _ -> invalid_arg (sprintf "unknown proxy scenario %S" name)
  in
  match violations with
  | [] -> sprintf "%s: bit-identical" name
  | vs -> sprintf "%s: %d violations: %s" name (List.length vs) (String.concat "; " vs)
