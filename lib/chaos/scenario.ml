(* Seeded scenario generation.

   One [Util.Rng] seed determines everything about a torture scenario:
   the workload (which checkpointable programs run where, reusing the
   harness workload descriptor), the checkpoint request times, and the
   fault schedule.  Replaying a seed replays the scenario exactly;
   shrinking filters the fault schedule by index while keeping the same
   seed, so a minimal reproducer is "seed + kept fault indices". *)

type fault =
  | Kill_at_stage of { victim : int; stage : Dmtcp.Faults.stage }
      (* arm a kill for the [victim mod nprocs]-th checkpointed process;
         it fires when that process reaches [stage] of a checkpoint *)
  | Crash_node of { node : int }
  | Partition of { a : int; b : int; heal_after : float }
  | Latency_spike of { a : int; b : int; factor : float; duration : float }
  | Slow_disk of { node : int; factor : float; duration : float }
  | Packet_loss of { prob : float; duration : float }

type event = { ev_at : float; ev_fault : fault }

type t = {
  sc_seed : int;
  sc_nodes : int;
  sc_workload : Harness.Common.workload;
  sc_launches : (int * string * string list) list;  (* node, prog, argv *)
  sc_outputs : (int * string) list;  (* node, verdict-file path *)
  sc_ckpts : float list;  (* checkpoint requests, offsets from settle *)
  sc_events : event list;  (* fault schedule, offsets from settle *)
  sc_deadline : float;  (* virtual-time budget after settle *)
}

(* Small clusters keep scenarios fast while still crossing real links. *)
let nodes = 4

let fault_to_string = function
  | Kill_at_stage { victim; stage } ->
    Printf.sprintf "kill proc#%d at %s" victim (Dmtcp.Faults.stage_name stage)
  | Crash_node { node } -> Printf.sprintf "crash node %d" node
  | Partition { a; b; heal_after } ->
    Printf.sprintf "partition %d<->%d for %.2fs" a b heal_after
  | Latency_spike { a; b; factor; duration } ->
    Printf.sprintf "latency x%.0f on %d<->%d for %.2fs" factor a b duration
  | Slow_disk { node; factor; duration } ->
    Printf.sprintf "disk x%.0f slower on node %d for %.2fs" factor node duration
  | Packet_loss { prob; duration } ->
    Printf.sprintf "%.0f%% segment loss for %.2fs" (100. *. prob) duration

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "seed %d: %s, ckpts at [%s]" t.sc_seed t.sc_workload.Harness.Common.w_name
       (String.concat "; " (List.map (Printf.sprintf "%.2f") t.sc_ckpts)));
  if t.sc_events = [] then Buffer.add_string b ", no faults"
  else
    List.iteri
      (fun i e ->
        Buffer.add_string b
          (Printf.sprintf ", fault[%d]@%.2f: %s" i e.ev_at (fault_to_string e.ev_fault)))
      t.sc_events;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let mk_workload name nprocs =
  {
    Harness.Common.w_name = name;
    w_kind = Harness.Common.Plain;
    w_prog = "";
    w_nprocs = nprocs;
    w_rpn = 1;
    w_extra = [];
    w_warmup = 0.;
  }

let sample_workload rng =
  let port = 6000 + Util.Rng.int rng 100 in
  let counter i =
    let node = Util.Rng.int rng nodes in
    let target = Util.Rng.int_in rng 600 2400 in
    let out = Printf.sprintf "/chaos/out%d" i in
    ((node, "p:counter", [ string_of_int target; out ]), (node, out))
  in
  let stream i =
    let server = Util.Rng.int rng nodes in
    let client = Util.Rng.int rng nodes in
    let count = Util.Rng.int_in rng 1500 5000 in
    let out = Printf.sprintf "/chaos/out%d" i in
    ( [
        (server, "p:stream-server", [ string_of_int port; string_of_int count; out ]);
        (client, "p:stream-client", [ string_of_int server; string_of_int port; string_of_int count ]);
      ],
      (server, out) )
  in
  let pipeline i =
    let node = Util.Rng.int rng nodes in
    let count = Util.Rng.int_in rng 600 3000 in
    let out = Printf.sprintf "/chaos/out%d" i in
    ((node, "p:pipeline", [ string_of_int count; out ]), (node, out))
  in
  match Util.Rng.int rng 4 with
  | 0 ->
    let n = 1 + Util.Rng.int rng 3 in
    let picked = List.init n counter in
    ( mk_workload (Printf.sprintf "counters-%d" n) n,
      List.map fst picked,
      List.map snd picked )
  | 1 ->
    let launches, out = stream 0 in
    (mk_workload "stream" 2, launches, [ out ])
  | 2 ->
    let launch, out = pipeline 0 in
    (mk_workload "pipeline" 2, [ launch ], [ out ])
  | _ ->
    let c_launch, c_out = counter 0 in
    let s_launches, s_out = stream 1 in
    (mk_workload "mixed" 3, (c_launch :: s_launches), [ c_out; s_out ])

let sample_fault rng ~ckpts =
  let at = 0.05 +. Util.Rng.float rng 1.2 in
  match Util.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 ->
    (* kills target a checkpoint in flight: arm just before a sampled
       checkpoint request so the stage is actually reached *)
    let stage = Util.Rng.choose rng (Array.of_list (Dmtcp.Faults.all_stages ~nbarriers:Dmtcp.Runtime.nbarriers)) in
    let victim = Util.Rng.int rng 8 in
    let ck = Util.Rng.choose rng (Array.of_list ckpts) in
    { ev_at = Float.max 0.01 (ck -. 0.01); ev_fault = Kill_at_stage { victim; stage } }
  | 4 ->
    { ev_at = at; ev_fault = Crash_node { node = Util.Rng.int rng nodes } }
  | 5 ->
    let a = Util.Rng.int rng nodes in
    let b = (a + 1 + Util.Rng.int rng (nodes - 1)) mod nodes in
    (* heal within the manager's 1 s reconnect budget so a partition can
       delay but never permanently orphan a restart *)
    { ev_at = at; ev_fault = Partition { a; b; heal_after = 0.1 +. Util.Rng.float rng 0.4 } }
  | 6 ->
    let a = Util.Rng.int rng nodes in
    let b = (a + 1 + Util.Rng.int rng (nodes - 1)) mod nodes in
    {
      ev_at = at;
      ev_fault =
        Latency_spike
          { a; b; factor = 2. +. Util.Rng.float rng 20.; duration = 0.2 +. Util.Rng.float rng 0.6 };
    }
  | 7 ->
    {
      ev_at = at;
      ev_fault =
        Slow_disk
          {
            node = Util.Rng.int rng nodes;
            factor = 3. +. Util.Rng.float rng 30.;
            duration = 0.3 +. Util.Rng.float rng 1.0;
          };
    }
  | _ ->
    {
      ev_at = at;
      ev_fault =
        Packet_loss
          { prob = 0.05 +. Util.Rng.float rng 0.3; duration = 0.2 +. Util.Rng.float rng 0.8 };
    }

let sample ~seed =
  let rng = Util.Rng.create (Int64.add 0x5EED_CAFEL (Int64.of_int seed)) in
  let workload, launches, outputs = sample_workload rng in
  let nck = 1 + Util.Rng.int rng 2 in
  let t1 = 0.1 +. Util.Rng.float rng 0.6 in
  let ckpts =
    if nck = 1 then [ t1 ] else [ t1; t1 +. 0.25 +. Util.Rng.float rng 0.6 ]
  in
  let nfaults = Util.Rng.int rng 4 in
  let events = List.init nfaults (fun _ -> sample_fault rng ~ckpts) in
  {
    sc_seed = seed;
    sc_nodes = nodes;
    sc_workload = workload;
    sc_launches = launches;
    sc_outputs = outputs;
    sc_ckpts = ckpts;
    sc_events = events;
    sc_deadline = 30.;
  }

(* Keep only the fault events whose index is in [keep] (shrinking). *)
let with_faults t keep =
  { t with sc_events = List.filteri (fun i _ -> List.mem i keep) t.sc_events }
