(* The scale scenario: a thousand small jobs on a 64-node cluster,
   pushed through all three checkpoint-driven policies at once.

     t=0   1000 single-node counter jobs, prio 1 — far more work than
           nodes, so the queue stays deep for the whole run
     t=2   a batch of prio-5 jobs arrives -> preempts running prio-1
           work; the victims checkpoint to the store and requeue
     t=4   a node hosting running jobs fail-stops (store replicas
           dropped too) -> its jobs self-heal from their newest
           surviving checkpoints
     t=6   a node is drained -> its jobs migrate by checkpoint +
           remap + restart

   With every job on its own coordinator domain, the interval
   checkpoints of the ~40 concurrently running jobs all go through the
   op queues at once — this is the scenario behind the
   [sched.ops-inflight] and [sched.makespan-1000job] bench records
   ([~max_inflight:1] reproduces the old serialized scheduler as the
   baseline).

   [run ~faults:false] replays the same submissions (including the
   preemptor batch) without the node failure and the drain; [check]
   compares the faulted run against that reference: every job must
   finish with bit-identical output. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

type result = {
  k_env : Common.env;
  k_sched : Sched.Scheduler.t;
  k_unfinished : int;
  k_outputs : (int * (string * string) list) list;  (* job id -> verdicts *)
}

let default_jobs = 1000
let default_nodes = 64
let preempt_at = 2.0
let fail_at = 4.0
let drain_at = 6.0

let options () =
  {
    Dmtcp.Options.default with
    Dmtcp.Options.store = true;
    store_replicas = 2;
    keep_generations = 2;
  }

let counter_spec ~name ~nodes ~priority ~target =
  let out i = sprintf "/data/%s_%d" name i in
  {
    Sched.Job.sp_name = name;
    sp_nodes = nodes;
    sp_priority = priority;
    sp_est_runtime = float_of_int target *. 1e-3;
    sp_procs = nodes;
    sp_launch =
      (fun a ->
        List.init nodes (fun i ->
            (a.(i), "p:counter", [ string_of_int target; out i ])));
    sp_outputs = (fun a -> List.init nodes (fun i -> (a.(i), out i)));
  }

(* a node currently hosting a Running job (first by job id, last slot) *)
let victim_node sched =
  let running =
    List.find_opt
      (fun (j : Sched.Job.t) -> j.Sched.Job.phase = Sched.Job.Running && j.Sched.Job.alloc <> None)
      (Sched.Scheduler.jobs sched)
  in
  match running with
  | Some { Sched.Job.alloc = Some a; _ } -> Some a.(Array.length a - 1)
  | _ -> None

let run ?(jobs = default_jobs) ?(nodes = default_nodes) ?(faults = true) ?(max_inflight = 0)
    ?(ckpt_interval = 0.25) () =
  Progs.ensure_registered ();
  let env = Common.setup ~nodes ~cores_per_node:2 ~options:(options ()) () in
  let sched =
    Sched.Scheduler.create ~ckpt_interval ~max_inflight env.Common.cl env.Common.rt
  in
  let eng = Simos.Cluster.engine env.Common.cl in
  for i = 0 to jobs - 1 do
    (* staggered durations (0.6–0.96 s) so finishes spread over the run
       instead of freeing whole cohorts at once *)
    let target = 600 + (10 * (i mod 37)) in
    ignore
      (Sched.Scheduler.submit sched
         (counter_spec ~name:(sprintf "j%04d" i) ~nodes:1 ~priority:1 ~target))
  done;
  (* the preemptor batch is part of the workload, so it runs in the
     no-fault reference too; each wants a quarter of the cluster, far
     more than the staggered finishes free in any tick, so victims
     must be preempted *)
  let pre_nodes = max 2 (nodes / 8) in
  ignore
    (Sim.Engine.schedule_at eng ~time:preempt_at (fun () ->
         for i = 0 to 3 do
           ignore
             (Sched.Scheduler.submit sched
                (counter_spec ~name:(sprintf "pre%d" i) ~nodes:pre_nodes ~priority:5 ~target:800))
         done));
  if faults then begin
    ignore
      (Sim.Engine.schedule_at eng ~time:fail_at (fun () ->
           match victim_node sched with
           | Some node -> Sched.Scheduler.fail_node sched node
           | None -> ()));
    ignore
      (Sim.Engine.schedule_at eng ~time:drain_at (fun () ->
           match victim_node sched with
           | Some node -> Sched.Scheduler.drain sched node
           | None -> ()))
  end;
  let unfinished = Sched.Scheduler.run ~until:3600. sched in
  let outputs =
    List.map
      (fun (j : Sched.Job.t) -> (j.Sched.Job.id, j.Sched.Job.outputs))
      (Sched.Scheduler.jobs sched)
  in
  { k_env = env; k_sched = sched; k_unfinished = unfinished; k_outputs = outputs }

(* Violations of the faulted run, judged against the no-fault reference. *)
let check ~reference faulted =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := !violations @ [ m ]) fmt in
  if reference.k_unfinished > 0 then
    fail "reference run left %d job(s) unfinished" reference.k_unfinished;
  if faulted.k_unfinished > 0 then
    fail "faulted run left %d job(s) unfinished" faulted.k_unfinished;
  List.iter
    (fun (j : Sched.Job.t) ->
      match j.Sched.Job.phase with
      | Sched.Job.Done -> ()
      | p -> fail "job %d (%s) ended %s" j.Sched.Job.id j.Sched.Job.spec.Sched.Job.sp_name
               (Sched.Job.phase_name p))
    (Sched.Scheduler.jobs faulted.k_sched);
  List.iter (fun v -> fail "sched invariant: %s" v) (Sched.Scheduler.violations faulted.k_sched);
  List.iter
    (fun (id, outs) ->
      match List.assoc_opt id faulted.k_outputs with
      | None -> fail "job %d missing from faulted run" id
      | Some outs' ->
        if outs <> outs' then
          fail "job %d output diverged from no-fault reference" id)
    reference.k_outputs;
  (* the three policies must all actually have fired *)
  if Sched.Scheduler.preemptions faulted.k_sched < 1 then
    fail "no preemption happened (the prio-5 batch displaced nobody)";
  if Sched.Scheduler.node_failures faulted.k_sched < 1 then
    fail "node failure was never injected";
  if Sched.Scheduler.drains faulted.k_sched < 1 then fail "drain was never injected";
  if Sched.Scheduler.restarts faulted.k_sched < 1 then
    fail "no job ever restarted from a checkpoint image";
  !violations
  @ Invariant.store_replication faulted.k_env.Common.rt
  @ Invariant.quiescent faulted.k_env

let summary (r : result) =
  let s = r.k_sched in
  let done_, failed =
    List.fold_left
      (fun (d, f) (j : Sched.Job.t) ->
        match j.Sched.Job.phase with
        | Sched.Job.Done -> (d + 1, f)
        | Sched.Job.Failed _ -> (d, f + 1)
        | _ -> (d, f))
      (0, 0) (Sched.Scheduler.jobs s)
  in
  [
    sprintf "jobs %d  done %d  failed %d  unfinished %d"
      (List.length (Sched.Scheduler.jobs s))
      done_ failed r.k_unfinished;
    sprintf "preemptions %d  node-failures %d  drains %d  restarts %d  relaunches %d"
      (Sched.Scheduler.preemptions s) (Sched.Scheduler.node_failures s)
      (Sched.Scheduler.drains s) (Sched.Scheduler.restarts s)
      (Sched.Scheduler.relaunches s);
    sprintf "makespan %.2fs  lost-work %.2fs  peak-ops-inflight %d"
      (Sched.Scheduler.makespan s) (Sched.Scheduler.total_lost_work s)
      (Sched.Scheduler.peak_ops_inflight s);
  ]
