(* Checkpointable user programs shared by the chaos harness and the
   DMTCP test suites.  Unlike the throwaway programs in test_simos.ml,
   these serialize their full state, so they survive checkpoint/restart
   and can verify end-to-end correctness (bit-identical results).  Each
   one writes a self-describing verdict to an output file, which is what
   the chaos runner compares against an unfaulted reference run. *)

module W = Util.Codec.Writer
module R = Util.Codec.Reader

(* ------------------------------------------------------------------ *)
(* p:counter — computes for a while, writes the result to a file. *)

module Counter = struct
  type state = { n : int; target : int; out : string }

  let name = "p:counter"

  let encode w st =
    W.uvarint w st.n;
    W.uvarint w st.target;
    W.string w st.out

  let decode r =
    let n = R.uvarint r in
    let target = R.uvarint r in
    let out = R.string r in
    { n; target; out }

  let init ~argv =
    match argv with
    | [ target; out ] -> { n = 0; target = int_of_string target; out }
    | _ -> { n = 0; target = 100; out = "/tmp/counter" }

  let step (ctx : Simos.Program.ctx) st =
    if st.n < st.target then Simos.Program.Compute ({ st with n = st.n + 1 }, 1e-3)
    else begin
      (match ctx.open_file st.out with
      | Ok fd ->
        ignore (ctx.write_fd fd (Printf.sprintf "done:%d" st.n));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
end

(* ------------------------------------------------------------------ *)
(* p:memhog — allocates synthetic memory then computes forever (until a
   target), modelling a long-running scientific process. *)

module Memhog = struct
  type state = { phase : int; mb : int; iters : int; done_ : int; out : string }

  let name = "p:memhog"

  let encode w st =
    W.uvarint w st.phase;
    W.uvarint w st.mb;
    W.uvarint w st.iters;
    W.uvarint w st.done_;
    W.string w st.out

  let decode r =
    let phase = R.uvarint r in
    let mb = R.uvarint r in
    let iters = R.uvarint r in
    let done_ = R.uvarint r in
    let out = R.string r in
    { phase; mb; iters; done_; out }

  let init ~argv =
    match argv with
    | [ mb; iters; out ] ->
      { phase = 0; mb = int_of_string mb; iters = int_of_string iters; done_ = 0; out }
    | _ -> { phase = 0; mb = 4; iters = 50; done_ = 0; out = "/tmp/memhog" }

  let step (ctx : Simos.Program.ctx) st =
    if st.phase = 0 then begin
      let region = ctx.mmap ~bytes:(st.mb * 1_000_000) ~kind:Mem.Region.Heap in
      (* touch the first page so the mapping carries real data *)
      ctx.mem_write ~addr:region.Mem.Region.start_addr "memhog-data";
      Simos.Program.Continue { st with phase = 1 }
    end
    else if st.done_ < st.iters then
      Simos.Program.Compute ({ st with done_ = st.done_ + 1 }, 2e-3)
    else begin
      (match ctx.open_file st.out with
      | Ok fd ->
        ignore (ctx.write_fd fd (Printf.sprintf "hog:%d" st.done_));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
end

(* ------------------------------------------------------------------ *)
(* p:stream-server / p:stream-client — a TCP pair exchanging fixed-width
   sequence-numbered records with steady traffic.  The server validates
   strict ordering, so any byte lost or duplicated by a checkpoint,
   drain/refill, or restart shows up as a hard failure. *)

let record_bytes = 8

let encode_record n =
  let b = Bytes.create record_bytes in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.unsafe_to_string b

let decode_record s off = Int64.to_int (String.get_int64_le s off)

module Stream_server = struct
  type state =
    | Boot of { port : int; count : int; out : string }
    | Accepting of { lfd : int; count : int; out : string }
    | Run of { fd : int; expect : int; count : int; buf : string; out : string }

  let name = "p:stream-server"

  let encode w = function
    | Boot { port; count; out } ->
      W.u8 w 0;
      W.uvarint w port;
      W.uvarint w count;
      W.string w out
    | Accepting { lfd; count; out } ->
      W.u8 w 1;
      W.uvarint w lfd;
      W.uvarint w count;
      W.string w out
    | Run { fd; expect; count; buf; out } ->
      W.u8 w 2;
      W.uvarint w fd;
      W.uvarint w expect;
      W.uvarint w count;
      W.string w buf;
      W.string w out

  let decode r =
    match R.u8 r with
    | 0 ->
      let port = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Boot { port; count; out }
    | 1 ->
      let lfd = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Accepting { lfd; count; out }
    | _ ->
      let fd = R.uvarint r in
      let expect = R.uvarint r in
      let count = R.uvarint r in
      let buf = R.string r in
      let out = R.string r in
      Run { fd; expect; count; buf; out }

  let init ~argv =
    match argv with
    | [ port; count; out ] -> Boot { port = int_of_string port; count = int_of_string count; out }
    | _ -> Boot { port = 6000; count = 1000; out = "/tmp/stream" }

  let finish (ctx : Simos.Program.ctx) fd out msg =
    (match ctx.open_file out with
    | Ok ofd ->
      ignore (ctx.write_fd ofd msg);
      ctx.close_fd ofd
    | Error _ -> ());
    ctx.close_fd fd;
    Simos.Program.Exit (if String.length msg >= 2 && String.sub msg 0 2 = "OK" then 0 else 1)

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { port; count; out } -> (
      let lfd = ctx.socket () in
      match ctx.bind lfd ~port with
      | Ok _ -> (
        match ctx.listen lfd ~backlog:4 with
        | Ok () -> Simos.Program.Block (Accepting { lfd; count; out }, Simos.Program.Readable lfd)
        | Error _ -> Simos.Program.Exit 2)
      | Error _ -> Simos.Program.Exit 2)
    | Accepting { lfd; count; out } -> (
      match ctx.accept lfd with
      | Some fd ->
        ctx.close_fd lfd;
        Simos.Program.Block (Run { fd; expect = 0; count; buf = ""; out }, Simos.Program.Readable fd)
      | None -> Simos.Program.Block (Accepting { lfd; count; out }, Simos.Program.Readable lfd))
    | Run { fd; expect; count; buf; out } -> (
      match ctx.read_fd fd ~max:65536 with
      | `Data d ->
        let buf = buf ^ d in
        let nrec = String.length buf / record_bytes in
        let ok = ref true in
        let expect = ref expect in
        for i = 0 to nrec - 1 do
          let v = decode_record buf (i * record_bytes) in
          if v <> !expect then ok := false else incr expect
        done;
        let buf = String.sub buf (nrec * record_bytes) (String.length buf mod record_bytes) in
        if not !ok then finish ctx fd out (Printf.sprintf "FAIL at %d" !expect)
        else if !expect >= count then finish ctx fd out (Printf.sprintf "OK %d" !expect)
        else
          Simos.Program.Block (Run { fd; expect = !expect; count; buf; out }, Simos.Program.Readable fd)
      | `Eof -> finish ctx fd out (Printf.sprintf "FAIL eof at %d" expect)
      | `Would_block ->
        Simos.Program.Block (Run { fd; expect; count; buf; out }, Simos.Program.Readable fd)
      | `Err _ -> finish ctx fd out "FAIL err")
  end

module Stream_client = struct
  type state =
    | Boot of { host : int; port : int; count : int }
    | Connecting of { fd : int; count : int }
    | Send of { fd : int; next : int; count : int; pending : string }

  let name = "p:stream-client"

  let encode w = function
    | Boot { host; port; count } ->
      W.u8 w 0;
      W.uvarint w host;
      W.uvarint w port;
      W.uvarint w count
    | Connecting { fd; count } ->
      W.u8 w 1;
      W.uvarint w fd;
      W.uvarint w count
    | Send { fd; next; count; pending } ->
      W.u8 w 2;
      W.uvarint w fd;
      W.uvarint w next;
      W.uvarint w count;
      W.string w pending

  let decode r =
    match R.u8 r with
    | 0 ->
      let host = R.uvarint r in
      let port = R.uvarint r in
      let count = R.uvarint r in
      Boot { host; port; count }
    | 1 ->
      let fd = R.uvarint r in
      let count = R.uvarint r in
      Connecting { fd; count }
    | _ ->
      let fd = R.uvarint r in
      let next = R.uvarint r in
      let count = R.uvarint r in
      let pending = R.string r in
      Send { fd; next; count; pending }

  let init ~argv =
    match argv with
    | [ host; port; count ] ->
      Boot { host = int_of_string host; port = int_of_string port; count = int_of_string count }
    | _ -> Boot { host = 0; port = 6000; count = 1000 }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { host; port; count } -> (
      let fd = ctx.socket () in
      match ctx.connect fd (Simnet.Addr.Inet { host; port }) with
      | Ok () ->
        Simos.Program.Block (Connecting { fd; count }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | Error _ -> Simos.Program.Exit 2)
    | Connecting { fd; count } -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established ->
        Simos.Program.Continue (Send { fd; next = 0; count; pending = "" })
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (Connecting { fd; count }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ -> Simos.Program.Exit 2)
    | Send { fd; next; count; pending } ->
      if pending <> "" then begin
        match ctx.write_fd fd pending with
        | Ok n when n = String.length pending ->
          Simos.Program.Compute (Send { fd; next; count; pending = "" }, 1e-4)
        | Ok n ->
          Simos.Program.Block
            ( Send { fd; next; count; pending = String.sub pending n (String.length pending - n) },
              Simos.Program.Writable fd )
        | Error _ -> Simos.Program.Exit 2
      end
      else if next < count then
        Simos.Program.Continue (Send { fd; next = next + 1; count; pending = encode_record next })
      else begin
        ctx.close_fd fd;
        Simos.Program.Exit 0
      end
end

(* ------------------------------------------------------------------ *)
(* p:pipeline — forks a child and streams sequence numbers to it through
   a pipe (promoted to a socketpair under DMTCP).  The child validates
   ordering and writes the verdict. *)

module Pipeline = struct
  type state =
    | Start of { count : int; out : string }
    | Parent of { wfd : int; next : int; count : int; pending : string }
    | Child of { rfd : int; expect : int; count : int; buf : string; out : string }

  let name = "p:pipeline"

  let encode w = function
    | Start { count; out } ->
      W.u8 w 0;
      W.uvarint w count;
      W.string w out
    | Parent { wfd; next; count; pending } ->
      W.u8 w 1;
      W.uvarint w wfd;
      W.uvarint w next;
      W.uvarint w count;
      W.string w pending
    | Child { rfd; expect; count; buf; out } ->
      W.u8 w 2;
      W.uvarint w rfd;
      W.uvarint w expect;
      W.uvarint w count;
      W.string w buf;
      W.string w out

  let decode r =
    match R.u8 r with
    | 0 ->
      let count = R.uvarint r in
      let out = R.string r in
      Start { count; out }
    | 1 ->
      let wfd = R.uvarint r in
      let next = R.uvarint r in
      let count = R.uvarint r in
      let pending = R.string r in
      Parent { wfd; next; count; pending }
    | _ ->
      let rfd = R.uvarint r in
      let expect = R.uvarint r in
      let count = R.uvarint r in
      let buf = R.string r in
      let out = R.string r in
      Child { rfd; expect; count; buf; out }

  let init ~argv =
    match argv with
    | [ count; out ] -> Start { count = int_of_string count; out }
    | _ -> Start { count = 500; out = "/tmp/pipeline" }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Start { count; out } ->
      let rfd, wfd = ctx.pipe () in
      Simos.Program.Fork
        {
          parent = Parent { wfd; next = 0; count; pending = "" };
          child = Child { rfd; expect = 0; count; buf = ""; out };
        }
    | Parent { wfd = -1; _ } -> (
      (* writing done: reap the child, then exit *)
      match ctx.wait_child () with
      | `Child _ | `No_children -> Simos.Program.Exit 0
      | `None -> Simos.Program.Block (st, Simos.Program.Child))
    | Parent { wfd; next; count; pending } ->
      if pending <> "" then begin
        match ctx.write_fd wfd pending with
        | Ok n when n = String.length pending ->
          Simos.Program.Compute (Parent { wfd; next; count; pending = "" }, 1e-4)
        | Ok n ->
          Simos.Program.Block
            ( Parent { wfd; next; count; pending = String.sub pending n (String.length pending - n) },
              Simos.Program.Writable wfd )
        | Error _ -> Simos.Program.Exit 2
      end
      else if next < count then
        Simos.Program.Continue (Parent { wfd; next = next + 1; count; pending = encode_record next })
      else begin
        ctx.close_fd wfd;
        Simos.Program.Continue (Parent { wfd = -1; next; count; pending = "" })
      end
    | Child { rfd; expect; count; buf; out } -> (
      let finish msg code =
        (match ctx.open_file out with
        | Ok fd ->
          ignore (ctx.write_fd fd msg);
          ctx.close_fd fd
        | Error _ -> ());
        Simos.Program.Exit code
      in
      match ctx.read_fd rfd ~max:65536 with
      | `Data d ->
        let buf = buf ^ d in
        let nrec = String.length buf / record_bytes in
        let ok = ref true in
        let expect = ref expect in
        for i = 0 to nrec - 1 do
          if decode_record buf (i * record_bytes) <> !expect then ok := false else incr expect
        done;
        let buf = String.sub buf (nrec * record_bytes) (String.length buf mod record_bytes) in
        if not !ok then finish (Printf.sprintf "FAIL at %d" !expect) 1
        else if !expect >= count then finish (Printf.sprintf "OK %d" !expect) 0
        else
          Simos.Program.Block
            (Child { rfd; expect = !expect; count; buf; out }, Simos.Program.Readable rfd)
      | `Eof ->
        if expect >= count then finish (Printf.sprintf "OK %d" expect) 0
        else finish (Printf.sprintf "FAIL eof at %d" expect) 1
      | `Would_block ->
        Simos.Program.Block (Child { rfd; expect; count; buf; out }, Simos.Program.Readable rfd)
      | `Err _ -> finish "FAIL err" 1)
  end

(* ------------------------------------------------------------------ *)
(* p:aware — exercises the dmtcpaware API: holds a critical section for a
   while, during which checkpoints must not start. *)

module Aware = struct
  type state = { phase : int; hold : float; entered_at : float }

  let name = "p:aware"

  let encode w st =
    W.uvarint w st.phase;
    W.f64 w st.hold;
    W.f64 w st.entered_at

  let decode r =
    let phase = R.uvarint r in
    let hold = R.f64 r in
    let entered_at = R.f64 r in
    { phase; hold; entered_at }

  let init ~argv =
    match argv with
    | [ hold ] -> { phase = 0; hold = float_of_string hold; entered_at = 0. }
    | _ -> { phase = 0; hold = 0.5; entered_at = 0. }

  let step (ctx : Simos.Program.ctx) st =
    match st.phase with
    | 0 ->
      Dmtcp.Dmtcpaware.delay_checkpoints ctx;
      Simos.Program.Block
        ( { st with phase = 1; entered_at = ctx.now () },
          Simos.Program.Sleep_until (ctx.now () +. st.hold) )
    | 1 ->
      Dmtcp.Dmtcpaware.allow_checkpoints ctx;
      Simos.Program.Continue { st with phase = 2 }
    | _ -> Simos.Program.Compute (st, 1e-3)
end

(* ------------------------------------------------------------------ *)
(* p:shm — exercises mmap-shared memory across a fork: the parent maps a
   shared segment with a backing file, forks, and the two processes play
   ping/pong through the segment.  After a checkpoint+restart the
   processes must end up sharing one segment again (paper §4.5). *)

module Shm = struct
  type role = Ping | Pong

  type state =
    | Sh_start of { rounds : int; out : string }
    | Sh_run of { role : role; addr : int; round : int; rounds : int; out : string }

  let name = "p:shm"

  let encode w = function
    | Sh_start { rounds; out } ->
      W.u8 w 0;
      W.uvarint w rounds;
      W.string w out
    | Sh_run { role; addr; round; rounds; out } ->
      W.u8 w 1;
      W.u8 w (match role with Ping -> 0 | Pong -> 1);
      W.uvarint w addr;
      W.uvarint w round;
      W.uvarint w rounds;
      W.string w out

  let decode r =
    match R.u8 r with
    | 0 ->
      let rounds = R.uvarint r in
      let out = R.string r in
      Sh_start { rounds; out }
    | _ ->
      let role = if R.u8 r = 0 then Ping else Pong in
      let addr = R.uvarint r in
      let round = R.uvarint r in
      let rounds = R.uvarint r in
      let out = R.string r in
      Sh_run { role; addr; round; rounds; out }

  let init ~argv =
    match argv with
    | [ rounds; out ] -> Sh_start { rounds = int_of_string rounds; out }
    | _ -> Sh_start { rounds = 100; out = "/tmp/shm" }

  (* slot layout: 8-byte turn counter; even = ping's turn to write *)
  let read_turn (ctx : Simos.Program.ctx) addr =
    decode_record (ctx.mem_read ~addr ~len:record_bytes) 0

  let write_turn (ctx : Simos.Program.ctx) addr v = ctx.mem_write ~addr (encode_record v)

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Sh_start { rounds; out } ->
      let region =
        ctx.mmap ~bytes:Mem.Page.size
          ~kind:(Mem.Region.Mmap_shared { backing_path = "/dev/shm/pingpong" })
      in
      let addr = region.Mem.Region.start_addr in
      write_turn ctx addr 0;
      Simos.Program.Fork
        {
          parent = Sh_run { role = Ping; addr; round = 0; rounds; out };
          child = Sh_run { role = Pong; addr; round = 0; rounds; out };
        }
    | Sh_run { role; addr; round; rounds; out } ->
      let turn = read_turn ctx addr in
      let mine = match role with Ping -> turn mod 2 = 0 | Pong -> turn mod 2 = 1 in
      if turn >= 2 * rounds then begin
        if role = Ping then begin
          (* verify the counter advanced strictly through both processes *)
          match ctx.open_file out with
          | Ok fd ->
            ignore (ctx.write_fd fd (Printf.sprintf "SHM OK %d" turn));
            ctx.close_fd fd;
            Simos.Program.Exit 0
          | Error _ -> Simos.Program.Exit 1
        end
        else Simos.Program.Exit 0
      end
      else if mine then begin
        write_turn ctx addr (turn + 1);
        Simos.Program.Compute
          (Sh_run { role; addr; round = round + 1; rounds; out }, 1e-3)
      end
      else
        (* poll the shared word; shared memory has no readiness events *)
        Simos.Program.Block
          (Sh_run { role; addr; round; rounds; out }, Simos.Program.Sleep_until (ctx.now () +. 2e-3))
end

(* ------------------------------------------------------------------ *)
(* p:sigapp — installs a handler for SIGUSR1 (10) and ignores SIGTERM
   (15), then counts handled signals until a target is reached.  Signal
   dispositions and the pending queue are checkpointed state. *)

module Sigapp = struct
  type state = { want : int; got : int; out : string; installed : bool }

  let name = "p:sigapp"

  let encode w st =
    W.uvarint w st.want;
    W.uvarint w st.got;
    W.string w st.out;
    W.bool w st.installed

  let decode r =
    let want = R.uvarint r in
    let got = R.uvarint r in
    let out = R.string r in
    let installed = R.bool r in
    { want; got; out; installed }

  let init ~argv =
    match argv with
    | [ want; out ] -> { want = int_of_string want; got = 0; out; installed = false }
    | _ -> { want = 3; got = 0; out = "/tmp/sig"; installed = false }

  let step (ctx : Simos.Program.ctx) st =
    if not st.installed then begin
      ctx.sigaction_set 10 (`Handler "count_usr1");
      ctx.sigaction_set 15 `Ignore;
      Simos.Program.Continue { st with installed = true }
    end
    else
      match ctx.take_signal () with
      | Some 10 ->
        let got = st.got + 1 in
        if got >= st.want then begin
          (match ctx.open_file st.out with
          | Ok fd ->
            ignore (ctx.write_fd fd (Printf.sprintf "SIGNALS %d" got));
            ctx.close_fd fd
          | Error _ -> ());
          Simos.Program.Exit 0
        end
        else Simos.Program.Continue { st with got }
      | Some _ -> Simos.Program.Continue st
      | None -> Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 5e-3))
end

(* ------------------------------------------------------------------ *)
(* p:dirty — materializes real (incompressible) data across many pages,
   then keeps computing while rewriting a small page subset each
   iteration.  This is the dirty-page workload for the content-addressed
   store: successive checkpoints share every frame covering the stable
   pages and re-ship only the dirtied ones. *)

module Dirty = struct
  type state = {
    phase : int;
    pages : int;  (* pages of real data to materialize *)
    dirty : int;  (* pages rewritten every iteration *)
    iters : int;
    done_ : int;
    base : int;  (* region start address, 0 until mapped *)
    out : string;
  }

  let name = "p:dirty"

  let encode w st =
    W.uvarint w st.phase;
    W.uvarint w st.pages;
    W.uvarint w st.dirty;
    W.uvarint w st.iters;
    W.uvarint w st.done_;
    W.uvarint w st.base;
    W.string w st.out

  let decode r =
    let phase = R.uvarint r in
    let pages = R.uvarint r in
    let dirty = R.uvarint r in
    let iters = R.uvarint r in
    let done_ = R.uvarint r in
    let base = R.uvarint r in
    let out = R.string r in
    { phase; pages; dirty; iters; done_; base; out }

  let init ~argv =
    match argv with
    | [ pages; dirty; iters; out ] ->
      {
        phase = 0;
        pages = int_of_string pages;
        dirty = int_of_string dirty;
        iters = int_of_string iters;
        done_ = 0;
        base = 0;
        out;
      }
    | _ -> { phase = 0; pages = 16; dirty = 2; iters = 100; done_ = 0; base = 0; out = "/tmp/dirty" }

  (* page-sized, deterministic, non-periodic, and incompressible enough
     that the checkpoint pipeline cannot shrink it away *)
  let page_payload ~page ~version =
    String.init Mem.Page.size (fun i ->
        let v =
          (i * 131) + ((i lsr 8) * 17) + ((i lsr 16) * 211) + (page * 7919) + (version * 104729)
        in
        Char.chr (v land 0xff))

  let write_page (ctx : Simos.Program.ctx) st ~page ~version =
    ctx.mem_write ~addr:(st.base + (page * Mem.Page.size)) (page_payload ~page ~version)

  let step (ctx : Simos.Program.ctx) st =
    if st.phase = 0 then begin
      let region = ctx.mmap ~bytes:(st.pages * Mem.Page.size) ~kind:Mem.Region.Heap in
      let st = { st with phase = 1; base = region.Mem.Region.start_addr } in
      for page = 0 to st.pages - 1 do
        write_page ctx st ~page ~version:0
      done;
      Simos.Program.Continue st
    end
    else if st.done_ < st.iters then begin
      let st = { st with done_ = st.done_ + 1 } in
      for page = 0 to min st.dirty st.pages - 1 do
        write_page ctx st ~page ~version:st.done_
      done;
      Simos.Program.Compute (st, 2e-3)
    end
    else begin
      (match ctx.open_file st.out with
      | Ok fd ->
        ignore (ctx.write_fd fd (Printf.sprintf "dirty:%d" st.done_));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
end

(* ------------------------------------------------------------------ *)

let registered = ref false

let ensure_registered () =
  if not !registered then begin
    registered := true;
    List.iter Simos.Program.register
      [
        (module Counter : Simos.Program.S);
        (module Memhog);
        (module Dirty);
        (module Stream_server);
        (module Stream_client);
        (module Pipeline);
        (module Aware);
        (module Shm);
        (module Sigapp);
      ]
  end
