(* Delta-chain chaos: faults aimed at the incremental/forked fast path.

   Like [Store_fault], these scenarios live outside [Scenario.sample] so
   the pinned corpus's RNG draw order is untouched.  All three are
   deterministic.

   - [deep_chain]: checkpoint four times under incremental mode so the
     restart point is a depth-3 delta chain, kill the computation, and
     restart.  The recovered run's output must be byte-identical to the
     output of the same workload checkpointed with full images at the
     same cadence — deltas must be invisible to the computation.

   - [forked_crash]: crash the workload's node while a forked
     incremental checkpoint's background write is still in flight.  The
     restart must come back with the exact output — from the delta if
     its write landed, else by falling back to the newest
     fully-resolvable generation — or fail cleanly with exit 73 and the
     lost blocks named.  A wrong answer or a half-restored computation
     is the only failure.

   - [base_loss]: drop the store node holding the only replica of a
     delta's base generation.  [script_images_available] must report
     the chain unresolvable, and the restart must exit 73 cleanly:
     missing blocks named in the trace, nothing half-restored, no
     output. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

(* one process, 8 MB resident, deterministic output; enough iterations
   (2 ms each) that the workload is still running after several spaced
   checkpoint rounds *)
let prog = "p:memhog"
let iters = 3000
let expected = sprintf "hog:%d" iters
let home = 1 (* node the workload runs (and restarts) on; coord is node 0 *)

let output env ~out_path =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl home)) out_path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.1
  done

(* ------------------------------------------------------------------ *)
(* deep_chain *)

(* launch, checkpoint [ckpts] times (a depth-(ckpts-1) chain under
   incremental mode), kill, restart, run to completion; returns the
   output and the restart script for shape assertions *)
let run_variant ~incremental ~out_path =
  Progs.ensure_registered ();
  let options =
    { Dmtcp.Options.default with Dmtcp.Options.incremental; delta_chain = 8 }
  in
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog
       ~argv:[ "8"; string_of_int iters; out_path ]);
  Common.run_for env 0.5;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  for _ = 1 to 3 do
    Common.run_for env 0.2;
    Dmtcp.Api.checkpoint_now env.Common.rt
  done;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> output env ~out_path <> None);
  (output env ~out_path, script)

let deep_chain () =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let delta_out, delta_script = run_variant ~incremental:true ~out_path:"/data/df_delta" in
  let full_out, _ = run_variant ~incremental:false ~out_path:"/data/df_full" in
  let chain_depth_ok =
    List.exists
      (fun (_, paths) ->
        List.exists (fun p -> Filename.check_suffix p ".d3.dmtcp") paths)
      delta_script.Dmtcp.Restart_script.entries
  in
  if not chain_depth_ok then
    fail "incremental run did not leave a depth-3 chain (no .d3 image in the script)";
  (match (delta_out, full_out) with
  | Some d, Some f when d = f && d = expected -> ()
  | Some d, Some f when d <> f ->
    fail "delta-chain restart diverged from full-image restart: %S vs %S" d f
  | Some d, Some _ -> fail "both variants agree on a wrong answer: %S (want %S)" d expected
  | None, _ -> fail "delta-chain restart never finished (no output)"
  | _, None -> fail "full-image restart never finished (no output)");
  !violations

(* ------------------------------------------------------------------ *)
(* forked_crash *)

let store_of env =
  match Dmtcp.Runtime.store env.Common.rt with
  | Some s -> s
  | None -> failwith "delta_fault: runtime installed without the store"

let forked_crash () =
  Progs.ensure_registered ();
  let out_path = "/data/df_forked" in
  let options =
    {
      Dmtcp.Options.default with
      Dmtcp.Options.incremental = true;
      forked = true;
      delta_chain = 8;
      store = true;
      store_replicas = 2;
      keep_generations = 3;
    }
  in
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog
       ~argv:[ "8"; string_of_int iters; out_path ]);
  Common.run_for env 0.5;
  (* full checkpoint; wait for the forked background write to land so
     the next round's delta has a durable base *)
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let store = store_of env in
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> Store.manifests store <> []);
  if Store.manifests store = [] then fail "full checkpoint never landed in the store";
  Common.run_for env 0.3;
  (* delta checkpoint: blackout ends at the snapshot, the compression
     and store write run in the background child *)
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  (* the node dies with that write still in flight *)
  Simos.Cluster.crash_node env.Common.cl home;
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.restart env.Common.rt script;
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> output env ~out_path <> None);
  Trace.detach sink;
  let events = Trace.events col in
  let saw name = List.exists (fun (e : Trace.event) -> e.Trace.name = name) events in
  (match output env ~out_path with
  | Some got when got = expected ->
    (* recovered: either the delta landed and resolved, or the restart
       degraded to the durable full generation — the trace must show
       which, and one of the two must have happened *)
    if not (saw "rst/delta-resolve" || saw "rst/delta-fallback") then
      fail "restart recovered but the trace shows neither a delta resolve nor a fallback"
  | Some got -> fail "restart after mid-forked crash diverged: expected %S, got %S" expected got
  | None ->
    (* no recovery: only a clean exit 73 naming the loss is acceptable *)
    let exit_codes =
      List.filter_map
        (fun (e : Trace.event) ->
          if e.Trace.name = "proc/exit" then List.assoc_opt "code" e.Trace.args else None)
        events
    in
    if not (List.mem "73" exit_codes) then
      fail "no output and no clean exit 73 after mid-forked crash (saw exits: %s)"
        (String.concat "," exit_codes);
    if not (saw "rst/missing-blocks") then
      fail "failed restart did not name the lost blocks";
    if Dmtcp.Runtime.hijacked_processes env.Common.rt <> [] then
      fail "processes half-restored after a failed (exit 73) restart");
  !violations

(* ------------------------------------------------------------------ *)
(* base_loss *)

let base_loss () =
  Progs.ensure_registered ();
  let out_path = "/data/df_base" in
  let options =
    {
      Dmtcp.Options.default with
      Dmtcp.Options.incremental = true;
      delta_chain = 8;
      store = true;
      store_replicas = 1;
      keep_generations = 3;
    }
  in
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog
       ~argv:[ "8"; string_of_int iters; out_path ]);
  Common.run_for env 0.5;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  Common.run_for env 0.3;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  let store = store_of env in
  (* sanity: the catalog must hold a delta manifest chained to a full
     base — otherwise this scenario is not testing what it claims *)
  (match
     List.find_opt (fun (m : Store.manifest) -> m.Store.m_base <> None) (Store.manifests store)
   with
  | None -> fail "no delta manifest in the catalog after two incremental checkpoints"
  | Some m -> (
    let base = Option.get m.Store.m_base in
    match Store.find store ~name:base with
    | None -> fail "delta's base %s is not catalogued" base
    | Some b when b.Store.m_base <> None -> fail "expected a full base, got a delta"
    | Some _ -> ()));
  (* the single replica of every block — base generation included — is
     on the writing node; lose it *)
  Store.drop_node store home;
  if Dmtcp.Api.script_images_available env.Common.rt script then
    fail "images reported available with the delta's base generation gone";
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.restart env.Common.rt script;
  Common.run_for env 5.0;
  Trace.detach sink;
  let events = Trace.events col in
  let exit_codes =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.name = "proc/exit" then List.assoc_opt "code" e.Trace.args else None)
      events
  in
  if not (List.mem "73" exit_codes) then
    fail "restarter did not exit 73 with the delta chain unresolvable (saw exits: %s)"
      (String.concat "," exit_codes);
  (match
     List.find_opt (fun (e : Trace.event) -> e.Trace.name = "rst/missing-blocks") events
   with
  | None -> fail "no missing-blocks report from the restarter"
  | Some e ->
    if Option.value ~default:"" (List.assoc_opt "blocks" e.Trace.args) = "" then
      fail "missing-blocks report does not name the lost blocks");
  if Dmtcp.Runtime.hijacked_processes env.Common.rt <> [] then
    fail "processes half-restored after a failed (exit 73) restart";
  if output env ~out_path <> None then fail "output produced despite an unresolvable chain";
  !violations
