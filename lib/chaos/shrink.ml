(* Fault-schedule shrinking.

   A failing scenario is identified by (seed, kept fault indices).  The
   shrinker greedily bisects the kept set: drop one fault at a time,
   keeping any removal that still reproduces the failure, until no
   single removal does (a 1-minimal reproducer, ddmin with n = 1 — the
   schedules are short enough that the quadratic worst case is fine).

   [fails keep] must re-run the scenario with only [keep] active and
   report whether it still fails; determinism of the simulator makes the
   answer stable. *)

let minimize ~fails keep =
  if not (fails keep) then keep
  else begin
    let current = ref keep in
    let made_progress = ref true in
    while !made_progress do
      made_progress := false;
      let n = List.length !current in
      let i = ref 0 in
      while !i < n && not !made_progress do
        let candidate = List.filteri (fun j _ -> j <> !i) !current in
        if fails candidate then begin
          current := candidate;
          made_progress := true
        end
        else incr i
      done
    done;
    !current
  end
