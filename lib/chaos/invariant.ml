(* Invariant checkers for the chaos harness.

   Each checker returns a list of human-readable violations (empty =
   invariant holds).  They are pure observers: they never mutate
   simulation state, so running them from a [Dmtcp.Faults.on_stage]
   callback is safe. *)

let sprintf = Printf.sprintf

(* At the write stage (between global barriers 3 and 4) every drained
   connection must be quiet: the drain stage's flush tokens guarantee
   that no checkpointed socket still holds bytes in its receive buffer,
   its send buffer, or in flight on the wire (paper §4.3 step 4).  Any
   residue here would be lost by the checkpoint image. *)
let drain_residue rt =
  let check_proc (node, pid, (ps : Dmtcp.Runtime.pstate)) =
    match Dmtcp.Runtime.proc_of rt ~node ~pid with
    | None -> []
    | Some proc ->
      Dmtcp.Conn_table.entries ps.Dmtcp.Runtime.conns
      |> List.concat_map (fun (fd, _entry) ->
             match Simos.Kernel.fd_desc proc fd with
             | Some { Simos.Fdesc.kind = Simos.Fdesc.Sock s; _ }
               when Simnet.Fabric.state s = Simnet.Fabric.Established
                    && Dmtcp.Runtime.peer_entry rt s <> None ->
               let r = Simnet.Fabric.recv_buffered s in
               let w = Simnet.Fabric.send_buffered s in
               let fl = Simnet.Fabric.in_flight s in
               if r + w + fl > 0 then
                 [
                   sprintf
                     "drain residue at write stage: node %d pid %d fd %d still holds %d recv + \
                      %d send + %d in-flight bytes"
                     node pid fd r w fl;
                 ]
               else []
             | _ -> [])
  in
  List.concat_map check_proc (Dmtcp.Runtime.hijacked_processes rt)

(* Connection-table hygiene: every entry points at a live fd of socket
   kind with the recorded open-file-description id, and every
   established socket's peer endpoint is owned by some checkpointed
   process (no dangling socket ids that a restart could never
   rewire). *)
let conn_tables rt =
  let check_proc (node, pid, (ps : Dmtcp.Runtime.pstate)) =
    match Dmtcp.Runtime.proc_of rt ~node ~pid with
    | None -> [ sprintf "conn-table: pstate registered for dead process node %d pid %d" node pid ]
    | Some proc ->
      Dmtcp.Conn_table.entries ps.Dmtcp.Runtime.conns
      |> List.concat_map (fun (fd, (entry : Dmtcp.Conn_table.entry)) ->
             match Simos.Kernel.fd_desc proc fd with
             | None ->
               [ sprintf "conn-table: node %d pid %d fd %d has an entry but no open fd" node pid fd ]
             | Some desc ->
               if desc.Simos.Fdesc.desc_id <> entry.Dmtcp.Conn_table.desc_id then
                 [
                   sprintf
                     "conn-table: node %d pid %d fd %d description id mismatch (table %d, kernel %d)"
                     node pid fd entry.Dmtcp.Conn_table.desc_id desc.Simos.Fdesc.desc_id;
                 ]
               else (
                 match desc.Simos.Fdesc.kind with
                 | Simos.Fdesc.Sock s
                   when Simnet.Fabric.state s = Simnet.Fabric.Established
                        && Dmtcp.Runtime.peer_entry rt s = None
                        && not (Simnet.Fabric.peer_gone s) ->
                   (* a half-closed socket legitimately has no peer entry:
                      its stream ends at the in-flight FIN *)
                   [
                     sprintf
                       "conn-table: node %d pid %d fd %d: established socket's peer is not owned \
                        by any checkpointed process (dangling socket id)"
                       node pid fd;
                   ]
                 | Simos.Fdesc.Sock _ -> []
                 | _ ->
                   [
                     sprintf "conn-table: node %d pid %d fd %d entry points at a %s, not a socket"
                       node pid fd (Simos.Fdesc.kind_name desc);
                   ]))
  in
  List.concat_map check_proc (Dmtcp.Runtime.hijacked_processes rt)

(* Replicated-store hygiene: every block referenced by a catalog
   manifest must still exist in the block table, match its
   content-address, and keep at least one replica on a surviving node —
   otherwise the store claims a restart point it can no longer produce.
   Vacuously holds when the runtime was installed without the store. *)
let store_replication rt =
  match Dmtcp.Runtime.store rt with
  | None -> []
  | Some store -> List.map (fun e -> "store: " ^ e) (Store.verify store)

(* After a scenario completes and the fabric settles, nothing must be
   leaked: no checkpointed process still alive, no stray non-coordinator
   process, exactly one coordinator, and the coordinator itself holding
   only its listening socket (all dead client fds reaped). *)
let quiescent (env : Harness.Common.env) =
  let leftovers = Dmtcp.Runtime.hijacked_processes env.Harness.Common.rt in
  let leak =
    if leftovers = [] then []
    else
      [
        sprintf "leak: %d checkpointed process(es) still alive after completion: %s"
          (List.length leftovers)
          (String.concat ", "
             (List.map (fun (n, p, _) -> sprintf "node %d pid %d" n p) leftovers));
      ]
  in
  let coords = ref 0 in
  let coord_fds = ref 0 in
  let strangers = ref [] in
  List.iter
    (fun ((k : Simos.Kernel.t), (p : Simos.Kernel.process)) ->
      match p.Simos.Kernel.cmdline with
      | prog :: _ when prog = Dmtcp.Coordinator.name ->
        incr coords;
        coord_fds := !coord_fds + Hashtbl.length p.Simos.Kernel.fdtable
      | prog :: _ ->
        strangers :=
          sprintf "node %d pid %d (%s)" (Simos.Kernel.node_id k) p.Simos.Kernel.pid prog
          :: !strangers
      | [] ->
        strangers :=
          sprintf "node %d pid %d (<anonymous>)" (Simos.Kernel.node_id k) p.Simos.Kernel.pid
          :: !strangers)
    (Simos.Cluster.all_processes env.Harness.Common.cl);
  let coord_violation =
    if !coords > 1 then [ sprintf "leak: %d coordinators alive after completion" !coords ]
    else if !coords = 1 && !coord_fds > 2 then
      (* listening socket only (one slot of slack for an accept raced
         with our final settle window) *)
      [ sprintf "fd leak: coordinator holds %d fds after completion" !coord_fds ]
    else []
  in
  leak @ (if !strangers = [] then [] else [ sprintf "leak: stray processes after completion: %s" (String.concat ", " !strangers) ]) @ coord_violation
