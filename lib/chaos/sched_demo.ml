(* The canned scheduler scenario: three jobs on an eight-node cluster,
   exercising all three checkpoint-driven policies in one run.

     t=0   job 0 "stream"  prio 1, 2 nodes  (server/client TCP pair)
           job 1 "long"    prio 1, 2 nodes  (two counters)
     t=2   job 2 "big"     prio 5, 6 nodes  -> preempts the youngest
           prio-1 job; the victim checkpoints to the store and requeues
     t=5   a node hosting a running job fail-stops (disk replicas
           dropped too) -> the job self-heals from its newest surviving
           checkpoint on fresh nodes
     t=8   a node hosting a running job is drained -> the job migrates
           by checkpoint + remap + restart

   [run ~faults:false] replays the same submissions without the node
   failure and the drain; [check] compares the faulted run against that
   reference: every job must finish with bit-identical output. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

type result = {
  d_env : Common.env;
  d_sched : Sched.Scheduler.t;
  d_unfinished : int;
  d_outputs : (int * (string * string) list) list;  (* job id -> verdicts *)
}

let nodes = 8
let fail_at = 5.0
let drain_at = 8.0

let options () =
  {
    Dmtcp.Options.default with
    Dmtcp.Options.store = true;
    store_replicas = 2;
    keep_generations = 2;
  }

let counter_spec ~name ~nodes ~priority ~target =
  let out i = sprintf "/data/%s_%d" name i in
  {
    Sched.Job.sp_name = name;
    sp_nodes = nodes;
    sp_priority = priority;
    sp_est_runtime = float_of_int target *. 1e-3;
    sp_procs = nodes;
    sp_launch =
      (fun a ->
        List.init nodes (fun i ->
            (a.(i), "p:counter", [ string_of_int target; out i ])));
    sp_outputs = (fun a -> List.init nodes (fun i -> (a.(i), out i)));
  }

let stream_spec ~name ~priority ~count ~port =
  let out = sprintf "/data/%s" name in
  {
    Sched.Job.sp_name = name;
    sp_nodes = 2;
    sp_priority = priority;
    sp_est_runtime = float_of_int count *. 2e-4;
    sp_procs = 2;
    sp_launch =
      (fun a ->
        [
          (a.(0), "p:stream-server", [ string_of_int port; string_of_int count; out ]);
          (a.(1), "p:stream-client", [ string_of_int a.(0); string_of_int port; string_of_int count ]);
        ]);
    sp_outputs = (fun a -> [ (a.(0), out) ]);
  }

(* the first job currently holding nodes, preferring Running ones *)
let victim_node sched =
  let jobs = Sched.Scheduler.jobs sched in
  let pick phase_ok =
    List.find_opt
      (fun (j : Sched.Job.t) -> phase_ok j.Sched.Job.phase && j.Sched.Job.alloc <> None)
      jobs
  in
  match pick (fun p -> p = Sched.Job.Running) with
  | Some j -> (
    match j.Sched.Job.alloc with
    | Some a -> Some a.(Array.length a - 1)
    | None -> None)
  | None -> (
    match pick Sched.Job.occupies_nodes with
    | Some j -> (
      match j.Sched.Job.alloc with
      | Some a -> Some a.(Array.length a - 1)
      | None -> None)
    | None -> None)

let run ?(faults = true) ?(ckpt_interval = 1.0) () =
  Progs.ensure_registered ();
  let env = Common.setup ~nodes ~cores_per_node:2 ~options:(options ()) () in
  let sched = Sched.Scheduler.create ~ckpt_interval env.Common.cl env.Common.rt in
  let eng = Simos.Cluster.engine env.Common.cl in
  ignore
    (Sched.Scheduler.submit sched (stream_spec ~name:"stream" ~priority:1 ~count:20000 ~port:6200));
  ignore
    (Sched.Scheduler.submit sched (counter_spec ~name:"long" ~nodes:2 ~priority:1 ~target:8000));
  ignore
    (Sim.Engine.schedule_at eng ~time:2.0 (fun () ->
         ignore
           (Sched.Scheduler.submit sched
              (counter_spec ~name:"big" ~nodes:6 ~priority:5 ~target:2000))));
  if faults then begin
    ignore
      (Sim.Engine.schedule_at eng ~time:fail_at (fun () ->
           match victim_node sched with
           | Some node -> Sched.Scheduler.fail_node sched node
           | None -> ()));
    ignore
      (Sim.Engine.schedule_at eng ~time:drain_at (fun () ->
           match victim_node sched with
           | Some node -> Sched.Scheduler.drain sched node
           | None -> ()))
  end;
  let unfinished = Sched.Scheduler.run ~until:120. sched in
  let outputs =
    List.map
      (fun (j : Sched.Job.t) -> (j.Sched.Job.id, j.Sched.Job.outputs))
      (Sched.Scheduler.jobs sched)
  in
  { d_env = env; d_sched = sched; d_unfinished = unfinished; d_outputs = outputs }

(* Violations of the faulted run, judged against the no-fault reference. *)
let check ~reference faulted =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := !violations @ [ m ]) fmt in
  if reference.d_unfinished > 0 then
    fail "reference run left %d job(s) unfinished" reference.d_unfinished;
  if faulted.d_unfinished > 0 then
    fail "faulted run left %d job(s) unfinished" faulted.d_unfinished;
  List.iter
    (fun (j : Sched.Job.t) ->
      match j.Sched.Job.phase with
      | Sched.Job.Done -> ()
      | p -> fail "job %d (%s) ended %s" j.Sched.Job.id j.Sched.Job.spec.Sched.Job.sp_name
               (Sched.Job.phase_name p))
    (Sched.Scheduler.jobs faulted.d_sched);
  List.iter (fun v -> fail "sched invariant: %s" v) (Sched.Scheduler.violations faulted.d_sched);
  List.iter
    (fun (id, outs) ->
      match List.assoc_opt id faulted.d_outputs with
      | None -> fail "job %d missing from faulted run" id
      | Some outs' ->
        if outs <> outs' then
          fail "job %d output diverged from no-fault reference (%s vs %s)" id
            (String.concat ";" (List.map (fun (p, v) -> p ^ "=" ^ v) outs))
            (String.concat ";" (List.map (fun (p, v) -> p ^ "=" ^ v) outs')))
    reference.d_outputs;
  (* the three policies must all actually have fired *)
  if Sched.Scheduler.preemptions faulted.d_sched < 1 then
    fail "no preemption happened (big job did not displace anyone)";
  if Sched.Scheduler.node_failures faulted.d_sched < 1 then
    fail "node failure was never injected";
  if Sched.Scheduler.drains faulted.d_sched < 1 then fail "drain was never injected";
  if Sched.Scheduler.restarts faulted.d_sched < 1 then
    fail "no job ever restarted from a checkpoint image";
  !violations
  @ Invariant.store_replication faulted.d_env.Common.rt
  @ Invariant.quiescent faulted.d_env

let summary (r : result) =
  let s = r.d_sched in
  Sched.Scheduler.status_lines s
  @ [
      sprintf "preemptions %d  node-failures %d  drains %d  restarts %d  relaunches %d"
        (Sched.Scheduler.preemptions s) (Sched.Scheduler.node_failures s)
        (Sched.Scheduler.drains s) (Sched.Scheduler.restarts s)
        (Sched.Scheduler.relaunches s);
      sprintf "makespan %.2fs  lost-work %.2fs" (Sched.Scheduler.makespan s)
        (Sched.Scheduler.total_lost_work s);
    ]
