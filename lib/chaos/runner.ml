(* Chaos scenario execution.

   A scenario runs twice: once on a pristine cluster to capture the
   expected output of every program (the reference run), then on a
   second cluster with the fault schedule applied.  The faulted run may
   checkpoint, be killed at protocol stages, crash nodes, partition
   links, and restart from the last complete checkpoint — and must still
   end with every output byte-identical to the reference, with no state
   leaked.  Everything is driven by virtual time, so a verdict is a pure
   function of (seed, kept fault indices). *)

module Common = Harness.Common

type result = {
  r_seed : int;
  r_desc : string;
  r_kept : int list option;  (* [Some l]: only fault indices in [l] ran *)
  r_ckpts : int;  (* completed checkpoint rounds observed *)
  r_recoveries : int;  (* kill + restart/relaunch cycles performed *)
  r_violations : string list;
  r_span_tail : string list;
      (* on failure: the last protocol trace events per node, oldest first *)
}

let pass r = r.r_violations = []

let sprintf = Printf.sprintf

(* pipeline forks one child; everything else is one process per launch *)
let procs_of_launch (_, prog, _) = if prog = "p:pipeline" then 2 else 1

let expected_procs sc =
  List.fold_left (fun acc l -> acc + procs_of_launch l) 0 sc.Scenario.sc_launches

let node_vfs env node = Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl node)

let outputs_ready env outputs =
  List.for_all
    (fun (node, path) ->
      match Simos.Vfs.lookup (node_vfs env node) path with
      | Some f -> Simos.Vfs.length f > 0
      | None -> false)
    outputs

let read_output env (node, path) =
  match Simos.Vfs.lookup (node_vfs env node) path with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let snapshot_outputs env outputs = List.map (fun o -> (o, read_output env o)) outputs

let restore_output env ((node, path), content) =
  let vfs = node_vfs env node in
  ignore (Simos.Vfs.unlink vfs path);
  match content with
  | None -> ()
  | Some c -> Simos.Vfs.append (Simos.Vfs.open_or_create vfs path) c

let unlink_output env (node, path) = ignore (Simos.Vfs.unlink (node_vfs env node) path)

(* Stagger launches so a stream server is listening before its client
   connects (the client fail-stops on a refused connect). *)
let launch_all env sc =
  List.iter
    (fun (node, prog, argv) ->
      ignore (Dmtcp.Api.launch env.Common.rt ~node ~prog ~argv);
      Common.run_for env 0.1)
    sc.Scenario.sc_launches

(* Best effort: wait (bounded) until every launched process is under
   checkpoint control, so the fault/checkpoint schedule starts from a
   settled computation.  Genuine launch failures surface later as a
   deadline violation. *)
let wait_settled env sc =
  let want = expected_procs sc in
  let deadline = Simos.Cluster.now env.Common.cl +. 2.0 in
  while
    List.length (Dmtcp.Runtime.hijacked_processes env.Common.rt) < want
    && Simos.Cluster.now env.Common.cl < deadline
  do
    Common.run_for env 0.05
  done

let abbrev = function
  | None -> "<missing>"
  | Some s when String.length s <= 48 -> sprintf "%S" s
  | Some s -> sprintf "%S... (%d bytes)" (String.sub s 0 48) (String.length s)

(* ------------------------------------------------------------------ *)
(* Reference run *)

let reference_outputs sc =
  let env = Common.setup ~nodes:sc.Scenario.sc_nodes ~cores_per_node:2 () in
  launch_all env sc;
  let deadline = Simos.Cluster.now env.Common.cl +. sc.Scenario.sc_deadline in
  while
    (not (outputs_ready env sc.Scenario.sc_outputs))
    && Simos.Cluster.now env.Common.cl < deadline
  do
    Common.run_for env 0.1
  done;
  let ok = outputs_ready env sc.Scenario.sc_outputs in
  let contents = List.map (fun o -> read_output env o) sc.Scenario.sc_outputs in
  Common.teardown env;
  if ok then Ok contents
  else Error "reference (unfaulted) run did not complete within the deadline"

(* ------------------------------------------------------------------ *)
(* Faulted run *)

type st = {
  mutable armed : (int * Dmtcp.Faults.stage) list;  (* pending stage kills *)
  mutable kill_times : float list;  (* when a kill/crash actually fired *)
  mutable recovery : bool;  (* computation damaged; restart at next poll *)
  mutable saved : (Dmtcp.Restart_script.t * ((int * string) * string option) list) option;
  mutable last_ckpt_finished : float;
  mutable ckpts : int;
  mutable recoveries : int;
  mutable violations : string list;
  mutable handles : Sim.Engine.handle list;  (* cancellable schedule *)
}

exception Done of string list  (* early abort, with violations *)

let apply_fault st env fault =
  let cl = env.Common.cl in
  let eng = Simos.Cluster.engine cl in
  let fab = Simos.Cluster.fabric cl in
  let rt = env.Common.rt in
  let later delay f = st.handles <- Sim.Engine.schedule eng ~delay f :: st.handles in
  match fault with
  | Scenario.Kill_at_stage { victim; stage } -> st.armed <- st.armed @ [ (victim, stage) ]
  | Scenario.Crash_node { node } ->
    let coord_node = (Dmtcp.Runtime.options rt).Dmtcp.Options.coord_host in
    let doomed =
      node = coord_node
      || List.exists (fun (n, _, _) -> n = node) (Dmtcp.Runtime.hijacked_processes rt)
    in
    Simos.Cluster.crash_node cl node;
    if doomed then begin
      st.kill_times <- Simos.Cluster.now cl :: st.kill_times;
      st.recovery <- true
    end
  | Scenario.Partition { a; b; heal_after } ->
    if a <> b then begin
      Simnet.Fabric.set_link_up fab ~a ~b false;
      later heal_after (fun () -> Simnet.Fabric.set_link_up fab ~a ~b true)
    end
  | Scenario.Latency_spike { a; b; factor; duration } ->
    if a <> b then begin
      Simnet.Fabric.set_latency_factor fab ~a ~b factor;
      later duration (fun () -> Simnet.Fabric.set_latency_factor fab ~a ~b 1.)
    end
  | Scenario.Slow_disk { node; factor; duration } ->
    let target = Simos.Cluster.target cl node in
    Storage.Target.set_slowdown target factor;
    later duration (fun () -> Storage.Target.set_slowdown target 1.)
  | Scenario.Packet_loss { prob; duration } ->
    let rng = Util.Rng.create (Int64.of_int ((Simos.Cluster.nodes cl * 7919) + 13)) in
    Simnet.Fabric.set_drop fab ~prob rng;
    later duration (fun () -> Simnet.Fabric.set_drop fab ~prob:0. rng)

(* The stage observer: runs invariant checks at the write stage and
   fires armed kills.  The victim is killed via a zero-delay event so
   the in-progress manager step retires cleanly. *)
let make_observer st env =
  let rt = env.Common.rt in
  fun ~node:_ ~pid:_ stage ->
    if stage = Dmtcp.Faults.Write then
      st.violations <- Invariant.drain_residue rt @ Invariant.conn_tables rt @ st.violations;
    match st.armed with
    | (victim, astage) :: rest when astage = stage ->
      st.armed <- rest;
      let procs =
        List.sort compare
          (List.map (fun (n, p, _) -> (n, p)) (Dmtcp.Runtime.hijacked_processes rt))
      in
      if procs <> [] then begin
        let vn, vp = List.nth procs (victim mod List.length procs) in
        st.kill_times <- Simos.Cluster.now env.Common.cl :: st.kill_times;
        st.recovery <- true;
        st.handles <-
          Sim.Engine.schedule (Simos.Cluster.engine env.Common.cl) ~delay:0. (fun () ->
              match Dmtcp.Runtime.proc_of rt ~node:vn ~pid:vp with
              | Some p -> Simos.Kernel.kill_process (Dmtcp.Runtime.kernel_of rt ~node:vn) p
              | None -> ())
          :: st.handles
      end
    | _ -> ()

(* A checkpoint round is a usable restart point only if no kill fired
   while it was in flight: a victim dying mid-round can leave the
   completed round with a partial image set. *)
let capture_ckpt st env sc =
  match Dmtcp.Runtime.last_completed_ckpt env.Common.rt with
  | Some info when info.Dmtcp.Runtime.finished > st.last_ckpt_finished ->
    st.last_ckpt_finished <- info.Dmtcp.Runtime.finished;
    st.ckpts <- st.ckpts + 1;
    let tainted =
      List.exists
        (fun t ->
          t >= info.Dmtcp.Runtime.started -. 1e-9 && t <= info.Dmtcp.Runtime.finished +. 1e-9)
        st.kill_times
    in
    if not tainted then
      st.saved <-
        Some (Dmtcp.Api.restart_script env.Common.rt, snapshot_outputs env sc.Scenario.sc_outputs)
  | _ -> ()

let max_recoveries = 10

let recover st env sc =
  if st.recoveries >= max_recoveries then
    raise (Done (sprintf "unrecoverable: gave up after %d recoveries" max_recoveries :: st.violations));
  st.recoveries <- st.recoveries + 1;
  st.recovery <- false;
  Dmtcp.Api.kill_computation env.Common.rt;
  match st.saved with
  | Some (script, snaps) when Dmtcp.Api.script_images_available env.Common.rt script ->
    (* rewind the output files to their state at checkpoint capture so
       a restarted process re-executes its writes onto a clean slate *)
    List.iter (restore_output env) snaps;
    Dmtcp.Api.restart env.Common.rt script
  | Some _ | None ->
    (* no checkpoint yet, or its images are no longer producible (file
       unlinked by retention and store replicas lost): relaunch from
       scratch rather than spawn a restarter doomed to exit 1/73 *)
    List.iter (unlink_output env) sc.Scenario.sc_outputs;
    launch_all env sc

(* Coarse liveness signature: when it stops changing for several virtual
   seconds the computation is stuck (e.g. a node crashed mid-restart)
   and needs another recovery. *)
let progress_signature st env sc =
  ( List.sort compare
      (List.map (fun (n, p, _) -> (n, p)) (Dmtcp.Runtime.hijacked_processes env.Common.rt)),
    st.ckpts,
    st.recoveries,
    List.map (fun o -> read_output env o <> None) sc.Scenario.sc_outputs )

let stall_timeout = 6.0

let faulted_run sc reference =
  let env = Common.setup ~nodes:sc.Scenario.sc_nodes ~cores_per_node:2 () in
  let rt = env.Common.rt in
  let cl = env.Common.cl in
  let st =
    {
      armed = [];
      kill_times = [];
      recovery = false;
      saved = None;
      last_ckpt_finished = 0.;
      ckpts = 0;
      recoveries = 0;
      violations = [];
      handles = [];
    }
  in
  Dmtcp.Faults.on_stage := make_observer st env;
  (* keep the tail of protocol events per node so a failure report can
     show where each node was in the checkpoint/restart conversation *)
  let ring = Trace.ring ~per_node:10 ~cat:"dmtcp" () in
  let ring_sink = Trace.ring_sink ring in
  Trace.attach ring_sink;
  let violations =
    try
      launch_all env sc;
      wait_settled env sc;
      let t0 = Simos.Cluster.now cl in
      let eng = Simos.Cluster.engine cl in
      List.iter
        (fun off ->
          st.handles <-
            Sim.Engine.schedule_at eng ~time:(t0 +. off) (fun () -> Dmtcp.Api.checkpoint rt)
            :: st.handles)
        sc.Scenario.sc_ckpts;
      List.iter
        (fun { Scenario.ev_at; ev_fault } ->
          st.handles <-
            Sim.Engine.schedule_at eng ~time:(t0 +. ev_at) (fun () -> apply_fault st env ev_fault)
            :: st.handles)
        sc.Scenario.sc_events;
      let deadline = t0 +. sc.Scenario.sc_deadline in
      let last_sig = ref (progress_signature st env sc) in
      let last_change = ref t0 in
      let rec loop () =
        Common.run_for env 0.05;
        capture_ckpt st env sc;
        if st.recovery then begin
          recover st env sc;
          last_change := Simos.Cluster.now cl;
          loop ()
        end
        else if outputs_ready env sc.Scenario.sc_outputs then ()
        else if Simos.Cluster.now cl > deadline then
          st.violations <-
            sprintf "timeout: outputs incomplete after %.0fs virtual (ckpts %d, recoveries %d)"
              sc.Scenario.sc_deadline st.ckpts st.recoveries
            :: st.violations
        else begin
          let s = progress_signature st env sc in
          if s <> !last_sig then begin
            last_sig := s;
            last_change := Simos.Cluster.now cl
          end
          else if Simos.Cluster.now cl -. !last_change > stall_timeout then begin
            st.recovery <- true;
            last_change := Simos.Cluster.now cl
          end;
          loop ()
        end
      in
      loop ();
      (* heal everything, cancel the remaining schedule, settle, then
         check the world is clean and the outputs match the reference *)
      List.iter Sim.Engine.cancel st.handles;
      Simnet.Fabric.clear_faults (Simos.Cluster.fabric cl);
      for i = 0 to Simos.Cluster.nodes cl - 1 do
        Storage.Target.set_slowdown (Simos.Cluster.target cl i) 1.
      done;
      Common.run_for env 1.0;
      let mismatches =
        List.map2
          (fun ((_, path) as o) expect ->
            let got = read_output env o in
            if got = expect then []
            else
              [
                sprintf "output %s differs from unfaulted run: expected %s, got %s" path
                  (abbrev expect) (abbrev got);
              ])
          sc.Scenario.sc_outputs reference
        |> List.concat
      in
      st.violations <- mismatches @ st.violations;
      if st.violations = [] then
        st.violations <- Invariant.conn_tables rt @ Invariant.quiescent env;
      st.violations
    with
    | Done v -> v
    | Failure msg -> sprintf "engine failure: %s" msg :: st.violations
  in
  List.iter Sim.Engine.cancel st.handles;
  Trace.detach ring_sink;
  Dmtcp.Faults.on_stage := Dmtcp.Faults.default_observer;
  (try Common.teardown env with _ -> ());
  let span_tail =
    if violations = [] then []
    else
      List.concat_map
        (fun (node, evs) ->
          sprintf "node %d:" node :: List.map (fun e -> "  " ^ Trace.describe_short e) evs)
        (Trace.ring_tails ring)
  in
  (st, List.sort_uniq compare violations, span_tail)

(* ------------------------------------------------------------------ *)

let run ?keep ~seed () =
  let sc0 = Scenario.sample ~seed in
  let sc = match keep with None -> sc0 | Some l -> Scenario.with_faults sc0 l in
  let desc = Scenario.describe sc in
  match reference_outputs sc with
  | Error msg ->
    {
      r_seed = seed;
      r_desc = desc;
      r_kept = keep;
      r_ckpts = 0;
      r_recoveries = 0;
      r_violations = [ msg ];
      r_span_tail = [];
    }
  | Ok reference ->
    let st, violations, span_tail = faulted_run sc reference in
    {
      r_seed = seed;
      r_desc = desc;
      r_kept = keep;
      r_ckpts = st.ckpts;
      r_recoveries = st.recoveries;
      r_violations = violations;
      r_span_tail = span_tail;
    }
