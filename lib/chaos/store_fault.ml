(* Store-specific chaos: replica loss between checkpoint and restart.

   These scenarios live in their own module — not in [Scenario.sample] —
   so the seeded generator's draw order, and with it the pinned chaos
   corpus, stays byte-identical.  Both are fully deterministic.

   - [replica_loss]: checkpoint into the replicated store, then lose the
     restart host's disk — every block's local replica.  The restarter
     must resolve the images through the catalog, pull the surviving
     remote replicas, and the computation must finish with the exact
     output of an unfaulted run.

   - [total_loss]: same, but every replica of the blocks is lost.  The
     restart must fail cleanly — exit code 73 with the unrecoverable
     blocks named in the trace — and restore nothing. *)

module Common = Harness.Common

let sprintf = Printf.sprintf

(* one process, 8 MB resident, deterministic output *)
let prog = "p:memhog"
let out_path = "/data/sf_out"
let iters = 400
let expected = sprintf "hog:%d" iters
let home = 1  (* node the workload runs (and restarts) on *)

let options () =
  {
    Dmtcp.Options.default with
    Dmtcp.Options.store = true;
    store_replicas = 2;
    keep_generations = 2;
  }

(* launch, settle, checkpoint into the store, kill the computation;
   returns the env, the store, and the restart script *)
let checkpointed () =
  Progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:(options ()) () in
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:home ~prog
       ~argv:[ "8"; string_of_int iters; out_path ]);
  Common.run_for env 0.5;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  let store =
    match Dmtcp.Runtime.store env.Common.rt with
    | Some s -> s
    | None -> failwith "store_fault: runtime installed without the store"
  in
  (env, store, script)

let output env =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl home)) out_path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.1
  done

let replica_loss () =
  let env, store, script = checkpointed () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* the home node's disk dies: every image block loses its local copy *)
  Store.drop_node store home;
  if not (Dmtcp.Api.script_images_available env.Common.rt script) then
    fail "images reported unavailable with a replica of every block surviving";
  List.iter (fun e -> fail "store verify after one-replica loss: %s" e) (Store.verify store);
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let deadline = Simos.Cluster.now env.Common.cl +. 30. in
  run_until env ~deadline (fun () -> output env <> None);
  (match output env with
  | Some got when got = expected -> ()
  | Some got ->
    fail "restart from surviving replica diverged: expected %S, got %S" expected got
  | None -> fail "restart from surviving replica never finished (no output)");
  !violations @ Invariant.store_replication env.Common.rt

let total_loss () =
  let env, store, script = checkpointed () in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* every node's disk dies: no replica of any block survives *)
  for node = 0 to Simos.Cluster.nodes env.Common.cl - 1 do
    Store.drop_node store node
  done;
  if Dmtcp.Api.script_images_available env.Common.rt script then
    fail "images reported available with every replica lost";
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Dmtcp.Api.restart env.Common.rt script;
  Common.run_for env 5.0;
  Trace.detach sink;
  let events = Trace.events col in
  let exit_codes =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.name = "proc/exit" then List.assoc_opt "code" e.Trace.args else None)
      events
  in
  if not (List.mem "73" exit_codes) then
    fail "restarter did not exit 73 on total replica loss (saw exits: %s)"
      (String.concat "," exit_codes);
  (match
     List.find_opt (fun (e : Trace.event) -> e.Trace.name = "rst/missing-blocks") events
   with
  | None -> fail "no missing-blocks report from the restarter"
  | Some e ->
    if Option.value ~default:"" (List.assoc_opt "blocks" e.Trace.args) = "" then
      fail "missing-blocks report does not name the lost blocks");
  if Dmtcp.Runtime.hijacked_processes env.Common.rt <> [] then
    fail "processes half-restored after a failed (exit 73) restart";
  if output env <> None then fail "output produced despite unrecoverable images";
  !violations
