(* Workloads for the open-world heuristic plugins (SNIPPETS.md §2).
   Each one talks to something the checkpointer does not control — a
   well-known service port, the kernel's /proc files, an external
   daemon's shared-memory cache — and writes a self-describing verdict,
   so the plugin scenarios can compare a restarted run against an
   unfaulted reference (bit-identical where the heuristic promises it,
   an explicit "degraded" verdict where the paper promises graceful
   degradation instead). *)

module W = Util.Codec.Writer
module R = Util.Codec.Reader

let record_bytes = Progs.record_bytes
let encode_record = Progs.encode_record
let decode_record = Progs.decode_record

(* ------------------------------------------------------------------ *)
(* p:dnssrv — a resolver-style service: accepts one client on a
   well-known port and echoes each fixed-width query record back.  Runs
   until the client goes away.  With [blacklist-ports] active its
   connection is never drained and comes back dead, so after a restart
   the first read fails and the server exits cleanly. *)

module Dns_server = struct
  type state =
    | Boot of { port : int }
    | Accepting of { lfd : int }
    | Serve of { fd : int; buf : string }

  let name = "p:dnssrv"

  let encode w = function
    | Boot { port } ->
      W.u8 w 0;
      W.uvarint w port
    | Accepting { lfd } ->
      W.u8 w 1;
      W.uvarint w lfd
    | Serve { fd; buf } ->
      W.u8 w 2;
      W.uvarint w fd;
      W.string w buf

  let decode r =
    match R.u8 r with
    | 0 -> Boot { port = R.uvarint r }
    | 1 -> Accepting { lfd = R.uvarint r }
    | _ ->
      let fd = R.uvarint r in
      let buf = R.string r in
      Serve { fd; buf }

  let init ~argv =
    match argv with
    | [ port ] -> Boot { port = int_of_string port }
    | _ -> Boot { port = 53 }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { port } -> (
      let lfd = ctx.socket () in
      match ctx.bind lfd ~port with
      | Ok _ -> (
        match ctx.listen lfd ~backlog:4 with
        | Ok () -> Simos.Program.Block (Accepting { lfd }, Simos.Program.Readable lfd)
        | Error _ -> Simos.Program.Exit 2)
      | Error _ -> Simos.Program.Exit 2)
    | Accepting { lfd } -> (
      match ctx.accept lfd with
      | Some fd ->
        ctx.close_fd lfd;
        Simos.Program.Block (Serve { fd; buf = "" }, Simos.Program.Readable fd)
      | None -> Simos.Program.Block (Accepting { lfd }, Simos.Program.Readable lfd))
    | Serve { fd; buf } -> (
      match ctx.read_fd fd ~max:65536 with
      | `Data d ->
        let buf = buf ^ d in
        let nrec = String.length buf / record_bytes in
        for i = 0 to nrec - 1 do
          ignore (ctx.write_fd fd (String.sub buf (i * record_bytes) record_bytes))
        done;
        let rest = String.sub buf (nrec * record_bytes) (String.length buf mod record_bytes) in
        Simos.Program.Compute (Serve { fd; buf = rest }, 1e-5)
      | `Would_block -> Simos.Program.Block (Serve { fd; buf }, Simos.Program.Readable fd)
      | `Eof | `Err _ ->
        (* client gone (or the restarted connection is a dead socket) *)
        ctx.close_fd fd;
        Simos.Program.Exit 0)
end

(* ------------------------------------------------------------------ *)
(* p:dnscli — a client doing [count] lookups against the service.  Each
   lookup is a write + echo round-trip; the moment the connection fails
   (EOF or a write error — exactly what a blacklisted connection shows
   after restart) it switches to direct "fallback" lookups, the way a
   resolver library falls back when its server socket dies.  The verdict
   records the mode it finished in, and the lookup count is the same in
   both, so each mode's verdict is deterministic. *)

module Dns_client = struct
  type state =
    | Boot of { host : int; port : int; count : int; out : string }
    | Connecting of { fd : int; count : int; out : string }
    | Ask of { fd : int; n : int; count : int; out : string }
    | Await of { fd : int; n : int; count : int; out : string; buf : string }
    | Fallback of { n : int; count : int; out : string }

  let name = "p:dnscli"

  let encode w = function
    | Boot { host; port; count; out } ->
      W.u8 w 0;
      W.uvarint w host;
      W.uvarint w port;
      W.uvarint w count;
      W.string w out
    | Connecting { fd; count; out } ->
      W.u8 w 1;
      W.uvarint w fd;
      W.uvarint w count;
      W.string w out
    | Ask { fd; n; count; out } ->
      W.u8 w 2;
      W.uvarint w fd;
      W.uvarint w n;
      W.uvarint w count;
      W.string w out
    | Await { fd; n; count; out; buf } ->
      W.u8 w 3;
      W.uvarint w fd;
      W.uvarint w n;
      W.uvarint w count;
      W.string w out;
      W.string w buf
    | Fallback { n; count; out } ->
      W.u8 w 4;
      W.uvarint w n;
      W.uvarint w count;
      W.string w out

  let decode r =
    match R.u8 r with
    | 0 ->
      let host = R.uvarint r in
      let port = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Boot { host; port; count; out }
    | 1 ->
      let fd = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Connecting { fd; count; out }
    | 2 ->
      let fd = R.uvarint r in
      let n = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Ask { fd; n; count; out }
    | 3 ->
      let fd = R.uvarint r in
      let n = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      let buf = R.string r in
      Await { fd; n; count; out; buf }
    | _ ->
      let n = R.uvarint r in
      let count = R.uvarint r in
      let out = R.string r in
      Fallback { n; count; out }

  let init ~argv =
    match argv with
    | [ host; port; count; out ] ->
      Boot { host = int_of_string host; port = int_of_string port; count = int_of_string count; out }
    | _ -> Boot { host = 0; port = 53; count = 1000; out = "/tmp/dns" }

  let finish (ctx : Simos.Program.ctx) out msg =
    (match ctx.open_file out with
    | Ok fd ->
      ignore (ctx.write_fd fd msg);
      ctx.close_fd fd
    | Error _ -> ());
    Simos.Program.Exit 0

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { host; port; count; out } -> (
      let fd = ctx.socket () in
      match ctx.connect fd (Simnet.Addr.Inet { host; port }) with
      | Ok () ->
        Simos.Program.Block
          (Connecting { fd; count; out }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | Error _ -> Simos.Program.Exit 2)
    | Connecting { fd; count; out } -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established ->
        Simos.Program.Continue (Ask { fd; n = 0; count; out })
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block
          (Connecting { fd; count; out }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ -> Simos.Program.Exit 2)
    | Ask { fd; n; count; out } ->
      if n >= count then begin
        ctx.close_fd fd;
        finish ctx out (Printf.sprintf "dns:%d live" count)
      end
      else begin
        (* records are tiny; a short write never splits one *)
        match ctx.write_fd fd (encode_record n) with
        | Ok _ ->
          Simos.Program.Block (Await { fd; n; count; out; buf = "" }, Simos.Program.Readable fd)
        | Error _ ->
          ctx.close_fd fd;
          Simos.Program.Continue (Fallback { n; count; out })
      end
    | Await { fd; n; count; out; buf } -> (
      match ctx.read_fd fd ~max:record_bytes with
      | `Data d ->
        let buf = buf ^ d in
        if String.length buf < record_bytes then
          Simos.Program.Block (Await { fd; n; count; out; buf }, Simos.Program.Readable fd)
        else if decode_record buf 0 <> n then finish ctx out (Printf.sprintf "dns FAIL at %d" n)
        else Simos.Program.Compute (Ask { fd; n = n + 1; count; out }, 1e-3)
      | `Would_block ->
        Simos.Program.Block (Await { fd; n; count; out; buf }, Simos.Program.Readable fd)
      | `Eof | `Err _ ->
        ctx.close_fd fd;
        Simos.Program.Continue (Fallback { n; count; out }))
    | Fallback { n; count; out } ->
      if n < count then
        (* direct lookup, no cache/service: same answer, more work *)
        Simos.Program.Compute (Fallback { n = n + 1; count; out }, 1e-3)
      else finish ctx out (Printf.sprintf "dns:%d degraded" count)
end

(* ------------------------------------------------------------------ *)
(* p:procfd — a monitoring-style program that opens its own
   /proc/<pid>/status at startup, holds the fd across a long compute
   phase, and reads it at the end to report on itself.  Restarted under
   a new pid, the held fd names the dead pid's file — unless [proc-fd]
   re-pointed it, the final read sees a stale identity. *)

module Proc_fd = struct
  type state = {
    phase : int;  (* 0 = open, 1 = compute, 2 = report *)
    fd : int;
    iters : int;
    done_ : int;
    out : string;
  }

  let name = "p:procfd"

  let encode w st =
    W.uvarint w st.phase;
    W.uvarint w st.fd;
    W.uvarint w st.iters;
    W.uvarint w st.done_;
    W.string w st.out

  let decode r =
    let phase = R.uvarint r in
    let fd = R.uvarint r in
    let iters = R.uvarint r in
    let done_ = R.uvarint r in
    let out = R.string r in
    { phase; fd; iters; done_; out }

  let init ~argv =
    match argv with
    | [ iters; out ] -> { phase = 0; fd = -1; iters = int_of_string iters; done_ = 0; out }
    | _ -> { phase = 0; fd = -1; iters = 1000; done_ = 0; out = "/tmp/procfd" }

  let status_path pid = Printf.sprintf "/proc/%d/status" pid

  let finish (ctx : Simos.Program.ctx) st msg =
    (match ctx.open_file st.out with
    | Ok fd ->
      ignore (ctx.write_fd fd msg);
      ctx.close_fd fd
    | Error _ -> ());
    ctx.close_fd st.fd;
    Simos.Program.Exit 0

  let step (ctx : Simos.Program.ctx) st =
    if st.phase = 0 then begin
      match ctx.open_file (status_path ctx.pid) with
      | Ok fd -> Simos.Program.Continue { st with phase = 1; fd }
      | Error _ -> Simos.Program.Exit 2
    end
    else if st.phase = 1 then
      if st.done_ < st.iters then
        Simos.Program.Compute ({ st with done_ = st.done_ + 1 }, 1e-3)
      else Simos.Program.Continue { st with phase = 2 }
    else begin
      (* the fd was opened under whatever pid we had at startup; after a
         restart only the [proc-fd] plugin makes this read our own file *)
      match ctx.read_fd st.fd ~max:4096 with
      | `Data d ->
        let want = Printf.sprintf "pid:%d\n" ctx.pid in
        if d = want then finish ctx st (Printf.sprintf "PROC OK %d" st.done_)
        else finish ctx st (Printf.sprintf "PROC STALE %d" st.done_)
      | `Eof | `Would_block | `Err _ -> finish ctx st (Printf.sprintf "PROC EOF %d" st.done_)
    end
end

(* ------------------------------------------------------------------ *)
(* p:nscdapp — lookups through an NSCD-style shared-memory cache: an
   mmap of the daemon's database file, validated by a magic header on
   every lookup.  [ext-shm] zeroes the segment in the checkpoint image,
   so a restarted run finds the header gone and degrades to direct
   lookups — the paper's deliberate trade: a slower correct run instead
   of a cache belonging to a daemon that was never checkpointed. *)

module Nscd_app = struct
  (* arbitrary non-zero marker the daemon would have written *)
  let magic = 0x05CD_CAFE

  type state = {
    phase : int;  (* 0 = map, 1 = lookups *)
    addr : int;
    lookups : int;
    done_ : int;
    degraded : bool;
    out : string;
  }

  let name = "p:nscdapp"

  let encode w st =
    W.uvarint w st.phase;
    W.uvarint w st.addr;
    W.uvarint w st.lookups;
    W.uvarint w st.done_;
    W.bool w st.degraded;
    W.string w st.out

  let decode r =
    let phase = R.uvarint r in
    let addr = R.uvarint r in
    let lookups = R.uvarint r in
    let done_ = R.uvarint r in
    let degraded = R.bool r in
    let out = R.string r in
    { phase; addr; lookups; done_; degraded; out }

  let init ~argv =
    match argv with
    | [ lookups; out ] ->
      { phase = 0; addr = 0; lookups = int_of_string lookups; done_ = 0; degraded = false; out }
    | _ -> { phase = 0; addr = 0; lookups = 1000; degraded = false; done_ = 0; out = "/tmp/nscd" }

  let step (ctx : Simos.Program.ctx) st =
    if st.phase = 0 then begin
      let region =
        ctx.mmap ~bytes:Mem.Page.size
          ~kind:(Mem.Region.Mmap_shared { backing_path = "/var/db/nscd/passwd" })
      in
      let addr = region.Mem.Region.start_addr in
      ctx.mem_write ~addr (encode_record magic);
      Simos.Program.Continue { st with phase = 1; addr }
    end
    else if st.done_ < st.lookups then begin
      let cached =
        (not st.degraded)
        && decode_record (ctx.mem_read ~addr:st.addr ~len:record_bytes) 0 = magic
      in
      (* once the header is gone the library stops trusting the map *)
      let st = { st with done_ = st.done_ + 1; degraded = st.degraded || not cached } in
      Simos.Program.Compute (st, if cached then 1e-3 else 2e-3)
    end
    else begin
      (match ctx.open_file st.out with
      | Ok fd ->
        ignore
          (ctx.write_fd fd
             (Printf.sprintf "nscd:%d %s" st.done_ (if st.degraded then "degraded" else "cached")));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
end

(* ------------------------------------------------------------------ *)

let registered = ref false

let ensure_registered () =
  if not !registered then begin
    registered := true;
    List.iter Simos.Program.register
      [
        (module Dns_server : Simos.Program.S);
        (module Dns_client);
        (module Proc_fd);
        (module Nscd_app);
      ]
  end
