(* Seeded scheduler chaos: random job mixes under random preemption
   pressure, node loss and drains.

   Lives in its own module — not in [Scenario.sample] — so the pinned
   torture corpus keeps its RNG draw order.  One seed determines the job
   mix, the submit times, the checkpoint interval and the fault
   schedule; [run ~seed] plays the plan twice — once without faults
   (reference), once with — and demands that under faults every job
   still finishes with the reference's exact verdict bytes, no two jobs
   ever share a node slot, the store's replication invariant holds, and
   the cluster is quiescent afterwards. *)

module Common = Harness.Common

let sprintf = Printf.sprintf
let nodes = 8

type jkind = Counter | Memhog | Stream

type plan = {
  p_seed : int;
  p_ckpt_interval : float;
  p_jobs : (jkind * int (* size param *) * int (* priority *) * float (* submit *)) list;
  p_fail : (float * int) option;  (* node fail-stop: time, node *)
  p_drain : (float * int) option;  (* operator drain: time, node *)
}

let sample ~seed =
  let rng = Util.Rng.create (Int64.add 0x5C4ED_FA17L (Int64.of_int seed)) in
  let njobs = 3 + Util.Rng.int rng 3 in
  let jobs =
    List.init njobs (fun _ ->
        let kind =
          match Util.Rng.int rng 3 with 0 -> Counter | 1 -> Memhog | _ -> Stream
        in
        let size =
          match kind with
          | Counter -> Util.Rng.int_in rng 1500 4000  (* compute steps *)
          | Memhog -> Util.Rng.int_in rng 200 600  (* iterations *)
          | Stream -> Util.Rng.int_in rng 2000 6000  (* records *)
        in
        let priority = Util.Rng.int rng 6 in
        let submit = Util.Rng.float rng 3.0 in
        (kind, size, priority, submit))
  in
  let fail =
    if Util.Rng.int rng 10 < 8 then
      Some (1.5 +. Util.Rng.float rng 3.5, Util.Rng.int rng nodes)
    else None
  in
  let drain =
    if Util.Rng.int rng 10 < 5 then
      Some (1.5 +. Util.Rng.float rng 4.5, Util.Rng.int rng nodes)
    else None
  in
  {
    p_seed = seed;
    p_ckpt_interval = 0.5 +. Util.Rng.float rng 1.0;
    p_jobs = jobs;
    p_fail = fail;
    p_drain = drain;
  }

let describe p =
  let job i (kind, size, priority, submit) =
    sprintf "job%d %s(%d) prio %d @%.2f" i
      (match kind with Counter -> "counter" | Memhog -> "memhog" | Stream -> "stream")
      size priority submit
  in
  sprintf "seed %d: iv %.2f, %s%s%s" p.p_seed p.p_ckpt_interval
    (String.concat ", " (List.mapi job p.p_jobs))
    (match p.p_fail with
    | Some (t, n) -> sprintf ", fail node %d @%.2f" n t
    | None -> "")
    (match p.p_drain with
    | Some (t, n) -> sprintf ", drain node %d @%.2f" n t
    | None -> "")

let spec_of ~idx (kind, size, priority, _submit) =
  let name = sprintf "j%d" idx in
  let out = sprintf "/chaos/sched_%d" idx in
  match kind with
  | Counter ->
    {
      Sched.Job.sp_name = name;
      sp_nodes = 2;
      sp_priority = priority;
      sp_est_runtime = float_of_int size *. 1e-3;
      sp_procs = 2;
      sp_launch =
        (fun a ->
          List.init 2 (fun i ->
              (a.(i), "p:counter", [ string_of_int size; sprintf "%s_%d" out i ])));
      sp_outputs = (fun a -> List.init 2 (fun i -> (a.(i), sprintf "%s_%d" out i)));
    }
  | Memhog ->
    {
      Sched.Job.sp_name = name;
      sp_nodes = 1;
      sp_priority = priority;
      sp_est_runtime = float_of_int size *. 5e-3;
      sp_procs = 1;
      sp_launch =
        (fun a -> [ (a.(0), "p:memhog", [ "4"; string_of_int size; out ]) ]);
      sp_outputs = (fun a -> [ (a.(0), out) ]);
    }
  | Stream ->
    let port = 6300 + (10 * idx) in
    {
      Sched.Job.sp_name = name;
      sp_nodes = 2;
      sp_priority = priority;
      sp_est_runtime = float_of_int size *. 2e-4;
      sp_procs = 2;
      sp_launch =
        (fun a ->
          [
            (a.(0), "p:stream-server", [ string_of_int port; string_of_int size; out ]);
            ( a.(1),
              "p:stream-client",
              [ string_of_int a.(0); string_of_int port; string_of_int size ] );
          ]);
      sp_outputs = (fun a -> [ (a.(0), out) ]);
    }

let options () =
  {
    Dmtcp.Options.default with
    Dmtcp.Options.store = true;
    store_replicas = 2;
    keep_generations = 2;
  }

(* Play the plan; [faults] selects whether the fail/drain events fire. *)
let play ~faults p =
  Progs.ensure_registered ();
  let env = Common.setup ~nodes ~cores_per_node:2 ~options:(options ()) () in
  let sched =
    Sched.Scheduler.create ~ckpt_interval:p.p_ckpt_interval env.Common.cl env.Common.rt
  in
  let eng = Simos.Cluster.engine env.Common.cl in
  List.iteri
    (fun idx ((_, _, _, submit) as j) ->
      let spec = spec_of ~idx j in
      if submit <= 0. then ignore (Sched.Scheduler.submit sched spec)
      else
        ignore
          (Sim.Engine.schedule_at eng ~time:submit (fun () ->
               ignore (Sched.Scheduler.submit sched spec))))
    p.p_jobs;
  if faults then begin
    (match p.p_fail with
    | Some (t, node) ->
      ignore
        (Sim.Engine.schedule_at eng ~time:t (fun () ->
             if Simos.Cluster.node_up env.Common.cl node then
               Sched.Scheduler.fail_node sched node))
    | None -> ());
    match p.p_drain with
    | Some (t, node) ->
      ignore
        (Sim.Engine.schedule_at eng ~time:t (fun () ->
             if Simos.Cluster.node_up env.Common.cl node then
               Sched.Scheduler.drain sched node))
    | None -> ()
  end;
  let unfinished = Sched.Scheduler.run ~until:240. sched in
  (env, sched, unfinished)

type result = { r_seed : int; r_violations : string list; r_plan : plan }

let pass r = r.r_violations = []

let run ~seed () =
  let p = sample ~seed in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := !violations @ [ m ]) fmt in
  let ref_env, ref_sched, ref_unfinished = play ~faults:false p in
  ignore ref_env;
  if ref_unfinished > 0 then
    fail "reference (no-fault) run left %d job(s) unfinished" ref_unfinished;
  let reference =
    List.map
      (fun (j : Sched.Job.t) -> (j.Sched.Job.id, j.Sched.Job.outputs))
      (Sched.Scheduler.jobs ref_sched)
  in
  let env, sched, unfinished = play ~faults:true p in
  if unfinished > 0 then begin
    fail "faulted run left %d job(s) unfinished" unfinished;
    List.iter (fun l -> fail "  %s" l) (Sched.Scheduler.status_lines sched)
  end;
  List.iter
    (fun (j : Sched.Job.t) ->
      match j.Sched.Job.phase with
      | Sched.Job.Done -> ()
      | p -> fail "job %d ended %s" j.Sched.Job.id (Sched.Job.phase_name p))
    (Sched.Scheduler.jobs sched);
  List.iter (fun v -> fail "sched invariant: %s" v) (Sched.Scheduler.violations sched);
  List.iter
    (fun (j : Sched.Job.t) ->
      match List.assoc_opt j.Sched.Job.id reference with
      | Some outs when outs = j.Sched.Job.outputs -> ()
      | Some outs ->
        fail "job %d verdict diverged under faults: reference %s, got %s" j.Sched.Job.id
          (String.concat ";" (List.map (fun (p, v) -> p ^ "=" ^ v) outs))
          (String.concat ";" (List.map (fun (p, v) -> p ^ "=" ^ v) j.Sched.Job.outputs))
      | None -> fail "job %d absent from reference run" j.Sched.Job.id)
    (Sched.Scheduler.jobs sched);
  let viol =
    !violations
    @ Invariant.store_replication env.Common.rt
    @ Invariant.quiescent env
  in
  { r_seed = seed; r_violations = viol; r_plan = p }

(* [run_seeds ~base ~count] plays a block of seeds; returns failures. *)
let run_seeds ?(log = fun (_ : string) -> ()) ~base ~count () =
  let results =
    List.init count (fun i ->
        let seed = base + i in
        let r = run ~seed () in
        log
          (sprintf "sched seed %d: %s%s" seed
             (if pass r then "ok" else "FAIL")
             (if pass r then ""
              else ": " ^ String.concat "; " r.r_violations));
        r)
  in
  List.filter (fun r -> not (pass r)) results
