(* The torture driver: run a block of seeds, shrink every failure to a
   minimal reproducer, and render a report with replay instructions. *)

type failure = {
  f_result : Runner.result;  (* the original full-schedule failure *)
  f_min_keep : int list;  (* minimal fault indices that still fail *)
  f_min_violations : string list;  (* violations of the minimized run *)
  f_min_span_tail : string list;  (* protocol trace tail of the minimized run *)
  f_nfaults : int;  (* faults in the full schedule *)
}

type summary = {
  s_base : int;
  s_count : int;
  s_passed : int;
  s_failures : failure list;
}

let all_pass s = s.s_failures = []

let keep_to_string = function
  | [] -> "none"
  | l -> String.concat "," (List.map string_of_int l)

let shrink_failure (r : Runner.result) =
  let seed = r.Runner.r_seed in
  let sc = Scenario.sample ~seed in
  let nfaults = List.length sc.Scenario.sc_events in
  let fails keep = not (Runner.pass (Runner.run ~keep ~seed ())) in
  let min_keep = Shrink.minimize ~fails (List.init nfaults Fun.id) in
  let min_run = Runner.run ~keep:min_keep ~seed () in
  {
    f_result = r;
    f_min_keep = min_keep;
    f_min_violations = min_run.Runner.r_violations;
    f_min_span_tail = min_run.Runner.r_span_tail;
    f_nfaults = nfaults;
  }

(* [log] gets one line per seed as it completes (progress reporting). *)
let run_seeds ?(log = fun (_ : string) -> ()) ~base ~count () =
  let results =
    List.init count (fun i ->
        let seed = base + i in
        let r = Runner.run ~seed () in
        log
          (Printf.sprintf "seed %d: %s (ckpts %d, recoveries %d)%s" seed
             (if Runner.pass r then "ok" else "FAIL")
             r.Runner.r_ckpts r.Runner.r_recoveries
             (if Runner.pass r then ""
              else ": " ^ String.concat "; " r.Runner.r_violations));
        r)
  in
  let failures =
    List.filter (fun r -> not (Runner.pass r)) results
    |> List.map (fun r ->
           log (Printf.sprintf "shrinking seed %d..." r.Runner.r_seed);
           shrink_failure r)
  in
  {
    s_base = base;
    s_count = count;
    s_passed = List.length (List.filter Runner.pass results);
    s_failures = failures;
  }

let report s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "torture: %d/%d seeds passed (base %d)\n" s.s_passed s.s_count s.s_base);
  List.iter
    (fun f ->
      let r = f.f_result in
      let sc = Scenario.with_faults (Scenario.sample ~seed:r.Runner.r_seed) f.f_min_keep in
      Buffer.add_string b
        (Printf.sprintf "\nFAIL seed %d (%d faults, minimized to %d)\n" r.Runner.r_seed
           f.f_nfaults (List.length f.f_min_keep));
      Buffer.add_string b (Printf.sprintf "  scenario: %s\n" (Scenario.describe sc));
      List.iter
        (fun v -> Buffer.add_string b (Printf.sprintf "  violation: %s\n" v))
        (if f.f_min_violations <> [] then f.f_min_violations else r.Runner.r_violations);
      let tail =
        if f.f_min_violations <> [] then f.f_min_span_tail else r.Runner.r_span_tail
      in
      if tail <> [] then begin
        Buffer.add_string b "  last protocol events:\n";
        List.iter (fun l -> Buffer.add_string b (Printf.sprintf "    %s\n" l)) tail
      end;
      Buffer.add_string b
        (Printf.sprintf "  replay: dmtcp_sim torture --replay %d --keep %s\n" r.Runner.r_seed
           (keep_to_string f.f_min_keep)))
    s.s_failures;
  Buffer.contents b
