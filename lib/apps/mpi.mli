(** A message-passing library over the simulated cluster — the stand-in
    for MPICH2/OpenMPI in the paper's evaluation — with two
    interchangeable transports:

    - {b direct}: every neighbour pair holds a TCP socket of its own
      (rank [r] listens on [base_port + r]) — the classic mesh.  A
      checkpoint must drain and restore every one of those sockets.
    - {b proxy}: the rank holds exactly one unix-domain connection to
      its node's proxy daemon ({!Proxy.Daemon}); all inter-node TCP
      lives in the proxy, outside checkpoint control.  A checkpoint of
      the rank sees only its in-flight protocol state: per-peer
      sequence numbers and unacknowledged-send buffers.  Proxy custody
      is disposable — after restart the relaunched (empty) proxy hands
      the rank a fresh [Welcome] and the rank resends whatever was
      never acknowledged end-to-end; receivers accept in sequence order
      and discard duplicates, so delivery stays exactly-once.

    DMTCP deliberately knows nothing about the library itself: on the
    direct path checkpoints see only its sockets (the paper's point —
    no MPI-specific checkpoint hooks); on the proxy path the rank image
    shrinks to the protocol state above.

    The library lives *inside* application state machines: a {!t} value
    is part of the program state and fully serializable, so a
    checkpoint taken mid-collective restores and completes correctly on
    either transport.  Collectives (barrier, allreduce, bcast) run over
    a star rooted at rank 0, so rank 0 neighbours everyone. *)

type t

type transport = Direct | Proxied

(** ["direct"] or ["proxy"]/["proxied"]; raises [Invalid_argument]
    otherwise. *)
val transport_of_string : string -> transport

val transport_name : transport -> string

(** [create ~rank ~size ~base_port ~ranks_per_node ~neighbors ()]
    prepares a communicator; drive {!init_step} until [`Ready].

    [neighbors] is the {e whole} neighbour relation, queried for every
    rank: rank [r] may exchange point-to-point messages with
    [neighbors r].  Rank 0 is implicitly a neighbour of every rank.
    The relation is validated eagerly: an out-of-range rank, or an
    asymmetric pair — some [r] listing [n] while [n] does not list [r],
    which would deadlock {!init_step} — raises [Invalid_argument]
    naming both ranks. *)
val create :
  rank:int ->
  size:int ->
  base_port:int ->
  ranks_per_node:int ->
  ?transport:transport ->
  neighbors:(int -> int list) ->
  unit ->
  t

val rank : t -> int
val size : t -> int
val transport : t -> transport

(** Node hosting a rank under this communicator's placement. *)
val host_of_rank : t -> int -> int

(** Progress connection establishment.  Direct: listeners, eager
    connects and rank handshakes.  Proxy: connect to the node proxy and
    await [Welcome]. *)
val init_step : Simos.Program.ctx -> t -> [ `Ready | `Pending ]

(** Queue a message to [dst] (a neighbour). Never blocks; bytes drain via
    {!progress}.  Tags ['g'] and ['r'] are reserved for collectives. *)
val send : t -> dst:int -> tag:char -> string -> unit

(** Push queued bytes out and parse arrived frames into per-peer inboxes
    (on the proxy path this also runs the ack/resend protocol).
    Call once per step before receiving. *)
val progress : Simos.Program.ctx -> t -> unit

(** Take the oldest message with [tag] from [src], if present. *)
val recv : t -> src:int -> tag:char -> string option

(** Take the oldest message with [tag] from any source. *)
val recv_any : t -> tag:char -> (int * string) option

(** Bytes queued toward [dst] that have not yet entered the socket
    (direct: unflushed frames; proxy: unacknowledged payload bytes) —
    application-level backpressure signal. *)
val pending_out : t -> dst:int -> int

(** The wait condition to block on when nothing can progress. *)
val wait : Simos.Program.ctx -> t -> Simos.Program.wait

(** Every payload this rank produced has reached its destination rank
    (direct: output flushed; proxy: nothing buffered or unacknowledged).
    Transport custody is disposable, so a rank must keep driving
    {!progress} until quiesced before it exits — bytes still awaiting
    acknowledgement would otherwise never be resent. *)
val quiesced : t -> bool

(** 8-byte float payload helpers (halo exchanges etc.). *)
val f64_str : float -> string

val str_f64 : string -> float

(** {2 Collectives} — serializable sub-state machines.  Drive with
    [step] until [`Done]; exactly one collective of a given kind may be
    in flight at a time per communicator. *)

module Coll : sig
  type op

  val barrier : op
  val allreduce_sum : float -> op
  val bcast : root_value:float option -> op
    (** root passes [Some v], others [None] *)

  type st

  val start : op -> st
  val step : Simos.Program.ctx -> t -> st -> [ `Done of float | `Pending ]

  val encode : Util.Codec.Writer.t -> st -> unit
  val decode : Util.Codec.Reader.t -> st
end

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
