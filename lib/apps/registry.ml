let register_all () =
  Launchers.register ();
  Nas.register ();
  Stencil.register ();
  Proxy.Daemon.register ();
  Pargeant4.register ();
  Ipython.register ();
  Synthetic.register ();
  Desktop.register ();
  Flood.register ()
