(** Transport-aware MPI workload family exercising the rank/proxy split.

    Both programs take the standard rank argv
    ([rank size base_port rpn notify_host notify_port ...]) with the
    first extra word selecting the {!Mpi.transport} (["direct"] |
    ["proxy"]; default direct), and write their result to
    [/result/<short>-<base_port>] with full float precision so a
    direct run and a proxy run of the same problem can be compared
    byte-for-byte.

    - ["mpi:stencil"] — iterative 1-D Jacobi solver with deep-halo
      exchange over a ring (extras: cells-per-rank, halo depth,
      supersteps).  Each superstep: exchange [h] boundary cells, run
      [h] relaxation sweeps, allreduce the interior sum.
    - ["mpi:bsp"] — bulk-synchronous phase program (extras: phases,
      bytes-per-message, straggle-every, straggle-seconds).  Each
      phase: exchange patterned payloads with ring neighbours, verify
      them, optionally straggle one designated rank — parking the
      others mid-allreduce for the whole delay — then allreduce a
      checksum. *)

val stencil_prog : string
val bsp_prog : string

(** Register both programs (idempotent). *)
val register : unit -> unit
