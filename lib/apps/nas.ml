module W = Util.Codec.Writer
module R = Util.Codec.Reader

let encode_floats w a =
  W.uvarint w (Array.length a);
  Array.iter (W.f64 w) a

let decode_floats r =
  let n = R.uvarint r in
  Array.init n (fun _ -> R.f64 r)

(* simulated CPU seconds per floating-point operation *)
let flop_cost = 2e-9

(* ------------------------------------------------------------------ *)
(* Kernel framework: boot (parse rank args, allocate footprint), MPI
   init, kernel loop, completion notification. *)

type 'k kout = K_compute of 'k * float | K_wait of 'k | K_done of float * bool

module type KERNEL = sig
  type kstate

  val prog_name : string
  val short : string
  val mem_bytes : int
  val mem_mix : Workload_mem.mix
  val neighbors : rank:int -> size:int -> int list
  val kinit : rank:int -> size:int -> extra:string list -> kstate
  val encode_k : W.t -> kstate -> unit
  val decode_k : R.t -> kstate
  val kstep : Simos.Program.ctx -> Mpi.t -> kstate -> kstate kout
end

module Make (K : KERNEL) : Simos.Program.S = struct
  type state =
    | F_boot
    | F_init of Mpi.t * K.kstate
    | F_run of Mpi.t * K.kstate
    | F_notify of Launchers.notify * bool

  let name = K.prog_name

  let encode w = function
    | F_boot -> W.u8 w 0
    | F_init (comm, k) ->
      W.u8 w 1;
      Mpi.encode w comm;
      K.encode_k w k
    | F_run (comm, k) ->
      W.u8 w 2;
      Mpi.encode w comm;
      K.encode_k w k
    | F_notify (n, ok) ->
      W.u8 w 3;
      Launchers.encode_notify w n;
      W.bool w ok

  let decode r =
    match R.u8 r with
    | 0 -> F_boot
    | 1 ->
      let comm = Mpi.decode r in
      let k = K.decode_k r in
      F_init (comm, k)
    | 2 ->
      let comm = Mpi.decode r in
      let k = K.decode_k r in
      F_run (comm, k)
    | _ ->
      let n = Launchers.decode_notify r in
      let ok = R.bool r in
      F_notify (n, ok)

  let init ~argv:_ = F_boot

  let result_path (ctx : Simos.Program.ctx) =
    let _, _, base_port, _, _, _, _ = Launchers.parse_rank_args (List.tl ctx.argv) in
    Printf.sprintf "/result/%s-%d" K.short base_port

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | F_boot ->
      let rank, size, base_port, rpn, _, _, extra = Launchers.parse_rank_args (List.tl ctx.argv) in
      ignore
        (Workload_mem.alloc ctx ~bytes:K.mem_bytes ~mix:K.mem_mix ~seed:((rank * 7919) + 13));
      let comm =
        Mpi.create ~rank ~size ~base_port ~ranks_per_node:rpn
          ~neighbors:(fun r -> K.neighbors ~rank:r ~size)
          ()
      in
      Simos.Program.Continue (F_init (comm, K.kinit ~rank ~size ~extra))
    | F_init (comm, k) -> (
      match Mpi.init_step ctx comm with
      | `Ready -> Simos.Program.Continue (F_run (comm, k))
      | `Pending ->
        Simos.Program.Block (F_init (comm, k), Simos.Program.Sleep_until (ctx.now () +. 2e-3)))
    | F_run (comm, k) -> (
      Mpi.progress ctx comm;
      match K.kstep ctx comm k with
      | K_compute (k, dt) -> Simos.Program.Compute (F_run (comm, k), dt)
      | K_wait k -> Simos.Program.Block (F_run (comm, k), Mpi.wait ctx comm)
      | K_done (value, ok) ->
        if Mpi.rank comm = 0 then begin
          match ctx.open_file (result_path ctx) with
          | Ok fd ->
            ignore
              (ctx.write_fd fd
                 (Printf.sprintf "%s %s %g" (String.uppercase_ascii K.short)
                    (if ok then "VERIFIED" else "FAILED")
                    value));
            ctx.close_fd fd
          | Error _ -> ()
        end;
        let _, _, _, _, nhost, nport, _ = Launchers.parse_rank_args (List.tl ctx.argv) in
        Simos.Program.Continue (F_notify (Launchers.notify_start ~host:nhost ~port:nport, ok)))
    | F_notify (n, ok) -> (
      match Launchers.notify_step ctx n with
      | `Done -> Simos.Program.Exit (if ok then 0 else 1)
      | `Pending -> Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3)))
end

let ring_neighbors ~rank ~size =
  List.filter (fun r -> r >= 0 && r < size && r <> rank) [ rank - 1; rank + 1 ]

let all_neighbors ~rank ~size = List.init size Fun.id |> List.filter (fun r -> r <> rank)

(* shared collective-driving idiom *)
let drive_coll ctx comm coll ~on_done ~wrap =
  match Mpi.Coll.step ctx comm coll with
  | `Done v -> on_done v
  | `Pending -> K_wait (wrap coll)

(* ------------------------------------------------------------------ *)
(* Baseline: "hello world" — init, one barrier, exit. *)

module Baseline = struct
  (* "hello world": one barrier per round, idling in between, so the
     process set stays alive while checkpoints are measured *)
  type kstate = { rounds : int; round : int; coll : Mpi.Coll.st option }

  let prog_name = "nas:baseline"
  let short = "baseline"
  let mem_bytes = 10_000_000
  let mem_mix = Workload_mem.mostly_code
  let neighbors ~rank:_ ~size:_ = []

  let kinit ~rank:_ ~size:_ ~extra =
    let rounds = match extra with s :: _ -> int_of_string s | [] -> 1 in
    { rounds; round = 0; coll = None }

  let encode_k w k =
    W.uvarint w k.rounds;
    W.uvarint w k.round;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let rounds = R.uvarint r in
    let round = R.uvarint r in
    let coll = R.option Mpi.Coll.decode r in
    { rounds; round; coll }

  let kstep ctx comm k =
    match k.coll with
    | None -> K_compute ({ k with coll = Some (Mpi.Coll.start Mpi.Coll.barrier) }, 50e-3)
    | Some coll ->
      drive_coll ctx comm coll
        ~wrap:(fun c -> { k with coll = Some c })
        ~on_done:(fun _ ->
          if k.round + 1 >= k.rounds then K_done (0., true)
          else K_compute ({ k with round = k.round + 1; coll = None }, 1e-4))
end

(* ------------------------------------------------------------------ *)
(* EP: Monte-Carlo estimation of pi; embarrassingly parallel with one
   final reduction. *)

module Ep = struct
  type kstate = {
    samples : int;
    chunk : int;
    done_ : int;
    hits : int;
    rng_state : int64;
    coll : Mpi.Coll.st option;
  }

  let prog_name = "nas:ep"
  let short = "ep"
  let mem_bytes = 6_000_000
  let mem_mix = Workload_mem.mostly_numeric
  let neighbors ~rank:_ ~size:_ = []

  let kinit ~rank ~size:_ ~extra =
    let samples = match extra with s :: _ -> int_of_string s | [] -> 400_000 in
    {
      samples;
      chunk = 8_192;
      done_ = 0;
      hits = 0;
      rng_state = Int64.of_int ((rank * 2654435761) + 1);
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.samples;
    W.uvarint w k.chunk;
    W.uvarint w k.done_;
    W.uvarint w k.hits;
    W.i64 w k.rng_state;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let samples = R.uvarint r in
    let chunk = R.uvarint r in
    let done_ = R.uvarint r in
    let hits = R.uvarint r in
    let rng_state = R.i64 r in
    let coll = R.option Mpi.Coll.decode r in
    { samples; chunk; done_; hits; rng_state; coll }

  let kstep ctx comm k =
    match k.coll with
    | Some coll ->
      drive_coll ctx comm coll
        ~wrap:(fun c -> { k with coll = Some c })
        ~on_done:(fun total_hits ->
          let total = float_of_int (k.samples * Mpi.size comm) in
          let pi = 4.0 *. total_hits /. total in
          K_done (pi, Float.abs (pi -. Float.pi) < 0.02))
    | None ->
      if k.done_ < k.samples then begin
        let rng = Util.Rng.of_state k.rng_state in
        let n = min k.chunk (k.samples - k.done_) in
        let hits = ref 0 in
        for _ = 1 to n do
          let x = Util.Rng.float rng 1.0 and y = Util.Rng.float rng 1.0 in
          if (x *. x) +. (y *. y) <= 1.0 then incr hits
        done;
        (* modelled at ~1 us/sample so that long EP runs do not dominate
           the simulation's host CPU time *)
        K_compute
          ( {
              k with
              done_ = k.done_ + n;
              hits = k.hits + !hits;
              rng_state = Util.Rng.state rng;
            },
            float_of_int n *. 1e-6 )
      end
      else
        K_compute
          ({ k with coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (float_of_int k.hits))) }, 1e-5)
end

(* ------------------------------------------------------------------ *)
(* IS: integer bucket sort.  Keys are range-partitioned; each rank mails
   every other rank its keys, sorts what it receives, and the bucket
   property plus local sortedness gives global order.  The allocation is
   deliberately oversized and zero-filled (paper §5.4). *)

module Is = struct
  type kstate = {
    nkeys : int;
    key_range : int;
    rounds : int;  (* sort rounds remaining (long-run mode) *)
    round : int;
    phase : int;  (* 0 generate, 1 exchange, 2 collect, 3 sort+verify, 4 reduce *)
    keys : float array;     (* generated keys (as floats for codec reuse) *)
    received : float array; (* keys received for my bucket *)
    got_from : int;         (* peers heard from *)
    ok : bool;
    coll : Mpi.Coll.st option;
  }

  let prog_name = "nas:is"
  let short = "is"
  let mem_bytes = 70_000_000
  let mem_mix = { Workload_mem.all_zero with Workload_mem.f_numeric = 0.12 }
  let neighbors ~rank ~size = all_neighbors ~rank ~size

  let kinit ~rank:_ ~size:_ ~extra =
    let nkeys, rounds =
      match extra with
      | [ n ] -> (int_of_string n, 1)
      | n :: rnd :: _ -> (int_of_string n, int_of_string rnd)
      | [] -> (20_000, 1)
    in
    {
      nkeys;
      key_range = 1 lsl 16;
      rounds;
      round = 0;
      phase = 0;
      keys = [||];
      received = [||];
      got_from = 0;
      ok = true;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.nkeys;
    W.uvarint w k.key_range;
    W.uvarint w k.rounds;
    W.uvarint w k.round;
    W.uvarint w k.phase;
    encode_floats w k.keys;
    encode_floats w k.received;
    W.uvarint w k.got_from;
    W.bool w k.ok;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let nkeys = R.uvarint r in
    let key_range = R.uvarint r in
    let rounds = R.uvarint r in
    let round = R.uvarint r in
    let phase = R.uvarint r in
    let keys = decode_floats r in
    let received = decode_floats r in
    let got_from = R.uvarint r in
    let ok = R.bool r in
    let coll = R.option Mpi.Coll.decode r in
    { nkeys; key_range; rounds; round; phase; keys; received; got_from; ok; coll }

  let owner k size key = min (size - 1) (int_of_float key * size / k.key_range)

  let pack_keys keys =
    let w = W.create ~capacity:(Array.length keys * 3) () in
    W.uvarint w (Array.length keys);
    Array.iter (fun v -> W.uvarint w (int_of_float v)) keys;
    W.contents w

  let unpack_keys payload =
    let r = R.of_string payload in
    let n = R.uvarint r in
    Array.init n (fun _ -> float_of_int (R.uvarint r))

  let kstep ctx comm k =
    let size = Mpi.size comm and rank = Mpi.rank comm in
    match k.phase with
    | 0 ->
      let rng = Util.Rng.create (Int64.of_int ((rank * 104729) + 7 + (k.round * 65537))) in
      let keys = Array.init k.nkeys (fun _ -> float_of_int (Util.Rng.int rng k.key_range)) in
      K_compute ({ k with keys; phase = 1 }, float_of_int k.nkeys *. 10. *. flop_cost)
    | 1 ->
      (* mail each peer its bucket (self keys go straight to received) *)
      let buckets = Array.make size [] in
      Array.iter (fun key -> buckets.(owner k size key) <- key :: buckets.(owner k size key)) k.keys;
      for dst = 0 to size - 1 do
        if dst <> rank then
          Mpi.send comm ~dst ~tag:'D' (pack_keys (Array.of_list buckets.(dst)))
      done;
      Mpi.progress ctx comm;
      K_compute
        ( { k with phase = 2; received = Array.of_list buckets.(rank); keys = [||] },
          float_of_int k.nkeys *. 4. *. flop_cost )
    | 2 ->
      (* collect one message from every peer *)
      let got = ref k.got_from in
      let received = ref k.received in
      let progressed = ref true in
      while !progressed do
        match Mpi.recv_any comm ~tag:'D' with
        | Some (_, payload) ->
          received := Array.append !received (unpack_keys payload);
          incr got
        | None -> progressed := false
      done;
      if !got >= size - 1 then
        K_compute ({ k with phase = 3; received = !received; got_from = !got }, 1e-5)
      else K_wait { k with received = !received; got_from = !got }
    | 3 ->
      Array.sort compare k.received;
      (* verify: locally sorted (by construction) and inside my range *)
      let lo = float_of_int (rank * k.key_range / size) in
      let hi = float_of_int ((rank + 1) * k.key_range / size) in
      let ok = Array.for_all (fun key -> key >= lo && (key < hi || rank = size - 1)) k.received in
      let n = Array.length k.received in
      let sort_cost = float_of_int (max 1 n) *. log (float_of_int (max 2 n)) *. 3. *. flop_cost in
      K_compute
        ( {
            k with
            phase = 4;
            ok;
            coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (if ok then 0. else 1.)));
          },
          sort_cost )
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun failures ->
            let ok = failures = 0. in
            if ok && k.round + 1 < k.rounds then
              K_compute
                ( {
                    k with
                    round = k.round + 1;
                    phase = 0;
                    keys = [||];
                    received = [||];
                    got_from = 0;
                    coll = None;
                  },
                  1e-5 )
            else K_done (float_of_int (Array.length k.received), ok)))
end

(* ------------------------------------------------------------------ *)
(* CG: conjugate gradient on a distributed symmetric tridiagonal system
   A = tridiag(-1, 2.5, -1), b = A * ones, so the solution is ones.
   Halo exchange for the matvec, allreduce for the dot products. *)

module Cg = struct
  type kstate = {
    n_local : int;
    max_iter : int;
    repeats : int;  (* outer loop: re-solve from scratch, for long runs *)
    iter : int;
    phase : int;  (* 0 send halo, 1 recv halo + matvec, 2 pAp coll, 3 rr coll, 4 verify coll *)
    x : float array;
    rvec : float array;
    p : float array;
    ap : float array;
    rr_old : float;
    halo_lo : float;  (* p value from rank-1 *)
    halo_hi : float;  (* p value from rank+1 *)
    got_lo : bool;
    got_hi : bool;
    coll : Mpi.Coll.st option;
  }

  let prog_name = "nas:cg"
  let short = "cg"
  let mem_bytes = 20_000_000
  let mem_mix = Workload_mem.mostly_numeric
  let neighbors ~rank ~size = ring_neighbors ~rank ~size

  (* b = A*ones: interior rows 0.5, global boundary rows 1.5 *)
  let b_at ~rank ~size ~n_local i =
    let gi = (rank * n_local) + i in
    let n_global = size * n_local in
    if gi = 0 || gi = n_global - 1 then 1.5 else 0.5

  let kinit ~rank ~size ~extra =
    let n_local = 64 in
    let max_iter, repeats =
      match extra with
      | [ it ] -> (int_of_string it, 1)
      | it :: rep :: _ -> (int_of_string it, int_of_string rep)
      | [] -> (400, 1)
    in
    let b = Array.init n_local (b_at ~rank ~size ~n_local) in
    {
      n_local;
      max_iter;
      repeats;
      iter = 0;
      phase = 0;
      x = Array.make n_local 0.;
      rvec = Array.copy b;      (* r = b - A*0 = b *)
      p = Array.copy b;
      ap = Array.make n_local 0.;
      rr_old = Float.nan;       (* computed on first pass *)
      halo_lo = 0.;
      halo_hi = 0.;
      got_lo = false;
      got_hi = false;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.n_local;
    W.uvarint w k.max_iter;
    W.uvarint w k.repeats;
    W.uvarint w k.iter;
    W.uvarint w k.phase;
    encode_floats w k.x;
    encode_floats w k.rvec;
    encode_floats w k.p;
    encode_floats w k.ap;
    W.f64 w k.rr_old;
    W.f64 w k.halo_lo;
    W.f64 w k.halo_hi;
    W.bool w k.got_lo;
    W.bool w k.got_hi;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let n_local = R.uvarint r in
    let max_iter = R.uvarint r in
    let repeats = R.uvarint r in
    let iter = R.uvarint r in
    let phase = R.uvarint r in
    let x = decode_floats r in
    let rvec = decode_floats r in
    let p = decode_floats r in
    let ap = decode_floats r in
    let rr_old = R.f64 r in
    let halo_lo = R.f64 r in
    let halo_hi = R.f64 r in
    let got_lo = R.bool r in
    let got_hi = R.bool r in
    let coll = R.option Mpi.Coll.decode r in
    {
      n_local; max_iter; repeats; iter; phase; x; rvec; p; ap; rr_old; halo_lo; halo_hi; got_lo;
      got_hi; coll;
    }

  let dot a b =
    let s = ref 0. in
    Array.iteri (fun i v -> s := !s +. (v *. b.(i))) a;
    !s

  let iter_cost n = float_of_int (n * 12) *. flop_cost

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.phase with
    | 0 ->
      (* kick off the rr_old allreduce on the very first pass *)
      if Float.is_nan k.rr_old && k.coll = None then
        K_compute
          ( { k with coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (dot k.rvec k.rvec))) },
            iter_cost k.n_local )
      else if Float.is_nan k.rr_old then (
        match k.coll with
        | Some coll ->
          drive_coll ctx comm coll
            ~wrap:(fun c -> { k with coll = Some c })
            ~on_done:(fun rr -> K_compute ({ k with rr_old = rr; coll = None }, 1e-6))
        | None -> assert false)
      else begin
        (* send p boundary values to neighbours *)
        if rank > 0 then Mpi.send comm ~dst:(rank - 1) ~tag:'h' (Mpi.f64_str k.p.(0));
        if rank < size - 1 then
          Mpi.send comm ~dst:(rank + 1) ~tag:'h' (Mpi.f64_str k.p.(k.n_local - 1));
        Mpi.progress ctx comm;
        K_compute ({ k with phase = 1; got_lo = rank = 0; got_hi = rank = size - 1 }, 1e-6)
      end
    | 1 ->
      let k = ref k in
      (if not !k.got_lo then
         match Mpi.recv comm ~src:(rank - 1) ~tag:'h' with
         | Some payload -> k := { !k with halo_lo = Mpi.str_f64 payload; got_lo = true }
         | None -> ());
      (if not !k.got_hi then
         match Mpi.recv comm ~src:(rank + 1) ~tag:'h' with
         | Some payload -> k := { !k with halo_hi = Mpi.str_f64 payload; got_hi = true }
         | None -> ());
      let k = !k in
      if k.got_lo && k.got_hi then begin
        (* Ap = tridiag(-1, 2.5, -1) * p with halo values *)
        let n = k.n_local in
        for i = 0 to n - 1 do
          let lo = if i = 0 then k.halo_lo else k.p.(i - 1) in
          let hi = if i = n - 1 then k.halo_hi else k.p.(i + 1) in
          let lo = if rank = 0 && i = 0 then 0. else lo in
          let hi = if rank = size - 1 && i = n - 1 then 0. else hi in
          k.ap.(i) <- (2.5 *. k.p.(i)) -. lo -. hi
        done;
        K_compute
          ( {
              k with
              phase = 2;
              coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (dot k.p k.ap)));
            },
            iter_cost k.n_local )
      end
      else K_wait k
    | 2 -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun pap ->
            let alpha = k.rr_old /. pap in
            for i = 0 to k.n_local - 1 do
              k.x.(i) <- k.x.(i) +. (alpha *. k.p.(i));
              k.rvec.(i) <- k.rvec.(i) -. (alpha *. k.ap.(i))
            done;
            K_compute
              ( {
                  k with
                  phase = 3;
                  coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (dot k.rvec k.rvec)));
                },
                iter_cost k.n_local )))
    | 3 -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun rr_new ->
            if rr_new < 1e-18 || k.iter + 1 >= k.max_iter then begin
              (* verify: x should be ones *)
              let err = ref 0. in
              Array.iter (fun v -> err := !err +. Float.abs (v -. 1.0)) k.x;
              K_compute
                ( {
                    k with
                    phase = 4;
                    coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum !err));
                  },
                  1e-5 )
            end
            else begin
              let beta = rr_new /. k.rr_old in
              for i = 0 to k.n_local - 1 do
                k.p.(i) <- k.rvec.(i) +. (beta *. k.p.(i))
              done;
              K_compute
                ({ k with phase = 0; iter = k.iter + 1; rr_old = rr_new; coll = None }, 1e-6)
            end))
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun total_err ->
            let n_global = float_of_int (k.n_local * Mpi.size comm) in
            let ok = total_err /. n_global < 1e-6 in
            if k.repeats > 1 && ok then begin
              (* long-run mode: solve again from scratch *)
              let rank = Mpi.rank comm and size = Mpi.size comm in
              let b = Array.init k.n_local (b_at ~rank ~size ~n_local:k.n_local) in
              K_compute
                ( {
                    k with
                    repeats = k.repeats - 1;
                    iter = 0;
                    phase = 0;
                    x = Array.make k.n_local 0.;
                    rvec = Array.copy b;
                    p = Array.copy b;
                    rr_old = Float.nan;
                    coll = None;
                  },
                  1e-5 )
            end
            else K_done (total_err, ok)))
end

(* ------------------------------------------------------------------ *)
(* MG: two-level multigrid for -u'' = f (1-D Poisson), distributed
   Jacobi smoothing with halo exchange, coarse correction solved on rank
   0 (one coarse point per rank). *)

module Mg = struct
  type kstate = {
    n_local : int;
    cycles : int;
    cycle : int;
    smooth_left : int;
    phase : int;
      (* 0 send halo, 1 recv+smooth, 2 send coarse residual, 3 coarse solve/recv,
         4 final residual coll, 5 done-check *)
    u : float array;
    f : float array;
    halo_lo : float;
    halo_hi : float;
    got_lo : bool;
    got_hi : bool;
    r0 : float;  (* initial residual norm *)
    coarse : float array;  (* rank 0 only: gathered coarse residuals *)
    coarse_got : int;
    coll : Mpi.Coll.st option;
  }

  let prog_name = "nas:mg"
  let short = "mg"
  let mem_bytes = 55_000_000
  let mem_mix = Workload_mem.mostly_numeric
  let neighbors ~rank ~size = ring_neighbors ~rank ~size

  let kinit ~rank ~size:_ ~extra =
    let n_local = 64 in
    let cycles = match extra with s :: _ -> int_of_string s | [] -> 30 in
    let rng = Util.Rng.create (Int64.of_int (rank + 31337)) in
    {
      n_local;
      cycles;
      cycle = 0;
      smooth_left = 4;
      phase = 0;
      u = Array.make n_local 0.;
      f = Array.init n_local (fun _ -> Util.Rng.float rng 1.0);
      halo_lo = 0.;
      halo_hi = 0.;
      got_lo = false;
      got_hi = false;
      r0 = Float.nan;
      coarse = [||];
      coarse_got = 0;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.n_local;
    W.uvarint w k.cycles;
    W.uvarint w k.cycle;
    W.uvarint w k.smooth_left;
    W.uvarint w k.phase;
    encode_floats w k.u;
    encode_floats w k.f;
    W.f64 w k.halo_lo;
    W.f64 w k.halo_hi;
    W.bool w k.got_lo;
    W.bool w k.got_hi;
    W.f64 w k.r0;
    encode_floats w k.coarse;
    W.uvarint w k.coarse_got;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let n_local = R.uvarint r in
    let cycles = R.uvarint r in
    let cycle = R.uvarint r in
    let smooth_left = R.uvarint r in
    let phase = R.uvarint r in
    let u = decode_floats r in
    let f = decode_floats r in
    let halo_lo = R.f64 r in
    let halo_hi = R.f64 r in
    let got_lo = R.bool r in
    let got_hi = R.bool r in
    let r0 = R.f64 r in
    let coarse = decode_floats r in
    let coarse_got = R.uvarint r in
    let coll = R.option Mpi.Coll.decode r in
    {
      n_local; cycles; cycle; smooth_left; phase; u; f; halo_lo; halo_hi; got_lo; got_hi; r0;
      coarse; coarse_got; coll;
    }

  (* residual r = f - A u, A = tridiag(-1, 2, -1) (h = 1) *)
  let residual k ~rank ~size i =
    let n = k.n_local in
    let lo = if i = 0 then (if rank = 0 then 0. else k.halo_lo) else k.u.(i - 1) in
    let hi = if i = n - 1 then (if rank = size - 1 then 0. else k.halo_hi) else k.u.(i + 1) in
    k.f.(i) -. ((2. *. k.u.(i)) -. lo -. hi)

  let local_res_norm k ~rank ~size =
    let s = ref 0. in
    for i = 0 to k.n_local - 1 do
      let r = residual k ~rank ~size i in
      s := !s +. (r *. r)
    done;
    !s

  (* restriction P^T r for block-constant aggregation: the *signed sum*
     of local residuals.  With A = tridiag(-1,2,-1), P^T A P is again
     tridiag(-1,2,-1), so the coarse solve below is the exact Galerkin
     coarse-grid correction. *)
  let local_res_sum k ~rank ~size =
    let s = ref 0. in
    for i = 0 to k.n_local - 1 do
      s := !s +. residual k ~rank ~size i
    done;
    !s

  let smooth_cost n = float_of_int (n * 6) *. flop_cost

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.phase with
    | 0 ->
      if rank > 0 then Mpi.send comm ~dst:(rank - 1) ~tag:'h' (Mpi.f64_str k.u.(0));
      if rank < size - 1 then
        Mpi.send comm ~dst:(rank + 1) ~tag:'h' (Mpi.f64_str k.u.(k.n_local - 1));
      Mpi.progress ctx comm;
      K_compute ({ k with phase = 1; got_lo = rank = 0; got_hi = rank = size - 1 }, 1e-6)
    | 1 ->
      let k = ref k in
      (if not !k.got_lo then
         match Mpi.recv comm ~src:(rank - 1) ~tag:'h' with
         | Some p -> k := { !k with halo_lo = Mpi.str_f64 p; got_lo = true }
         | None -> ());
      (if not !k.got_hi then
         match Mpi.recv comm ~src:(rank + 1) ~tag:'h' with
         | Some p -> k := { !k with halo_hi = Mpi.str_f64 p; got_hi = true }
         | None -> ());
      let k = !k in
      if k.got_lo && k.got_hi then begin
        (* one weighted-Jacobi sweep *)
        let n = k.n_local in
        let next = Array.make n 0. in
        for i = 0 to n - 1 do
          let lo = if i = 0 then (if rank = 0 then 0. else k.halo_lo) else k.u.(i - 1) in
          let hi = if i = n - 1 then (if rank = size - 1 then 0. else k.halo_hi) else k.u.(i + 1) in
          next.(i) <- (0.333 *. k.u.(i)) +. (0.667 *. ((k.f.(i) +. lo +. hi) /. 2.))
        done;
        Array.blit next 0 k.u 0 n;
        if k.smooth_left > 1 then
          K_compute ({ k with phase = 0; smooth_left = k.smooth_left - 1 }, smooth_cost n)
        else K_compute ({ k with phase = 2 }, smooth_cost n)
      end
      else K_wait k
    | 2 ->
      (* restrict: signed residual sum, sent to rank 0 *)
      let sum = local_res_sum k ~rank ~size in
      if rank = 0 then begin
        let coarse = Array.make size 0. in
        coarse.(0) <- sum;
        K_compute ({ k with phase = 3; coarse; coarse_got = 1 }, 1e-5)
      end
      else begin
        Mpi.send comm ~dst:0 ~tag:'c' (Mpi.f64_str sum);
        Mpi.progress ctx comm;
        K_compute ({ k with phase = 3 }, 1e-5)
      end
    | 3 ->
      if rank = 0 then begin
        let k = ref k in
        let progressed = ref true in
        while !progressed do
          match Mpi.recv_any comm ~tag:'c' with
          | Some (src, p) ->
            !k.coarse.(src) <- Mpi.str_f64 p;
            k := { !k with coarse_got = !k.coarse_got + 1 }
          | None -> progressed := false
        done;
        let k = !k in
        if k.coarse_got >= size then begin
          (* coarse solve: tridiagonal Thomas on the size-point system *)
          let n = size in
          let c' = Array.make n 0. and d' = Array.make n 0. in
          for i = 0 to n - 1 do
            let b = 2. and a = -1. and c = -1. in
            if i = 0 then begin
              c'.(0) <- c /. b;
              d'.(0) <- k.coarse.(0) /. b
            end
            else begin
              let m = b -. (a *. c'.(i - 1)) in
              c'.(i) <- c /. m;
              d'.(i) <- (k.coarse.(i) -. (a *. d'.(i - 1))) /. m
            end
          done;
          let corr = Array.make n 0. in
          corr.(n - 1) <- d'.(n - 1);
          for i = n - 2 downto 0 do
            corr.(i) <- d'.(i) -. (c'.(i) *. corr.(i + 1))
          done;
          (* scatter corrections *)
          for dst = 1 to size - 1 do
            Mpi.send comm ~dst ~tag:'s' (Mpi.f64_str corr.(dst))
          done;
          Mpi.progress ctx comm;
          (* apply own correction (prolongation = block-constant) *)
          for i = 0 to k.n_local - 1 do
            k.u.(i) <- k.u.(i) +. corr.(0)
          done;
          K_compute
            ( { k with phase = 4; coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (local_res_norm k ~rank ~size))) },
              float_of_int (size * 8) *. flop_cost )
        end
        else K_wait k
      end
      else begin
        match Mpi.recv comm ~src:0 ~tag:'s' with
        | Some p ->
          let corr = Mpi.str_f64 p in
          for i = 0 to k.n_local - 1 do
            k.u.(i) <- k.u.(i) +. corr
          done;
          K_compute
            ( { k with phase = 4; coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (local_res_norm k ~rank ~size))) },
              smooth_cost k.n_local )
        | None -> K_wait k
      end
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun res ->
            let k = { k with coll = None; coarse_got = 0; smooth_left = 4; phase = 0 } in
            if Float.is_nan k.r0 then
              K_compute ({ k with r0 = res; cycle = k.cycle + 1 }, 1e-6)
            else if k.cycle + 1 >= k.cycles then
              (* verify: the V-cycles reduced the residual substantially *)
              K_done (res, res < k.r0 /. 10.)
            else K_compute ({ k with cycle = k.cycle + 1 }, 1e-6)))
end

(* ------------------------------------------------------------------ *)
(* LU: pipelined SSOR — forward then backward Gauss–Seidel sweeps over a
   distributed tridiagonal system; rank r's forward sweep waits for rank
   r-1's boundary value (a genuine wavefront dependency). *)

module Lu = struct
  type kstate = {
    n_local : int;
    iters : int;
    iter : int;
    phase : int;  (* 0 forward wait/sweep, 1 backward wait/sweep, 2 residual coll *)
    u : float array;
    f : float array;
    halo_lo : float;  (* boundary value received in the forward sweep *)
    halo_hi : float;  (* boundary value received in the backward sweep *)
    r0 : float;
    coll : Mpi.Coll.st option;
  }

  let prog_name = "nas:lu"
  let short = "lu"
  let mem_bytes = 30_000_000
  let mem_mix = Workload_mem.mostly_numeric
  let neighbors ~rank ~size = ring_neighbors ~rank ~size

  let kinit ~rank ~size:_ ~extra =
    let n_local = 64 in
    let iters = match extra with s :: _ -> int_of_string s | [] -> 60 in
    let rng = Util.Rng.create (Int64.of_int (rank + 4242)) in
    {
      n_local;
      iters;
      iter = 0;
      phase = 0;
      u = Array.make n_local 0.;
      f = Array.init n_local (fun _ -> Util.Rng.float rng 1.0);
      halo_lo = 0.;
      halo_hi = 0.;
      r0 = Float.nan;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.n_local;
    W.uvarint w k.iters;
    W.uvarint w k.iter;
    W.uvarint w k.phase;
    encode_floats w k.u;
    encode_floats w k.f;
    W.f64 w k.halo_lo;
    W.f64 w k.halo_hi;
    W.f64 w k.r0;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let n_local = R.uvarint r in
    let iters = R.uvarint r in
    let iter = R.uvarint r in
    let phase = R.uvarint r in
    let u = decode_floats r in
    let f = decode_floats r in
    let halo_lo = R.f64 r in
    let halo_hi = R.f64 r in
    let r0 = R.f64 r in
    let coll = R.option Mpi.Coll.decode r in
    { n_local; iters; iter; phase; u; f; halo_lo; halo_hi; r0; coll }

  (* residual of the coupled operator, using the boundary values the
     sweeps actually used *)
  let res_norm k =
    let n = k.n_local in
    let s = ref 0. in
    for i = 0 to n - 1 do
      let lo = if i = 0 then k.halo_lo else k.u.(i - 1) in
      let hi = if i = n - 1 then k.halo_hi else k.u.(i + 1) in
      let r = k.f.(i) -. ((2. *. k.u.(i)) -. lo -. hi) in
      s := !s +. (r *. r)
    done;
    !s

  let sweep_cost n = float_of_int (n * 5) *. flop_cost

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.phase with
    | 0 ->
      (* forward: need the updated boundary from rank-1 *)
      let boundary =
        if rank = 0 then Some 0.
        else
          match Mpi.recv comm ~src:(rank - 1) ~tag:'f' with
          | Some p -> Some (Mpi.str_f64 p)
          | None -> None
      in
      (match boundary with
      | None -> K_wait k
      | Some lo ->
        let n = k.n_local in
        let prev = ref lo in
        for i = 0 to n - 1 do
          let hi = if i = n - 1 then k.halo_hi else k.u.(i + 1) in
          k.u.(i) <- (k.f.(i) +. !prev +. hi) /. 2.;
          prev := k.u.(i)
        done;
        if rank < size - 1 then begin
          Mpi.send comm ~dst:(rank + 1) ~tag:'f' (Mpi.f64_str k.u.(n - 1));
          Mpi.progress ctx comm
        end;
        K_compute ({ k with phase = 1; halo_lo = lo }, sweep_cost n))
    | 1 ->
      (* backward: boundary from rank+1 *)
      let boundary =
        if rank = size - 1 then Some 0.
        else
          match Mpi.recv comm ~src:(rank + 1) ~tag:'b' with
          | Some p -> Some (Mpi.str_f64 p)
          | None -> None
      in
      (match boundary with
      | None -> K_wait k
      | Some hi_b ->
        let n = k.n_local in
        let next = ref hi_b in
        for i = n - 1 downto 0 do
          let lo = if i = 0 then k.halo_lo else k.u.(i - 1) in
          k.u.(i) <- (k.f.(i) +. lo +. !next) /. 2.;
          next := k.u.(i)
        done;
        if rank > 0 then begin
          Mpi.send comm ~dst:(rank - 1) ~tag:'b' (Mpi.f64_str k.u.(0));
          Mpi.progress ctx comm
        end;
        let k = { k with halo_hi = hi_b } in
        K_compute
          ( {
              k with
              phase = 2;
              coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum (res_norm k)));
            },
            sweep_cost n ))
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun res ->
            let k = { k with coll = None; phase = 0 } in
            if Float.is_nan k.r0 then K_compute ({ k with r0 = res; iter = k.iter + 1 }, 1e-6)
            else if k.iter + 1 >= k.iters then K_done (res, res < k.r0)
            else K_compute ({ k with iter = k.iter + 1 }, 1e-6)))
end

(* ------------------------------------------------------------------ *)
(* SP and BT share an ADI-style skeleton: halo exchange, a local line
   solve, and a residual allreduce; they differ in the line solver. *)

module type LINE_SOLVER = sig
  val prog_name : string
  val short : string
  val mem_bytes : int

  (** [solve f lo hi u] overwrites [u] with the solution of the local
      line system given boundary couplings [lo], [hi]; returns the flop
      count. *)
  val solve : float array -> float -> float -> float array -> int
end

module Adi (S : LINE_SOLVER) = struct
  type kstate = {
    n_local : int;
    iters : int;
    iter : int;
    phase : int;  (* 0 send halo, 1 recv + solve, 2 residual coll *)
    u : float array;
    f : float array;
    halo_lo : float;
    halo_hi : float;
    got_lo : bool;
    got_hi : bool;
    r0 : float;
    coll : Mpi.Coll.st option;
  }

  let prog_name = S.prog_name
  let short = S.short
  let mem_bytes = S.mem_bytes
  let mem_mix = Workload_mem.mostly_numeric
  let neighbors ~rank ~size = ring_neighbors ~rank ~size

  let kinit ~rank ~size:_ ~extra =
    let n_local = 60 in
    let iters = match extra with s :: _ -> int_of_string s | [] -> 50 in
    let rng = Util.Rng.create (Int64.of_int (rank + 90210)) in
    {
      n_local;
      iters;
      iter = 0;
      phase = 0;
      u = Array.make n_local 0.;
      f = Array.init n_local (fun _ -> Util.Rng.float rng 1.0);
      halo_lo = 0.;
      halo_hi = 0.;
      got_lo = false;
      got_hi = false;
      r0 = Float.nan;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.n_local;
    W.uvarint w k.iters;
    W.uvarint w k.iter;
    W.uvarint w k.phase;
    encode_floats w k.u;
    encode_floats w k.f;
    W.f64 w k.halo_lo;
    W.f64 w k.halo_hi;
    W.bool w k.got_lo;
    W.bool w k.got_hi;
    W.f64 w k.r0;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let n_local = R.uvarint r in
    let iters = R.uvarint r in
    let iter = R.uvarint r in
    let phase = R.uvarint r in
    let u = decode_floats r in
    let f = decode_floats r in
    let halo_lo = R.f64 r in
    let halo_hi = R.f64 r in
    let got_lo = R.bool r in
    let got_hi = R.bool r in
    let r0 = R.f64 r in
    let coll = R.option Mpi.Coll.decode r in
    { n_local; iters; iter; phase; u; f; halo_lo; halo_hi; got_lo; got_hi; r0; coll }

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.phase with
    | 0 ->
      if rank > 0 then Mpi.send comm ~dst:(rank - 1) ~tag:'h' (Mpi.f64_str k.u.(0));
      if rank < size - 1 then
        Mpi.send comm ~dst:(rank + 1) ~tag:'h' (Mpi.f64_str k.u.(k.n_local - 1));
      Mpi.progress ctx comm;
      K_compute ({ k with phase = 1; got_lo = rank = 0; got_hi = rank = size - 1 }, 1e-6)
    | 1 ->
      let k = ref k in
      (if not !k.got_lo then
         match Mpi.recv comm ~src:(rank - 1) ~tag:'h' with
         | Some p -> k := { !k with halo_lo = Mpi.str_f64 p; got_lo = true }
         | None -> ());
      (if not !k.got_hi then
         match Mpi.recv comm ~src:(rank + 1) ~tag:'h' with
         | Some p -> k := { !k with halo_hi = Mpi.str_f64 p; got_hi = true }
         | None -> ());
      let k = !k in
      if k.got_lo && k.got_hi then begin
        (* preconditioned refinement: u <- u + P^-1 (f - A u), with P the
           local penta/block-tridiagonal solver and A the coupled global
           tridiagonal operator *)
        let n = k.n_local in
        let rvec =
          Array.init n (fun i ->
              let lo = if i = 0 then (if rank = 0 then 0. else k.halo_lo) else k.u.(i - 1) in
              let hi =
                if i = n - 1 then (if rank = size - 1 then 0. else k.halo_hi) else k.u.(i + 1)
              in
              k.f.(i) -. ((2. *. k.u.(i)) -. lo -. hi))
        in
        let res = Array.fold_left (fun acc r -> acc +. (r *. r)) 0. rvec in
        let d = Array.make n 0. in
        let flops = S.solve rvec 0. 0. d in
        for i = 0 to n - 1 do
          k.u.(i) <- k.u.(i) +. d.(i)
        done;
        K_compute
          ( { k with phase = 2; coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum res)) },
            float_of_int (flops + (n * 5)) *. flop_cost )
      end
      else K_wait k
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll ->
        drive_coll ctx comm coll
          ~wrap:(fun c -> { k with coll = Some c })
          ~on_done:(fun res ->
            let k = { k with coll = None; phase = 0 } in
            if Float.is_nan k.r0 then K_compute ({ k with r0 = res; iter = k.iter + 1 }, 1e-6)
            else if k.iter + 1 >= k.iters then K_done (res, res < k.r0)
            else K_compute ({ k with iter = k.iter + 1 }, 1e-6)))
end

(* SP: scalar pentadiagonal line solve (bands -1/4, -1, 3, -1, -1/4),
   diagonally dominant, via banded Gaussian elimination. *)
module Sp_solver = struct
  let prog_name = "nas:sp"
  let short = "sp"
  let mem_bytes = 40_000_000

  let solve f lo hi u =
    let n = Array.length f in
    (* working copies of the five bands *)
    let a2 = Array.make n (-0.25)
    and a1 = Array.make n (-1.0)
    and b = Array.make n 3.0
    and c1 = Array.make n (-1.0)
    and c2 = Array.make n (-0.25) in
    let rhs = Array.init n (fun i -> f.(i) +. (if i = 0 then lo else 0.) +. (if i = n - 1 then hi else 0.)) in
    (* forward elimination *)
    for i = 0 to n - 2 do
      (* eliminate a1.(i+1) *)
      let m = a1.(i + 1) /. b.(i) in
      b.(i + 1) <- b.(i + 1) -. (m *. c1.(i));
      c1.(i + 1) <- c1.(i + 1) -. (m *. c2.(i));
      rhs.(i + 1) <- rhs.(i + 1) -. (m *. rhs.(i));
      (* eliminate a2.(i+2) *)
      if i + 2 < n then begin
        let m2 = a2.(i + 2) /. b.(i) in
        a1.(i + 2) <- a1.(i + 2) -. (m2 *. c1.(i));
        b.(i + 2) <- b.(i + 2) -. (m2 *. c2.(i));
        rhs.(i + 2) <- rhs.(i + 2) -. (m2 *. rhs.(i))
      end
    done;
    (* back substitution *)
    u.(n - 1) <- rhs.(n - 1) /. b.(n - 1);
    if n > 1 then u.(n - 2) <- (rhs.(n - 2) -. (c1.(n - 2) *. u.(n - 1))) /. b.(n - 2);
    for i = n - 3 downto 0 do
      u.(i) <- (rhs.(i) -. (c1.(i) *. u.(i + 1)) -. (c2.(i) *. u.(i + 2))) /. b.(i)
    done;
    n * 14
end

(* BT: block tridiagonal with 3x3 blocks, solved by block Thomas with
   explicit 3x3 inverses. *)
module Bt_solver = struct
  let prog_name = "nas:bt"
  let short = "bt"
  let mem_bytes = 50_000_000

  (* 3x3 helpers over flat float arrays of length 9 (row-major) *)
  let mat_mul a b =
    let c = Array.make 9 0. in
    for i = 0 to 2 do
      for j = 0 to 2 do
        for k = 0 to 2 do
          c.((i * 3) + j) <- c.((i * 3) + j) +. (a.((i * 3) + k) *. b.((k * 3) + j))
        done
      done
    done;
    c

  let mat_vec a v =
    Array.init 3 (fun i -> (a.(i * 3) *. v.(0)) +. (a.((i * 3) + 1) *. v.(1)) +. (a.((i * 3) + 2) *. v.(2)))

  let mat_sub a b = Array.init 9 (fun i -> a.(i) -. b.(i))
  let vec_sub a b = Array.init 3 (fun i -> a.(i) -. b.(i))

  let mat_inv m =
    let det =
      (m.(0) *. ((m.(4) *. m.(8)) -. (m.(5) *. m.(7))))
      -. (m.(1) *. ((m.(3) *. m.(8)) -. (m.(5) *. m.(6))))
      +. (m.(2) *. ((m.(3) *. m.(7)) -. (m.(4) *. m.(6))))
    in
    let d = 1.0 /. det in
    [|
      ((m.(4) *. m.(8)) -. (m.(5) *. m.(7))) *. d;
      ((m.(2) *. m.(7)) -. (m.(1) *. m.(8))) *. d;
      ((m.(1) *. m.(5)) -. (m.(2) *. m.(4))) *. d;
      ((m.(5) *. m.(6)) -. (m.(3) *. m.(8))) *. d;
      ((m.(0) *. m.(8)) -. (m.(2) *. m.(6))) *. d;
      ((m.(2) *. m.(3)) -. (m.(0) *. m.(5))) *. d;
      ((m.(3) *. m.(7)) -. (m.(4) *. m.(6))) *. d;
      ((m.(1) *. m.(6)) -. (m.(0) *. m.(7))) *. d;
      ((m.(0) *. m.(4)) -. (m.(1) *. m.(3))) *. d;
    |]

  (* Block system: D u_i + L u_{i-1} + U u_{i+1} = f_i per 3-block, with
     D diagonally dominant. The scalar grid of length n is reinterpreted
     as n/3 blocks of 3 (n is chosen divisible by 3). *)
  let solve f lo hi u =
    let n = Array.length f in
    let nb = n / 3 in
    let diag = [| 4.; -0.5; 0.; -0.5; 4.; -0.5; 0.; -0.5; 4. |] in
    let off = [| -1.; 0.; 0.; 0.; -1.; 0.; 0.; 0.; -1. |] in
    let rhs =
      Array.init nb (fun bi ->
          Array.init 3 (fun j ->
              let i = (bi * 3) + j in
              f.(i) +. (if i = 0 then lo else 0.) +. (if i = n - 1 then hi else 0.)))
    in
    (* block Thomas *)
    let cprime = Array.make nb [||] in
    let dprime = Array.make nb [||] in
    let inv0 = mat_inv diag in
    cprime.(0) <- mat_mul inv0 off;
    dprime.(0) <- mat_vec inv0 rhs.(0);
    for i = 1 to nb - 1 do
      let denom = mat_sub diag (mat_mul off cprime.(i - 1)) in
      let inv = mat_inv denom in
      cprime.(i) <- mat_mul inv off;
      dprime.(i) <- mat_vec inv (vec_sub rhs.(i) (mat_vec off dprime.(i - 1)))
    done;
    let sol = Array.make nb [||] in
    sol.(nb - 1) <- dprime.(nb - 1);
    for i = nb - 2 downto 0 do
      sol.(i) <- vec_sub dprime.(i) (mat_vec cprime.(i) sol.(i + 1))
    done;
    for bi = 0 to nb - 1 do
      for j = 0 to 2 do
        u.((bi * 3) + j) <- sol.(bi).(j)
      done
    done;
    nb * 150
end

module Sp = Adi (Sp_solver)
module Bt = Adi (Bt_solver)

module P_baseline = Make (Baseline)
module P_ep = Make (Ep)
module P_is = Make (Is)
module P_cg = Make (Cg)
module P_mg = Make (Mg)
module P_lu = Make (Lu)
module P_sp = Make (Sp)
module P_bt = Make (Bt)

let catalog =
  [
    (Baseline.prog_name, Baseline.mem_bytes);
    (Ep.prog_name, Ep.mem_bytes);
    (Is.prog_name, Is.mem_bytes);
    (Cg.prog_name, Cg.mem_bytes);
    (Mg.prog_name, Mg.mem_bytes);
    (Lu.prog_name, Lu.mem_bytes);
    (Sp.prog_name, Sp.mem_bytes);
    (Bt.prog_name, Bt.mem_bytes);
  ]

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    List.iter Simos.Program.register
      [
        (module P_baseline : Simos.Program.S);
        (module P_ep);
        (module P_is);
        (module P_cg);
        (module P_mg);
        (module P_lu);
        (module P_sp);
        (module P_bt);
      ]
  end
