module W = Util.Codec.Writer
module R = Util.Codec.Reader

(* simulated CPU seconds per floating-point operation *)
let flop_cost = 2e-9

let stencil_prog = "mpi:stencil"
let bsp_prog = "mpi:bsp"

(* ------------------------------------------------------------------ *)
(* Framework: like Nas.Make but transport-aware — the first extra argv
   word selects the Mpi backend ("direct" | "proxy"), and results are
   written with full float precision so direct-vs-proxy runs can be
   compared byte-for-byte. *)

type 'k kout = K_compute of 'k * float | K_wait of 'k | K_done of float * bool

module type KERNEL = sig
  type kstate

  val prog_name : string
  val short : string
  val mem_bytes : int
  val neighbors : size:int -> int -> int list
  val kinit : rank:int -> size:int -> extra:string list -> kstate
  val encode_k : W.t -> kstate -> unit
  val decode_k : R.t -> kstate
  val kstep : Simos.Program.ctx -> Mpi.t -> kstate -> kstate kout
end

module Make (K : KERNEL) : Simos.Program.S = struct
  type state =
    | F_boot
    | F_init of Mpi.t * K.kstate
    | F_run of Mpi.t * K.kstate
    | F_flush of Mpi.t * bool
    | F_notify of Launchers.notify * bool

  let name = K.prog_name

  let encode w = function
    | F_boot -> W.u8 w 0
    | F_init (comm, k) ->
      W.u8 w 1;
      Mpi.encode w comm;
      K.encode_k w k
    | F_run (comm, k) ->
      W.u8 w 2;
      Mpi.encode w comm;
      K.encode_k w k
    | F_flush (comm, ok) ->
      W.u8 w 4;
      Mpi.encode w comm;
      W.bool w ok
    | F_notify (n, ok) ->
      W.u8 w 3;
      Launchers.encode_notify w n;
      W.bool w ok

  let decode r =
    match R.u8 r with
    | 0 -> F_boot
    | 1 ->
      let comm = Mpi.decode r in
      let k = K.decode_k r in
      F_init (comm, k)
    | 2 ->
      let comm = Mpi.decode r in
      let k = K.decode_k r in
      F_run (comm, k)
    | 4 ->
      let comm = Mpi.decode r in
      let ok = R.bool r in
      F_flush (comm, ok)
    | _ ->
      let n = Launchers.decode_notify r in
      let ok = R.bool r in
      F_notify (n, ok)

  let init ~argv:_ = F_boot

  let split_transport = function
    | tr :: rest -> (Mpi.transport_of_string tr, rest)
    | [] -> (Mpi.Direct, [])

  let result_path (ctx : Simos.Program.ctx) =
    let _, _, base_port, _, _, _, _ = Launchers.parse_rank_args (List.tl ctx.argv) in
    Printf.sprintf "/result/%s-%d" K.short base_port

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | F_boot ->
      let rank, size, base_port, rpn, _, _, extra = Launchers.parse_rank_args (List.tl ctx.argv) in
      let transport, extra = split_transport extra in
      ignore
        (Workload_mem.alloc ctx ~bytes:K.mem_bytes ~mix:Workload_mem.mostly_numeric
           ~seed:((rank * 7919) + 13));
      let comm =
        Mpi.create ~rank ~size ~base_port ~ranks_per_node:rpn ~transport
          ~neighbors:(K.neighbors ~size) ()
      in
      Simos.Program.Continue (F_init (comm, K.kinit ~rank ~size ~extra))
    | F_init (comm, k) -> (
      match Mpi.init_step ctx comm with
      | `Ready -> Simos.Program.Continue (F_run (comm, k))
      | `Pending ->
        Simos.Program.Block (F_init (comm, k), Simos.Program.Sleep_until (ctx.now () +. 2e-3)))
    | F_run (comm, k) -> (
      Mpi.progress ctx comm;
      match K.kstep ctx comm k with
      | K_compute (k, dt) -> Simos.Program.Compute (F_run (comm, k), dt)
      | K_wait k -> Simos.Program.Block (F_run (comm, k), Mpi.wait ctx comm)
      | K_done (value, ok) ->
        if Mpi.rank comm = 0 then begin
          match ctx.open_file (result_path ctx) with
          | Ok fd ->
            (* full precision: chaos verdicts and the direct-vs-proxy
               check compare these bytes for equality *)
            ignore
              (ctx.write_fd fd
                 (Printf.sprintf "%s %s %.17g" (String.uppercase_ascii K.short)
                    (if ok then "VERIFIED" else "FAILED")
                    value));
            ctx.close_fd fd
          | Error _ -> ()
        end;
        (* exit only once every produced payload is in its destination's
           hands: an exiting rank takes its resend buffer with it *)
        Simos.Program.Continue (F_flush (comm, ok)))
    | F_flush (comm, ok) ->
      Mpi.progress ctx comm;
      if Mpi.quiesced comm then begin
        let _, _, _, _, nhost, nport, _ = Launchers.parse_rank_args (List.tl ctx.argv) in
        Simos.Program.Continue (F_notify (Launchers.notify_start ~host:nhost ~port:nport, ok))
      end
      else Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
    | F_notify (n, ok) -> (
      match Launchers.notify_step ctx n with
      | `Done -> Simos.Program.Exit (if ok then 0 else 1)
      | `Pending -> Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 1e-3)))
end

let ring ~size r = List.filter (fun n -> n >= 0 && n < size && n <> r) [ r - 1; r + 1 ]

(* ------------------------------------------------------------------ *)
(* Iterative 1-D Jacobi solver with deep-halo exchange: each superstep
   trades [h] boundary cells with ring neighbours, runs [h] relaxation
   sweeps off the fresh ghosts, and allreduces the residual sum.
   Numerically deterministic, so direct and proxy transports must agree
   bit-for-bit. *)

module Jacobi = struct
  type kstate = {
    cells : int;  (* interior cells per rank *)
    h : int;      (* halo depth = sweeps per superstep *)
    steps : int;  (* supersteps *)
    think : float;  (* extra compute seconds per superstep: the flop
                       count alone finishes in microseconds of simulated
                       time, faster than checkpoints or even the process
                       census can observe the job *)
    step_no : int;
    u : float array;  (* h ghosts | cells interior | h ghosts *)
    phase : int;      (* 0 send halos, 1 await halos, 2 reduce *)
    got_left : bool;
    got_right : bool;
    coll : Mpi.Coll.st option;
  }

  let prog_name = stencil_prog
  let short = "stencil"
  let mem_bytes = 4_000_000
  let neighbors ~size r = ring ~size r

  let kinit ~rank ~size:_ ~extra =
    let geti i d = match List.nth_opt extra i with Some s -> int_of_string s | None -> d in
    let getf i d = match List.nth_opt extra i with Some s -> float_of_string s | None -> d in
    let cells = max 2 (geti 0 64) in
    let h = max 1 (geti 1 4) in
    let steps = max 1 (geti 2 8) in
    let think = getf 3 0.01 in
    let n = cells + (2 * h) in
    let u =
      Array.init n (fun i ->
          if i < h || i >= h + cells then 0.
          else
            let gi = (rank * cells) + i - h in
            if gi mod 7 = 0 then 1.0 else float_of_int (gi mod 5) /. 4.0)
    in
    {
      cells;
      h;
      steps;
      think;
      step_no = 0;
      u;
      phase = 0;
      got_left = false;
      got_right = false;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.cells;
    W.uvarint w k.h;
    W.uvarint w k.steps;
    W.f64 w k.think;
    W.uvarint w k.step_no;
    W.uvarint w (Array.length k.u);
    Array.iter (W.f64 w) k.u;
    W.uvarint w k.phase;
    W.bool w k.got_left;
    W.bool w k.got_right;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let cells = R.uvarint r in
    let h = R.uvarint r in
    let steps = R.uvarint r in
    let think = R.f64 r in
    let step_no = R.uvarint r in
    let n = R.uvarint r in
    let u = Array.init n (fun _ -> R.f64 r) in
    let phase = R.uvarint r in
    let got_left = R.bool r in
    let got_right = R.bool r in
    let coll = R.option Mpi.Coll.decode r in
    { cells; h; steps; think; step_no; u; phase; got_left; got_right; coll }

  let pack = Array.fold_left (fun acc v -> acc ^ Mpi.f64_str v) ""

  let unpack s =
    Array.init (String.length s / 8) (fun i -> Mpi.str_f64 (String.sub s (i * 8) 8))

  let sweeps k =
    let n = Array.length k.u in
    let u = Array.copy k.u in
    for _ = 1 to k.h do
      let u' = Array.copy u in
      for i = 1 to n - 2 do
        u'.(i) <- (0.25 *. u.(i - 1)) +. (0.5 *. u.(i)) +. (0.25 *. u.(i + 1))
      done;
      Array.blit u' 0 u 0 n
    done;
    u

  let interior_sum k u =
    let s = ref 0. in
    for i = k.h to k.h + k.cells - 1 do
      s := !s +. u.(i)
    done;
    !s

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.phase with
    | 0 ->
      if rank > 0 then
        Mpi.send comm ~dst:(rank - 1) ~tag:'h' (pack (Array.sub k.u k.h k.h));
      if rank < size - 1 then
        Mpi.send comm ~dst:(rank + 1) ~tag:'h' (pack (Array.sub k.u k.cells k.h));
      K_wait { k with phase = 1; got_left = rank = 0; got_right = rank = size - 1 }
    | 1 ->
      let k = ref k in
      if (not !k.got_left) && rank > 0 then (
        match Mpi.recv comm ~src:(rank - 1) ~tag:'h' with
        | Some s ->
          Array.blit (unpack s) 0 !k.u 0 !k.h;
          k := { !k with got_left = true }
        | None -> ());
      if (not !k.got_right) && rank < size - 1 then (
        match Mpi.recv comm ~src:(rank + 1) ~tag:'h' with
        | Some s ->
          Array.blit (unpack s) 0 !k.u (!k.h + !k.cells) !k.h;
          k := { !k with got_right = true }
        | None -> ());
      let k = !k in
      if not (k.got_left && k.got_right) then K_wait k
      else begin
        (* physical boundaries: Dirichlet ghosts *)
        if rank = 0 then Array.fill k.u 0 k.h 1.0;
        if rank = size - 1 then Array.fill k.u (k.h + k.cells) k.h 0.0;
        let u = sweeps k in
        let local = interior_sum k u in
        let flops = float_of_int (4 * (Array.length u - 2) * k.h) in
        K_compute
          ( { k with u; phase = 2; coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum local)) },
            (flops *. flop_cost) +. k.think )
      end
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll -> (
        match Mpi.Coll.step ctx comm coll with
        | `Pending -> K_wait { k with coll = Some coll }
        | `Done total ->
          if k.step_no + 1 >= k.steps then K_done (total, Float.is_finite total)
          else
            K_compute
              ( { k with step_no = k.step_no + 1; phase = 0; coll = None },
                1e-4 )))
end

(* ------------------------------------------------------------------ *)
(* Bulk-synchronous phase program: each phase exchanges patterned
   payloads with ring neighbours, verifies them, optionally straggles
   (one designated slow rank per straggling phase — the others sit
   inside the closing allreduce for the whole delay, which is exactly
   where the chaos scenarios aim their node kill), then allreduces a
   checksum. *)

module Bsp = struct
  type kstate = {
    phases : int;
    bytes : int;          (* payload bytes per neighbour message *)
    straggle_every : int; (* 0 = never *)
    straggle_secs : float;
    phase_no : int;
    stage : int;  (* 0 send, 1 collect, 2 straggle, 3 reduce *)
    got_left : bool;
    got_right : bool;
    straggled : bool;
    checksum : float;
    ok : bool;
    coll : Mpi.Coll.st option;
  }

  let prog_name = bsp_prog
  let short = "bsp"
  let mem_bytes = 2_000_000
  let neighbors ~size r = ring ~size r

  let kinit ~rank:_ ~size:_ ~extra =
    let geti i d = match List.nth_opt extra i with Some s -> int_of_string s | None -> d in
    let getf i d = match List.nth_opt extra i with Some s -> float_of_string s | None -> d in
    {
      phases = max 1 (geti 0 6);
      bytes = max 1 (geti 1 2048);
      straggle_every = geti 2 0;
      straggle_secs = getf 3 0.3;
      phase_no = 0;
      stage = 0;
      got_left = false;
      got_right = false;
      straggled = false;
      checksum = 0.;
      ok = true;
      coll = None;
    }

  let encode_k w k =
    W.uvarint w k.phases;
    W.uvarint w k.bytes;
    W.uvarint w k.straggle_every;
    W.f64 w k.straggle_secs;
    W.uvarint w k.phase_no;
    W.uvarint w k.stage;
    W.bool w k.got_left;
    W.bool w k.got_right;
    W.bool w k.straggled;
    W.f64 w k.checksum;
    W.bool w k.ok;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let phases = R.uvarint r in
    let bytes = R.uvarint r in
    let straggle_every = R.uvarint r in
    let straggle_secs = R.f64 r in
    let phase_no = R.uvarint r in
    let stage = R.uvarint r in
    let got_left = R.bool r in
    let got_right = R.bool r in
    let straggled = R.bool r in
    let checksum = R.f64 r in
    let ok = R.bool r in
    let coll = R.option Mpi.Coll.decode r in
    {
      phases;
      bytes;
      straggle_every;
      straggle_secs;
      phase_no;
      stage;
      got_left;
      got_right;
      straggled;
      checksum;
      ok;
      coll;
    }

  let payload ~phase ~src ~bytes =
    String.init bytes (fun j -> Char.chr (((phase * 31) + (src * 17) + j) land 0xff))

  let payload_sum s = String.fold_left (fun acc c -> acc + Char.code c) 0 s

  let straggler k ~rank ~size =
    k.straggle_every > 0
    && k.phase_no mod k.straggle_every = 0
    && rank = k.phase_no / k.straggle_every mod size

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    match k.stage with
    | 0 ->
      let p = payload ~phase:k.phase_no ~src:rank ~bytes:k.bytes in
      if rank > 0 then Mpi.send comm ~dst:(rank - 1) ~tag:'d' p;
      if rank < size - 1 then Mpi.send comm ~dst:(rank + 1) ~tag:'d' p;
      K_wait { k with stage = 1; got_left = rank = 0; got_right = rank = size - 1 }
    | 1 ->
      let k = ref k in
      let collect src set =
        match Mpi.recv comm ~src ~tag:'d' with
        | Some s ->
          let want = payload ~phase:!k.phase_no ~src ~bytes:!k.bytes in
          k :=
            set
              {
                !k with
                ok = !k.ok && s = want;
                checksum = !k.checksum +. float_of_int (payload_sum s);
              }
        | None -> ()
      in
      if (not !k.got_left) && rank > 0 then
        collect (rank - 1) (fun k -> { k with got_left = true });
      if (not !k.got_right) && rank < size - 1 then
        collect (rank + 1) (fun k -> { k with got_right = true });
      let k = !k in
      if k.got_left && k.got_right then K_compute ({ k with stage = 2; straggled = false }, 1e-4)
      else K_wait k
    | 2 ->
      if straggler k ~rank ~size && not k.straggled then
        (* the designated slow rank computes while everyone else has
           already entered the allreduce *)
        K_compute ({ k with straggled = true }, k.straggle_secs)
      else
        K_compute
          ( {
              k with
              stage = 3;
              coll = Some (Mpi.Coll.start (Mpi.Coll.allreduce_sum k.checksum));
            },
            1e-4 )
    | _ -> (
      match k.coll with
      | None -> K_done (0., false)
      | Some coll -> (
        match Mpi.Coll.step ctx comm coll with
        | `Pending -> K_wait { k with coll = Some coll }
        | `Done total ->
          if k.phase_no + 1 >= k.phases then K_done (total, k.ok)
          else
            K_compute
              ( { k with phase_no = k.phase_no + 1; stage = 0; checksum = 0.; coll = None },
                1e-4 )))
end

module Jacobi_prog = Make (Jacobi)
module Bsp_prog = Make (Bsp)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module Jacobi_prog : Simos.Program.S);
    Simos.Program.register (module Bsp_prog : Simos.Program.S)
  end
