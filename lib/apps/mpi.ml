module W = Util.Codec.Writer
module R = Util.Codec.Reader

type transport = Direct | Proxied

let transport_of_string = function
  | "direct" -> Direct
  | "proxy" | "proxied" -> Proxied
  | s -> invalid_arg (Printf.sprintf "Mpi.transport_of_string: %S (want direct|proxy)" s)

let transport_name = function Direct -> "direct" | Proxied -> "proxy"

(* ------------------------------------------------------------------ *)
(* Direct backend: one TCP mesh socket per neighbour pair, exactly the
   original design. *)

type direct = {
  mutable listen_fd : int;
  mutable peer_fd : int array;
  mutable pending_conn : (int * int) list;    (* (peer rank, fd) *)
  mutable pending_accept : (int * string) list;  (* (fd, partial rank header) *)
  mutable out_bufs : string array;
  mutable in_bufs : string array;
}

(* Proxy backend: a single unix connection to the node's proxy daemon,
   plus the end-to-end reliability state that makes proxy custody
   disposable (see lib/proxy/wire.mli). *)

type proxied = {
  mutable pfd : int;          (* -1 = not connected *)
  mutable ready : bool;       (* Welcome received on the current connection *)
  mutable hello_sent : bool;
  mutable pout : string;
  mutable pin : string;
  mutable epoch : int;        (* restart generation; images restore to epoch+1 *)
  mutable last_resend : float;    (* transient: last retransmit-timer firing *)
  mutable send_seq : int array;   (* per dst: last sequence number assigned *)
  mutable recv_seq : int array;   (* per src: last sequence number accepted *)
  mutable unacked : (int * char * string) list array;  (* per dst, oldest first *)
  mutable sent_bytes : int array;       (* per dst: payload bytes sent *)
  mutable delivered_bytes : int array;  (* per src: payload bytes accepted *)
}

type backend = B_direct of direct | B_proxied of proxied

type t = {
  rank : int;
  size : int;
  base_port : int;
  ranks_per_node : int;
  neighbors : int list;
  backend : backend;
  mutable inbox : (char * string) list array;  (* FIFO, oldest first *)
}

(* rank 0 is everyone's neighbour (collectives are rooted there), so by
   symmetry rank 0 neighbours every rank *)
let normalize ~size ~rank peers =
  if rank = 0 then List.init (size - 1) (fun i -> i + 1)
  else List.sort_uniq compare (0 :: peers) |> List.filter (fun r -> r <> rank)

(* An asymmetric relation used to deadlock at init_step: the listed side
   waits forever for a connection the other side never opens.  Check the
   whole relation up front instead. *)
let validate_relation ~size relation =
  for r = 0 to size - 1 do
    List.iter
      (fun n ->
        if n < 0 || n >= size then
          invalid_arg
            (Printf.sprintf "Mpi.create: rank %d lists neighbour %d outside 0..%d" r n (size - 1)))
      (relation r)
  done;
  let norm = Array.init size (fun r -> normalize ~size ~rank:r (relation r)) in
  Array.iteri
    (fun r peers ->
      List.iter
        (fun n ->
          if not (List.mem r norm.(n)) then
            invalid_arg
              (Printf.sprintf
                 "Mpi.create: asymmetric neighbour relation: rank %d lists rank %d but rank %d \
                  does not list rank %d"
                 r n n r))
        peers)
    norm

let create ~rank ~size ~base_port ~ranks_per_node ?(transport = Direct) ~neighbors () =
  if size <= 0 then invalid_arg "Mpi.create: size must be positive";
  if rank < 0 || rank >= size then
    invalid_arg (Printf.sprintf "Mpi.create: rank %d outside 0..%d" rank (size - 1));
  validate_relation ~size neighbors;
  let backend =
    match transport with
    | Direct ->
      B_direct
        {
          listen_fd = -1;
          peer_fd = Array.make size (-1);
          pending_conn = [];
          pending_accept = [];
          out_bufs = Array.make size "";
          in_bufs = Array.make size "";
        }
    | Proxied ->
      B_proxied
        {
          pfd = -1;
          ready = false;
          hello_sent = false;
          pout = "";
          pin = "";
          epoch = 0;
          last_resend = 0.;
          send_seq = Array.make size 0;
          recv_seq = Array.make size 0;
          unacked = Array.make size [];
          sent_bytes = Array.make size 0;
          delivered_bytes = Array.make size 0;
        }
  in
  {
    rank;
    size;
    base_port;
    ranks_per_node;
    neighbors = normalize ~size ~rank (neighbors rank);
    backend;
    inbox = Array.make size [];
  }

let rank t = t.rank
let size t = t.size
let host_of_rank t r = r / t.ranks_per_node
let port_of_rank t r = t.base_port + r
let transport t = match t.backend with B_direct _ -> Direct | B_proxied _ -> Proxied

(* 4-byte little-endian int *)
let put_u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let get_u32 s off = Int32.to_int (String.get_int32_le s off)

(* ------------------------------------------------------------------ *)
(* Direct backend machinery *)

let start_connect (ctx : Simos.Program.ctx) t d peer =
  let fd = ctx.socket () in
  (match
     ctx.connect fd
       (Simnet.Addr.Inet { host = host_of_rank t peer; port = port_of_rank t peer })
   with
  | Ok () -> d.pending_conn <- (peer, fd) :: d.pending_conn
  | Error _ -> ctx.close_fd fd)

let direct_init_step (ctx : Simos.Program.ctx) t d =
  if d.listen_fd < 0 then begin
    let fd = ctx.socket () in
    (match ctx.bind fd ~port:(port_of_rank t t.rank) with
    | Ok _ -> ()
    | Error _ -> failwith "Mpi: cannot bind rank port");
    (match ctx.listen fd ~backlog:(t.size + 4) with
    | Ok () -> ()
    | Error _ -> failwith "Mpi: cannot listen");
    d.listen_fd <- fd;
    (* eager connections to lower-rank neighbours *)
    List.iter (fun peer -> if peer < t.rank then start_connect ctx t d peer) t.neighbors
  end;
  (* progress outgoing connections *)
  d.pending_conn <-
    List.filter
      (fun (peer, fd) ->
        match ctx.sock_state fd with
        | Some Simnet.Fabric.Established ->
          ignore (ctx.write_fd fd (put_u32 t.rank));
          d.peer_fd.(peer) <- fd;
          false
        | Some Simnet.Fabric.Connecting -> true
        | _ ->
          (* refused: the peer's listener is not up yet; retry *)
          ctx.close_fd fd;
          start_connect ctx t d peer;
          false)
      d.pending_conn;
  (* accept incoming *)
  let rec accept_all () =
    match ctx.accept d.listen_fd with
    | Some fd ->
      d.pending_accept <- (fd, "") :: d.pending_accept;
      accept_all ()
    | None -> ()
  in
  accept_all ();
  d.pending_accept <-
    List.filter_map
      (fun (fd, hdr) ->
        match ctx.read_fd fd ~max:(4 - String.length hdr) with
        | `Data data ->
          let hdr = hdr ^ data in
          if String.length hdr >= 4 then begin
            d.peer_fd.(get_u32 hdr 0) <- fd;
            None
          end
          else Some (fd, hdr)
        | `Eof ->
          ctx.close_fd fd;
          None
        | `Would_block | `Err _ -> Some (fd, hdr))
      d.pending_accept;
  let ready = List.for_all (fun peer -> d.peer_fd.(peer) >= 0) t.neighbors in
  if ready then `Ready else `Pending

let frame ~tag payload = put_u32 (String.length payload + 1) ^ String.make 1 tag ^ payload

let direct_progress (ctx : Simos.Program.ctx) t d =
  List.iter
    (fun peer ->
      (* flush pending output *)
      let buf = d.out_bufs.(peer) in
      if buf <> "" && d.peer_fd.(peer) >= 0 then begin
        match ctx.write_fd d.peer_fd.(peer) buf with
        | Ok n -> d.out_bufs.(peer) <- String.sub buf n (String.length buf - n)
        | Error _ -> ()
      end;
      (* read input *)
      if d.peer_fd.(peer) >= 0 then begin
        let continue = ref true in
        while !continue do
          match ctx.read_fd d.peer_fd.(peer) ~max:65536 with
          | `Data data -> d.in_bufs.(peer) <- d.in_bufs.(peer) ^ data
          | `Eof | `Would_block | `Err _ -> continue := false
        done;
        (* parse complete frames *)
        let buf = ref d.in_bufs.(peer) in
        let again = ref true in
        while !again do
          if String.length !buf >= 4 then begin
            let len = get_u32 !buf 0 in
            if String.length !buf >= 4 + len then begin
              let tag = !buf.[4] in
              let payload = String.sub !buf 5 (len - 1) in
              t.inbox.(peer) <- t.inbox.(peer) @ [ (tag, payload) ];
              buf := String.sub !buf (4 + len) (String.length !buf - 4 - len)
            end
            else again := false
          end
          else again := false
        done;
        d.in_bufs.(peer) <- !buf
      end)
    t.neighbors

(* ------------------------------------------------------------------ *)
(* Proxy backend machinery *)

let proxy_path t = Proxy.Wire.sock_path ~base_port:t.base_port

(* restart-rearrangement marker: the mpi-proxy plugin reads it from the
   restored process environment and relaunches the node's proxy before
   the rank resumes *)
let proxy_env_key = "MPI_PROXY"

let unacked_payload l = List.fold_left (fun acc (_, _, pl) -> acc + String.length pl) 0 l

let mirror_accounting t p =
  Proxy.Accounting.set_rank ~base_port:t.base_port ~rank:t.rank ~sent_to:p.sent_bytes
    ~delivered_from:p.delivered_bytes
    ~retained_to:(Array.map unacked_payload p.unacked)

let penqueue p f = p.pout <- p.pout ^ Proxy.Wire.to_bytes f

let pdrop (ctx : Simos.Program.ctx) p =
  if p.pfd >= 0 then ctx.close_fd p.pfd;
  p.pfd <- -1;
  p.ready <- false;
  p.hello_sent <- false;
  p.pin <- "";
  p.pout <- ""

let pconnect (ctx : Simos.Program.ctx) t p =
  ctx.setenv proxy_env_key
    (Printf.sprintf "%d:%d" t.base_port t.ranks_per_node);
  let fd = ctx.socket_unix () in
  match ctx.connect fd (Simnet.Addr.Unix { host = ctx.node_id; path = proxy_path t }) with
  | Ok () -> p.pfd <- fd
  | Error _ -> ctx.close_fd fd

(* everything not yet acknowledged goes again, oldest first — the
   receive side discards what it already accepted.  Resends carry the
   *current* epoch: after a restore they are the new generation's
   authoritative copies of the rewound traffic. *)
let requeue_unacked t p =
  Array.iteri
    (fun dst l ->
      List.iter
        (fun (seq, tag, payload) ->
          penqueue p (Proxy.Wire.Data { src = t.rank; dst; epoch = p.epoch; seq; tag; payload }))
        l)
    p.unacked

let paccept t p ~src ~epoch ~seq ~tag ~payload =
  (* a frame from another epoch is pre-restore traffic a surviving proxy
     still held; the rewind invalidated it wholesale *)
  if epoch <> p.epoch then ()
  else if seq = p.recv_seq.(src) + 1 then begin
    p.recv_seq.(src) <- seq;
    p.delivered_bytes.(src) <- p.delivered_bytes.(src) + String.length payload;
    t.inbox.(src) <- t.inbox.(src) @ [ (tag, payload) ];
    penqueue p (Proxy.Wire.Ack { src = t.rank; dst = src; epoch = p.epoch; seq })
  end
  else if seq <= p.recv_seq.(src) then
    (* duplicate (a resend raced surviving proxy custody): re-acknowledge
       cumulatively, do not deliver twice *)
    penqueue p (Proxy.Wire.Ack { src = t.rank; dst = src; epoch = p.epoch; seq = p.recv_seq.(src) })
  (* else: a gap — stale custody from a surviving proxy running ahead of
     the in-order resend; drop it, the resend supplies the missing
     frames (and this one again) in order *)

let pprogress (ctx : Simos.Program.ctx) t p =
  if p.pfd < 0 then pconnect ctx t p;
  (if p.pfd >= 0 then
     match ctx.sock_state p.pfd with
     | Some Simnet.Fabric.Connecting -> ()
     | Some Simnet.Fabric.Established ->
       if not p.hello_sent then begin
         p.hello_sent <- true;
         penqueue p (Proxy.Wire.Hello { rank = t.rank; size = t.size; rpn = t.ranks_per_node })
       end;
       (if p.pout <> "" then
          match ctx.write_fd p.pfd p.pout with
          | Ok n -> p.pout <- String.sub p.pout n (String.length p.pout - n)
          | Error _ -> pdrop ctx p);
       if p.pfd >= 0 then begin
         let continue = ref true in
         while !continue do
           match ctx.read_fd p.pfd ~max:65536 with
           | `Data data -> p.pin <- p.pin ^ data
           | `Would_block -> continue := false
           | `Eof | `Err _ ->
             pdrop ctx p;
             continue := false
         done
       end;
       if p.pfd >= 0 then begin
         let again = ref true in
         while !again do
           match Proxy.Wire.pop p.pin with
           | None -> again := false
           | Some (f, rest) ->
             p.pin <- rest;
             (match f with
             | Proxy.Wire.Welcome ->
               p.ready <- true;
               p.last_resend <- ctx.now ();
               requeue_unacked t p
             | Proxy.Wire.Deliver { src; epoch; seq; tag; payload } ->
               paccept t p ~src ~epoch ~seq ~tag ~payload
             | Proxy.Wire.Ack_ind { src; epoch; seq } ->
               (* a stale ack survives in the proxies across a restart and
                  would cancel the resend of a delivery the rewind undid *)
               if epoch = p.epoch then
                 p.unacked.(src) <- List.filter (fun (s, _, _) -> s > seq) p.unacked.(src)
             | Proxy.Wire.Hello _ | Proxy.Wire.Data _ | Proxy.Wire.Ack _ -> ())
         done
       end;
       (* retransmit timer: delivery must not depend on any particular
          copy surviving — a proxy sheds custody whenever a connection
          dies (a rank suspended mid-checkpoint stops draining its unix
          socket, say), and only the sender can put the bytes back.
          Duplicates are cheap: the receiver re-acks and drops them. *)
       if
         p.pfd >= 0 && p.ready
         && ctx.now () -. p.last_resend > 0.02
         && Array.exists (fun l -> l <> []) p.unacked
       then begin
         p.last_resend <- ctx.now ();
         requeue_unacked t p
       end
     | _ ->
       (* refused (proxy not up yet), closed, or the dead socket a restart
          restored in place of the old connection: reconnect next round *)
       pdrop ctx p);
  mirror_accounting t p

let psend t p ~dst ~tag payload =
  let seq = p.send_seq.(dst) + 1 in
  p.send_seq.(dst) <- seq;
  p.unacked.(dst) <- p.unacked.(dst) @ [ (seq, tag, payload) ];
  p.sent_bytes.(dst) <- p.sent_bytes.(dst) + String.length payload;
  if p.ready then
    penqueue p (Proxy.Wire.Data { src = t.rank; dst; epoch = p.epoch; seq; tag; payload });
  mirror_accounting t p

(* ------------------------------------------------------------------ *)
(* Transport-agnostic surface *)

let init_step (ctx : Simos.Program.ctx) t =
  match t.backend with
  | B_direct d -> direct_init_step ctx t d
  | B_proxied p ->
    pprogress ctx t p;
    if p.ready then `Ready else `Pending

let send t ~dst ~tag payload =
  match t.backend with
  | B_direct d -> d.out_bufs.(dst) <- d.out_bufs.(dst) ^ frame ~tag payload
  | B_proxied p -> psend t p ~dst ~tag payload

let progress (ctx : Simos.Program.ctx) t =
  match t.backend with
  | B_direct d -> direct_progress ctx t d
  | B_proxied p -> pprogress ctx t p

let recv t ~src ~tag =
  let rec take acc = function
    | [] -> None
    | (tg, payload) :: rest when tg = tag ->
      t.inbox.(src) <- List.rev_append acc rest;
      Some payload
    | m :: rest -> take (m :: acc) rest
  in
  take [] t.inbox.(src)

let recv_any t ~tag =
  let rec go = function
    | [] -> None
    | src :: rest -> (
      match recv t ~src ~tag with
      | Some payload -> Some (src, payload)
      | None -> go rest)
  in
  go t.neighbors

let pending_out t ~dst =
  match t.backend with
  | B_direct d -> String.length d.out_bufs.(dst)
  | B_proxied p -> unacked_payload p.unacked.(dst)

let wait (ctx : Simos.Program.ctx) t =
  match t.backend with
  | B_direct d ->
    let flushing = List.exists (fun p -> d.out_bufs.(p) <> "") t.neighbors in
    if flushing then Simos.Program.Sleep_until (ctx.now () +. 1e-3)
    else begin
      let fds =
        List.filter_map (fun p -> if d.peer_fd.(p) >= 0 then Some d.peer_fd.(p) else None) t.neighbors
      in
      Simos.Program.Readable_any (if d.listen_fd >= 0 then d.listen_fd :: fds else fds)
    end
  | B_proxied p ->
    (* poll while anything is unacknowledged — a pure Readable block
       would never run the retransmit timer if the only copy in flight
       was lost; with an empty resend buffer the peer drives every
       wake-up and blocking on the socket is safe *)
    if
      p.pfd < 0 || (not p.ready) || p.pout <> ""
      || Array.exists (fun l -> l <> []) p.unacked
    then Simos.Program.Sleep_until (ctx.now () +. 1e-3)
    else Simos.Program.Readable p.pfd

(* nothing buffered and nothing awaiting acknowledgement: every payload
   this rank produced is in the destination rank's hands.  Transport
   custody is disposable, so a rank may only exit in this state — bytes
   still in [unacked] would otherwise be unrecoverable. *)
let quiesced t =
  match t.backend with
  | B_direct d -> Array.for_all (fun b -> b = "") d.out_bufs
  | B_proxied p -> p.pout = "" && Array.for_all (fun l -> l = []) p.unacked

(* ------------------------------------------------------------------ *)
(* Collectives: star rooted at rank 0; tags 'g' (gather) and 'r'
   (release) are reserved. *)

let f64_str v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Bytes.unsafe_to_string b

let str_f64 s = Int64.float_of_bits (String.get_int64_le s 0)

module Coll = struct
  type op = Barrier | Sum of float | Bcast of float option

  let barrier = Barrier
  let allreduce_sum v = Sum v
  let bcast ~root_value = Bcast root_value

  type st = {
    kind : int;  (* 0 barrier, 1 sum, 2 bcast *)
    value : float;
    mutable phase : int;  (* 0 not started, 1 gathering/waiting *)
    mutable got : int;
    mutable pairs : (int * float) list;  (* root: (src rank, value) *)
  }

  let start = function
    | Barrier -> { kind = 0; value = 0.; phase = 0; got = 0; pairs = [] }
    | Sum v -> { kind = 1; value = v; phase = 0; got = 0; pairs = [] }
    | Bcast v ->
      { kind = 2; value = Option.value ~default:0. v; phase = 0; got = 0; pairs = [] }

  (* summed in rank order, not arrival order: the reduction result must
     be bit-identical across timings and transports *)
  let reduce pairs =
    List.sort (fun (a, _) (b, _) -> compare a b) pairs
    |> List.fold_left (fun acc (_, v) -> acc +. v) 0.

  let step (ctx : Simos.Program.ctx) comm st =
    progress ctx comm;
    if comm.size = 1 then `Done st.value
    else if comm.rank <> 0 then begin
      if st.phase = 0 then begin
        send comm ~dst:0 ~tag:'g' (f64_str st.value);
        st.phase <- 1
      end;
      progress ctx comm;
      match recv comm ~src:0 ~tag:'r' with
      | Some payload -> `Done (str_f64 payload)
      | None -> `Pending
    end
    else begin
      if st.phase = 0 then begin
        st.phase <- 1;
        st.got <- 1;
        st.pairs <- [ (0, st.value) ]
      end;
      let continue = ref true in
      while !continue do
        match recv_any comm ~tag:'g' with
        | Some (src, payload) ->
          st.got <- st.got + 1;
          st.pairs <- (src, str_f64 payload) :: st.pairs
        | None -> continue := false
      done;
      if st.got >= comm.size then begin
        let result = if st.kind = 2 then st.value else reduce st.pairs in
        for r = 1 to comm.size - 1 do
          send comm ~dst:r ~tag:'r' (f64_str result)
        done;
        progress ctx comm;
        `Done result
      end
      else `Pending
    end

  let encode w st =
    W.uvarint w st.kind;
    W.f64 w st.value;
    W.uvarint w st.phase;
    W.uvarint w st.got;
    W.list (W.pair W.uvarint W.f64) w st.pairs

  let decode r =
    let kind = R.uvarint r in
    let value = R.f64 r in
    let phase = R.uvarint r in
    let got = R.uvarint r in
    let pairs = R.list (R.pair R.uvarint R.f64) r in
    { kind; value; phase; got; pairs }
end

(* ------------------------------------------------------------------ *)

let encode_backend w = function
  | B_direct d ->
    W.u8 w 0;
    W.varint w d.listen_fd;
    W.array W.varint w d.peer_fd;
    W.list (W.pair W.uvarint W.varint) w d.pending_conn;
    W.list (W.pair W.varint W.string) w d.pending_accept;
    W.array W.string w d.out_bufs;
    W.array W.string w d.in_bufs
  | B_proxied p ->
    W.u8 w 1;
    W.varint w p.pfd;
    W.bool w p.ready;
    W.bool w p.hello_sent;
    W.string w p.pout;
    W.string w p.pin;
    (* the image restores into the next connection generation: proxies
       outlive the computation, and anything they still carry from this
       epoch must not be mistaken for post-restore traffic *)
    W.uvarint w (p.epoch + 1);
    W.array W.uvarint w p.send_seq;
    W.array W.uvarint w p.recv_seq;
    W.array
      (W.list (fun w (seq, tag, payload) ->
           W.uvarint w seq;
           W.u8 w (Char.code tag);
           W.string w payload))
      w p.unacked;
    W.array W.uvarint w p.sent_bytes;
    W.array W.uvarint w p.delivered_bytes

let decode_backend r =
  match R.u8 r with
  | 0 ->
    let listen_fd = R.varint r in
    let peer_fd = R.array R.varint r in
    let pending_conn = R.list (R.pair R.uvarint R.varint) r in
    let pending_accept = R.list (R.pair R.varint R.string) r in
    let out_bufs = R.array R.string r in
    let in_bufs = R.array R.string r in
    B_direct { listen_fd; peer_fd; pending_conn; pending_accept; out_bufs; in_bufs }
  | _ ->
    let pfd = R.varint r in
    let ready = R.bool r in
    let hello_sent = R.bool r in
    let pout = R.string r in
    let pin = R.string r in
    let epoch = R.uvarint r in
    let send_seq = R.array R.uvarint r in
    let recv_seq = R.array R.uvarint r in
    let unacked =
      R.array
        (R.list (fun r ->
             let seq = R.uvarint r in
             let tag = Char.chr (R.u8 r) in
             let payload = R.string r in
             (seq, tag, payload)))
        r
    in
    let sent_bytes = R.array R.uvarint r in
    let delivered_bytes = R.array R.uvarint r in
    B_proxied
      {
        pfd;
        ready;
        hello_sent;
        pout;
        pin;
        epoch;
        last_resend = 0.;
        send_seq;
        recv_seq;
        unacked;
        sent_bytes;
        delivered_bytes;
      }

let encode w t =
  W.uvarint w t.rank;
  W.uvarint w t.size;
  W.uvarint w t.base_port;
  W.uvarint w t.ranks_per_node;
  W.list W.uvarint w t.neighbors;
  encode_backend w t.backend;
  W.array
    (fun w msgs ->
      W.list
        (fun w (tag, payload) ->
          W.u8 w (Char.code tag);
          W.string w payload)
        w msgs)
    w t.inbox

let decode r =
  let rank = R.uvarint r in
  let size = R.uvarint r in
  let base_port = R.uvarint r in
  let ranks_per_node = R.uvarint r in
  let neighbors = R.list R.uvarint r in
  let backend = decode_backend r in
  let inbox =
    R.array
      (fun r ->
        R.list
          (fun r ->
            let tag = Char.chr (R.u8 r) in
            let payload = R.string r in
            (tag, payload))
          r)
      r
  in
  { rank; size; base_port; ranks_per_node; neighbors; backend; inbox }
