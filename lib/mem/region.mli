(** A contiguous mapped range of an address space, page-granular, in the
    spirit of a line of [/proc/<pid>/maps]. *)

type kind =
  | Text                                      (** program/library code *)
  | Data                                      (** initialized globals *)
  | Heap
  | Stack
  | Mmap_anon
  | Mmap_shared of { backing_path : string }  (** shared mapping with a backing file *)

type perms = { read : bool; write : bool; exec : bool }

val rw : perms
val rx : perms
val ro : perms

type t = {
  id : int;
  start_addr : int;
  kind : kind;
  perms : perms;
  pages : Page.content array;  (** slots are mutable; contents immutable *)
  dirty : Bytes.t;
      (** byte-per-page dirty bits since the last checkpoint; set by
          {!set_page}, cleared by {!clear_dirty}, all-dirty on
          {!create}/{!decode}.  Excluded from {!encode} and {!equal}. *)
  resident : Bytes.t;
      (** byte-per-page residency bits for demand-paged lazy restore: a
          lazily restored region starts mostly absent
          ({!mark_all_absent}) and pages become resident on first touch
          ({!set_resident}, also by {!set_page}) or via the background
          prefetcher.  All-resident on {!create}/{!decode}; copied by
          {!clone_private}; excluded from {!encode} and {!equal}.
          Residency is purely a time-accounting device — page contents
          are always materially present. *)
}

val npages : t -> int
val byte_size : t -> int
val end_addr : t -> int

(** [create ~id ~start_addr ~kind ~perms ~npages content] builds a region
    whose [i]-th page is [content i]. *)
val create :
  id:int -> start_addr:int -> kind:kind -> perms:perms -> npages:int -> (int -> Page.content) -> t

(** Private copy-on-write clone: a fresh page array sharing the immutable
    page contents.  Shared mappings alias the same array instead (decided
    by {!Address_space.fork}). *)
val clone_private : t -> t

(** Same region object with the page array aliased (shared mapping
    semantics: writes by either side are seen by both). *)
val alias : t -> t

(** [set_page t i content] replaces page [i] and marks it dirty. *)
val set_page : t -> int -> Page.content -> unit

(** Page [i] was written since the last {!clear_dirty} (conservative:
    freshly created or decoded regions report every page dirty). *)
val is_dirty : t -> int -> bool

(** Number of dirty pages. *)
val dirty_count : t -> int

(** Mark every page clean — called by the checkpointer once a snapshot
    of the region has been taken. *)
val clear_dirty : t -> unit

(** Page [i] has been paged in since the region was lazily restored
    (always true for eagerly restored or freshly created regions). *)
val is_resident : t -> int -> bool

(** Mark page [i] resident (first touch, or prefetcher pass). *)
val set_resident : t -> int -> unit

(** Mark every page absent — the lazy restart path calls this on cold
    regions right after decode so first touches fault in. *)
val mark_all_absent : t -> unit

(** Number of resident pages. *)
val resident_count : t -> int

val kind_name : kind -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t

(** The kind codec alone — delta images serialize a region skeleton
    (identity and shape, no page payloads) and need it separately. *)
val encode_kind : Util.Codec.Writer.t -> kind -> unit

val decode_kind : Util.Codec.Reader.t -> kind

(** Structural equality of metadata and page contents (synthetic pages
    compare by descriptor). *)
val equal : t -> t -> bool
