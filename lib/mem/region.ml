type kind =
  | Text
  | Data
  | Heap
  | Stack
  | Mmap_anon
  | Mmap_shared of { backing_path : string }

type perms = { read : bool; write : bool; exec : bool }

let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let ro = { read = true; write = false; exec = false }

type t = {
  id : int;
  start_addr : int;
  kind : kind;
  perms : perms;
  pages : Page.content array;
  dirty : Bytes.t;
  resident : Bytes.t;
}

let npages t = Array.length t.pages
let byte_size t = npages t * Page.size
let end_addr t = t.start_addr + byte_size t

let create ~id ~start_addr ~kind ~perms ~npages content =
  if start_addr mod Page.size <> 0 then invalid_arg "Region.create: unaligned start";
  {
    id;
    start_addr;
    kind;
    perms;
    pages = Array.init npages content;
    dirty = Bytes.make npages '\001';
    resident = Bytes.make npages '\001';
  }

let clone_private t =
  {
    t with
    pages = Array.copy t.pages;
    dirty = Bytes.copy t.dirty;
    resident = Bytes.copy t.resident;
  }
let alias t = t

let set_page t i content =
  t.pages.(i) <- content;
  Bytes.unsafe_set t.dirty i '\001';
  Bytes.unsafe_set t.resident i '\001'

let is_dirty t i = Bytes.unsafe_get t.dirty i <> '\000'

let dirty_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.dirty;
  !n

let clear_dirty t = Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000'
let is_resident t i = Bytes.unsafe_get t.resident i <> '\000'
let set_resident t i = Bytes.unsafe_set t.resident i '\001'
let mark_all_absent t = Bytes.fill t.resident 0 (Bytes.length t.resident) '\000'

let resident_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.resident;
  !n

let kind_name = function
  | Text -> "text"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"
  | Mmap_anon -> "mmap"
  | Mmap_shared _ -> "mmap-shared"

let encode_kind w = function
  | Text -> Util.Codec.Writer.u8 w 0
  | Data -> Util.Codec.Writer.u8 w 1
  | Heap -> Util.Codec.Writer.u8 w 2
  | Stack -> Util.Codec.Writer.u8 w 3
  | Mmap_anon -> Util.Codec.Writer.u8 w 4
  | Mmap_shared { backing_path } ->
    Util.Codec.Writer.u8 w 5;
    Util.Codec.Writer.string w backing_path

let decode_kind r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Text
  | 1 -> Data
  | 2 -> Heap
  | 3 -> Stack
  | 4 -> Mmap_anon
  | 5 ->
    let backing_path = Util.Codec.Reader.string r in
    Mmap_shared { backing_path }
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad region kind %d" n))

let encode w t =
  Util.Codec.Writer.uvarint w t.id;
  Util.Codec.Writer.uvarint w t.start_addr;
  encode_kind w t.kind;
  Util.Codec.Writer.bool w t.perms.read;
  Util.Codec.Writer.bool w t.perms.write;
  Util.Codec.Writer.bool w t.perms.exec;
  Util.Codec.Writer.array Page.encode w t.pages

let decode r =
  let id = Util.Codec.Reader.uvarint r in
  let start_addr = Util.Codec.Reader.uvarint r in
  let kind = decode_kind r in
  let read = Util.Codec.Reader.bool r in
  let write = Util.Codec.Reader.bool r in
  let exec = Util.Codec.Reader.bool r in
  let pages = Util.Codec.Reader.array Page.decode r in
  {
    id;
    start_addr;
    kind;
    perms = { read; write; exec };
    pages;
    dirty = Bytes.make (Array.length pages) '\001';
    resident = Bytes.make (Array.length pages) '\001';
  }

let equal a b =
  a.id = b.id && a.start_addr = b.start_addr && a.kind = b.kind && a.perms = b.perms
  && npages a = npages b
  && Array.for_all2 (fun pa pb -> pa = pb) a.pages b.pages
