type t = {
  mutable regions : Region.t list;  (* ascending start address *)
  mutable next_addr : int;
  mutable next_region_id : int;
}

(* Conventional lowest mapping address; a gap is kept between regions so
   off-by-one addressing bugs fault instead of landing in a neighbour. *)
let base_addr = 0x400000
let guard_gap = 16 * Page.size

let create () = { regions = []; next_addr = base_addr; next_region_id = 0 }
let regions t = t.regions
let next_addr t = t.next_addr
let next_region_id t = t.next_region_id

let of_regions ~next_addr ~next_region_id regions =
  {
    regions =
      List.sort (fun (a : Region.t) b -> compare a.start_addr b.start_addr) regions;
    next_addr;
    next_region_id;
  }

let pages_for bytes = max 1 ((bytes + Page.size - 1) / Page.size)

let insert t region =
  t.regions <-
    List.sort (fun (a : Region.t) b -> compare a.start_addr b.start_addr) (region :: t.regions)

let fresh_range t npages =
  let start = t.next_addr in
  t.next_addr <- start + (npages * Page.size) + guard_gap;
  start

let map t ~kind ~perms ~bytes ?(content = fun _ -> Page.Zero) () =
  let npages = pages_for bytes in
  let start_addr = fresh_range t npages in
  let id = t.next_region_id in
  t.next_region_id <- id + 1;
  let region = Region.create ~id ~start_addr ~kind ~perms ~npages content in
  insert t region;
  region

let attach t region =
  let npages = Region.npages region in
  let start_addr = fresh_range t npages in
  let id = t.next_region_id in
  t.next_region_id <- id + 1;
  (* Keep the same page array (aliasing) but give a local address/id. *)
  let attached = { region with Region.id; start_addr } in
  insert t attached;
  attached

let unmap t region =
  t.regions <- List.filter (fun (r : Region.t) -> r.Region.id <> region.Region.id) t.regions

let find_region t ~addr =
  List.find_opt
    (fun (r : Region.t) -> addr >= r.start_addr && addr < Region.end_addr r)
    t.regions

let locate t ~addr ~len =
  match find_region t ~addr with
  | None -> invalid_arg (Printf.sprintf "Address_space: unmapped address 0x%x" addr)
  | Some r ->
    if addr + len > Region.end_addr r then
      invalid_arg "Address_space: access crosses region boundary";
    r

let read t ~addr ~len =
  if len < 0 then invalid_arg "Address_space.read: negative length";
  let r = locate t ~addr ~len in
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let off = addr + !copied - r.start_addr in
    let page_idx = off / Page.size in
    let page_off = off mod Page.size in
    let chunk = min (len - !copied) (Page.size - page_off) in
    let page = Page.materialize r.pages.(page_idx) in
    Bytes.blit page page_off out !copied chunk;
    copied := !copied + chunk
  done;
  Bytes.unsafe_to_string out

let write t ~addr s =
  let len = String.length s in
  if len = 0 then ()
  else begin
    let r = locate t ~addr ~len in
    let copied = ref 0 in
    while !copied < len do
      let off = addr + !copied - r.start_addr in
      let page_idx = off / Page.size in
      let page_off = off mod Page.size in
      let chunk = min (len - !copied) (Page.size - page_off) in
      (* copy-on-write: never mutate existing page bytes in place *)
      let fresh = Bytes.copy (Page.materialize r.pages.(page_idx)) in
      Bytes.blit_string s !copied fresh page_off chunk;
      Region.set_page r page_idx (Page.Materialized fresh);
      copied := !copied + chunk
    done
  end

let fork t =
  {
    regions =
      List.map
        (fun (r : Region.t) ->
          match r.kind with
          | Region.Mmap_shared _ -> Region.alias r
          | Region.Text | Region.Data | Region.Heap | Region.Stack | Region.Mmap_anon ->
            Region.clone_private r)
        t.regions;
    next_addr = t.next_addr;
    next_region_id = t.next_region_id;
  }

let snapshot = fork

let total_bytes t = List.fold_left (fun acc r -> acc + Region.byte_size r) 0 t.regions

(* Shared mappings count as always dirty: another process's view writes
   through an attached copy of the region record, so this view's bitmap
   cannot be trusted to have seen every store. *)
let region_dirty_pages (r : Region.t) =
  match r.Region.kind with
  | Region.Mmap_shared _ -> Region.npages r
  | Region.Text | Region.Data | Region.Heap | Region.Stack | Region.Mmap_anon ->
    Region.dirty_count r

let dirty_pages t = List.fold_left (fun acc r -> acc + region_dirty_pages r) 0 t.regions
let clear_dirty t = List.iter Region.clear_dirty t.regions
let total_pages t = List.fold_left (fun acc r -> acc + Region.npages r) 0 t.regions
let resident_pages t = List.fold_left (fun acc r -> acc + Region.resident_count r) 0 t.regions

let zero_bytes t =
  List.fold_left
    (fun acc (r : Region.t) ->
      acc + (Page.size * Array.fold_left (fun n p -> if Page.is_zero p then n + 1 else n) 0 r.pages))
    0 t.regions

let equal a b =
  List.length a.regions = List.length b.regions
  && List.for_all2 Region.equal a.regions b.regions

let encode w t =
  Util.Codec.Writer.uvarint w t.next_addr;
  Util.Codec.Writer.uvarint w t.next_region_id;
  Util.Codec.Writer.list Region.encode w t.regions

let decode r =
  let next_addr = Util.Codec.Reader.uvarint r in
  let next_region_id = Util.Codec.Reader.uvarint r in
  let regions = Util.Codec.Reader.list Region.decode r in
  { regions; next_addr; next_region_id }

let substitute_pages t ~region_id pages =
  t.regions <-
    List.map
      (fun (r : Region.t) -> if r.Region.id = region_id then { r with Region.pages } else r)
      t.regions
