(** A process's virtual address space: an ordered set of page-granular
    regions with byte-level access, copy-on-write forking, and the size
    accounting the checkpointer needs. *)

type t

val create : unit -> t

(** Regions in ascending address order. *)
val regions : t -> Region.t list

(** Allocation cursor and next region id — serialized by delta images so a
    reconstructed space is structurally identical to the original. *)
val next_addr : t -> int

val next_region_id : t -> int

(** Rebuild a space from parts (regions are re-sorted by address).  Used
    when applying a delta image to its base. *)
val of_regions : next_addr:int -> next_region_id:int -> Region.t list -> t

(** [map t ~kind ~perms ~bytes content] maps a fresh region of at least
    [bytes] (rounded up to whole pages) at the next free address and
    returns it.  [content] defaults to all-[Zero] pages. *)
val map :
  t ->
  kind:Region.kind ->
  perms:Region.perms ->
  bytes:int ->
  ?content:(int -> Page.content) ->
  unit ->
  Region.t

(** Map a pre-built region object (used to attach shared segments: the
    region's page array is aliased, not copied).  The region keeps its
    identity but is re-addressed at the next free address; the re-addressed
    region is returned. *)
val attach : t -> Region.t -> Region.t

(** Remove a region. Unknown regions are ignored. *)
val unmap : t -> Region.t -> unit

val find_region : t -> addr:int -> Region.t option

(** [read t ~addr ~len] returns [len] bytes; the range must lie within one
    region. Raises [Invalid_argument] otherwise. *)
val read : t -> addr:int -> len:int -> string

(** [write t ~addr s] stores [s]; affected pages are materialized
    copy-on-write, so forked snapshots are unaffected. *)
val write : t -> addr:int -> string -> unit

(** Fork semantics: private regions are cloned copy-on-write; shared
    ([Mmap_shared]) regions alias the same pages. *)
val fork : t -> t

(** Alias of {!fork}, used by forked checkpointing to snapshot the space
    while the parent keeps running. *)
val snapshot : t -> t

(** Total mapped bytes. *)
val total_bytes : t -> int

(** Pages an incremental checkpoint must ship: a private region's dirty
    count, a shared ([Mmap_shared]) region's full page count (other
    processes write through their own view of the shared record, so the
    bitmap is not authoritative there). *)
val dirty_pages : t -> int

(** Dirty pages of one region under the same shared-mapping convention. *)
val region_dirty_pages : Region.t -> int

(** Clear every region's dirty bits — the checkpointer calls this on the
    live space right after {!snapshot}, so the snapshot keeps the
    pre-checkpoint bits and later writes re-mark the live space. *)
val clear_dirty : t -> unit

(** Bytes in untouched ([Zero]) pages. *)
val zero_bytes : t -> int

(** Total mapped pages across all regions. *)
val total_pages : t -> int

(** Pages currently resident (lazy restore marks cold regions absent;
    everything else reports fully resident). *)
val resident_pages : t -> int

(** Structural equality of all regions (order-sensitive). *)
val equal : t -> t -> bool

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t

(** [substitute_pages t ~region_id pages] swaps a region's page array for
    [pages] (aliasing, not copying) — used at restart to re-share an
    [Mmap_shared] segment between the processes that shared it before the
    checkpoint. Unknown ids are ignored. *)
val substitute_pages : t -> region_id:int -> Page.content array -> unit
