(** Storage targets for checkpoint images.

    Three models from the paper's testbed (§5.2): a local disk per node
    (most figures), a shared SAN reachable directly from 8 of the 32 nodes
    over Fibre Channel, and NFS re-export of that SAN for the remaining
    nodes (Figure 5b).

    Local-disk writes pass through a page cache: up to the free cache they
    proceed at memory-copy speed, beyond it at raw disk speed.  This is
    what makes Figure 6's implied bandwidth exceed the physical disk — the
    paper observes checkpoints complete faster than 100 MB/s would allow
    because the kernel absorbs them in cache.  DMTCP's optional [sync]
    waits for the write-back and costs [dirty / raw_rate] (§5.2 measures
    +0.79 s for ParGeant4).

    Concurrent writers to one target serialize on a shared cursor, which
    makes the aggregate bandwidth — the quantity a barrier-synchronized
    checkpoint cares about — come out right. *)

type t

(** [local_disk engine ()] — defaults: 100 MB/s raw, 350 MB/s through
    cache, 6 GB cache, 300 MB/s warm read. *)
val local_disk :
  Sim.Engine.t ->
  ?raw_rate:float ->
  ?cached_rate:float ->
  ?cache_bytes:int ->
  ?read_rate:float ->
  unit ->
  t

(** [san engine ()] — defaults: 400 MB/s aggregate, 1 ms per-op latency. *)
val san : Sim.Engine.t -> ?rate:float -> ?latency:float -> unit -> t

(** [nfs engine ~backend ()] — writes traverse the NFS server's NIC
    (default 117 MB/s × 0.6 protocol efficiency, shared by all NFS
    clients) and then the backend target. *)
val nfs : Sim.Engine.t -> ?server_rate:float -> backend:t -> unit -> t

val describe : t -> string

(** Tag the target with its owning node so trace events carry a node id
    ([-1], the default, means shared/global — e.g. the SAN). *)
val set_node : t -> int -> unit

val node : t -> int

(** [write t ~bytes] books a write and returns the delay (from now) until
    it completes. *)
val write : t -> bytes:int -> float

(** [read t ~bytes] analogously for restart-time reads. *)
val read : t -> bytes:int -> float

(** Time to flush dirty cached bytes to the raw device; resets the dirty
    counter. Zero for SAN/NFS (their writes are synchronous end-to-end). *)
val sync : t -> float

(** Dirty bytes awaiting write-back (local disks only). *)
val dirty_bytes : t -> int

(** Forget cache occupancy and queue state between experiment
    repetitions.  Also restores nominal speed. *)
val reset : t -> unit

(** {2 Fault injection}

    [set_slowdown t f] degrades the device: every subsequently booked
    service interval is multiplied by [f] (clamped to ≥ 1).  [f = 1.]
    restores nominal speed. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float
