type disk = {
  raw_rate : float;
  cached_rate : float;
  cache_bytes : int;
  read_rate : float;
  mutable cache_used : int;
  mutable dirty : int;
}

type san_t = { rate : float; latency : float }

type kind =
  | Disk of disk
  | San of san_t
  | Nfs of { server_rate : float; backend : t }

and t = {
  eng : Sim.Engine.t;
  kind : kind;
  mutable free_at : float;  (* serialization cursor for concurrent writers *)
  mutable slowdown : float; (* fault-injection service-time multiplier *)
  mutable node : int;       (* owning node for trace events; -1 = shared/global *)
}

let set_node t node = t.node <- node
let node t = t.node

let m_write_bytes = Trace.Metrics.counter "storage.write_bytes"
let m_read_bytes = Trace.Metrics.counter "storage.read_bytes"
let m_write_seconds = Trace.Metrics.counter "storage.write_seconds"
let m_read_seconds = Trace.Metrics.counter "storage.read_seconds"

let trace_io t name ~bytes ~delay =
  if Trace.on () then
    Trace.instant ~node:t.node ~cat:"storage" ~name
      ~args:
        [
          ("dev", match t.kind with Disk _ -> "disk" | San _ -> "san" | Nfs _ -> "nfs");
          ("bytes", string_of_int bytes);
          ("delay", Printf.sprintf "%.9f" delay);
        ]
      ~time:(Sim.Engine.now t.eng) ()

let local_disk eng ?(raw_rate = 100e6) ?(cached_rate = 350e6) ?(cache_bytes = 6_000_000_000)
    ?(read_rate = 300e6) () =
  {
    eng;
    kind = Disk { raw_rate; cached_rate; cache_bytes; read_rate; cache_used = 0; dirty = 0 };
    free_at = 0.;
    slowdown = 1.;
    node = -1;
  }

let san eng ?(rate = 400e6) ?(latency = 1e-3) () =
  { eng; kind = San { rate; latency }; free_at = 0.; slowdown = 1.; node = -1 }

let nfs eng ?(server_rate = 117e6 *. 0.6) ~backend () =
  { eng; kind = Nfs { server_rate; backend }; free_at = 0.; slowdown = 1.; node = -1 }

(* Fault injection: a degraded device multiplies every booked service
   interval; [factor = 1.] restores nominal speed. *)
let set_slowdown t factor = t.slowdown <- Float.max 1. factor
let slowdown t = t.slowdown

let describe t =
  match t.kind with
  | Disk _ -> "local disk"
  | San _ -> "SAN"
  | Nfs _ -> "NFS"

(* Book [seconds] of service on the target's cursor starting no earlier
   than now; returns the delay from now until completion. *)
let book t seconds =
  let seconds = seconds *. t.slowdown in
  let now = Sim.Engine.now t.eng in
  let start = Float.max now t.free_at in
  t.free_at <- start +. seconds;
  start -. now +. seconds

let rec write_booked t ~bytes =
  match t.kind with
  | Disk d ->
    let cached = min bytes (d.cache_bytes - d.cache_used) in
    let uncached = bytes - cached in
    d.cache_used <- d.cache_used + cached;
    d.dirty <- d.dirty + cached;
    book t ((float_of_int cached /. d.cached_rate) +. (float_of_int uncached /. d.raw_rate))
  | San s -> s.latency +. book t (float_of_int bytes /. s.rate)
  | Nfs { server_rate; backend } ->
    let network = book t (float_of_int bytes /. server_rate) in
    network +. write_booked backend ~bytes

let write t ~bytes =
  let delay = write_booked t ~bytes in
  Trace.Metrics.add m_write_bytes (float_of_int bytes);
  Trace.Metrics.add m_write_seconds delay;
  trace_io t "write" ~bytes ~delay;
  delay

let rec read_booked t ~bytes =
  match t.kind with
  | Disk d -> book t (float_of_int bytes /. d.read_rate)
  | San s -> s.latency +. book t (float_of_int bytes /. s.rate)
  | Nfs { server_rate; backend } ->
    let network = book t (float_of_int bytes /. server_rate) in
    network +. read_booked backend ~bytes

let read t ~bytes =
  let delay = read_booked t ~bytes in
  Trace.Metrics.add m_read_bytes (float_of_int bytes);
  Trace.Metrics.add m_read_seconds delay;
  trace_io t "read" ~bytes ~delay;
  delay

let sync t =
  match t.kind with
  | Disk d ->
    let dur = float_of_int d.dirty /. d.raw_rate in
    d.dirty <- 0;
    dur
  | San _ | Nfs _ -> 0.

let dirty_bytes t =
  match t.kind with
  | Disk d -> d.dirty
  | San _ | Nfs _ -> 0

let rec reset t =
  t.free_at <- 0.;
  t.slowdown <- 1.;
  match t.kind with
  | Disk d ->
    d.cache_used <- 0;
    d.dirty <- 0
  | San _ -> ()
  | Nfs { backend; _ } -> reset backend
