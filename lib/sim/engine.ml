type event = { mutable cancelled : bool; fn : unit -> unit }
type handle = event

(* Dispatch accounting shared by every engine in the process; reset with
   Trace.Metrics.reset alongside the rest of the registry. *)
let m_dispatches = Trace.Metrics.counter "sim.dispatches"
let m_scheduled = Trace.Metrics.counter "sim.scheduled"

type t = {
  mutable clock : float;
  queue : event Wheel.t;
  rng : Util.Rng.t;
  mutable live : int;
}

let create ?(seed = 0x5EEDL) () =
  { clock = 0.; queue = Wheel.create (); rng = Util.Rng.create seed; live = 0 }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time fn =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { cancelled = false; fn } in
  Wheel.push t.queue ~time ev;
  t.live <- t.live + 1;
  Trace.Metrics.incr m_scheduled;
  ev

let schedule t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) fn

let cancel (ev : handle) = ev.cancelled <- true

let pending t =
  (* [live] over-counts cancelled-but-unpopped events; recompute lazily is
     unnecessary for its uses (emptiness checks in tests). *)
  t.live

let rec step t =
  match Wheel.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.live <- t.live - 1;
    if ev.cancelled then step t
    else begin
      t.clock <- time;
      Trace.Metrics.incr m_dispatches;
      ev.fn ();
      true
    end

let run ?until ?(max_events = 50_000_000) t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Wheel.peek t.queue with
    | None -> continue := false
    | Some (time, ev) -> (
      match until with
      | Some limit when time > limit ->
        t.clock <- max t.clock limit;
        continue := false
      | _ ->
        ignore (Wheel.pop t.queue);
        t.live <- t.live - 1;
        if not ev.cancelled then begin
          t.clock <- time;
          Trace.Metrics.incr m_dispatches;
          ev.fn ();
          incr count;
          if !count > max_events then failwith "Engine.run: max_events exceeded (livelock?)"
        end)
  done;
  match until with
  | Some limit when t.clock < limit && Wheel.is_empty t.queue -> t.clock <- limit
  | _ -> ()

let advance t ~delay = run ~until:(t.clock +. delay) t
