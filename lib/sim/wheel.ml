(* Timer wheel for the event engine: short-interval timers (coordinator
   polls, scheduler ticks, protocol retries) dominate cluster runs, so
   the queue is sharded into fixed-width time buckets.  Each bucket
   holds a mini-heap ordered by (time, global sequence) — identical
   ordering to the flat binary heap, so pop order (and therefore every
   deterministic trace) is unchanged; only the cost of finding the next
   event drops from O(log n) over everything to O(log k) over one
   bucket.

   Invariants:
   - [bucket time] is monotone in [time], so the first nonempty bucket
     at or after [cur] contains the global minimum of the in-wheel
     entries, and equal-time entries always share a bucket (their
     relative order is the per-entry global [seq]).
   - every in-wheel entry's bucket lies in [cur, cur + nslots); pushes
     beyond that horizon go to the overflow heap [far].
   - [cur] advances only during [pop], to the popped entry's bucket;
     the engine sets its clock to that entry's time, so later pushes
     (whose time is >= clock) always land at or after [cur].
   - [hint] is a lower bound on the first nonempty bucket, refreshed on
     push and advanced by scans, making consecutive scans amortized
     O(1). *)

type 'a entry = { e_time : float; e_seq : int; e_value : 'a }

(* mini-heap ordered by (time, seq); seq is stamped globally by the
   wheel so migrating entries between heaps preserves order *)
type 'a heap = { mutable data : 'a entry array; mutable size : int }

let h_create () = { data = [||]; size = 0 }
let h_less a b = a.e_time < b.e_time || (a.e_time = b.e_time && a.e_seq < b.e_seq)

let h_swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec h_sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h_less h.data.(i) h.data.(parent) then begin
      h_swap h i parent;
      h_sift_up h parent
    end
  end

let rec h_sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h_less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && h_less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    h_swap h i !smallest;
    h_sift_down h !smallest
  end

let h_push h entry =
  if h.size = Array.length h.data then begin
    let cap = max 8 (2 * h.size) in
    let data = Array.make cap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  h_sift_up h (h.size - 1)

let h_peek h = if h.size = 0 then None else Some h.data.(0)

let h_pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h_sift_down h 0
    end;
    Some top
  end

type 'a t = {
  width : float;
  nslots : int;
  slots : 'a heap array;  (* bucket b lives in slots.(b mod nslots) *)
  far : 'a heap;  (* entries beyond the wheel horizon *)
  mutable cur : int;  (* absolute bucket of the last popped entry *)
  mutable hint : int;  (* lower bound on the first nonempty bucket *)
  mutable slot_count : int;  (* entries across all slots (excludes far) *)
  mutable next_seq : int;
  mutable total : int;
}

let create ?(width = 0.005) ?(nslots = 2048) () =
  {
    width;
    nslots;
    slots = Array.init nslots (fun _ -> h_create ());
    far = h_create ();
    cur = 0;
    hint = 0;
    slot_count = 0;
    next_seq = 0;
    total = 0;
  }

let length t = t.total
let is_empty t = t.total = 0

(* clamp far-future times so the bucket index cannot overflow *)
let bucket t time = if time >= 1e15 then max_int / 2 else int_of_float (Float.floor (time /. t.width))

let slot_insert t b entry =
  h_push t.slots.(b mod t.nslots) entry;
  t.slot_count <- t.slot_count + 1;
  if b < t.hint then t.hint <- b

let push t ~time value =
  let entry = { e_time = time; e_seq = t.next_seq; e_value = value } in
  t.next_seq <- t.next_seq + 1;
  t.total <- t.total + 1;
  let b = bucket t time in
  if b < t.cur + t.nslots then slot_insert t b entry else h_push t.far entry

(* move every overflow entry now inside the horizon onto the wheel *)
let migrate t =
  let continue = ref true in
  while !continue do
    match h_peek t.far with
    | Some e when bucket t e.e_time < t.cur + t.nslots ->
      ignore (h_pop t.far);
      slot_insert t (bucket t e.e_time) e
    | _ -> continue := false
  done

(* first nonempty bucket at or after [hint]; caller guarantees
   slot_count > 0 so the scan terminates within the horizon *)
let scan t =
  if t.hint < t.cur then t.hint <- t.cur;
  while t.slots.(t.hint mod t.nslots).size = 0 do
    t.hint <- t.hint + 1
  done;
  t.hint

let peek t =
  if t.total = 0 then None
  else begin
    let slot_min = if t.slot_count = 0 then None else h_peek t.slots.(scan t mod t.nslots) in
    let best =
      match (slot_min, h_peek t.far) with
      | None, f -> f
      | s, None -> s
      | Some s, Some f -> if h_less f s then Some f else Some s
    in
    match best with
    | Some e -> Some (e.e_time, e.e_value)
    | None -> None
  end

let pop t =
  if t.total = 0 then None
  else begin
    if t.slot_count = 0 then begin
      (* only overflow entries remain: jump the cursor to them *)
      (match h_peek t.far with
      | Some e ->
        let b = bucket t e.e_time in
        t.cur <- max t.cur b;
        t.hint <- t.cur
      | None -> assert false)
    end;
    migrate t;
    let b = scan t in
    t.cur <- b;
    match h_pop t.slots.(b mod t.nslots) with
    | Some e ->
      t.slot_count <- t.slot_count - 1;
      t.total <- t.total - 1;
      Some (e.e_time, e.e_value)
    | None -> assert false
  end
