(** Timer wheel keyed by [(time, insertion sequence)].

    Drop-in replacement ordering for {!Heap} in the event engine: pops
    come out in exactly (time, insertion order), so determinism and
    golden traces are unchanged.  The queue is sharded into fixed-width
    time buckets (each a mini-heap), which makes the dominant
    short-interval timer workload — coordinator polls, scheduler ticks —
    cheap at 10k-node/1k-job scale; entries beyond the wheel horizon
    wait in an overflow heap and migrate onto the wheel as the cursor
    reaches them. *)

type 'a t

(** [create ?width ?nslots ()] — bucket [width] seconds (default 5 ms)
    and [nslots] buckets (default 2048, i.e. a ~10 s horizon). *)
val create : ?width:float -> ?nslots:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push w ~time v] inserts [v].  [time] must be at or after the time
    of the last popped entry (the engine's clock), as in any timer
    wheel. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest entry, as [(time, value)]; does not advance the cursor. *)
val peek : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option
