(* Replicated content-addressed checkpoint store.

   Checkpoint images are chunked by the caller (at DMZ2 frame
   boundaries) and each chunk is addressed by its (CRC-32, length)
   digest.  A chunk is written to storage targets once, no matter how
   many generations reference it: successive checkpoints of the same
   process pay only for the frames their dirtied pages re-encoded.  New
   chunks are replicated to [replicas] targets on distinct nodes; the
   writer waits for a [quorum] of them, and the rest complete in the
   background (their service time is booked on the target cursor either
   way).  A per-cluster catalog maps (lineage, generation, image name)
   to the chunk list, and a generational GC keeps the newest [keep]
   generations per lineage, reclaiming chunks nothing references.

   Two byte currencies flow through here, as everywhere in the
   simulation: the *real* bytes of the encoded image (small OCaml
   strings, what gets content-addressed and restored bit-identically)
   and the *simulated* bytes of the modeled checkpoint (what storage
   delays are computed from).  Every put carries the image's simulated
   size; per-chunk bookings scale real chunk lengths by
   sim_bytes/real_len so the delay a deduplicated generation pays is
   proportional to the bytes it actually ships. *)

module Digest = struct
  type t = { crc : int32; fnv : int64; len : int }

  (* (crc, len) alone is NOT collision-resistant for checkpoint chunks:
     image prefixes end in a CRC-32 of the metadata they carry, and
     CRC(m ++ CRC(m)) is a constant residue — every same-length prefix
     chunk hashes alike, so dedup would splice one process's identity
     onto another's image.  An independent FNV-1a 64 component breaks
     the algebra. *)
  let fnv1a64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s;
    !h

  let of_chunk c =
    { crc = Util.Crc32.digest c; fnv = fnv1a64 c; len = String.length c }

  let to_string d = Printf.sprintf "%08lx:%d" d.crc d.len
  let equal (a : t) b = a.crc = b.crc && a.fnv = b.fnv && a.len = b.len
  let compare (a : t) b = compare (a.crc, a.fnv, a.len) (b.crc, b.fnv, b.len)
end

exception Missing_blocks of string list

type block = {
  b_bytes : string;
  mutable b_refs : int;        (* manifest references (occurrences) *)
  mutable b_replicas : int list;  (* nodes holding a copy, primary first *)
  b_sim_len : int;             (* modeled bytes booked per copy at write *)
}

type manifest = {
  m_lineage : string;
  m_generation : int;
  m_name : string;             (* image filename, unique per upid *)
  m_program : string;
  m_blocks : Digest.t list;    (* in image order *)
  m_real_len : int;
  m_sim_bytes : int;
  m_base : string option;      (* delta images: name of the base image *)
  m_compacted : bool;          (* written by the delta-chain compactor *)
}

type stats = {
  blocks_written : int;
  blocks_deduped : int;
  blocks_replicated : int;     (* extra copies beyond the primary *)
  blocks_gcd : int;
  bytes_written : int;         (* modeled bytes, primary copy *)
  bytes_deduped : int;         (* modeled bytes dedup avoided writing *)
  bytes_reclaimed : int;       (* modeled bytes freed by GC/overwrite *)
}

type gc_report = { gc_manifests : int; gc_blocks : int; gc_bytes : int }

type t = {
  eng : Sim.Engine.t;
  targets : Storage.Target.t array;
  replicas : int;
  quorum : int;
  keep : int;
  blocks : (Digest.t, block) Hashtbl.t;
  mutable manifests : manifest list;  (* newest first *)
  dead : (int, unit) Hashtbl.t;       (* nodes whose disks are lost *)
  pins : (string, int) Hashtbl.t;     (* lineage -> generation GC must keep *)
  mutable st : stats;
}

let zero_stats =
  {
    blocks_written = 0;
    blocks_deduped = 0;
    blocks_replicated = 0;
    blocks_gcd = 0;
    bytes_written = 0;
    bytes_deduped = 0;
    bytes_reclaimed = 0;
  }

let m_blocks_written = Trace.Metrics.counter "store.blocks_written"
let m_blocks_deduped = Trace.Metrics.counter "store.blocks_deduped"
let m_blocks_replicated = Trace.Metrics.counter "store.blocks_replicated"
let m_blocks_gcd = Trace.Metrics.counter "store.blocks_gcd"
let m_bytes_written = Trace.Metrics.counter "store.bytes_written"
let m_bytes_deduped = Trace.Metrics.counter "store.bytes_deduped"
let m_bytes_reclaimed = Trace.Metrics.counter "store.bytes_reclaimed"

let trace_store t name args =
  if Trace.on () then
    Trace.instant ~cat:"store" ~name:("store/" ^ name) ~args ~time:(Sim.Engine.now t.eng) ()

let create ?(replicas = 2) ?quorum ?(keep = 2) ~engine ~targets () =
  if Array.length targets = 0 then invalid_arg "Store.create: no targets";
  let replicas = max 1 (min replicas (Array.length targets)) in
  let quorum =
    match quorum with
    | Some q -> max 1 (min q replicas)
    | None -> (replicas / 2) + 1  (* majority *)
  in
  {
    eng = engine;
    targets;
    replicas;
    quorum;
    keep = max 0 keep;
    blocks = Hashtbl.create 256;
    manifests = [];
    dead = Hashtbl.create 4;
    pins = Hashtbl.create 8;
    st = zero_stats;
  }

let replicas t = t.replicas
let quorum t = t.quorum
let keep t = t.keep
let stats t = t.st
let manifests t = t.manifests
let find t ~name = List.find_opt (fun m -> m.m_name = name) t.manifests

let node_alive t node = node >= 0 && node < Array.length t.targets && not (Hashtbl.mem t.dead node)

(* Replica placement: the writing node first (restart normally happens
   where the checkpoint was taken), then the next alive nodes ring-wise,
   all distinct. *)
let placement t ~primary =
  let n = Array.length t.targets in
  let rec go acc i want tries =
    if want = 0 || tries = 0 then List.rev acc
    else
      let i = i mod n in
      if node_alive t i && not (List.mem i acc) then go (i :: acc) (i + 1) (want - 1) (tries - 1)
      else go acc (i + 1) want (tries - 1)
  in
  go [] primary t.replicas n

let scaled scale len = int_of_float ((float_of_int len *. scale) +. 0.5)

(* Drop one manifest's references; blocks nothing references any more
   are reclaimed from every replica.  Shared by GC and same-name
   overwrite (interval checkpoints re-put the same image name). *)
let release_manifest t m =
  let freed_blocks = ref 0 and freed_bytes = ref 0 in
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.blocks d with
      | None -> ()
      | Some b ->
        b.b_refs <- b.b_refs - 1;
        if b.b_refs <= 0 then begin
          Hashtbl.remove t.blocks d;
          incr freed_blocks;
          freed_bytes := !freed_bytes + b.b_sim_len
        end)
    m.m_blocks;
  Trace.Metrics.add m_blocks_gcd (float_of_int !freed_blocks);
  Trace.Metrics.add m_bytes_reclaimed (float_of_int !freed_bytes);
  t.st <-
    {
      t.st with
      blocks_gcd = t.st.blocks_gcd + !freed_blocks;
      bytes_reclaimed = t.st.bytes_reclaimed + !freed_bytes;
    };
  (!freed_blocks, !freed_bytes)

let put ?base ?(compacted = false) t ~node ~lineage ~generation ~name ~program ~sim_bytes ~chunks =
  if not (node_alive t node) then invalid_arg "Store.put: writing node's disk is gone";
  let real_len = List.fold_left (fun acc c -> acc + String.length c) 0 chunks in
  let scale = if real_len = 0 then 0. else float_of_int sim_bytes /. float_of_int real_len in
  (* same-name re-put (interval checkpoint at the same generation):
     replace the old manifest — but only release it AFTER the new
     chunks are deduped/increfed, so the shared blocks survive the
     swap instead of being freed and immediately re-shipped *)
  let replaced = find t ~name in
  let digests = List.map Digest.of_chunk chunks in
  (* completion delay accumulated per replica node; sequential bookings
     on one target serialize on its cursor, so the last booking's delay
     is that node's completion time *)
  let completion = Hashtbl.create 8 in
  let repl = placement t ~primary:node in
  let new_blocks = ref 0 and dup_blocks = ref 0 in
  let new_bytes = ref 0 and dup_bytes = ref 0 in
  List.iter2
    (fun d chunk ->
      match Hashtbl.find_opt t.blocks d with
      | Some b ->
        b.b_refs <- b.b_refs + 1;
        incr dup_blocks;
        dup_bytes := !dup_bytes + scaled scale (String.length chunk)
      | None ->
        let sim_len = scaled scale (String.length chunk) in
        Hashtbl.add t.blocks d { b_bytes = chunk; b_refs = 1; b_replicas = repl; b_sim_len = sim_len };
        incr new_blocks;
        new_bytes := !new_bytes + sim_len;
        List.iter
          (fun r ->
            let delay = Storage.Target.write t.targets.(r) ~bytes:sim_len in
            Hashtbl.replace completion r delay)
          repl)
    digests chunks;
  (match replaced with
  | Some old ->
    ignore (release_manifest t old);
    t.manifests <- List.filter (fun m -> m.m_name <> name) t.manifests
  | None -> ());
  (* catalog update: a small metadata write on the primary *)
  let manifest_bytes = 64 + (16 * List.length digests) in
  let meta_delay = Storage.Target.write t.targets.(node) ~bytes:manifest_bytes in
  Hashtbl.replace completion node (Float.max meta_delay (Option.value ~default:0. (Hashtbl.find_opt completion node)));
  t.manifests <-
    {
      m_lineage = lineage;
      m_generation = generation;
      m_name = name;
      m_program = program;
      m_blocks = digests;
      m_real_len = real_len;
      m_sim_bytes = sim_bytes;
      m_base = base;
      m_compacted = compacted;
    }
    :: t.manifests;
  Trace.Metrics.add m_blocks_written (float_of_int !new_blocks);
  Trace.Metrics.add m_blocks_deduped (float_of_int !dup_blocks);
  Trace.Metrics.add m_bytes_written (float_of_int !new_bytes);
  Trace.Metrics.add m_bytes_deduped (float_of_int !dup_bytes);
  (let extra = !new_blocks * (List.length repl - 1) in
   Trace.Metrics.add m_blocks_replicated (float_of_int extra);
   t.st <-
     {
       t.st with
       blocks_written = t.st.blocks_written + !new_blocks;
       blocks_deduped = t.st.blocks_deduped + !dup_blocks;
       blocks_replicated = t.st.blocks_replicated + extra;
       bytes_written = t.st.bytes_written + !new_bytes;
       bytes_deduped = t.st.bytes_deduped + !dup_bytes;
     });
  trace_store t "put"
    [
      ("name", name);
      ("lineage", lineage);
      ("gen", string_of_int generation);
      ("new", string_of_int !new_blocks);
      ("dedup", string_of_int !dup_blocks);
    ];
  (* quorum semantics: the put completes when the [quorum]-th replica
     node finishes its writes; the rest drain in the background *)
  let delays = Hashtbl.fold (fun _ d acc -> d :: acc) completion [] |> List.sort compare in
  let nth = min (t.quorum - 1) (List.length delays - 1) in
  if delays = [] then 0. else List.nth delays (max 0 nth)

(* Missing-block census for one manifest: digests with no surviving
   replica (or evicted from the table entirely). *)
let missing_of t m =
  List.filter_map
    (fun d ->
      match Hashtbl.find_opt t.blocks d with
      | Some b when b.b_replicas <> [] -> None
      | _ -> Some (Digest.to_string d))
    m.m_blocks
  |> List.sort_uniq compare

let contains t ~name =
  match find t ~name with None -> false | Some m -> missing_of t m = []

(* Delta-chain depth of an image: 0 for a full image, 1 + base's depth
   for a delta.  Broken chains count the links that resolve. *)
let chain_depth t ~name =
  let rec go name seen acc =
    match find t ~name with
    | None -> acc
    | Some m -> (
      match m.m_base with
      | Some b when not (List.mem b seen) -> go b (b :: seen) (acc + 1)
      | _ -> acc)
  in
  go name [ name ] 0

(* Reassemble without booking any storage time: inspection/debugging. *)
let peek t ~name =
  match find t ~name with
  | None -> None
  | Some m ->
    if missing_of t m <> [] then None
    else begin
      let buf = Buffer.create m.m_real_len in
      List.iter
        (fun d ->
          match Hashtbl.find_opt t.blocks d with
          | Some b -> Buffer.add_string buf b.b_bytes
          | None -> ())
        m.m_blocks;
      Some (Buffer.contents buf)
    end

let fetch t ~node ~name =
  match find t ~name with
  | None -> None
  | Some m ->
    let missing = missing_of t m in
    if missing <> [] then raise (Missing_blocks missing);
    let scale =
      if m.m_real_len = 0 then 0. else float_of_int m.m_sim_bytes /. float_of_int m.m_real_len
    in
    let buf = Buffer.create m.m_real_len in
    let completion = Hashtbl.create 8 in
    let remote = ref 0 in
    List.iter
      (fun d ->
        let b = Hashtbl.find t.blocks d in
        Buffer.add_string buf b.b_bytes;
        (* stripe: each block reads from the least-loaded surviving
           replica (the reader's own disk wins ties, then lowest node
           id), so an N-replica image streams from all N targets in
           parallel; per-target queuing stays honest through the
           target's serialization cursor *)
        let load r = Option.value ~default:0. (Hashtbl.find_opt completion r) in
        let pref r = (load r, (if r = node then 0 else 1), r) in
        let src =
          List.fold_left
            (fun best r -> if pref r < pref best then r else best)
            (List.hd b.b_replicas) (List.tl b.b_replicas)
        in
        if src <> node then incr remote;
        let delay = Storage.Target.read t.targets.(src) ~bytes:(scaled scale b.b_sim_len) in
        Hashtbl.replace completion src delay)
      m.m_blocks;
    let delay = Hashtbl.fold (fun _ d acc -> Float.max d acc) completion 0. in
    trace_store t "fetch"
      [
        ("name", name);
        ("blocks", string_of_int (List.length m.m_blocks));
        ("remote", string_of_int !remote);
      ];
    Some (Buffer.contents buf, delay)

(* Pins: a scheduler holding a preempted job's image as its only copy
   marks the (lineage, generation) so no GC — generational retention or
   an operator `store gc` — can collect it, even when pid reuse piles
   another job's generations onto the same lineage. *)
let pin t ~lineage ~generation =
  Hashtbl.replace t.pins lineage generation;
  trace_store t "pin" [ ("lineage", lineage); ("generation", string_of_int generation) ]

let unpin t ~lineage =
  if Hashtbl.mem t.pins lineage then begin
    Hashtbl.remove t.pins lineage;
    trace_store t "unpin" [ ("lineage", lineage) ]
  end

let pinned t ~lineage = Hashtbl.find_opt t.pins lineage

let pin_protects t m =
  match Hashtbl.find_opt t.pins m.m_lineage with
  | Some g -> m.m_generation >= g
  | None -> false

(* Generational retention: keep the newest [keep] generations of one
   lineage (a re-put same-generation manifest is already deduped by
   name), release everything older. *)
let gc_lineage ?keep t ~lineage =
  let keep = match keep with Some k -> k | None -> t.keep in
  if keep <= 0 then { gc_manifests = 0; gc_blocks = 0; gc_bytes = 0 }
  else begin
    let mine = List.filter (fun m -> m.m_lineage = lineage) t.manifests in
    let gens =
      List.map (fun m -> m.m_generation) mine
      |> List.sort_uniq compare |> List.rev
    in
    match List.nth_opt gens (keep - 1) with
    | None -> { gc_manifests = 0; gc_blocks = 0; gc_bytes = 0 }
    | Some oldest_kept ->
      (* The keep-set is every manifest inside the retention window or
         under a pin, closed under delta-base references: a kept delta
         keeps the whole chain it resolves through, even when a base
         sits in a generation older than the cut. *)
      let by_name = Hashtbl.create 16 in
      List.iter
        (fun m -> if not (Hashtbl.mem by_name m.m_name) then Hashtbl.add by_name m.m_name m)
        mine;
      let keep_names = Hashtbl.create 16 in
      let rec keep_chain m =
        if not (Hashtbl.mem keep_names m.m_name) then begin
          Hashtbl.add keep_names m.m_name ();
          match m.m_base with
          | Some b -> (
            match Hashtbl.find_opt by_name b with Some bm -> keep_chain bm | None -> ())
          | None -> ()
        end
      in
      List.iter
        (fun m -> if m.m_generation >= oldest_kept || pin_protects t m then keep_chain m)
        mine;
      let doomed = List.filter (fun m -> not (Hashtbl.mem keep_names m.m_name)) mine in
      if doomed = [] then { gc_manifests = 0; gc_blocks = 0; gc_bytes = 0 }
      else begin
        let blocks = ref 0 and bytes = ref 0 in
        List.iter
          (fun m ->
            let fb, fby = release_manifest t m in
            blocks := !blocks + fb;
            bytes := !bytes + fby)
          doomed;
        t.manifests <-
          List.filter
            (fun m -> not (m.m_lineage = lineage && not (Hashtbl.mem keep_names m.m_name)))
            t.manifests;
        let r = { gc_manifests = List.length doomed; gc_blocks = !blocks; gc_bytes = !bytes } in
        trace_store t "gc"
          [
            ("lineage", lineage);
            ("manifests", string_of_int r.gc_manifests);
            ("blocks", string_of_int r.gc_blocks);
          ];
        r
      end
  end

let gc ?keep t =
  let lineages = List.map (fun m -> m.m_lineage) t.manifests |> List.sort_uniq compare in
  List.fold_left
    (fun acc l ->
      let r = gc_lineage ?keep t ~lineage:l in
      {
        gc_manifests = acc.gc_manifests + r.gc_manifests;
        gc_blocks = acc.gc_blocks + r.gc_blocks;
        gc_bytes = acc.gc_bytes + r.gc_bytes;
      })
    { gc_manifests = 0; gc_blocks = 0; gc_bytes = 0 }
    lineages

(* Fail-stop disk loss: every replica on the node is gone.  Distinct
   from a process crash — the simulated VFS survives those. *)
let drop_node t node =
  Hashtbl.replace t.dead node ();
  Hashtbl.iter (fun _ b -> b.b_replicas <- List.filter (fun r -> r <> node) b.b_replicas) t.blocks;
  trace_store t "drop-node" [ ("node", string_of_int node) ]

let block_count t = Hashtbl.length t.blocks

let replica_count t ~digest =
  match Hashtbl.find_opt t.blocks digest with Some b -> List.length b.b_replicas | None -> 0

(* Catalog self-check: every referenced block must exist, match its
   digest, and have at least one surviving replica. *)
let verify t =
  List.concat_map
    (fun m ->
      (match m.m_base with
      | Some b when not (List.exists (fun m2 -> m2.m_name = b) t.manifests) ->
        [ Printf.sprintf "%s: delta base %s missing from catalog" m.m_name b ]
      | _ -> [])
      @
      List.filter_map
        (fun d ->
          match Hashtbl.find_opt t.blocks d with
          | None ->
            Some (Printf.sprintf "%s: block %s missing from table" m.m_name (Digest.to_string d))
          | Some b ->
            if b.b_replicas = [] then
              Some (Printf.sprintf "%s: block %s has no surviving replica" m.m_name (Digest.to_string d))
            else if not (Digest.equal (Digest.of_chunk b.b_bytes) d) then
              Some (Printf.sprintf "%s: block %s content does not match digest" m.m_name (Digest.to_string d))
            else None)
        (List.sort_uniq Digest.compare m.m_blocks))
    t.manifests
