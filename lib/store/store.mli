(** Replicated content-addressed checkpoint store.

    Layered on {!Storage.Target}: checkpoint images, chunked by the
    caller on DMZ2 frame boundaries, are addressed by (CRC-32, length)
    digest and written once — successive generations of the same
    process dedup against prior generations, so an incremental
    checkpoint's unchanged pages cost zero target bytes.  New chunks
    are replicated to [replicas] distinct nodes with a write [quorum];
    a per-cluster catalog maps (lineage, generation, image name) to the
    chunk list; a generational GC keeps the newest [keep] generations
    per lineage.  Restart resolves images through the catalog and falls
    back to a surviving replica when the preferred node's disk is gone.

    Storage delays are booked in the simulation's modeled bytes: each
    put scales real chunk lengths by [sim_bytes / real_len], so a
    deduplicated generation pays I/O time proportional to the bytes it
    actually ships. *)

module Digest : sig
  type t = { crc : int32; fnv : int64; len : int }

  val of_chunk : string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
end

(** Raised by {!fetch} when catalog blocks have no surviving replica;
    carries the missing digests by name. *)
exception Missing_blocks of string list

type manifest = {
  m_lineage : string;          (** (hostid, pid), stable across restarts *)
  m_generation : int;
  m_name : string;             (** image filename, unique per upid *)
  m_program : string;
  m_blocks : Digest.t list;    (** in image order *)
  m_real_len : int;            (** concatenated chunk bytes *)
  m_sim_bytes : int;           (** modeled image size (delay currency) *)
  m_base : string option;
      (** delta images: catalog name of the base image this manifest's
          payload resolves against.  {!gc_lineage} keeps base chains of
          retained (or pinned) manifests alive transitively. *)
  m_compacted : bool;
      (** written by the background delta-chain compactor: a consolidated
          full image that replaced a delta at the same catalog name *)
}

type stats = {
  blocks_written : int;
  blocks_deduped : int;
  blocks_replicated : int;     (** extra copies beyond the primary *)
  blocks_gcd : int;
  bytes_written : int;         (** modeled bytes, primary copy *)
  bytes_deduped : int;         (** modeled bytes dedup avoided writing *)
  bytes_reclaimed : int;       (** modeled bytes freed by GC/overwrite *)
}

type gc_report = { gc_manifests : int; gc_blocks : int; gc_bytes : int }

type t

(** [create ~engine ~targets ()] — [targets.(i)] is node [i]'s storage.
    [replicas] (default 2) is clamped to the node count; [quorum]
    defaults to a majority of [replicas]; [keep] (default 2) is the GC
    retention in generations per lineage ([0] disables GC). *)
val create :
  ?replicas:int ->
  ?quorum:int ->
  ?keep:int ->
  engine:Sim.Engine.t ->
  targets:Storage.Target.t array ->
  unit ->
  t

val replicas : t -> int
val quorum : t -> int
val keep : t -> int

(** Cumulative dedup/replication/GC accounting (modeled bytes). *)
val stats : t -> stats

(** Catalog contents, newest first. *)
val manifests : t -> manifest list

val find : t -> name:string -> manifest option

(** [put t ~node ...] chunks were produced on [node] (the primary
    replica).  Dedups against every prior generation, replicates new
    chunks, updates the catalog, and returns the delay until the write
    quorum is durable — remaining replicas complete in the background.
    Re-putting an existing [name] (interval checkpoints at the same
    generation) replaces that manifest.  [sim_bytes] is the modeled
    image size used for delay booking.  [base] records the delta chain:
    the catalog name of the image this one's payload resolves against.
    [compacted] marks consolidated full images written by the
    delta-chain compactor. *)
val put :
  ?base:string ->
  ?compacted:bool ->
  t ->
  node:int ->
  lineage:string ->
  generation:int ->
  name:string ->
  program:string ->
  sim_bytes:int ->
  chunks:string list ->
  float

(** [fetch t ~node ~name] reassembles the image, striping block reads
    across the surviving replicas: each block reads from the currently
    least-loaded replica target (the reader's own disk wins ties), so
    an N-replica image streams from all N targets in parallel while
    per-target queuing stays honest through each target's serialization
    cursor.  Returns the bytes and the read delay, [None] when the name
    is not in the catalog.  Raises {!Missing_blocks} when referenced
    blocks have no surviving replica. *)
val fetch : t -> node:int -> name:string -> (string * float) option

(** Catalogued with every block on at least one surviving replica
    (no storage time booked). *)
val contains : t -> name:string -> bool

(** Reassemble without booking storage time — inspection only. *)
val peek : t -> name:string -> string option

(** Delta-chain depth of a catalogued image: 0 for a full image, 1 plus
    the base's depth for a delta (unresolvable links stop the count). *)
val chain_depth : t -> name:string -> int

(** [pin t ~lineage ~generation] protects every manifest of [lineage] at
    [generation] or newer from GC (both {!gc_lineage} retention and an
    operator {!gc}).  A scheduler holding a preempted job's checkpoint as
    its only copy pins it so pid reuse — a new job on the same node
    acquiring the same lineage and aging the catalog — cannot collect it.
    Re-pinning replaces the previous pin for the lineage. *)
val pin : t -> lineage:string -> generation:int -> unit

(** Remove the pin for [lineage] (no-op if none). *)
val unpin : t -> lineage:string -> unit

(** The pinned generation of [lineage], if any. *)
val pinned : t -> lineage:string -> int option

(** Drop generations of [lineage] older than the newest [keep]
    (default: the store's [keep]); chunks nothing references any more
    are reclaimed on every replica.  Pinned manifests are never
    collected, and neither is any manifest a retained (or pinned) delta
    transitively resolves against through [m_base] — GC cannot orphan a
    delta chain. *)
val gc_lineage : ?keep:int -> t -> lineage:string -> gc_report

(** {!gc_lineage} over every lineage in the catalog. *)
val gc : ?keep:int -> t -> gc_report

(** Fail-stop disk loss: every replica on [node] is gone and the node
    receives no new placements.  (Distinct from a process crash — the
    simulated VFS survives those.) *)
val drop_node : t -> int -> unit

(** Unique blocks currently stored. *)
val block_count : t -> int

val replica_count : t -> digest:Digest.t -> int

(** Catalog self-check: every referenced block exists, matches its
    digest, and has a surviving replica.  Returns human-readable
    problems, empty when healthy. *)
val verify : t -> string list
