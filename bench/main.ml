(* Benchmark harness.

   Two layers, as the repository's benchmarks serve two purposes:

   1. Reproduction benches — regenerate every table and figure of the
      paper's evaluation on the simulated cluster (the numbers are
      *simulated* seconds/bytes; see EXPERIMENTS.md for the side-by-side
      with the paper).  Controlled by BENCH_SCALE=quick|full (default
      quick so `dune exec bench/main.exe` terminates in minutes).

   2. Bechamel micro-benches — real wall-clock throughput of the hot
      substrate code: the from-scratch compressor, the checkpoint codec,
      the event queue, and the COW address space.  One Test.make per
      substrate, all in one executable. *)

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some "full" -> `Full
  | _ -> `Quick

let reps = match scale with `Full -> 5 | `Quick -> 2

(* BENCH_SECTIONS=micro|repro|all picks which layer runs (default all);
   CI's bench smoke runs just the micro layer, which finishes in
   seconds. *)
let sections =
  match Sys.getenv_opt "BENCH_SECTIONS" with
  | Some "micro" -> `Micro
  | Some "repro" -> `Repro
  | _ -> `All

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=');
  flush stdout

(* ------------------------------------------------------------------ *)
(* 1. Reproduction benches *)

let run_reproduction () =
  hr "Figure 3: desktop applications (1 node, gzip on)";
  let apps =
    match scale with
    | `Full -> None
    | `Quick -> Some [ "bc"; "python"; "matlab"; "octave"; "tightvnc+twm"; "vim/cscope" ]
  in
  print_string (Harness.Fig3.to_text (Harness.Fig3.run ~reps ?apps ()));
  flush stdout;
  hr "Figure 4: distributed applications (32 nodes, 128 cores)";
  print_string (Harness.Fig4.to_text (Harness.Fig4.run ~reps ~scale ()));
  flush stdout;
  hr "Figure 5: ParGeant4 scaling (local disk vs SAN/NFS)";
  let sizes =
    match scale with `Full -> [ 16; 32; 48; 64; 80; 96; 112; 128 ] | `Quick -> [ 16; 32; 64 ]
  in
  print_string (Harness.Fig5.to_text (Harness.Fig5.run ~reps:(min reps 3) ~sizes ()));
  flush stdout;
  hr "Figure 6: checkpoint time vs total memory (no compression)";
  let totals, nprocs =
    match scale with
    | `Full -> ([ 4.; 12.; 20.; 28.; 36.; 44.; 52.; 60.; 68. ], 128)
    | `Quick -> ([ 4.; 20.; 36. ], 32)
  in
  print_string (Harness.Fig6.to_text (Harness.Fig6.run ~reps:2 ~totals_gb:totals ~nprocs ()));
  flush stdout;
  hr "Table 1: stage breakdown (NAS/MG under OpenMPI, 8 nodes)";
  let nprocs = match scale with `Full -> 32 | `Quick -> 16 in
  print_string (Harness.Table1.to_text (Harness.Table1.run ~reps ~nprocs ()));
  flush stdout;
  hr "Section 5.1: runCMS";
  print_string (Harness.Extras.runcms_text (Harness.Extras.runcms ~reps:2 ()));
  flush stdout;
  hr "Section 5.2: sync(2) cost";
  let nprocs = match scale with `Full -> 32 | `Quick -> 16 in
  print_string (Harness.Extras.sync_text (Harness.Extras.sync_cost ~reps:(min reps 3) ~nprocs ()));
  flush stdout;
  hr "Ablations";
  print_string (Harness.Extras.forked_text (Harness.Extras.forked_ablation ()));
  print_string (Harness.Extras.incremental_text (Harness.Extras.incremental_ablation ()));
  print_string (Harness.Extras.algo_text (Harness.Extras.algo_ablation ()));
  let sizes = match scale with `Full -> [ 16; 64; 128 ] | `Quick -> [ 8; 16; 32 ] in
  print_string (Harness.Extras.coordinator_text (Harness.Extras.coordinator_ablation ~sizes ()));
  let pairs = match scale with `Full -> [ 1; 4; 8 ] | `Quick -> [ 1; 4 ] in
  print_string (Harness.Extras.drain_text (Harness.Extras.drain_ablation ~pairs_list:pairs ()));
  flush stdout

(* ------------------------------------------------------------------ *)
(* 2. Bechamel micro-benches of the substrate *)

let text_1mb =
  String.concat ""
    (List.init 4096 (fun i -> Printf.sprintf "log line %d: the quick brown fox %d\n" i (i mod 97)))

let random_1mb = Bytes.unsafe_to_string (Util.Rng.bytes (Util.Rng.create 42L) 1_000_000)

let micro_tests =
  let open Bechamel in
  [
    Test.make ~name:"deflate-compress-text-1MB"
      (Staged.stage (fun () -> ignore (Compress.Deflate.compress text_1mb)));
    Test.make ~name:"deflate-roundtrip-random-64KB"
      (Staged.stage
         (let s = String.sub random_1mb 0 65536 in
          fun () -> ignore (Compress.Deflate.decompress (Compress.Deflate.compress s))));
    Test.make ~name:"rle-compress-zeros-1MB"
      (Staged.stage
         (let z = String.make 1_000_000 '\000' in
          fun () -> ignore (Compress.Rle.compress z)));
    Test.make ~name:"crc32-1MB" (Staged.stage (fun () -> ignore (Util.Crc32.digest text_1mb)));
    Test.make ~name:"event-queue-10k"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to 10_000 do
             ignore (Sim.Engine.schedule e ~delay:(float_of_int i *. 1e-6) ignore)
           done;
           Sim.Engine.run e));
    Test.make ~name:"address-space-cow-fork"
      (Staged.stage
         (let sp = Mem.Address_space.create () in
          let r =
            Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw
              ~bytes:(256 * Mem.Page.size) ()
          in
          Mem.Address_space.write sp ~addr:r.Mem.Region.start_addr "data";
          fun () -> ignore (Mem.Address_space.fork sp)));
    Test.make ~name:"mtcp-image-encode-16MB-synthetic"
      (Staged.stage
         (let sp = Mem.Address_space.create () in
          let _r =
            Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw
              ~bytes:(256 * Mem.Page.size)
              ~content:(fun i ->
                Mem.Page.Synthetic { seed = Int64.of_int i; cls = Mem.Entropy.Numeric })
              ()
          in
          let img =
            {
              Mtcp.Image.cmdline = [ "bench" ];
              env = [];
              threads = [];
              space = sp;
              sigtable = [];
              pending_signals = [];
            }
          in
          fun () -> ignore (Mtcp.Image.encode ~algo:Compress.Algo.Deflate img)));
    Test.make ~name:"codec-varint-roundtrip-10k"
      (Staged.stage (fun () ->
           let w = Util.Codec.Writer.create () in
           for i = 0 to 9_999 do
             Util.Codec.Writer.varint w (i * 31337)
           done;
           let r = Util.Codec.Reader.of_string (Util.Codec.Writer.contents w) in
           for _ = 0 to 9_999 do
             ignore (Util.Codec.Reader.varint r)
           done));
  ]

(* Collect (name, ns/run) pairs so the JSON emitter below can reuse
   them; printing happens as results arrive. *)
let run_micro () =
  hr "Substrate micro-benchmarks (real wall-clock, via bechamel)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let timings =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
        let analyzed =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            (Toolkit.Instance.monotonic_clock) results
        in
        Hashtbl.fold
          (fun name ols acc ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Printf.printf "%-42s %14.1f ns/run\n" name est;
              (name, est) :: acc
            | _ ->
              Printf.printf "%-42s (no estimate)\n" name;
              acc)
          analyzed [])
      micro_tests
  in
  flush stdout;
  timings

(* ------------------------------------------------------------------ *)
(* Deterministic compression-shape records: output sizes are a property
   of the encoder, not of the machine or the run, so CI can regenerate
   them and diff against the committed BENCH_micro.json baseline.  The
   wall-clock timings above are machine-dependent and are excluded from
   that comparison. *)

let ratio_records () =
  let rand64k = String.sub random_1mb 0 65536 in
  let zeros = String.make 1_000_000 '\000' in
  let pack algo s = String.length (Compress.Container.pack ~algo s) in
  [
    ("deflate-raw-text-1MB", String.length text_1mb, String.length (Compress.Deflate.compress text_1mb));
    ("deflate-raw-random-64KB", 65536, String.length (Compress.Deflate.compress rand64k));
    ("container-deflate-text-1MB", String.length text_1mb, pack Compress.Algo.Deflate text_1mb);
    ("container-deflate-random-64KB", 65536, pack Compress.Algo.Deflate rand64k);
    ("container-rle-zeros-1MB", 1_000_000, pack Compress.Algo.Rle zeros);
    ("container-null-random-64KB", 65536, pack Compress.Algo.Null rand64k);
  ]

(* Store dedup shape: two generations of a frame-chunked checkpoint
   image through the content-addressed store, generation 1 dirtying one
   256 KiB window out of 16.  Target bytes are a property of the chunker
   and the store, not of the machine, so they join the ratio baseline:
   gen 0 ships the whole image, gen 1 ships only the dirtied frame. *)
let store_records () =
  let eng = Sim.Engine.create () in
  let targets =
    Array.init 4 (fun i ->
        let t = Storage.Target.local_disk eng () in
        Storage.Target.set_node t i;
        t)
  in
  let store = Store.create ~replicas:2 ~engine:eng ~targets () in
  let n = 16 * 256 * 1024 in
  let image g =
    let b =
      Bytes.init n (fun i ->
          Char.chr ((i * 131 + ((i lsr 8) * 17) + ((i lsr 16) * 211)) land 0xff))
    in
    if g > 0 then Bytes.fill b (5 * 256 * 1024) (256 * 1024) (Char.chr (g land 0xff));
    Dmtcp.Ckpt_image.encode
      {
        Dmtcp.Ckpt_image.upid = Dmtcp.Upid.make ~hostid:2 ~pid:41 ~generation:g;
        vpid = 41;
        parent_vpid = 0;
        program = "p:bench";
        fds = [];
        ptys = [];
        algo = Compress.Algo.Null;
        sizes = { Mtcp.Image.uncompressed = n; compressed = n; zero_bytes = 0 };
        mtcp_blob = Compress.Container.pack ~algo:Compress.Algo.Null (Bytes.to_string b);
        delta_base = None;
      }
  in
  let put_gen g =
    let bytes = image g in
    ignore
      (Store.put store ~node:0 ~lineage:"2-41" ~generation:g
         ~name:(Printf.sprintf "img-g%d" g) ~program:"p:bench"
         ~sim_bytes:(String.length bytes) ~chunks:(Dmtcp.Ckpt_image.chunk bytes));
    String.length bytes
  in
  let full = put_gen 0 in
  let s0 = Store.stats store in
  ignore (put_gen 1);
  let s1 = Store.stats store in
  [
    ("store.gen0-full-write", full, s0.Store.bytes_written);
    ("store.gen1-dedup-dirty-1of16", full, s1.Store.bytes_written - s0.Store.bytes_written);
  ]

(* Incremental-checkpoint shape: a 64-page image with one 256 KiB window
   (4 pages of 16 groups) dirtied since the last checkpoint.  The delta
   encoding ships only the dirty frames, so its size against the full
   encode is a property of the codec — it joins the ratio baseline.  The
   forked-vs-inline blackout is virtual-time deterministic for the same
   reason (simulated milliseconds, like the scheduler records). *)
let delta_records () =
  let sp = Mem.Address_space.create () in
  let r =
    Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw
      ~bytes:(64 * Mem.Page.size) ()
  in
  (* materialize every page with incompressible data so the full encode
     ships real bytes (synthetic pages encode as compact seeds) *)
  let rng = Util.Rng.create 99L in
  for p = 0 to 63 do
    Mem.Address_space.write sp
      ~addr:(r.Mem.Region.start_addr + (p * Mem.Page.size))
      (Bytes.unsafe_to_string (Util.Rng.bytes rng Mem.Page.size))
  done;
  let img =
    {
      Mtcp.Image.cmdline = [ "bench" ];
      env = [];
      threads = [];
      space = sp;
      sigtable = [];
      pending_signals = [];
    }
  in
  let algo = Compress.Algo.Null in
  let full = Mtcp.Image.encode ~algo img in
  Mem.Address_space.clear_dirty sp;
  for p = 20 to 23 do
    Mem.Address_space.write sp
      ~addr:(r.Mem.Region.start_addr + (p * Mem.Page.size))
      "dirty"
  done;
  let delta = Mtcp.Image.encode_delta ~algo img in
  let fk = Harness.Extras.forked_ablation () in
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  [
    ("ckpt.delta-bytes-dirty-1of16", String.length full, String.length delta);
    ("ckpt.forked-vs-inline-blackout", ms fk.Harness.Extras.plain_s, ms fk.Harness.Extras.forked_s);
  ]

(* Scheduler shape: the canned three-job preempt/fail/drain scenario is
   virtual-time deterministic, so its makespan and checkpoint-bounded
   lost work are encoder-like properties — they join the ratio baseline
   (values in simulated milliseconds).  The invariants bound what the
   fault path is allowed to cost over the no-fault reference. *)
let sched_records () =
  let reference = Chaos.Sched_demo.run ~faults:false () in
  let faulted = Chaos.Sched_demo.run ~faults:true () in
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  let mk_ref = Sched.Scheduler.makespan reference.Chaos.Sched_demo.d_sched in
  let mk_f = Sched.Scheduler.makespan faulted.Chaos.Sched_demo.d_sched in
  let lost = Sched.Scheduler.total_lost_work faulted.Chaos.Sched_demo.d_sched in
  [
    ("sched.makespan-faulted-vs-nofault", ms mk_ref, ms mk_f);
    ("sched.lost-work-vs-makespan", ms mk_f, ms lost);
  ]

(* Scale shape: the 1000-small-job scenario run twice on the same
   submissions — once with the per-job op queues, once with
   [~max_inflight:1], which reproduces the old fully-serialized
   scheduler.  Both makespans are virtual-time deterministic, so their
   ratio is a property of the op-queue design and joins the ratio
   baseline; the in-flight peak must show the queues actually overlap
   work. *)
let sched1k_records () =
  let concurrent = Chaos.Sched_demo1k.run ~faults:false () in
  let serialized = Chaos.Sched_demo1k.run ~faults:false ~max_inflight:1 () in
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  let peak = Sched.Scheduler.peak_ops_inflight concurrent.Chaos.Sched_demo1k.k_sched in
  let mk_c = Sched.Scheduler.makespan concurrent.Chaos.Sched_demo1k.k_sched in
  let mk_s = Sched.Scheduler.makespan serialized.Chaos.Sched_demo1k.k_sched in
  [
    (* ratio 8/peak <= 1 iff at least eight ops ran concurrently *)
    ("sched.ops-inflight", peak, 8);
    ("sched.makespan-1000job", ms mk_s, ms mk_c);
  ]

(* Restart fast-path shape: both records are virtual-time deterministic
   (simulated milliseconds), so they join the ratio baseline.

   - lazy-vs-eager blackout: the 1-of-16-dirty workload (4096 pages
     materialized, 256 rewritten per iteration) checkpointed and
     restarted twice, once eager and once with DMTCP_LAZY_RESTART.
     Lazy restore resumes threads after the hot set only — the cold
     heap faults in on touch and drains through the prefetcher — so the
     restart blackout must collapse.

   - striped fetch: the same 4 MiB frame-chunked image fetched back
     from the store with one replica (every block queued on a single
     disk) vs two (blocks stripe across the least-loaded surviving
     replica), measuring the modeled fetch delay. *)
let restart_blackout ?(pages = 4096) ?(dirty = 256) ~lazy_restart () =
  Chaos.Progs.ensure_registered ();
  let options = { Dmtcp.Options.default with Dmtcp.Options.lazy_restart } in
  let env = Harness.Common.setup ~nodes:1 ~options () in
  let rt = env.Harness.Common.rt in
  ignore
    (Dmtcp.Api.launch rt ~node:0 ~prog:"p:dirty"
       ~argv:[ string_of_int pages; string_of_int dirty; "20000"; "/tmp/lz" ]);
  Harness.Common.run_for env 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  let t = Dmtcp.Api.last_restart_seconds rt in
  Harness.Common.teardown env;
  t

let striped_fetch_delay ~replicas =
  let eng = Sim.Engine.create () in
  let targets =
    Array.init 4 (fun i ->
        let t = Storage.Target.local_disk eng () in
        Storage.Target.set_node t i;
        t)
  in
  let store = Store.create ~replicas ~engine:eng ~targets () in
  let n = 16 * 256 * 1024 in
  let body =
    String.init n (fun i -> Char.chr ((i * 131 + ((i lsr 8) * 17) + ((i lsr 16) * 211)) land 0xff))
  in
  let bytes =
    Dmtcp.Ckpt_image.encode
      {
        Dmtcp.Ckpt_image.upid = Dmtcp.Upid.make ~hostid:3 ~pid:51 ~generation:0;
        vpid = 51;
        parent_vpid = 0;
        program = "p:bench";
        fds = [];
        ptys = [];
        algo = Compress.Algo.Null;
        sizes = { Mtcp.Image.uncompressed = n; compressed = n; zero_bytes = 0 };
        mtcp_blob = Compress.Container.pack ~algo:Compress.Algo.Null body;
        delta_base = None;
      }
  in
  ignore
    (Store.put store ~node:0 ~lineage:"3-51" ~generation:0 ~name:"img-stripe" ~program:"p:bench"
       ~sim_bytes:(String.length bytes) ~chunks:(Dmtcp.Ckpt_image.chunk bytes));
  (* let the write bookings drain so the fetch measures read striping,
     not queuing behind its own put *)
  Sim.Engine.run ~until:10.0 eng;
  match Store.fetch store ~node:0 ~name:"img-stripe" with
  | Some (_, delay) -> delay
  | None -> failwith "bench: striped image vanished from the store"

let restore_records () =
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  let eager = restart_blackout ~lazy_restart:false () in
  let lzy = restart_blackout ~lazy_restart:true () in
  let single = striped_fetch_delay ~replicas:1 in
  let striped = striped_fetch_delay ~replicas:2 in
  [
    ("rst.lazy-vs-eager-blackout", ms eager, ms lzy);
    ("store.striped-fetch-speedup", ms single, ms striped);
  ]

(* Plugin hook overhead: the same 1-of-16-dirty cycle with every
   built-in plugin enabled vs none.  Handlers run in zero simulated
   time and this workload holds nothing the heuristics act on, so the
   checkpoint+restart blackout must not grow — the record pins the
   dispatch machinery itself at <= 5% overhead. *)
let plugin_cycle ~plugins () =
  Chaos.Progs.ensure_registered ();
  let options = { Dmtcp.Options.default with Dmtcp.Options.plugins } in
  let env = Harness.Common.setup ~nodes:1 ~options () in
  let rt = env.Harness.Common.rt in
  ignore
    (Dmtcp.Api.launch rt ~node:0 ~prog:"p:dirty" ~argv:[ "1024"; "64"; "20000"; "/tmp/po" ]);
  Harness.Common.run_for env 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let ckpt = Dmtcp.Api.last_checkpoint_seconds rt in
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  let rst = Dmtcp.Api.last_restart_seconds rt in
  Harness.Common.teardown env;
  ckpt +. rst

let plugin_records () =
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  let off = plugin_cycle ~plugins:[] () in
  let all = plugin_cycle ~plugins:Dmtcp.Plugins.all_names () in
  [ ("plugin.hook-overhead", ms off, ms all) ]

(* The rank/proxy split's image-shape payoff, as committed records: the
   same bsp collective workload checkpointed mid-straggle on both
   transports.  The phase straggler is the allreduce root, so at the
   checkpoint the other ranks' gather frames are parked en route to a
   rank that is not reading.  On the direct backend those bytes sit in
   the root's TCP sockets and the drain barrier copies them into the
   rank images; on the proxy backend they are proxy custody —
   disposable by design — so rank images carry no drained bytes, and
   shed the per-neighbour socket specs besides. *)
let mpi_cycle ~kind ~extra () =
  let base_port = Harness.Common.base_port in
  Proxy.Accounting.reset ~base_port;
  let options =
    if kind = Harness.Common.Proxy then
      { Dmtcp.Options.default with Dmtcp.Options.plugins = [ "ext-sock"; "mpi-proxy" ] }
    else Dmtcp.Options.default
  in
  let env = Harness.Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  Harness.Common.start_workload env
    {
      Harness.Common.w_name = "bsp";
      w_kind = kind;
      w_prog = Apps.Stencil.bsp_prog;
      w_nprocs = 8;
      w_rpn = 2;
      w_extra = extra;
      w_warmup = 0.05;
    };
  Harness.Common.run_for env 0.2;
  Dmtcp.Api.checkpoint_now env.Harness.Common.rt;
  let script = Dmtcp.Api.restart_script env.Harness.Common.rt in
  (* encoded image bytes, not the modeled memory footprint: the fd
     specs and drained socket bytes the proxy split removes live in the
     encoding *)
  let image_bytes =
    List.fold_left
      (fun total (host, paths) ->
        let vfs = Simos.Kernel.vfs (Simos.Cluster.kernel env.Harness.Common.cl host) in
        List.fold_left
          (fun total path ->
            match Simos.Vfs.lookup vfs path with
            | Some f -> total + String.length (Simos.Vfs.read_all f)
            | None -> total)
          total paths)
      0 script.Dmtcp.Restart_script.entries
  in
  let _estab, drained = Chaos.Proxy_fault.image_stats env script in
  Harness.Common.teardown env;
  (image_bytes, drained)

let mpi_records () =
  let bsp = [ "1"; "512"; "1"; "0.6" ] in
  let d_img, d_drained = mpi_cycle ~kind:Harness.Common.Direct ~extra:("direct" :: bsp) () in
  let p_img, p_drained = mpi_cycle ~kind:Harness.Common.Proxy ~extra:bsp () in
  [
    ("mpi.proxy-vs-direct-drain-bytes", d_drained, p_drained);
    ("mpi.proxy-ckpt-image-bytes", d_img, p_img);
  ]

(* BENCH_RESTORE_SWEEP=1: print the eager/lazy blackout sweep over
   working-set sizes, and the striped fetch delay over replica counts
   (the tables in EXPERIMENTS.md). Virtual-time deterministic, but kept
   out of the baseline records: it exists to be re-run by hand. *)
let restore_sweep () =
  let ms s = int_of_float (Float.round (s *. 1000.)) in
  hr "Restart fast-path sweep (modeled ms, deterministic)";
  Printf.printf "%10s %8s %12s %11s %8s\n" "pages" "MiB" "eager (ms)" "lazy (ms)" "ratio";
  List.iter
    (fun pages ->
      let eager = restart_blackout ~pages ~dirty:(pages / 16) ~lazy_restart:false () in
      let lzy = restart_blackout ~pages ~dirty:(pages / 16) ~lazy_restart:true () in
      Printf.printf "%10d %8d %12d %11d %8.4f\n" pages
        (pages * Mem.Page.size / 1024 / 1024)
        (ms eager) (ms lzy) (lzy /. eager))
    [ 256; 1024; 4096; 8192 ];
  Printf.printf "\n%10s %12s\n" "replicas" "fetch (ms)";
  List.iter
    (fun replicas ->
      Printf.printf "%10d %12d\n" replicas (ms (striped_fetch_delay ~replicas)))
    [ 1; 2; 3; 4 ];
  flush stdout

let print_ratios ratios =
  hr "Compression shape (deterministic: sizes depend only on the encoder)";
  List.iter
    (fun (name, bytes_in, bytes_out) ->
      Printf.printf "%-42s %10d -> %9d bytes  (ratio %.6f)\n" name bytes_in bytes_out
        (float_of_int bytes_out /. float_of_int bytes_in))
    ratios;
  flush stdout

(* BENCH_JSON=path: machine-readable results, one object per line so
   line-oriented tools (the CI baseline diff greps for "kind": "ratio")
   can filter the deterministic records. *)
let emit_json path timings ratios =
  let oc = open_out path in
  output_string oc "[\n";
  let lines =
    List.map
      (fun (name, bytes_in, bytes_out) ->
        Printf.sprintf
          {|{"kind": "ratio", "name": "%s", "bytes_in": %d, "bytes_out": %d, "ratio": %.6f}|}
          name bytes_in bytes_out
          (float_of_int bytes_out /. float_of_int bytes_in))
      ratios
    @ List.map
        (fun (name, ns) ->
          Printf.sprintf {|{"kind": "timing", "name": "%s", "ns_per_run": %.1f}|} name ns)
        timings
  in
  output_string oc (String.concat ",\n" lines);
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_ASSERT=1: fail (exit 1) if the compressor stops pulling its
   weight — text must at least halve, incompressible data must not grow
   by more than 1% (the container's stored-block fallback bounds it). *)
let assert_invariants ratios =
  let ratio name =
    let _, bytes_in, bytes_out = List.find (fun (n, _, _) -> n = name) ratios in
    float_of_int bytes_out /. float_of_int bytes_in
  in
  let failed = ref false in
  let check name what limit =
    let r = ratio name in
    if r > limit then begin
      Printf.printf "BENCH_ASSERT FAILED: %s: %s (ratio %.6f > %.3f)\n" name what r limit;
      failed := true
    end
    else Printf.printf "bench invariant ok: %s ratio %.6f <= %.3f\n" name r limit
  in
  check "deflate-raw-text-1MB" "text must compress to half or better" 0.5;
  check "container-deflate-text-1MB" "text must compress to half or better" 0.5;
  check "deflate-raw-random-64KB" "random must expand by at most 1%" 1.01;
  check "container-deflate-random-64KB" "random must expand by at most 1%" 1.01;
  check "store.gen0-full-write" "first generation ships at most the image plus catalog overhead"
    1.01;
  check "store.gen1-dedup-dirty-1of16"
    "a 1-of-16-dirty generation must dedup to an eighth of the image or less" 0.125;
  check "ckpt.delta-bytes-dirty-1of16"
    "a 1-of-16-dirty interval checkpoint must write an eighth of the full image or less" 0.125;
  check "ckpt.forked-vs-inline-blackout"
    "forked checkpointing must cut the blackout to a quarter or less" 0.25;
  check "sched.makespan-faulted-vs-nofault"
    "a node loss plus a drain must at most double the canned scenario's makespan" 2.0;
  check "sched.lost-work-vs-makespan"
    "interval checkpoints must bound lost work to a quarter of the makespan" 0.25;
  check "sched.ops-inflight"
    "the op queues must run at least eight operations concurrently" 1.0;
  check "sched.makespan-1000job"
    "concurrent ops must at least halve the serialized 1000-job makespan" 0.5;
  check "rst.lazy-vs-eager-blackout"
    "lazy restore must cut the restart blackout to a quarter or less" 0.25;
  check "store.striped-fetch-speedup"
    "striped fetch over two replicas must run at least 1.5x faster than one" (1. /. 1.5);
  check "plugin.hook-overhead"
    "dispatching every built-in plugin hook must cost at most 5% blackout" 1.05;
  check "mpi.proxy-vs-direct-drain-bytes"
    "the proxy split must leave nothing to drain into rank images" 0.0;
  check "mpi.proxy-ckpt-image-bytes"
    "proxy-backend rank images must encode strictly smaller than direct-backend ones" 0.999;
  flush stdout;
  if !failed then exit 1

let () =
  Printf.printf "DMTCP reproduction benchmark harness (scale: %s)\n"
    (match scale with `Full -> "full" | `Quick -> "quick");
  let timings = if sections <> `Repro then run_micro () else [] in
  let ratios =
    ratio_records () @ store_records () @ delta_records () @ sched_records ()
    @ sched1k_records () @ restore_records () @ plugin_records () @ mpi_records ()
  in
  print_ratios ratios;
  (match Sys.getenv_opt "BENCH_JSON" with
  | Some path -> emit_json path timings ratios
  | None -> ());
  if Sys.getenv_opt "BENCH_ASSERT" = Some "1" then assert_invariants ratios;
  if Sys.getenv_opt "BENCH_RESTORE_SWEEP" = Some "1" then restore_sweep ();
  if sections <> `Micro then run_reproduction ();
  hr "Done";
  print_endline "Interpretation notes live in EXPERIMENTS.md."
