let checkpoint_name = "dmtcp:checkpoint"
let command_name = "dmtcp:command"

(* ------------------------------------------------------------------ *)
(* dmtcp_checkpoint *)

module Checkpoint = struct
  type state =
    | L_boot
    | L_probe of { fd : int; spawned : bool; retries : int }
    | L_exec of int  (* exec attempts so far *)

  let name = checkpoint_name

  let encode _ _ = failwith "dmtcp:checkpoint is not checkpointable"
  let decode _ = failwith "dmtcp:checkpoint is not checkpointable"
  let init ~argv:_ = L_boot

  let coordinator_addr (ctx : Simos.Program.ctx) =
    let opts = Options.of_getenv ctx.getenv in
    Simnet.Addr.Inet { host = opts.Options.coord_host; port = opts.Options.coord_port }

  let probe (ctx : Simos.Program.ctx) =
    let fd = ctx.socket () in
    ignore (ctx.connect fd (coordinator_addr ctx));
    fd

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | L_boot ->
      Simos.Program.Block
        ( L_probe { fd = probe ctx; spawned = false; retries = 200 },
          Simos.Program.Sleep_until (ctx.now () +. 1e-3) )
    | L_probe { fd; spawned; retries } -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established ->
        (* coordinator is up; release the probe and exec the target *)
        ctx.close_fd fd;
        Simos.Program.Continue (L_exec 0)
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block
          (L_probe { fd; spawned; retries }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ when retries > 0 ->
        ctx.close_fd fd;
        (* The first dmtcp_checkpoint spawns the coordinator (paper §3).
           Races between concurrent launchers are benign: losers exit on
           EADDRINUSE. *)
        let opts = Options.of_getenv ctx.getenv in
        if not spawned then
          ignore (ctx.ssh ~host:opts.Options.coord_host ~prog:Coordinator.name ~argv:[]);
        Simos.Program.Block
          ( L_probe { fd = probe ctx; spawned = true; retries = retries - 1 },
            Simos.Program.Sleep_until (ctx.now () +. 5e-3) )
      | _ -> Simos.Program.Exit 1)
    | L_exec attempts -> (
      (* if a previous Exec outcome brought us back here, the target
         program does not exist: fail like a shell would *)
      if attempts > 0 then Simos.Program.Exit 127
      else begin
        (* the target inherits DMTCP_HIJACK through the environment, so
           the exec'd image is under checkpoint control *)
        ctx.setenv Options.hijack_key "dmtcphijack.so";
        match ctx.argv with
        | _ :: prog :: argv -> Simos.Program.Exec { st = L_exec (attempts + 1); prog; argv }
        | _ -> Simos.Program.Exit 64
      end)
end

(* ------------------------------------------------------------------ *)
(* dmtcp_command *)

module Command = struct
  type state =
    | C_boot
    | C_connecting of int
    | C_sent of { fd : int; expect_reply : bool; buf : string }

  let name = command_name

  let encode _ _ = failwith "dmtcp:command is not checkpointable"
  let decode _ = failwith "dmtcp:command is not checkpointable"
  let init ~argv:_ = C_boot

  (* stdout of the status command, for tests *)
  let last_status : int option ref = ref None

  let request ctx =
    match (ctx : Simos.Program.ctx).argv with
    | _ :: "--checkpoint" :: _ | _ :: "-c" :: _ -> Some (Proto.cmd_checkpoint, false)
    | _ :: "--status" :: _ | _ :: "-s" :: _ -> Some (Proto.cmd_status, true)
    | _ :: "--quit" :: _ | _ :: "-q" :: _ -> Some (Proto.cmd_quit, false)
    | _ -> None

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | C_boot ->
      let opts = Options.of_getenv ctx.getenv in
      let fd = ctx.socket () in
      ignore
        (ctx.connect fd
           (Simnet.Addr.Inet { host = opts.Options.coord_host; port = opts.Options.coord_port }));
      Simos.Program.Block (C_connecting fd, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
    | C_connecting fd -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established -> (
        match request ctx with
        | None -> Simos.Program.Exit 64
        | Some (line, expect_reply) ->
          ignore (ctx.write_fd fd line);
          if expect_reply then
            Simos.Program.Block
              (C_sent { fd; expect_reply; buf = "" }, Simos.Program.Readable fd)
          else begin
            ctx.close_fd fd;
            Simos.Program.Exit 0
          end)
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (C_connecting fd, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ -> Simos.Program.Exit 1)
    | C_sent { fd; expect_reply; buf } -> (
      match ctx.read_fd fd ~max:4096 with
      | `Data d -> (
        let buf = buf ^ d in
        let lines, rest = Proto.split_lines buf in
        match List.find_map (fun l -> match Proto.parse l with Proto.Status_reply n -> Some n | _ -> None) lines with
        | Some n ->
          last_status := Some n;
          ctx.close_fd fd;
          Simos.Program.Exit 0
        | None ->
          Simos.Program.Block (C_sent { fd; expect_reply; buf = rest }, Simos.Program.Readable fd))
      | `Would_block -> Simos.Program.Block (C_sent { fd; expect_reply; buf }, Simos.Program.Readable fd)
      | `Eof | `Err _ -> Simos.Program.Exit 1)
end

let checkpoint_program = (module Checkpoint : Simos.Program.S)
let command_program = (module Command : Simos.Program.S)

let last_status = Command.last_status
