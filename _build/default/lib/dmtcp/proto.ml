let hello upid = Printf.sprintf "HELLO %s\n" (Upid.to_string upid)
let barrier k = Printf.sprintf "BARRIER %d\n" k
let cmd_checkpoint = "CKPT\n"
let cmd_status = "STATUS\n"
let cmd_quit = "QUIT\n"
let do_checkpoint = "DO_CKPT\n"
let release k = Printf.sprintf "RELEASE %d\n" k
let status_reply n = Printf.sprintf "STATUS_OK %d\n" n

type msg =
  | Hello of string
  | Barrier of int
  | Cmd_checkpoint
  | Cmd_status
  | Cmd_quit
  | Do_checkpoint
  | Release of int
  | Status_reply of int
  | Unknown of string

let parse line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "HELLO"; upid ] -> Hello upid
  | [ "BARRIER"; k ] -> ( try Barrier (int_of_string k) with _ -> Unknown line)
  | [ "CKPT" ] -> Cmd_checkpoint
  | [ "STATUS" ] -> Cmd_status
  | [ "QUIT" ] -> Cmd_quit
  | [ "DO_CKPT" ] -> Do_checkpoint
  | [ "RELEASE"; k ] -> ( try Release (int_of_string k) with _ -> Unknown line)
  | [ "STATUS_OK"; n ] -> ( try Status_reply (int_of_string n) with _ -> Unknown line)
  | _ -> Unknown line

let drain_token = "\x00\x01DMTCP_EOB_TOKEN\xfe\xff"

let handshake_len = 96

let handshake_frame key =
  if String.length key > handshake_len then invalid_arg "Proto.handshake_frame: key too long";
  key ^ String.make (handshake_len - String.length key) ' '

let parse_handshake frame = String.trim frame

let split_lines buf =
  let parts = String.split_on_char '\n' buf in
  match List.rev parts with
  | remainder :: complete_rev -> (List.rev complete_rev, remainder)
  | [] -> ([], buf)
