(** [dmtcp_restart] — program name ["dmtcp:restart"] (paper §4.4).

    One restart process runs per host, with the image paths of every
    process to restore there as argv.  It proceeds through the paper's
    seven restart steps: reopen files and recreate ptys; recreate and
    reconnect sockets through the cluster discovery service (acceptors
    advertise a restart listener under the connection's globally unique
    ID, connectors subscribe, the two sides handshake on the new socket);
    "fork" into the user processes (processes sharing a socket or file
    description are reassembled around a single shared description);
    rearrange fds to their original numbers; restore memory and threads
    through the MTCP layer; refill kernel buffers with the drained data
    from the images; and resume user threads.

    Restored processes keep their *virtual* pids; real pids are fresh,
    which is what makes the fork-wrapper conflict detection (§4.5)
    necessary and testable. *)

val program : (module Simos.Program.S)

val name : string
