type t = { hostid : int; pid : int; timestamp : float; seq : int }

let make ~hostid ~pid ~timestamp ~seq = { hostid; pid; timestamp; seq }
let to_key t = Printf.sprintf "conn:%d:%d:%h:%d" t.hostid t.pid t.timestamp t.seq
let equal a b = a = b

let encode w t =
  Util.Codec.Writer.uvarint w t.hostid;
  Util.Codec.Writer.uvarint w t.pid;
  Util.Codec.Writer.f64 w t.timestamp;
  Util.Codec.Writer.uvarint w t.seq

let decode r =
  let hostid = Util.Codec.Reader.uvarint r in
  let pid = Util.Codec.Reader.uvarint r in
  let timestamp = Util.Codec.Reader.f64 r in
  let seq = Util.Codec.Reader.uvarint r in
  { hostid; pid; timestamp; seq }
