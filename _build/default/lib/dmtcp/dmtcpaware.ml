let is_enabled (ctx : Simos.Program.ctx) = ctx.getenv Options.hijack_key <> None

let with_runtime (ctx : Simos.Program.ctx) f =
  if is_enabled ctx then
    match !Runtime.active_rt_for_aware with
    | Some rt -> f rt
    | None -> ()

let delay_checkpoints (ctx : Simos.Program.ctx) =
  with_runtime ctx (fun rt -> Runtime.enter_critical rt ~node:ctx.node_id ~pid:ctx.pid)

let allow_checkpoints (ctx : Simos.Program.ctx) =
  with_runtime ctx (fun rt -> Runtime.leave_critical rt ~node:ctx.node_id ~pid:ctx.pid)

let request_checkpoint (ctx : Simos.Program.ctx) =
  with_runtime ctx (fun rt ->
      let k = Runtime.kernel_of rt ~node:ctx.node_id in
      ignore
        (Simos.Kernel.spawn k ~prog:Launcher.command_name
           ~argv:[ "--checkpoint" ]
           ~env:(Options.to_env (Runtime.options rt))
           ()))

let last_known_status () = !Launcher.last_status

let hooks : (string, (unit -> unit) option * (unit -> unit) option) Hashtbl.t = Hashtbl.create 8

let set_hooks ~prog ?pre_ckpt ?post_ckpt () = Hashtbl.replace hooks prog (pre_ckpt, post_ckpt)

let run_pre_ckpt ~prog =
  match Hashtbl.find_opt hooks prog with
  | Some (Some f, _) -> f ()
  | _ -> ()

let run_post_ckpt ~prog =
  match Hashtbl.find_opt hooks prog with
  | Some (_, Some f) -> f ()
  | _ -> ()
