(** The user-facing commands (paper §3).

    [dmtcp_checkpoint <program> <args>] — program name
    ["dmtcp:checkpoint"] — spawns the coordinator if none is running,
    marks the environment so the DMTCP library is injected, and execs the
    target program.

    [dmtcp_command --checkpoint|--status|--quit] — program name
    ["dmtcp:command"] — connects to the coordinator's command socket and
    sends the request. *)

val checkpoint_program : (module Simos.Program.S)
val checkpoint_name : string

val command_program : (module Simos.Program.S)
val command_name : string

(** Last status-reply received by a [dmtcp_command --status] run (test
    observability). *)
val last_status : int option ref
