(** Coordinator wire protocol: newline-framed text messages, plus the
    in-band tokens used on user sockets (drain) and restart handshakes. *)

(** Manager -> coordinator *)
val hello : Upid.t -> string

val barrier : int -> string

(** Command client -> coordinator *)
val cmd_checkpoint : string

val cmd_status : string
val cmd_quit : string

(** Coordinator -> manager *)
val do_checkpoint : string

val release : int -> string

(** Parse one line. *)
type msg =
  | Hello of string         (** upid string *)
  | Barrier of int
  | Cmd_checkpoint
  | Cmd_status
  | Cmd_quit
  | Do_checkpoint
  | Release of int
  | Status_reply of int
  | Unknown of string

val parse : string -> msg
val status_reply : int -> string

(** The token a drain leader pushes through a socket so the receiving side
    knows the stream is flushed (paper §4.3 step 4).  Chosen to be
    vanishingly unlikely in user data. *)
val drain_token : string

(** Fixed-width restart handshake frame carrying a connection key. *)
val handshake_frame : string -> string

val handshake_len : int

(** Inverse of {!handshake_frame}. *)
val parse_handshake : string -> string

(** {2 Line framing} *)

(** [split_lines buf] returns (complete lines, remainder). *)
val split_lines : string -> string list * string
