(** Globally unique socket connection IDs.

    Per the paper (§4.4): "(hostid, pid, timestamp, per-process connection
    number)" — constant even if processes are relocated, and therefore
    usable as the discovery-service key when sockets are re-established
    after restart.  Both endpoints of a connection agree on the
    *connector*'s ID during the drain-time handshake. *)

type t = { hostid : int; pid : int; timestamp : float; seq : int }

val make : hostid:int -> pid:int -> timestamp:float -> seq:int -> t

(** Discovery-service key. *)
val to_key : t -> string

val equal : t -> t -> bool
val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
