(** The application programming interface ([dmtcpaware.a], paper §3.1).

    Applications that want to cooperate with DMTCP — without ceasing to
    work when run outside it — call these from inside their [step]
    functions. *)

(** Is this process running under DMTCP? *)
val is_enabled : Simos.Program.ctx -> bool

(** Delay checkpoints during a critical section. Nestable. No-ops outside
    DMTCP. *)
val delay_checkpoints : Simos.Program.ctx -> unit

val allow_checkpoints : Simos.Program.ctx -> unit

(** Ask the coordinator for a checkpoint (fire-and-forget: spawns a
    [dmtcp_command --checkpoint] helper process). *)
val request_checkpoint : Simos.Program.ctx -> unit

(** Status: number of processes currently under the coordinator, if this
    process is under DMTCP and a status query has completed. *)
val last_known_status : unit -> int option

(** Register hook functions run by this process's manager before a
    checkpoint and after a checkpoint or restart.  Keyed by program name;
    survives checkpointing because registration is code, not state. *)
val set_hooks : prog:string -> ?pre_ckpt:(unit -> unit) -> ?post_ckpt:(unit -> unit) -> unit -> unit

(** Called by the manager (exposed for it, not for applications). *)
val run_pre_ckpt : prog:string -> unit

val run_post_ckpt : prog:string -> unit
