(** The checkpoint manager thread (paper §4.2–§4.3).

    One such thread is launched inside every checkpointed process by the
    injected library.  It connects to the coordinator, then executes the
    seven-stage checkpoint algorithm when told to:

    + normal execution (blocked on the coordinator socket),
    + suspend user threads,
    + elect shared-FD leaders via the [F_SETOWN] trick,
    + drain kernel buffers (flush token + receive-until-token) and
      handshake with peers,
    + write the checkpoint image (optionally via forked checkpointing),
    + refill kernel buffers,
    + resume user threads,

    with a coordinator barrier after each of stages 2–6.

    Manager threads are themselves excluded from the image and recreated
    at restart, so this program's state needs no serialization.

    Program name: ["dmtcp:mgr"]. *)

val program : (module Simos.Program.S)

val name : string
