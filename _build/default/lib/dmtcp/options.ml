type t = {
  coord_host : int;
  coord_port : int;
  ckpt_dir : string;
  algo : Compress.Algo.t;
  forked : bool;
  incremental : bool;
  interval : float option;
  sync_after : bool;
}

let default =
  {
    coord_host = 0;
    coord_port = 7779;
    ckpt_dir = "/ckpt";
    algo = Compress.Algo.Deflate;
    forked = false;
    incremental = false;
    interval = None;
    sync_after = false;
  }

let hijack_key = "DMTCP_HIJACK"

(* Note: deliberately does NOT set the hijack marker — only
   dmtcp_checkpoint's exec wrapper injects the library, so DMTCP's own
   helper processes (coordinator, command, restart) stay un-hijacked. *)
let to_env t =
  [
    ("DMTCP_COORD_HOST", string_of_int t.coord_host);
    ("DMTCP_COORD_PORT", string_of_int t.coord_port);
    ("DMTCP_CHECKPOINT_DIR", t.ckpt_dir);
    ("DMTCP_GZIP", Compress.Algo.name t.algo);
    ("DMTCP_FORKED", if t.forked then "1" else "0");
    ("DMTCP_INCREMENTAL", if t.incremental then "1" else "0");
    ("DMTCP_INTERVAL", (match t.interval with Some i -> string_of_float i | None -> "0"));
    ("DMTCP_SYNC", if t.sync_after then "1" else "0");
  ]

let of_env env =
  let get key default = Option.value ~default (List.assoc_opt key env) in
  let coord_host = int_of_string (get "DMTCP_COORD_HOST" (string_of_int default.coord_host)) in
  let coord_port = int_of_string (get "DMTCP_COORD_PORT" (string_of_int default.coord_port)) in
  let ckpt_dir = get "DMTCP_CHECKPOINT_DIR" default.ckpt_dir in
  let algo =
    Option.value ~default:default.algo (Compress.Algo.of_name (get "DMTCP_GZIP" "deflate"))
  in
  let forked = get "DMTCP_FORKED" "0" = "1" in
  let incremental = get "DMTCP_INCREMENTAL" "0" = "1" in
  let interval = match float_of_string (get "DMTCP_INTERVAL" "0") with 0. -> None | i -> Some i in
  let sync_after = get "DMTCP_SYNC" "0" = "1" in
  { coord_host; coord_port; ckpt_dir; algo; forked; incremental; interval; sync_after }

let of_getenv getenv =
  let env =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (getenv k))
      [
        hijack_key; "DMTCP_COORD_HOST"; "DMTCP_COORD_PORT"; "DMTCP_CHECKPOINT_DIR"; "DMTCP_GZIP";
        "DMTCP_FORKED"; "DMTCP_INCREMENTAL"; "DMTCP_INTERVAL"; "DMTCP_SYNC";
      ]
  in
  of_env env
