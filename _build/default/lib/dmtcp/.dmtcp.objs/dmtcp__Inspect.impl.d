lib/dmtcp/inspect.ml: Array Buffer Ckpt_image Compress Conn_id Conn_table Hashtbl List Mem Mtcp Option Printf Restart_script Runtime Simos String Upid Util
