lib/dmtcp/restart.ml: Ckpt_image Compress Conn_id Conn_table Dmtcpaware Float Hashtbl List Manager Mem Mtcp Option Printexc Printf Proto Runtime Simnet Simos Storage String Upid Util
