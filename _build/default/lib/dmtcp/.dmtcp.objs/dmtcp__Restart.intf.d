lib/dmtcp/restart.mli: Simos
