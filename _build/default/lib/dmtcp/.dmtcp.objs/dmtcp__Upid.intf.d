lib/dmtcp/upid.mli: Util
