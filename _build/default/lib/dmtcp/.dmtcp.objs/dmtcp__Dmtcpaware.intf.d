lib/dmtcp/dmtcpaware.mli: Simos
