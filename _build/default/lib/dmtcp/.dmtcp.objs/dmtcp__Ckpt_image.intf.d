lib/dmtcp/ckpt_image.mli: Compress Conn_id Conn_table Mtcp Upid
