lib/dmtcp/dmtcpaware.ml: Hashtbl Launcher Options Runtime Simos
