lib/dmtcp/ckpt_image.ml: Compress Conn_id Conn_table Filename Mtcp Printf String Upid Util
