lib/dmtcp/coordinator.ml: Array Fun List Options Proto Runtime Simos
