lib/dmtcp/options.mli: Compress
