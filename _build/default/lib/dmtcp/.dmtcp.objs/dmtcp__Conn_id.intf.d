lib/dmtcp/conn_id.mli: Util
