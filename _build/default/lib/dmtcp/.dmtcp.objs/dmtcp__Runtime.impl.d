lib/dmtcp/runtime.ml: Conn_id Conn_table Hashtbl List Mem Mtcp Options Printf Simnet Simos Upid Util
