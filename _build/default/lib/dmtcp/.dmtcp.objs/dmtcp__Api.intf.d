lib/dmtcp/api.mli: Options Restart_script Runtime Simos
