lib/dmtcp/conn_id.ml: Printf Util
