lib/dmtcp/restart_script.mli: Util
