lib/dmtcp/manager.mli: Simos
