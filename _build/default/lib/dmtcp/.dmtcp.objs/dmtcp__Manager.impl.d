lib/dmtcp/manager.ml: Ckpt_image Compress Conn_table Dmtcpaware Float Hashtbl List Mem Mtcp Option Options Printexc Printf Proto Runtime Sim Simnet Simos Storage String Util
