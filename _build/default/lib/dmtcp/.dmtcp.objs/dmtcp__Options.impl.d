lib/dmtcp/options.ml: Compress List Option
