lib/dmtcp/upid.ml: Printf Util
