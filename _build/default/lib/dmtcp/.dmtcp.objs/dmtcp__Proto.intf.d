lib/dmtcp/proto.mli: Upid
