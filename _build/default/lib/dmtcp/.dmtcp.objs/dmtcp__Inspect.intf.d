lib/dmtcp/inspect.mli: Ckpt_image Restart_script Runtime
