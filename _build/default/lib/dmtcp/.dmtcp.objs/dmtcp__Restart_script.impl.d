lib/dmtcp/restart_script.ml: Buffer Hashtbl List Option Printf String Util
