lib/dmtcp/conn_table.ml: Conn_id Hashtbl List Printf Util
