lib/dmtcp/proto.ml: List Printf String Upid
