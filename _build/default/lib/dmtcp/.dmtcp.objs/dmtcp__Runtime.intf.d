lib/dmtcp/runtime.mli: Conn_table Hashtbl Mem Mtcp Options Simnet Simos Upid Util
