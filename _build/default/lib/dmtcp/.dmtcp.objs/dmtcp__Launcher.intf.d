lib/dmtcp/launcher.mli: Simos
