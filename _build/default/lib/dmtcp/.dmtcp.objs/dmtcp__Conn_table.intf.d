lib/dmtcp/conn_table.mli: Conn_id Util
