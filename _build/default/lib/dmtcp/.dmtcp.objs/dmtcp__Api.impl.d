lib/dmtcp/api.ml: Coordinator Hashtbl Launcher List Manager Option Options Restart Restart_script Runtime Sim Simnet Simos
