lib/dmtcp/coordinator.mli: Simos
