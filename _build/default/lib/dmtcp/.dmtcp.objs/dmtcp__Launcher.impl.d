lib/dmtcp/launcher.ml: Coordinator List Options Proto Simnet Simos
