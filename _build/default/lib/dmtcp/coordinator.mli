(** The checkpoint coordinator (paper §4.1, §4.3).

    A normal process (spawned automatically by the first
    [dmtcp_checkpoint]) that listens on a TCP port; every checkpoint
    manager thread connects to it.  It implements the only global
    communication primitive the protocol needs — the cluster-wide barrier
    — plus the [dmtcp_command] command socket and optional interval
    checkpointing.  The paper notes the centralized coordinator is chosen
    for simplicity and is not a bottleneck at 32 nodes; the Figure 5
    reproduction confirms the same here.

    Program name: ["dmtcp:coordinator"]; argv: [[port]] (optional). *)

val program : (module Simos.Program.S)

(** Registered program name. *)
val name : string
