(** The generated restart script (paper §3): one [dmtcp_restart] call per
    node, plus the coordinator address.  Stored both as a structured
    record (used by the harness and tests) and as shell-script text
    written next to the images, as the real package does. *)

type t = {
  coord_host : int;
  coord_port : int;
  entries : (int * string list) list;  (** (host, image paths) *)
}

(** The [dmtcp_restart_script.sh] text. *)
val to_text : t -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t

(** Remap original hosts to new hosts (process migration), e.g. restart a
    whole cluster run on one laptop with [fun _ -> 0]. *)
val remap : t -> (int -> int) -> t
