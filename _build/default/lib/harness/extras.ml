(* ------------------------------------------------------------------ *)
(* runCMS (§5.1) *)

type runcms_result = { ckpt : float; restart : float; image_mb : float }

let runcms ?(reps = 2) () =
  let env = Common.setup ~nodes:1 ~cores_per_node:8 () in
  let w =
    {
      Common.w_name = "runcms";
      w_kind = Common.Plain;
      w_prog = Apps.Desktop.prog_name;
      w_nprocs = 1;
      w_rpn = 1;
      w_extra = [ "runcms" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  let m = Common.measure env ~ckpt_reps:reps ~restart_reps:1 in
  Common.teardown env;
  {
    ckpt = Util.Stats.mean m.Common.ckpt_times;
    restart = Util.Stats.mean m.Common.restart_times;
    image_mb = float_of_int m.Common.compressed_bytes /. 1e6;
  }

let runcms_text r =
  Printf.sprintf
    "== runCMS (sec 5.1) ==\n\
     checkpoint: %.1f s   (paper: 25.2 s)\n\
     restart:    %.1f s   (paper: 18.4 s)\n\
     image:      %.0f MB  (paper: 225 MB gzipped, 680 MB resident)\n"
    r.ckpt r.restart r.image_mb

(* ------------------------------------------------------------------ *)
(* sync cost (§5.2) *)

type sync_result = { without_sync : Util.Stats.t; with_sync : Util.Stats.t }

let pargeant4_times ~sync_after ~reps ~nprocs =
  let options = { Dmtcp.Options.default with Dmtcp.Options.sync_after } in
  let env = Common.setup ~nodes:(max 1 (nprocs / 4)) ~options () in
  let w =
    {
      Common.w_name = "pargeant4-sync";
      w_kind = Common.Mpich2;
      w_prog = Apps.Pargeant4.prog_name;
      w_nprocs = nprocs;
      w_rpn = 4;
      w_extra = [ "2000"; "1000000" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  let m = Common.measure env ~ckpt_reps:reps ~restart_reps:0 in
  Common.teardown env;
  m.Common.ckpt_times

let sync_cost ?(reps = 3) ?(nprocs = 32) () =
  {
    without_sync = pargeant4_times ~sync_after:false ~reps ~nprocs;
    with_sync = pargeant4_times ~sync_after:true ~reps ~nprocs;
  }

let sync_text r =
  Printf.sprintf
    "== sync(2) after checkpoint, ParGeant4 (sec 5.2) ==\n\
     without sync: %s s\n\
     with sync:    %s s\n\
     added cost:   %.2f s   (paper: +0.79 s +/- 0.24)\n"
    (Util.Stats.to_string ~decimals:2 r.without_sync)
    (Util.Stats.to_string ~decimals:2 r.with_sync)
    (Util.Stats.mean r.with_sync -. Util.Stats.mean r.without_sync)

(* ------------------------------------------------------------------ *)
(* forked checkpointing ablation *)

type forked_result = { plain_s : float; forked_s : float }

let desktop_ckpt ~forked ~mb =
  ignore mb;
  let options = { Dmtcp.Options.default with Dmtcp.Options.forked } in
  let env = Common.setup ~nodes:1 ~options () in
  let w =
    {
      Common.w_name = "forked-ablation";
      w_kind = Common.Plain;
      w_prog = Apps.Desktop.prog_name;
      w_nprocs = 1;
      w_rpn = 1;
      w_extra = [ "matlab" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let t = Dmtcp.Api.last_checkpoint_seconds env.Common.rt in
  Common.teardown env;
  t

let forked_ablation ?(mb = 64) () =
  { plain_s = desktop_ckpt ~forked:false ~mb; forked_s = desktop_ckpt ~forked:true ~mb }

let forked_text r =
  Printf.sprintf
    "== Ablation: forked checkpointing (sec 5.3) ==\n\
     plain checkpoint pause:  %.3f s\n\
     forked checkpoint pause: %.3f s   (paper: 2 s -> 0.2 s typical)\n"
    r.plain_s r.forked_s

(* ------------------------------------------------------------------ *)
(* incremental checkpointing *)

type incremental_result = { full_first : float; incrementals : float list }

let incremental_ablation ?(ckpts = 3) () =
  let options = { Dmtcp.Options.default with Dmtcp.Options.incremental = true } in
  let env = Common.setup ~nodes:1 ~options () in
  let w =
    {
      Common.w_name = "incremental-ablation";
      w_kind = Common.Plain;
      w_prog = Apps.Desktop.prog_name;
      w_nprocs = 1;
      w_rpn = 1;
      w_extra = [ "matlab" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  let times = ref [] in
  for _ = 0 to ckpts do
    Simos.Cluster.reset_storage env.Common.cl;
    Common.run_for env 0.3;
    Dmtcp.Api.checkpoint_now env.Common.rt;
    times := Dmtcp.Api.last_checkpoint_seconds env.Common.rt :: !times
  done;
  Common.teardown env;
  match List.rev !times with
  | full_first :: incrementals -> { full_first; incrementals }
  | [] -> { full_first = 0.; incrementals = [] }

let incremental_text r =
  Printf.sprintf
    "== Ablation: incremental checkpointing (matlab image, mostly idle) ==\n\
     first (full) checkpoint:    %.3f s\n\
     incremental checkpoints:    %s s\n\
     Only dirtied pages are rewritten; an idle interpreter re-checkpoints\n\
     for the price of its dirty bitmap (paper refs [2][25]).\n"
    r.full_first
    (String.concat ", " (List.map (Printf.sprintf "%.3f") r.incrementals))

(* ------------------------------------------------------------------ *)
(* compression scheme sweep *)

type algo_point = { algo : Compress.Algo.t; seconds : float; size_mb : float }

let algo_ablation ?(mb = 64) () =
  ignore mb;
  List.map
    (fun algo ->
      let options = { Dmtcp.Options.default with Dmtcp.Options.algo } in
      let env = Common.setup ~nodes:1 ~options () in
      let w =
        {
          Common.w_name = "algo-ablation";
          w_kind = Common.Plain;
          w_prog = Apps.Desktop.prog_name;
          w_nprocs = 1;
          w_rpn = 1;
          w_extra = [ "matlab" ];
          w_warmup = 1.0;
        }
      in
      Common.start_workload env w;
      Dmtcp.Api.checkpoint_now env.Common.rt;
      let seconds = Dmtcp.Api.last_checkpoint_seconds env.Common.rt in
      let c, _ = Dmtcp.Api.last_checkpoint_bytes env.Common.rt in
      Common.teardown env;
      { algo; seconds; size_mb = float_of_int c /. 1e6 })
    Compress.Algo.all

let algo_text points =
  "== Ablation: compression scheme (matlab image) ==\n"
  ^ Util.Table.render
      ~header:[ "scheme"; "ckpt (s)"; "size (MB)" ]
      (List.map
         (fun p -> [ Compress.Algo.name p.algo; Printf.sprintf "%.3f" p.seconds; Printf.sprintf "%.1f" p.size_mb ])
         points)

(* ------------------------------------------------------------------ *)
(* coordinator bottleneck *)

type coord_point = { nprocs : int; barrier_bound_s : float }

let coordinator_ablation ?(sizes = [ 16; 64; 128 ]) () =
  List.map
    (fun nprocs ->
      let env = Common.setup ~nodes:(max 1 (nprocs / 4)) () in
      let w =
        {
          Common.w_name = "coord-ablation";
          w_kind = Common.Direct;
          w_prog = "nas:baseline";
          w_nprocs = nprocs;
          w_rpn = 4;
          w_extra = [ "1000000" ];
          w_warmup = 0.5;
        }
      in
      Common.start_workload env w;
      Dmtcp.Runtime.reset_stage_stats env.Common.rt;
      Dmtcp.Api.checkpoint_now env.Common.rt;
      let stats = Dmtcp.Runtime.stage_stats env.Common.rt in
      let mean key =
        match List.assoc_opt key stats with Some s -> Util.Stats.mean s | None -> 0.
      in
      Common.teardown env;
      (* stages whose duration is barrier/coordinator-bound, not data *)
      { nprocs; barrier_bound_s = mean "ckpt/suspend" +. mean "ckpt/elect" +. mean "ckpt/refill" })
    sizes

let coordinator_text points =
  "== Ablation: centralized coordinator cost (barrier-bound stages) ==\n"
  ^ Util.Table.render
      ~header:[ "processes"; "suspend+elect+refill (s)" ]
      (List.map
         (fun p -> [ string_of_int p.nprocs; Printf.sprintf "%.4f" p.barrier_bound_s ])
         points)
  ^ "Near-constant times indicate the coordinator is not a bottleneck (paper sec 5.4).\n"

(* ------------------------------------------------------------------ *)
(* drain volume *)

type drain_point = { pairs : int; drain_s : float; drained_kb : float }

let drain_ablation ?(pairs_list = [ 1; 4; 8 ]) () =
  List.map
    (fun pairs ->
      let nprocs = pairs * 2 in
      let env = Common.setup ~nodes:(max 2 ((nprocs + 1) / 2)) () in
      let w =
        {
          Common.w_name = "drain-ablation";
          w_kind = Common.Direct;
          w_prog = Apps.Flood.prog_name;
          w_nprocs = nprocs;
          w_rpn = 2;
          w_extra = [ "5" ];
          w_warmup = 2.0;
        }
      in
      Common.start_workload env w;
      Dmtcp.Runtime.reset_stage_stats env.Common.rt;
      Dmtcp.Api.checkpoint_now env.Common.rt;
      let stats = Dmtcp.Runtime.stage_stats env.Common.rt in
      let drain_s =
        match List.assoc_opt "ckpt/drain" stats with Some s -> Util.Stats.mean s | None -> 0.
      in
      (* drained volume from the images *)
      let info = Dmtcp.Runtime.ckpt_info env.Common.rt in
      let drained =
        List.fold_left
          (fun acc (node, path) ->
            match
              Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl node)) path
            with
            | None -> acc
            | Some f ->
              let img = Dmtcp.Ckpt_image.decode (Simos.Vfs.read_all f) in
              List.fold_left
                (fun acc (_, _, i) ->
                  match i with
                  | Dmtcp.Ckpt_image.FSock { drained; _ } -> acc + String.length drained
                  | _ -> acc)
                acc img.Dmtcp.Ckpt_image.fds)
          0 info.Dmtcp.Runtime.images
      in
      Common.teardown env;
      { pairs; drain_s; drained_kb = float_of_int drained /. 1024. })
    pairs_list

let drain_text points =
  "== Ablation: drain stage vs buffered socket data ==\n"
  ^ Util.Table.render
      ~header:[ "flooded pairs"; "drain stage (s)"; "drained (KiB)" ]
      (List.map
         (fun p ->
           [ string_of_int p.pairs; Printf.sprintf "%.4f" p.drain_s; Printf.sprintf "%.0f" p.drained_kb ])
         points)
