type row = { app : string; m : Common.ckpt_measure }

(* number of processes an application profile expands to *)
let procs_of (p : Apps.Desktop.profile) = 1 + List.length p.Apps.Desktop.children

let run ?(reps = 3) ?apps () =
  let profiles =
    match apps with
    | None -> Apps.Desktop.figure3
    | Some names -> List.filter (fun p -> List.mem p.Apps.Desktop.p_name names) Apps.Desktop.figure3
  in
  List.map
    (fun (p : Apps.Desktop.profile) ->
      let env = Common.setup ~nodes:1 ~cores_per_node:8 () in
      let w =
        {
          Common.w_name = p.Apps.Desktop.p_name;
          w_kind = Common.Plain;
          w_prog = Apps.Desktop.prog_name;
          w_nprocs = procs_of p;
          w_rpn = 1;
          w_extra = [ p.Apps.Desktop.p_name ];
          w_warmup = 1.0;
        }
      in
      Common.start_workload env w;
      let m = Common.measure env ~ckpt_reps:reps ~restart_reps:(min 2 reps) in
      Common.teardown env;
      { app = p.Apps.Desktop.p_name; m })
    profiles

let to_text rows =
  let buf = Buffer.create 2048 in
  let points f = List.map (fun r -> (r.app, f r.m)) rows in
  Buffer.add_string buf
    (Util.Table.bar_chart ~title:"Figure 3a: Checkpoint/Restart timings (s)" ~unit_label:"s"
       [
         { Util.Table.series_name = "checkpoint"; points = points (fun m -> Util.Stats.mean m.Common.ckpt_times) };
         { Util.Table.series_name = "restart"; points = points (fun m -> Util.Stats.mean m.Common.restart_times) };
       ]);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Util.Table.bar_chart ~title:"Figure 3b: Checkpoint size (MB, compressed)" ~unit_label:"MB"
       [
         {
           Util.Table.series_name = "size";
           points = points (fun m -> float_of_int m.Common.compressed_bytes /. 1e6);
         };
       ]);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Util.Table.render
       ~header:[ "application"; "ckpt (s)"; "restart (s)"; "size MB (gz)"; "size MB (raw)"; "procs" ]
       (List.map (fun r -> Common.row r.app r.m) rows));
  Buffer.contents buf
