(** Table 1: per-stage breakdown of checkpoint (1a) and restart (1b) for
    NAS/MG under OpenMPI on 8 nodes, comparing uncompressed, compressed,
    and forked-compressed checkpointing.

    Stage durations are the times between the protocol's global barriers,
    measured at the coordinator — as in the paper. *)

type stages = (string * float) list  (** stage name -> mean seconds *)

type result = {
  ckpt_uncompressed : stages;
  ckpt_compressed : stages;
  ckpt_forked : stages;
  restart_uncompressed : stages;
  restart_compressed : stages;
}

val run : ?reps:int -> ?nprocs:int -> unit -> result

val to_text : result -> string
