(** Figure 6: checkpoint/restart time as total memory grows — a synthetic
    OpenMPI-style program allocating incompressible data on 32 nodes,
    compression disabled, checkpoints to local disk.  The interesting
    effect: the implied bandwidth exceeds raw disk because writes are
    absorbed by the page cache. *)

type point = { total_gb : float; ckpt : float; restart : float }

val run : ?reps:int -> ?totals_gb:float list -> ?nprocs:int -> unit -> point list

val to_text : point list -> string
