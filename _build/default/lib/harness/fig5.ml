type point = { nprocs : int; ckpt : Util.Stats.t; restart : Util.Stats.t }

type result = { local : point list; san : point list }

let measure_one ~storage ~reps nprocs =
  let nodes = max 1 (nprocs / 4) in
  let env = Common.setup ~nodes ~storage () in
  let w =
    {
      Common.w_name = Printf.sprintf "pargeant4-%d" nprocs;
      w_kind = Common.Mpich2;
      w_prog = Apps.Pargeant4.prog_name;
      w_nprocs = nprocs;
      w_rpn = 4;
      w_extra = [ "2000"; "1000000" ];
      w_warmup = 1.0;
    }
  in
  Common.start_workload env w;
  let m = Common.measure env ~ckpt_reps:reps ~restart_reps:(min 2 reps) in
  Common.teardown env;
  { nprocs; ckpt = m.Common.ckpt_times; restart = m.Common.restart_times }

let run ?(reps = 3) ?(sizes = [ 16; 32; 48; 64; 80; 96; 112; 128 ]) () =
  let local = List.map (measure_one ~storage:Simos.Cluster.Local_disks ~reps) sizes in
  let san =
    List.map
      (measure_one ~storage:(Simos.Cluster.San_and_nfs { direct_nodes = 8 }) ~reps)
      sizes
  in
  { local; san }

let chart title points =
  Util.Table.xy_chart ~title ~x_label:"processes" ~y_label:"(s)"
    [
      ("checkpoint", List.map (fun p -> (float_of_int p.nprocs, Util.Stats.mean p.ckpt)) points);
      ("restart", List.map (fun p -> (float_of_int p.nprocs, Util.Stats.mean p.restart)) points);
    ]

let to_text r =
  chart "Figure 5a: ParGeant4 scaling, checkpoints to local disk" r.local
  ^ "\n"
  ^ chart "Figure 5b: ParGeant4 scaling, checkpoints to SAN/NFS" r.san
