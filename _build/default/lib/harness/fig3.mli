(** Figure 3: checkpoint/restart timings (3a) and checkpoint sizes (3b)
    for 21 common desktop applications on a single 8-core node, gzip
    enabled. *)

type row = { app : string; m : Common.ckpt_measure }

(** [run ~reps ()] measures each application in {!Apps.Desktop.figure3}.
    [apps] restricts to a subset (for quick runs). *)
val run : ?reps:int -> ?apps:string list -> unit -> row list

(** Render charts 3a and 3b plus the numeric table. *)
val to_text : row list -> string
