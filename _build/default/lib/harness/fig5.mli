(** Figure 5: checkpoint/restart time vs number of ParGeant4 compute
    processes (16..128, four per node, MPICH2, gzip on) — (a) to local
    disks, (b) to centralized RAID storage via SAN (8 nodes direct) and
    NFS (the rest).  Also the paper's scalability headline: times should
    stay nearly flat in (a). *)

type point = { nprocs : int; ckpt : Util.Stats.t; restart : Util.Stats.t }

type result = { local : point list; san : point list }

val run : ?reps:int -> ?sizes:int list -> unit -> result

val to_text : result -> string
