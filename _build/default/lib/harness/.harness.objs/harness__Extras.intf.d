lib/harness/extras.mli: Compress Util
