lib/harness/table1.ml: Common Compress Dmtcp List Printf Simos Util
