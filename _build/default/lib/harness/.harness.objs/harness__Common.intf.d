lib/harness/common.mli: Dmtcp Simos Util
