lib/harness/fig4.ml: Apps Buffer Common Compress Dmtcp List Printf Util
