lib/harness/fig6.mli:
