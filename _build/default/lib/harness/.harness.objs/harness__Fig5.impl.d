lib/harness/fig5.ml: Apps Common List Printf Simos Util
