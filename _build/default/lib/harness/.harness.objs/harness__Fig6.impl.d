lib/harness/fig6.ml: Apps Common Compress Dmtcp List Printf Util
