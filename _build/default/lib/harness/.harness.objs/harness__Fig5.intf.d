lib/harness/fig5.mli: Util
