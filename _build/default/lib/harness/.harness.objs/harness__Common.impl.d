lib/harness/common.ml: Apps Dmtcp List Printf Sim Simos Util
