lib/harness/fig3.ml: Apps Buffer Common List Util
