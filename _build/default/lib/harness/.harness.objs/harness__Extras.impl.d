lib/harness/extras.ml: Apps Common Compress Dmtcp List Printf Simos String Util
