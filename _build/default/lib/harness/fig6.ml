type point = { total_gb : float; ckpt : float; restart : float }

let run ?(reps = 2) ?(totals_gb = [ 4.; 12.; 20.; 28.; 36.; 44.; 52.; 60.; 68. ]) ?(nprocs = 128)
    () =
  List.map
    (fun total_gb ->
      let mb_per_proc = int_of_float (total_gb *. 1000. /. float_of_int nprocs) in
      let options = { Dmtcp.Options.default with Dmtcp.Options.algo = Compress.Algo.Null } in
      let env = Common.setup ~nodes:32 ~options () in
      let w =
        {
          Common.w_name = Printf.sprintf "synthetic-%.0fgb" total_gb;
          w_kind = Common.Direct;
          w_prog = Apps.Synthetic.prog_name;
          w_nprocs = nprocs;
          w_rpn = (nprocs + 31) / 32;
          w_extra = [ string_of_int mb_per_proc; "1000000" ];
          w_warmup = 1.0;
        }
      in
      Common.start_workload env w;
      let m = Common.measure env ~ckpt_reps:reps ~restart_reps:1 in
      Common.teardown env;
      {
        total_gb;
        ckpt = Util.Stats.mean m.Common.ckpt_times;
        restart = Util.Stats.mean m.Common.restart_times;
      })
    totals_gb

let to_text points =
  Util.Table.xy_chart ~title:"Figure 6: Timings as memory usage grows (32 nodes, no compression)"
    ~x_label:"total memory (GB)" ~y_label:"(s)"
    [
      ("checkpoint", List.map (fun p -> (p.total_gb, p.ckpt)) points);
      ("restart", List.map (fun p -> (p.total_gb, p.restart)) points);
    ]
  ^ Printf.sprintf "\nImplied bandwidth at the largest point: %.0f MB/s/node (vs 100 MB/s raw disk)\n"
      (match List.rev points with
      | last :: _ when last.ckpt > 0. -> last.total_gb *. 1000. /. 32. /. last.ckpt
      | _ -> 0.)
