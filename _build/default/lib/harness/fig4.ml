type row = {
  workload : string;
  compressed : Common.ckpt_measure;
  uncompressed : Common.ckpt_measure;
}

(* Process counts: the paper's class-C runs use 128 processes (EP, LU,
   MG, IS, CG, ParGeant4, baselines) and 36 for BT/SP (a square is
   required). `Quick shrinks everything for CI. *)
let workloads scale =
  let big, square, is_ranks, demo = match scale with `Full -> (128, 36, 64, 32) | `Quick -> (16, 9, 8, 8) in
  let forever = "1000000" in
  [
    ( "iPython/Shell[1]",
      { Common.w_name = "ipython-shell"; w_kind = Common.Plain; w_prog = Apps.Ipython.shell_name;
        w_nprocs = 1; w_rpn = 1; w_extra = []; w_warmup = 1.0 } );
    ( "iPython/Demo[1]",
      { Common.w_name = "ipython-demo"; w_kind = Common.Direct; w_prog = Apps.Ipython.demo_name;
        w_nprocs = demo; w_rpn = 1; w_extra = [ "1000000" ]; w_warmup = 1.0 } );
    ( "Baseline[2]",
      { Common.w_name = "baseline-mpich2"; w_kind = Common.Mpich2; w_prog = "nas:baseline";
        w_nprocs = big; w_rpn = 4; w_extra = [ forever ]; w_warmup = 1.0 } );
    ( "ParGeant4[2]",
      { Common.w_name = "pargeant4"; w_kind = Common.Mpich2; w_prog = Apps.Pargeant4.prog_name;
        w_nprocs = big; w_rpn = 4; w_extra = [ "2000"; forever ]; w_warmup = 1.0 } );
    ( "NAS/CG[2]",
      { Common.w_name = "cg"; w_kind = Common.Mpich2; w_prog = "nas:cg"; w_nprocs = big;
        w_rpn = 4; w_extra = [ "400"; forever ]; w_warmup = 1.0 } );
    ( "Baseline[3]",
      { Common.w_name = "baseline-openmpi"; w_kind = Common.Openmpi; w_prog = "nas:baseline";
        w_nprocs = big; w_rpn = 4; w_extra = [ forever ]; w_warmup = 1.0 } );
    ( "NAS/EP[3]",
      { Common.w_name = "ep"; w_kind = Common.Openmpi; w_prog = "nas:ep"; w_nprocs = big;
        w_rpn = 4; w_extra = [ "100000000" ]; w_warmup = 1.0 } );
    ( "NAS/LU[3]",
      { Common.w_name = "lu"; w_kind = Common.Openmpi; w_prog = "nas:lu"; w_nprocs = big;
        w_rpn = 4; w_extra = [ forever ]; w_warmup = 1.0 } );
    ( "NAS/SP[3]",
      { Common.w_name = "sp"; w_kind = Common.Openmpi; w_prog = "nas:sp"; w_nprocs = square;
        w_rpn = 2; w_extra = [ forever ]; w_warmup = 1.0 } );
    ( "NAS/MG[3]",
      { Common.w_name = "mg"; w_kind = Common.Openmpi; w_prog = "nas:mg"; w_nprocs = big;
        w_rpn = 4; w_extra = [ forever ]; w_warmup = 1.0 } );
    ( "NAS/IS[3]",
      { Common.w_name = "is"; w_kind = Common.Openmpi; w_prog = "nas:is"; w_nprocs = is_ranks;
        w_rpn = 4; w_extra = [ "20000"; forever ]; w_warmup = 1.0 } );
    ( "NAS/BT[3]",
      { Common.w_name = "bt"; w_kind = Common.Openmpi; w_prog = "nas:bt"; w_nprocs = square;
        w_rpn = 2; w_extra = [ forever ]; w_warmup = 1.0 } );
  ]

let measure_with ~algo ~reps w =
  let options = { Dmtcp.Options.default with Dmtcp.Options.algo } in
  let env = Common.setup ~nodes:32 ~options () in
  Common.start_workload env w;
  let m = Common.measure env ~ckpt_reps:reps ~restart_reps:(min 2 reps) in
  Common.teardown env;
  m

let run ?(reps = 3) ?(scale = `Full) () =
  List.map
    (fun (name, w) ->
      let compressed = measure_with ~algo:Compress.Algo.Deflate ~reps w in
      let uncompressed = measure_with ~algo:Compress.Algo.Null ~reps w in
      { workload = name; compressed; uncompressed })
    (workloads scale)

let to_text rows =
  let buf = Buffer.create 4096 in
  let chart title unit_label f =
    Buffer.add_string buf
      (Util.Table.bar_chart ~title ~unit_label
         [
           {
             Util.Table.series_name = "uncompressed";
             points = List.map (fun r -> (r.workload, f r.uncompressed)) rows;
           };
           {
             Util.Table.series_name = "compressed";
             points = List.map (fun r -> (r.workload, f r.compressed)) rows;
           };
         ]);
    Buffer.add_char buf '\n'
  in
  chart "Figure 4a: Checkpoint time (s)" "s" (fun m -> Util.Stats.mean m.Common.ckpt_times);
  chart "Figure 4b: Restart time (s)" "s" (fun m -> Util.Stats.mean m.Common.restart_times);
  chart "Figure 4c: Aggregate checkpoint size (MB)" "MB" (fun m ->
      float_of_int m.Common.compressed_bytes /. 1e6);
  Buffer.add_string buf
    (Util.Table.render
       ~header:
         [ "workload"; "ckpt gz (s)"; "ckpt raw (s)"; "restart gz (s)"; "restart raw (s)";
           "size gz (MB)"; "size raw (MB)"; "procs" ]
       (List.map
          (fun r ->
            [
              r.workload;
              Util.Stats.to_string ~decimals:2 r.compressed.Common.ckpt_times;
              Util.Stats.to_string ~decimals:2 r.uncompressed.Common.ckpt_times;
              Util.Stats.to_string ~decimals:2 r.compressed.Common.restart_times;
              Util.Stats.to_string ~decimals:2 r.uncompressed.Common.restart_times;
              Printf.sprintf "%.0f" (float_of_int r.compressed.Common.compressed_bytes /. 1e6);
              Printf.sprintf "%.0f" (float_of_int r.uncompressed.Common.compressed_bytes /. 1e6);
              string_of_int r.compressed.Common.nprocs;
            ])
          rows));
  Buffer.contents buf
