(** Figure 4: distributed applications on 32 nodes (128 cores) —
    checkpoint times (4a), restart times (4b), and aggregate cluster-wide
    checkpoint sizes (4c), with and without compression.

    Workload tags follow the paper: [1] = raw sockets, [2] = MPICH2 (with
    its mpd ring checkpointed too), [3] = OpenMPI (with orted
    daemons). *)

type row = {
  workload : string;
  compressed : Common.ckpt_measure;
  uncompressed : Common.ckpt_measure;
}

(** [run ~reps ~scale ()] — [`Quick] shrinks process counts (for tests),
    [`Full] uses the paper's 128/36-process layouts. *)
val run : ?reps:int -> ?scale:[ `Quick | `Full ] -> unit -> row list

val to_text : row list -> string
