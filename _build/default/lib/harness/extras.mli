(** The evaluation's in-text experiments and the ablations DESIGN.md
    commits to. *)

(** §5.1: runCMS — a 680 MB image with 540 libraries; the paper reports
    25.2 s checkpoint, 18.4 s restart, 225 MB compressed image. *)
type runcms_result = { ckpt : float; restart : float; image_mb : float }

val runcms : ?reps:int -> unit -> runcms_result
val runcms_text : runcms_result -> string

(** §5.2: cost of issuing sync(2) after a ParGeant4 checkpoint (paper:
    +0.79 s ± 0.24). *)
type sync_result = { without_sync : Util.Stats.t; with_sync : Util.Stats.t }

val sync_cost : ?reps:int -> ?nprocs:int -> unit -> sync_result
val sync_text : sync_result -> string

(** Ablation: forked vs plain checkpointing on a memory-heavy process
    (user-visible pause). *)
type forked_result = { plain_s : float; forked_s : float }

val forked_ablation : ?mb:int -> unit -> forked_result
val forked_text : forked_result -> string

(** Ablation: incremental checkpointing — consecutive checkpoint times
    of a mostly-idle process: the first is a full image, later ones write
    only dirtied pages (the compressed-differences idea of the paper's
    refs [2][25]). *)
type incremental_result = { full_first : float; incrementals : float list }

val incremental_ablation : ?ckpts:int -> unit -> incremental_result
val incremental_text : incremental_result -> string

(** Ablation: compression scheme sweep (null / rle / deflate) on the same
    image — time vs size. *)
type algo_point = { algo : Compress.Algo.t; seconds : float; size_mb : float }

val algo_ablation : ?mb:int -> unit -> algo_point list
val algo_text : algo_point list -> string

(** Ablation: is the centralized coordinator a bottleneck? Barrier-bound
    stage times (suspend+elect) vs process count. *)
type coord_point = { nprocs : int; barrier_bound_s : float }

val coordinator_ablation : ?sizes:int list -> unit -> coord_point list
val coordinator_text : coord_point list -> string

(** Ablation: drain-stage time vs socket-buffer occupancy, using the
    flooding producer/consumer pairs. *)
type drain_point = { pairs : int; drain_s : float; drained_kb : float }

val drain_ablation : ?pairs_list:int list -> unit -> drain_point list
val drain_text : drain_point list -> string
