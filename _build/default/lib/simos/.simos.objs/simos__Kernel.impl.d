lib/simos/kernel.ml: Array Buffer Errno Fdesc Float Hashtbl Int64 List Logs Mem Option Pipe Printf Program Pty Sim Simnet Storage String Util Vfs
