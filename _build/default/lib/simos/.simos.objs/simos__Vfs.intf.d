lib/simos/vfs.mli: Errno
