lib/simos/program.ml: Errno Hashtbl List Mem Printf Simnet Util
