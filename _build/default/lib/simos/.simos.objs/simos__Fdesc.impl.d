lib/simos/fdesc.ml: Pipe Pty Simnet Vfs
