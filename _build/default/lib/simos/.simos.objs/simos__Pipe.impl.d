lib/simos/pipe.ml: Errno String Util
