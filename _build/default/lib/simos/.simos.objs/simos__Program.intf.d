lib/simos/program.mli: Errno Mem Simnet Util
