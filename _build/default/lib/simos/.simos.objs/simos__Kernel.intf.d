lib/simos/kernel.mli: Fdesc Hashtbl Mem Program Sim Simnet Storage Vfs
