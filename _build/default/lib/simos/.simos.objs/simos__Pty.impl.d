lib/simos/pty.ml: Printf String Util
