lib/simos/pipe.mli: Errno
