lib/simos/vfs.ml: Bytes Errno Hashtbl List String
