lib/simos/pty.mli:
