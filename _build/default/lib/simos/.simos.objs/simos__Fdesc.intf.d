lib/simos/fdesc.mli: Pipe Pty Simnet Vfs
