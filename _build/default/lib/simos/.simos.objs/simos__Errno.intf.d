lib/simos/errno.mli:
