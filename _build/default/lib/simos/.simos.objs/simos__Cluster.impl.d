lib/simos/cluster.ml: Array Int64 Kernel List Sim Simnet Storage
