lib/simos/errno.ml:
