lib/simos/cluster.mli: Kernel Sim Simnet
