type wait =
  | Readable of int
  | Readable_any of int list
  | Writable of int
  | Sleep_until of float
  | Child
  | Stopped

type 'st outcome =
  | Continue of 'st
  | Compute of 'st * float
  | Block of 'st * wait
  | Fork of { parent : 'st; child : 'st }
  | Exec of { st : 'st; prog : string; argv : string list }
  | Exit of int

type ctx = {
  now : unit -> float;
  rng : Util.Rng.t;
  node_id : int;
  pid : int;
  tid : int;
  ppid : unit -> int;
  argv : string list;
  getenv : string -> string option;
  setenv : string -> string -> unit;
  log : string -> unit;
  open_file : ?create:bool -> string -> (int, Errno.t) result;
  unlink : string -> (unit, Errno.t) result;
  file_exists : string -> bool;
  read_fd : int -> max:int -> [ `Data of string | `Eof | `Would_block | `Err of Errno.t ];
  write_fd : int -> string -> (int, Errno.t) result;
  close_fd : int -> unit;
  dup : int -> (int, Errno.t) result;
  dup2 : src:int -> dst:int -> (unit, Errno.t) result;
  fds : unit -> int list;
  fd_readable : int -> bool;
  fd_writable : int -> bool;
  set_fd_owner : int -> int -> unit;
  get_fd_owner : int -> int;
  pipe : unit -> int * int;
  open_pty : unit -> int * int;
  socket : unit -> int;
  socket_unix : unit -> int;
  socketpair : unit -> int * int;
  bind : int -> port:int -> (int, Errno.t) result;
  bind_unix : int -> path:string -> (unit, Errno.t) result;
  listen : int -> backlog:int -> (unit, Errno.t) result;
  accept : int -> int option;
  connect : int -> Simnet.Addr.t -> (unit, Errno.t) result;
  sock_state : int -> Simnet.Fabric.state option;
  sock_refused : int -> bool;
  sock_local_addr : int -> Simnet.Addr.t option;
  mmap : bytes:int -> kind:Mem.Region.kind -> Mem.Region.t;
  mem_write : addr:int -> string -> unit;
  mem_read : addr:int -> len:int -> string;
  spawn_thread : prog:string -> argv:string list -> int;
  sigaction_set : int -> [ `Default | `Ignore | `Handler of string ] -> unit;
  sigaction_get : int -> [ `Default | `Ignore | `Handler of string ];
  send_signal : pid:int -> signal:int -> (unit, Errno.t) result;
  take_signal : unit -> int option;
  wait_child : unit -> [ `Child of int * int | `None | `No_children ];
  kill : pid:int -> (unit, Errno.t) result;
  process_alive : pid:int -> bool;
  ssh : host:int -> prog:string -> argv:string list -> (int, Errno.t) result;
}

module type S = sig
  type state

  val name : string
  val encode : Util.Codec.Writer.t -> state -> unit
  val decode : Util.Codec.Reader.t -> state
  val init : argv:string list -> state
  val step : ctx -> state -> state outcome
end

type instance = Instance : { prog : (module S with type state = 'a); mutable st : 'a } -> instance

type outcome_boxed =
  | B_continue
  | B_compute of float
  | B_block of wait
  | B_fork of instance
  | B_exec of { prog : string; argv : string list }
  | B_exit of int

let name_of (Instance { prog = (module P); _ }) = P.name

let step_instance ctx (Instance r) =
  let (module P) = r.prog in
  match P.step ctx r.st with
  | Continue st ->
    r.st <- st;
    B_continue
  | Compute (st, dt) ->
    r.st <- st;
    B_compute dt
  | Block (st, w) ->
    r.st <- st;
    B_block w
  | Fork { parent; child } ->
    r.st <- parent;
    B_fork (Instance { prog = r.prog; st = child })
  | Exec { st; prog; argv } ->
    r.st <- st;
    B_exec { prog; argv }
  | Exit code -> B_exit code

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 64

let register (module P : S) =
  if Hashtbl.mem registry P.name then
    invalid_arg (Printf.sprintf "Program.register: %S already registered" P.name);
  Hashtbl.replace registry P.name (module P : S)

let is_registered name = Hashtbl.mem registry name
let registered_names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let instantiate ~name ~argv =
  match Hashtbl.find_opt registry name with
  | None -> raise Not_found
  | Some (module P) -> Instance { prog = (module P); st = P.init ~argv }

let encode_instance w (Instance { prog = (module P); st }) =
  Util.Codec.Writer.string w P.name;
  let body = Util.Codec.Writer.create () in
  P.encode body st;
  Util.Codec.Writer.string w (Util.Codec.Writer.contents body)

let decode_instance r =
  let name = Util.Codec.Reader.string r in
  let body = Util.Codec.Reader.string r in
  match Hashtbl.find_opt registry name with
  | None -> raise Not_found
  | Some (module P) ->
    let br = Util.Codec.Reader.of_string body in
    let st = P.decode br in
    Instance { prog = (module P); st }

let encode_wait w = function
  | Readable fd ->
    Util.Codec.Writer.u8 w 0;
    Util.Codec.Writer.uvarint w fd
  | Readable_any fds ->
    Util.Codec.Writer.u8 w 5;
    Util.Codec.Writer.list Util.Codec.Writer.uvarint w fds
  | Writable fd ->
    Util.Codec.Writer.u8 w 1;
    Util.Codec.Writer.uvarint w fd
  | Sleep_until t ->
    Util.Codec.Writer.u8 w 2;
    Util.Codec.Writer.f64 w t
  | Child -> Util.Codec.Writer.u8 w 3
  | Stopped -> Util.Codec.Writer.u8 w 4

let decode_wait r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Readable (Util.Codec.Reader.uvarint r)
  | 1 -> Writable (Util.Codec.Reader.uvarint r)
  | 2 -> Sleep_until (Util.Codec.Reader.f64 r)
  | 3 -> Child
  | 4 -> Stopped
  | 5 -> Readable_any (Util.Codec.Reader.list Util.Codec.Reader.uvarint r)
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad wait tag %d" n))
