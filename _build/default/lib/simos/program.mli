(** User programs as serializable state machines.

    Real DMTCP checkpoints a process by copying its memory, registers and
    stacks; an OCaml simulation cannot capture native continuations, so a
    "program" here is an explicit state machine: all state that must
    survive a checkpoint lives in a serializable [state] value, and the
    kernel drives the program by calling [step].  Blocking syscalls
    surface as [Block] outcomes with a wait condition; the kernel re-steps
    the thread when the condition is satisfied.

    Programs are looked up by name in a global registry so that restart
    can reconstruct a thread from the (name, encoded state) pair stored in
    its checkpoint image. *)

(** What a blocked thread is waiting for.  Serialized into checkpoint
    images (fd numbers are preserved across restart, so conditions remain
    valid). *)
type wait =
  | Readable of int
  | Readable_any of int list  (** any of several fds (select/poll-style) *)
  | Writable of int
  | Sleep_until of float
  | Child             (** any child to exit *)
  | Stopped           (** parked until another thread wakes it explicitly *)

(** Result of one [step]. *)
type 'st outcome =
  | Continue of 'st                  (** runnable again at once *)
  | Compute of 'st * float           (** burn CPU seconds, then step again *)
  | Block of 'st * wait
  | Fork of { parent : 'st; child : 'st }
      (** fork(2): the kernel clones the process; the parent thread
          continues with [parent], the child's (single) thread starts with
          [child] *)
  | Exec of { st : 'st; prog : string; argv : string list }
      (** execve(2): if the named program exists the process image is
          replaced and [st] is discarded; otherwise the thread continues
          with [st] (exec failed) *)
  | Exit of int

(** Syscall surface available during [step].  All operations are
    non-blocking; "would block" shows in return values and the program
    should return a [Block] outcome. *)
type ctx = {
  now : unit -> float;
  rng : Util.Rng.t;
  node_id : int;
  pid : int;
  tid : int;
  ppid : unit -> int;
  argv : string list;
  getenv : string -> string option;
  setenv : string -> string -> unit;
  log : string -> unit;
  (* --- files --- *)
  open_file : ?create:bool -> string -> (int, Errno.t) result;
  unlink : string -> (unit, Errno.t) result;
  file_exists : string -> bool;
  (* --- generic fd operations --- *)
  read_fd : int -> max:int -> [ `Data of string | `Eof | `Would_block | `Err of Errno.t ];
  write_fd : int -> string -> (int, Errno.t) result;
  close_fd : int -> unit;
  dup : int -> (int, Errno.t) result;
  dup2 : src:int -> dst:int -> (unit, Errno.t) result;
  fds : unit -> int list;
  fd_readable : int -> bool;
  fd_writable : int -> bool;
  set_fd_owner : int -> int -> unit;  (** fcntl F_SETOWN *)
  get_fd_owner : int -> int;          (** fcntl F_GETOWN *)
  (* --- pipes and ptys --- *)
  pipe : unit -> int * int;           (** (read end, write end) *)
  open_pty : unit -> int * int;       (** (master, slave) *)
  (* --- sockets --- *)
  socket : unit -> int;
  socket_unix : unit -> int;
  socketpair : unit -> int * int;
  bind : int -> port:int -> (int, Errno.t) result;
  bind_unix : int -> path:string -> (unit, Errno.t) result;
  listen : int -> backlog:int -> (unit, Errno.t) result;
  accept : int -> int option;
  connect : int -> Simnet.Addr.t -> (unit, Errno.t) result;
  sock_state : int -> Simnet.Fabric.state option;
  sock_refused : int -> bool;
  sock_local_addr : int -> Simnet.Addr.t option;
  (* --- memory --- *)
  mmap : bytes:int -> kind:Mem.Region.kind -> Mem.Region.t;
  mem_write : addr:int -> string -> unit;
  mem_read : addr:int -> len:int -> string;
  (* --- processes --- *)
  spawn_thread : prog:string -> argv:string list -> int;
      (** pthread_create-style: a new user thread in this process running
          the named program; returns its tid *)
  sigaction_set : int -> [ `Default | `Ignore | `Handler of string ] -> unit;
      (** install a disposition for a signal number *)
  sigaction_get : int -> [ `Default | `Ignore | `Handler of string ];
  send_signal : pid:int -> signal:int -> (unit, Errno.t) result;
  take_signal : unit -> int option;
      (** consume the oldest pending handled signal, if any *)
  wait_child : unit -> [ `Child of int * int | `None | `No_children ];
  kill : pid:int -> (unit, Errno.t) result;  (** SIGTERM-style: target exits *)
  process_alive : pid:int -> bool;
  ssh : host:int -> prog:string -> argv:string list -> (int, Errno.t) result;
      (** remote spawn; returns the remote pid. Subject to exec-wrapper
          rewriting when the caller is hijacked. *)
}

module type S = sig
  type state

  val name : string
  val encode : Util.Codec.Writer.t -> state -> unit
  val decode : Util.Codec.Reader.t -> state

  (** Initial state from the command line (pure; do syscalls in the first
      [step]). *)
  val init : argv:string list -> state

  val step : ctx -> state -> state outcome
end

(** A live program instance: module plus current state. *)
type instance = Instance : { prog : (module S with type state = 'a); mutable st : 'a } -> instance

val name_of : instance -> string

(** Outcome of a step with the new state already stored back into the
    instance. *)
type outcome_boxed =
  | B_continue
  | B_compute of float
  | B_block of wait
  | B_fork of instance  (** child instance *)
  | B_exec of { prog : string; argv : string list }
  | B_exit of int

(** One scheduler step. *)
val step_instance : ctx -> instance -> outcome_boxed

(** {2 Registry} *)

(** [register (module P)] makes [P] restorable by name.  Re-registering
    the same name is an error. *)
val register : (module S) -> unit

val is_registered : string -> bool
val registered_names : unit -> string list

(** [instantiate ~name ~argv] creates a fresh instance.
    Raises [Not_found] for unknown programs. *)
val instantiate : name:string -> argv:string list -> instance

(** Serialize an instance as (name, state blob). *)
val encode_instance : Util.Codec.Writer.t -> instance -> unit

(** Rebuild from the registry. Raises [Not_found] for unknown names. *)
val decode_instance : Util.Codec.Reader.t -> instance

val encode_wait : Util.Codec.Writer.t -> wait -> unit
val decode_wait : Util.Codec.Reader.t -> wait
