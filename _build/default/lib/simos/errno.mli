(** Error codes returned by simulated syscalls. *)

type t =
  | EBADF       (** unknown file descriptor *)
  | ENOENT      (** no such file *)
  | EEXIST
  | ECONNREFUSED
  | ENOTCONN
  | EADDRINUSE
  | EPIPE       (** write to a pipe with no readers *)
  | EINVAL
  | ECHILD      (** no children to wait for *)
  | ESRCH       (** no such process *)

val to_string : t -> string
