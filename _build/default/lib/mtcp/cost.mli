(** Calibrated local costs of MTCP operations (see DESIGN.md §4).

    These cover the parts of Table 1 that are not data movement: stopping
    threads with signals, and setting up the copy-on-write clone used by
    forked checkpointing. *)

(** Signal all user threads and wait for them to park
    (Table 1a "Suspend user threads" ~= 25 ms for a typical MPI rank). *)
val suspend_seconds : nthreads:int -> float

(** Copy-on-write fork for forked checkpointing: page-table copy cost,
    proportional to resident pages. *)
val snapshot_seconds : pages:int -> float

(** Leader-election fcntl round per file descriptor (Table 1a "Elect FD
    leaders" ~= 1.4 ms). *)
val elect_seconds : nfds:int -> float

(** Reopening regular files and recreating ptys at restart (Table 1b). *)
val reopen_seconds : nfds:int -> float
