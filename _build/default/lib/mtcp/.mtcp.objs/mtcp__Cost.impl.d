lib/mtcp/cost.ml:
