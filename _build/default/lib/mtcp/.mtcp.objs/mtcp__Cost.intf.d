lib/mtcp/cost.mli:
