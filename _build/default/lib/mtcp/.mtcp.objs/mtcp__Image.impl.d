lib/mtcp/image.ml: Array Compress Hashtbl List Mem Printf Simos Util
