lib/mtcp/image.mli: Compress Mem Simos
