let suspend_seconds ~nthreads = 0.020 +. (0.0008 *. float_of_int nthreads)
let snapshot_seconds ~pages = 0.004 +. (2.0e-6 *. float_of_int pages)
let elect_seconds ~nfds = 0.0006 +. (0.00008 *. float_of_int nfds)
let reopen_seconds ~nfds = 0.002 +. (0.0004 *. float_of_int nfds)
