module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 256) () = { buf = Bytes.create (max 16 capacity); len = 0 }
  let length t = t.len

  let ensure t n =
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    t.len <- t.len + 1

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len v;
    t.len <- t.len + 8

  (* LEB128 over the full word, treating [v] as unsigned (so zigzagged
     values that wrapped negative still terminate). *)
  let rec uvarint_raw t v =
    if v >= 0 && v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7f));
      uvarint_raw t (v lsr 7)
    end

  let uvarint t v =
    if v < 0 then invalid_arg "Codec.Writer.uvarint: negative";
    uvarint_raw t v

  let varint t v =
    (* zigzag *)
    uvarint_raw t ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

  let f64 t v = i64 t (Int64.bits_of_float v)
  let bool t v = u8 t (if v then 1 else 0)

  let raw t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let string t s =
    uvarint t (String.length s);
    raw t s

  let bytes t b = string t (Bytes.unsafe_to_string b)

  let option enc t = function
    | None -> bool t false
    | Some v ->
      bool t true;
      enc t v

  let list enc t l =
    uvarint t (List.length l);
    List.iter (enc t) l

  let array enc t a =
    uvarint t (Array.length a);
    Array.iter (enc t) a

  let pair enc_a enc_b t (a, b) =
    enc_a t a;
    enc_b t b

  let contents t = Bytes.sub_string t.buf 0 t.len
end

module Reader = struct
  type t = { src : string; limit : int; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

  let of_string ?(pos = 0) ?len src =
    let limit =
      match len with
      | None -> String.length src
      | Some n -> pos + n
    in
    if pos < 0 || limit > String.length src || pos > limit then
      corrupt "Reader.of_string: bad bounds";
    { src; limit; pos }

  let remaining t = t.limit - t.pos

  let need t n = if remaining t < n then corrupt "truncated input (need %d bytes, have %d)" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code (String.unsafe_get t.src t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let a = u8 t in
    let b = u8 t in
    a lor (b lsl 8)

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let uvarint t =
    let rec go shift acc =
      if shift > 63 then corrupt "varint too long";
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let varint t =
    let v = uvarint t in
    (v lsr 1) lxor (-(v land 1))

  let f64 t = Int64.float_of_bits (i64 t)

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad bool tag %d" n

  let raw t n =
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let string t =
    let n = uvarint t in
    raw t n

  let bytes t = Bytes.unsafe_of_string (string t)

  let option dec t = if bool t then Some (dec t) else None

  let list dec t =
    let n = uvarint t in
    List.init n (fun _ -> dec t)

  let array dec t =
    let n = uvarint t in
    Array.init n (fun _ -> dec t)

  let pair dec_a dec_b t =
    let a = dec_a t in
    let b = dec_b t in
    (a, b)

  let expect_end t = if remaining t <> 0 then corrupt "%d trailing bytes" (remaining t)
end

let roundtrip enc dec v =
  let w = Writer.create () in
  enc w v;
  let r = Reader.of_string (Writer.contents w) in
  let v' = dec r in
  Reader.expect_end r;
  v'
