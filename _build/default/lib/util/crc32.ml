type t = int32

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update acc s pos len =
  let table = Lazy.force table in
  let c = ref acc in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xffl) in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let finish acc = Int32.logxor acc 0xFFFFFFFFl

let digest s = finish (update init s 0 (String.length s))
