(** Binary serialization used for checkpoint images, connection tables and
    program state blobs.

    The format is self-describing only to the extent the caller makes it so:
    readers must consume fields in the exact order writers produced them.
    Integers use LEB128 varints (with zigzag for signed values) so that the
    common small values cost one byte; fixed-width forms are provided for
    fields whose size must be predictable (e.g. image headers). *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  (** Number of bytes written so far. *)
  val length : t -> int

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit

  (** Unsigned LEB128. Raises [Invalid_argument] on negative input. *)
  val uvarint : t -> int -> unit

  (** Zigzag-encoded signed varint. *)
  val varint : t -> int -> unit

  val f64 : t -> float -> unit
  val bool : t -> bool -> unit

  (** Length-prefixed string. *)
  val string : t -> string -> unit

  (** Length-prefixed bytes. *)
  val bytes : t -> bytes -> unit

  (** Raw bytes, no length prefix. *)
  val raw : t -> string -> unit

  val option : (t -> 'a -> unit) -> t -> 'a option -> unit
  val list : (t -> 'a -> unit) -> t -> 'a list -> unit
  val array : (t -> 'a -> unit) -> t -> 'a array -> unit
  val pair : (t -> 'a -> unit) -> (t -> 'b -> unit) -> t -> 'a * 'b -> unit

  val contents : t -> string
end

module Reader : sig
  type t

  (** Raised on malformed input (truncation, bad tag, trailing junk). *)
  exception Corrupt of string

  val of_string : ?pos:int -> ?len:int -> string -> t

  (** Bytes remaining. *)
  val remaining : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val uvarint : t -> int
  val varint : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val string : t -> string
  val bytes : t -> bytes

  (** [raw t n] reads exactly [n] bytes. *)
  val raw : t -> int -> string

  val option : (t -> 'a) -> t -> 'a option
  val list : (t -> 'a) -> t -> 'a list
  val array : (t -> 'a) -> t -> 'a array
  val pair : (t -> 'a) -> (t -> 'b) -> t -> 'a * 'b

  (** Raises {!Corrupt} unless all input has been consumed. *)
  val expect_end : t -> unit
end

(** [roundtrip enc dec v] encodes then decodes [v]; used by tests. *)
val roundtrip : (Writer.t -> 'a -> unit) -> (Reader.t -> 'a) -> 'a -> 'a
