type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64, Steele et al. "Fast splittable pseudorandom number
   generators". *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Reduce a non-negative 62-bit value; bias is negligible for the bound
     sizes used in the simulator. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~mean =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else -.mean *. log u
  in
  draw ()

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (next_int64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.unsafe_set b (!i + j) (Char.unsafe_chr (Int64.to_int !v land 0xff));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  b

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let state t = t.state
let of_state s = { state = s }
