(** Plain-text rendering of tables and bar charts.

    The benchmark harness prints each of the paper's figures as a labelled
    bar chart (one row per application, one bar per series) and each table
    in aligned columns, so the regenerated results can be compared against
    the paper by eye in a terminal. *)

type align = Left | Right

(** [render ~header rows] lays out [rows] under [header] with columns
    padded to the widest cell. [aligns] defaults to left for the first
    column and right for the rest. *)
val render : ?aligns:align list -> header:string list -> string list list -> string

(** A named series of (label, value) measurements for a bar chart. *)
type series = { series_name : string; points : (string * float) list }

(** [bar_chart ~title ~unit series] renders grouped horizontal bars, one
    group per label, scaled to the maximum value across all series.
    [width] is the maximum bar width in characters (default 48). *)
val bar_chart : ?width:int -> title:string -> unit_label:string -> series list -> string

(** [xy_chart ~title ~x_label ~y_label series] renders series of numeric
    (x, y) points as aligned columns — the textual analogue of the paper's
    line plots (Figures 5 and 6). *)
val xy_chart :
  title:string ->
  x_label:string ->
  y_label:string ->
  (string * (float * float) list) list ->
  string
