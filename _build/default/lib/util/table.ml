type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a -> Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row in
  measure header;
  List.iter measure rows;
  let line row =
    row
    |> List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell)
    |> String.concat "  "
    |> fun s -> String.trim (" " ^ s) |> fun s -> s
  in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

type series = { series_name : string; points : (string * float) list }

let bar_chart ?(width = 48) ~title ~unit_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  let all_values = List.concat_map (fun s -> List.map snd s.points) series in
  let vmax = List.fold_left max 1e-9 all_values in
  let labels =
    match series with
    | [] -> []
    | s :: _ -> List.map fst s.points
  in
  let label_width = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let name_width =
    List.fold_left (fun acc s -> max acc (String.length s.series_name)) 0 series
  in
  List.iter
    (fun label ->
      List.iteri
        (fun si s ->
          match List.assoc_opt label s.points with
          | None -> ()
          | Some v ->
            let bar_len = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
            let bar_len = if v > 0. && bar_len = 0 then 1 else bar_len in
            let mark = if si = 0 then '#' else if si = 1 then '=' else '+' in
            Buffer.add_string buf
              (Printf.sprintf "%s | %s | %s %.3f %s\n"
                 (pad Left label_width (if si = 0 then label else ""))
                 (pad Left name_width s.series_name)
                 (String.make bar_len mark) v unit_label))
        series)
    labels;
  Buffer.contents buf

let xy_chart ~title ~x_label ~y_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  let header = x_label :: List.map (fun (name, _) -> name ^ " " ^ y_label) series in
  (* Collect the union of x values, sorted. *)
  let module FS = Set.Make (Float) in
  let xs =
    List.fold_left (fun acc (_, pts) -> List.fold_left (fun acc (x, _) -> FS.add x acc) acc pts) FS.empty series
  in
  let rows =
    FS.elements xs
    |> List.map (fun x ->
           Printf.sprintf "%g" x
           :: List.map
                (fun (_, pts) ->
                  match List.find_opt (fun (x', _) -> x' = x) pts with
                  | Some (_, y) -> Printf.sprintf "%.3f" y
                  | None -> "-")
                series)
  in
  Buffer.add_string buf (render ~header rows);
  Buffer.contents buf
