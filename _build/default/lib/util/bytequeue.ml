type t = { chunks : string Queue.t; mutable head_off : int; mutable len : int }

let create () = { chunks = Queue.create (); head_off = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t s =
  if String.length s > 0 then begin
    Queue.push s t.chunks;
    t.len <- t.len + String.length s
  end

let pop t n =
  let n = min n t.len in
  if n <= 0 then ""
  else begin
    let out = Bytes.create n in
    let filled = ref 0 in
    while !filled < n do
      let chunk = Queue.peek t.chunks in
      let avail = String.length chunk - t.head_off in
      let take = min avail (n - !filled) in
      Bytes.blit_string chunk t.head_off out !filled take;
      filled := !filled + take;
      if take = avail then begin
        ignore (Queue.pop t.chunks);
        t.head_off <- 0
      end
      else t.head_off <- t.head_off + take
    done;
    t.len <- t.len - n;
    Bytes.unsafe_to_string out
  end

let pop_all t = pop t t.len

let peek_all t =
  let out = Bytes.create t.len in
  let filled = ref 0 in
  let first = ref true in
  Queue.iter
    (fun chunk ->
      let off = if !first then t.head_off else 0 in
      first := false;
      let avail = String.length chunk - off in
      Bytes.blit_string chunk off out !filled avail;
      filled := !filled + avail)
    t.chunks;
  Bytes.unsafe_to_string out

let clear t =
  Queue.clear t.chunks;
  t.head_off <- 0;
  t.len <- 0
