(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [t] so
    that whole-cluster runs are reproducible from a single seed.  The
    generator is splittable: independent subsystems receive their own
    stream via {!split} and cannot perturb each other's sequences. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** [copy t] duplicates the generator state (the copy and the original
    then produce identical streams). *)
val copy : t -> t

(** [split t] advances [t] and returns a new, statistically independent
    generator. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t n] is uniform on [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform on [\[lo, hi\]] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t x] is uniform on [\[0, x)]. *)
val float : t -> float -> float

(** Gaussian sample with the given mean and standard deviation
    (Box–Muller). *)
val gaussian : t -> mean:float -> stddev:float -> float

(** Exponentially distributed sample with the given mean. *)
val exponential : t -> mean:float -> float

val bool : t -> bool

(** [bytes t n] is [n] fresh uniformly random bytes. *)
val bytes : t -> int -> bytes

(** [choose t arr] picks a uniform element. Raises on empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** Raw generator state, for checkpointable programs that must serialize
    their RNG mid-stream. *)
val state : t -> int64

val of_state : int64 -> t
