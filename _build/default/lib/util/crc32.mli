(** CRC-32 (IEEE 802.3 polynomial, as used by gzip). *)

type t = int32

(** Initial accumulator. *)
val init : t

(** [update acc s pos len] folds [len] bytes of [s] starting at [pos] into
    the accumulator. *)
val update : t -> string -> int -> int -> t

(** Finalize an accumulator into the standard CRC value. *)
val finish : t -> int32

(** One-shot digest of a full string. *)
val digest : string -> int32
