type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
let min t = if t.n = 0 then 0. else t.min
let max t = if t.n = 0 then 0. else t.max

let to_string ?(decimals = 3) t =
  Printf.sprintf "%.*f ± %.*f" decimals (mean t) decimals (stddev t)
