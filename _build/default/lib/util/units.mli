(** Byte and time quantities with human-readable formatting. *)

val kib : int
val mib : int
val gib : int

(** Decimal units, used when matching the paper's "MB/s" device rates. *)
val kb : int

val mb : int
val gb : int

(** [pp_bytes n] formats with a binary suffix, e.g. ["12.4 MiB"]. *)
val pp_bytes : int -> string

(** [pp_mb n] formats as decimal megabytes, e.g. ["225.1 MB"]. *)
val pp_mb : int -> string

(** [pp_seconds s] picks s/ms/us as appropriate. *)
val pp_seconds : float -> string
