let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let kb = 1000
let mb = 1000 * kb
let gb = 1000 * mb

let pp_bytes n =
  let f = float_of_int n in
  if n >= gib then Printf.sprintf "%.2f GiB" (f /. float_of_int gib)
  else if n >= mib then Printf.sprintf "%.2f MiB" (f /. float_of_int mib)
  else if n >= kib then Printf.sprintf "%.2f KiB" (f /. float_of_int kib)
  else Printf.sprintf "%d B" n

let pp_mb n = Printf.sprintf "%.1f MB" (float_of_int n /. float_of_int mb)

let pp_seconds s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)
