lib/util/stats.mli:
