lib/util/rng.mli:
