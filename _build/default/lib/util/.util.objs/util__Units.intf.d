lib/util/units.mli:
