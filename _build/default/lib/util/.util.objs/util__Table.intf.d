lib/util/table.mli:
