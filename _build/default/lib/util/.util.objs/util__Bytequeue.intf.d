lib/util/bytequeue.mli:
