lib/util/codec.ml: Array Bytes Char Format Int64 List String Sys
