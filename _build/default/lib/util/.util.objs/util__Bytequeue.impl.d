lib/util/bytequeue.ml: Bytes Queue String
