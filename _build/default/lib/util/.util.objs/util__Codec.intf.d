lib/util/codec.mli:
