(** Running summary statistics (Welford's online algorithm).

    Used by the benchmark harness to report the mean and one standard
    deviation across repeated checkpoint/restart trials, matching the error
    bars of the paper's Figure 4. *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_list : float list -> t
val count : t -> int

(** Mean of the samples; 0. if empty. *)
val mean : t -> float

(** Sample standard deviation (n-1 denominator); 0. for fewer than two
    samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** ["mean ± stddev"] with the given number of decimals. *)
val to_string : ?decimals:int -> t -> string
