(** FIFO queue of bytes, used for socket/pipe/pty kernel buffers.
    Pushes and pops are amortized O(length of data moved). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

(** Append data. *)
val push : t -> string -> unit

(** [pop t n] removes and returns up to [n] bytes (fewer if the queue is
    shorter; [""] if empty). *)
val pop : t -> int -> string

(** Remove and return everything. *)
val pop_all : t -> string

(** Non-destructive copy of the full contents. *)
val peek_all : t -> string

val clear : t -> unit
