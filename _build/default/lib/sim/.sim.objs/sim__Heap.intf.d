lib/sim/heap.mli:
