lib/sim/engine.ml: Heap Util
