lib/sim/engine.mli: Util
