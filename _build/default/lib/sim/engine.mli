(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Everything in the
    simulated cluster — kernel scheduling, network segment delivery, disk
    write completion, DMTCP barrier releases — runs as events on one
    engine, so a whole multi-node run is a single deterministic sequence.

    Events scheduled for the same instant fire in scheduling order. *)

type t

(** Cancellation handle for a scheduled event. *)
type handle

(** [create ~seed ()] makes an engine whose clock starts at [0.]. *)
val create : ?seed:int64 -> unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** The engine's root RNG (subsystems should {!Util.Rng.split} it). *)
val rng : t -> Util.Rng.t

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Raises [Invalid_argument] on negative delay. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at t ~time f] runs [f] at absolute [time] (>= now). *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op. *)
val cancel : handle -> unit

(** Number of pending (uncancelled) events. *)
val pending : t -> int

(** Run one event; [false] if the queue was empty. *)
val step : t -> bool

(** [run t] processes events until the queue drains, or until the optional
    [until] time (events strictly after it stay queued and the clock
    advances to [until]).  [max_events] guards against livelock; exceeding
    it raises [Failure]. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** [advance t ~delay] = run until [now + delay]. *)
val advance : t -> delay:float -> unit
