(** Binary min-heap keyed by [(priority, sequence)].

    Two entries with equal priority pop in insertion order, which makes the
    event engine deterministic: simultaneous events fire in the order they
    were scheduled. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~priority v] inserts [v]. *)
val push : 'a t -> priority:float -> 'a -> unit

(** Smallest entry, as [(priority, value)]. *)
val peek : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option
