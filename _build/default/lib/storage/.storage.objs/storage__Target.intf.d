lib/storage/target.mli: Sim
