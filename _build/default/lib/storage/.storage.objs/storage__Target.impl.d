lib/storage/target.ml: Float Sim
