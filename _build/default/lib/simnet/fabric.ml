type state = Created | Bound | Listening | Connecting | Established | Closed

type error = Refused | Not_connected | Already_bound | Addr_in_use | Invalid

let pp_error = function
  | Refused -> "connection refused"
  | Not_connected -> "not connected"
  | Already_bound -> "already bound"
  | Addr_in_use -> "address in use"
  | Invalid -> "invalid operation"

let buffer_capacity = 64 * 1024
let chunk_size = 16 * 1024

type socket = {
  id : int;
  fab : t;
  sock_host : Addr.host;
  unix : bool;
  mutable st : state;
  mutable local : Addr.t option;
  mutable peer : socket option;
  recv_buf : Util.Bytequeue.t;
  send_buf : Util.Bytequeue.t;
  mutable in_flight : int;
  mutable pumping : bool;
  mutable fin_sent : bool;          (* our side called close *)
  mutable peer_closed : bool;       (* FIN received: EOF after recv_buf drains *)
  mutable refused : bool;
  accept_q : socket Queue.t;
  mutable backlog : int;
  mutable wake : unit -> unit;
}

and t = {
  eng : Sim.Engine.t;
  latency : float;
  bandwidth : float;
  loopback_latency : float;
  n : int;
  listeners : (Addr.t, socket) Hashtbl.t;
  nic_free_at : float array;
  next_port : int array;
  mutable next_id : int;
}

let create eng ?(latency = 100e-6) ?(bandwidth = 117e6) ?(loopback_latency = 10e-6) ~nhosts () =
  {
    eng;
    latency;
    bandwidth;
    loopback_latency;
    n = nhosts;
    listeners = Hashtbl.create 64;
    nic_free_at = Array.make nhosts 0.;
    next_port = Array.make nhosts 32768;
    next_id = 0;
  }

let engine t = t.eng
let nhosts t = t.n

let make_socket fab ~host ~unix =
  let id = fab.next_id in
  fab.next_id <- id + 1;
  {
    id;
    fab;
    sock_host = host;
    unix;
    st = Created;
    local = None;
    peer = None;
    recv_buf = Util.Bytequeue.create ();
    send_buf = Util.Bytequeue.create ();
    in_flight = 0;
    pumping = false;
    fin_sent = false;
    peer_closed = false;
    refused = false;
    accept_q = Queue.create ();
    backlog = 0;
    wake = ignore;
  }

let socket fab ~host = make_socket fab ~host ~unix:false
let socket_unix fab ~host = make_socket fab ~host ~unix:true

let id s = s.id
let host s = s.sock_host
let state s = s.st
let local_addr s = s.local
let is_unix s = s.unix
let connect_refused s = s.refused
let recv_buffered s = Util.Bytequeue.length s.recv_buf
let send_buffered s = Util.Bytequeue.length s.send_buf
let in_flight s = s.in_flight
let on_activity s f = s.wake <- f

let peer_addr s =
  match s.peer with
  | None -> None
  | Some p -> p.local

let readable s =
  match s.st with
  | Listening -> not (Queue.is_empty s.accept_q)
  | _ -> (not (Util.Bytequeue.is_empty s.recv_buf)) || s.peer_closed

let writable s =
  s.st = Established && (not s.fin_sent) && Util.Bytequeue.length s.send_buf < buffer_capacity

(* Time for [len] bytes from [src] to [dst], charging the sender NIC. *)
let transfer_delay fab ~src ~dst len =
  let now = Sim.Engine.now fab.eng in
  if src = dst then fab.loopback_latency
  else begin
    let depart = Float.max now fab.nic_free_at.(src) in
    let dur = float_of_int len /. fab.bandwidth in
    fab.nic_free_at.(src) <- depart +. dur;
    depart -. now +. dur +. fab.latency
  end

(* Move FIN to the peer once every queued byte has been delivered. *)
let rec maybe_deliver_fin s =
  if s.fin_sent && Util.Bytequeue.is_empty s.send_buf && s.in_flight = 0 then
    match s.peer with
    | Some p when not p.peer_closed ->
      let delay = if s.sock_host = p.sock_host then s.fab.loopback_latency else s.fab.latency in
      ignore
        (Sim.Engine.schedule s.fab.eng ~delay (fun () ->
             p.peer_closed <- true;
             p.wake ()))
    | _ -> ()

and pump s =
  if (not s.pumping) && s.st = Established then
    match s.peer with
    | None -> ()
    | Some p ->
      let free = buffer_capacity - Util.Bytequeue.length p.recv_buf in
      let len = min (min (Util.Bytequeue.length s.send_buf) free) chunk_size in
      if len > 0 then begin
        let data = Util.Bytequeue.pop s.send_buf len in
        s.in_flight <- s.in_flight + len;
        s.pumping <- true;
        let delay = transfer_delay s.fab ~src:s.sock_host ~dst:p.sock_host len in
        ignore
          (Sim.Engine.schedule s.fab.eng ~delay (fun () ->
               Util.Bytequeue.push p.recv_buf data;
               s.in_flight <- s.in_flight - len;
               s.pumping <- false;
               p.wake ();
               s.wake ();
               pump s;
               maybe_deliver_fin s))
      end
      else maybe_deliver_fin s

let bind s ~port =
  match s.st with
  | Created when not s.unix ->
    let port =
      if port = 0 then begin
        let p = s.fab.next_port.(s.sock_host) in
        s.fab.next_port.(s.sock_host) <- p + 1;
        p
      end
      else port
    in
    let addr = Addr.Inet { host = s.sock_host; port } in
    if Hashtbl.mem s.fab.listeners addr then Error Addr_in_use
    else begin
      s.local <- Some addr;
      s.st <- Bound;
      Ok port
    end
  | Created -> Error Invalid
  | _ -> Error Already_bound

let bind_unix s ~path =
  match s.st with
  | Created when s.unix ->
    let addr = Addr.Unix { host = s.sock_host; path } in
    if Hashtbl.mem s.fab.listeners addr then Error Addr_in_use
    else begin
      s.local <- Some addr;
      s.st <- Bound;
      Ok ()
    end
  | Created -> Error Invalid
  | _ -> Error Already_bound

let listen s ~backlog =
  match s.st, s.local with
  | Bound, Some addr ->
    if Hashtbl.mem s.fab.listeners addr then Error Addr_in_use
    else begin
      Hashtbl.replace s.fab.listeners addr s;
      s.backlog <- max 1 backlog;
      s.st <- Listening;
      Ok ()
    end
  | _ -> Error Invalid

let one_way_latency fab ~src ~dst =
  if src = dst then fab.loopback_latency else fab.latency

let connect s addr =
  match s.st with
  | Created ->
    (match addr, s.unix with
    | Addr.Inet _, true | Addr.Unix _, false -> Error Invalid
    | _ ->
      s.st <- Connecting;
      let fab = s.fab in
      let fwd = one_way_latency fab ~src:s.sock_host ~dst:(Addr.host_of addr) in
      ignore
        (Sim.Engine.schedule fab.eng ~delay:fwd (fun () ->
             let refuse () =
               let back = one_way_latency fab ~src:(Addr.host_of addr) ~dst:s.sock_host in
               ignore
                 (Sim.Engine.schedule fab.eng ~delay:back (fun () ->
                      s.st <- Closed;
                      s.refused <- true;
                      s.wake ()))
             in
             match Hashtbl.find_opt fab.listeners addr with
             | None -> refuse ()
             | Some listener when listener.st <> Listening -> refuse ()
             | Some listener when Queue.length listener.accept_q >= listener.backlog -> refuse ()
             | Some listener ->
               (* Server-side endpoint, established immediately. *)
               let server = make_socket fab ~host:(Addr.host_of addr) ~unix:s.unix in
               server.st <- Established;
               server.local <- Some addr;
               server.peer <- Some s;
               Queue.push server listener.accept_q;
               listener.wake ();
               let back = one_way_latency fab ~src:(Addr.host_of addr) ~dst:s.sock_host in
               ignore
                 (Sim.Engine.schedule fab.eng ~delay:back (fun () ->
                      if s.st = Connecting then begin
                        s.st <- Established;
                        s.peer <- Some server;
                        (* our ephemeral local address *)
                        if s.local = None && not s.unix then begin
                          let p = fab.next_port.(s.sock_host) in
                          fab.next_port.(s.sock_host) <- p + 1;
                          s.local <- Some (Addr.Inet { host = s.sock_host; port = p })
                        end;
                        s.wake ();
                        pump s;
                        pump server
                      end))));
      Ok ())
  | _ -> Error Invalid

let accept s =
  match s.st with
  | Listening when not (Queue.is_empty s.accept_q) -> Some (Queue.pop s.accept_q)
  | _ -> None

let send s data =
  match s.st with
  | Established when not s.fin_sent ->
    let free = buffer_capacity - Util.Bytequeue.length s.send_buf in
    let n = min free (String.length data) in
    if n > 0 then begin
      Util.Bytequeue.push s.send_buf (String.sub data 0 n);
      pump s
    end;
    Ok n
  | Established -> Error Invalid
  | Closed -> Error (if s.refused then Refused else Not_connected)
  | _ -> Error Not_connected

let recv s ~max =
  match s.st with
  | Established | Closed ->
    if not (Util.Bytequeue.is_empty s.recv_buf) then begin
      let data = Util.Bytequeue.pop s.recv_buf max in
      (match s.peer with
      | Some p -> pump p  (* room freed: let the peer push more *)
      | None -> ());
      `Data data
    end
    else if s.peer_closed then `Eof
    else if s.st = Closed then `Error (if s.refused then Refused else Not_connected)
    else `Would_block
  | Listening | Created | Bound | Connecting -> `Error Not_connected

let close s =
  match s.st with
  | Closed -> ()
  | Listening ->
    (match s.local with
    | Some addr -> Hashtbl.remove s.fab.listeners addr
    | None -> ());
    (* pending, never-accepted connections are refused *)
    Queue.iter
      (fun server ->
        match server.peer with
        | Some client ->
          client.st <- Closed;
          client.refused <- true;
          client.wake ()
        | None -> ())
      s.accept_q;
    Queue.clear s.accept_q;
    s.st <- Closed
  | Created | Bound ->
    (match s.local with
    | Some addr -> Hashtbl.remove s.fab.listeners addr
    | None -> ());
    s.st <- Closed
  | Connecting | Established ->
    s.fin_sent <- true;
    maybe_deliver_fin s;
    s.st <- Closed

let socketpair fab ~host =
  let a = make_socket fab ~host ~unix:true in
  let b = make_socket fab ~host ~unix:true in
  a.st <- Established;
  b.st <- Established;
  a.peer <- Some b;
  b.peer <- Some a;
  a.local <- Some (Addr.Unix { host; path = Printf.sprintf "<pair:%d>" a.id });
  b.local <- Some (Addr.Unix { host; path = Printf.sprintf "<pair:%d>" b.id });
  (a, b)

let inject_recv s data =
  Util.Bytequeue.push s.recv_buf data;
  s.wake ()

let peer_id s = Option.map (fun p -> p.id) s.peer
