type host = int

type t =
  | Inet of { host : host; port : int }
  | Unix of { host : host; path : string }

let host_of = function
  | Inet { host; _ } -> host
  | Unix { host; _ } -> host

let to_string = function
  | Inet { host; port } -> Printf.sprintf "10.0.0.%d:%d" host port
  | Unix { host; path } -> Printf.sprintf "unix[%d]:%s" host path

let encode w = function
  | Inet { host; port } ->
    Util.Codec.Writer.u8 w 0;
    Util.Codec.Writer.uvarint w host;
    Util.Codec.Writer.uvarint w port
  | Unix { host; path } ->
    Util.Codec.Writer.u8 w 1;
    Util.Codec.Writer.uvarint w host;
    Util.Codec.Writer.string w path

let decode r =
  match Util.Codec.Reader.u8 r with
  | 0 ->
    let host = Util.Codec.Reader.uvarint r in
    let port = Util.Codec.Reader.uvarint r in
    Inet { host; port }
  | 1 ->
    let host = Util.Codec.Reader.uvarint r in
    let path = Util.Codec.Reader.string r in
    Unix { host; path }
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad addr tag %d" n))
