(** Network addresses: TCP/IP endpoints and UNIX-domain paths.

    Hosts are small integers (node ids); a cluster-unique [hostid] string
    is derived for DMTCP's globally unique socket IDs. *)

type host = int

type t =
  | Inet of { host : host; port : int }
  | Unix of { host : host; path : string }  (** UNIX sockets are host-local *)

val host_of : t -> host
val to_string : t -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
