lib/simnet/discovery.mli: Addr
