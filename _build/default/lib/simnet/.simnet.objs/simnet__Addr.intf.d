lib/simnet/addr.mli: Util
