lib/simnet/discovery.ml: Addr Hashtbl List Option
