lib/simnet/fabric.mli: Addr Sim
