lib/simnet/addr.ml: Printf Util
