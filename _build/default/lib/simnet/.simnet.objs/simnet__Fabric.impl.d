lib/simnet/fabric.ml: Addr Array Float Hashtbl Option Printf Queue Sim String Util
