lib/apps/workload_mem.ml: Int64 Mem Simos
