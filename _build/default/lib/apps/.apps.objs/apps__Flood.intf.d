lib/apps/flood.mli:
