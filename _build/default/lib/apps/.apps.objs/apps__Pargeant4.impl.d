lib/apps/pargeant4.ml: Float List Mpi Nas Simos Util Workload_mem
