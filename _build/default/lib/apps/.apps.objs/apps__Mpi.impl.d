lib/apps/mpi.ml: Array Bytes Char Int32 Int64 List Option Simnet Simos String Util
