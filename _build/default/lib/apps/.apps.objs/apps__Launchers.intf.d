lib/apps/launchers.mli: Simos Util
