lib/apps/workload_mem.mli: Mem Simos
