lib/apps/pargeant4.mli:
