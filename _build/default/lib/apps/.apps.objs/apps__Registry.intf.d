lib/apps/registry.mli:
