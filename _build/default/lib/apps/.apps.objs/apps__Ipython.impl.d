lib/apps/ipython.ml: Float List Mpi Nas Simos Util Workload_mem
