lib/apps/desktop.mli: Workload_mem
