lib/apps/flood.ml: Mpi Nas Simos String Util Workload_mem
