lib/apps/registry.ml: Desktop Flood Ipython Launchers Nas Pargeant4 Synthetic
