lib/apps/desktop.ml: Hashtbl List Mem Printf Simos Util Workload_mem
