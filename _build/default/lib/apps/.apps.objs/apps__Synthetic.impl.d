lib/apps/synthetic.ml: Mpi Nas Simos Util Workload_mem
