lib/apps/mpi.mli: Simos Util
