lib/apps/ipython.mli:
