lib/apps/nas.mli: Mpi Simos Util Workload_mem
