lib/apps/synthetic.mli:
