lib/apps/nas.ml: Array Float Fun Int64 Launchers List Mpi Printf Simos String Util Workload_mem
