lib/apps/launchers.ml: List Simnet Simos String Util Workload_mem
