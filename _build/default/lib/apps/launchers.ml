module W = Util.Codec.Writer
module R = Util.Codec.Reader

let parse_rank_args = function
  | rank :: size :: base_port :: rpn :: nhost :: nport :: extra ->
    ( int_of_string rank,
      int_of_string size,
      int_of_string base_port,
      int_of_string rpn,
      int_of_string nhost,
      int_of_string nport,
      extra )
  | argv -> failwith ("bad rank argv: " ^ String.concat " " argv)

(* ------------------------------------------------------------------ *)
(* completion notification (rank -> mpirun) *)

type notify = { n_host : int; n_port : int; mutable n_fd : int; mutable n_sent : bool }

let notify_start ~host ~port = { n_host = host; n_port = port; n_fd = -1; n_sent = false }

let notify_step (ctx : Simos.Program.ctx) n =
  if n.n_port = 0 then `Done  (* notification disabled *)
  else if n.n_fd < 0 then begin
    n.n_fd <- ctx.socket ();
    ignore (ctx.connect n.n_fd (Simnet.Addr.Inet { host = n.n_host; port = n.n_port }));
    `Pending
  end
  else
    match ctx.sock_state n.n_fd with
    | Some Simnet.Fabric.Established ->
      if not n.n_sent then begin
        ignore (ctx.write_fd n.n_fd "DONE\n");
        n.n_sent <- true
      end;
      ctx.close_fd n.n_fd;
      `Done
    | Some Simnet.Fabric.Connecting -> `Pending
    | _ ->
      (* mpirun already gone; that is fine *)
      `Done

let encode_notify w n =
  W.uvarint w n.n_host;
  W.uvarint w n.n_port;
  W.varint w n.n_fd;
  W.bool w n.n_sent

let decode_notify r =
  let n_host = R.uvarint r in
  let n_port = R.uvarint r in
  let n_fd = R.varint r in
  let n_sent = R.bool r in
  { n_host; n_port; n_fd; n_sent }

(* ------------------------------------------------------------------ *)
(* mpd: one daemon per node, in a ring *)

module Mpd = struct
  type ring = { idx : int; n : int; port : int; lfd : int; next_fd : int; peer_fds : int list }

  type state =
    | Boot of { idx : int; n : int; port : int }
    | Ring of ring

  let name = "mpi:mpd"

  let encode w = function
    | Boot { idx; n; port } ->
      W.u8 w 0;
      W.uvarint w idx;
      W.uvarint w n;
      W.uvarint w port
    | Ring { idx; n; port; lfd; next_fd; peer_fds } ->
      W.u8 w 1;
      W.uvarint w idx;
      W.uvarint w n;
      W.uvarint w port;
      W.varint w lfd;
      W.varint w next_fd;
      W.list W.varint w peer_fds

  let decode r =
    match R.u8 r with
    | 0 ->
      let idx = R.uvarint r in
      let n = R.uvarint r in
      let port = R.uvarint r in
      Boot { idx; n; port }
    | _ ->
      let idx = R.uvarint r in
      let n = R.uvarint r in
      let port = R.uvarint r in
      let lfd = R.varint r in
      let next_fd = R.varint r in
      let peer_fds = R.list R.varint r in
      Ring { idx; n; port; lfd; next_fd; peer_fds }

  let init ~argv =
    match argv with
    | [ idx; n; port ] ->
      Boot { idx = int_of_string idx; n = int_of_string n; port = int_of_string port }
    | _ -> Boot { idx = 0; n = 1; port = 8000 }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { idx; n; port } ->
      ignore (Workload_mem.alloc ctx ~bytes:6_000_000 ~mix:Workload_mem.mostly_code ~seed:(777 + idx));
      let lfd = ctx.socket () in
      (match ctx.bind lfd ~port:(port + idx) with Ok _ -> () | Error _ -> ());
      ignore (ctx.listen lfd ~backlog:8);
      let next_fd =
        if n > 1 then begin
          let fd = ctx.socket () in
          let next = (idx + 1) mod n in
          ignore (ctx.connect fd (Simnet.Addr.Inet { host = next; port = port + next }));
          fd
        end
        else -1
      in
      Simos.Program.Block
        ( Ring { idx; n; port; lfd; next_fd; peer_fds = [] },
          Simos.Program.Sleep_until (ctx.now () +. 5e-3) )
    | Ring ring -> (
      let { lfd; next_fd; peer_fds; n; _ } = ring in
      (* retry the ring link until the next daemon's listener is up *)
      let ring =
        if next_fd >= 0 && ctx.sock_refused next_fd then begin
          ctx.close_fd next_fd;
          let fd = ctx.socket () in
          let next = (ring.idx + 1) mod n in
          ignore (ctx.connect fd (Simnet.Addr.Inet { host = next; port = ring.port + next }));
          { ring with next_fd = fd }
        end
        else ring
      in
      let ring =
        match ctx.accept lfd with
        | Some fd -> { ring with peer_fds = fd :: peer_fds }
        | None -> ring
      in
      (* drain any chatter on ring links; mpds are otherwise idle *)
      List.iter
        (fun fd ->
          match ctx.read_fd fd ~max:4096 with
          | `Data _ | `Eof | `Would_block | `Err _ -> ())
        ring.peer_fds;
      match ctx.sock_state ring.next_fd with
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (Ring ring, Simos.Program.Sleep_until (ctx.now () +. 5e-3))
      | _ ->
        Simos.Program.Block (Ring ring, Simos.Program.Readable_any (lfd :: ring.peer_fds)))
end

module Mpdboot = struct
  type state = unit

  let name = "mpi:mpdboot"
  let encode _ () = ()
  let decode _ = ()
  let init ~argv:_ = ()

  let step (ctx : Simos.Program.ctx) () =
    let n, port =
      match ctx.argv with
      | [ _; n ] -> (int_of_string n, 8000)
      | [ _; n; port ] -> (int_of_string n, int_of_string port)
      | _ -> (1, 8000)
    in
    for idx = 0 to n - 1 do
      ignore
        (ctx.ssh ~host:idx ~prog:Mpd.name
           ~argv:[ string_of_int idx; string_of_int n; string_of_int port ])
    done;
    Simos.Program.Exit 0
end

(* ------------------------------------------------------------------ *)
(* orted: OpenRTE daemon, star to mpirun *)

module Orted = struct
  type state =
    | Boot of { host : int; port : int }
    | Idle of { fd : int }

  let name = "mpi:orted"

  let encode w = function
    | Boot { host; port } ->
      W.u8 w 0;
      W.uvarint w host;
      W.uvarint w port
    | Idle { fd } ->
      W.u8 w 1;
      W.varint w fd

  let decode r =
    match R.u8 r with
    | 0 ->
      let host = R.uvarint r in
      let port = R.uvarint r in
      Boot { host; port }
    | _ -> Idle { fd = R.varint r }

  let init ~argv =
    match argv with
    | [ host; port ] -> Boot { host = int_of_string host; port = int_of_string port }
    | _ -> Boot { host = 0; port = 7900 }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { host; port } ->
      ignore (Workload_mem.alloc ctx ~bytes:8_000_000 ~mix:Workload_mem.mostly_code ~seed:(888 + ctx.node_id));
      let fd = ctx.socket () in
      ignore (ctx.connect fd (Simnet.Addr.Inet { host; port }));
      Simos.Program.Block (Idle { fd }, Simos.Program.Sleep_until (ctx.now () +. 5e-3))
    | Idle { fd } -> (
      match ctx.read_fd fd ~max:4096 with
      | `Data _ -> Simos.Program.Block (st, Simos.Program.Readable fd)
      | `Eof -> Simos.Program.Exit 0
      | `Would_block -> Simos.Program.Block (st, Simos.Program.Readable fd)
      | `Err _ -> Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 5e-3)))
end

(* ------------------------------------------------------------------ *)
(* mpirun *)

module Mpirun = struct
  type state =
    | Boot
    | Wait_orted of { lfd : int; fds : int list; want : int }
    | Spawn of { lfd : int; daemon_fds : int list }
    | Await of { lfd : int; daemon_fds : int list; done_fds : (int * string) list; finished : int }

  let name = "mpi:mpirun"

  (* mpirun is checkpointed but its state is simple and serializable *)
  let encode w = function
    | Boot -> W.u8 w 0
    | Wait_orted { lfd; fds; want } ->
      W.u8 w 1;
      W.varint w lfd;
      W.list W.varint w fds;
      W.uvarint w want
    | Spawn { lfd; daemon_fds } ->
      W.u8 w 2;
      W.varint w lfd;
      W.list W.varint w daemon_fds
    | Await { lfd; daemon_fds; done_fds; finished } ->
      W.u8 w 3;
      W.varint w lfd;
      W.list W.varint w daemon_fds;
      W.list (W.pair W.varint W.string) w done_fds;
      W.uvarint w finished

  let decode r =
    match R.u8 r with
    | 0 -> Boot
    | 1 ->
      let lfd = R.varint r in
      let fds = R.list R.varint r in
      let want = R.uvarint r in
      Wait_orted { lfd; fds; want }
    | 2 ->
      let lfd = R.varint r in
      let daemon_fds = R.list R.varint r in
      Spawn { lfd; daemon_fds }
    | _ ->
      let lfd = R.varint r in
      let daemon_fds = R.list R.varint r in
      let done_fds = R.list (R.pair R.varint R.string) r in
      let finished = R.uvarint r in
      Await { lfd; daemon_fds; done_fds; finished }

  let init ~argv:_ = Boot

  (* argv: mpirun <mpich2|openmpi> <nprocs> <ranks_per_node> <base_port>
     <prog> <extra...> *)
  let parse (ctx : Simos.Program.ctx) =
    match ctx.argv with
    | _ :: rt :: nprocs :: rpn :: base_port :: prog :: extra ->
      (rt, int_of_string nprocs, int_of_string rpn, int_of_string base_port, prog, extra)
    | _ -> failwith "mpirun: bad argv"

  let nodes_used nprocs rpn = (nprocs + rpn - 1) / rpn

  let control_port base_port = base_port - 1

  let spawn_ranks (ctx : Simos.Program.ctx) =
    let _, nprocs, rpn, base_port, prog, extra = parse ctx in
    for rank = 0 to nprocs - 1 do
      let host = rank / rpn in
      ignore
        (ctx.ssh ~host ~prog
           ~argv:
             ([
                string_of_int rank;
                string_of_int nprocs;
                string_of_int base_port;
                string_of_int rpn;
                string_of_int ctx.node_id;
                string_of_int (control_port base_port);
              ]
             @ extra))
    done

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot -> (
      ignore (Workload_mem.alloc ctx ~bytes:10_000_000 ~mix:Workload_mem.mostly_code ~seed:999);
      let rt, nprocs, rpn, base_port, _, _ = parse ctx in
      let lfd = ctx.socket () in
      (match ctx.bind lfd ~port:(control_port base_port) with Ok _ -> () | Error _ -> ());
      ignore (ctx.listen lfd ~backlog:(nprocs + 8));
      match rt with
      | "openmpi" ->
        (* start an orted on every node used, star-connected to us *)
        let nnodes = nodes_used nprocs rpn in
        for nodei = 0 to nnodes - 1 do
          ignore
            (ctx.ssh ~host:nodei ~prog:Orted.name
               ~argv:[ string_of_int ctx.node_id; string_of_int (control_port base_port) ])
        done;
        Simos.Program.Block
          (Wait_orted { lfd; fds = []; want = nnodes }, Simos.Program.Readable lfd)
      | _ -> Simos.Program.Continue (Spawn { lfd; daemon_fds = [] }))
    | Wait_orted { lfd; fds; want } ->
      let rec accept_all fds =
        match ctx.accept lfd with
        | Some fd -> accept_all (fd :: fds)
        | None -> fds
      in
      let fds = accept_all fds in
      if List.length fds >= want then Simos.Program.Continue (Spawn { lfd; daemon_fds = fds })
      else Simos.Program.Block (Wait_orted { lfd; fds; want }, Simos.Program.Readable lfd)
    | Spawn { lfd; daemon_fds } ->
      spawn_ranks ctx;
      Simos.Program.Block
        ( Await { lfd; daemon_fds; done_fds = []; finished = 0 },
          Simos.Program.Readable lfd )
    | Await { lfd; daemon_fds; done_fds; finished } ->
      let _, nprocs, _, _, _, _ = parse ctx in
      let rec accept_all acc =
        match ctx.accept lfd with
        | Some fd -> accept_all ((fd, "") :: acc)
        | None -> acc
      in
      let done_fds = accept_all done_fds in
      let finished = ref finished in
      let done_fds =
        List.filter_map
          (fun (fd, buf) ->
            match ctx.read_fd fd ~max:64 with
            | `Data d ->
              let buf = buf ^ d in
              if String.length buf >= 5 then begin
                incr finished;
                ctx.close_fd fd;
                None
              end
              else Some (fd, buf)
            | `Eof ->
              ctx.close_fd fd;
              None
            | `Would_block | `Err _ -> Some (fd, buf))
          done_fds
      in
      if !finished >= nprocs then begin
        (* tear down daemons by closing their control links *)
        List.iter (fun fd -> ctx.close_fd fd) daemon_fds;
        Simos.Program.Exit 0
      end
      else
        Simos.Program.Block
          ( Await { lfd; daemon_fds; done_fds; finished = !finished },
            Simos.Program.Readable_any (lfd :: List.map fst done_fds) )
end

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    List.iter Simos.Program.register
      [
        (module Mpd : Simos.Program.S);
        (module Mpdboot);
        (module Orted);
        (module Mpirun);
      ]
  end
