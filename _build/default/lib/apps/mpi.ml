module W = Util.Codec.Writer
module R = Util.Codec.Reader

type t = {
  rank : int;
  size : int;
  base_port : int;
  ranks_per_node : int;
  neighbors : int list;
  mutable listen_fd : int;
  mutable peer_fd : int array;
  mutable pending_conn : (int * int) list;    (* (peer rank, fd) *)
  mutable pending_accept : (int * string) list;  (* (fd, partial rank header) *)
  mutable out_bufs : string array;
  mutable in_bufs : string array;
  mutable inbox : (char * string) list array;  (* FIFO, oldest first *)
}

let create ~rank ~size ~base_port ~ranks_per_node ~neighbors =
  (* rank 0 is everyone's neighbour (collectives are rooted there), so by
     symmetry rank 0 neighbours every rank *)
  let neighbors =
    if rank = 0 then List.init (size - 1) (fun i -> i + 1)
    else
      List.sort_uniq compare (0 :: neighbors)
      |> List.filter (fun r -> r <> rank && r >= 0 && r < size)
  in
  {
    rank;
    size;
    base_port;
    ranks_per_node;
    neighbors;
    listen_fd = -1;
    peer_fd = Array.make size (-1);
    pending_conn = [];
    pending_accept = [];
    out_bufs = Array.make size "";
    in_bufs = Array.make size "";
    inbox = Array.make size [];
  }

let rank t = t.rank
let size t = t.size
let host_of_rank t r = r / t.ranks_per_node
let port_of_rank t r = t.base_port + r

(* 4-byte little-endian int *)
let put_u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let get_u32 s off = Int32.to_int (String.get_int32_le s off)

let start_connect (ctx : Simos.Program.ctx) t peer =
  let fd = ctx.socket () in
  (match
     ctx.connect fd
       (Simnet.Addr.Inet { host = host_of_rank t peer; port = port_of_rank t peer })
   with
  | Ok () -> t.pending_conn <- (peer, fd) :: t.pending_conn
  | Error _ -> ctx.close_fd fd)

let init_step (ctx : Simos.Program.ctx) t =
  if t.listen_fd < 0 then begin
    let fd = ctx.socket () in
    (match ctx.bind fd ~port:(port_of_rank t t.rank) with
    | Ok _ -> ()
    | Error _ -> failwith "Mpi: cannot bind rank port");
    (match ctx.listen fd ~backlog:(t.size + 4) with
    | Ok () -> ()
    | Error _ -> failwith "Mpi: cannot listen");
    t.listen_fd <- fd;
    (* eager connections to lower-rank neighbours *)
    List.iter (fun peer -> if peer < t.rank then start_connect ctx t peer) t.neighbors
  end;
  (* progress outgoing connections *)
  t.pending_conn <-
    List.filter
      (fun (peer, fd) ->
        match ctx.sock_state fd with
        | Some Simnet.Fabric.Established ->
          ignore (ctx.write_fd fd (put_u32 t.rank));
          t.peer_fd.(peer) <- fd;
          false
        | Some Simnet.Fabric.Connecting -> true
        | _ ->
          (* refused: the peer's listener is not up yet; retry *)
          ctx.close_fd fd;
          start_connect ctx t peer;
          false)
      t.pending_conn;
  (* accept incoming *)
  let rec accept_all () =
    match ctx.accept t.listen_fd with
    | Some fd ->
      t.pending_accept <- (fd, "") :: t.pending_accept;
      accept_all ()
    | None -> ()
  in
  accept_all ();
  t.pending_accept <-
    List.filter_map
      (fun (fd, hdr) ->
        match ctx.read_fd fd ~max:(4 - String.length hdr) with
        | `Data d ->
          let hdr = hdr ^ d in
          if String.length hdr >= 4 then begin
            t.peer_fd.(get_u32 hdr 0) <- fd;
            None
          end
          else Some (fd, hdr)
        | `Eof ->
          ctx.close_fd fd;
          None
        | `Would_block | `Err _ -> Some (fd, hdr))
      t.pending_accept;
  let ready = List.for_all (fun peer -> t.peer_fd.(peer) >= 0) t.neighbors in
  if ready then `Ready else `Pending

let frame ~tag payload = put_u32 (String.length payload + 1) ^ String.make 1 tag ^ payload

let send t ~dst ~tag payload = t.out_bufs.(dst) <- t.out_bufs.(dst) ^ frame ~tag payload

let progress (ctx : Simos.Program.ctx) t =
  List.iter
    (fun peer ->
      (* flush pending output *)
      let buf = t.out_bufs.(peer) in
      if buf <> "" && t.peer_fd.(peer) >= 0 then begin
        match ctx.write_fd t.peer_fd.(peer) buf with
        | Ok n -> t.out_bufs.(peer) <- String.sub buf n (String.length buf - n)
        | Error _ -> ()
      end;
      (* read input *)
      if t.peer_fd.(peer) >= 0 then begin
        let continue = ref true in
        while !continue do
          match ctx.read_fd t.peer_fd.(peer) ~max:65536 with
          | `Data d -> t.in_bufs.(peer) <- t.in_bufs.(peer) ^ d
          | `Eof | `Would_block | `Err _ -> continue := false
        done;
        (* parse complete frames *)
        let buf = ref t.in_bufs.(peer) in
        let again = ref true in
        while !again do
          if String.length !buf >= 4 then begin
            let len = get_u32 !buf 0 in
            if String.length !buf >= 4 + len then begin
              let tag = !buf.[4] in
              let payload = String.sub !buf 5 (len - 1) in
              t.inbox.(peer) <- t.inbox.(peer) @ [ (tag, payload) ];
              buf := String.sub !buf (4 + len) (String.length !buf - 4 - len)
            end
            else again := false
          end
          else again := false
        done;
        t.in_bufs.(peer) <- !buf
      end)
    t.neighbors

let recv t ~src ~tag =
  let rec take acc = function
    | [] -> None
    | (tg, payload) :: rest when tg = tag ->
      t.inbox.(src) <- List.rev_append acc rest;
      Some payload
    | m :: rest -> take (m :: acc) rest
  in
  take [] t.inbox.(src)

let recv_any t ~tag =
  let rec go = function
    | [] -> None
    | src :: rest -> (
      match recv t ~src ~tag with
      | Some payload -> Some (src, payload)
      | None -> go rest)
  in
  go t.neighbors

let pending_out t ~dst = String.length t.out_bufs.(dst)

let wait (ctx : Simos.Program.ctx) t =
  ignore ctx;
  let flushing = List.exists (fun p -> t.out_bufs.(p) <> "") t.neighbors in
  if flushing then Simos.Program.Sleep_until (ctx.now () +. 1e-3)
  else begin
    let fds = List.filter_map (fun p -> if t.peer_fd.(p) >= 0 then Some t.peer_fd.(p) else None) t.neighbors in
    Simos.Program.Readable_any (if t.listen_fd >= 0 then t.listen_fd :: fds else fds)
  end

(* ------------------------------------------------------------------ *)
(* Collectives: star rooted at rank 0; tags 'g' (gather) and 'r'
   (release) are reserved. *)

let f64_str v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Bytes.unsafe_to_string b

let str_f64 s = Int64.float_of_bits (String.get_int64_le s 0)

module Coll = struct
  type op = Barrier | Sum of float | Bcast of float option

  let barrier = Barrier
  let allreduce_sum v = Sum v
  let bcast ~root_value = Bcast root_value

  type st = {
    kind : int;  (* 0 barrier, 1 sum, 2 bcast *)
    value : float;
    mutable phase : int;  (* 0 not started, 1 gathering/waiting *)
    mutable got : int;
    mutable acc : float;
  }

  let start = function
    | Barrier -> { kind = 0; value = 0.; phase = 0; got = 0; acc = 0. }
    | Sum v -> { kind = 1; value = v; phase = 0; got = 0; acc = 0. }
    | Bcast v ->
      { kind = 2; value = Option.value ~default:0. v; phase = 0; got = 0; acc = 0. }

  let step (ctx : Simos.Program.ctx) comm st =
    progress ctx comm;
    if comm.size = 1 then `Done st.value
    else if comm.rank <> 0 then begin
      if st.phase = 0 then begin
        send comm ~dst:0 ~tag:'g' (f64_str st.value);
        st.phase <- 1
      end;
      progress ctx comm;
      match recv comm ~src:0 ~tag:'r' with
      | Some payload -> `Done (str_f64 payload)
      | None -> `Pending
    end
    else begin
      if st.phase = 0 then begin
        st.phase <- 1;
        st.got <- 1;
        st.acc <- st.value
      end;
      let continue = ref true in
      while !continue do
        match recv_any comm ~tag:'g' with
        | Some (_, payload) ->
          st.got <- st.got + 1;
          st.acc <- st.acc +. str_f64 payload
        | None -> continue := false
      done;
      if st.got >= comm.size then begin
        let result = if st.kind = 2 then st.value else st.acc in
        for r = 1 to comm.size - 1 do
          send comm ~dst:r ~tag:'r' (f64_str result)
        done;
        progress ctx comm;
        `Done result
      end
      else `Pending
    end

  let encode w st =
    W.uvarint w st.kind;
    W.f64 w st.value;
    W.uvarint w st.phase;
    W.uvarint w st.got;
    W.f64 w st.acc

  let decode r =
    let kind = R.uvarint r in
    let value = R.f64 r in
    let phase = R.uvarint r in
    let got = R.uvarint r in
    let acc = R.f64 r in
    { kind; value; phase; got; acc }
end

(* ------------------------------------------------------------------ *)

let encode w t =
  W.uvarint w t.rank;
  W.uvarint w t.size;
  W.uvarint w t.base_port;
  W.uvarint w t.ranks_per_node;
  W.list W.uvarint w t.neighbors;
  W.varint w t.listen_fd;
  W.array W.varint w t.peer_fd;
  W.list (W.pair W.uvarint W.varint) w t.pending_conn;
  W.list (W.pair W.varint W.string) w t.pending_accept;
  W.array W.string w t.out_bufs;
  W.array W.string w t.in_bufs;
  W.array
    (fun w msgs ->
      W.list
        (fun w (tag, payload) ->
          W.u8 w (Char.code tag);
          W.string w payload)
        w msgs)
    w t.inbox

let decode r =
  let rank = R.uvarint r in
  let size = R.uvarint r in
  let base_port = R.uvarint r in
  let ranks_per_node = R.uvarint r in
  let neighbors = R.list R.uvarint r in
  let listen_fd = R.varint r in
  let peer_fd = R.array R.varint r in
  let pending_conn = R.list (R.pair R.uvarint R.varint) r in
  let pending_accept = R.list (R.pair R.varint R.string) r in
  let out_bufs = R.array R.string r in
  let in_bufs = R.array R.string r in
  let inbox =
    R.array
      (fun r ->
        R.list
          (fun r ->
            let tag = Char.chr (R.u8 r) in
            let payload = R.string r in
            (tag, payload))
          r)
      r
  in
  {
    rank;
    size;
    base_port;
    ranks_per_node;
    neighbors;
    listen_fd;
    peer_fd;
    pending_conn;
    pending_accept;
    out_bufs;
    in_bufs;
    inbox;
  }
