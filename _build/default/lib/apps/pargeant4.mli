(** ParGeant4: a TOP-C-style master/worker task farm (paper §5.2), the
    scaling workload of Figure 5.

    Rank 0 is the TOP-C master holding the event queue; workers request
    events, simulate them (compute whose cost varies per event), and
    return partial sums.  Verification: the master recomputes the total
    independently and compares — any event lost or double-processed
    across a checkpoint or restart breaks it.

    Program ["apps:pargeant4"]; extra rank argv: [[nevents]]. *)

val register : unit -> unit

val prog_name : string

(** Per-rank memory footprint (bytes), for the harness. *)
val mem_bytes : int
