(** Helpers for giving workloads realistic memory footprints.

    Applications allocate regions whose pages are synthetic descriptors of
    chosen entropy classes, so a 680 MB runCMS image costs a few hundred
    bytes of simulator memory while the checkpointer still sees (and
    prices) the full footprint, with compression ratios calibrated against
    the real codec (see {!Mem.Entropy}). *)

(** Fractions of each content class; they should sum to <= 1, the
    remainder being untouched zero pages. *)
type mix = { f_text : float; f_code : float; f_numeric : float; f_random : float }

val mostly_code : mix
val mostly_numeric : mix
val mostly_text : mix
val all_random : mix
val all_zero : mix

(** [alloc ctx ~bytes ~mix ~seed] maps a region of [bytes] and populates
    its pages per [mix]. Deterministic in [seed]. *)
val alloc : Simos.Program.ctx -> bytes:int -> mix:mix -> seed:int -> Mem.Region.t
