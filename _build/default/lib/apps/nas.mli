(** NAS-parallel-benchmark-style kernels (paper §5.2, Figure 4).

    Each is a *real* distributed computation at reduced scale — actual
    conjugate gradient, bucket sort, multigrid, and sweep solvers with
    verified answers — running over {!Mpi} with the memory footprint of
    its class-C counterpart supplied as synthetic pages.  A checkpoint
    can land at any point (mid-collective, mid-halo-exchange) and the
    kernel must still verify after resume or restart; rank 0 writes
    ["<KERNEL> VERIFIED <value>"] (or [FAILED]) to
    [/result/<kernel>-<base_port>].

    Registered programs (all take the standard rank argv of
    {!Launchers.parse_rank_args}, plus kernel-specific extras):

    - ["nas:baseline"] — the "hello world" used to price checkpointing a
      bare MPI runtime;
    - ["nas:ep"] — embarrassingly parallel Monte Carlo;
    - ["nas:is"] — integer bucket sort with all-to-all exchange and
      deliberately over-provisioned (zero-filled) buckets, the paper's
      compression anomaly;
    - ["nas:cg"] — conjugate gradient on a distributed tridiagonal
      system, halo exchanges plus allreduce dot products;
    - ["nas:mg"] — V-cycle multigrid for 1-D Poisson, distributed Jacobi
      smoothing with a gathered coarse solve;
    - ["nas:lu"] — pipelined forward/backward Gauss–Seidel (SSOR) sweeps;
    - ["nas:sp"] — ADI-style sweeps with a scalar pentadiagonal solver;
    - ["nas:bt"] — the same with 3x3 block-tridiagonal lines. *)

val register : unit -> unit

(** {2 Kernel framework} — reused by other rank programs (ParGeant4,
    iPython demo, the Figure-6 synthetic workload). *)

(** Outcome of one kernel step. *)
type 'k kout =
  | K_compute of 'k * float  (** burn CPU seconds *)
  | K_wait of 'k             (** block until communication progresses *)
  | K_done of float * bool   (** (result value, verified) *)

module type KERNEL = sig
  type kstate

  val prog_name : string
  val short : string
  val mem_bytes : int
  val mem_mix : Workload_mem.mix
  val neighbors : rank:int -> size:int -> int list
  val kinit : rank:int -> size:int -> extra:string list -> kstate
  val encode_k : Util.Codec.Writer.t -> kstate -> unit
  val decode_k : Util.Codec.Reader.t -> kstate
  val kstep : Simos.Program.ctx -> Mpi.t -> kstate -> kstate kout
end

(** Wrap a kernel as a rank program: boot (parse rank argv, allocate the
    memory footprint), MPI init, kernel loop, result file write (rank 0),
    completion notification to mpirun. *)
module Make (_ : KERNEL) : Simos.Program.S

(** (program name, per-rank uncompressed memory bytes) for each kernel,
    as used by the harness to set up Figure 4. *)
val catalog : (string * int) list
