(** MPI runtimes: the resource-manager processes that the paper
    emphasizes are checkpointed *together with* the computation (§3: "the
    MPI resource management processes are also checkpointed").

    Two runtimes, mirroring the evaluation:
    - MPICH2-style: a ring of [mpd] daemons (one per node, connected to
      the next node's daemon over TCP), booted by [mpdboot];
    - OpenMPI-style: per-node [orted] daemons connected in a star to the
      [mpirun] process (OpenRTE).

    [mpirun] sshes one rank process per slot; under DMTCP the ssh wrapper
    makes the remote processes hijacked automatically.  Rank programs
    receive argv [rank size base_port ranks_per_node notify_host
    notify_port ...extra] and report completion to [mpirun]'s control
    socket.

    Programs registered: ["mpi:mpd"], ["mpi:mpdboot"], ["mpi:orted"],
    ["mpi:mpirun"]. *)

val register : unit -> unit

(** Parse the standard rank-argv prefix:
    (rank, size, base_port, ranks_per_node, notify_host, notify_port,
    extra args). *)
val parse_rank_args :
  string list -> int * int * int * int * int * int * string list

(** Sub-state machine used by rank programs to notify [mpirun] when they
    finish: drive {!notify_step} until [`Done]. *)
type notify

val notify_start : host:int -> port:int -> notify
val notify_step : Simos.Program.ctx -> notify -> [ `Done | `Pending ]
val encode_notify : Util.Codec.Writer.t -> notify -> unit
val decode_notify : Util.Codec.Reader.t -> notify
