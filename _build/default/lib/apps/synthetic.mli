(** The Figure-6 workload: "a synthetic OpenMPI program allocating random
    data", used to measure checkpoint/restart time as total memory grows.

    Each rank allocates [mb] MB of incompressible pages and then loops:
    a barrier, a slab of compute, repeat — long enough for checkpoints to
    land wherever they like.  Rank program ["apps:synthetic"];
    extra argv: [[mb; rounds]]. *)

val register : unit -> unit

val prog_name : string
