module W = Util.Codec.Writer
module R = Util.Codec.Reader

let prog_name = "apps:synthetic"

module K = struct
  type kstate = {
    mb : int;
    rounds : int;
    round : int;
    allocated : bool;
    coll : Mpi.Coll.st option;
  }

  let prog_name = prog_name
  let short = "synthetic"

  (* the footprint is allocated from kstep (it is argv-dependent), so the
     framework-level allocation is a token amount *)
  let mem_bytes = 1_000_000
  let mem_mix = Workload_mem.mostly_code
  let neighbors ~rank:_ ~size:_ = []

  let kinit ~rank:_ ~size:_ ~extra =
    let mb, rounds =
      match extra with
      | [ mb ] -> (int_of_string mb, 10_000)
      | mb :: rounds :: _ -> (int_of_string mb, int_of_string rounds)
      | [] -> (64, 10_000)
    in
    { mb; rounds; round = 0; allocated = false; coll = None }

  let encode_k w k =
    W.uvarint w k.mb;
    W.uvarint w k.rounds;
    W.uvarint w k.round;
    W.bool w k.allocated;
    W.option Mpi.Coll.encode w k.coll

  let decode_k r =
    let mb = R.uvarint r in
    let rounds = R.uvarint r in
    let round = R.uvarint r in
    let allocated = R.bool r in
    let coll = R.option Mpi.Coll.decode r in
    { mb; rounds; round; allocated; coll }

  let kstep ctx comm k =
    if not k.allocated then begin
      ignore
        (Workload_mem.alloc ctx ~bytes:(k.mb * 1_000_000) ~mix:Workload_mem.all_random
           ~seed:(Mpi.rank comm + 1));
      Nas.K_compute ({ k with allocated = true }, float_of_int k.mb *. 1e-4)
    end
    else
      match k.coll with
      | Some coll -> (
        match Mpi.Coll.step ctx comm coll with
        | `Done _ ->
          if k.round + 1 >= k.rounds then Nas.K_done (float_of_int k.round, true)
          else Nas.K_compute ({ k with coll = None; round = k.round + 1 }, 20e-3)
        | `Pending -> Nas.K_wait { k with coll = Some coll })
      | None -> Nas.K_compute ({ k with coll = Some (Mpi.Coll.start Mpi.Coll.barrier) }, 1e-4)
end

module P = Nas.Make (K)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module P : Simos.Program.S)
  end
