let register_all () =
  Launchers.register ();
  Nas.register ();
  Pargeant4.register ();
  Ipython.register ();
  Synthetic.register ();
  Desktop.register ();
  Flood.register ()
