(** A message-passing library over the simulated cluster's TCP sockets —
    the stand-in for MPICH2/OpenMPI in the paper's evaluation.

    DMTCP deliberately knows nothing about it: checkpoints see only the
    sockets it creates, which is the paper's whole point (no MPI-specific
    checkpoint hooks).  The library lives *inside* application state
    machines: a {!t} value is part of the program state and fully
    serializable, so a checkpoint taken mid-collective restores and
    completes correctly.

    Topology: rank [r] listens on [base_port + r] of node
    [r / ranks_per_node] and eagerly connects to every lower-rank
    neighbour at init; the neighbour relation must be symmetric.
    Collectives (barrier, allreduce, bcast) run over a star rooted at
    rank 0, so rank 0 must be a neighbour of everyone. *)

type t

(** [create ~rank ~size ~base_port ~ranks_per_node ~neighbors] prepares a
    communicator; drive {!init_step} until [`Ready].  [neighbors] lists
    the peer ranks this rank communicates with (symmetric; rank 0 is
    added automatically). *)
val create :
  rank:int -> size:int -> base_port:int -> ranks_per_node:int -> neighbors:int list -> t

val rank : t -> int
val size : t -> int

(** Node hosting a rank under this communicator's placement. *)
val host_of_rank : t -> int -> int

(** Progress connection establishment. *)
val init_step : Simos.Program.ctx -> t -> [ `Ready | `Pending ]

(** Queue a message to [dst] (a neighbour). Never blocks; bytes drain via
    {!progress}. *)
val send : t -> dst:int -> tag:char -> string -> unit

(** Push queued bytes out and parse arrived frames into per-peer inboxes.
    Call once per step before receiving. *)
val progress : Simos.Program.ctx -> t -> unit

(** Take the oldest message with [tag] from [src], if present. *)
val recv : t -> src:int -> tag:char -> string option

(** Take the oldest message with [tag] from any source. *)
val recv_any : t -> tag:char -> (int * string) option

(** Bytes queued toward [dst] that have not yet entered the socket
    (application-level backpressure signal). *)
val pending_out : t -> dst:int -> int

(** The wait condition to block on when nothing can progress. *)
val wait : Simos.Program.ctx -> t -> Simos.Program.wait

(** 8-byte float payload helpers (halo exchanges etc.). *)
val f64_str : float -> string

val str_f64 : string -> float

(** {2 Collectives} — serializable sub-state machines.  Drive with
    [step] until [`Done]; exactly one collective of a given kind may be
    in flight at a time per communicator. *)

module Coll : sig
  type op

  val barrier : op
  val allreduce_sum : float -> op
  val bcast : root_value:float option -> op
    (** root passes [Some v], others [None] *)

  type st

  val start : op -> st
  val step : Simos.Program.ctx -> t -> st -> [ `Done of float | `Pending ]

  val encode : Util.Codec.Writer.t -> st -> unit
  val decode : Util.Codec.Reader.t -> st
end

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
