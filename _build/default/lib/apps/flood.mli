(** A deliberately congested producer/consumer pair used by the drain
    ablation: even ranks stream data to odd ranks that read slowly, so at
    checkpoint time the socket buffers (send, in-flight, receive) are
    full and the drain stage has real work to do.

    Rank program ["apps:flood"]; extra argv: [[read_interval_ms]]. *)

val register : unit -> unit

val prog_name : string
