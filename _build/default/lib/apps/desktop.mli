(** The Figure-3 desktop catalog: the paper's 21 "common shell-like
    languages and other applications", plus the runCMS image (§5.1).

    Each application is modelled as a process (sometimes a small process
    *tree*, e.g. TightVNC+TWM or vim/cscope) with the real package's
    resident-size and content profile: an interpreter is text-heavy, a
    numerics environment is float-heavy, runCMS is 680 MB across 540
    library-like mappings.  Interactive ones own a pty with a prompt
    sitting in the output queue, so pty drain/refill is exercised by
    every Figure-3 run.

    Programs: ["apps:desktop"] (argv: [[profile-name]]) and
    ["apps:desktop-worker"] (helper threads of multithreaded apps). *)

type profile = {
  p_name : string;
  mb : float;
  mix : Workload_mem.mix;
  threads : int;           (** additional worker threads *)
  children : string list;  (** child profiles forked under this app *)
  pty : bool;
  regions : int;           (** mapped regions (libraries etc.) *)
}

(** The 21 applications of Figure 3, in the paper's (alphabetical)
    order. *)
val figure3 : profile list

(** §5.1's runCMS: 680 MB, 540 dynamic libraries. *)
val runcms : profile

val find : string -> profile option
val register : unit -> unit
val prog_name : string
