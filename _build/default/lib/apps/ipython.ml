module W = Util.Codec.Writer
module R = Util.Codec.Reader

let shell_name = "apps:ipython-shell"
let demo_name = "apps:ipython-demo"
let shell_mem_bytes = 28_000_000
let demo_mem_bytes = 35_000_000

(* ------------------------------------------------------------------ *)
(* shell: single process, pty + heap, idle *)

module Shell = struct
  type state = S_boot | S_idle of int  (* slave fd *)

  let name = shell_name

  let encode w = function
    | S_boot -> W.u8 w 0
    | S_idle fd ->
      W.u8 w 1;
      W.varint w fd

  let decode r =
    match R.u8 r with
    | 0 -> S_boot
    | _ -> S_idle (R.varint r)

  let init ~argv:_ = S_boot

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | S_boot ->
      ignore (Workload_mem.alloc ctx ~bytes:shell_mem_bytes ~mix:Workload_mem.mostly_text ~seed:1234);
      let _master, slave = ctx.open_pty () in
      ignore (ctx.write_fd slave "In [1]: ");
      Simos.Program.Block (S_idle slave, Simos.Program.Readable slave)
    | S_idle fd -> (
      (* echo any typed input back, readline-style *)
      match ctx.read_fd fd ~max:4096 with
      | `Data d ->
        ignore (ctx.write_fd fd d);
        Simos.Program.Block (st, Simos.Program.Readable fd)
      | `Eof -> Simos.Program.Exit 0
      | `Would_block | `Err _ -> Simos.Program.Block (st, Simos.Program.Readable fd))
end

(* ------------------------------------------------------------------ *)
(* demo: controller/engines over raw sockets (via the Mpi transport,
   which is itself plain sockets) *)

let task_value t = sqrt (float_of_int t) +. 1.0

module Demo_kernel = struct
  type master = { ntasks : int; next : int; got : int; acc : float; idle : int list }

  type kstate =
    | Controller of master
    | Engine

  let prog_name = demo_name
  let short = "ipython-demo"
  let mem_bytes = demo_mem_bytes
  let mem_mix = Workload_mem.mostly_text
  let neighbors ~rank:_ ~size:_ = []

  let kinit ~rank ~size:_ ~extra =
    let ntasks = match extra with s :: _ -> int_of_string s | [] -> 400 in
    if rank = 0 then Controller { ntasks; next = 0; got = 0; acc = 0.; idle = [] } else Engine

  let encode_k w = function
    | Controller { ntasks; next; got; acc; idle } ->
      W.u8 w 0;
      W.uvarint w ntasks;
      W.uvarint w next;
      W.uvarint w got;
      W.f64 w acc;
      W.list W.uvarint w idle
    | Engine -> W.u8 w 1

  let decode_k r =
    match R.u8 r with
    | 0 ->
      let ntasks = R.uvarint r in
      let next = R.uvarint r in
      let got = R.uvarint r in
      let acc = R.f64 r in
      let idle = R.list R.uvarint r in
      Controller { ntasks; next; got; acc; idle }
    | _ -> Engine

  let kstep ctx comm k =
    let size = Mpi.size comm in
    match k with
    | Controller m ->
      let m = ref m in
      let progressed = ref true in
      while !progressed do
        progressed := false;
        (match Mpi.recv_any comm ~tag:'q' with
        | Some (src, _) ->
          m := { !m with idle = src :: !m.idle };
          progressed := true
        | None -> ());
        match Mpi.recv_any comm ~tag:'r' with
        | Some (src, payload) ->
          m := { !m with acc = !m.acc +. Mpi.str_f64 payload; got = !m.got + 1; idle = src :: !m.idle };
          progressed := true
        | None -> ()
      done;
      let m2 = ref !m in
      List.iter
        (fun engine ->
          if !m2.next < !m2.ntasks then begin
            Mpi.send comm ~dst:engine ~tag:'t' (Mpi.f64_str (float_of_int !m2.next));
            m2 :=
              { !m2 with next = !m2.next + 1; idle = List.filter (fun e -> e <> engine) !m2.idle }
          end)
        !m2.idle;
      Mpi.progress ctx comm;
      let m = !m2 in
      if m.got >= m.ntasks then begin
        for dst = 1 to size - 1 do
          Mpi.send comm ~dst ~tag:'x' ""
        done;
        Mpi.progress ctx comm;
        let expected = ref 0. in
        for t = 0 to m.ntasks - 1 do
          expected := !expected +. task_value t
        done;
        Nas.K_done (m.acc, Float.abs (m.acc -. !expected) < 1e-9 *. !expected)
      end
      else Nas.K_wait (Controller m)
    | Engine -> (
      match Mpi.recv comm ~src:0 ~tag:'x' with
      | Some _ -> Nas.K_done (0., true)
      | None -> (
        match Mpi.recv comm ~src:0 ~tag:'t' with
        | Some payload ->
          let t = int_of_float (Mpi.str_f64 payload) in
          Mpi.send comm ~dst:0 ~tag:'r' (Mpi.f64_str (task_value t));
          Mpi.progress ctx comm;
          Nas.K_compute (Engine, 2e-3)
        | None ->
          Mpi.send comm ~dst:0 ~tag:'q' "";
          Mpi.progress ctx comm;
          Nas.K_wait Engine))
end

module Demo = Nas.Make (Demo_kernel)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module Shell : Simos.Program.S);
    Simos.Program.register (module Demo : Simos.Program.S)
  end
