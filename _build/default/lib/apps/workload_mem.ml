type mix = { f_text : float; f_code : float; f_numeric : float; f_random : float }

let mostly_code = { f_text = 0.15; f_code = 0.55; f_numeric = 0.1; f_random = 0.1 }
let mostly_numeric = { f_text = 0.05; f_code = 0.15; f_numeric = 0.6; f_random = 0.1 }
let mostly_text = { f_text = 0.55; f_code = 0.15; f_numeric = 0.05; f_random = 0.1 }
let all_random = { f_text = 0.; f_code = 0.; f_numeric = 0.; f_random = 1.0 }
let all_zero = { f_text = 0.; f_code = 0.; f_numeric = 0.; f_random = 0. }

let alloc (ctx : Simos.Program.ctx) ~bytes ~mix ~seed =
  let region = ctx.mmap ~bytes ~kind:Mem.Region.Mmap_anon in
  let npages = Mem.Region.npages region in
  let f = float_of_int npages in
  let n_text = int_of_float (f *. mix.f_text) in
  let n_code = int_of_float (f *. mix.f_code) in
  let n_numeric = int_of_float (f *. mix.f_numeric) in
  let n_random = int_of_float (f *. mix.f_random) in
  let page_seed i = Int64.add (Int64.mul (Int64.of_int seed) 0x100000L) (Int64.of_int i) in
  for i = 0 to npages - 1 do
    let cls =
      if i < n_text then Some Mem.Entropy.Text
      else if i < n_text + n_code then Some Mem.Entropy.Code
      else if i < n_text + n_code + n_numeric then Some Mem.Entropy.Numeric
      else if i < n_text + n_code + n_numeric + n_random then Some Mem.Entropy.Random
      else None (* untouched zero page *)
    in
    match cls with
    | Some cls -> Mem.Region.set_page region i (Mem.Page.Synthetic { seed = page_seed i; cls })
    | None -> ()
  done;
  region
