module W = Util.Codec.Writer
module R = Util.Codec.Reader

let prog_name = "apps:pargeant4"
let mem_bytes = 30_000_000

(* the "physics": a deterministic per-event result, so the master can
   verify the farmed total exactly *)
let event_value e =
  let x = float_of_int e in
  Float.abs (sin (x *. 0.7)) +. (0.001 *. x)

let event_cost e = 4e-3 +. (3e-3 *. Float.abs (cos (float_of_int e)))

module K = struct
  type master = {
    nevents : int;
    repeats : int;  (* re-run the farm, for long-running scaling tests *)
    next : int;
    returned : int;
    acc : float;
    idle : int list;  (* workers awaiting a task *)
    outstanding : int;
  }

  type kstate =
    | Master of master
    | Worker of { current : int option; quit : bool }

  let prog_name = prog_name
  let short = "pargeant4"
  let mem_bytes = mem_bytes
  let mem_mix = Workload_mem.mostly_code
  let neighbors ~rank:_ ~size:_ = []  (* star to rank 0, as TOP-C does *)

  let kinit ~rank ~size:_ ~extra =
    let nevents, repeats =
      match extra with
      | [ n ] -> (int_of_string n, 1)
      | n :: rep :: _ -> (int_of_string n, int_of_string rep)
      | [] -> (600, 1)
    in
    if rank = 0 then
      Master { nevents; repeats; next = 0; returned = 0; acc = 0.; idle = []; outstanding = 0 }
    else Worker { current = None; quit = false }

  let encode_k w = function
    | Master { nevents; repeats; next; returned; acc; idle; outstanding } ->
      W.u8 w 0;
      W.uvarint w nevents;
      W.uvarint w repeats;
      W.uvarint w next;
      W.uvarint w returned;
      W.f64 w acc;
      W.list W.uvarint w idle;
      W.uvarint w outstanding
    | Worker { current; quit } ->
      W.u8 w 1;
      W.option W.uvarint w current;
      W.bool w quit

  let decode_k r =
    match R.u8 r with
    | 0 ->
      let nevents = R.uvarint r in
      let repeats = R.uvarint r in
      let next = R.uvarint r in
      let returned = R.uvarint r in
      let acc = R.f64 r in
      let idle = R.list R.uvarint r in
      let outstanding = R.uvarint r in
      Master { nevents; repeats; next; returned; acc; idle; outstanding }
    | _ ->
      let current = R.option R.uvarint r in
      let quit = R.bool r in
      Worker { current; quit }

  let kstep ctx comm k =
    let size = Mpi.size comm in
    match k with
    | Master m ->
      let m = ref m in
      (* collect worker requests and results *)
      let progressed = ref true in
      while !progressed do
        progressed := false;
        (match Mpi.recv_any comm ~tag:'q' with
        | Some (src, _) ->
          m := { !m with idle = src :: !m.idle };
          progressed := true
        | None -> ());
        match Mpi.recv_any comm ~tag:'r' with
        | Some (src, payload) ->
          m :=
            {
              !m with
              acc = !m.acc +. Mpi.str_f64 payload;
              returned = !m.returned + 1;
              outstanding = !m.outstanding - 1;
              idle = src :: !m.idle;
            };
          progressed := true
        | None -> ()
      done;
      (* hand out events to idle workers *)
      let m2 = ref !m in
      List.iter
        (fun worker ->
          if !m2.next < !m2.nevents then begin
            Mpi.send comm ~dst:worker ~tag:'t' (Mpi.f64_str (float_of_int !m2.next));
            m2 := { !m2 with next = !m2.next + 1; outstanding = !m2.outstanding + 1; idle = List.filter (fun w -> w <> worker) !m2.idle }
          end)
        !m2.idle;
      Mpi.progress ctx comm;
      let m = !m2 in
      if m.returned >= m.nevents && m.outstanding = 0 then begin
        let expected = ref 0. in
        for e = 0 to m.nevents - 1 do
          expected := !expected +. event_value e
        done;
        let ok = Float.abs (m.acc -. !expected) < 1e-9 *. Float.max 1. !expected in
        if ok && m.repeats > 1 then
          (* long-run mode: farm the events again *)
          Nas.K_compute
            ( Master
                { m with repeats = m.repeats - 1; next = 0; returned = 0; acc = 0.; outstanding = 0 },
              1e-5 )
        else begin
          (* tell workers to quit *)
          for dst = 1 to size - 1 do
            Mpi.send comm ~dst ~tag:'x' ""
          done;
          Mpi.progress ctx comm;
          Nas.K_done (m.acc, ok)
        end
      end
      else Nas.K_wait (Master m)
    | Worker wk -> (
      if wk.quit then Nas.K_done (0., true)
      else
        match wk.current with
        | Some e ->
          (* event simulated; return the partial result *)
          Mpi.send comm ~dst:0 ~tag:'r' (Mpi.f64_str (event_value e));
          Mpi.progress ctx comm;
          Nas.K_compute (Worker { current = None; quit = false }, 1e-6)
        | None -> (
          match Mpi.recv comm ~src:0 ~tag:'x' with
          | Some _ -> Nas.K_done (0., true)
          | None -> (
            match Mpi.recv comm ~src:0 ~tag:'t' with
            | Some payload ->
              let e = int_of_float (Mpi.str_f64 payload) in
              Nas.K_compute (Worker { current = Some e; quit = false }, event_cost e)
            | None ->
              (* announce availability exactly once per idle period *)
              Mpi.send comm ~dst:0 ~tag:'q' "";
              Mpi.progress ctx comm;
              Nas.K_wait (Worker wk))))
end

module P = Nas.Make (K)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module P : Simos.Program.S)
  end
