module W = Util.Codec.Writer
module R = Util.Codec.Reader

let prog_name = "apps:flood"

module K = struct
  type kstate = { read_interval : float; sent : int; received : int }

  let prog_name = prog_name
  let short = "flood"
  let mem_bytes = 4_000_000
  let mem_mix = Workload_mem.mostly_numeric

  (* even rank 2k streams to odd rank 2k+1 *)
  let neighbors ~rank ~size =
    if rank mod 2 = 0 then (if rank + 1 < size then [ rank + 1 ] else [])
    else [ rank - 1 ]

  let kinit ~rank:_ ~size:_ ~extra =
    let ms = match extra with s :: _ -> float_of_string s | [] -> 5.0 in
    { read_interval = ms /. 1000.; sent = 0; received = 0 }

  let encode_k w k =
    W.f64 w k.read_interval;
    W.uvarint w k.sent;
    W.uvarint w k.received

  let decode_k r =
    let read_interval = R.f64 r in
    let sent = R.uvarint r in
    let received = R.uvarint r in
    { read_interval; sent; received }

  let chunk = String.make 8192 '\x5a'

  let kstep ctx comm k =
    let rank = Mpi.rank comm and size = Mpi.size comm in
    if rank mod 2 = 0 && rank + 1 < size then begin
      (* producer: keep the pipe as full as flow control allows, without
         queueing unboundedly in user space *)
      if Mpi.pending_out comm ~dst:(rank + 1) < 65536 then begin
        Mpi.send comm ~dst:(rank + 1) ~tag:'D' chunk;
        Mpi.progress ctx comm;
        Nas.K_compute ({ k with sent = k.sent + 1 }, 1e-4)
      end
      else begin
        Mpi.progress ctx comm;
        Nas.K_compute (k, 1e-3)
      end
    end
    else if rank mod 2 = 1 then begin
      (* slow consumer *)
      match Mpi.recv comm ~src:(rank - 1) ~tag:'D' with
      | Some _ -> Nas.K_compute ({ k with received = k.received + 1 }, k.read_interval)
      | None -> Nas.K_wait k
    end
    else Nas.K_compute (k, 1.0)
end

module P = Nas.Make (K)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module P : Simos.Program.S)
  end
