module W = Util.Codec.Writer
module R = Util.Codec.Reader

let prog_name = "apps:desktop"

type profile = {
  p_name : string;
  mb : float;
  mix : Workload_mem.mix;
  threads : int;
  children : string list;
  pty : bool;
  regions : int;
}

(* Resident sizes are tuned so that the *compressed* image sizes land near
   Figure 3b (which reports sizes with compression enabled). *)
let interp name mb =
  { p_name = name; mb = mb *. 1.6; mix = Workload_mem.mostly_text; threads = 0; children = []; pty = true; regions = 6 }

let numeric name mb threads =
  { p_name = name; mb = mb *. 1.6; mix = Workload_mem.mostly_numeric; threads; children = []; pty = true; regions = 12 }

let figure3 =
  [
    interp "bc" 1.4;
    { (interp "emacs" 13.0) with mix = Workload_mem.mostly_code; regions = 20 };
    interp "ghci" 7.5;
    { (interp "ghostscript" 9.0) with mix = Workload_mem.mostly_code };
    { (numeric "gnuplot" 3.4 0) with regions = 8 };
    interp "gst" 5.0;
    { (interp "lynx" 3.2) with pty = true };
    numeric "macaulay2" 8.0 0;
    { (numeric "matlab" 34.0 3) with regions = 30 };
    interp "mzscheme" 4.2;
    interp "ocaml" 3.6;
    numeric "octave" 9.5 0;
    interp "perl" 4.1;
    interp "php" 6.0;
    interp "python" 5.2;
    interp "ruby" 4.3;
    interp "slsh" 2.4;
    interp "sqlite" 1.9;
    interp "tclsh" 2.1;
    {
      p_name = "tightvnc+twm";
      mb = 22.0;
      mix = Workload_mem.mostly_code;
      threads = 1;
      children = [ "twm"; "xterm" ];
      pty = false;
      regions = 16;
    };
    {
      p_name = "vim/cscope";
      mb = 5.5;
      mix = Workload_mem.mostly_text;
      threads = 0;
      children = [ "cscope" ];
      pty = true;
      regions = 6;
    };
  ]

(* internal child profiles *)
let extras =
  [
    { p_name = "twm"; mb = 4.0; mix = Workload_mem.mostly_code; threads = 0; children = []; pty = false; regions = 6 };
    { p_name = "xterm"; mb = 3.0; mix = Workload_mem.mostly_code; threads = 0; children = []; pty = true; regions = 5 };
    { p_name = "cscope"; mb = 1.5; mix = Workload_mem.mostly_text; threads = 0; children = []; pty = false; regions = 3 };
  ]

let runcms =
  {
    p_name = "runcms";
    mb = 680.0;
    (* 540 shared libraries: code + relocation text, with the large
       zero-filled bss/arena tail that makes the paper's image gzip to a
       third of its resident size *)
    mix = { Workload_mem.f_text = 0.15; f_code = 0.35; f_numeric = 0.05; f_random = 0.05 };
    threads = 2;
    children = [];
    pty = false;
    regions = 540;
  }

let all = figure3 @ extras @ [ runcms ]
let find name = List.find_opt (fun p -> p.p_name = name) all

(* ------------------------------------------------------------------ *)

module Worker = struct
  (* alternates bursts of compute with sleep, like a GUI helper thread *)
  type state = bool  (* just computed? *)

  let name = "apps:desktop-worker"
  let encode w b = W.bool w b
  let decode r = R.bool r
  let init ~argv:_ = false

  let step (ctx : Simos.Program.ctx) computed =
    if computed then Simos.Program.Block (false, Simos.Program.Sleep_until (ctx.now () +. 0.2))
    else Simos.Program.Compute (true, 2e-3)
end

module App = struct
  type state =
    | D_boot
    | D_forking of int * string list  (* (pty fd, children left to fork) *)
    | D_child of string               (* child profile to boot as *)
    | D_idle of { pty_fd : int }

  let name = prog_name

  let encode w = function
    | D_boot -> W.u8 w 0
    | D_forking (pty_fd, rest) ->
      W.u8 w 1;
      W.varint w pty_fd;
      W.list W.string w rest
    | D_child p ->
      W.u8 w 2;
      W.string w p
    | D_idle { pty_fd } ->
      W.u8 w 3;
      W.varint w pty_fd

  let decode r =
    match R.u8 r with
    | 0 -> D_boot
    | 1 ->
      let pty_fd = R.varint r in
      D_forking (pty_fd, R.list R.string r)
    | 2 -> D_child (R.string r)
    | _ -> D_idle { pty_fd = R.varint r }

  let init ~argv:_ = D_boot

  let profile_of (ctx : Simos.Program.ctx) st =
    let name =
      match st with
      | D_child p -> p
      | _ -> ( match ctx.argv with _ :: p :: _ -> p | _ -> "bc")
    in
    match find name with
    | Some p -> p
    | None -> interp name 4.0

  let boot (ctx : Simos.Program.ctx) profile =
    (* footprint split across library-like regions *)
    let total = int_of_float (profile.mb *. 1_000_000.) in
    let per_region = max Mem.Page.size (total / max 1 profile.regions) in
    for i = 0 to profile.regions - 1 do
      ignore
        (Workload_mem.alloc ctx ~bytes:per_region ~mix:profile.mix
           ~seed:((Hashtbl.hash profile.p_name * 97) + i))
    done;
    for _ = 1 to profile.threads do
      ignore (ctx.spawn_thread ~prog:Worker.name ~argv:[])
    done;
    let pty_fd =
      if profile.pty then begin
        let _master, slave = ctx.open_pty () in
        ignore (ctx.write_fd slave (Printf.sprintf "%s> " profile.p_name));
        slave
      end
      else -1
    in
    (* a pipe to each child, exercising pipe promotion in process trees *)
    pty_fd

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | D_boot ->
      let profile = profile_of ctx st in
      let pty_fd = boot ctx profile in
      if profile.children = [] then Simos.Program.Continue (D_idle { pty_fd })
      else Simos.Program.Continue (D_forking (pty_fd, profile.children))
    | D_forking (pty_fd, []) -> Simos.Program.Continue (D_idle { pty_fd })
    | D_forking (pty_fd, child :: rest) ->
      let _rfd, _wfd = ctx.pipe () in
      Simos.Program.Fork { parent = D_forking (pty_fd, rest); child = D_child child }
    | D_child p ->
      let profile = profile_of ctx (D_child p) in
      let pty_fd = boot ctx profile in
      Simos.Program.Continue (D_idle { pty_fd })
    | D_idle _ ->
      (* interactive programs mostly sleep with occasional activity *)
      Simos.Program.Block
        (st, Simos.Program.Sleep_until (ctx.now () +. 0.25))
  [@@warning "-27"]
end

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Simos.Program.register (module App : Simos.Program.S);
    Simos.Program.register (module Worker : Simos.Program.S)
  end
