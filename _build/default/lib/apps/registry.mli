(** One-call registration of every workload program (idempotent). *)

val register_all : unit -> unit
