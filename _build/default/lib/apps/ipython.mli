(** iPython workloads (paper §5.2, "based on sockets directly").

    ["apps:ipython-shell"] — the interactive interpreter, idle at
    checkpoint time: a single process with a text-heavy heap, blocked on
    its pty (argv: none needed beyond the standard rank prefix is NOT
    used; launch directly with argv []).

    ["apps:ipython-demo"] — the "parallel computing" demo: a controller
    (rank 0) farms map tasks to engines over raw sockets and sums the
    results; verified against a serial evaluation.  Runs as a rank
    program (standard rank argv; extra: [[ntasks]]). *)

val register : unit -> unit

val shell_name : string
val demo_name : string
val demo_mem_bytes : int
val shell_mem_bytes : int
