module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int; mutable total : int }

  let create () = { buf = Buffer.create 4096; acc = 0; nbits = 0; total = 0 }

  let flush_bytes t =
    while t.nbits >= 8 do
      Buffer.add_char t.buf (Char.unsafe_chr (t.acc land 0xff));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done

  let put t ~bits ~count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Writer.put: count out of range";
    t.acc <- t.acc lor ((bits land ((1 lsl count) - 1)) lsl t.nbits);
    t.nbits <- t.nbits + count;
    t.total <- t.total + count;
    flush_bytes t

  let bit_length t = t.total

  let contents t =
    if t.nbits > 0 then begin
      Buffer.add_char t.buf (Char.unsafe_chr (t.acc land 0xff));
      t.acc <- 0;
      t.nbits <- 0
    end;
    Buffer.contents t.buf
end

module Reader = struct
  type t = { src : string; mutable pos : int; mutable acc : int; mutable nbits : int }

  exception Truncated

  let of_string src = { src; pos = 0; acc = 0; nbits = 0 }

  let refill t =
    while t.nbits <= 16 && t.pos < String.length t.src do
      t.acc <- t.acc lor (Char.code (String.unsafe_get t.src t.pos) lsl t.nbits);
      t.pos <- t.pos + 1;
      t.nbits <- t.nbits + 8
    done

  let get_small t count =
    refill t;
    if t.nbits < count then raise Truncated;
    let v = t.acc land ((1 lsl count) - 1) in
    t.acc <- t.acc lsr count;
    t.nbits <- t.nbits - count;
    v

  let get t count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Reader.get: count out of range";
    if count > 16 then begin
      (* split to keep the accumulator small *)
      let lo = get_small t 16 in
      let hi = get_small t (count - 16) in
      lo lor (hi lsl 16)
    end
    else get_small t count

  let bit t = get t 1
end
