(** Compression scheme selector.

    DMTCP invokes gzip by default before saving checkpoint images;
    [Deflate] plays that role here.  [Null] corresponds to running with
    compression disabled (the "uncompressed" series in Figures 4–6), and
    [Rle] is a cheap baseline used by the ablation benchmarks. *)

type t = Null | Rle | Deflate

val all : t list
val name : t -> string

(** Inverse of {!name}. *)
val of_name : string -> t option

(** Compress a raw payload (body only — see {!Container} for the framed
    format with CRC). *)
val compress : t -> string -> string

val decompress : t -> string -> string

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
