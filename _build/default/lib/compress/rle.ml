(* PackBits: control byte n in 0..127 means "copy the next n+1 literal
   bytes"; n in 129..255 means "repeat the next byte 257-n times"
   (run lengths 2..128); 128 is unused. *)

let compress s =
  let n = String.length s in
  let buf = Buffer.create ((n / 2) + 16) in
  (* length of the run starting at j, capped at 128 *)
  let run_at j =
    let r = ref 1 in
    while j + !r < n && !r < 128 && s.[j + !r] = s.[j] do
      incr r
    done;
    !r
  in
  let i = ref 0 in
  while !i < n do
    let r = run_at !i in
    if r >= 2 then begin
      Buffer.add_char buf (Char.chr (257 - r));
      Buffer.add_char buf s.[!i];
      i := !i + r
    end
    else begin
      let start = !i in
      let count = ref 0 in
      while !i < n && !count < 128 && run_at !i < 2 do
        incr i;
        incr count
      done;
      Buffer.add_char buf (Char.chr (!count - 1));
      Buffer.add_substring buf s start !count
    end
  done;
  Buffer.contents buf

let decompress s =
  let n = String.length s in
  let buf = Buffer.create (n * 2) in
  let i = ref 0 in
  while !i < n do
    let c = Char.code s.[!i] in
    incr i;
    if c < 128 then begin
      let count = c + 1 in
      if !i + count > n then invalid_arg "Rle.decompress: truncated literals";
      Buffer.add_substring buf s !i count;
      i := !i + count
    end
    else if c = 128 then invalid_arg "Rle.decompress: reserved control byte"
    else begin
      if !i >= n then invalid_arg "Rle.decompress: truncated run";
      let count = 257 - c in
      Buffer.add_string buf (String.make count s.[!i]);
      incr i
    end
  done;
  Buffer.contents buf
