(** Throughput model for simulated compression time.

    Protocol correctness uses the real codecs; *time* is simulated, and
    this module is the single place the calibration constants live (see
    DESIGN.md §4).  Rates follow the paper's observations: gzip-class
    compression is slower than disk (so compressed checkpoints take
    longer, Figure 4a), decompression is faster than compression (so
    restart beats checkpoint, §5.4), and all-zero data compresses an order
    of magnitude faster (the NAS/IS anomaly). *)

type rates = {
  compress_mb_s : float;      (** per-core throughput on ordinary data *)
  decompress_mb_s : float;
  zero_speedup : float;       (** multiplier on all-zero pages *)
}

val rates : Algo.t -> rates

(** [compress_seconds ~algo ~bytes ~zero_bytes] is the simulated time for
    one core to compress [bytes] of which [zero_bytes] are in all-zero
    pages. *)
val compress_seconds : algo:Algo.t -> bytes:int -> zero_bytes:int -> float

val decompress_seconds : algo:Algo.t -> bytes:int -> zero_bytes:int -> float
