exception Bad_container of string

let magic = "DMZ1"

let pack ~algo s =
  let body = Algo.compress algo s in
  let w = Util.Codec.Writer.create ~capacity:(String.length body + 32) () in
  Util.Codec.Writer.raw w magic;
  Algo.encode w algo;
  Util.Codec.Writer.uvarint w (String.length s);
  Util.Codec.Writer.i64 w (Int64.of_int32 (Util.Crc32.digest s));
  Util.Codec.Writer.string w body;
  Util.Codec.Writer.contents w

let read_header s =
  let r = Util.Codec.Reader.of_string s in
  let m = try Util.Codec.Reader.raw r 4 with Util.Codec.Reader.Corrupt _ -> "" in
  if m <> magic then raise (Bad_container "bad magic");
  let algo = Algo.decode r in
  (r, algo)

let algo_of s =
  let _, algo = read_header s in
  algo

let unpack s =
  let r, algo = read_header s in
  let orig_len = Util.Codec.Reader.uvarint r in
  let crc = Util.Codec.Reader.i64 r in
  let body = Util.Codec.Reader.string r in
  Util.Codec.Reader.expect_end r;
  let original =
    try Algo.decompress algo body with
    | Invalid_argument m -> raise (Bad_container ("corrupt body: " ^ m))
    | Bitio.Reader.Truncated -> raise (Bad_container "corrupt body: truncated bitstream")
  in
  if String.length original <> orig_len then raise (Bad_container "length mismatch");
  if Int64.of_int32 (Util.Crc32.digest original) <> crc then raise (Bad_container "CRC mismatch");
  original
