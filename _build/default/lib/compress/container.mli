(** Framed compressed payloads, playing the role of the [.gz] files DMTCP
    writes: magic, scheme tag, original length, CRC-32 of the original
    data, and the compressed body. *)

exception Bad_container of string

(** [pack ~algo s] frames and compresses [s]. *)
val pack : algo:Algo.t -> string -> string

(** [unpack s] decompresses and verifies length and CRC.
    Raises {!Bad_container} on any mismatch. *)
val unpack : string -> string

(** Scheme recorded in a frame, without unpacking the body. *)
val algo_of : string -> Algo.t
