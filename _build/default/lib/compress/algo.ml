type t = Null | Rle | Deflate

let all = [ Null; Rle; Deflate ]

let name = function
  | Null -> "null"
  | Rle -> "rle"
  | Deflate -> "deflate"

let of_name = function
  | "null" -> Some Null
  | "rle" -> Some Rle
  | "deflate" | "gzip" -> Some Deflate
  | _ -> None

let compress t s =
  match t with
  | Null -> s
  | Rle -> Rle.compress s
  | Deflate -> Deflate.compress s

let decompress t s =
  match t with
  | Null -> s
  | Rle -> Rle.decompress s
  | Deflate -> Deflate.decompress s

let to_tag = function
  | Null -> 0
  | Rle -> 1
  | Deflate -> 2

let encode w t = Util.Codec.Writer.u8 w (to_tag t)

let decode r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Null
  | 1 -> Rle
  | 2 -> Deflate
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad compression tag %d" n))
