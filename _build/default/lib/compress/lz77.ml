type token = Literal of char | Match of { dist : int; len : int }

let window_size = 32768
let min_match = 3
let max_match = 258
let hash_bits = 15
let hash_size = 1 lsl hash_bits
let max_chain = 48

let hash3 s i =
  let a = Char.code (String.unsafe_get s i)
  and b = Char.code (String.unsafe_get s (i + 1))
  and c = Char.code (String.unsafe_get s (i + 2)) in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let count = ref 0 in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max 1 (min n window_size * 2)) (-1) in
  let prev_size = Array.length prev in
  let emit tok =
    tokens := tok :: !tokens;
    incr count
  in
  let match_len i j =
    (* length of common prefix of s[i..] and s[j..], capped *)
    let limit = min max_match (n - i) in
    let k = ref 0 in
    while !k < limit && String.unsafe_get s (i + !k) = String.unsafe_get s (j + !k) do
      incr k
    done;
    !k
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i mod prev_size) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash3 s !i in
      let j = ref head.(h) in
      let chain = ref 0 in
      while !j >= 0 && !chain < max_chain do
        let dist = !i - !j in
        if dist > 0 && dist <= window_size then begin
          let len = match_len !i !j in
          if len > !best_len then begin
            best_len := len;
            best_dist := dist
          end;
          let nxt = prev.(!j mod prev_size) in
          (* Stop if the chain entry was overwritten (too far back). *)
          j := if nxt >= !j || !i - nxt > window_size then -1 else nxt
        end
        else j := -1;
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      emit (Match { dist = !best_dist; len = !best_len });
      (* Insert hash entries for all covered positions so later matches can
         reference them. *)
      for k = !i to !i + !best_len - 1 do
        insert k
      done;
      i := !i + !best_len
    end
    else begin
      emit (Literal (String.unsafe_get s !i));
      insert !i;
      incr i
    end
  done;
  let arr = Array.make !count (Literal 'x') in
  let rec fill idx = function
    | [] -> ()
    | tok :: rest ->
      arr.(idx) <- tok;
      fill (idx - 1) rest
  in
  fill (!count - 1) !tokens;
  arr

let reconstruct tokens =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun tok ->
      match tok with
      | Literal c -> Buffer.add_char buf c
      | Match { dist; len } ->
        let start = Buffer.length buf - dist in
        if start < 0 then invalid_arg "Lz77.reconstruct: bad distance";
        (* Byte-by-byte so overlapping copies replicate runs, as in LZ77. *)
        for k = 0 to len - 1 do
          Buffer.add_char buf (Buffer.nth buf (start + k))
        done)
    tokens;
  Buffer.contents buf
