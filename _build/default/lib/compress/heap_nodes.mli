(** Internal min-heap over Huffman tree nodes, keyed by frequency.
    Ties break by insertion order so code assignment is deterministic. *)

type tree = Leaf of int | Node of tree * tree
type t

val create : unit -> t
val size : t -> int
val push : t -> int -> tree -> unit

(** Raises [Invalid_argument] if empty. *)
val pop : t -> int * tree
