(** LZ77 tokenization with a hash-chain matcher (DEFLATE-style window). *)

type token =
  | Literal of char
  | Match of { dist : int; len : int }  (** copy [len] bytes from [dist] back *)

val window_size : int
val min_match : int
val max_match : int

(** Greedy tokenization of the whole input. *)
val tokenize : string -> token array

(** Inverse of {!tokenize}; reconstructs the original string. Raises
    [Invalid_argument] on tokens referencing before the start. *)
val reconstruct : token array -> string
