type tree = Leaf of int | Node of tree * tree
type entry = { freq : int; seq : int; node : tree }

type t = { mutable data : entry array; mutable size : int; mutable next_seq : int }

let create () = { data = [||]; size = 0; next_seq = 0 }
let size t = t.size

let less a b = a.freq < b.freq || (a.freq = b.freq && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less t.data.(i) t.data.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = ref i in
  if l < t.size && less t.data.(l) t.data.(!s) then s := l;
  if r < t.size && less t.data.(r) t.data.(!s) then s := r;
  if !s <> i then begin
    swap t i !s;
    sift_down t !s
  end

let push t freq node =
  let e = { freq; seq = t.next_seq; node } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then begin
    let data = Array.make (max 16 (2 * t.size)) e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then invalid_arg "Heap_nodes.pop: empty";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (top.freq, top.node)
