type rates = {
  compress_mb_s : float;
  decompress_mb_s : float;
  zero_speedup : float;
}

let rates = function
  | Algo.Null -> { compress_mb_s = 2500.; decompress_mb_s = 2500.; zero_speedup = 1. }
  | Algo.Rle -> { compress_mb_s = 250.; decompress_mb_s = 400.; zero_speedup = 6. }
  | Algo.Deflate -> { compress_mb_s = 21.; decompress_mb_s = 58.; zero_speedup = 12. }

let mb = 1e6

let seconds rate_mb_s ~bytes ~zero_bytes ~speedup =
  let zero_bytes = min zero_bytes bytes in
  let plain = float_of_int (bytes - zero_bytes) in
  let zeros = float_of_int zero_bytes in
  (plain /. (rate_mb_s *. mb)) +. (zeros /. (rate_mb_s *. speedup *. mb))

let compress_seconds ~algo ~bytes ~zero_bytes =
  let r = rates algo in
  seconds r.compress_mb_s ~bytes ~zero_bytes ~speedup:r.zero_speedup

let decompress_seconds ~algo ~bytes ~zero_bytes =
  let r = rates algo in
  seconds r.decompress_mb_s ~bytes ~zero_bytes ~speedup:r.zero_speedup
