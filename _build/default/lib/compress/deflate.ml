(* Standard DEFLATE length codes: symbol 257 + index. *)
let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59; 67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4; 5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11; 12; 12; 13; 13 |]

let eob = 256
let num_litlen = 286
let num_dist = 30

let length_symbol len =
  (* largest index with base <= len *)
  let rec go i = if i + 1 < Array.length length_base && length_base.(i + 1) <= len then go (i + 1) else i in
  go 0

let dist_symbol dist =
  let rec go i = if i + 1 < Array.length dist_base && dist_base.(i + 1) <= dist then go (i + 1) else i in
  go 0

let compress s =
  let tokens = Lz77.tokenize s in
  let lit_freq = Array.make num_litlen 0 in
  let dist_freq = Array.make num_dist 0 in
  let bump a i = a.(i) <- a.(i) + 1 in
  Array.iter
    (fun tok ->
      match tok with
      | Lz77.Literal c -> bump lit_freq (Char.code c)
      | Lz77.Match { dist; len } ->
        bump lit_freq (257 + length_symbol len);
        bump dist_freq (dist_symbol dist))
    tokens;
  bump lit_freq eob;
  let lit_lens = Huffman.lengths_of_freqs lit_freq in
  let has_dist = Array.exists (fun f -> f > 0) dist_freq in
  let dist_lens = if has_dist then Huffman.lengths_of_freqs dist_freq else Array.make num_dist 0 in
  let lit_enc = Huffman.encoder_of_lengths lit_lens in
  let dist_enc = if has_dist then Some (Huffman.encoder_of_lengths dist_lens) else None in
  let bw = Bitio.Writer.create () in
  Array.iter
    (fun tok ->
      match tok, dist_enc with
      | Lz77.Literal c, _ -> Huffman.encode lit_enc bw (Char.code c)
      | Lz77.Match { dist; len }, Some de ->
        let ls = length_symbol len in
        Huffman.encode lit_enc bw (257 + ls);
        Bitio.Writer.put bw ~bits:(len - length_base.(ls)) ~count:length_extra.(ls);
        let ds = dist_symbol dist in
        Huffman.encode de bw ds;
        Bitio.Writer.put bw ~bits:(dist - dist_base.(ds)) ~count:dist_extra.(ds)
      | Lz77.Match _, None -> assert false)
    tokens;
  Huffman.encode lit_enc bw eob;
  let bits = Bitio.Writer.contents bw in
  let w = Util.Codec.Writer.create ~capacity:(String.length bits + 512) () in
  let put_lens lens =
    (* code lengths are 0..15: pack two per byte *)
    let n = Array.length lens in
    Util.Codec.Writer.uvarint w n;
    let i = ref 0 in
    while !i < n do
      let lo = lens.(!i) in
      let hi = if !i + 1 < n then lens.(!i + 1) else 0 in
      Util.Codec.Writer.u8 w (lo lor (hi lsl 4));
      i := !i + 2
    done
  in
  Util.Codec.Writer.uvarint w (String.length s);
  put_lens lit_lens;
  put_lens dist_lens;
  Util.Codec.Writer.string w bits;
  Util.Codec.Writer.contents w

let decompress packed =
  let r = Util.Codec.Reader.of_string packed in
  let orig_len = Util.Codec.Reader.uvarint r in
  let get_lens () =
    let n = Util.Codec.Reader.uvarint r in
    let lens = Array.make n 0 in
    let i = ref 0 in
    while !i < n do
      let b = Util.Codec.Reader.u8 r in
      lens.(!i) <- b land 0xf;
      if !i + 1 < n then lens.(!i + 1) <- b lsr 4;
      i := !i + 2
    done;
    lens
  in
  let lit_lens = get_lens () in
  let dist_lens = get_lens () in
  let bits = Util.Codec.Reader.string r in
  Util.Codec.Reader.expect_end r;
  let lit_dec = Huffman.decoder_of_lengths lit_lens in
  let dist_dec =
    if Array.exists (fun l -> l > 0) dist_lens then Some (Huffman.decoder_of_lengths dist_lens)
    else None
  in
  let br = Bitio.Reader.of_string bits in
  let out = Buffer.create (max 16 orig_len) in
  let finished = ref false in
  while not !finished do
    let sym = Huffman.decode lit_dec br in
    if sym = eob then finished := true
    else if sym < 256 then Buffer.add_char out (Char.unsafe_chr sym)
    else begin
      let ls = sym - 257 in
      if ls < 0 || ls >= Array.length length_base then invalid_arg "Deflate.decompress: bad length symbol";
      let len = length_base.(ls) + Bitio.Reader.get br length_extra.(ls) in
      let de =
        match dist_dec with
        | Some d -> d
        | None -> invalid_arg "Deflate.decompress: match without distance table"
      in
      let ds = Huffman.decode de br in
      if ds >= Array.length dist_base then invalid_arg "Deflate.decompress: bad distance symbol";
      let dist = dist_base.(ds) + Bitio.Reader.get br dist_extra.(ds) in
      let start = Buffer.length out - dist in
      if start < 0 then invalid_arg "Deflate.decompress: distance before start";
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done;
  let result = Buffer.contents out in
  if String.length result <> orig_len then invalid_arg "Deflate.decompress: length mismatch";
  result
