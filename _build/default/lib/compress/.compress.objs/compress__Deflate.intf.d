lib/compress/deflate.mli:
