lib/compress/heap_nodes.mli:
