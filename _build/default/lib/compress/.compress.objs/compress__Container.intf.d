lib/compress/container.mli: Algo
