lib/compress/algo.ml: Deflate Printf Rle Util
