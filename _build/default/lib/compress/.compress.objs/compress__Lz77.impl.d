lib/compress/lz77.ml: Array Buffer Char String
