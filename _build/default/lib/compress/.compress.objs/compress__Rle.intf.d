lib/compress/rle.mli:
