lib/compress/rle.ml: Buffer Char String
