lib/compress/algo.mli: Util
