lib/compress/container.ml: Algo Bitio Int64 String Util
