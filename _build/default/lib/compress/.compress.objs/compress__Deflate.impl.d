lib/compress/deflate.ml: Array Bitio Buffer Char Huffman Lz77 String Util
