lib/compress/model.mli: Algo
