lib/compress/heap_nodes.ml: Array
