lib/compress/model.ml: Algo
