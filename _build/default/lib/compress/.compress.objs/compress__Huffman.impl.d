lib/compress/huffman.ml: Array Bitio Heap_nodes
