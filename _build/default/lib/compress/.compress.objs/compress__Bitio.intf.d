lib/compress/bitio.mli:
