(** PackBits-style run-length encoding: a cheap baseline compressor used
    in ablations against {!Deflate}. *)

val compress : string -> string
val decompress : string -> string
