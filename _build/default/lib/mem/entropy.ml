type t = Zeros | Text | Code | Numeric | Random

let all = [ Zeros; Text; Code; Numeric; Random ]

let name = function
  | Zeros -> "zeros"
  | Text -> "text"
  | Code -> "code"
  | Numeric -> "numeric"
  | Random -> "random"

let words =
  [|
    "the"; "of"; "and"; "a"; "to"; "in"; "is"; "you"; "that"; "it"; "he"; "was"; "for"; "on";
    "are"; "as"; "with"; "his"; "they"; "at"; "be"; "this"; "have"; "from"; "or"; "one"; "had";
    "by"; "word"; "but"; "not"; "what"; "all"; "were"; "we"; "when"; "your"; "can"; "said";
    "there"; "use"; "an"; "each"; "which"; "she"; "do"; "how"; "their"; "if"; "will";
  |]

let opcodes = [| 0x48; 0x89; 0x8b; 0xe8; 0xc3; 0x55; 0x5d; 0x90; 0x0f; 0x83; 0x85; 0x74; 0x75; 0xeb |]

let generate cls ~seed ~len =
  let rng = Util.Rng.create seed in
  match cls with
  | Zeros -> Bytes.make len '\000'
  | Random -> Util.Rng.bytes rng len
  | Text ->
    let buf = Buffer.create (len + 16) in
    while Buffer.length buf < len do
      Buffer.add_string buf (Util.Rng.choose rng words);
      Buffer.add_char buf ' '
    done;
    Bytes.of_string (String.sub (Buffer.contents buf) 0 len)
  | Code ->
    (* Instruction-stream-like: common opcodes, small immediates, repeated
       short sequences (function prologues/epilogues). *)
    let b = Bytes.create len in
    let i = ref 0 in
    while !i < len do
      if Util.Rng.int rng 10 < 3 && !i + 4 <= len then begin
        (* prologue-ish motif *)
        Bytes.set b !i '\x55';
        Bytes.set b (!i + 1) '\x48';
        Bytes.set b (!i + 2) '\x89';
        Bytes.set b (!i + 3) '\xe5';
        i := !i + 4
      end
      else begin
        Bytes.set b !i (Char.chr (Util.Rng.choose rng opcodes));
        incr i;
        if !i < len && Util.Rng.bool rng then begin
          Bytes.set b !i (Char.chr (Util.Rng.int rng 32));
          incr i
        end
      end
    done;
    b
  | Numeric ->
    (* Smoothly varying doubles: high-order bytes repeat between adjacent
       values, which is what makes scientific arrays gzip moderately. *)
    let b = Bytes.create len in
    let x = ref (Util.Rng.float rng 1000.) in
    let i = ref 0 in
    while !i < len do
      x := !x +. Util.Rng.gaussian rng ~mean:0. ~stddev:0.01;
      let bits = Int64.bits_of_float !x in
      let k = min 8 (len - !i) in
      for j = 0 to k - 1 do
        Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * (7 - j))) land 0xff))
      done;
      i := !i + k
    done;
    b

let sample_len = 8 * 4096

let measure algo cls =
  match algo with
  | Compress.Algo.Null -> 1.0
  | _ ->
    let sample = Bytes.unsafe_to_string (generate cls ~seed:0xABCDEFL ~len:sample_len) in
    let packed = Compress.Algo.compress algo sample in
    float_of_int (String.length packed) /. float_of_int sample_len

let table = Hashtbl.create 16

let ratio algo cls =
  match Hashtbl.find_opt table (algo, cls) with
  | Some r -> r
  | None ->
    let r = measure algo cls in
    Hashtbl.add table (algo, cls) r;
    r

let deflate_ratio cls = ratio Compress.Algo.Deflate cls
let rle_ratio cls = ratio Compress.Algo.Rle cls

let to_tag = function
  | Zeros -> 0
  | Text -> 1
  | Code -> 2
  | Numeric -> 3
  | Random -> 4

let encode w t = Util.Codec.Writer.u8 w (to_tag t)

let decode r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Zeros
  | 1 -> Text
  | 2 -> Code
  | 3 -> Numeric
  | 4 -> Random
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad entropy tag %d" n))
