let size = 65536

type content =
  | Zero
  | Materialized of bytes
  | Synthetic of { seed : int64; cls : Entropy.t }

let materialize = function
  | Zero -> Bytes.make size '\000'
  | Materialized b -> b
  | Synthetic { seed; cls } -> Entropy.generate cls ~seed ~len:size

let is_zero = function
  | Zero -> true
  | Materialized _ | Synthetic _ -> false

let compressed_size algo = function
  | Zero ->
    (* A zero page costs a couple of bytes of token stream under any real
       scheme; count 8 to stay conservative. *)
    (match algo with Compress.Algo.Null -> size | _ -> 8)
  | Materialized b -> String.length (Compress.Algo.compress algo (Bytes.unsafe_to_string b))
  | Synthetic { cls; _ } ->
    int_of_float (ceil (float_of_int size *. Entropy.ratio algo cls))

let encode w = function
  | Zero -> Util.Codec.Writer.u8 w 0
  | Materialized b ->
    Util.Codec.Writer.u8 w 1;
    Util.Codec.Writer.bytes w b
  | Synthetic { seed; cls } ->
    Util.Codec.Writer.u8 w 2;
    Util.Codec.Writer.i64 w seed;
    Entropy.encode w cls

let decode r =
  match Util.Codec.Reader.u8 r with
  | 0 -> Zero
  | 1 ->
    let b = Util.Codec.Reader.bytes r in
    if Bytes.length b <> size then
      raise (Util.Codec.Reader.Corrupt (Printf.sprintf "page payload of %d bytes" (Bytes.length b)));
    Materialized b
  | 2 ->
    let seed = Util.Codec.Reader.i64 r in
    let cls = Entropy.decode r in
    Synthetic { seed; cls }
  | n -> raise (Util.Codec.Reader.Corrupt (Printf.sprintf "bad page tag %d" n))
