lib/mem/region.ml: Array Page Printf Util
