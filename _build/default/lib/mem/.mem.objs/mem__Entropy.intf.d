lib/mem/entropy.mli: Compress Util
