lib/mem/address_space.mli: Page Region Util
