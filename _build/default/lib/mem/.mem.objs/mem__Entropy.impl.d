lib/mem/entropy.ml: Buffer Bytes Char Compress Hashtbl Int64 Printf String Util
