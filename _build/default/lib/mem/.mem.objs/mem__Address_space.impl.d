lib/mem/address_space.ml: Array Bytes List Page Printf Region String Util
