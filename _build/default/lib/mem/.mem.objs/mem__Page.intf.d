lib/mem/page.mli: Compress Entropy Util
