lib/mem/page.ml: Bytes Compress Entropy Printf String Util
