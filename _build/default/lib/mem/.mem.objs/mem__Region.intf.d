lib/mem/region.mli: Page Util
