(** A fixed-size virtual-memory page and its content representation. *)

(** Accounting page size in bytes.  Real x86 pages are 4 KiB; the
    simulator tracks content at 64 KiB granularity so that Figure 6's
    70 GB cluster-wide footprints stay cheap to represent.  Compression
    ratios are per-content-class, so the coarser granularity does not
    change size accounting. *)
val size : int

type content =
  | Zero                                             (** never written *)
  | Materialized of bytes                            (** real bytes, length {!size} *)
  | Synthetic of { seed : int64; cls : Entropy.t }   (** generated on demand *)

(** Realize the page as bytes. [Synthetic] pages generate deterministically
    from their seed, so materializing twice gives equal bytes. *)
val materialize : content -> bytes

(** True only for [Zero] (a materialized page of zeros is not detected). *)
val is_zero : content -> bool

(** Bytes this page would occupy after compression with [algo]:
    real compression for [Materialized], ratio-extrapolated for
    [Synthetic], ~0 for [Zero]. Used for simulated image sizing. *)
val compressed_size : Compress.Algo.t -> content -> int

val encode : Util.Codec.Writer.t -> content -> unit
val decode : Util.Codec.Reader.t -> content
