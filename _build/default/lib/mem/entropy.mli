(** Entropy classes for synthetic page contents.

    Large experiments (Figure 6 checkpoints up to 70 GB of cluster memory)
    cannot materialize every byte.  Pages therefore carry a *class*; bulk
    pages are generated on demand from a seed, and their compressed size is
    extrapolated from the measured ratio of the real {!Compress.Deflate}
    codec on sample pages of the same class.  Small runs and all protocol
    tests use fully materialized pages and the real compressor. *)

type t =
  | Zeros    (** untouched allocations, e.g. NAS/IS's over-provisioned buckets *)
  | Text     (** natural-language-like data: strings, logs, interpreter heaps *)
  | Code     (** machine-code-like: the 540 dynamic libraries of runCMS *)
  | Numeric  (** arrays of floats with smooth variation: scientific data *)
  | Random   (** incompressible data *)

val all : t list
val name : t -> string

(** [generate cls ~seed ~len] deterministically produces [len] bytes of the
    class ([seed] selects the variant). *)
val generate : t -> seed:int64 -> len:int -> bytes

(** Measured ratio [compressed_size / original_size] of {!Compress.Deflate}
    on sample pages of this class (memoized; computed once per process by
    running the real compressor). *)
val deflate_ratio : t -> float

(** Analogue for {!Compress.Rle}. *)
val rle_ratio : t -> float

(** Ratio for an arbitrary scheme ([Null] is 1.0). *)
val ratio : Compress.Algo.t -> t -> float

val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> t
